package dfs

// Benchmark harness: one benchmark family per experiment row of DESIGN.md
// (E1–E7). `go test -bench=. -benchmem` regenerates the wall-clock side of
// every table; cmd/dfsbench prints the model-cost side (depth, work,
// passes, rounds). Reported custom metrics:
//
//	rounds/op   — critical-path traversal rounds (Theorem 13's polylog)
//	depth/op    — model PRAM depth charged per update
//	passes/op   — semi-streaming scheduled passes (Theorem 15)
//	netrounds/op— CONGEST rounds (Theorem 16)
//	updates/sec — serving-layer applied-update throughput (E9)

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/dstruct"
	"repro/internal/obs"
	"repro/internal/pram"
)

func sizes() []int { return []int{256, 1024, 4096} }

// bigSizes extends sizes with the 10⁵-vertex instance the parallel-vs-
// serial speedup comparisons are specified at.
func bigSizes() []int { return append(sizes(), 100000) }

// execWidths returns the worker-pool widths for the execution-speedup
// benchmark family: always the serial baseline, plus the host's cores when
// it has more than one (on a single-core host the parallel rows would only
// measure scheduling overhead).
func execWidths() []int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return []int{1, w}
	}
	return []int{1}
}

// E1: fully dynamic update vs baselines.

func BenchmarkUpdateParallel(b *testing.B) {
	for _, n := range bigSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := GnpConnected(n, 3.0/float64(n), rng)
			m := NewMaintainer(g)
			var rounds, depth int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d0 := m.Machine().Depth()
				benchUpdate(b, m, rng)
				rounds += int64(m.LastStats().Rounds)
				depth += m.Machine().Depth() - d0
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			b.ReportMetric(float64(depth)/float64(b.N), "depth/op")
		})
	}
}

func BenchmarkUpdateSequentialBaseline(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := GnpConnected(n, 3.0/float64(n), rng)
			m := NewMaintainerWith(g, Options{RebuildD: true, Sequential: true})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchUpdate(b, m, rng)
			}
		})
	}
}

func BenchmarkUpdateStaticRecompute(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := GnpConnected(n, 3.0/float64(n), rng)
			r := baseline.NewRecompute(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e, ok := RandomNonEdge(r.G, rng); ok {
					if err := r.InsertEdge(e.U, e.V); err != nil {
						b.Fatal(err)
					}
				} else if e, ok := RandomEdge(r.G, rng); ok {
					if err := r.DeleteEdge(e.U, e.V); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// benchUpdate alternates insert/delete so the graph stays near its initial
// density across b.N iterations.
func benchUpdate(b *testing.B, m *Maintainer, rng *rand.Rand) {
	b.Helper()
	if rng.Intn(2) == 0 {
		if e, ok := RandomNonEdge(m.Graph(), rng); ok {
			if err := m.InsertEdge(e.U, e.V); err != nil {
				b.Fatal(err)
			}
			return
		}
	}
	if e, ok := RandomEdge(m.Graph(), rng); ok {
		if err := m.DeleteEdge(e.U, e.V); err != nil {
			b.Fatal(err)
		}
	}
}

// E2: fault tolerant batches.

func BenchmarkFaultTolerantBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := GnpConnected(2048, 3.0/2048, rng)
	ft := Preprocess(g, 8)
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			batches := make([][]Update, 16)
			for i := range batches {
				batches[i] = randomDeleteBatch(g, k, rng)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ft.Apply(batches[i%len(batches)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func randomDeleteBatch(g *Graph, k int, rng *rand.Rand) []Update {
	scratch := g.Clone()
	var batch []Update
	for len(batch) < k {
		if e, ok := RandomEdge(scratch, rng); ok {
			if scratch.DeleteEdge(e.U, e.V) == nil {
				batch = append(batch, Update{Kind: DeleteEdge, U: e.U, V: e.V})
			}
		}
	}
	return batch
}

// E3: semi-streaming updates.

func BenchmarkStreamingUpdate(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			g := GnpConnected(n, 3.0/float64(n), rng)
			s := NewStreaming(g)
			mirror := g.Clone()
			var passes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if e, ok := RandomNonEdge(mirror, rng); ok && i%2 == 0 {
					if mirror.InsertEdge(e.U, e.V) == nil {
						if err := s.InsertEdge(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					}
				} else if e, ok := RandomEdge(mirror, rng); ok {
					if mirror.DeleteEdge(e.U, e.V) == nil {
						if err := s.DeleteEdge(e.U, e.V); err != nil {
							b.Fatal(err)
						}
					}
				}
				passes += int64(s.LastScheduledPasses())
			}
			b.ReportMetric(float64(passes)/float64(b.N), "passes/op")
		})
	}
}

// E4: distributed updates.

func BenchmarkDistributedUpdate(b *testing.B) {
	for _, layout := range [][2]int{{8, 32}, {32, 8}} {
		b.Run(fmt.Sprintf("racks=%d", layout[0]), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			g := CycleOfCliques(layout[0], layout[1])
			m := NewDistributed(g, 0)
			var rounds int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var u Update
				if e, ok := RandomNonEdge(m.Core().Graph(), rng); ok && i%2 == 0 {
					u = Update{Kind: InsertEdge, U: e.U, V: e.V}
				} else if e, ok := RandomEdge(m.Core().Graph(), rng); ok {
					u = Update{Kind: DeleteEdge, U: e.U, V: e.V}
				} else {
					continue
				}
				if _, err := m.Apply(u); err != nil {
					b.Fatal(err)
				}
				rounds += m.LastRounds()
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "netrounds/op")
		})
	}
}

// E5: building D (preprocessing).

func BenchmarkBuildD(b *testing.B) {
	for _, n := range bigSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			g := GnpConnected(n, 4.0/float64(n), rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := NewMaintainer(g)
				_ = m.D()
			}
		})
	}
}

// E7: rerooting in isolation, random vs adversarial.

func BenchmarkRerootRandom(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			g := GnpConnected(n, 3.0/float64(n), rng)
			m := NewMaintainer(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Delete a tree edge (forces a reroot), restore it.
				e := deepTreeEdge(m)
				if err := m.DeleteEdge(e.U, e.V); err != nil {
					b.Fatal(err)
				}
				if err := m.InsertEdge(e.U, e.V); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRerootBroom(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := BroomGraph(n, n/2)
			m := NewMaintainer(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := deepTreeEdge(m)
				if err := m.DeleteEdge(e.U, e.V); err != nil {
					b.Fatal(err)
				}
				if err := m.InsertEdge(e.U, e.V); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func deepTreeEdge(m *Maintainer) Edge {
	t := m.Tree()
	g := m.Graph()
	best, bestSz := Edge{}, -1
	for v := 0; v < g.NumVertexSlots(); v++ {
		if t.Present(v) && t.Parent[v] != m.PseudoRoot() && t.Parent[v] != None {
			if t.Size(v) > bestSz {
				best, bestSz = Edge{U: t.Parent[v], V: v}, t.Size(v)
			}
		}
	}
	return best
}

// E8: execution parallelism. The same model code runs with worker-pool
// width 1 (the serial seed path) vs the host's cores; the recorded PRAM
// depth/work are identical across widths (asserted by
// core.TestParallelExecutionMatchesSerial) — only wall-clock changes.

// benchQueryInstance builds a D plus a deep root-to-leaf walk and the
// off-walk source set, the shape of the engine's per-round batched queries.
func benchQueryInstance(n, workers int) (*dstruct.D, []int, []int) {
	rng := rand.New(rand.NewSource(9))
	g := GnpConnected(n, 4.0/float64(n), rng)
	tr := StaticDFS(g)
	deep := tr.Root
	for v := 0; v < g.NumVertexSlots(); v++ {
		if tr.Present(v) && tr.Level(v) > tr.Level(deep) {
			deep = v
		}
	}
	walk := tr.PathUp(deep, tr.Root)
	onWalk := make(map[int]bool, len(walk))
	for _, v := range walk {
		onWalk[v] = true
	}
	var sources []int
	for v := 0; v < g.NumVertexSlots(); v++ {
		if g.IsVertex(v) && !onWalk[v] {
			sources = append(sources, v)
		}
	}
	d := dstruct.Build(g, tr, pram.NewMachineWithWorkers(2*g.NumEdges(), workers))
	return d, sources, walk
}

func BenchmarkEdgeToWalkExec(b *testing.B) {
	for _, n := range []int{4096, 100000} {
		for _, w := range execWidths() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				d, sources, walk := benchQueryInstance(n, w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := d.EdgeToWalk(sources, walk, true, nil); !ok {
						b.Fatal("no hit")
					}
				}
			})
		}
	}
}

func BenchmarkBuildDExec(b *testing.B) {
	for _, n := range []int{4096, 100000} {
		for _, w := range execWidths() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				rng := rand.New(rand.NewSource(5))
				g := GnpConnected(n, 4.0/float64(n), rng)
				tr := StaticDFS(g)
				mach := pram.NewMachineWithWorkers(2*g.NumEdges(), w)
				d := dstruct.Build(g, tr, mach)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d.Rebuild(g, tr, mach)
				}
			})
		}
	}
}

// BenchmarkUpdateExec compares D's two fully dynamic maintenance modes on
// the same update stream: mode=incremental (the default — Update
// repositions only moved entries, falling back to a rebuild on high churn)
// vs mode=rebuild (Options.FullRebuildD, the paper's literal per-update
// m-processor rebuild). On low-churn updates the incremental rows drop the
// O(m) per-update term: their cost tracks the moved set, not the graph,
// and flattens as n grows with fixed churn. incfrac/op reports the fraction
// of updates that stayed on the incremental path.
func BenchmarkUpdateExec(b *testing.B) {
	for _, n := range []int{4096, 100000} {
		for _, w := range execWidths() {
			for _, mode := range []string{"incremental", "rebuild"} {
				b.Run(fmt.Sprintf("n=%d/workers=%d/mode=%s", n, w, mode), func(b *testing.B) {
					rng := rand.New(rand.NewSource(1))
					g := GnpConnected(n, 3.0/float64(n), rng)
					mach := pram.NewMachineWithWorkers(2*g.NumEdges()+g.NumVertexSlots()+1, w)
					// ReuseTree: the single-tenant perf path rebuilds the tree
					// in place per update (nothing here retains old trees).
					m := NewMaintainerWith(g, Options{
						RebuildD:     true,
						FullRebuildD: mode == "rebuild",
						Machine:      mach,
						ReuseTree:    true,
					})
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						benchUpdate(b, m, rng)
					}
					b.StopTimer()
					inc, reb := m.D().MaintenanceCounts()
					if total := inc + reb; total > 0 {
						b.ReportMetric(float64(inc)/float64(total), "incfrac/op")
					}
				})
			}
		}
	}
}

// BenchmarkUpdateExecLowChurn isolates the acceptance shape for incremental
// D maintenance: a fixed-churn workload (alternating back-edge insert/delete
// of one far-apart vertex pair — the tree never changes) across growing n.
// Under mode=rebuild the per-update cost grows with m; under
// mode=incremental it stays flat.
func BenchmarkUpdateExecLowChurn(b *testing.B) {
	for _, n := range []int{4096, 16384, 100000} {
		for _, mode := range []string{"incremental", "rebuild"} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				g := GnpConnected(n, 3.0/float64(n), rng)
				m := NewMaintainerWith(g, Options{
					RebuildD:     true,
					FullRebuildD: mode == "rebuild",
					ReuseTree:    true,
				})
				// A non-edge whose endpoints are tree-comparable: inserting
				// it is a back edge, the lowest-churn update there is.
				tr := m.Tree()
				u, v := -1, -1
				for x := 0; x < g.NumVertexSlots() && u < 0; x++ {
					if !tr.Present(x) || tr.Level(x) < 3 {
						continue
					}
					a := tr.Parent[tr.Parent[tr.Parent[x]]]
					if a != m.PseudoRoot() && !m.Graph().HasEdge(x, a) {
						u, v = x, a
					}
				}
				if u < 0 {
					b.Skip("no comparable non-edge found")
				}
				_ = rng
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if i%2 == 0 {
						err = m.InsertEdge(u, v)
					} else {
						err = m.DeleteEdge(u, v)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkUpdateExecObsOverhead prices the observability instrumentation
// on the update hot path, against the same low-churn incremental workload
// as BenchmarkUpdateExecLowChurn (the cheapest real update, so the
// percentages below are worst-case):
//
//   - mode=off    — the nil-gated default every single-tenant caller gets.
//   - mode=traced — the serving shard's full per-update instrumentation:
//     attach a trace, record the wait/apply histograms, accumulate the
//     stage counters, offer to the slow ring.
//   - record      — the histogram-record primitive alone; reports
//     record-ns/op and hotpath-record-pct, the cost of the hot path's two
//     Record calls as a percentage of a calibrated untraced update. The
//     acceptance target is hotpath-record-pct < 1.
func BenchmarkUpdateExecObsOverhead(b *testing.B) {
	setup, toggle := lowChurnToggleSetup, toggleEdge
	b.Run("mode=off", func(b *testing.B) {
		m, u, v := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(b, m, u, v, i)
		}
	})
	b.Run("mode=traced", func(b *testing.B) {
		m, u, v := setup(b)
		var (
			trace               obs.Trace
			waitHist, applyHist obs.Histogram
			stageNanos          [5]atomic.Int64
			ring                = obs.NewSlowRing(obs.DefaultSlowRingSize)
		)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recv := time.Now()
			trace = obs.Trace{Kind: "InsertEdge", Start: recv, Batch: 1}
			m.SetTrace(&trace)
			toggle(b, m, u, v, i)
			m.SetTrace(nil)
			apply := time.Since(recv)
			if plan := apply - trace.Engine - trace.DMaint; plan > 0 {
				trace.Plan = plan
			}
			waitHist.Record(trace.Wait)
			applyHist.Record(apply)
			trace.Total = trace.StageSum()
			stageNanos[1].Add(int64(trace.Plan))
			stageNanos[2].Add(int64(trace.Engine))
			stageNanos[3].Add(int64(trace.DMaint))
			ring.Offer(&trace)
		}
	})
	b.Run("record", func(b *testing.B) {
		var h obs.Histogram
		start := time.Now()
		for i := 0; i < b.N; i++ {
			// Steady-state latency samples: jitter around a few µs, so the
			// max-CAS settles after the first records (a monotone ramp would
			// force the CAS every call — not what a latency stream does).
			h.RecordValue(2500 + int64(i&1023))
		}
		recordNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
		// Calibrate the untraced update this records against.
		m, u, v := setup(b)
		const calib = 2000
		us := time.Now()
		for i := 0; i < calib; i++ {
			toggle(b, m, u, v, i)
		}
		updateNs := float64(time.Since(us).Nanoseconds()) / calib
		b.ReportMetric(recordNs, "record-ns/op")
		if updateNs > 0 {
			// The apply hot path records two histograms per update.
			b.ReportMetric(100*2*recordNs/updateNs, "hotpath-record-pct")
		}
	})
}

// lowChurnToggleSetup builds the cheapest comparable update workload the
// hot-path overhead benchmarks share: a maintainer over a sparse n=16384
// graph and one non-tree (descendant, 3rd ancestor) pair to toggle with
// alternating inserts and deletes.
func lowChurnToggleSetup(b *testing.B) (*Maintainer, int, int) {
	const n = 16384
	rng := rand.New(rand.NewSource(1))
	g := GnpConnected(n, 3.0/float64(n), rng)
	m := NewMaintainerWith(g, Options{RebuildD: true, ReuseTree: true})
	tr := m.Tree()
	for x := 0; x < g.NumVertexSlots(); x++ {
		if !tr.Present(x) || tr.Level(x) < 3 {
			continue
		}
		a := tr.Parent[tr.Parent[tr.Parent[x]]]
		if a != m.PseudoRoot() && !m.Graph().HasEdge(x, a) {
			return m, x, a
		}
	}
	b.Skip("no comparable non-edge found")
	return nil, 0, 0
}

func toggleEdge(b *testing.B, m *Maintainer, u, v, i int) {
	var err error
	if i%2 == 0 {
		err = m.InsertEdge(u, v)
	} else {
		err = m.DeleteEdge(u, v)
	}
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUpdateExecTenantOverhead prices the per-tenant cost attribution
// the serving shard adds to the same hot path BenchmarkUpdateExecObsOverhead
// measures — one TenantMeter.RecordUpdate (four atomic adds) plus one
// weighted SpaceSaving.Observe per applied update:
//
//   - mode=off     — the bare maintainer update.
//   - mode=metered — the update plus exactly what the shard loop adds: the
//     meter fold and the hottest-graphs sketch observation.
//   - record       — the attribution primitives alone; reports meter-ns/op
//     and hotpath-meter-pct, their cost as a percentage of a calibrated
//     unmetered update. The acceptance target is hotpath-meter-pct < 1,
//     the same bar as the histogram instrumentation.
func BenchmarkUpdateExecTenantOverhead(b *testing.B) {
	setup, toggle := lowChurnToggleSetup, toggleEdge
	b.Run("mode=off", func(b *testing.B) {
		m, u, v := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			toggle(b, m, u, v, i)
		}
	})
	b.Run("mode=metered", func(b *testing.B) {
		m, u, v := setup(b)
		var meter obs.TenantMeter
		hot := obs.NewSpaceSaving(128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			toggle(b, m, u, v, i)
			apply := time.Since(start)
			meter.RecordUpdate(apply, apply/2, apply/4, false)
			hot.Observe("bench-tenant", uint64(apply))
		}
	})
	b.Run("record", func(b *testing.B) {
		var meter obs.TenantMeter
		hot := obs.NewSpaceSaving(128)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			// Steady-state apply costs: jitter around a few µs so the sketch
			// exercises its tracked-key fast path, as one graph's stream does.
			d := time.Duration(2500 + int64(i&1023))
			meter.RecordUpdate(d, d/2, d/4, i&63 == 0)
			hot.Observe("bench-tenant", uint64(d))
		}
		recordNs := float64(time.Since(start).Nanoseconds()) / float64(b.N)
		// Calibrate the unmetered update this attributes against.
		m, u, v := setup(b)
		const calib = 2000
		us := time.Now()
		for i := 0; i < calib; i++ {
			toggle(b, m, u, v, i)
		}
		updateNs := float64(time.Since(us).Nanoseconds()) / calib
		b.ReportMetric(recordNs, "meter-ns/op")
		if updateNs > 0 {
			b.ReportMetric(100*recordNs/updateNs, "hotpath-meter-pct")
		}
	})
}

// E9: serving-layer throughput. Sweeps shards × tenant graphs × read/write
// mix; on a multi-core host updates/sec scales with the shard count because
// each shard is an independent update loop (reads are lock-free snapshot
// loads at any shard count). Conflicted updates (two submitters racing the
// same edge from stale snapshots) still cost a full mailbox round trip, so
// they are measured, not skipped. Snapshot publication is O(1) — the
// persistent graph and tree are shared zero-copy — so the write-path cost
// here is the maintainer's update work itself, not cloning;
// internal/service.BenchmarkPublish isolates the publication step and
// pins it flat across graph sizes.

func BenchmarkServiceThroughput(b *testing.B) {
	shardCounts := []int{1}
	if w := runtime.GOMAXPROCS(0); w > 1 {
		shardCounts = append(shardCounts, w)
	}
	const n = 256
	var seedCtr atomic.Int64
	for _, shards := range shardCounts {
		for _, graphs := range []int{1, 8} {
			for _, readPct := range []int{0, 90} {
				name := fmt.Sprintf("shards=%d/graphs=%d/read=%d%%", shards, graphs, readPct)
				b.Run(name, func(b *testing.B) {
					svc := NewService(ServiceConfig{Shards: shards})
					defer svc.Close()
					ids := make([]GraphID, graphs)
					for i := range ids {
						ids[i] = GraphID(fmt.Sprintf("bench-%d", i))
						rng := rand.New(rand.NewSource(int64(10 + i)))
						if _, err := svc.CreateGraph(ids[i], GnpConnected(n, 4.0/n, rng)); err != nil {
							b.Fatal(err)
						}
					}
					var updates, conflicts int64
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						rng := rand.New(rand.NewSource(1000 + seedCtr.Add(1)))
						for pb.Next() {
							id := ids[rng.Intn(len(ids))]
							snap, err := svc.Snapshot(id)
							if err != nil {
								b.Error(err)
								return
							}
							if rng.Intn(100) < readPct {
								u, v := rng.Intn(n), rng.Intn(n)
								if snap.Tree.Present(u) && snap.Tree.Present(v) {
									if _, err := snap.IsAncestor(u, v); err != nil {
										b.Error(err)
										return
									}
								}
								continue
							}
							var u Update
							if e, ok := RandomNonEdge(snap.Graph, rng); ok && rng.Intn(2) == 0 {
								u = Update{Kind: InsertEdge, U: e.U, V: e.V}
							} else if e, ok := RandomEdge(snap.Graph, rng); ok {
								u = Update{Kind: DeleteEdge, U: e.U, V: e.V}
							} else {
								continue
							}
							fut, err := svc.Apply(id, u)
							if err != nil {
								b.Error(err)
								return
							}
							if _, _, err := fut.Wait(); err != nil {
								atomic.AddInt64(&conflicts, 1) // stale-snapshot race, still a full round trip
							} else {
								atomic.AddInt64(&updates, 1)
							}
						}
					})
					b.StopTimer()
					if total := updates + conflicts; total > 0 {
						b.ReportMetric(float64(updates)/b.Elapsed().Seconds(), "updates/sec")
						b.ReportMetric(100*float64(conflicts)/float64(total), "conflict%")
					}
				})
			}
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkStaticDFS(b *testing.B) {
	for _, n := range sizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			g := GnpConnected(n, 4.0/float64(n), rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = StaticDFS(g)
			}
		})
	}
}

func BenchmarkVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := GnpConnected(1024, 4.0/1024, rng)
	m := NewMaintainer(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(m.Graph(), m.Tree(), m.PseudoRoot()); err != nil {
			b.Fatal(err)
		}
	}
}
