package main

import (
	"fmt"
	"math/rand"
	"time"

	dfs "repro"
)

// mixedUpdate applies one random feasible update to m, returning false if
// nothing applied. 60% edge ops, 40% vertex ops.
func mixedUpdate(m *dfs.Maintainer, rng *rand.Rand) bool {
	g := m.Graph()
	switch rng.Intn(10) {
	case 0, 1, 2:
		if e, ok := dfs.RandomNonEdge(g, rng); ok {
			return m.InsertEdge(e.U, e.V) == nil
		}
	case 3, 4, 5:
		if e, ok := dfs.RandomEdge(g, rng); ok {
			return m.DeleteEdge(e.U, e.V) == nil
		}
	case 6, 7:
		var nbrs []int
		for v := 0; v < g.NumVertexSlots() && len(nbrs) < 4; v++ {
			if g.IsVertex(v) && rng.Float64() < 0.01 {
				nbrs = append(nbrs, v)
			}
		}
		_, err := m.InsertVertex(nbrs)
		return err == nil
	default:
		if g.NumVertices() > 8 {
			v := rng.Intn(g.NumVertexSlots())
			if g.IsVertex(v) {
				return m.DeleteVertex(v) == nil
			}
		}
	}
	return false
}

// runE1: per-update cost scaling of the parallel algorithm vs the
// sequential rerooter and static recomputation.
func runE1(seed int64) {
	fmt.Printf("%-7s %-8s | %-9s %-9s %-7s | %-9s %-9s | %-10s %-10s %-10s\n",
		"n", "m", "par.dep", "log³n", "rounds", "seq.steps", "n(ref)", "par µs", "seq µs", "static µs")
	for _, n := range []int{256, 1024, 4096, 16384} {
		rng := rand.New(rand.NewSource(seed))
		g := dfs.GnpConnected(n, 3.0/float64(n), rng)
		m0 := g.NumEdges()

		par := dfs.NewMaintainer(g)
		seq := dfs.NewMaintainerWith(g, dfs.Options{RebuildD: true, Sequential: true})

		const updates = 20
		var parDepth, parRounds, seqSteps int64
		var parNS, seqNS, staticNS int64
		rngP := rand.New(rand.NewSource(seed + 1))
		rngS := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < updates; i++ {
			d0 := par.Machine().Depth()
			t0 := time.Now()
			if !mixedUpdate(par, rngP) {
				continue
			}
			parNS += time.Since(t0).Nanoseconds()
			parDepth += par.Machine().Depth() - d0
			parRounds += int64(par.LastStats().Rounds)

			t0 = time.Now()
			mixedUpdate(seq, rngS)
			seqNS += time.Since(t0).Nanoseconds()
			seqSteps += int64(seq.LastStats().TotalTraversal)

			// Static recompute on the evolved graph.
			t0 = time.Now()
			_ = dfs.StaticDFS(par.Graph())
			staticNS += time.Since(t0).Nanoseconds()
		}
		lg := log2i(n)
		fmt.Printf("%-7d %-8d | %-9.0f %-9d %-7.1f | %-9.1f %-9d | %-10.0f %-10.0f %-10.0f\n",
			n, m0,
			float64(parDepth)/updates, cube(lg), float64(parRounds)/updates,
			float64(seqSteps)/updates, n,
			float64(parNS)/updates/1e3, float64(seqNS)/updates/1e3,
			float64(staticNS)/updates/1e3)
	}
	fmt.Println("shape check: par.dep tracks log³n (polylog), seq.steps can grow with n,")
	fmt.Println("static cost grows with m+n. Absolute µs are host-dependent.")
}

// runE2: fault tolerant batches.
func runE2(seed int64) {
	const n = 4096
	rng := rand.New(rand.NewSource(seed))
	g := dfs.GnpConnected(n, 3.0/float64(n), rng)
	ft := dfs.Preprocess(g, 8)
	fmt.Printf("preprocessed once: %d words for m=%d edges (O(m) check: ratio %.2f)\n\n",
		ft.SizeWords(), g.NumEdges(), float64(ft.SizeWords())/float64(g.NumEdges()))
	fmt.Printf("%-3s | %-10s %-12s %-12s %-10s\n",
		"k", "batch µs", "frag/query", "rounds", "k·log^3 n")
	lg := log2i(n)
	for _, k := range []int{1, 2, 3, 4} {
		var ns, frags, queries, rounds int64
		const batches = 10
		for b := 0; b < batches; b++ {
			batch := randomBatch(g, k, rng)
			t0 := time.Now()
			res, err := ft.Apply(batch)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			ns += time.Since(t0).Nanoseconds()
			frags += res.Fragments
			queries += res.FragQueries
			rounds += int64(res.Stats.Rounds)
		}
		fq := 0.0
		if queries > 0 {
			fq = float64(frags) / float64(queries)
		}
		fmt.Printf("%-3d | %-10.0f %-12.2f %-12.1f %-10d\n",
			k, float64(ns)/batches/1e3, fq, float64(rounds)/batches, k*cube(lg))
	}
	fmt.Println("\nshape check: fragments per query grow with k (Theorem 9); batch cost")
	fmt.Println("grows with k but never triggers a rebuild of D.")
}

func randomBatch(g *dfs.Graph, k int, rng *rand.Rand) []dfs.Update {
	scratch := g.Clone()
	var batch []dfs.Update
	for len(batch) < k {
		switch rng.Intn(3) {
		case 0:
			if e, ok := dfs.RandomNonEdge(scratch, rng); ok {
				if scratch.InsertEdge(e.U, e.V) == nil {
					batch = append(batch, dfs.Update{Kind: dfs.InsertEdge, U: e.U, V: e.V})
				}
			}
		case 1:
			if e, ok := dfs.RandomEdge(scratch, rng); ok {
				if scratch.DeleteEdge(e.U, e.V) == nil {
					batch = append(batch, dfs.Update{Kind: dfs.DeleteEdge, U: e.U, V: e.V})
				}
			}
		default:
			v := rng.Intn(scratch.NumVertexSlots())
			if scratch.IsVertex(v) && scratch.NumVertices() > 8 {
				if scratch.DeleteVertex(v) == nil {
					batch = append(batch, dfs.Update{Kind: dfs.DeleteVertex, U: v})
				}
			}
		}
	}
	return batch
}

// runE3: semi-streaming pass budget.
func runE3(seed int64) {
	fmt.Printf("%-7s | %-12s %-8s | %-14s %-10s\n",
		"n", "sched-pass", "log²n", "resident(wd)", "stream(m)")
	for _, n := range []int{256, 1024, 4096} {
		rng := rand.New(rand.NewSource(seed))
		g := dfs.GnpConnected(n, 4.0/float64(n), rng)
		s := dfs.NewStreaming(g)
		worst := 0
		for i := 0; i < 40; i++ {
			view := s.Snapshot()
			var err error
			if i%3 == 0 {
				if e, ok := dfs.RandomEdge(view, rng); ok {
					err = s.DeleteEdge(e.U, e.V)
				}
			} else if e, ok := dfs.RandomNonEdge(view, rng); ok {
				err = s.InsertEdge(e.U, e.V)
			}
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			if s.LastScheduledPasses() > worst {
				worst = s.LastScheduledPasses()
			}
		}
		lg := log2i(n)
		fmt.Printf("%-7d | %-12d %-8d | %-14d %-10d\n",
			n, worst, lg*lg, s.ResidentWords(), s.Stream().Len())
	}
	fmt.Println("\nshape check: worst passes/update stays under log²n while the stream")
	fmt.Println("(the graph) is ~4n edges and resident memory stays O(n).")
}

// runE4: distributed rounds/messages vs diameter at fixed n.
func runE4(seed int64) {
	fmt.Printf("%-16s %-6s %-5s | %-12s %-12s %-14s %-12s\n",
		"layout", "diam", "B", "rounds/upd", "D·log²n", "msgs/upd", "node words")
	n := 256
	for _, layout := range [][2]int{{4, 64}, {8, 32}, {16, 16}, {32, 8}, {64, 4}} {
		g := dfs.CycleOfCliques(layout[0], layout[1])
		d := g.Diameter()
		m := dfs.NewDistributed(g, 0)
		rng := rand.New(rand.NewSource(seed))
		var rounds, msgs, cnt int64
		for i := 0; i < 20; i++ {
			var u dfs.Update
			ok := false
			if i%2 == 0 {
				if e, has := dfs.RandomNonEdge(m.Core().Graph(), rng); has {
					u, ok = dfs.Update{Kind: dfs.InsertEdge, U: e.U, V: e.V}, true
				}
			} else if e, has := dfs.RandomEdge(m.Core().Graph(), rng); has {
				u, ok = dfs.Update{Kind: dfs.DeleteEdge, U: e.U, V: e.V}, true
			}
			if !ok {
				continue
			}
			if _, err := m.Apply(u); err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			rounds += m.LastRounds()
			msgs += m.LastMessages()
			cnt++
		}
		lg := log2i(n)
		fmt.Printf("%2dx%-13d %-6d %-5d | %-12.0f %-12d %-14.0f %-12d\n",
			layout[0], layout[1], d, m.Network().B,
			float64(rounds)/float64(cnt), d*lg*lg,
			float64(msgs)/float64(cnt), m.MaxNodeWords())
	}
	fmt.Println("\nshape check: rounds/update grow linearly with the diameter at fixed n;")
	fmt.Println("message size B shrinks as n/D; per-node memory stays O(n).")
}
