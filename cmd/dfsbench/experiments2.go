package main

import (
	"fmt"
	"math/rand"
	"time"

	dfs "repro"
)

// runE5: data structure D build/query costs.
func runE5(seed int64) {
	fmt.Printf("%-7s %-9s | %-10s %-10s | %-10s %-8s\n",
		"n", "m", "build µs", "size(wd)", "batch µs", "log n")
	for _, n := range []int{256, 1024, 4096, 16384} {
		rng := rand.New(rand.NewSource(seed))
		g := dfs.GnpConnected(n, 4.0/float64(n), rng)
		t0 := time.Now()
		m := dfs.NewMaintainer(g) // includes Build of D
		buildNS := time.Since(t0).Nanoseconds()

		// One batch of ~n independent queries: a full update exercises it;
		// time a tree-edge delete (query-heaviest case).
		e := pickTreeEdge(m)
		t0 = time.Now()
		if err := m.DeleteEdge(e.U, e.V); err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		queryNS := time.Since(t0).Nanoseconds()
		fmt.Printf("%-7d %-9d | %-10.0f %-10d | %-10.0f %-8d\n",
			n, g.NumEdges(), float64(buildNS)/1e3, m.D().SizeWords(),
			float64(queryNS)/1e3, log2i(n))
	}
	fmt.Println("\nshape check: D's size is 2m words exactly; build and query-batch")
	fmt.Println("costs grow near-linearly in m and n·log n respectively (work), with")
	fmt.Println("model depth O(log n) recorded by the machine.")
}

func pickTreeEdge(m *dfs.Maintainer) dfs.Edge {
	t := m.Tree()
	g := m.Graph()
	for v := 0; v < g.NumVertexSlots(); v++ {
		if t.Present(v) && t.Parent[v] != m.PseudoRoot() && t.Parent[v] != dfs.None {
			return dfs.Edge{U: t.Parent[v], V: v}
		}
	}
	panic("no tree edge")
}

// runE6: work per update as density grows — the Section 7 discussion.
// The parallel algorithm spends O(m) work per update (it rebuilds D);
// the sequential rerooter's work stays near O(n) per update.
func runE6(seed int64) {
	const n = 1024
	fmt.Printf("%-8s %-9s | %-14s %-10s | %-14s %-10s\n",
		"avg deg", "m", "par work/upd", "m·log n", "seq work/upd", "n·log³n")
	for _, deg := range []int{2, 4, 8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(seed))
		g := dfs.GnpConnected(n, float64(deg)/float64(n), rng)
		par := dfs.NewMaintainer(g)
		seq := dfs.NewMaintainerWith(g, dfs.Options{RebuildD: false, Sequential: true, Headroom: 128})

		var parW, seqW int64
		const updates = 15
		for i := 0; i < updates; i++ {
			// Force a restructuring update on both: delete a tree edge
			// (always reroots), then silently restore it.
			w0 := par.Machine().Work()
			e := pickTreeEdge(par)
			if err := par.DeleteEdge(e.U, e.V); err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			parW += par.Machine().Work() - w0
			_ = par.InsertEdge(e.U, e.V)

			w0 = seq.Machine().Work()
			e = pickTreeEdgeSeq(seq)
			if err := seq.DeleteEdge(e.U, e.V); err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			seqW += seq.Machine().Work() - w0
			_ = seq.InsertEdge(e.U, e.V)
		}
		lg := log2i(n)
		fmt.Printf("%-8d %-9d | %-14.0f %-10d | %-14.0f %-10d\n",
			deg, g.NumEdges(), float64(parW)/updates, g.NumEdges()*lg,
			float64(seqW)/updates, n*cube(lg))
	}
	fmt.Println("\nshape check: parallel work/update tracks m·log n (the D rebuild term)")
	fmt.Println("and so grows with density; sequential work stays within its n·log³n")
	fmt.Println("budget independent of m. The crossover sits where m ≈ n·log²n — the")
	fmt.Println("§7 work-efficiency gap that the paper leaves open.")
}

// pickTreeEdgeSeq picks a deep tree edge so the sequential rerooter has
// real work (not a leaf detachment).
func pickTreeEdgeSeq(m *dfs.Maintainer) dfs.Edge {
	t := m.Tree()
	g := m.Graph()
	best, bestSize := dfs.Edge{}, -1
	for v := 0; v < g.NumVertexSlots(); v++ {
		if t.Present(v) && t.Parent[v] != m.PseudoRoot() && t.Parent[v] != dfs.None {
			if t.Size(v) > bestSize {
				best, bestSize = dfs.Edge{U: t.Parent[v], V: v}, t.Size(v)
			}
		}
	}
	if bestSize < 0 {
		panic("no tree edge")
	}
	return best
}

// runE7: scheduler ablation — traversal mix and phase/stage behaviour on
// random vs adversarial topologies.
func runE7(seed int64) {
	fmt.Printf("%-12s %-7s | %-6s %-6s %-6s %-17s | %-6s %-6s %-7s %-5s\n",
		"workload", "n", "disint", "halve", "discon", "heavy l/p/r/spec", "phase", "stage", "rounds", "fall")
	type wl struct {
		name string
		g    *dfs.Graph
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1024
	for _, w := range []wl{
		{"gnp-sparse", dfs.GnpConnected(n, 2.0/float64(n), rng)},
		{"gnp-dense", dfs.GnpConnected(n, 16.0/float64(n), rng)},
		{"broom", dfs.BroomGraph(n, n/2)},
		{"path", dfs.PathGraph(n)},
		{"star", dfs.StarGraph(n)},
		{"grid", dfs.GridGraph(32, 32)},
		{"caterpillar", dfs.CycleOfCliques(64, 16)},
	} {
		m := dfs.NewMaintainer(w.g)
		var agg dfs.Stats
		rngU := rand.New(rand.NewSource(seed + 3))
		for i := 0; i < 25; i++ {
			if mixedUpdate(m, rngU) {
				s := m.LastStats()
				agg.Add(s)
			}
		}
		fmt.Printf("%-12s %-7d | %-6d %-6d %-6d %4d/%4d/%2d/%2d    | %-6d %-6d %-7d %-5d\n",
			w.name, w.g.NumVertices(),
			agg.Disintegrate, agg.PathHalve, agg.Disconnect,
			agg.HeavyL, agg.HeavyP, agg.HeavyR, agg.HeavySpecial,
			agg.MaxPhase, agg.MaxStage, agg.Rounds, agg.Fallbacks+agg.GenericFall)
	}
	fmt.Println("\nshape check: rounds stay polylog on every topology; fallbacks stay 0;")
	fmt.Println("heavy-subtree scenarios appear mainly on skewed (broom/path) instances.")
}
