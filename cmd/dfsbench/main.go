// Command dfsbench regenerates the repository's experiment tables (E1–E7 in
// DESIGN.md / EXPERIMENTS.md), one table per theorem-level claim of the
// paper. Each experiment prints a self-contained table; -exp all runs the
// full set.
//
// Usage:
//
//	dfsbench -exp e1            # fully dynamic update cost vs baselines
//	dfsbench -exp all -seed 42  # everything, fixed seed
package main

import (
	"flag"
	"fmt"
	"os"
)

var experiments = []struct {
	name string
	desc string
	run  func(seed int64)
}{
	{"e1", "Thm 13: fully dynamic update — parallel depth vs sequential vs static", runE1},
	{"e2", "Thm 14: fault tolerant batches — depth and fragment growth with k", runE2},
	{"e3", "Thm 15: semi-streaming — passes per update and resident memory", runE3},
	{"e4", "Thm 16: distributed CONGEST(n/D) — rounds and messages vs diameter", runE4},
	{"e5", "Thm 8: data structure D — build cost, size, query depth", runE5},
	{"e6", "§7: work per update — parallel O(m) vs sequential Õ(n), crossover", runE6},
	{"e7", "§4 ablation: traversal mix, phase/stage maxima, round distribution", runE7},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (e1..e7 or all)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("================================================================\n")
		fmt.Printf("%s — %s\n", e.name, e.desc)
		fmt.Printf("================================================================\n")
		e.run(*seed)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %s  %s\n", e.name, e.desc)
		}
		os.Exit(2)
	}
}

func log2i(n int) int {
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}

func cube(x int) int { return x * x * x }
