// Command dfsload drives the multi-graph serving layer (dfs.Service) with
// synthetic tenant traffic: a fleet of writers streams edge updates through
// Apply/ApplyBatch while readers hammer snapshot queries (IsAncestor, Path,
// periodic full DFS verification) and — for a -querymix slice of reads —
// the snapshot analytics engine (LCA, k-th ancestors, subtree aggregates,
// tree paths, biconnectivity) through Service.Query, then the per-shard
// metrics are printed with index-cache hit rates.
//
// Usage:
//
//	dfsload                                  # defaults: GOMAXPROCS shards
//	dfsload -shards 8 -graphs 32 -n 2048 \
//	        -writers 8 -readers 16 -batch 4 -querymix 50 -duration 10s
//	dfsload -debugaddr localhost:6060 -duration 1m   # then:
//	curl localhost:6060/debug/service                # live histograms+traces
//	curl localhost:6060/debug/service/tenants        # hottest graphs + meters
//	curl localhost:6060/debug/service/history        # sampled time-series
//	curl localhost:6060/debug/metrics                # Prometheus exposition
//
// With -debugaddr the service's debug endpoint (metrics JSON with per-shard
// latency percentiles, slowest update traces, per-tenant cost attribution,
// the sampler's time-series, a Prometheus text exposition, expvar, pprof)
// is served for the whole run; -sample sets the sampler interval (the width
// of one history window). The final report prints p50/p99 update and query
// latency, the top-K hottest graphs with their per-tenant meters (-hot),
// the stage-time breakdown of the update loops, and the top slowest traces.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dfs "repro"
)

func main() {
	var (
		shards   = flag.Int("shards", runtime.GOMAXPROCS(0), "service shards (update loops)")
		graphs   = flag.Int("graphs", 4*runtime.GOMAXPROCS(0), "tenant graphs")
		n        = flag.Int("n", 512, "vertices per graph")
		deg      = flag.Float64("deg", 4.0, "average degree of the initial graphs")
		writers  = flag.Int("writers", runtime.GOMAXPROCS(0), "writer goroutines")
		readers  = flag.Int("readers", 2*runtime.GOMAXPROCS(0), "reader goroutines")
		batch    = flag.Int("batch", 4, "updates per ApplyBatch round (1 = plain Apply)")
		verifyPc = flag.Int("verify", 2, "percent of reads running full DFS verification")
		queryMix = flag.Int("querymix", 25, "percent of reads using the snapshot analytics engine (LCA/bicon/subtree via Service.Query)")
		qcache   = flag.Int("querycache", 0, "index-cache capacity per shard (0 = default)")
		sample   = flag.Duration("sample", 0, "metrics sampler interval — the width of one /debug/service/history window (0 = default 1s)")
		hotK     = flag.Int("hot", 8, "rows in the final hottest-graphs table (0 disables)")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		seed     = flag.Int64("seed", 1, "workload seed")
		skew     = flag.Float64("skew", 0, "Zipf exponent for writer graph selection so a hot tenant emerges (>1 required; 0 = uniform)")
		migrate  = flag.Duration("migrate", 0, "force a live migration of a rotating graph to a random shard every interval (0 = off)")
		dbgAddr  = flag.String("debugaddr", "", "serve the live debug endpoint (JSON metrics, slow traces, pprof) on this address for the whole run, e.g. localhost:6060")
		walDir   = flag.String("wal", "", "enable durability: per-shard write-ahead log + checkpoints in this directory")
		walSync  = flag.String("walfsync", "batch", "WAL fsync policy: batch (group commit), always, interval")
		walEvery = flag.Int("walcheckpoint", 0, "checkpoint a shard every N applied updates (0 = default)")
		ackDir   = flag.String("acklog", "", "crash-harness mode: writers record intended and acknowledged updates in this directory")
		recover_ = flag.Bool("recoververify", false, "recover from -wal, verify the replayed state against -acklog, and exit")
	)
	flag.Parse()
	if *skew != 0 && *skew <= 1 {
		fmt.Fprintf(os.Stderr, "-skew %v: the Zipf exponent must be > 1 (0 disables)\n", *skew)
		os.Exit(2)
	}

	cfg := dfs.ServiceConfig{Shards: *shards, QueryCache: *qcache, SampleInterval: *sample}
	if *walDir != "" {
		var policy = dfs.WALSyncBatch
		switch *walSync {
		case "batch":
		case "always":
			policy = dfs.WALSyncAlways
		case "interval":
			policy = dfs.WALSyncInterval
		default:
			fmt.Fprintf(os.Stderr, "unknown -walfsync %q (want batch, always or interval)\n", *walSync)
			os.Exit(2)
		}
		cfg.WAL = &dfs.WALConfig{Dir: *walDir, Policy: policy, CheckpointEvery: *walEvery}
	}
	svc, err := dfs.OpenService(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "open service: %v\n", err)
		os.Exit(1)
	}
	if *recover_ {
		os.Exit(recoverVerify(svc, *ackDir, *graphs, *n, *deg, *seed))
	}
	if *dbgAddr != "" {
		go func() {
			fmt.Printf("debug endpoint on http://%s/debug/service\n", *dbgAddr)
			if err := http.ListenAndServe(*dbgAddr, svc.DebugHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "debug endpoint: %v\n", err)
			}
		}()
	}
	svc.WaitRecovered()
	ids := make([]dfs.GraphID, *graphs)
	setup := time.Now()
	recovered := 0
	for i := range ids {
		ids[i] = dfs.GraphID(fmt.Sprintf("tenant-%04d", i))
		rng := rand.New(rand.NewSource(*seed + int64(i)))
		g := dfs.GnpConnected(*n, *deg/float64(*n), rng)
		switch _, err := svc.CreateGraph(ids[i], g); {
		case err == nil:
		case errors.Is(err, dfs.ErrGraphExists):
			// Durable restart: the graph came back from the WAL directory.
			recovered++
		case errors.Is(err, dfs.ErrClosed):
			fmt.Fprintln(os.Stderr, "service closed during setup")
			os.Exit(1)
		default:
			fmt.Fprintf(os.Stderr, "create %s: %v\n", ids[i], err)
			os.Exit(1)
		}
	}
	fmt.Printf("created %d graphs (%d recovered; n=%d, deg=%.1f) on %d shards in %v\n",
		*graphs, recovered, *n, *deg, *shards, time.Since(setup).Round(time.Millisecond))

	var (
		stop                      atomic.Bool
		stopCh                    = make(chan struct{})
		applied, conflicts        atomic.Int64
		reads, verifies, readErrs atomic.Int64
		idxQueries                atomic.Int64
		wgW, wgR                  sync.WaitGroup
		fatal                     = make(chan error, *writers+*readers)
	)

	// Writers: each owns a disjoint slice of the graphs (round-robin), keeps
	// a mirror per graph for valid update generation, and submits coalesced
	// cross-graph batches. Mirror divergence is impossible: a graph has
	// exactly one writer, and the shard loop applies in submission order.
	for w := 0; w < *writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			// Crash-harness mode: record every update before submitting it
			// (intent) and again once durably acknowledged (ack). The intent
			// file reaches the page cache before the service sees the update,
			// so after kill -9 the recovered per-graph state must be a prefix
			// of the intent sequence at least as long as the acked prefix —
			// exactly what -recoververify checks. Each run also records a
			// baseline marker per owned graph (the version its mirror started
			// from), so the verifier can splice epochs: intents left in flight
			// by an earlier kill are excluded instead of being replayed into
			// the middle of the next epoch's sequence.
			var ack *os.File
			if *ackDir != "" {
				f, err := os.OpenFile(
					filepath.Join(*ackDir, fmt.Sprintf("writer-%03d.log", w)),
					os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					fatal <- err
					return
				}
				ack = f
				defer f.Close()
			}
			rng := rand.New(rand.NewSource(*seed + 10_000 + int64(w)))
			var mine []dfs.GraphID
			mirrors := map[dfs.GraphID]*dfs.Graph{}
			for i := w; i < len(ids); i += *writers {
				snap, err := svc.Snapshot(ids[i])
				if err != nil {
					fatal <- err
					return
				}
				mine = append(mine, ids[i])
				mirrors[ids[i]] = snap.Graph.Mutable()
				if ack != nil {
					fmt.Fprintf(ack, "R %s %d\n", ids[i], snap.Version)
				}
			}
			if len(mine) == 0 {
				return
			}
			// Skewed load: rank 0 of each writer's slice becomes its hot
			// tenant, drawing a Zipf-sized share of the writer's updates, so
			// the hottest-graphs ranking and the rebalancer have a real
			// imbalance to see instead of uniform noise.
			var zipf *rand.Zipf
			if *skew > 1 && len(mine) > 1 {
				zipf = rand.NewZipf(rng, *skew, 1, uint64(len(mine)-1))
			}
			for !stop.Load() {
				items := make([]dfs.BatchItem, 0, *batch)
				for len(items) < *batch {
					pick := rng.Intn(len(mine))
					if zipf != nil {
						pick = int(zipf.Uint64())
					}
					id := mine[pick]
					mirror := mirrors[id]
					var u dfs.Update
					if e, ok := dfs.RandomNonEdge(mirror, rng); ok && rng.Intn(2) == 0 {
						mirror.InsertEdge(e.U, e.V)
						u = dfs.Update{Kind: dfs.InsertEdge, U: e.U, V: e.V}
					} else if e, ok := dfs.RandomEdge(mirror, rng); ok {
						mirror.DeleteEdge(e.U, e.V)
						u = dfs.Update{Kind: dfs.DeleteEdge, U: e.U, V: e.V}
					} else {
						continue
					}
					items = append(items, dfs.BatchItem{Graph: id, Update: u})
				}
				if ack != nil {
					for _, it := range items {
						fmt.Fprintf(ack, "I %s %d %d %d\n", it.Graph, it.Update.Kind, it.Update.U, it.Update.V)
					}
				}
				var futs []*dfs.UpdateFuture
				var err error
				if *batch == 1 {
					fut, aerr := svc.Apply(items[0].Graph, items[0].Update)
					futs, err = []*dfs.UpdateFuture{fut}, aerr
				} else {
					futs, err = svc.ApplyBatch(items)
				}
				if err != nil {
					return // service closing
				}
				for i, fut := range futs {
					if _, _, err := fut.Wait(); err != nil {
						conflicts.Add(1)
					} else {
						applied.Add(1)
						if ack != nil {
							fmt.Fprintf(ack, "A %s\n", items[i].Graph)
						}
					}
				}
			}
		}(w)
	}

	// Readers: snapshot queries across all tenants; a configurable slice of
	// reads run the full DFS verifier against the frozen snapshot.
	for r := 0; r < *readers; r++ {
		wgR.Add(1)
		go func(r int) {
			defer wgR.Done()
			rng := rand.New(rand.NewSource(*seed + 20_000 + int64(r)))
			for !stop.Load() {
				id := ids[rng.Intn(len(ids))]
				snap, err := svc.Snapshot(id)
				if err != nil {
					readErrs.Add(1)
					continue
				}
				u, v := rng.Intn(*n), rng.Intn(*n)
				if snap.Tree.Present(u) && snap.Tree.Present(v) {
					if _, err := snap.IsAncestor(u, v); err != nil {
						readErrs.Add(1)
					}
					if snap.Tree.IsAncestor(v, u) {
						if _, err := snap.Path(u, v); err != nil {
							readErrs.Add(1)
						}
					}
				}
				if rng.Intn(100) < *queryMix {
					// Analytics read: version-pinned derived-index queries.
					h, qerr := svc.Query(id)
					if qerr != nil {
						readErrs.Add(1)
					} else if h.Tree().Present(u) && h.Tree().Present(v) {
						nq := int64(0)
						l, lerr := h.LCA(u, v)
						if lerr != nil {
							readErrs.Add(1)
						}
						nq++
						if l >= 0 {
							if _, err := h.TreePath(u, v); err != nil {
								readErrs.Add(1)
							}
							nq++
						}
						if _, err := h.KthAncestor(u, rng.Intn(8)); err != nil {
							readErrs.Add(1)
						}
						nq++
						if _, err := h.SubtreeAgg(v); err != nil {
							readErrs.Add(1)
						}
						nq++
						if _, err := h.SameBiconnectedComponent(u, v); err != nil {
							readErrs.Add(1)
						}
						nq++
						idxQueries.Add(nq)
					}
				}
				reads.Add(1)
				if rng.Intn(100) < *verifyPc {
					verifies.Add(1)
					if err := snap.Verify(); err != nil {
						fatal <- fmt.Errorf("snapshot %s@%d failed verification: %w", id, snap.Version, err)
						return
					}
				}
			}
		}(r)
	}

	// Forced migrations: rotate through the graphs, shipping one to a random
	// shard every -migrate interval, so live handoffs (and, under the crash
	// harness, kills landing inside the migration window) happen without
	// waiting for the rebalancer's hysteresis. Migrating to the graph's
	// current shard is a no-op; errors after shutdown began are expected.
	var wgM sync.WaitGroup
	if *migrate > 0 {
		wgM.Add(1)
		go func() {
			defer wgM.Done()
			mrng := rand.New(rand.NewSource(*seed + 30_000))
			tick := time.NewTicker(*migrate)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				case <-tick.C:
				}
				id := ids[i%len(ids)]
				if err := svc.MigrateGraph(id, mrng.Intn(*shards)); err != nil && !stop.Load() {
					fmt.Fprintf(os.Stderr, "migrate %s: %v\n", id, err)
				}
			}
		}()
	}

	deadline := time.After(*duration)
	select {
	case err := <-fatal:
		fmt.Fprintf(os.Stderr, "FATAL: %v\n", err)
		stop.Store(true)
		close(stopCh)
		wgW.Wait()
		wgR.Wait()
		wgM.Wait()
		os.Exit(1)
	case <-deadline:
	}
	stop.Store(true)
	close(stopCh)
	wgW.Wait()
	wgR.Wait()
	wgM.Wait()
	if err := svc.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close: %v\n", err)
	}

	secs := duration.Seconds()
	fmt.Printf("\n%-8s %7s %7s %5s %8s %12s %10s %10s %14s %12s\n",
		"shard", "graphs", "queue", "hwm", "updates", "updates/sec", "apply p50", "apply p99", "pram depth", "pram work")
	m := svc.Metrics()
	for _, sm := range m.Shards {
		fmt.Printf("%-8d %7d %3d/%-3d %5d %8d %12.0f %10v %10v %14d %12d\n",
			sm.Shard, sm.Graphs, sm.QueueDepth, sm.QueueCap, sm.QueueHighWater,
			sm.Updates, sm.UpdatesPerSec,
			time.Duration(sm.ApplyHist.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(sm.ApplyHist.Quantile(0.99)).Round(time.Microsecond),
			sm.PRAMDepth, sm.PRAMWork)
	}

	// Per-tenant cost attribution: the most expensive graphs by cumulative
	// apply cost, ranked by the per-shard Space-Saving sketches with each
	// one's exact meter sample alongside.
	if hot := svc.HotGraphs(*hotK); len(hot) > 0 {
		fmt.Printf("\n%-4s %-14s %5s %8s %8s %12s %10s %9s %12s\n",
			"hot", "graph", "shard", "updates", "rejects", "apply", "wal bytes", "idx b/p", "est cost")
		for i, hg := range hot {
			fmt.Printf("%-4d %-14s %5d %8d %8d %12v %10d %4d/%-4d %12v\n",
				i+1, hg.Graph, hg.Shard, hg.Applied, hg.Rejected,
				hg.ApplyTime.Round(time.Microsecond), hg.WALBytes,
				hg.IndexBuilds, hg.IndexPatches,
				time.Duration(hg.EstCost).Round(time.Microsecond))
		}
	}

	// Latency distributions across all shards (merged histograms).
	pq := func(h dfs.HistogramSnapshot) string {
		if h.Count == 0 {
			return "(no samples)"
		}
		return fmt.Sprintf("p50 %v  p90 %v  p99 %v  max %v  (n=%d)",
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.90)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond), h.Count)
	}
	fmt.Printf("\nlatency  update apply    %s\n", pq(m.ApplyHist))
	fmt.Printf("         mailbox wait    %s\n", pq(m.MailboxWaitHist))
	fmt.Printf("         snapshot publish %s\n", pq(m.PublishHist))
	fmt.Printf("         query resolve   %s\n", pq(m.QueryResolveHist))
	fmt.Printf("         index build     %s\n", pq(m.IndexBuildHist))
	fmt.Printf("         index patch     %s\n", pq(m.IndexPatchHist))

	// Where the update loops' wall-clock went, stage by stage.
	if total := m.Stages.Total(); total > 0 {
		pc := func(d time.Duration) string {
			return fmt.Sprintf("%v (%4.1f%%)", d.Round(time.Millisecond), 100*float64(d)/float64(total))
		}
		fmt.Printf("\nstages   wait %s  plan %s  engine %s  dmaint %s  publish %s\n",
			pc(m.Stages.Wait), pc(m.Stages.Plan), pc(m.Stages.Engine),
			pc(m.Stages.DMaint), pc(m.Stages.Publish))
	}

	// The slowest retained update traces, stage by stage.
	if slow := svc.SlowTraces(); len(slow) > 0 {
		if len(slow) > 3 {
			slow = slow[:3]
		}
		fmt.Printf("\nslowest updates:\n")
		for i, tr := range slow {
			fmt.Printf("  #%d %v  %s %s on %s (shard %d, batch %d): %s, moved %d",
				i+1, tr.Total.Round(time.Microsecond), tr.Kind, stageLine(tr),
				tr.Graph, tr.Shard, tr.Batch, tr.Outcome, tr.Moved)
			if tr.Err != "" {
				fmt.Printf(" [%s]", tr.Err)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\napplied %d updates (%.0f/sec), %d conflicts; %d reads (%.0f/sec), %d verified snapshots, %d read errors\n",
		applied.Load(), float64(applied.Load())/secs,
		conflicts.Load(),
		reads.Load(), float64(reads.Load())/secs,
		verifies.Load(), readErrs.Load())
	// Live handoffs observed this run: forced (-migrate), rebalancer-driven,
	// or none — with the write pause each one imposed on its tenant.
	if m.Migrations+m.MigrationFailures > 0 || *migrate > 0 {
		fmt.Printf("migrations %d completed, %d failed; %d graphs routed off their hash shard; pause %s\n",
			m.Migrations, m.MigrationFailures, m.RoutedGraphs, pq(m.MigrationPauseHist))
	}
	if lookups := m.IndexCacheHits + m.IndexCacheMisses; lookups > 0 {
		fmt.Printf("index queries %d (%.0f/sec); cache: %.1f%% hit over %d lookups, %d evictions, %d index builds in %v\n",
			idxQueries.Load(), float64(idxQueries.Load())/secs,
			100*float64(m.IndexCacheHits)/float64(lookups), lookups,
			m.IndexCacheEvictions, m.IndexBuilds, m.IndexBuildTime.Round(time.Microsecond))
		meanPatch := time.Duration(0)
		if m.IndexPatches > 0 {
			meanPatch = m.IndexPatchTime / time.Duration(m.IndexPatches)
		}
		fmt.Printf("index maintenance: %d patched vs %d fresh-built (%d fallbacks), mean patch %v\n",
			m.IndexPatches, m.IndexBuilds, m.IndexPatchFallbacks,
			meanPatch.Round(time.Microsecond))
	}
}

// intent is one update a crash-harness writer recorded before submitting.
type intent struct {
	kind, u, v int
}

// segment is one crash epoch's worth of a graph's intent log: the version
// the epoch's writer mirror started from (0 for a fresh graph, the
// recovered version after a restart) plus the intents and acks recorded
// until the next kill. Updates a kill left in flight live at the end of a
// segment and are excluded once the next segment's baseline shows they
// were never applied.
type segment struct {
	base    int
	intents []intent
	acked   int
}

// recoverVerify is the crash-harness verifier. After a kill -9 of a
// `dfsload -wal -acklog` run, main reopens the durable service and calls
// this with the same workload flags. It splits each graph's recorded
// intents into crash epochs at the R baseline markers, replays each
// epoch's applied prefix against a regenerated initial graph, and requires
// the recovered state to match exactly:
//
//   - per epoch, acked <= applied <= intents (no durably acknowledged
//     update may be lost; nothing beyond what was submitted may appear);
//     an epoch's applied count is pinned by the next epoch's baseline —
//     or by the recovered version for the final epoch — so intents a kill
//     left in flight are excluded rather than replayed;
//   - the recovered edge set equals the spliced epoch-prefix replay
//     (writers own disjoint graphs and shards apply in submission order,
//     so each prefix is deterministic);
//   - the recovered tree passes full DFS verification and the maintainer's
//     internal structure passes CheckSynced.
//
// Because every run records baselines, the same -wal/-acklog pair verifies
// across arbitrarily many load/kill/recover cycles, including shard-count
// changes between them.
func recoverVerify(svc *dfs.Service, ackDir string, graphs, n int, deg float64, seed int64) int {
	defer svc.Close()
	svc.WaitRecovered()
	if ackDir == "" {
		fmt.Fprintln(os.Stderr, "-recoververify needs -acklog")
		return 2
	}
	files, err := filepath.Glob(filepath.Join(ackDir, "writer-*.log"))
	if err != nil || len(files) == 0 {
		fmt.Fprintf(os.Stderr, "no intent logs under %s (err=%v)\n", ackDir, err)
		return 2
	}
	sort.Strings(files)
	segs := map[dfs.GraphID][]*segment{}
	torn := 0
	// cur tracks each graph's open segment while scanning one file; lines in
	// a file are chronological, so an R baseline closes the previous epoch's
	// segment and opens the next. Logs from before baselines existed (or a
	// torn R line) fall into an implicit base-0 segment.
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open %s: %v\n", path, err)
			return 2
		}
		cur := map[dfs.GraphID]*segment{}
		open := func(id dfs.GraphID, base int) *segment {
			s := &segment{base: base}
			segs[id] = append(segs[id], s)
			cur[id] = s
			return s
		}
		at := func(id dfs.GraphID) *segment {
			if s := cur[id]; s != nil {
				return s
			}
			return open(id, 0)
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			switch {
			case len(fields) == 3 && fields[0] == "R":
				var base int
				if _, err := fmt.Sscanf(fields[2], "%d", &base); err != nil {
					torn++
					continue
				}
				open(dfs.GraphID(fields[1]), base)
			case len(fields) == 5 && fields[0] == "I":
				var in intent
				if _, err := fmt.Sscanf(sc.Text(), "I %s %d %d %d",
					new(string), &in.kind, &in.u, &in.v); err != nil {
					torn++ // torn tail line: page-cache write cut mid-record
					continue
				}
				id := dfs.GraphID(fields[1])
				s := at(id)
				s.intents = append(s.intents, in)
			case len(fields) == 2 && fields[0] == "A":
				at(dfs.GraphID(fields[1])).acked++
			default:
				torn++
			}
		}
		f.Close()
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "RECOVERY FAILED: "+format+"\n", args...)
		return 1
	}
	var verified, replayed, beyondAck int
	for i := 0; i < graphs; i++ {
		id := dfs.GraphID(fmt.Sprintf("tenant-%04d", i))
		rng := rand.New(rand.NewSource(seed + int64(i)))
		mirror := dfs.GnpConnected(n, deg/float64(n), rng)
		gsegs := segs[id]
		// Baselines only grow (a graph's version never goes backward across
		// restarts), so sorting by base puts the epochs in order; the stable
		// sort keeps file order for the one tie that can happen — a creation
		// killed before its ack, re-created from scratch at base 0, where the
		// dead incarnation's segment correctly contributes zero applied.
		sort.SliceStable(gsegs, func(a, b int) bool { return gsegs[a].base < gsegs[b].base })
		snap, err := svc.Snapshot(id)
		if errors.Is(err, dfs.ErrUnknownGraph) {
			for _, s := range gsegs {
				if s.acked > 0 {
					return fail("%s: %d acked updates but the graph did not survive", id, s.acked)
				}
			}
			continue // killed before the graph's creation was acknowledged
		}
		if err != nil {
			return fail("%s: snapshot: %v", id, err)
		}
		v := int(snap.Version)
		if len(gsegs) == 0 {
			gsegs = []*segment{{}} // created but no writer traffic recorded
		}
		if gsegs[0].base != 0 {
			return fail("%s: first recorded epoch starts at version %d, not 0 (acklog dir does not cover the graph's history)",
				id, gsegs[0].base)
		}
		totalAcked := 0
		for k, s := range gsegs {
			// The epoch's applied count is pinned by the next epoch's
			// baseline — its writer mirror began at exactly the version the
			// restart recovered — or, for the live epoch, by the version
			// recovered now. Intents past it were in flight at the kill and
			// never applied; replaying them would corrupt the mirror.
			applied := v - s.base
			if k+1 < len(gsegs) {
				applied = gsegs[k+1].base - s.base
			}
			if applied < s.acked {
				return fail("%s: epoch from version %d applied %d updates but %d were durably acked",
					id, s.base, applied, s.acked)
			}
			if applied < 0 {
				return fail("%s: recovered at version %d behind a later epoch's baseline %d", id, v, s.base)
			}
			if applied > len(s.intents) {
				return fail("%s: epoch from version %d applied %d updates beyond its %d recorded intents",
					id, s.base, applied, len(s.intents))
			}
			for j, in := range s.intents[:applied] {
				var aerr error
				switch {
				case in.kind == int(dfs.InsertEdge):
					aerr = mirror.InsertEdge(in.u, in.v)
				case in.kind == int(dfs.DeleteEdge):
					aerr = mirror.DeleteEdge(in.u, in.v)
				default:
					aerr = fmt.Errorf("unexpected update kind %d", in.kind)
				}
				if aerr != nil {
					return fail("%s: epoch from version %d: intent %d/%d does not replay: %v",
						id, s.base, j+1, applied, aerr)
				}
			}
			totalAcked += s.acked
		}
		if mirror.NumEdges() != snap.Graph.NumEdges() || mirror.NumVertices() != snap.Graph.NumVertices() {
			return fail("%s: recovered graph has %d edges / %d vertices, intent replay has %d / %d",
				id, snap.Graph.NumEdges(), snap.Graph.NumVertices(), mirror.NumEdges(), mirror.NumVertices())
		}
		for _, e := range mirror.Edges() {
			if !snap.Graph.HasEdge(e.U, e.V) {
				return fail("%s: edge (%d,%d) present in intent replay, missing after recovery", id, e.U, e.V)
			}
		}
		if err := snap.Verify(); err != nil {
			return fail("%s: recovered tree is not a DFS tree: %v", id, err)
		}
		if err := svc.CheckSynced(id); err != nil {
			return fail("%s: maintainer out of sync after replay: %v", id, err)
		}
		verified++
		replayed += v
		beyondAck += v - totalAcked
	}
	m := svc.Metrics()
	// Placement: every surviving graph must live on exactly one shard. A
	// kill inside a migration window that left a graph duplicated (source
	// retirement lost) or dropped (route flipped to a copy that never
	// recovered) shows up as a shard-ownership sum that disagrees with the
	// count of graphs the routing table can reach.
	owned := 0
	for _, sm := range m.Shards {
		owned += sm.Graphs
	}
	if owned != verified {
		return fail("shards own %d graphs in total, but %d graphs are reachable — a crash left a graph on zero or two shards",
			owned, verified)
	}
	fmt.Printf("RECOVERY OK: %d/%d graphs verified (%d routed off their hash shard), %d updates live (%d beyond last ack), "+
		"%d WAL records replayed, %d skipped, %d torn tails, %d orphans, %d torn acklog lines\n",
		verified, graphs, m.RoutedGraphs, replayed, beyondAck,
		m.WALReplayed, m.WALSkipped, m.WALTornTails, m.WALOrphanRecords, torn)
	return 0
}

// stageLine renders a trace's nonzero stages compactly, pipeline order.
func stageLine(tr dfs.UpdateTrace) string {
	out := "["
	for _, sp := range tr.Stages() {
		if sp.D <= 0 {
			continue
		}
		if len(out) > 1 {
			out += " "
		}
		out += fmt.Sprintf("%s %v", sp.Stage, sp.D.Round(time.Microsecond))
	}
	return out + "]"
}
