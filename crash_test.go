package dfs

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoveryKill9 is the process-level durability test: it runs
// cmd/dfsload with a WAL and crash-harness intent logs, kills the process
// with SIGKILL mid-load, restarts it in -recoververify mode — on a
// different shard count, to also exercise recovery-time rerouting — and
// requires the replayed state to match the pre-crash durably-acked state
// (version bounds, edge-set equality against the intent-prefix replay,
// DFS verification, CheckSynced). A second load/kill/verify epoch on yet
// another shard count then drives the resharding crash chain, where the
// inherited logs still hold rerouted tails until the recovery barrier; that
// epoch also forces live migrations every few milliseconds so the kill lands
// inside the migration window and recovery must land each graph on exactly
// one shard — before or after its route flip, never both.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash test; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "dfsload")
	build := exec.Command(goBin, "build", "-o", bin, "./cmd/dfsload")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build dfsload: %v\n%s", err, out)
	}

	walDir := filepath.Join(dir, "wal")
	ackDir := filepath.Join(dir, "ack")
	for _, d := range []string{walDir, ackDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	workload := []string{
		"-graphs", "4", "-n", "96", "-deg", "4",
		"-writers", "2", "-readers", "1", "-batch", "4", "-seed", "42",
	}

	load := exec.Command(bin, append(workload, "-shards", "2",
		"-duration", "60s", "-wal", walDir, "-acklog", ackDir)...)
	load.Stdout, load.Stderr = os.Stderr, os.Stderr
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}
	defer load.Process.Kill()

	// Let traffic flow long enough for checkpoints and log tails to exist,
	// then kill -9: no shutdown path runs, the WAL tail may be torn.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(filepath.Join(walDir, "shard-0000.wal")); err == nil && fi.Size() > 4096 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("load run produced no WAL traffic")
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	if err := load.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	load.Wait()

	// Recover on a different shard count and verify against the intent logs.
	verify := exec.Command(bin, append(append([]string{}, workload...),
		"-shards", "3", "-wal", walDir, "-acklog", ackDir, "-recoververify")...)
	out, err := verify.CombinedOutput()
	t.Logf("recoververify:\n%s", out)
	if err != nil {
		t.Fatalf("recovery verification failed: %v", err)
	}
	if !strings.Contains(string(out), "RECOVERY OK") {
		t.Fatalf("missing RECOVERY OK in output")
	}

	// A second verification pass over the rotated post-recovery state must
	// still hold (recovery itself checkpoints and truncates the logs).
	again := exec.Command(bin, append(append([]string{}, workload...),
		"-wal", walDir, "-acklog", ackDir, "-recoververify")...)
	out, err = again.CombinedOutput()
	if err != nil || !strings.Contains(string(out), "RECOVERY OK") {
		t.Fatalf("second recovery pass failed: %v\n%s", err, out)
	}

	// Epoch 2: reload on the changed shard count — now with forced live
	// migrations every few milliseconds, so the SIGKILL lands inside or next
	// to a migration window (frozen graph, installed-but-unrouted copy, or
	// freshly flipped route) — and kill again. The inherited epoch-1 logs may
	// still hold rerouted graphs' tails (their truncation is deferred to the
	// recovery barrier), so this chain proves a second crash in that window
	// loses nothing acked in either epoch, and the verifier's placement check
	// proves no mid-migration kill leaves a graph on zero or two shards.
	// WAL files can already be non-empty here, so the traffic signal is
	// growth over the epoch's starting size.
	walSize := func() int64 {
		var total int64
		paths, _ := filepath.Glob(filepath.Join(walDir, "shard-*.wal"))
		for _, p := range paths {
			if fi, err := os.Stat(p); err == nil {
				total += fi.Size()
			}
		}
		return total
	}
	base := walSize()
	load2 := exec.Command(bin, append(append([]string{}, workload...), "-shards", "3",
		"-duration", "60s", "-wal", walDir, "-acklog", ackDir, "-migrate", "5ms")...)
	load2.Stdout, load2.Stderr = os.Stderr, os.Stderr
	if err := load2.Start(); err != nil {
		t.Fatal(err)
	}
	defer load2.Process.Kill()
	deadline = time.Now().Add(30 * time.Second)
	for walSize() < base+4096 {
		if time.Now().After(deadline) {
			t.Fatal("second load run produced no WAL traffic")
		}
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
	if err := load2.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	load2.Wait()

	verify2 := exec.Command(bin, append(append([]string{}, workload...),
		"-shards", "4", "-wal", walDir, "-acklog", ackDir, "-recoververify")...)
	out, err = verify2.CombinedOutput()
	t.Logf("second-epoch recoververify:\n%s", out)
	if err != nil || !strings.Contains(string(out), "RECOVERY OK") {
		t.Fatalf("second-epoch recovery verification failed: %v", err)
	}
}
