// Package dfs is a Go implementation of "Near Optimal Parallel Algorithms
// for Dynamic DFS in Undirected Graphs" (Shahbaz Khan, SPAA 2017,
// arXiv:1705.03637).
//
// Given an undirected graph subject to an online sequence of edge/vertex
// insertions and deletions, the library maintains a depth-first-search tree
// across updates using the paper's parallel rerooting procedure: each
// update is reduced to rerooting disjoint subtrees (Section 3), and each
// rerooting runs in O(log² n) rounds of batched independent queries on the
// data structure D (Sections 4–5), for O(log³ n) EREW-PRAM time per update.
//
// Four execution models are provided, mirroring the paper's results:
//
//   - Maintainer — fully dynamic DFS (Theorem 13): O(log³ n) model depth
//     per update on m processors.
//   - FaultTolerant — preprocess once, answer any batch of k updates
//     without rebuilding D (Theorem 14).
//   - Streaming — semi-streaming maintenance with O(n) resident words and
//     O(log² n) passes per update (Theorem 15).
//   - Distributed — synchronous CONGEST(n/D) maintenance with O(D log² n)
//     rounds per update (Theorem 16), on a discrete-event network cost
//     simulator.
//
// Every produced tree satisfies the DFS property (all non-tree edges are
// back edges), checkable with Verify. PRAM costs (depth/work) are recorded
// analytically by the Machine attached to each maintainer; wall-clock
// performance is measured by the repository's benchmarks.
//
// # Serving layer
//
// On top of the single-tenant maintainers, Service is a sharded,
// snapshot-isolated serving layer for multi-graph traffic: it owns many
// graph instances, hashes each GraphID to a shard (one update-loop
// goroutine plus one Machine per shard), and serializes each graph's
// updates through the shard's buffered mailbox. Apply returns a Future;
// ApplyBatch coalesces a cross-graph batch into one mailbox round per
// shard.
//
// Reads are snapshot-isolated: after every update the shard publishes an
// immutable GraphSnapshot (persistent DFS tree + persistent copy-on-write
// graph version + cost counters) through an atomic pointer, and Tree /
// IsAncestor / Path / Verify answer from the latest snapshot without ever
// blocking the update loop or observing a half-applied update. Publication
// is O(1) — both structures are shared with the maintainer zero-copy — and
// a snapshot, once obtained, stays valid indefinitely. This is sound
// because updates path-copy away from published state and D's query path is
// read-only — search-effort counters go to per-call QueryStats
// accumulators, not shared state — so published structures need no reader
// synchronization.
//
// # Snapshot analytics
//
// Service.Query turns the maintained DFS tree into a queryable product:
// it returns a version-pinned QueryHandle answering LCA, k-th/level
// ancestors, subtree aggregates, tree paths, and biconnectivity queries
// (articulation points, bridges, component IDs) from derived indexes —
// each built at most once per snapshot version under a singleflight guard
// and retained in a bounded per-shard LRU, so warm queries do zero index
// construction. NewSnapshotQuery is the standalone (uncached) equivalent
// for any frozen graph+tree pair.
//
// # Observability
//
// Service.Metrics samples per-shard operational counters with lock-free
// log-bucketed latency histograms (update apply, mailbox wait, snapshot
// publish, batch size, index build/patch, query resolution) and a
// cumulative stage-time breakdown of the update loops; Service.SlowTraces
// returns the slowest retained per-update stage traces. Metrics is a pure
// read: rates derive from monotonic cumulative counters cut into windows by
// a background sampler (ServiceConfig.SampleInterval), so any number of
// concurrent pollers observe identical, non-interfering values, and the
// sampler's ring buffers give every shard a scrape-independent time-series
// (Service.History). Cost is attributed per tenant: every graph carries a
// TenantMeter (applied/rejected updates, apply/engine/dmaint time, WAL
// bytes, index builds/patches — Service.TenantMetrics), and a per-shard
// Space-Saving sketch ranks the most expensive graphs with bounded memory
// (Service.HotGraphs). Service.DebugHandler serves all of it — metrics,
// tenants, history, slow traces, a Prometheus text exposition at
// /debug/metrics, expvar and pprof — as a live HTTP debug endpoint
// (cmd/dfsload mounts it under -debugaddr). Tracing is nil-gated in the
// maintainer, so single-tenant users pay nothing.
package dfs

import (
	"repro/internal/baseline"
	"repro/internal/bicon"
	"repro/internal/core"
	"repro/internal/distributed"
	"repro/internal/dstruct"
	"repro/internal/faulttol"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pram"
	"repro/internal/reroot"
	"repro/internal/service"
	"repro/internal/snapquery"
	"repro/internal/stream"
	"repro/internal/tree"
	"repro/internal/verify"
	"repro/internal/wal"
)

// Sentinel errors of the serving layer, matchable with errors.Is against
// any error the Service returns (wrapped errors carry the graph ID).
var (
	// ErrClosed reports a submission to a closed (or closing) Service.
	ErrClosed = service.ErrClosed
	// ErrUnknownGraph reports an operation on a GraphID the Service does
	// not hold.
	ErrUnknownGraph = service.ErrUnknownGraph
	// ErrGraphExists reports CreateGraph on an already-registered GraphID.
	ErrGraphExists = service.ErrGraphExists
)

// Graph is a mutable simple undirected graph with stable vertex IDs.
type Graph = graph.Graph

// PersistentGraph is an immutable copy-on-write graph: every update applied
// by a Maintainer produces a new version sharing all untouched adjacency
// rows with its predecessor. Maintainer.Graph, GraphSnapshot.Graph and
// FaultTolerantResult.Graph expose this type; it is safe to read
// concurrently and to retain across any number of later updates.
type PersistentGraph = graph.Persistent

// Adjacency is the read-only view shared by Graph and PersistentGraph; the
// library's read-side helpers (Verify, StaticDFS, workload pickers) accept
// either representation through it.
type Adjacency = graph.Adjacency

// Edge is an undirected edge.
type Edge = graph.Edge

// Tree is an immutable rooted tree with DFS numbering.
type Tree = tree.Tree

// None marks the absence of a vertex (the root's parent).
const None = tree.None

// Update describes one graph update.
type Update = core.Update

// Update kinds.
const (
	InsertEdge   = core.InsertEdge
	DeleteEdge   = core.DeleteEdge
	InsertVertex = core.InsertVertex
	DeleteVertex = core.DeleteVertex
)

// Stats reports a rerooting's traversal behaviour.
type Stats = reroot.Stats

// Machine is the EREW PRAM cost accountant.
type Machine = pram.Machine

// Maintainer is the fully dynamic DFS algorithm (Theorem 13).
type Maintainer = core.DynamicDFS

// Options configure a Maintainer.
type Options = core.Options

// FaultTolerant is the preprocess-once structure of Theorem 14.
type FaultTolerant = faulttol.FaultTolerant

// FaultTolerantResult is one batch's outcome.
type FaultTolerantResult = faulttol.Result

// Streaming is the semi-streaming maintainer of Theorem 15.
type Streaming = stream.Maintainer

// Distributed is the CONGEST(B) maintainer of Theorem 16.
type Distributed = distributed.Maintainer

// Network is the CONGEST cost simulator.
type Network = distributed.Network

// D is the paper's query structure (Theorems 8–9), exposed for advanced
// use (custom rerooting drivers).
type D = dstruct.D

// QueryStats aggregates D-query search effort. Queries thread a per-call
// accumulator (D itself is read-only under queries); maintainers roll the
// per-update accumulators into a running total.
type QueryStats = dstruct.Stats

// Service is the sharded, snapshot-isolated multi-graph serving layer.
type Service = service.Service

// ServiceConfig sizes a Service (shards, mailbox depth, per-shard workers).
type ServiceConfig = service.Config

// GraphID names one tenant graph of a Service.
type GraphID = service.GraphID

// GraphSnapshot is one graph's immutable published state.
type GraphSnapshot = service.Snapshot

// UpdateFuture is a pending asynchronous update submission.
type UpdateFuture = service.Future

// BatchItem is one update of a cross-graph ApplyBatch.
type BatchItem = service.BatchItem

// ServiceMetrics / ServiceShardMetrics are the serving layer's sampled
// operational counters.
type ServiceMetrics = service.Metrics

// ServiceShardMetrics is one shard's sample within ServiceMetrics.
type ServiceShardMetrics = service.ShardMetrics

// TenantMetrics is one graph's cumulative cost attribution — applied and
// rejected updates, apply/engine/dmaint wall-clock, WAL bytes appended,
// index builds/patches — sampled lock-free by Service.TenantMetrics.
type TenantMetrics = service.TenantMetrics

// TenantCounters is the raw counter sample embedded in TenantMetrics.
type TenantCounters = obs.TenantCounters

// HotGraph is one entry of Service.HotGraphs, the hottest-graphs ranking
// merged from the per-shard Space-Saving sketches: the sketch's estimated
// cumulative apply cost (with its bounded overestimation) plus the graph's
// exact TenantMetrics sample.
type HotGraph = service.HotGraph

// ServiceHistory is the sampler's retained time-series (Service.History):
// per-shard ring buffers of update/reject rates, queue depth and
// high-water, windowed apply p99, and WAL throughput, oldest point first.
type ServiceHistory = service.History

// ServiceShardHistory is one shard's series within ServiceHistory.
type ServiceShardHistory = service.ShardHistory

// ServiceHistoryPoint is one sampled window of a shard's series.
type ServiceHistoryPoint = service.HistoryPoint

// HistogramSnapshot is an immutable sample of a lock-free log-bucketed
// latency histogram: exact count/sum/max plus estimated quantiles
// (Quantile, Mean), mergeable across shards (Merge). ServiceMetrics carries
// these for the update, wait, publish, batch-size and index read paths.
type HistogramSnapshot = obs.HistSnapshot

// UpdateTrace is one update's stage-timed journey through the serving
// stack (mailbox wait → plan → reroot engine → D maintenance → snapshot
// publish) with outcome tags. Each shard retains its slowest
// ServiceConfig.SlowTraces of them, exposed by Service.SlowTraces and the
// debug endpoint.
type UpdateTrace = obs.Trace

// StageTimes is the cumulative per-stage wall-clock breakdown within
// ServiceMetrics: where the update loops' time actually went.
type StageTimes = service.StageTimes

// MetricsRegistry is the pull-based observability registry behind
// Service.Obs and the /debug/obs endpoint: named sampling functions over
// the service's shards, machines and index caches.
type MetricsRegistry = obs.Registry

// QueryHandle is the snapshot analytics engine's version-pinned handle:
// LCA, level/k-th ancestors, subtree aggregates, tree paths and the full
// biconnectivity family, answered from derived indexes built at most once
// per snapshot version. Obtain one from Service.Query / QuerySnapshot
// (cached per shard) or NewSnapshotQuery (standalone). A handle stays
// valid — and keeps answering for its pinned version — across any number
// of later updates and cache evictions.
type QueryHandle = service.QueryHandle

// SubtreeAgg is the aggregate QueryHandle.SubtreeAgg reports over one
// subtree: size, height, and min/max vertex label.
type SubtreeAgg = snapquery.Agg

// NewGraph returns a graph with n isolated vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// NewMaintainer builds the fully dynamic maintainer over a copy of g.
func NewMaintainer(g *Graph) *Maintainer { return core.NewFullyDynamic(g) }

// NewMaintainerWith builds a maintainer with explicit options (sequential
// baseline mode, custom machine, vertex-ID headroom).
func NewMaintainerWith(g *Graph, opt Options) *Maintainer { return core.New(g, opt) }

// Preprocess builds the fault-tolerant structure; maxUpdates bounds the
// batch size (the paper's k).
func Preprocess(g *Graph, maxUpdates int) *FaultTolerant {
	return faulttol.Preprocess(g, maxUpdates)
}

// WALConfig enables the serving layer's durability: a per-shard
// write-ahead log appended (and fsynced per policy) before updates are
// acknowledged, periodic checkpoints, and crash recovery with degraded
// snapshot reads while the log tail replays.
type WALConfig = service.WALConfig

// RebalanceConfig enables the serving layer's background rebalancer
// (ServiceConfig.Rebalance): when one shard's busy time stays above a
// multiple of the cross-shard mean for several ticks, a hot graph is
// migrated to the coldest shard with Service.MigrateGraph — a live handoff
// that pauses only that graph's writes and survives kill -9 at any point.
type RebalanceConfig = service.RebalanceConfig

// WALInjector is the crash-injection hook for durability testing: it
// counts WAL and checkpoint I/O operations and fails the Nth one.
type WALInjector = wal.Injector

// WAL fsync policies (WALConfig.Policy).
const (
	// WALSyncBatch fsyncs once per mailbox round — group commit (default).
	WALSyncBatch = wal.SyncBatch
	// WALSyncAlways fsyncs after every record.
	WALSyncAlways = wal.SyncAlways
	// WALSyncInterval fsyncs at most once per WALConfig.SyncInterval.
	WALSyncInterval = wal.SyncInterval
)

// ShutdownError reports a Service.CloseContext deadline expiring with
// shards still draining (it lists them with their queue depths).
type ShutdownError = service.ShutdownError

// NewService starts the multi-graph serving layer. It panics when
// cfg.WAL is set and recovery fails; durable services should use
// OpenService.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenService starts the serving layer, recovering durable state from
// cfg.WAL.Dir when durability is enabled: checkpointed graphs serve
// (degraded) snapshot reads immediately, log tails replay on the shard
// loops, and Service.WaitRecovered unblocks once every shard is live.
func OpenService(cfg ServiceConfig) (*Service, error) { return service.Open(cfg) }

// NewSnapshotQuery builds an uncached analytics handle over any frozen
// (graph, DFS tree) pair — a retained GraphSnapshot's fields, or a paused
// Maintainer's Graph/Tree/PseudoRoot. The serving layer's Service.Query is
// the cached equivalent.
func NewSnapshotQuery(g Adjacency, t *Tree, pseudoRoot int) *QueryHandle {
	return snapquery.New(g, t, pseudoRoot)
}

// NewStreaming builds the semi-streaming maintainer over g's edges.
func NewStreaming(g *Graph) *Streaming { return stream.New(g) }

// NewDistributed builds the CONGEST maintainer; b is the message size in
// words (0 selects the paper's n/D).
func NewDistributed(g *Graph, b int) *Distributed { return distributed.New(g, b) }

// StaticDFS computes a DFS tree of g with the classical O(m+n) algorithm
// under the pseudo-root convention (root ID = g.NumVertexSlots()).
func StaticDFS(g Adjacency) *Tree { return baseline.StaticDFS(g) }

// Verify checks that t is a DFS tree of g under the pseudo-root convention
// used by the maintainers: nil means valid.
func Verify(g Adjacency, t *Tree, pseudoRoot int) error {
	return verify.DFSForest(g, t, pseudoRoot)
}

// Biconnectivity is the articulation/bridge/biconnected-component analysis
// computed from a DFS tree (the classical DFS applications of the paper's
// introduction).
type Biconnectivity = bicon.Analysis

// AnalyzeBiconnectivity computes articulation points, bridges and
// biconnected components of g from its DFS tree t.
func AnalyzeBiconnectivity(g Adjacency, t *Tree, pseudoRoot int) *Biconnectivity {
	return bicon.Analyze(g, t, pseudoRoot, nil)
}
