package dfs

import (
	"errors"
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd drives every maintainer through the facade, the
// way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GnpConnected(40, 0.1, rng)

	// Fully dynamic.
	m := NewMaintainer(g)
	if err := Verify(m.Graph(), m.Tree(), m.PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	if e, ok := RandomNonEdge(m.Graph(), rng); ok {
		if err := m.InsertEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if e, ok := RandomEdge(m.Graph(), rng); ok {
		if err := m.DeleteEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.InsertVertex([]int{0, 7}); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteVertex(3); err != nil {
		t.Fatal(err)
	}
	if err := Verify(m.Graph(), m.Tree(), m.PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	if m.Machine().Work() == 0 {
		t.Fatal("no PRAM work accounted")
	}

	// Fault tolerant.
	ft := Preprocess(g, 4)
	res, err := ft.Apply([]Update{
		{Kind: InsertEdge, U: 0, V: 20},
		{Kind: DeleteVertex, U: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Graph, res.Tree, res.PseudoRoot); err != nil {
		t.Fatal(err)
	}

	// Streaming.
	s := NewStreaming(g)
	if err := s.InsertEdge(1, 30); err != nil {
		t.Fatal(err)
	}
	if s.LastScheduledPasses() < 0 {
		t.Fatal("bad pass count")
	}

	// Distributed.
	dm := NewDistributed(g, 0)
	ne, ok := RandomNonEdge(dm.Core().Graph(), rng)
	if !ok {
		t.Fatal("no non-edge available")
	}
	if _, err := dm.Apply(Update{Kind: InsertEdge, U: ne.U, V: ne.V}); err != nil {
		t.Fatal(err)
	}
	if dm.LastRounds() == 0 {
		t.Fatal("no rounds accounted")
	}

	// Static baseline.
	st := StaticDFS(g)
	if err := Verify(g, st, g.NumVertexSlots()); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialBaselineMode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GnpConnected(48, 0.08, rng)
	seq := NewMaintainerWith(g, Options{RebuildD: true, Sequential: true})
	for i := 0; i < 10; i++ {
		if e, ok := RandomNonEdge(seq.Graph(), rng); ok {
			if err := seq.InsertEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := Verify(seq.Graph(), seq.Tree(), seq.PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	if seq.LastStats().Sequential == 0 && seq.LastStats().TotalTraversal > 0 {
		t.Fatal("sequential mode did not use sequential traversals")
	}
}

// TestServiceSentinelErrors pins the exported sentinels: downstream code
// matches them with errors.Is regardless of wrapping.
func TestServiceSentinelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewService(ServiceConfig{Shards: 2})
	g := GnpConnected(12, 0.25, rng)
	if _, err := s.CreateGraph("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateGraph("g", g); !errors.Is(err, ErrGraphExists) {
		t.Fatalf("duplicate create = %v, want dfs.ErrGraphExists", err)
	}
	if _, err := s.Snapshot("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown snapshot = %v, want dfs.ErrUnknownGraph", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply("g", Update{Kind: InsertEdge, U: 0, V: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close = %v, want dfs.ErrClosed", err)
	}
}

// TestServiceDurableFacade round-trips a graph through OpenService with a
// WAL: write, close, reopen, and read the recovered state back.
func TestServiceDurableFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dir := t.TempDir()
	g := GnpConnected(16, 0.2, rng)

	s, err := OpenService(ServiceConfig{Shards: 2, WAL: &WALConfig{Dir: dir, Policy: WALSyncBatch}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateGraph("g", g); err != nil {
		t.Fatal(err)
	}
	e, ok := RandomNonEdge(g, rng)
	if !ok {
		t.Fatal("no non-edge")
	}
	fut, err := s.Apply("g", Update{Kind: InsertEdge, U: e.U, V: e.V})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenService(ServiceConfig{Shards: 2, WAL: &WALConfig{Dir: dir, Policy: WALSyncBatch}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.WaitRecovered()
	snap, err := s2.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 {
		t.Fatalf("recovered version %d, want 1", snap.Version)
	}
	if !snap.Graph.HasEdge(e.U, e.V) {
		t.Fatal("durably acked edge missing after recovery")
	}
	if err := Verify(snap.Graph, snap.Tree, snap.PseudoRoot); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsExported(t *testing.T) {
	for _, g := range []*Graph{
		PathGraph(5), CycleGraph(5), StarGraph(5), CompleteGraph(5),
		BroomGraph(10, 3), GridGraph(3, 4), CycleOfCliques(3, 4),
	} {
		if g.NumVertices() == 0 {
			t.Fatal("empty generator output")
		}
	}
	g, err := FromEdges(3, []Edge{{U: 0, V: 1}})
	if err != nil || g.NumEdges() != 1 {
		t.Fatal("FromEdges broken")
	}
	if NewGraph(4).NumVertices() != 4 {
		t.Fatal("NewGraph broken")
	}
}
