package dfs_test

import (
	"fmt"

	dfs "repro"
)

// ExampleNewMaintainer shows the fully dynamic workflow: build once, apply
// updates, read the tree.
func ExampleNewMaintainer() {
	g := dfs.PathGraph(5) // 0-1-2-3-4
	m := dfs.NewMaintainer(g)

	// Closing the path into a cycle adds a back edge: tree unchanged.
	_ = m.InsertEdge(4, 0)
	// Deleting a tree edge reroots the cut-off subtree through the cycle.
	_ = m.DeleteEdge(1, 2)

	t := m.Tree()
	fmt.Println("parent of 2:", t.Parent[2])
	fmt.Println("valid:", dfs.Verify(m.Graph(), t, m.PseudoRoot()) == nil)
	// Output:
	// parent of 2: 3
	// valid: true
}

// ExamplePreprocess shows the fault tolerant workflow of Theorem 14:
// preprocess once, answer independent failure batches.
func ExamplePreprocess() {
	g := dfs.CycleGraph(8)
	ft := dfs.Preprocess(g, 4)

	res, _ := ft.Apply([]dfs.Update{
		{Kind: dfs.DeleteEdge, U: 2, V: 3},
		{Kind: dfs.DeleteEdge, U: 6, V: 7},
	})
	fmt.Println("valid:", dfs.Verify(res.Graph, res.Tree, res.PseudoRoot) == nil)
	_, comps := res.Graph.ConnectedComponents()
	fmt.Println("components after 2 failures:", comps)
	// Output:
	// valid: true
	// components after 2 failures: 2
}

// ExampleAnalyzeBiconnectivity derives cut structure from the maintained
// DFS tree.
func ExampleAnalyzeBiconnectivity() {
	// Two triangles sharing vertex 0 — a bowtie.
	g, _ := dfs.FromEdges(5, []dfs.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	})
	m := dfs.NewMaintainer(g)
	a := dfs.AnalyzeBiconnectivity(m.Graph(), m.Tree(), m.PseudoRoot())
	fmt.Println("articulation points:", a.ArticulationPoints())
	fmt.Println("biconnected components:", a.NumComponents())
	// Output:
	// articulation points: [0]
	// biconnected components: 2
}
