// Cluster: distributed dynamic DFS in the synchronous CONGEST(n/D) model
// (Theorem 16). A cluster of machines arranged as a ring of racks maintains
// a DFS tree of its own topology; every update costs O(D log² n) rounds and
// O(nD log² n + m) messages of O(n/D) words. The example sweeps the
// diameter at fixed cluster size to expose the D-dependence.
//
// Run: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math/rand"

	dfs "repro"
)

func main() {
	fmt.Println("fixed n = 64 machines, varying rack layout (diameter):")
	fmt.Printf("%-22s %5s %4s %4s %12s %12s\n",
		"layout", "diam", "B", "", "rounds/upd", "msgs/upd")
	for _, layout := range []struct {
		racks, size int
	}{
		{4, 16}, {8, 8}, {16, 4}, {32, 2},
	} {
		g := dfs.CycleOfCliques(layout.racks, layout.size)
		d := g.Diameter()
		m := dfs.NewDistributed(g, 0)
		rng := rand.New(rand.NewSource(17))

		var rounds, msgs, updates int64
		for step := 0; step < 30; step++ {
			var u dfs.Update
			ok := false
			if step%2 == 0 {
				if e, has := dfs.RandomNonEdge(m.Core().Graph(), rng); has {
					u, ok = dfs.Update{Kind: dfs.InsertEdge, U: e.U, V: e.V}, true
				}
			} else if e, has := dfs.RandomEdge(m.Core().Graph(), rng); has {
				u, ok = dfs.Update{Kind: dfs.DeleteEdge, U: e.U, V: e.V}, true
			}
			if !ok {
				continue
			}
			if _, err := m.Apply(u); err != nil {
				log.Fatal(err)
			}
			if err := dfs.Verify(m.Core().Graph(), m.Core().Tree(), m.Core().PseudoRoot()); err != nil {
				log.Fatalf("invalid tree after %v: %v", u.Kind, err)
			}
			rounds += m.LastRounds()
			msgs += m.LastMessages()
			updates++
		}
		fmt.Printf("%2d racks × %-2d machines %5d %4d %4s %12.0f %12.0f\n",
			layout.racks, layout.size, d, m.Network().B, "",
			float64(rounds)/float64(updates), float64(msgs)/float64(updates))
	}
	fmt.Println("\nrounds grow with the diameter, message size shrinks as n/D —")
	fmt.Println("the Theorem 16 trade-off. Per-node memory stays O(n):")
	g := dfs.CycleOfCliques(8, 8)
	m := dfs.NewDistributed(g, 0)
	fmt.Printf("  e.g. 8×8 layout: %d words per node for n=%d\n",
		m.MaxNodeWords(), g.NumVertices())
}
