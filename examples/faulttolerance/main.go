// Faulttolerance: the Theorem 14 workflow — preprocess a network once,
// then answer "what is a DFS tree if these k elements fail?" for many
// independent hypothetical failure sets, never rebuilding the structure.
//
// The scenario is a datacenter fabric: spine-leaf-ish topology; operators
// drill simultaneous link/switch failures and need the updated DFS tree
// (the substrate for articulation points, biconnected components, and
// re-routing) immediately per drill.
//
// Run: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"math/rand"

	dfs "repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	// Fabric: 16 racks of 8 switches, ring-connected (cycle of cliques).
	g := dfs.CycleOfCliques(16, 8)
	fmt.Printf("fabric: %d switches, %d links, diameter %d\n",
		g.NumVertices(), g.NumEdges(), g.Diameter())

	const maxFaults = 4
	ft := dfs.Preprocess(g, maxFaults)
	fmt.Printf("preprocessed structure: %d words (links: %d) — built once\n\n",
		ft.SizeWords(), g.NumEdges())

	for drill := 1; drill <= 5; drill++ {
		k := 1 + rng.Intn(maxFaults)
		batch, desc := randomFailures(g, k, rng)
		res, err := ft.Apply(batch)
		if err != nil {
			log.Fatalf("drill %d: %v", drill, err)
		}
		if err := dfs.Verify(res.Graph, res.Tree, res.PseudoRoot); err != nil {
			log.Fatalf("drill %d produced invalid DFS tree: %v", drill, err)
		}
		_, comps := res.Graph.ConnectedComponents()
		fmt.Printf("drill %d: %-40s -> valid DFS tree, %d component(s), "+
			"%d rounds, %d query fragments over %d queries\n",
			drill, desc, comps, res.Stats.Rounds, res.Fragments, res.FragQueries)
	}
	fmt.Println("\nevery drill ran against the same preprocessed structure —")
	fmt.Println("no rebuild between batches (Theorem 14's whole point).")
}

// randomFailures picks k distinct failures (links or switches) that exist
// in the pristine fabric.
func randomFailures(g *dfs.Graph, k int, rng *rand.Rand) ([]dfs.Update, string) {
	var batch []dfs.Update
	desc := ""
	scratch := g.Clone()
	for len(batch) < k {
		if rng.Intn(3) == 0 && scratch.NumVertices() > 8 {
			v := rng.Intn(scratch.NumVertexSlots())
			if scratch.IsVertex(v) && scratch.DeleteVertex(v) == nil {
				batch = append(batch, dfs.Update{Kind: dfs.DeleteVertex, U: v})
				desc += fmt.Sprintf("switch %d ", v)
			}
		} else if e, ok := dfs.RandomEdge(scratch, rng); ok {
			if scratch.DeleteEdge(e.U, e.V) == nil {
				batch = append(batch, dfs.Update{Kind: dfs.DeleteEdge, U: e.U, V: e.V})
				desc += fmt.Sprintf("link %v ", e)
			}
		}
	}
	return batch, desc + "fail"
}
