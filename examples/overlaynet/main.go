// Overlaynet: fully dynamic DFS over a churning peer-to-peer overlay.
//
// Peers join (vertex insertion with a handful of bootstrap links), leave
// (vertex deletion), and links churn (edge insertion/deletion). The DFS
// tree is the overlay's control structure — e.g. for biconnectivity and
// cut-vertex monitoring — and must be valid after every event. The example
// contrasts the paper's polylog update rounds against the cost of
// recomputing from scratch, which is what the overlay would otherwise do.
//
// Run: go run ./examples/overlaynet
package main

import (
	"fmt"
	"log"
	"math/rand"

	dfs "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const n0 = 300
	g := dfs.GnpConnected(n0, 4.0/float64(n0), rng)
	m := dfs.NewMaintainer(g)

	fmt.Printf("overlay bootstrap: %d peers, %d links\n",
		m.Graph().NumVertices(), m.Graph().NumEdges())

	var joins, leaves, linkUp, linkDown, worstRounds int
	for event := 0; event < 400; event++ {
		cur := m.Graph()
		switch r := rng.Float64(); {
		case r < 0.15: // peer joins, bootstraps to up to 3 random peers
			var boot []int
			seen := map[int]bool{}
			for len(boot) < 3 {
				v := rng.Intn(cur.NumVertexSlots())
				if cur.IsVertex(v) && !seen[v] {
					seen[v] = true
					boot = append(boot, v)
				}
			}
			if _, err := m.InsertVertex(boot); err != nil {
				log.Fatal(err)
			}
			joins++
		case r < 0.25 && cur.NumVertices() > 50: // peer leaves abruptly
			v := rng.Intn(cur.NumVertexSlots())
			for !cur.IsVertex(v) {
				v = rng.Intn(cur.NumVertexSlots())
			}
			if err := m.DeleteVertex(v); err != nil {
				log.Fatal(err)
			}
			leaves++
		case r < 0.65: // new link
			if e, ok := dfs.RandomNonEdge(cur, rng); ok {
				if err := m.InsertEdge(e.U, e.V); err != nil {
					log.Fatal(err)
				}
				linkUp++
			}
		default: // link drops
			if e, ok := dfs.RandomEdge(cur, rng); ok {
				if err := m.DeleteEdge(e.U, e.V); err != nil {
					log.Fatal(err)
				}
				linkDown++
			}
		}
		if err := dfs.Verify(m.Graph(), m.Tree(), m.PseudoRoot()); err != nil {
			log.Fatalf("event %d: %v", event, err)
		}
		if r := m.LastStats().Rounds; r > worstRounds {
			worstRounds = r
		}
	}

	n := m.Graph().NumVertices()
	lg := log2(n)
	fmt.Printf("events: %d joins, %d leaves, %d links up, %d links down\n",
		joins, leaves, linkUp, linkDown)
	fmt.Printf("final overlay: %d peers, %d links, %d components\n",
		n, m.Graph().NumEdges(), components(m))
	fmt.Printf("worst rerooting rounds per event: %d  (log²n = %d — Theorem 13's shape)\n",
		worstRounds, lg*lg)
	fmt.Printf("a from-scratch recompute per event would touch all %d edges every time\n",
		m.Graph().NumEdges())
	st := m.LastStats()
	fmt.Printf("last event traversal mix: disintegrate=%d pathHalve=%d disconnect=%d heavy(l/p/r)=%d/%d/%d\n",
		st.Disintegrate, st.PathHalve, st.Disconnect, st.HeavyL, st.HeavyP, st.HeavyR)

	// Cut-vertex monitoring, the overlay's reason to keep a DFS tree: the
	// snapshot analytics engine derives the biconnectivity structure (and
	// LCA / subtree indexes) from the maintained tree without a fresh
	// traversal, each index built once per snapshot.
	q := dfs.NewSnapshotQuery(m.Graph(), m.Tree(), m.PseudoRoot())
	artic := q.ArticulationPoints()
	fmt.Printf("health: %d cut peers, %d bridge links, %d biconnected components\n",
		len(artic), len(q.Bridges()), q.NumBiconnectedComponents())
	if len(artic) > 0 {
		v := artic[0]
		if agg, err := q.SubtreeAgg(v); err == nil {
			fmt.Printf("  e.g. cut peer %d anchors a subtree of %d peers (height %d)\n",
				v, agg.Size, agg.Height)
		}
	}
}

func components(m *dfs.Maintainer) int {
	_, k := m.Graph().ConnectedComponents()
	return k
}

func log2(n int) int {
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}
