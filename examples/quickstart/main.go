// Quickstart: maintain a DFS tree of a small dynamic graph through a mix of
// edge and vertex updates, verifying the DFS property after every step.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dfs "repro"
)

func main() {
	// A 3x3 grid.
	g := dfs.GridGraph(3, 3)
	m := dfs.NewMaintainer(g)
	fmt.Println("initial DFS tree (parent per vertex):")
	printTree(m)

	steps := []struct {
		desc string
		do   func() error
	}{
		{"insert edge (0,8)", func() error { return m.InsertEdge(0, 8) }},
		{"delete edge (4,5)", func() error { return m.DeleteEdge(4, 5) }},
		{"insert vertex adjacent to {2,6}", func() error {
			id, err := m.InsertVertex([]int{2, 6})
			if err == nil {
				fmt.Printf("  new vertex id = %d\n", id)
			}
			return err
		}},
		{"delete vertex 4", func() error { return m.DeleteVertex(4) }},
	}
	for _, s := range steps {
		fmt.Printf("\n== %s ==\n", s.desc)
		if err := s.do(); err != nil {
			log.Fatalf("%s: %v", s.desc, err)
		}
		if err := dfs.Verify(m.Graph(), m.Tree(), m.PseudoRoot()); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
		st := m.LastStats()
		fmt.Printf("  valid DFS tree; %d traversal rounds, %d query batches\n",
			st.Rounds, st.Batches)
		printTree(m)
	}
	fmt.Printf("\nPRAM accounting: depth=%d work=%d over %d updates\n",
		m.Machine().Depth(), m.Machine().Work(), m.Updates())

	// The maintained tree is more than a verification artifact: the
	// snapshot analytics engine answers derived queries from it.
	q := dfs.NewSnapshotQuery(m.Graph(), m.Tree(), m.PseudoRoot())
	if l, err := q.LCA(0, 8); err == nil {
		fmt.Printf("\nanalytics: LCA(0,8)=%d", l)
	}
	if p, err := q.TreePath(0, 8); err == nil {
		fmt.Printf(", tree path 0..8 = %v", p)
	}
	fmt.Printf(", articulation points = %v\n", q.ArticulationPoints())
}

func printTree(m *dfs.Maintainer) {
	t := m.Tree()
	for v := 0; v < m.Graph().NumVertexSlots(); v++ {
		if !t.Present(v) {
			continue
		}
		p := t.Parent[v]
		if p == m.PseudoRoot() {
			fmt.Printf("  %d <- (component root)\n", v)
		} else {
			fmt.Printf("  %d <- %d\n", v, p)
		}
	}
}
