// Streamlog: semi-streaming dynamic DFS (Theorem 15). The graph's edges
// live in external storage reachable only through sequential passes; the
// maintainer keeps O(n) words resident. Per update the pass budget is
// O(log² n) — this example measures both the synchronous-schedule pass
// count (the theorem's measure) and the simulator's physical passes.
//
// Run: go run ./examples/streamlog
package main

import (
	"fmt"
	"log"
	"math/rand"

	dfs "repro"
)

func main() {
	rng := rand.New(rand.NewSource(13))
	const n = 512
	g := dfs.GnpConnected(n, 6.0/float64(n), rng)
	s := dfs.NewStreaming(g)
	fmt.Printf("stream: %d edges external, n=%d vertices resident\n",
		s.Stream().Len(), n)

	worstSched, worstPhys := 0, int64(0)
	for step := 0; step < 100; step++ {
		var err error
		view := s.Snapshot() // workload sampling only, outside the model
		if step%3 == 0 {
			if e, ok := dfs.RandomEdge(view, rng); ok {
				err = s.DeleteEdge(e.U, e.V)
			}
		} else {
			if e, ok := dfs.RandomNonEdge(view, rng); ok {
				err = s.InsertEdge(e.U, e.V)
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		if s.LastScheduledPasses() > worstSched {
			worstSched = s.LastScheduledPasses()
		}
		if s.LastPasses() > worstPhys {
			worstPhys = s.LastPasses()
		}
	}
	lg := log2(n)
	fmt.Printf("after 100 updates:\n")
	fmt.Printf("  worst scheduled passes/update: %d   (log²n = %d)\n", worstSched, lg*lg)
	fmt.Printf("  worst physical passes/update:  %d\n", worstPhys)
	fmt.Printf("  resident memory: %d words (O(n); the stream holds %d edges)\n",
		s.ResidentWords(), s.Stream().Len())
	fmt.Printf("  total passes over the stream so far: %d\n", s.Stream().Passes())
}

func log2(n int) int {
	l := 0
	for p := 1; p < n; p <<= 1 {
		l++
	}
	return l
}
