package dfs

// Cross-model integration tests: the four execution models run the same
// update sequences; each must maintain a valid DFS tree of the same evolving
// graph, and model-specific invariants (pass budgets, round budgets, clean
// scheduler stats) must hold simultaneously.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// script is a reproducible update sequence generated against a scratch
// graph so every update is feasible.
func script(g *Graph, steps int, rng *rand.Rand) []Update {
	scratch := g.Clone()
	var out []Update
	for len(out) < steps {
		switch rng.Intn(4) {
		case 0:
			if e, ok := RandomNonEdge(scratch, rng); ok {
				if scratch.InsertEdge(e.U, e.V) == nil {
					out = append(out, Update{Kind: InsertEdge, U: e.U, V: e.V})
				}
			}
		case 1:
			if e, ok := RandomEdge(scratch, rng); ok {
				if scratch.DeleteEdge(e.U, e.V) == nil {
					out = append(out, Update{Kind: DeleteEdge, U: e.U, V: e.V})
				}
			}
		case 2:
			var nbrs []int
			for v := 0; v < scratch.NumVertexSlots() && len(nbrs) < 3; v++ {
				if scratch.IsVertex(v) && rng.Float64() < 0.1 {
					nbrs = append(nbrs, v)
				}
			}
			if _, err := scratch.InsertVertex(nbrs); err == nil {
				out = append(out, Update{Kind: InsertVertex, Neighbors: nbrs})
			}
		default:
			if scratch.NumVertices() > 6 {
				v := rng.Intn(scratch.NumVertexSlots())
				if scratch.IsVertex(v) && scratch.DeleteVertex(v) == nil {
					out = append(out, Update{Kind: DeleteVertex, U: v})
				}
			}
		}
	}
	return out
}

func applyStream(s *Streaming, u Update) error {
	switch u.Kind {
	case InsertEdge:
		return s.InsertEdge(u.U, u.V)
	case DeleteEdge:
		return s.DeleteEdge(u.U, u.V)
	case InsertVertex:
		_, err := s.InsertVertex(u.Neighbors)
		return err
	default:
		return s.DeleteVertex(u.U)
	}
}

func TestAllModelsSameScript(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 6; trial++ {
		n := 16 + rng.Intn(24)
		g := GnpConnected(n, 3.0/float64(n), rng)
		seq := script(g, 20, rng)

		m := NewMaintainer(g)
		s := NewStreaming(g)
		d := NewDistributed(g, 0)

		for i, u := range seq {
			if _, err := m.Apply(u); err != nil {
				t.Fatalf("trial %d step %d maintainer: %v", trial, i, err)
			}
			if err := applyStream(s, u); err != nil {
				t.Fatalf("trial %d step %d streaming: %v", trial, i, err)
			}
			if _, err := d.Apply(u); err != nil {
				t.Fatalf("trial %d step %d distributed: %v", trial, i, err)
			}
			if err := Verify(m.Graph(), m.Tree(), m.PseudoRoot()); err != nil {
				t.Fatalf("trial %d step %d maintainer tree: %v", trial, i, err)
			}
			if err := Verify(m.Graph(), s.Tree(), s.PseudoRoot()); err != nil {
				t.Fatalf("trial %d step %d streaming tree: %v", trial, i, err)
			}
			if err := Verify(d.Core().Graph(), d.Core().Tree(), d.Core().PseudoRoot()); err != nil {
				t.Fatalf("trial %d step %d distributed tree: %v", trial, i, err)
			}
		}
		// Fault tolerant: the same script's prefix as one batch.
		ft := Preprocess(g, 8)
		res, err := ft.Apply(seq[:4])
		if err != nil {
			t.Fatalf("trial %d faulttol: %v", trial, err)
		}
		if err := Verify(res.Graph, res.Tree, res.PseudoRoot); err != nil {
			t.Fatalf("trial %d faulttol tree: %v", trial, err)
		}
	}
}

func TestParallelAndSequentialAgreeOnGraph(t *testing.T) {
	// Both modes track the same graph and both trees must be valid; trees
	// themselves may differ (DFS trees are not unique).
	rng := rand.New(rand.NewSource(223))
	g := GnpConnected(32, 0.12, rng)
	seq := script(g, 25, rng)
	par := NewMaintainer(g)
	sq := NewMaintainerWith(g, Options{RebuildD: true, Sequential: true})
	for i, u := range seq {
		if _, err := par.Apply(u); err != nil {
			t.Fatalf("step %d parallel: %v", i, err)
		}
		if _, err := sq.Apply(u); err != nil {
			t.Fatalf("step %d sequential: %v", i, err)
		}
		if par.Graph().NumEdges() != sq.Graph().NumEdges() ||
			par.Graph().NumVertices() != sq.Graph().NumVertices() {
			t.Fatalf("step %d: graphs diverged", i)
		}
		if err := Verify(sq.Graph(), sq.Tree(), sq.PseudoRoot()); err != nil {
			t.Fatalf("step %d sequential tree: %v", i, err)
		}
	}
}

// Property (testing/quick): for any seed, a random script leaves the fully
// dynamic maintainer with a valid DFS tree and clean scheduler stats.
func TestQuickMaintainerAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(uint(seed)%24)
		g := GnpConnected(n, 3.0/float64(n), rng)
		m := NewMaintainer(g)
		for _, u := range script(g, 12, rng) {
			if _, err := m.Apply(u); err != nil {
				return false
			}
			s := m.LastStats()
			if s.GenericFall > 0 || s.Violations > 0 {
				return false
			}
		}
		return Verify(m.Graph(), m.Tree(), m.PseudoRoot()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): fault tolerant batches never mutate the
// preprocessed structure — applying any batch twice is deterministic.
func TestQuickFaultTolerantDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(uint(seed)%20)
		g := GnpConnected(n, 3.0/float64(n), rng)
		ft := Preprocess(g, 4)
		batch := script(g, 3, rng)
		r1, err1 := ft.Apply(batch)
		r2, err2 := ft.Apply(batch)
		if err1 != nil || err2 != nil {
			return false
		}
		for v := 0; v < r1.Tree.N(); v++ {
			if r1.Tree.Parent[v] != r2.Tree.Parent[v] {
				return false
			}
		}
		return Verify(r1.Graph, r1.Tree, r1.PseudoRoot) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBiconnectivityOnMaintainedTree(t *testing.T) {
	// The maintained tree is a DFS tree, so biconnectivity analysis off it
	// must match analysis off a fresh static DFS tree.
	rng := rand.New(rand.NewSource(227))
	g := GnpConnected(40, 0.08, rng)
	m := NewMaintainer(g)
	for _, u := range script(g, 15, rng) {
		if _, err := m.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	live := m.Graph()
	a := AnalyzeBiconnectivity(live, m.Tree(), m.PseudoRoot())
	st := StaticDFS(live)
	b := AnalyzeBiconnectivity(live, st, live.NumVertexSlots())
	ap1, ap2 := a.ArticulationPoints(), b.ArticulationPoints()
	if len(ap1) != len(ap2) {
		t.Fatalf("articulation mismatch: %v vs %v", ap1, ap2)
	}
	for i := range ap1 {
		if ap1[i] != ap2[i] {
			t.Fatalf("articulation mismatch: %v vs %v", ap1, ap2)
		}
	}
	br1, br2 := a.Bridges(), b.Bridges()
	if len(br1) != len(br2) {
		t.Fatalf("bridge mismatch: %v vs %v", br1, br2)
	}
}
