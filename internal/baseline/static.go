// Package baseline implements the comparison algorithms the paper measures
// against: the classical static O(m+n) DFS (Tarjan 1972), the
// recompute-from-scratch dynamic strategy, and a sequential Õ(n)-per-update
// rerooting algorithm in the style of Baswana, Chaudhury, Choudhary and Khan
// (SODA 2016), which the paper's parallel algorithm is built upon.
package baseline

import (
	"repro/internal/graph"
	"repro/internal/tree"
)

// StaticDFS computes a DFS tree of g using the paper's pseudo-root
// convention: a virtual root r (ID = NumVertexSlots(), i.e. one past the
// last real vertex) is connected to every live vertex, so disconnected
// graphs yield a single tree whose root children are component roots.
// Neighbors are visited in increasing vertex order, making the result
// deterministic. Runs in O(m+n).
func StaticDFS(g graph.Adjacency) *tree.Tree {
	n := g.NumVertexSlots()
	root := n
	parent := make([]int, n+1)
	present := make([]bool, n+1)
	for i := range parent {
		parent[i] = tree.None
	}
	present[root] = true
	visited := make([]bool, n+1)
	visited[root] = true

	snap := g.Snapshot()
	// Iterative DFS with explicit next-neighbor cursors.
	cursor := make([]int, n)
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if !g.IsVertex(s) {
			continue
		}
		present[s] = true
		if visited[s] {
			continue
		}
		visited[s] = true
		parent[s] = root
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			row := snap.Row(v)
			advanced := false
			for cursor[v] < len(row) {
				w := row[cursor[v]]
				cursor[v]++
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					stack = append(stack, w)
					advanced = true
					break
				}
			}
			if !advanced {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return tree.MustBuild(root, parent, present)
}

// StaticDFSFrom computes a DFS tree of the connected component of start,
// rooted at start, with no pseudo-root. Vertices outside the component are
// holes in the returned tree.
func StaticDFSFrom(g graph.Adjacency, start int) *tree.Tree {
	n := g.NumVertexSlots()
	parent := make([]int, n)
	present := make([]bool, n)
	for i := range parent {
		parent[i] = tree.None
	}
	visited := make([]bool, n)
	visited[start] = true
	present[start] = true
	snap := g.Snapshot()
	cursor := make([]int, n)
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		row := snap.Row(v)
		advanced := false
		for cursor[v] < len(row) {
			w := row[cursor[v]]
			cursor[v]++
			if !visited[w] {
				visited[w] = true
				present[w] = true
				parent[w] = v
				stack = append(stack, w)
				advanced = true
				break
			}
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}
	return tree.MustBuild(start, parent, present)
}

// Recompute is the trivial dynamic-DFS baseline: apply the update to the
// graph and recompute the DFS tree from scratch (O(m+n) per update).
type Recompute struct {
	G *graph.Graph
	T *tree.Tree
}

// NewRecompute builds the baseline over a clone of g.
func NewRecompute(g *graph.Graph) *Recompute {
	c := g.Clone()
	return &Recompute{G: c, T: StaticDFS(c)}
}

// InsertEdge applies the update and recomputes.
func (r *Recompute) InsertEdge(u, v int) error {
	if err := r.G.InsertEdge(u, v); err != nil {
		return err
	}
	r.T = StaticDFS(r.G)
	return nil
}

// DeleteEdge applies the update and recomputes.
func (r *Recompute) DeleteEdge(u, v int) error {
	if err := r.G.DeleteEdge(u, v); err != nil {
		return err
	}
	r.T = StaticDFS(r.G)
	return nil
}

// InsertVertex applies the update and recomputes, returning the new ID.
func (r *Recompute) InsertVertex(neighbors []int) (int, error) {
	v, err := r.G.InsertVertex(neighbors)
	if err != nil {
		return -1, err
	}
	r.T = StaticDFS(r.G)
	return v, nil
}

// DeleteVertex applies the update and recomputes.
func (r *Recompute) DeleteVertex(v int) error {
	if err := r.G.DeleteVertex(v); err != nil {
		return err
	}
	r.T = StaticDFS(r.G)
	return nil
}
