package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
	"repro/internal/verify"
)

func TestStaticDFSValid(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		g := graph.Gnp(n, 3.0/float64(n), rng)
		tr := StaticDFS(g)
		if tr.Root != n {
			t.Fatalf("pseudo root = %d, want %d", tr.Root, n)
		}
		if err := verify.DFSForest(g, tr, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestStaticDFSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	g := graph.GnpConnected(40, 0.1, rng)
	a, b := StaticDFS(g), StaticDFS(g)
	for v := 0; v < a.N(); v++ {
		if a.Parent[v] != b.Parent[v] {
			t.Fatal("static DFS not deterministic")
		}
	}
}

func TestStaticDFSFromComponent(t *testing.T) {
	g := graph.New(6)
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 4, V: 5}} {
		if err := g.InsertEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	tr := StaticDFSFrom(g, 1)
	if tr.Root != 1 || !tr.Present(0) || !tr.Present(2) {
		t.Fatal("component of 1 not covered")
	}
	if tr.Present(4) || tr.Present(5) || tr.Present(3) {
		t.Fatal("foreign component leaked in")
	}
	if err := verify.SubtreeDFS(g, tr); err != nil {
		t.Fatal(err)
	}
}

func TestStaticDFSWithHoles(t *testing.T) {
	g := graph.Cycle(8)
	if err := g.DeleteVertex(3); err != nil {
		t.Fatal(err)
	}
	tr := StaticDFS(g)
	if tr.Present(3) {
		t.Fatal("deleted vertex present in tree")
	}
	if err := verify.DFSForest(g, tr, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRecomputeBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	g := graph.GnpConnected(25, 0.15, rng)
	r := NewRecompute(g)
	for step := 0; step < 30; step++ {
		switch rng.Intn(4) {
		case 0:
			if e, ok := graph.RandomEdgeNotIn(r.G, rng); ok {
				if err := r.InsertEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if e, ok := graph.RandomExistingEdge(r.G, rng); ok {
				if err := r.DeleteEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		case 2:
			if _, err := r.InsertVertex([]int{0}); err != nil {
				t.Fatal(err)
			}
		default:
			if r.G.NumVertices() > 4 {
				v := rng.Intn(r.G.NumVertexSlots())
				if r.G.IsVertex(v) {
					if err := r.DeleteVertex(v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := verify.DFSForest(r.G, r.T, r.G.NumVertexSlots()); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Clone isolation: the original graph must be untouched.
	if g.NumVertices() != 25 {
		t.Fatal("baseline mutated the input graph")
	}
	_ = tree.None
}

func TestRecomputeErrors(t *testing.T) {
	r := NewRecompute(graph.Path(3))
	if err := r.InsertEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := r.DeleteEdge(0, 2); err == nil {
		t.Fatal("missing edge deletion accepted")
	}
	if err := r.DeleteVertex(9); err == nil {
		t.Fatal("missing vertex deletion accepted")
	}
	if _, err := r.InsertVertex([]int{17}); err == nil {
		t.Fatal("bad neighbor accepted")
	}
}
