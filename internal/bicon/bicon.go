// Package bicon computes articulation points, bridges and biconnected
// components from a graph and its DFS tree — the classical applications the
// paper's introduction motivates dynamic DFS with, and the machinery its
// Section 6.2.2 uses: after a deletion, the distributed algorithm picks
// broadcast vertices from the articulation structure of the current tree.
//
// All computations run off an existing DFS tree (no fresh traversal): the
// low-point of every vertex is a bottom-up tree aggregation over the
// graph's back edges, which is exactly the kind of O(log n)-depth tree
// contraction the paper's substrate (Tarjan–Vishkin) supports. The
// implementation aggregates in post-order; the PRAM machine, when supplied,
// is charged the tree-contraction model cost.
package bicon

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/tree"
)

// Analysis holds the biconnectivity structure of one graph + DFS tree.
type Analysis struct {
	t   *tree.Tree
	low []int // low[v] = min level reachable from T(v) by one back edge

	artic   []bool
	bridges []graph.Edge
	// compID labels each non-root vertex's parent edge with a biconnected
	// component ID; -1 for holes and roots.
	compID   []int
	numComps int
}

// Analyze computes articulation points, bridges and biconnected components
// of g with respect to its DFS tree t. Vertices adjacent to the pseudo root
// (pass pseudo = tree.None when absent) are treated as component roots.
// mach, when non-nil, is charged the parallel tree-contraction cost.
func Analyze(g graph.Adjacency, t *tree.Tree, pseudo int, mach *pram.Machine) *Analysis {
	n := t.N()
	a := &Analysis{
		t:      t,
		low:    make([]int, n),
		artic:  make([]bool, n),
		compID: make([]int, n),
	}
	for i := range a.compID {
		a.compID[i] = -1
	}
	// Order vertices by decreasing post-order: children before parents.
	order := make([]int, 0, t.Live())
	for v := 0; v < n; v++ {
		if t.Present(v) && v != pseudo {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return t.Post(order[i]) < t.Post(order[j]) })

	for _, v := range order {
		a.low[v] = t.Level(v)
		for _, w := range g.SortedNeighbors(v) {
			if w == t.Parent[v] || t.Parent[w] == v {
				continue // tree edges handled by child aggregation
			}
			// Back edge (v,w): if w is an ancestor, it can lift low[v].
			if t.IsAncestor(w, v) && t.Level(w) < a.low[v] {
				a.low[v] = t.Level(w)
			}
		}
		for _, c := range t.Children(v) {
			if a.low[c] < a.low[v] {
				a.low[v] = a.low[c]
			}
		}
	}
	if mach != nil {
		lg := pram.Log2Ceil(t.Live() + 1)
		mach.Charge(lg, int64(2*g.NumEdges())+int64(t.Live())*lg)
	}

	// Articulation points and bridges from low points.
	for _, v := range order {
		p := t.Parent[v]
		if p == tree.None || p == pseudo {
			// v is a component root: articulation iff ≥2 children.
			if len(t.Children(v)) >= 2 {
				a.artic[v] = true
			}
			continue
		}
		if a.low[v] >= t.Level(p) {
			// No back edge from T(v) climbs above p.
			if p != pseudo && (t.Parent[p] != pseudo && t.Parent[p] != tree.None || len(t.Children(p)) >= 2) {
				a.artic[p] = true
			}
			if a.low[v] > t.Level(p) {
				a.bridges = append(a.bridges, graph.Edge{U: p, V: v}.Canon())
			}
		}
	}
	a.assignComponents(pseudo)
	return a
}

// assignComponents labels tree edges with biconnected component IDs: edge
// (parent(v), v) starts a new component iff low[v] >= level(parent(v)).
func (a *Analysis) assignComponents(pseudo int) {
	t := a.t
	// Process in pre-order so parents are labelled first.
	order := make([]int, 0, t.Live())
	for v := 0; v < t.N(); v++ {
		if t.Present(v) && v != pseudo {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return t.Pre(order[i]) < t.Pre(order[j]) })
	for _, v := range order {
		p := t.Parent[v]
		if p == tree.None || p == pseudo {
			continue
		}
		if a.low[v] >= t.Level(p) || t.Parent[p] == tree.None || t.Parent[p] == pseudo {
			// New biconnected component rooted at edge (p,v)... unless the
			// parent edge is itself unlabelled (p is a component root).
			if a.low[v] >= t.Level(p) {
				a.compID[v] = a.numComps
				a.numComps++
				continue
			}
		}
		if a.compID[p] >= 0 && a.low[v] < t.Level(p) {
			a.compID[v] = a.compID[p]
			continue
		}
		a.compID[v] = a.numComps
		a.numComps++
	}
}

// Low returns the low level of v (minimum tree level reachable from T(v)
// via at most one back edge).
func (a *Analysis) Low(v int) int { return a.low[v] }

// IsArticulation reports whether removing v disconnects its component.
func (a *Analysis) IsArticulation(v int) bool { return a.artic[v] }

// ArticulationPoints returns all articulation points, ascending.
func (a *Analysis) ArticulationPoints() []int {
	var out []int
	for v, b := range a.artic {
		if b {
			out = append(out, v)
		}
	}
	return out
}

// Bridges returns all bridge edges in canonical order.
func (a *Analysis) Bridges() []graph.Edge {
	out := append([]graph.Edge(nil), a.bridges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// ComponentOf returns the biconnected component ID of tree edge
// (parent(v), v), or -1 if v is a root or hole.
func (a *Analysis) ComponentOf(v int) int { return a.compID[v] }

// NumComponents returns the number of biconnected components.
func (a *Analysis) NumComponents() int { return a.numComps }
