package bicon

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/tree"
)

// naiveArticulation removes each vertex in turn and counts components.
func naiveArticulation(g *graph.Graph) []int {
	var out []int
	_, base := g.ConnectedComponents()
	for v := 0; v < g.NumVertexSlots(); v++ {
		if !g.IsVertex(v) || g.Degree(v) == 0 {
			continue
		}
		c := g.Clone()
		if err := c.DeleteVertex(v); err != nil {
			panic(err)
		}
		_, k := c.ConnectedComponents()
		// Removing v drops one live vertex; disconnection means the count
		// of components among the REMAINING vertices exceeds base (minus
		// the possibly vanished singleton component of v itself).
		if k > base {
			out = append(out, v)
		}
	}
	return out
}

// naiveBridges removes each edge in turn.
func naiveBridges(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	_, base := g.ConnectedComponents()
	for _, e := range g.Edges() {
		c := g.Clone()
		if err := c.DeleteEdge(e.U, e.V); err != nil {
			panic(err)
		}
		if _, k := c.ConnectedComponents(); k > base {
			out = append(out, e)
		}
	}
	return out
}

func analyze(g *graph.Graph) *Analysis {
	t := baseline.StaticDFS(g)
	return Analyze(g, t, g.NumVertexSlots(), nil)
}

func TestArticulationAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(30)
		g := graph.Gnp(n, 2.5/float64(n), rng)
		got := analyze(g).ArticulationPoints()
		want := naiveArticulation(g)
		if !equalInts(got, want) {
			t.Fatalf("trial %d: articulation got %v want %v (edges %v)",
				trial, got, want, g.Edges())
		}
	}
}

func TestBridgesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(30)
		g := graph.Gnp(n, 2.5/float64(n), rng)
		got := analyze(g).Bridges()
		want := naiveBridges(g)
		sort.Slice(want, func(i, j int) bool {
			if want[i].U != want[j].U {
				return want[i].U < want[j].U
			}
			return want[i].V < want[j].V
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: bridges got %v want %v", trial, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: bridges got %v want %v", trial, got, want)
			}
		}
	}
}

func TestKnownTopologies(t *testing.T) {
	// Path: every interior vertex is an articulation point, every edge a
	// bridge.
	a := analyze(graph.Path(6))
	if got := a.ArticulationPoints(); len(got) != 4 {
		t.Fatalf("path articulation points: %v", got)
	}
	if got := a.Bridges(); len(got) != 5 {
		t.Fatalf("path bridges: %v", got)
	}
	// Cycle: biconnected — nothing.
	a = analyze(graph.Cycle(6))
	if len(a.ArticulationPoints()) != 0 || len(a.Bridges()) != 0 {
		t.Fatalf("cycle should be biconnected: %v %v",
			a.ArticulationPoints(), a.Bridges())
	}
	if a.NumComponents() != 1 {
		t.Fatalf("cycle components=%d want 1", a.NumComponents())
	}
	// Star: center is the only articulation point; all edges bridges.
	a = analyze(graph.Star(5))
	if got := a.ArticulationPoints(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("star articulation points: %v", got)
	}
	// Two triangles sharing vertex 0.
	g := graph.MustFromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 0, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	})
	a = analyze(g)
	if got := a.ArticulationPoints(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("bowtie articulation points: %v", got)
	}
	if a.NumComponents() != 2 {
		t.Fatalf("bowtie biconnected components=%d want 2", a.NumComponents())
	}
}

func TestBiconnectedComponentsConsistent(t *testing.T) {
	// Two tree edges in the same biconnected component iff some cycle spans
	// them; spot-check on the bowtie and a random graph via bridges: a
	// bridge is always alone in its component.
	rng := rand.New(rand.NewSource(193))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(25)
		g := graph.GnpConnected(n, 2.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		a := Analyze(g, tr, g.NumVertexSlots(), nil)
		compSize := map[int]int{}
		for v := 0; v < n; v++ {
			if id := a.ComponentOf(v); id >= 0 {
				compSize[id]++
			}
		}
		for _, b := range a.Bridges() {
			child := b.U
			if tr.Parent[b.V] == b.U {
				child = b.V
			}
			if compSize[a.ComponentOf(child)] != 1 {
				t.Fatalf("trial %d: bridge %v shares component", trial, b)
			}
		}
	}
}

func TestLowPoints(t *testing.T) {
	// Cycle 0-1-2-3-0: DFS tree is the path, low of every vertex is 0.
	g := graph.Cycle(4)
	tr := baseline.StaticDFS(g)
	a := Analyze(g, tr, g.NumVertexSlots(), nil)
	for v := 0; v < 4; v++ {
		if a.Low(v) != tr.Level(tr.Root)+1 && a.Low(v) != 1 {
			t.Fatalf("low(%d)=%d", v, a.Low(v))
		}
	}
	_ = tree.None
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
