// Package core implements the paper's fully dynamic DFS maintainer
// (Theorem 13): it owns the current graph G, its DFS tree T (under the
// pseudo-root convention of Section 2, so disconnected graphs are a single
// tree whose root children are component roots), and the data structure D,
// and processes an online sequence of edge/vertex insertions and deletions.
//
// Every update runs the reduction algorithm of Section 3 — updating the DFS
// tree reduces to independently rerooting disjoint subtrees — and delegates
// the rerooting to internal/reroot. In the default fully dynamic mode, D is
// maintained incrementally on the new tree after each update: the engine
// reports the moved-vertex set and dstruct.D.Update repositions exactly the
// entries naming moved vertices, falling back to the paper's m-processor
// ground-up rebuild only on high-churn updates (or always, under
// Options.FullRebuildD). With rebuilding disabled the maintainer
// accumulates patches on the original D instead, which is the engine of the
// fault-tolerant algorithm (Theorem 14).
package core

import (
	"fmt"
	"time"

	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/obs"
	"repro/internal/pram"
	"repro/internal/reroot"
	"repro/internal/tree"
)

// UpdateKind enumerates the paper's extended update model.
type UpdateKind int

const (
	InsertEdge UpdateKind = iota
	DeleteEdge
	InsertVertex
	DeleteVertex
)

func (k UpdateKind) String() string {
	switch k {
	case InsertEdge:
		return "insert-edge"
	case DeleteEdge:
		return "delete-edge"
	case InsertVertex:
		return "insert-vertex"
	case DeleteVertex:
		return "delete-vertex"
	}
	return "unknown"
}

// Update is one graph update. For InsertVertex, Neighbors holds the new
// vertex's edge set; for DeleteVertex, U is the vertex.
type Update struct {
	Kind      UpdateKind
	U, V      int
	Neighbors []int
}

// Delta describes how one applied update changed the DFS tree, retained on
// the update result for downstream consumers: the serving layer stamps it
// onto published snapshots so the analytics engine can patch its derived
// indexes version-to-version instead of rebuilding them (the same
// information dstruct.D.Update consumes to maintain D incrementally). A
// Delta is immutable: the maintainer copies the engine's scratch-owned
// accumulators before the next update reuses them.
type Delta struct {
	// Moved lists the vertices whose root path changed: the old-tree vertex
	// sets of every rerooted or re-hung subtree plus newly attached vertices.
	// Every other present vertex keeps its parent, its level, and its
	// relative pre/post order — the reduction argument the incremental
	// consumers rely on.
	Moved []int
	// Removed lists the vertices the update deleted from the tree (the
	// deleted vertex of a DeleteVertex update). They appear in the previous
	// tree but not the new one, and never appear in Moved.
	Removed []int
	// SameTree declares that the tree object and its numbering are exactly
	// as before the update (a back-edge insert or delete): only the graph's
	// edge set changed.
	SameTree bool
}

// Options configure a DynamicDFS.
type Options struct {
	// RebuildD controls whether D is refreshed after every update (fully
	// dynamic mode, default for NewFullyDynamic) or left pinned to the base
	// tree accumulating patches (the fault tolerant algorithm's use). In
	// refresh mode D is maintained incrementally from the engine's
	// moved-vertex set, falling back to a ground-up rebuild on high-churn
	// updates; see FullRebuildD.
	RebuildD bool
	// FullRebuildD forces refresh mode to rebuild D from scratch after
	// every update — the paper's literal m-processor rebuild (Theorem 13) —
	// instead of maintaining it incrementally. It exists as the benchmark
	// baseline and for differential tests; production callers should leave
	// it off.
	FullRebuildD bool
	// Headroom reserves vertex-ID slots between the graph and the pseudo
	// root so vertex insertions do not displace it. Default 64.
	Headroom int
	// Machine receives the PRAM cost accounting; a fresh one is created if
	// nil.
	Machine *pram.Machine
	// Sequential selects the Baswana-et-al-style sequential rerooting
	// baseline instead of the paper's parallel scheduler.
	Sequential bool
	// ReuseTree rebuilds the DFS tree in place after every update
	// (tree.Rebuild) instead of allocating a fresh one. Callers that retain
	// trees across updates — notably the serving layer, which publishes the
	// tree in immutable snapshots — must leave this off; single-tenant
	// drivers that only inspect Tree() between updates can turn it on to
	// make the per-update hot path allocation-free.
	ReuseTree bool
}

// DynamicDFS maintains a DFS tree of a dynamic undirected graph.
type DynamicDFS struct {
	g      *graph.Persistent
	t      *tree.Tree
	l      *lca.Index
	d      *dstruct.D
	m      *pram.Machine
	pseudo int

	rebuildD     bool
	fullRebuildD bool
	headroom     int
	sequential   bool
	reuseTree    bool
	lastStats    reroot.Stats
	lastDelta    *Delta // nil when the last update yielded no usable delta
	relocated    bool   // pseudo root relocated during the in-flight update
	updates      int

	qstats  dstruct.Stats // query search effort accumulated across updates
	scratch reroot.Scratch

	// trace, when non-nil, receives the in-flight update's stage timings
	// (engine, D maintenance) and outcome tags; engineDur/dmaintDur
	// accumulate the spans across an update's phases. All tracing is gated
	// on the nil check, so untraced callers pay nothing.
	trace     *obs.Trace
	engineDur time.Duration
	dmaintDur time.Duration
}

// SetTrace attaches (or, with nil, detaches) the per-update trace the next
// Apply fills in: the engine and D-maintenance stage durations, the
// maintenance outcome ("incremental", "fallback", "rebuild", "pinned"), the
// back-edge SameTree tag, and the moved/removed set sizes. The serving
// layer attaches a fresh trace around every update it applies; single-
// tenant drivers may do the same. The attached trace stays installed until
// replaced, but stage accumulators reset at each SetTrace call.
func (dd *DynamicDFS) SetTrace(t *obs.Trace) {
	dd.trace = t
	dd.engineDur, dd.dmaintDur = 0, 0
}

// New builds the maintainer over a private persistent copy of g: computes
// the initial DFS tree (static preprocessing) and the data structure D.
func New(g *graph.Graph, opt Options) *DynamicDFS {
	if opt.Headroom <= 0 {
		opt.Headroom = 64
	}
	m := opt.Machine
	if m == nil {
		m = pram.NewMachine(2*g.NumEdges() + g.NumVertexSlots() + 1)
	}
	dd := &DynamicDFS{
		g:            graph.PersistentOf(g),
		m:            m,
		rebuildD:     opt.RebuildD,
		fullRebuildD: opt.FullRebuildD,
		headroom:     opt.Headroom,
		sequential:   opt.Sequential,
		reuseTree:    opt.ReuseTree,
	}
	dd.pseudo = dd.g.NumVertexSlots() + dd.headroom
	dd.rebuildTreeFromScratch()
	dd.d = dstruct.Build(dd.g, dd.t, dd.m)
	if dd.rebuildD {
		// Fully dynamic mode rebuilds D (and its embedded LCA index) in
		// place after every update; the engine-facing index aliases D's so
		// the same tree is never indexed twice.
		dd.l = dd.d.LCA
	} else {
		dd.l = lca.NewWith(dd.t, dd.m)
	}
	return dd
}

// NewFullyDynamic is New with fully dynamic defaults.
func NewFullyDynamic(g *graph.Graph) *DynamicDFS {
	return New(g, Options{RebuildD: true})
}

// NewFromState assembles a maintainer over pre-built state without copying:
// the fault-tolerant algorithm uses this to run an update batch against a
// shared original D while the tree evolves. g is a persistent version the
// caller may keep sharing — the session never mutates it, it only advances
// its own pointer past it. t must be g's DFS tree rooted at pseudo, and d
// built on a tree whose queries remain valid for t (Theorem 9).
func NewFromState(g *graph.Persistent, t *tree.Tree, d *dstruct.D, pseudo int, m *pram.Machine) *DynamicDFS {
	if m == nil {
		m = pram.NewMachine(t.Live())
	}
	return &DynamicDFS{
		g:        g,
		t:        t,
		l:        lca.NewWith(t, m),
		d:        d,
		m:        m,
		pseudo:   pseudo,
		rebuildD: false,
		headroom: pseudo - g.NumVertexSlots(),
	}
}

// NewDynamicRestored assembles a fully dynamic maintainer over restored
// state — a deserialized WAL checkpoint, or any (graph, DFS tree) pair the
// caller already holds: g's DFS tree t rooted at pseudo, with updates
// already counted against the pair. D (and the engine-facing LCA index it
// embeds) is built fresh from (g, t), so the result is exactly the
// maintainer that produced the pair, minus per-update scratch. g and t are
// retained, not copied: both are immutable under the maintainer's regime
// (updates path-copy away from g; t is replaced, never mutated, because
// ReuseTree stays off for restored maintainers).
func NewDynamicRestored(g *graph.Persistent, t *tree.Tree, pseudo, updates int, opt Options) *DynamicDFS {
	m := opt.Machine
	if m == nil {
		m = pram.NewMachine(2*g.NumEdges() + g.NumVertexSlots() + 1)
	}
	dd := &DynamicDFS{
		g:            g,
		t:            t,
		m:            m,
		pseudo:       pseudo,
		updates:      updates,
		rebuildD:     true,
		fullRebuildD: opt.FullRebuildD,
		headroom:     pseudo - g.NumVertexSlots(),
		sequential:   opt.Sequential,
	}
	dd.d = dstruct.Build(dd.g, dd.t, dd.m)
	dd.l = dd.d.LCA
	return dd
}

// Graph returns the current version of the maintained graph (identical to
// Frozen; this is the read accessor, Frozen the publication API).
func (dd *DynamicDFS) Graph() *graph.Persistent { return dd.Frozen() }

// Frozen returns the current graph version for publication: because the
// maintainer mutates through the persistent structure, freezing is a
// pointer grab — O(1) regardless of n and m — and the result is immutable,
// so callers may read it concurrently with later updates and retain it
// (still verifiable against this update's tree) forever.
func (dd *DynamicDFS) Frozen() *graph.Persistent { return dd.g }

// Tree returns the current DFS tree, rooted at the pseudo root; each child
// subtree of the root is a DFS tree of one connected component.
func (dd *DynamicDFS) Tree() *tree.Tree { return dd.t }

// PseudoRoot returns the pseudo root's vertex ID.
func (dd *DynamicDFS) PseudoRoot() int { return dd.pseudo }

// D exposes the query structure (for the fault-tolerant wrapper).
func (dd *DynamicDFS) D() *dstruct.D { return dd.d }

// Machine returns the PRAM accounting machine.
func (dd *DynamicDFS) Machine() *pram.Machine { return dd.m }

// LastStats returns the rerooting statistics of the most recent update.
func (dd *DynamicDFS) LastStats() reroot.Stats { return dd.lastStats }

// LastDelta returns the immutable tree delta of the most recent update, or
// nil when no usable delta exists: before the first update, in the
// full-rebuild and fault-tolerant modes (which do not track the moved set),
// after a pseudo-root relocation (the whole numbering changed), and after an
// error-recovery rebuild. Callers may retain the returned Delta across later
// updates.
func (dd *DynamicDFS) LastDelta() *Delta { return dd.lastDelta }

// QueryStats returns the D-query search effort accumulated over every
// update processed so far (each update's engine threads a per-call
// accumulator through the oracle; the maintainer rolls them up here).
func (dd *DynamicDFS) QueryStats() dstruct.Stats { return dd.qstats }

// Updates returns the number of updates processed.
func (dd *DynamicDFS) Updates() int { return dd.updates }

// present builds the presence mask for the tree (graph vertices + pseudo).
func (dd *DynamicDFS) present() []bool {
	p := make([]bool, dd.pseudo+1)
	for v := 0; v < dd.g.NumVertexSlots(); v++ {
		p[v] = dd.g.IsVertex(v)
	}
	p[dd.pseudo] = true
	return p
}

// rebuildTreeFromScratch recomputes T with the classical static algorithm
// (preprocessing only).
func (dd *DynamicDFS) rebuildTreeFromScratch() {
	n := dd.g.NumVertexSlots()
	parent := make([]int, dd.pseudo+1)
	for i := range parent {
		parent[i] = tree.None
	}
	visited := make([]bool, n)
	snap := dd.g.Snapshot()
	cursor := make([]int, n)
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if !dd.g.IsVertex(s) || visited[s] {
			continue
		}
		visited[s] = true
		parent[s] = dd.pseudo
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			row := snap.Row(v)
			advanced := false
			for cursor[v] < len(row) {
				w := row[cursor[v]]
				cursor[v]++
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					stack = append(stack, w)
					advanced = true
					break
				}
			}
			if !advanced {
				stack = stack[:len(stack)-1]
			}
		}
	}
	dd.t = tree.MustBuild(dd.pseudo, parent, dd.present())
}

// reroot runs one engine rerooting, timing it into the update's engine
// span when a trace is attached.
func (dd *DynamicDFS) reroot(e *reroot.Engine, root, inside, on int) error {
	if dd.trace == nil {
		return e.Reroot(root, inside, on)
	}
	t0 := time.Now()
	err := e.Reroot(root, inside, on)
	dd.engineDur += time.Since(t0)
	return err
}

// finish installs the engine's result as the new tree and refreshes D.
func (dd *DynamicDFS) finish(e *reroot.Engine) error {
	var t0 time.Time
	if dd.trace != nil {
		t0 = time.Now()
	}
	var nt *tree.Tree
	var err error
	if dd.reuseTree {
		nt, err = e.ResultInto(dd.t, dd.pseudo, dd.present())
		if err != nil {
			// ResultInto mutates dd.t in place before failing; unlike the
			// fresh-tree path the old tree is gone, so recover a valid DFS
			// tree of the (already mutated) graph from scratch rather than
			// leaving the maintainer poisoned. The recovery renumbers the
			// whole tree outside any tracked delta, so no incremental
			// consumer may patch across it.
			dd.rebuildTreeFromScratch()
			dd.d.Rebuild(dd.g, dd.t, dd.m)
			dd.l = dd.d.LCA
			dd.lastDelta = nil
		}
	} else {
		nt, err = e.Result(dd.pseudo, dd.present())
	}
	if dd.trace != nil {
		dd.engineDur += time.Since(t0)
	}
	if err != nil {
		return fmt.Errorf("core: rebuilding tree: %w", err)
	}
	dd.installTree(nt, e.Moved(), e.Removed(), false)
	dd.lastStats = e.Stats
	dd.qstats.Add(e.QStats)
	return nil
}

// installTree makes nt the current tree and refreshes the derived
// structures. moved is the engine's moved-vertex set (the only vertices
// whose relative post-order can differ from the previous tree), removed the
// vertices the update deleted from the tree; sameTree is set by the
// back-edge fast paths, where the tree object and its numbering are
// untouched and D only needs to absorb the update's patches. It also stamps
// dd.lastDelta for downstream incremental consumers: moved/removed are
// copied (they alias the engine's per-update scratch), and the delta is
// withheld entirely in the modes that do not track the moved set and across
// a pseudo-root relocation, whose renaming invalidates the locality
// argument.
func (dd *DynamicDFS) installTree(nt *tree.Tree, moved, removed []int, sameTree bool) {
	dd.t = nt
	dd.updates++
	var t0 time.Time
	if dd.trace != nil {
		t0 = time.Now()
	}
	outcome := "pinned"
	if dd.rebuildD {
		if dd.fullRebuildD {
			// Baseline mode: the paper's literal m-processor rebuild,
			// executed in place on the worker pool.
			dd.d.Rebuild(dd.g, dd.t, dd.m)
			outcome = "rebuild"
		} else {
			// Incremental maintenance: reposition only the entries naming
			// moved vertices and absorb the update's patches; D falls back
			// to the full rebuild by itself when the churn ratio makes the
			// incremental pass more expensive.
			if dd.d.Update(dd.g, dd.t, dstruct.UpdateDelta{Moved: moved, SameTree: sameTree}) {
				outcome = "incremental"
			} else {
				outcome = "fallback"
			}
		}
		// dd.l aliases the freshly maintained index.
		dd.l = dd.d.LCA
	} else {
		// Fault-tolerant mode: D stays pinned to the base tree, so the
		// engine-facing index is a separate buffer rebuilt on the new tree.
		dd.l.Rebuild(dd.t)
	}
	if tr := dd.trace; tr != nil {
		dd.dmaintDur += time.Since(t0)
		tr.Engine, tr.DMaint = dd.engineDur, dd.dmaintDur
		tr.Outcome = outcome
		tr.SameTree = sameTree
		tr.Moved, tr.Removed = len(moved), len(removed)
	}
	if dd.rebuildD && !dd.fullRebuildD && !dd.relocated {
		dd.lastDelta = &Delta{
			Moved:    append([]int(nil), moved...),
			Removed:  append([]int(nil), removed...),
			SameTree: sameTree,
		}
	} else {
		dd.lastDelta = nil
	}
	dd.relocated = false
}

// engine creates a rerooting engine for the current tree, drawing its
// per-update buffers from the maintainer's reusable scratch.
func (dd *DynamicDFS) engine() *reroot.Engine {
	e := reroot.NewWithScratch(dd.t, dd.l, dd.d, dd.m, &dd.scratch)
	e.Sequential = dd.sequential
	// Only the incremental D path consumes the moved set; other modes must
	// not pay the subtree walks that accumulate it.
	e.TrackMoved = dd.rebuildD && !dd.fullRebuildD
	return e
}

// relocatePseudo moves the pseudo root to a higher ID with doubled
// headroom, renaming it in the tree (all other vertex IDs are stable) and
// rebuilding the derived structures.
func (dd *DynamicDFS) relocatePseudo() {
	// Relocation renames the root and renumbers the whole tree; the in-flight
	// update's moved set no longer bounds what changed, so its delta is
	// withheld (the flag is consumed by installTree at the end of the update).
	dd.relocated = true
	oldPseudo := dd.pseudo
	dd.headroom *= 2
	dd.pseudo = dd.g.NumVertexSlots() + dd.headroom
	parent := make([]int, dd.pseudo+1)
	for i := range parent {
		parent[i] = tree.None
	}
	for v := 0; v < dd.g.NumVertexSlots(); v++ {
		if !dd.t.Present(v) {
			continue
		}
		p := dd.t.Parent[v]
		if p == oldPseudo {
			p = dd.pseudo
		}
		parent[v] = p
	}
	dd.t = tree.MustBuild(dd.pseudo, parent, dd.present())
	if dd.rebuildD {
		if dd.fullRebuildD {
			dd.d.Rebuild(dd.g, dd.t, dd.m)
		} else {
			// Renaming the pseudo root moves no graph vertex relative to any
			// other (the root's children keep their ID order), so this is a
			// relabel-only incremental update with an empty moved set.
			dd.d.Update(dd.g, dd.t, dstruct.UpdateDelta{})
		}
		dd.l = dd.d.LCA
	} else {
		// Unreachable today (InsertVertex rejects relocation in
		// fault-tolerant mode), but never clobber a caller-shared D.
		dd.l.Rebuild(dd.t)
		dd.d = dstruct.Build(dd.g, dd.t, dd.m)
	}
}

// compRoot returns the root of v's component (the child of the pseudo root
// on path(v, pseudo)).
func (dd *DynamicDFS) compRoot(v int) int {
	return dd.t.AncestorAtLevel(v, 1)
}

// lowestEdgeToPath finds the deepest edge from T(sub) landing on the tree
// path [low..high] (high an ancestor of low), or ok=false. One batch of
// independent queries in the PRAM accounting.
func (dd *DynamicDFS) lowestEdgeToPath(sub, low, high int) (inside, on int, ok bool) {
	ans := dd.lowestEdgesToPath([]int{sub}, low, high)[0]
	if !ans.OK {
		return 0, 0, false
	}
	return ans.Hit.U, ans.Hit.Z, true
}

// lowestEdgesToPath answers lowestEdgeToPath for several disjoint subtrees
// against one shared path, issued as a single batch so the execution layer
// fans every (subtree, path) query out over the worker pool at once. Each
// subtree is charged its own batch step, exactly as the one-at-a-time calls
// would be.
func (dd *DynamicDFS) lowestEdgesToPath(subs []int, low, high int) []dstruct.WalkAnswer {
	walk := dd.t.PathUp(low, high) // low..high; "lowest" = nearest low
	lg := pram.Log2Ceil(dd.t.Live() + 1)
	qs := make([]dstruct.WalkQuery, len(subs))
	for i, sub := range subs {
		src := dd.t.SubtreeVertices(sub, nil)
		dd.m.Charge(lg, int64(len(src))*lg)
		qs[i] = dstruct.WalkQuery{Sources: src, Walk: walk, FromEnd: false}
	}
	return dd.d.EdgeToWalkBatch(qs, &dd.qstats)
}
