package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/verify"
)

// check asserts the maintainer's tree is a DFS forest of its graph.
func check(t *testing.T, dd *DynamicDFS, ctx string) {
	t.Helper()
	if err := verify.DFSForest(dd.Graph(), dd.Tree(), dd.PseudoRoot()); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

func TestInsertEdgeBackAndCross(t *testing.T) {
	g := graph.Path(6) // DFS tree is the path itself
	dd := NewFullyDynamic(g)
	check(t, dd, "initial")
	// (0,3): both on one root-to-leaf path -> back edge, tree unchanged.
	before := dd.Tree()
	if err := dd.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "back edge insert")
	for v := 0; v < 6; v++ {
		if dd.Tree().Parent[v] != before.Parent[v] {
			t.Fatalf("back edge changed tree at %d", v)
		}
	}
	if dd.LastStats().TotalTraversal != 0 {
		t.Fatal("back edge insert should not traverse")
	}
}

func TestInsertEdgeCross(t *testing.T) {
	// Star: tree 0-(1,2,...); insert leaf-leaf cross edge.
	dd := NewFullyDynamic(graph.Star(6))
	if err := dd.InsertEdge(2, 4); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "cross edge insert")
	if dd.LastStats().TotalTraversal == 0 {
		t.Fatal("cross edge insert must restructure")
	}
}

func TestInsertEdgeMergesComponents(t *testing.T) {
	g := graph.New(6)
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 3, V: 4}, {U: 4, V: 5}} {
		if err := g.InsertEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	dd := NewFullyDynamic(g)
	check(t, dd, "initial forest")
	if err := dd.InsertEdge(1, 5); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "component merge")
	if !dd.Graph().IsConnected() {
		// 2 is still isolated
		if got := dd.Tree().Level(5); got < 1 {
			t.Fatalf("level(5)=%d", got)
		}
	}
}

func TestDeleteEdgeBackTreeSplit(t *testing.T) {
	dd := NewFullyDynamic(graph.Cycle(8))
	// Cycle: tree is a path 0..7 plus back edge (7,0). Delete back edge.
	if err := dd.DeleteEdge(7, 0); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "delete back edge")
	// Now a path; delete tree edge (3,4): split into two components.
	if err := dd.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "tree edge delete split")
	label, k := dd.Graph().ConnectedComponents()
	if k != 2 || label[0] == label[7] {
		t.Fatalf("expected split, got %d comps", k)
	}
}

func TestDeleteEdgeReattach(t *testing.T) {
	// Cycle: deleting a tree edge reattaches via the cycle's back edge.
	dd := NewFullyDynamic(graph.Cycle(8))
	if err := dd.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "delete tree edge with reattach")
	if !dd.Graph().IsConnected() {
		t.Fatal("graph should stay connected")
	}
}

func TestDeleteVertexCenter(t *testing.T) {
	dd := NewFullyDynamic(graph.Star(7))
	if err := dd.DeleteVertex(0); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "delete star center")
	if _, k := dd.Graph().ConnectedComponents(); k != 6 {
		t.Fatalf("expected 6 singleton components, got %d", k)
	}
}

func TestDeleteVertexInternal(t *testing.T) {
	dd := NewFullyDynamic(graph.Cycle(9))
	if err := dd.DeleteVertex(4); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "delete cycle vertex")
	if !dd.Graph().IsConnected() {
		t.Fatal("cycle minus vertex should stay connected")
	}
}

func TestInsertVertexVariants(t *testing.T) {
	dd := NewFullyDynamic(graph.Path(6))
	// Isolated vertex.
	v, err := dd.InsertVertex(nil)
	if err != nil {
		t.Fatal(err)
	}
	check(t, dd, "insert isolated vertex")
	// Pendant vertex.
	if _, err = dd.InsertVertex([]int{3}); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "insert pendant vertex")
	// High-degree vertex spanning the path and the isolated one.
	if _, err = dd.InsertVertex([]int{0, 2, 5, v}); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "insert hub vertex")
	if !dd.Graph().IsConnected() {
		t.Fatal("hub should connect everything")
	}
}

func TestApplyDispatch(t *testing.T) {
	dd := NewFullyDynamic(graph.Path(5))
	if _, err := dd.Apply(Update{Kind: InsertEdge, U: 0, V: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := dd.Apply(Update{Kind: DeleteEdge, U: 2, V: 3}); err != nil {
		t.Fatal(err)
	}
	id, err := dd.Apply(Update{Kind: InsertVertex, Neighbors: []int{0}})
	if err != nil || id < 0 {
		t.Fatalf("insert vertex: id=%d err=%v", id, err)
	}
	if _, err := dd.Apply(Update{Kind: DeleteVertex, U: 1}); err != nil {
		t.Fatal(err)
	}
	check(t, dd, "after dispatch sequence")
	if dd.Updates() != 4 {
		t.Fatalf("Updates=%d want 4", dd.Updates())
	}
}

func TestErrorPaths(t *testing.T) {
	dd := NewFullyDynamic(graph.Path(4))
	if err := dd.InsertEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := dd.DeleteEdge(0, 3); err == nil {
		t.Fatal("missing edge deletion accepted")
	}
	if err := dd.DeleteVertex(99); err == nil {
		t.Fatal("missing vertex deletion accepted")
	}
	if _, err := dd.Apply(Update{Kind: UpdateKind(9)}); err == nil {
		t.Fatal("unknown update accepted")
	}
	check(t, dd, "after error paths (state unchanged)")
}

// randomUpdate mutates dd with a random feasible update and returns a
// description, or "" if skipped.
func randomUpdate(t *testing.T, dd *DynamicDFS, rng *rand.Rand) string {
	t.Helper()
	g := dd.Graph()
	switch rng.Intn(10) {
	case 0, 1, 2:
		if e, ok := graph.RandomEdgeNotIn(g, rng); ok {
			if err := dd.InsertEdge(e.U, e.V); err != nil {
				t.Fatalf("InsertEdge%v: %v", e, err)
			}
			return "ins-edge"
		}
	case 3, 4, 5:
		if e, ok := graph.RandomExistingEdge(g, rng); ok {
			if err := dd.DeleteEdge(e.U, e.V); err != nil {
				t.Fatalf("DeleteEdge%v: %v", e, err)
			}
			return "del-edge"
		}
	case 6, 7:
		var nbrs []int
		for v := 0; v < g.NumVertexSlots(); v++ {
			if g.IsVertex(v) && rng.Float64() < 0.15 {
				nbrs = append(nbrs, v)
			}
		}
		if _, err := dd.InsertVertex(nbrs); err != nil {
			t.Fatalf("InsertVertex(%v): %v", nbrs, err)
		}
		return "ins-vertex"
	default:
		if g.NumVertices() > 3 {
			v := rng.Intn(g.NumVertexSlots())
			for !g.IsVertex(v) {
				v = rng.Intn(g.NumVertexSlots())
			}
			if err := dd.DeleteVertex(v); err != nil {
				t.Fatalf("DeleteVertex(%d): %v", v, err)
			}
			return "del-vertex"
		}
	}
	return ""
}

func TestRandomUpdateSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(24)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		dd := NewFullyDynamic(g)
		check(t, dd, "initial")
		for step := 0; step < 30; step++ {
			if op := randomUpdate(t, dd, rng); op != "" {
				check(t, dd, op)
			}
		}
	}
}

func TestLongSequenceStatsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	g := graph.GnpConnected(64, 0.06, rng)
	dd := NewFullyDynamic(g)
	var fallbacks, violations int
	for step := 0; step < 120; step++ {
		if op := randomUpdate(t, dd, rng); op != "" {
			check(t, dd, op)
			s := dd.LastStats()
			fallbacks += s.Fallbacks + s.GenericFall + s.HeavySpecial
			violations += s.Violations
		}
	}
	if fallbacks != 0 || violations != 0 {
		t.Fatalf("fallbacks=%d violations=%d on random sequence", fallbacks, violations)
	}
}

func TestHeadroomRelocation(t *testing.T) {
	// Fully dynamic mode relocates the pseudo root when headroom runs out.
	dd := New(graph.Path(3), Options{RebuildD: true, Headroom: 2})
	oldPseudo := dd.PseudoRoot()
	for i := 0; i < 6; i++ {
		if _, err := dd.InsertVertex([]int{0}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		check(t, dd, "after relocation-capable insert")
	}
	if dd.PseudoRoot() <= oldPseudo {
		t.Fatal("pseudo root was not relocated")
	}
	// Fault tolerant mode (no rebuild) must refuse instead.
	ft := New(graph.Path(3), Options{RebuildD: false, Headroom: 2})
	if _, err := ft.InsertVertex([]int{0}); err != nil {
		t.Fatalf("first insert within headroom: %v", err)
	}
	if _, err := ft.InsertVertex([]int{0}); err == nil {
		t.Fatal("headroom exhaustion not reported without rebuild")
	}
}

func TestDeleteEverything(t *testing.T) {
	dd := NewFullyDynamic(graph.Complete(5))
	for v := 0; v < 5; v++ {
		if err := dd.DeleteVertex(v); err != nil {
			t.Fatal(err)
		}
		check(t, dd, "delete all")
	}
	if dd.Graph().NumVertices() != 0 {
		t.Fatal("vertices remain")
	}
}
