package core

import (
	"math/rand"
	"testing"

	"repro/internal/dstruct"
	"repro/internal/graph"
)

// diffQueries issues the same batch of EdgeToWalk queries — the shapes the
// rerooting engine uses — against the incrementally maintained D and a D
// freshly built from scratch over the current (graph, tree), and requires
// bit-identical answers.
func diffQueries(t *testing.T, dd *DynamicDFS, rng *rand.Rand, ctx string) {
	t.Helper()
	tr := dd.Tree()
	fresh := dstruct.Build(dd.Graph(), tr, nil)
	var qs []dstruct.WalkQuery
	for v := 0; v < dd.Graph().NumVertexSlots(); v++ {
		if !tr.Present(v) || tr.Parent[v] == dd.PseudoRoot() || tr.Parent[v] == -1 {
			continue
		}
		if rng.Intn(3) != 0 && len(qs) > 0 {
			continue
		}
		// The engine's query shape: sources = T(v), walk = the tree path
		// from v's parent up to v's component root (disjoint from T(v)).
		p := tr.Parent[v]
		walk := tr.PathUp(p, tr.AncestorAtLevel(p, 1))
		src := tr.SubtreeVertices(v, nil)
		qs = append(qs,
			dstruct.WalkQuery{Sources: src, Walk: walk, FromEnd: true},
			dstruct.WalkQuery{Sources: src, Walk: walk, FromEnd: false},
			dstruct.WalkQuery{Sources: src, Walk: walk, FromEnd: true, BySource: true},
		)
	}
	got := dd.D().EdgeToWalkBatch(qs, nil)
	want := fresh.EdgeToWalkBatch(qs, nil)
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("%s: query %d diverged: incremental %+v(%v) vs fresh %+v(%v)",
				ctx, i, got[i].Hit, got[i].OK, want[i].Hit, want[i].OK)
		}
	}
}

// TestIncrementalDMatchesFreshBuild is the tentpole differential: over
// random mixed update sequences (all four kinds, with headroom small enough
// to exercise the relocatePseudo path), the incrementally maintained D must
// stay structurally identical to — and answer every EdgeToWalkBatch query
// exactly like — a D rebuilt from scratch after every update.
func TestIncrementalDMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(24)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		// Headroom 1: almost every vertex insertion relocates the pseudo root.
		dd := New(g, Options{RebuildD: true, Headroom: 1})
		for step := 0; step < 40; step++ {
			op := randomUpdate(t, dd, rng)
			if op == "" {
				continue
			}
			check(t, dd, op)
			if err := dd.D().CheckSynced(dd.Graph(), dd.Tree()); err != nil {
				t.Fatalf("trial %d step %d (%s): %v", trial, step, op, err)
			}
			diffQueries(t, dd, rng, op)
		}
		if inc, _ := dd.D().MaintenanceCounts(); inc == 0 {
			t.Fatalf("trial %d: no update took the incremental path", trial)
		}
	}
}

// TestIncrementalDReuseTree re-runs the differential with ReuseTree on: the
// tree object is renumbered in place before D.Update runs, so the test pins
// that repositioning works from D's own lagging order keys, not the tree's.
func TestIncrementalDReuseTree(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	g := graph.GnpConnected(24, 0.12, rng)
	dd := New(g, Options{RebuildD: true, ReuseTree: true})
	for step := 0; step < 60; step++ {
		op := randomUpdate(t, dd, rng)
		if op == "" {
			continue
		}
		check(t, dd, op)
		if err := dd.D().CheckSynced(dd.Graph(), dd.Tree()); err != nil {
			t.Fatalf("step %d (%s): %v", step, op, err)
		}
		diffQueries(t, dd, rng, op)
	}
}

// TestIncrementalFallbackOnHugeChurn pins the churn-ratio fallback: deleting
// the hub of a star moves every leaf at once (the patch set alone touches
// every edge), so the update must take the full-rebuild branch, while a
// back-edge insert right after stays incremental.
func TestIncrementalFallbackOnHugeChurn(t *testing.T) {
	dd := NewFullyDynamic(graph.Star(64))
	inc0, reb0 := dd.D().MaintenanceCounts()
	if err := dd.DeleteVertex(0); err != nil {
		t.Fatal(err)
	}
	if got := dd.D().LastMaintenance(); got != dstruct.MaintenanceRebuild {
		t.Fatalf("hub delete maintained D via %v, want rebuild fallback", got)
	}
	inc1, reb1 := dd.D().MaintenanceCounts()
	if reb1 != reb0+1 || inc1 != inc0 {
		t.Fatalf("counts after hub delete: incremental %d→%d, rebuilds %d→%d", inc0, inc1, reb0, reb1)
	}
	check(t, dd, "hub delete")
	if err := dd.D().CheckSynced(dd.Graph(), dd.Tree()); err != nil {
		t.Fatal(err)
	}

	// Low churn: connect two leaves (a cross edge moving one singleton
	// subtree), then hang a back edge on the resulting path — both cheap.
	if err := dd.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := dd.D().LastMaintenance(); got != dstruct.MaintenanceIncremental {
		t.Fatalf("leaf-leaf insert maintained D via %v, want incremental", got)
	}
	check(t, dd, "leaf-leaf insert")
	if err := dd.D().CheckSynced(dd.Graph(), dd.Tree()); err != nil {
		t.Fatal(err)
	}
}
