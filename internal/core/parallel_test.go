package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pram"
)

// TestParallelExecutionMatchesSerial drives two maintainers through the
// same update sequence — one on a forced 8-worker pool (so the sharded
// query evaluation and parallel D/LCA rebuilds run even on single-core
// hosts), one fully serial — and requires identical trees and identical
// recorded model costs after every update. Run under -race this doubles as
// the per-update hot path's interleaving check.
func TestParallelExecutionMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	const n = 1200
	g := graph.GnpConnected(n, 4.0/float64(n), rng)

	mp := pram.NewMachineWithWorkers(2*g.NumEdges()+n, 8)
	ms := pram.NewMachineWithWorkers(2*g.NumEdges()+n, 1)
	par := New(g, Options{RebuildD: true, Machine: mp})
	ser := New(g, Options{RebuildD: true, Machine: ms})

	sameTrees := func(ctx string) {
		t.Helper()
		tp, ts := par.Tree(), ser.Tree()
		if tp.N() != ts.N() {
			t.Fatalf("%s: slot counts differ (%d vs %d)", ctx, tp.N(), ts.N())
		}
		for v := 0; v < tp.N(); v++ {
			if tp.Parent[v] != ts.Parent[v] {
				t.Fatalf("%s: parent[%d] = %d (parallel) vs %d (serial)",
					ctx, v, tp.Parent[v], ts.Parent[v])
			}
		}
	}
	sameTrees("initial")

	mirror := par.Graph().Mutable()
	for step := 0; step < 60; step++ {
		var kind string
		switch rng.Intn(3) {
		case 0:
			if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
				kind = "insert"
				if mirror.InsertEdge(e.U, e.V) != nil {
					continue
				}
				if err := par.InsertEdge(e.U, e.V); err != nil {
					t.Fatalf("step %d parallel insert: %v", step, err)
				}
				if err := ser.InsertEdge(e.U, e.V); err != nil {
					t.Fatalf("step %d serial insert: %v", step, err)
				}
			}
		case 1:
			if e, ok := graph.RandomExistingEdge(mirror, rng); ok {
				kind = "delete"
				if mirror.DeleteEdge(e.U, e.V) != nil {
					continue
				}
				if err := par.DeleteEdge(e.U, e.V); err != nil {
					t.Fatalf("step %d parallel delete: %v", step, err)
				}
				if err := ser.DeleteEdge(e.U, e.V); err != nil {
					t.Fatalf("step %d serial delete: %v", step, err)
				}
			}
		case 2:
			v := rng.Intn(mirror.NumVertexSlots())
			if mirror.IsVertex(v) && mirror.NumVertices() > n/2 {
				kind = "delete-vertex"
				if mirror.DeleteVertex(v) != nil {
					continue
				}
				if err := par.DeleteVertex(v); err != nil {
					t.Fatalf("step %d parallel delete-vertex: %v", step, err)
				}
				if err := ser.DeleteVertex(v); err != nil {
					t.Fatalf("step %d serial delete-vertex: %v", step, err)
				}
			}
		}
		if kind == "" {
			continue
		}
		check(t, par, kind)
		sameTrees(kind)
	}

	// Worker-pool width must not leak into the model accounting.
	if mp.Depth() != ms.Depth() || mp.Work() != ms.Work() {
		t.Fatalf("accounting diverged: parallel (depth %d, work %d) vs serial (depth %d, work %d)",
			mp.Depth(), mp.Work(), ms.Depth(), ms.Work())
	}
}
