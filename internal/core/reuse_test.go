package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/verify"
)

// TestReuseTreeMatchesPersistent drives two maintainers through the same
// update sequence — one allocating a fresh tree per update, one rebuilding
// in place via Options.ReuseTree — and demands identical trees, identical
// query-effort totals, and a valid DFS tree at every step.
func TestReuseTreeMatchesPersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 160
	g := graph.GnpConnected(n, 4.0/float64(n), rng)
	fresh := New(g, Options{RebuildD: true})
	reuse := New(g, Options{RebuildD: true, ReuseTree: true})

	for step := 0; step < 120; step++ {
		var u Update
		switch rng.Intn(5) {
		case 0, 1:
			if e, ok := graph.RandomEdgeNotIn(fresh.Graph(), rng); ok {
				u = Update{Kind: InsertEdge, U: e.U, V: e.V}
			} else {
				continue
			}
		case 2, 3:
			if e, ok := graph.RandomExistingEdge(fresh.Graph(), rng); ok {
				u = Update{Kind: DeleteEdge, U: e.U, V: e.V}
			} else {
				continue
			}
		case 4:
			u = Update{Kind: InsertVertex, Neighbors: []int{rng.Intn(n), n + rng.Intn(4)}}
			if !fresh.Graph().IsVertex(u.Neighbors[1]) {
				u.Neighbors = u.Neighbors[:1]
			}
		}
		vf, errF := fresh.Apply(u)
		vr, errR := reuse.Apply(u)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("step %d (%v): fresh err %v, reuse err %v", step, u.Kind, errF, errR)
		}
		if errF != nil {
			continue
		}
		if vf != vr {
			t.Fatalf("step %d: inserted vertex %d vs %d", step, vf, vr)
		}
		tf, tr := fresh.Tree(), reuse.Tree()
		if tf.N() != tr.N() || tf.Root != tr.Root {
			t.Fatalf("step %d: tree shape diverged (%d/%d roots %d/%d)",
				step, tf.N(), tr.N(), tf.Root, tr.Root)
		}
		for v := 0; v < tf.N(); v++ {
			if tf.Parent[v] != tr.Parent[v] || tf.Present(v) != tr.Present(v) {
				t.Fatalf("step %d: vertex %d: parent %d/%d present %v/%v",
					step, v, tf.Parent[v], tr.Parent[v], tf.Present(v), tr.Present(v))
			}
			if tf.Present(v) && (tf.Post(v) != tr.Post(v) || tf.Level(v) != tr.Level(v) || tf.Size(v) != tr.Size(v)) {
				t.Fatalf("step %d: vertex %d numbering diverged", step, v)
			}
		}
		if err := verify.DFSForest(reuse.Graph(), tr, reuse.PseudoRoot()); err != nil {
			t.Fatalf("step %d: in-place tree invalid: %v", step, err)
		}
		if fresh.QueryStats() != reuse.QueryStats() {
			t.Fatalf("step %d: query stats diverged: %+v vs %+v",
				step, fresh.QueryStats(), reuse.QueryStats())
		}
	}
	if reuse.Updates() == 0 {
		t.Fatal("no updates applied")
	}
}
