package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/verify"
)

// TestSoakLongSequence runs a long mixed update sequence at a moderate size,
// verifying the tree after every update and asserting the round bound and
// clean scheduler stats throughout. Skipped with -short.
func TestSoakLongSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(239))
	g := graph.GnpConnected(256, 3.0/256.0, rng)
	dd := NewFullyDynamic(g)
	worstRounds := 0
	for step := 0; step < 400; step++ {
		if op := randomUpdate(t, dd, rng); op == "" {
			continue
		}
		if err := verify.DFSForest(dd.Graph(), dd.Tree(), dd.PseudoRoot()); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		s := dd.LastStats()
		if s.GenericFall+s.Violations+s.HeavySpecial > 0 {
			t.Fatalf("step %d: dirty stats %+v", step, s)
		}
		if s.Rounds > worstRounds {
			worstRounds = s.Rounds
		}
	}
	n := dd.Graph().NumVertices()
	lg := int(pram.Log2Ceil(n + 1))
	if worstRounds > 4*lg*lg {
		t.Fatalf("worst rounds %d > 4·log²n = %d (n=%d)", worstRounds, 4*lg*lg, n)
	}
}
