package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/verify"
)

// TestStressManySeeds sweeps 30 seeds of long mixed sequences asserting the
// C1/C2 machinery never needs the generic fallback (the A1 guards in
// internal/reroot/heavy.go were added for a case this test family caught).
func TestStressManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for seed := int64(300); seed < 330; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 64 + int(seed%3)*64
		g := graph.GnpConnected(n, 4.0/float64(n), rng)
		dd := NewFullyDynamic(g)
		for step := 0; step < 150; step++ {
			if op := randomUpdate(t, dd, rng); op == "" {
				continue
			}
			s := dd.LastStats()
			if s.GenericFall+s.Violations > 0 {
				t.Fatalf("seed %d step %d: %+v", seed, step, s)
			}
			if step%25 == 0 {
				if err := verify.DFSForest(dd.Graph(), dd.Tree(), dd.PseudoRoot()); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
		}
		if err := verify.DFSForest(dd.Graph(), dd.Tree(), dd.PseudoRoot()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
