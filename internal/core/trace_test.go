package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// TestApplyTraceStages pins the maintainer's side of update tracing: with a
// trace attached, Apply records the engine and D-maintenance stage spans
// and tags the outcome and delta sizes; with none attached, nothing is
// touched.
func TestApplyTraceStages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GnpConnected(256, 3.0/256, rng)
	dd := NewFullyDynamic(g)

	// A back-edge insert: tree untouched, D absorbs the patch incrementally.
	tr := dd.Tree()
	u, v := -1, -1
	for x := 0; x < g.NumVertexSlots() && u < 0; x++ {
		if !tr.Present(x) || tr.Level(x) < 3 {
			continue
		}
		a := tr.Parent[tr.Parent[tr.Parent[x]]]
		if a != dd.PseudoRoot() && !dd.Graph().HasEdge(x, a) {
			u, v = x, a
		}
	}
	if u < 0 {
		t.Skip("no comparable non-edge found")
	}
	var trace obs.Trace
	dd.SetTrace(&trace)
	if err := dd.InsertEdge(u, v); err != nil {
		t.Fatal(err)
	}
	if !trace.SameTree {
		t.Fatalf("back-edge insert not tagged SameTree: %+v", trace)
	}
	if trace.Outcome != "incremental" {
		t.Fatalf("back-edge insert outcome %q, want incremental", trace.Outcome)
	}
	if trace.Engine != 0 {
		t.Fatalf("back-edge insert charged engine time %v", trace.Engine)
	}
	if trace.Moved != 0 || trace.Removed != 0 {
		t.Fatalf("back-edge insert moved/removed = %d/%d, want 0/0", trace.Moved, trace.Removed)
	}

	// Deleting a tree edge restructures: the engine span and the moved set
	// must be recorded.
	var del obs.Trace
	dd.SetTrace(&del)
	victim := -1
	for x := 0; x < g.NumVertexSlots(); x++ {
		if dd.Tree().Present(x) && dd.Tree().Parent[x] != dd.PseudoRoot() && dd.Tree().Parent[x] >= 0 {
			victim = x
			break
		}
	}
	if victim < 0 {
		t.Fatal("no tree edge to delete")
	}
	if err := dd.DeleteEdge(dd.Tree().Parent[victim], victim); err != nil {
		t.Fatal(err)
	}
	if del.SameTree {
		t.Fatalf("tree-edge delete tagged SameTree: %+v", del)
	}
	if del.Outcome != "incremental" && del.Outcome != "fallback" {
		t.Fatalf("tree-edge delete outcome %q", del.Outcome)
	}
	if del.Moved == 0 {
		t.Fatal("tree-edge delete recorded an empty moved set")
	}
	if del.Engine <= 0 {
		t.Fatalf("tree-edge delete engine span %v, want > 0", del.Engine)
	}
	if del.DMaint <= 0 {
		t.Fatalf("tree-edge delete dmaint span %v, want > 0", del.DMaint)
	}

	// Detached: later updates must not touch the old trace.
	dd.SetTrace(nil)
	saved := del
	if err := dd.InsertEdge(u, v); err == nil {
		_ = dd.DeleteEdge(u, v)
	}
	if del != saved {
		t.Fatal("detached trace was mutated by a later update")
	}
}

// TestApplyTraceRebuildOutcome pins the forced-rebuild tag.
func TestApplyTraceRebuildOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.GnpConnected(128, 3.0/128, rng)
	dd := New(g, Options{RebuildD: true, FullRebuildD: true})
	var trace obs.Trace
	dd.SetTrace(&trace)
	// Any successful update in FullRebuildD mode rebuilds D from scratch.
	eu, ev := -1, -1
	for a := 0; a < 128 && eu < 0; a++ {
		for b := a + 1; b < 128; b++ {
			if !dd.Graph().HasEdge(a, b) {
				eu, ev = a, b
				break
			}
		}
	}
	if eu < 0 {
		t.Skip("graph is complete")
	}
	if err := dd.InsertEdge(eu, ev); err != nil {
		t.Fatal(err)
	}
	if trace.Outcome != "rebuild" {
		t.Fatalf("FullRebuildD outcome %q, want rebuild", trace.Outcome)
	}
	if trace.DMaint <= 0 {
		t.Fatalf("rebuild dmaint span %v, want > 0", trace.DMaint)
	}
}
