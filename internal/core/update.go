package core

import (
	"fmt"

	"repro/internal/reroot"
	"repro/internal/tree"
)

// Apply dispatches one update. For InsertVertex the new vertex ID is
// returned; other kinds return -1.
func (dd *DynamicDFS) Apply(u Update) (int, error) {
	switch u.Kind {
	case InsertEdge:
		return -1, dd.InsertEdge(u.U, u.V)
	case DeleteEdge:
		return -1, dd.DeleteEdge(u.U, u.V)
	case InsertVertex:
		return dd.InsertVertex(u.Neighbors)
	case DeleteVertex:
		return -1, dd.DeleteVertex(u.U)
	}
	return -1, fmt.Errorf("core: unknown update kind %d", u.Kind)
}

// InsertEdge handles case (ii) of the reduction (Section 3): if (u,v) is a
// back edge the tree is unchanged; otherwise, with w = LCA(u,v), the child
// subtree of w containing v is rerooted at v and hung from u. The case
// w = pseudo root covers merging two components.
func (dd *DynamicDFS) InsertEdge(u, v int) error {
	dd.lastDelta = nil // re-established by installTree on success
	ng, err := dd.g.InsertEdge(u, v)
	if err != nil {
		return err
	}
	dd.g = ng
	dd.d.PatchInsertEdge(u, v)
	w := dd.l.LCA(u, v)
	if w == u || w == v {
		// Back edge: no restructuring — D just absorbs the edge patch.
		dd.lastStats = reroot.Stats{}
		dd.installTree(dd.t, nil, nil, true)
		return nil
	}
	vPrime := dd.t.ChildToward(w, v)
	e := dd.engine()
	if err := dd.reroot(e, vPrime, v, u); err != nil {
		return fmt.Errorf("core: insert edge (%d,%d): %w", u, v, err)
	}
	return dd.finish(e)
}

// DeleteEdge handles case (i): deleting a back edge leaves the tree
// unchanged; deleting tree edge (parent u, child v) reroots T(v) at the
// inside endpoint of the deepest edge from T(v) to path(u, root of u's
// component), or hangs T(v) under the pseudo root if the component split.
func (dd *DynamicDFS) DeleteEdge(u, v int) error {
	dd.lastDelta = nil // re-established by installTree on success
	isTree := dd.t.Parent[v] == u || dd.t.Parent[u] == v
	ng, err := dd.g.DeleteEdge(u, v)
	if err != nil {
		return err
	}
	dd.g = ng
	dd.d.PatchDeleteEdge(u, v)
	if !isTree {
		// Back edge: no restructuring — D just absorbs the edge patch.
		dd.lastStats = reroot.Stats{}
		dd.installTree(dd.t, nil, nil, true)
		return nil
	}
	if dd.t.Parent[u] == v {
		u, v = v, u // orient: u = parent
	}
	e := dd.engine()
	if inside, on, ok := dd.lowestEdgeToPath(v, u, dd.compRoot(u)); ok {
		if err := dd.reroot(e, v, inside, on); err != nil {
			return fmt.Errorf("core: delete edge (%d,%d): %w", u, v, err)
		}
	} else {
		// T(v) became its own component: hang it under the pseudo root
		// unchanged (a DFS tree of the split-off component).
		e.SetParent(v, dd.pseudo)
	}
	return dd.finish(e)
}

// DeleteVertex handles case (iii): every child subtree T(v_i) of the
// deleted vertex u is independently rerooted via its deepest edge to
// path(parent(u), component root), or becomes a new component.
func (dd *DynamicDFS) DeleteVertex(u int) error {
	dd.lastDelta = nil // re-established by installTree on success
	if !dd.g.IsVertex(u) {
		return fmt.Errorf("core: delete of non-vertex %d", u)
	}
	neighbors := dd.g.SortedNeighbors(u)
	ng, err := dd.g.DeleteVertex(u)
	if err != nil {
		return err
	}
	dd.g = ng
	dd.d.PatchDeleteVertex(u, neighbors)
	pu := dd.t.Parent[u]
	children := dd.t.Children(u)
	e := dd.engine()
	e.SetParent(u, tree.None)
	if pu == dd.pseudo {
		// u was a component root: no path above to reattach through.
		for _, vi := range children {
			e.SetParent(vi, dd.pseudo)
		}
		return dd.finish(e)
	}
	// The per-child deepest-edge queries share one path and are independent
	// of each other and of the reroots they feed: one batch.
	answers := dd.lowestEdgesToPath(children, pu, dd.compRoot(pu))
	for i, vi := range children {
		if answers[i].OK {
			if err := dd.reroot(e, vi, answers[i].Hit.U, answers[i].Hit.Z); err != nil {
				return fmt.Errorf("core: delete vertex %d (subtree %d): %w", u, vi, err)
			}
		} else {
			e.SetParent(vi, dd.pseudo)
		}
	}
	return dd.finish(e)
}

// InsertVertex handles case (iv): the new vertex u becomes a child of one
// neighbor v_j; every other neighbor v_i outside path(v_j, root) pulls its
// hanging subtree T(v'_i) to be rerooted at v_i and hung from u. Multiple
// neighbors in the same hanging subtree share one reroot (the extra edges
// become back edges).
func (dd *DynamicDFS) InsertVertex(neighbors []int) (int, error) {
	dd.lastDelta = nil // re-established by installTree on success
	if dd.g.NumVertexSlots()+1 >= dd.pseudo {
		// The next ID would collide with the pseudo root. In fully dynamic
		// mode D is rebuilt per update anyway, so relocate the pseudo root
		// with doubled headroom; in fault tolerant mode D is pinned to the
		// original numbering, so this is an error.
		if !dd.rebuildD {
			return -1, fmt.Errorf("core: vertex headroom exhausted (pseudo %d); preprocess with larger Options.Headroom", dd.pseudo)
		}
		dd.relocatePseudo()
	}
	ng, u, err := dd.g.InsertVertex(neighbors)
	if err != nil {
		return -1, err
	}
	dd.g = ng
	dd.d.PatchInsertVertex(u, neighbors)
	e := dd.engine()
	if len(neighbors) == 0 {
		e.SetParent(u, dd.pseudo)
		return u, dd.finish(e)
	}
	// Arbitrary choice of v_j: the shallowest neighbor, which minimizes the
	// number of hanging subtrees to reroot.
	vj := neighbors[0]
	for _, v := range neighbors[1:] {
		if dd.t.Level(v) < dd.t.Level(vj) {
			vj = v
		}
	}
	e.SetParent(u, vj)
	// Group remaining neighbors by their hanging subtree off path(vj,root).
	seen := make(map[int]bool)
	for _, vi := range neighbors {
		if vi == vj {
			continue
		}
		a := dd.l.LCA(vi, vj)
		if a == vi {
			continue // vi on path(vj, root): (u, vi) is a back edge
		}
		vPrime := dd.t.ChildToward(a, vi)
		if seen[vPrime] {
			continue // same subtree already rerooted; extra edge is a back edge
		}
		seen[vPrime] = true
		if err := dd.reroot(e, vPrime, vi, u); err != nil {
			return -1, fmt.Errorf("core: insert vertex (neighbor %d): %w", vi, err)
		}
	}
	return u, dd.finish(e)
}
