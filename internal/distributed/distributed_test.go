package distributed

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/verify"
)

func TestNetworkBFSCosts(t *testing.T) {
	nw := NewNetwork(4)
	g := graph.Path(9)
	nw.BuildBFS(g)
	if nw.Depth() != 8 {
		t.Fatalf("path BFS depth=%d want 8", nw.Depth())
	}
	if nw.Rounds != 9 {
		t.Fatalf("BFS rounds=%d want depth+1=9", nw.Rounds)
	}
	if nw.Messages != int64(2*g.NumEdges()) {
		t.Fatalf("BFS messages=%d want 2m=%d", nw.Messages, 2*g.NumEdges())
	}
}

func TestNetworkBFSForest(t *testing.T) {
	g := graph.New(5)
	if err := g.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(2)
	nw.BuildBFS(g)
	if nw.Depth() != 1 {
		t.Fatalf("forest depth=%d want 1", nw.Depth())
	}
	if nw.treeEdges != 2 {
		t.Fatalf("treeEdges=%d want 2", nw.treeEdges)
	}
}

func TestExchangePipelining(t *testing.T) {
	// depth d, chunks c: one exchange = 2(d + c) rounds (up then down),
	// 2·treeEdges·c messages.
	nw := NewNetwork(4)
	g := graph.Path(11) // depth 10, 10 tree edges
	nw.BuildBFS(g)
	r0, m0 := nw.Rounds, nw.Messages
	rounds := nw.Exchange(40) // 40 words, B=4 -> 10 chunks
	wantRounds := 2 * (10 + 10)
	if rounds != wantRounds {
		t.Fatalf("exchange rounds=%d want %d", rounds, wantRounds)
	}
	if nw.Rounds-r0 != int64(wantRounds) {
		t.Fatalf("rounds accumulator off")
	}
	if nw.Messages-m0 != int64(2*10*10) {
		t.Fatalf("exchange messages=%d want 200", nw.Messages-m0)
	}
	if nw.Exchange(0) != 0 {
		t.Fatal("empty exchange should be free")
	}
}

func TestMaintainerRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(20)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		m := New(g, 0)
		for step := 0; step < 15; step++ {
			var u core.Update
			ok := false
			if rng.Intn(2) == 0 {
				if e, has := graph.RandomEdgeNotIn(m.Core().Graph(), rng); has {
					u, ok = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}, true
				}
			} else {
				if e, has := graph.RandomExistingEdge(m.Core().Graph(), rng); has {
					u, ok = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}, true
				}
			}
			if !ok {
				continue
			}
			if _, err := m.Apply(u); err != nil {
				t.Fatal(err)
			}
			if err := verify.DFSForest(m.Core().Graph(), m.Core().Tree(), m.Core().PseudoRoot()); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if m.LastRounds() <= 0 || m.LastMessages() <= 0 {
				t.Fatalf("no network activity recorded for %v", u.Kind)
			}
		}
	}
}

func TestRoundsWithinTheorem16(t *testing.T) {
	// Rounds per update must stay within c·D·log²n (plus the BFS rebuild).
	rng := rand.New(rand.NewSource(163))
	g := graph.CycleOfCliques(8, 8) // n=64, moderate diameter
	d := g.Diameter()
	m := New(g, 0)
	n := g.NumVertices()
	lg := int(pram.Log2Ceil(n))
	var worst int64
	for step := 0; step < 25; step++ {
		if e, ok := graph.RandomEdgeNotIn(m.Core().Graph(), rng); ok {
			if _, err := m.Apply(core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}); err != nil {
				t.Fatal(err)
			}
			if m.LastRounds() > worst {
				worst = m.LastRounds()
			}
		}
	}
	budget := int64(20 * (d + 1) * lg * lg)
	if worst > budget {
		t.Fatalf("worst rounds %d > budget %d (D=%d, log²n=%d)", worst, budget, d, lg*lg)
	}
}

func TestNodeMemoryAudit(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	g := graph.GnpConnected(50, 0.1, rng)
	m := New(g, 0)
	if w := m.MaxNodeWords(); w > 4*(50+65) {
		t.Fatalf("per-node memory %d words not O(n)", w)
	}
}

func TestMessageSizeChoice(t *testing.T) {
	// Default B should be about n/D.
	g := graph.Path(32) // D=31
	m := New(g, 0)
	if m.Network().B < 1 || m.Network().B > 2 {
		t.Fatalf("B=%d want ~n/D=1", m.Network().B)
	}
	g2 := graph.Complete(16) // D=1
	m2 := New(g2, 0)
	if m2.Network().B != 16 {
		t.Fatalf("B=%d want n/D=16", m2.Network().B)
	}
}
