package distributed

import (
	"repro/internal/bicon"
	"repro/internal/core"
	"repro/internal/graph"
)

// Maintainer runs the fully dynamic DFS algorithm over the CONGEST(B)
// simulator: the answers come from the shared engine (each node could
// compute its partial solutions locally from its adjacency list; the
// convergecast combines them), while the network accounts every round and
// message of the communication schedule.
type Maintainer struct {
	dd *core.DynamicDFS
	nw *Network

	lastRounds   int64
	lastMessages int64
	lastArtic    int
}

// New builds the maintainer. b is the message size in words; pass 0 to use
// the paper's CONGEST(n/D) choice computed from the initial graph.
func New(g *graph.Graph, b int) *Maintainer {
	if b <= 0 {
		d := g.Diameter()
		if d < 1 {
			d = 1
		}
		b = (g.NumVertices() + d - 1) / d
		if b < 1 {
			b = 1
		}
	}
	m := &Maintainer{
		dd: core.NewFullyDynamic(g),
		nw: NewNetwork(b),
	}
	m.nw.BuildBFS(m.dd.Graph())
	return m
}

// Network exposes the cost simulator.
func (m *Maintainer) Network() *Network { return m.nw }

// Core exposes the underlying maintainer (tree, graph, pseudo root).
func (m *Maintainer) Core() *core.DynamicDFS { return m.dd }

// LastRounds returns the rounds consumed by the most recent update.
func (m *Maintainer) LastRounds() int64 { return m.lastRounds }

// LastMessages returns the messages of the most recent update.
func (m *Maintainer) LastMessages() int64 { return m.lastMessages }

// LastArticulationPoints returns how many articulation points the
// Section 6.2.2 bookkeeping found after the most recent deletion.
func (m *Maintainer) LastArticulationPoints() int { return m.lastArtic }

// MaxNodeWords audits the per-node memory: T and T* (n words each) plus
// the node's adjacency list — the O(n) restriction of Section 6.2.
func (m *Maintainer) MaxNodeWords() int {
	n := m.dd.Tree().N()
	maxDeg := 0
	g := m.dd.Graph()
	for v := 0; v < g.NumVertexSlots(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return 2*n + maxDeg
}

// Apply processes one update: broadcast the update, rebuild the BFS forest
// on the updated graph, then run the rerooting with one pipelined exchange
// per sequential batch of independent queries.
func (m *Maintainer) Apply(u core.Update) (int, error) {
	r0, g0 := m.nw.Rounds, m.nw.Messages

	// Update size: an inserted vertex carries its whole edge set (the
	// Ω(n/D) message-size lower bound of Section 6.2.1 comes from here).
	updWords := 2 + len(u.Neighbors)
	m.nw.BroadcastUpdate(updWords)

	id, err := m.dd.Apply(u)
	if err != nil {
		return id, err
	}
	// Abrupt deletions: the BFS forest is rebuilt on the updated topology
	// before any query exchange uses it.
	m.nw.BuildBFS(m.dd.Graph())
	n := m.dd.Graph().NumVertices()
	for b := 0; b < m.dd.LastStats().Batches; b++ {
		m.nw.Exchange(n) // one batch = O(n) independent partial solutions
	}
	// Component-split/merge bookkeeping (Section 6.2.2): after a deletion
	// each node maintains the articulation points/bridges of the current
	// tree so the broadcast vertex of each resulting component can be
	// chosen locally; combining the per-node partial solutions is one more
	// O(n)-word exchange.
	if u.Kind == core.DeleteEdge || u.Kind == core.DeleteVertex {
		a := bicon.Analyze(m.dd.Graph(), m.dd.Tree(), m.dd.PseudoRoot(), m.dd.Machine())
		m.lastArtic = len(a.ArticulationPoints())
		m.nw.Exchange(n)
	}
	m.lastRounds = m.nw.Rounds - r0
	m.lastMessages = m.nw.Messages - g0
	return id, nil
}
