// Package distributed implements the paper's distributed fully dynamic DFS
// (Theorem 16, Section 6.2): a synchronous CONGEST(B) network with one
// processor per vertex, communication only along graph edges, messages of
// B = O(n/D) words, and O(n) words of state per node (the current DFS tree
// T, the partially built T*, and the node's own adjacency list).
//
// The discrete-event Network simulates the communication schedule — BFS
// tree construction after each update, then one pipelined convergecast +
// broadcast per batch of independent D-queries — counting rounds and
// messages exactly. Query answers themselves are computed by the shared
// rerooting engine (they are the same values the convergecast would
// combine); what the simulator measures is the communication cost of
// shipping them, which is what Theorem 16 bounds.
package distributed

import (
	"fmt"

	"repro/internal/graph"
)

// Network is a synchronous CONGEST(B) cost simulator.
type Network struct {
	B        int   // words per message
	Rounds   int64 // total synchronous rounds elapsed
	Messages int64 // total messages sent
	Words    int64 // total words shipped

	// Current BFS forest used for broadcasts.
	bfsParent []int
	bfsDepth  int
	treeEdges int
}

// NewNetwork creates a network with the given per-message word budget.
func NewNetwork(b int) *Network {
	if b < 1 {
		b = 1
	}
	return &Network{B: b}
}

// BuildBFS floods a BFS forest over the (updated) graph: one BFS tree per
// component, rooted at the component's smallest vertex ID (the paper's
// choice). Costs O(depth) rounds and O(m) messages — every edge carries one
// exploration message each way, as in the standard flooding construction.
func (nw *Network) BuildBFS(g graph.Adjacency) {
	n := g.NumVertexSlots()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, n)
	depth := 0
	edges := 0
	var queue []int
	for s := 0; s < n; s++ {
		if !g.IsVertex(s) || seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], s)
		dist := map[int]int{s: 0}
		for h := 0; h < len(queue); h++ {
			v := queue[h]
			for _, w := range g.SortedNeighbors(v) {
				if !seen[w] {
					seen[w] = true
					parent[w] = v
					dist[w] = dist[v] + 1
					if dist[w] > depth {
						depth = dist[w]
					}
					edges++
					queue = append(queue, w)
				}
			}
		}
	}
	nw.bfsParent = parent
	nw.bfsDepth = depth
	nw.treeEdges = edges
	nw.Rounds += int64(depth + 1)
	nw.Messages += int64(2 * g.NumEdges()) // flood + ack along every edge
	nw.Words += int64(2 * g.NumEdges())
}

// Exchange simulates one pipelined convergecast + broadcast of `words`
// partial solutions over the current BFS forest: the words are cut into
// ⌈words/B⌉ chunks; chunk c crosses each tree level one round after chunk
// c-1 (pipelining). Each tree edge carries every chunk once up and once
// down. Returns the number of rounds this exchange took.
func (nw *Network) Exchange(words int) int {
	if words <= 0 || nw.bfsParent == nil {
		return 0
	}
	chunks := (words + nw.B - 1) / nw.B
	// Literal schedule simulation: chunk c departs the deepest level at
	// round c (0-based) and arrives at the root after bfsDepth hops; the
	// downward broadcast mirrors it.
	upRounds := 0
	for c := 0; c < chunks; c++ {
		arrival := c + nw.bfsDepth
		if arrival+1 > upRounds {
			upRounds = arrival + 1
		}
	}
	rounds := 2 * upRounds
	nw.Rounds += int64(rounds)
	nw.Messages += int64(2 * nw.treeEdges * chunks)
	nw.Words += 2 * int64(nw.treeEdges) * int64(words)
	return rounds
}

// BroadcastUpdate ships the update description (size words) down the BFS
// forest — the paper's update-propagation step.
func (nw *Network) BroadcastUpdate(words int) {
	if words <= 0 || nw.bfsParent == nil {
		return
	}
	chunks := (words + nw.B - 1) / nw.B
	nw.Rounds += int64(nw.bfsDepth + chunks)
	nw.Messages += int64(nw.treeEdges * chunks)
	nw.Words += int64(nw.treeEdges) * int64(words)
}

// Depth returns the current BFS forest depth.
func (nw *Network) Depth() int { return nw.bfsDepth }

func (nw *Network) String() string {
	return fmt.Sprintf("CONGEST(B=%d): rounds=%d messages=%d words=%d",
		nw.B, nw.Rounds, nw.Messages, nw.Words)
}
