package distributed

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestVertexUpdatesOverNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	g := graph.GnpConnected(24, 0.15, rng)
	m := New(g, 0)
	// Vertex insertion: the update description carries the whole edge set —
	// the Section 6.2.1 message-size lower-bound scenario.
	nbrs := []int{0, 5, 11, 17}
	if _, err := m.Apply(core.Update{Kind: core.InsertVertex, Neighbors: nbrs}); err != nil {
		t.Fatal(err)
	}
	if err := verify.DFSForest(m.Core().Graph(), m.Core().Tree(), m.Core().PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	insRounds := m.LastRounds()
	if insRounds <= 0 {
		t.Fatal("no rounds for vertex insert")
	}
	// Vertex deletion triggers the articulation-point bookkeeping exchange.
	if _, err := m.Apply(core.Update{Kind: core.DeleteVertex, U: 5}); err != nil {
		t.Fatal(err)
	}
	if err := verify.DFSForest(m.Core().Graph(), m.Core().Tree(), m.Core().PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	if m.LastArticulationPoints() < 0 {
		t.Fatal("articulation bookkeeping missing")
	}
}

func TestDeletionSplitsNetwork(t *testing.T) {
	// Deleting the cut vertex splits the network; the BFS forest and DFS
	// forest must both track the two components.
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle A
		{U: 2, V: 3},                             // bridge vertex 3... via 2
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // triangle B
		{U: 3, V: 6},
	})
	m := New(g, 0)
	if _, err := m.Apply(core.Update{Kind: core.DeleteVertex, U: 3}); err != nil {
		t.Fatal(err)
	}
	if err := verify.DFSForest(m.Core().Graph(), m.Core().Tree(), m.Core().PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	if _, k := m.Core().Graph().ConnectedComponents(); k != 3 {
		t.Fatalf("components=%d want 3", k)
	}
	if m.Network().Depth() > 2 {
		t.Fatalf("post-split BFS depth=%d", m.Network().Depth())
	}
}

func TestBroadcastUpdateCosts(t *testing.T) {
	nw := NewNetwork(2)
	g := graph.Path(5)
	nw.BuildBFS(g)
	r0, m0 := nw.Rounds, nw.Messages
	nw.BroadcastUpdate(6) // 3 chunks of 2 words
	if nw.Rounds-r0 != int64(nw.Depth()+3) {
		t.Fatalf("broadcast rounds=%d want depth+chunks=%d", nw.Rounds-r0, nw.Depth()+3)
	}
	if nw.Messages-m0 != int64(4*3) {
		t.Fatalf("broadcast messages=%d want treeEdges*chunks=12", nw.Messages-m0)
	}
	nw.BroadcastUpdate(0) // free
	if nw.Rounds-r0 != int64(nw.Depth()+3) {
		t.Fatal("empty broadcast should be free")
	}
}

func TestNetworkString(t *testing.T) {
	nw := NewNetwork(0) // clamps to 1
	if nw.B != 1 {
		t.Fatalf("B=%d want 1", nw.B)
	}
	if s := nw.String(); s == "" {
		t.Fatal("empty String()")
	}
}
