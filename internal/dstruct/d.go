package dstruct

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/tree"
)

// D answers lowest/highest-edge queries against a base tree T plus an
// accumulated patch set.
type D struct {
	T   *tree.Tree
	LCA *lca.Index

	mach *pram.Machine // worker pool for build and query execution; nil = serial

	// key holds D's relocatable order labels: key[v] is v's position in T's
	// post-order (-1 for holes), and every neighbor row is sorted by the key
	// of its entries. The labels lag the tree on purpose — Update repositions
	// moved entries by binary-searching rows under the previous labels before
	// refreshing key from the new tree's numbering — so query code must
	// compare keys, never tree.Post directly.
	key []int

	nbr [][]int32 // nbr[v] = neighbors of v sorted by key (base graph only)

	inserted   map[int][]int           // patch: inserted-edge adjacency
	deletedE   map[graph.Edge]struct{} // patch: deleted base edges (canonical)
	patchVerts map[int]struct{}        // vertices with no base numbering
	numPatches int

	lastMaint   Maintenance
	incremental int64 // Update calls that took the incremental path
	rebuilds    int64 // Rebuild calls (direct or Update fallbacks)
}

// Stats aggregates search-effort counters. The query path never mutates D:
// every EdgeToWalk-family call accumulates into a caller-supplied per-call
// Stats, so a built D serves concurrent queries from many goroutines as
// long as each passes its own accumulator (parallel shards within one call
// use private copies merged on completion, so the counters are exact).
type Stats struct {
	Searches    int64 // per-source per-run binary searches (fast path)
	ScanSteps   int64 // filtered-scan steps (slow path, Case B and skip-deleted)
	CaseB       int64 // searches where the source was an ancestor of the run
	PatchScans  int64 // patch-list entries examined
	WalkQueries int64 // EdgeToWalk-family invocations
	RunsSplit   int64 // total base-tree fragments across all walk queries
}

// Add accumulates another Stats (a shard-local copy, or a per-call
// accumulator being rolled into a running total) into s.
func (s *Stats) Add(o Stats) {
	s.Searches += o.Searches
	s.ScanSteps += o.ScanSteps
	s.CaseB += o.CaseB
	s.PatchScans += o.PatchScans
	s.WalkQueries += o.WalkQueries
	s.RunsSplit += o.RunsSplit
}

// buildParallelCutoff is the tree size below which Build/Rebuild fill the
// neighbor rows serially (mirroring query.go's parallelSourceCutoff).
const buildParallelCutoff = 2048

// Build constructs D over graph g and its DFS tree t, charging the machine
// the paper's preprocessing cost (Theorem 8: O(log n) depth on m
// processors; per-vertex parallel merge sort of N(v)). mach may be nil, in
// which case construction and all queries run serially.
func Build(g graph.Adjacency, t *tree.Tree, mach *pram.Machine) *D {
	d := &D{
		inserted:   make(map[int][]int),
		deletedE:   make(map[graph.Edge]struct{}),
		patchVerts: make(map[int]struct{}),
	}
	d.build(g, t, mach)
	return d
}

// Rebuild reconstructs D over (g, t) in place, discarding all patches and
// reusing the existing neighbor rows and LCA buffers. It is the ground-up
// maintenance step of the fully dynamic maintainer (now the high-churn
// fallback of Update) and keeps that path allocation-light. Queries answered
// before Rebuild returns are invalid.
func (d *D) Rebuild(g graph.Adjacency, t *tree.Tree, mach *pram.Machine) {
	clear(d.inserted)
	clear(d.deletedE)
	clear(d.patchVerts)
	d.numPatches = 0
	d.rebuilds++
	d.lastMaint = MaintenanceRebuild
	d.build(g, t, mach)
}

func (d *D) build(g graph.Adjacency, t *tree.Tree, mach *pram.Machine) {
	n := t.N()
	d.T = t
	d.mach = mach
	if d.LCA == nil {
		d.LCA = lca.NewWith(t, mach)
	} else {
		d.LCA.RebuildWith(t, mach)
	}
	d.key = t.PostInto(d.key)
	if cap(d.nbr) >= n {
		d.nbr = d.nbr[:n]
	} else {
		d.nbr = make([][]int32, n)
	}
	slots := g.NumVertexSlots()
	if slots > n {
		slots = n
	}
	// Per-vertex neighbor-row sorts are independent: shard the vertex range
	// over the worker pool, each shard tracking its own max degree. Small
	// trees fill serially — the per-update Rebuild of a small graph should
	// not pay goroutine fan-out for microseconds of sorting.
	par := mach != nil && mach.Workers() > 1 && n >= buildParallelCutoff
	shardMax := make([]int, 1)
	if par {
		shardMax = make([]int, mach.Workers())
	}
	fillRange := func(shard, lo, hi int) {
		var scratch []int
		maxDeg := 0
		for v := lo; v < hi; v++ {
			if v >= slots || !g.IsVertex(v) {
				d.nbr[v] = d.nbr[v][:0]
				continue
			}
			scratch = g.Neighbors(v, scratch)
			row := d.nbr[v][:0]
			for _, w := range scratch {
				row = append(row, int32(w))
			}
			// Order keys (post-order indices) are unique, so the sort is
			// deterministic regardless of the map-iteration order Neighbors
			// returns.
			sort.Slice(row, func(i, j int) bool {
				return d.key[row[i]] < d.key[row[j]]
			})
			d.nbr[v] = row
			if len(row) > maxDeg {
				maxDeg = len(row)
			}
		}
		shardMax[shard] = maxDeg
	}
	if par {
		mach.ExecSharded(n, fillRange)
	} else {
		fillRange(0, 0, n)
	}
	maxDeg := 0
	for _, m := range shardMax {
		if m > maxDeg {
			maxDeg = m
		}
	}
	if mach != nil {
		// One parallel merge sort per adjacency list, all in parallel on m
		// processors: depth log(max degree), work sum |N(v)| log |N(v)|.
		mach.Charge(pram.Log2Ceil(maxDeg), int64(2*g.NumEdges())*pram.Log2Ceil(maxDeg))
	}
}

// SizeWords returns the memory footprint of D in words, for the O(m) space
// audit of Theorem 8.
func (d *D) SizeWords() int64 {
	w := int64(len(d.key))
	for _, row := range d.nbr {
		w += int64(len(row))
	}
	for _, row := range d.inserted {
		w += int64(len(row)) + 1
	}
	w += int64(len(d.deletedE)) * 2
	w += int64(len(d.patchVerts))
	return w
}

// NumPatches returns how many updates have been patched in since Build.
func (d *D) NumPatches() int { return d.numPatches }

// ResetPatches discards all accumulated patches, returning D to its
// as-built state. The fault-tolerant algorithm calls this between update
// batches (Theorem 14 reuses the original structure for every batch); the
// maps are cleared and reused, as in Rebuild, so per-batch resets do not
// reallocate.
func (d *D) ResetPatches() {
	clear(d.inserted)
	clear(d.deletedE)
	clear(d.patchVerts)
	d.numPatches = 0
}

// IsPatchVertex reports whether v was inserted after Build (it has no
// base-tree numbering).
func (d *D) IsPatchVertex(v int) bool {
	_, ok := d.patchVerts[v]
	return ok
}

// PatchInsertEdge records edge (u,v) inserted after Build.
func (d *D) PatchInsertEdge(u, v int) {
	d.inserted[u] = append(d.inserted[u], v)
	d.inserted[v] = append(d.inserted[v], u)
	d.numPatches++
}

// PatchDeleteEdge records the deletion of edge (u,v).
func (d *D) PatchDeleteEdge(u, v int) {
	if d.removeInserted(u, v) {
		d.removeInserted(v, u)
	} else {
		d.deletedE[graph.Edge{U: u, V: v}.Canon()] = struct{}{}
	}
	d.numPatches++
}

// PatchInsertVertex records a vertex inserted after Build, with its edges.
func (d *D) PatchInsertVertex(v int, neighbors []int) {
	d.patchVerts[v] = struct{}{}
	d.inserted[v] = append([]int(nil), neighbors...)
	for _, w := range neighbors {
		d.inserted[w] = append(d.inserted[w], v)
	}
	d.numPatches++
}

// PatchDeleteVertex records the deletion of v along with all its incident
// edges. neighbors must be v's neighbors at deletion time. The vertex's
// patch state is fully retired: v stops being a patch vertex, so a later
// insertion reusing the slot starts clean instead of inheriting it.
func (d *D) PatchDeleteVertex(v int, neighbors []int) {
	for _, w := range neighbors {
		if d.removeInserted(v, w) {
			d.removeInserted(w, v)
		} else {
			d.deletedE[graph.Edge{U: v, V: w}.Canon()] = struct{}{}
		}
	}
	delete(d.patchVerts, v)
	d.numPatches++
}

// removeInserted removes v from u's inserted-edge row, deleting the row's
// map entry when it empties so no stale empty rows linger (queries treat a
// non-empty inserted map as "has patches").
func (d *D) removeInserted(u, v int) bool {
	row := d.inserted[u]
	for i, w := range row {
		if w == v {
			if len(row) == 1 {
				delete(d.inserted, u)
			} else {
				row[i] = row[len(row)-1]
				d.inserted[u] = row[:len(row)-1]
			}
			return true
		}
	}
	return false
}

func (d *D) edgeDeleted(u, v int) bool {
	_, ok := d.deletedE[graph.Edge{U: u, V: v}.Canon()]
	return ok
}

func (d *D) hasBaseNumbering(v int) bool {
	return v < d.T.N() && d.T.Present(v) && !d.IsPatchVertex(v)
}

// Hit is a query result: graph edge (U, Z) with Z at index ZPos on the
// queried walk.
type Hit struct {
	U, Z, ZPos int
}

func (h Hit) String() string { return fmt.Sprintf("(%d->%d@%d)", h.U, h.Z, h.ZPos) }
