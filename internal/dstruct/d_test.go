package dstruct

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/pram"
)

// naiveEdgeToWalk is the brute-force reference: scan every (source, walk)
// pair against the current graph.
func naiveEdgeToWalk(g *graph.Graph, sources, walk []int, fromEnd bool) (Hit, bool) {
	pos := map[int]int{}
	for i, v := range walk {
		pos[v] = i
	}
	best := Hit{ZPos: -1}
	have := false
	for _, u := range sources {
		for _, z := range g.SortedNeighbors(u) {
			p, on := pos[z]
			if !on {
				continue
			}
			h := Hit{U: u, Z: z, ZPos: p}
			if !have {
				best, have = h, true
				continue
			}
			if h.ZPos != best.ZPos {
				if (fromEnd && h.ZPos > best.ZPos) || (!fromEnd && h.ZPos < best.ZPos) {
					best = h
				}
			} else if h.U < best.U {
				best = h
			}
		}
	}
	return best, have
}

// randomWalkInTree returns a tree path of t as an explicit vertex sequence:
// a descendant-to-ancestor walk from a random vertex.
func randomWalkInTree(g *graph.Graph, rng *rand.Rand) ([]int, map[int]bool) {
	t := baseline.StaticDFS(g)
	n := g.NumVertexSlots()
	v := rng.Intn(n)
	for !g.IsVertex(v) {
		v = rng.Intn(n)
	}
	var walk []int
	onWalk := map[int]bool{}
	for x := v; x != t.Root; x = t.Parent[x] {
		walk = append(walk, x)
		onWalk[x] = true
		if rng.Float64() < 0.2 {
			break
		}
	}
	return walk, onWalk
}

func TestEdgeToWalkMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		n := 10 + rng.Intn(40)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		d := Build(g, tr, nil)
		walk, onWalk := randomWalkInTree(g, rng)
		if len(walk) == 0 {
			continue
		}
		var sources []int
		for v := 0; v < n; v++ {
			if !onWalk[v] && rng.Float64() < 0.5 {
				sources = append(sources, v)
			}
		}
		for _, fromEnd := range []bool{true, false} {
			got, gok := d.EdgeToWalk(sources, walk, fromEnd, nil)
			want, wok := naiveEdgeToWalk(g, sources, walk, fromEnd)
			if gok != wok {
				t.Fatalf("trial %d fromEnd=%v: ok=%v want %v (walk=%v sources=%v)",
					trial, fromEnd, gok, wok, walk, sources)
			}
			if gok && got.ZPos != want.ZPos {
				t.Fatalf("trial %d fromEnd=%v: got %v want %v", trial, fromEnd, got, want)
			}
			if gok && !g.HasEdge(got.U, got.Z) {
				t.Fatalf("trial %d: returned non-edge %v", trial, got)
			}
		}
	}
}

func TestEdgeToWalkWithPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 150; trial++ {
		n := 10 + rng.Intn(30)
		g := graph.GnpConnected(n, 4.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		d := Build(g, tr, nil)
		// Apply up to 4 random patches to graph and D in lockstep.
		for k := 0; k < 1+rng.Intn(4); k++ {
			switch rng.Intn(4) {
			case 0:
				if e, ok := graph.RandomEdgeNotIn(g, rng); ok {
					if g.InsertEdge(e.U, e.V) == nil {
						d.PatchInsertEdge(e.U, e.V)
					}
				}
			case 1:
				if e, ok := graph.RandomExistingEdge(g, rng); ok {
					if g.DeleteEdge(e.U, e.V) == nil {
						d.PatchDeleteEdge(e.U, e.V)
					}
				}
			case 2:
				deg := 1 + rng.Intn(3)
				var nbrs []int
				seen := map[int]bool{}
				for len(nbrs) < deg {
					w := rng.Intn(g.NumVertexSlots())
					if g.IsVertex(w) && !seen[w] {
						seen[w] = true
						nbrs = append(nbrs, w)
					}
				}
				if v, err := g.InsertVertex(nbrs); err == nil {
					d.PatchInsertVertex(v, nbrs)
				}
			case 3:
				v := rng.Intn(g.NumVertexSlots())
				if g.IsVertex(v) && g.NumVertices() > 3 {
					nbrs := g.SortedNeighbors(v)
					if g.DeleteVertex(v) == nil {
						d.PatchDeleteVertex(v, nbrs)
					}
				}
			}
		}
		// Walks come from a fresh DFS tree of the *updated* graph, so runs
		// exercise the fragment decomposition (tree edges of the new tree
		// need not be monotone in the base tree).
		walk, onWalk := randomWalkInTree(g, rng)
		if len(walk) == 0 {
			continue
		}
		var sources []int
		for v := 0; v < g.NumVertexSlots(); v++ {
			if g.IsVertex(v) && !onWalk[v] && rng.Float64() < 0.5 {
				sources = append(sources, v)
			}
		}
		for _, fromEnd := range []bool{true, false} {
			got, gok := d.EdgeToWalk(sources, walk, fromEnd, nil)
			want, wok := naiveEdgeToWalk(g, sources, walk, fromEnd)
			if gok != wok || (gok && got.ZPos != want.ZPos) {
				t.Fatalf("trial %d fromEnd=%v: got %v/%v want %v/%v",
					trial, fromEnd, got, gok, want, wok)
			}
			if gok && !g.HasEdge(got.U, got.Z) {
				t.Fatalf("trial %d: returned stale edge %v", trial, got)
			}
		}
	}
}

func TestEdgeToWalkBySource(t *testing.T) {
	// Path graph 0-1-2-3-4 with extra edge (0,3): walk = [3,2], sources in
	// order [4, 0]: source 4 has edge to 3 -> picked first.
	g := graph.Path(5)
	if err := g.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)
	h, ok := d.EdgeToWalkBySource([]int{4, 0}, []int{3, 2}, true, nil)
	if !ok || h.U != 4 || h.Z != 3 {
		t.Fatalf("hit=%v ok=%v, want U=4 Z=3", h, ok)
	}
	// Source 0 first: its hit (0,3) wins even though 4 also connects.
	h, ok = d.EdgeToWalkBySource([]int{0, 4}, []int{3, 2}, true, nil)
	if !ok || h.U != 0 {
		t.Fatalf("hit=%v ok=%v, want U=0", h, ok)
	}
	// Source with no edge to the walk is skipped.
	if _, ok = d.EdgeToWalkBySource([]int{4}, []int{1}, true, nil); ok {
		t.Fatal("source 4 has no edge to vertex 1")
	}
}

func TestSplitRunCountFullyDynamic(t *testing.T) {
	// A walk that is a monotone base-tree path must be a single run.
	g := graph.Path(8)
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)
	walk := []int{5, 4, 3, 2}
	if c := d.SplitRunCount(walk); c != 1 {
		t.Fatalf("monotone walk split into %d runs, want 1", c)
	}
	// A bent path (down then up through an LCA) is two runs.
	g2 := graph.MustFromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 3, V: 4}})
	tr2 := baseline.StaticDFS(g2)
	d2 := Build(g2, tr2, nil)
	bent := []int{2, 1, 3, 4}
	if c := d2.SplitRunCount(bent); c != 2 {
		t.Fatalf("bent walk split into %d runs, want 2", c)
	}
}

func TestPatchVertexOnWalk(t *testing.T) {
	// Inserted vertex appears on a walk as a singleton run reachable only
	// through patch adjacency.
	g := graph.Path(4)
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)
	v, err := g.InsertVertex([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	d.PatchInsertVertex(v, []int{1, 3})
	walk := []int{1, v} // tree edge (1,v) hop: run split at the patch vertex
	if c := d.SplitRunCount(walk); c != 2 {
		t.Fatalf("walk through patch vertex: %d runs, want 2", c)
	}
	h, ok := d.EdgeToWalk([]int{3}, walk, true, nil)
	if !ok || h.Z != v || h.U != 3 {
		t.Fatalf("hit=%v ok=%v, want (3->%d)", h, ok, v)
	}
}

func TestDeletedEdgeSkipped(t *testing.T) {
	// Star center 0; delete (0,2); query from 2 must not see 0.
	g := graph.Star(5)
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)
	if err := g.DeleteEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	d.PatchDeleteEdge(0, 2)
	if _, ok := d.EdgeToWalk([]int{2}, []int{0}, true, nil); ok {
		t.Fatal("deleted edge (0,2) still reported")
	}
	if _, ok := d.EdgeToWalk([]int{3}, []int{0}, true, nil); !ok {
		t.Fatal("surviving edge (0,3) not found")
	}
}

func TestInsertedThenDeletedEdge(t *testing.T) {
	g := graph.Path(4)
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)
	d.PatchInsertEdge(0, 3)
	if h, ok := d.EdgeToWalk([]int{3}, []int{0}, true, nil); !ok || h.Z != 0 {
		t.Fatalf("inserted edge not visible: %v %v", h, ok)
	}
	d.PatchDeleteEdge(0, 3)
	if _, ok := d.EdgeToWalk([]int{3}, []int{0}, true, nil); ok {
		t.Fatal("edge visible after insert+delete")
	}
	if d.NumPatches() != 2 {
		t.Fatalf("NumPatches=%d want 2", d.NumPatches())
	}
}

func TestBuildAccountingAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := graph.GnpConnected(100, 0.1, rng)
	tr := baseline.StaticDFS(g)
	mach := pram.NewMachine(2 * g.NumEdges())
	d := Build(g, tr, mach)
	if mach.Depth() == 0 {
		t.Fatal("Build charged no depth")
	}
	// O(m+n) size: adjacency copies = 2m words, order-key labels = one word
	// per tree slot.
	if w := d.SizeWords(); w != int64(2*g.NumEdges()+tr.N()) {
		t.Fatalf("SizeWords=%d want %d", w, 2*g.NumEdges()+tr.N())
	}
}
