// Package dstruct implements the paper's data structure D (Section 5.2,
// Theorems 8 and 9): for each vertex v, the neighbor list N(v) sorted by
// position in a post-order of the base DFS tree T. Because T is a DFS tree,
// every edge of G is a back edge, so the vertices of N(v) that are ancestors
// of v appear sorted by their position on the root-to-v path — an edge from
// v to any ancestor-descendant query path of T reduces to one binary search.
//
// Rows are ordered by D's own relocatable order keys (a copy of T's
// post-order labels held in the key array), never by live tree lookups.
// Keeping the labels in D is what lets the structure follow a tree that
// changes underneath it, in either of two maintenance regimes:
//
//   - Incremental (fully dynamic mode, Theorem 13): after each update the
//     maintainer calls Update with the engine's moved-vertex set. Only
//     vertices inside moved subtrees change relative post-order (children
//     are ordered by ID on both sides of the update), so Update removes the
//     moved and deleted entries by binary search under the previous labels,
//     refreshes the keys from the new tree in one O(n) pass, and re-inserts
//     the moved and patched entries under the new labels — O(Σ deg(moved) ·
//     log) row work instead of the O(m log m) re-sort of a ground-up
//     rebuild, with a churn-ratio fallback to Rebuild so the worst case
//     never regresses past the paper's m-processor rebuild. Between updates
//     D carries no patches and is structurally identical to a fresh
//     Build (CheckSynced audits exactly this).
//
//   - Pinned patches (fault-tolerant mode, Theorems 9 and 14): D stays
//     frozen on the base tree and numbering while edge/vertex insertions
//     and deletions accumulate as small patches consulted during every
//     search (Theorem 9's O(log n + k) search). A D built once keeps
//     answering for the whole update batch; ResetPatches returns it to the
//     as-built state between batches without reallocating.
//
// The fully dynamic maintainer also uses the patch machinery transiently:
// each in-flight update is patch-recorded first, so the rerooting engine
// queries the updated graph against the old tree (Theorem 9's guarantee),
// and Update then folds those same patches into the base rows.
//
// Concurrency: Build, Rebuild, Update, and the Patch* methods mutate D and
// require exclusive access. The EdgeToWalk query family is read-only —
// search-effort counters go to a caller-supplied per-call *Stats — so any
// number of goroutines may query one D concurrently between mutations.
//
// Execution vs accounting: D runs the paper's parallelism for real. Build
// sorts the per-vertex neighbor rows across the machine's worker pool, and
// the EdgeToWalk family shards large source batches over the same pool
// (see query.go). The machine's recorded depth/work stay purely analytic:
// Build charges Theorem 8's preprocessing cost in one step, query batches
// are charged by their callers as single O(log n)-depth steps (Theorems 6
// and 8), and the execution layer itself charges nothing — so host
// parallelism changes wall-clock time but never the model costs.
package dstruct
