package dstruct

// Incremental maintenance of D under the fully dynamic maintainer.
//
// After a reroot only the vertices inside the moved subtrees change
// *relative* post-order: the tree builder orders every vertex's children by
// ID, so two vertices whose root paths are untouched by the update keep the
// same LCA, the same child-toward vertices at it, and hence the same
// relative position in the new numbering. A neighbor row therefore stays
// sorted except where it names a moved vertex, and refreshing D reduces to
// repositioning exactly those entries — O(Σ deg(moved) · log) row work plus
// one O(n) relabel pass — instead of re-sorting every row (the O(m log m)
// term of a ground-up Rebuild).
//
// The order keys make this safe: rows are sorted by D's own key array, a
// lagging copy of the tree's post-order labels. Update removes moved and
// deleted entries by binary search under the *previous* labels (valid even
// when the owner has already renumbered the tree in place), bulk-refreshes
// the keys from the new numbering, then re-inserts the moved and patched
// entries under the new labels.

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/tree"
)

// Maintenance identifies which path serviced the most recent maintenance
// operation (Update or Rebuild).
type Maintenance int

const (
	// MaintenanceNone: no maintenance since Build.
	MaintenanceNone Maintenance = iota
	// MaintenanceIncremental: Update repositioned only moved/patched entries.
	MaintenanceIncremental
	// MaintenanceRebuild: a ground-up Rebuild (direct call or churn fallback).
	MaintenanceRebuild
)

func (m Maintenance) String() string {
	switch m {
	case MaintenanceIncremental:
		return "incremental"
	case MaintenanceRebuild:
		return "rebuild"
	}
	return "none"
}

// UpdateDelta describes how one applied update changed the DFS tree, for
// Update's incremental maintenance.
type UpdateDelta struct {
	// Moved lists the vertices whose root path changed: the old-tree vertex
	// sets of every rerooted or re-hung subtree, plus newly attached
	// vertices (reroot.Engine.Moved reports exactly this set). Duplicates
	// are harmless. Deleted vertices must not appear.
	Moved []int
	// SameTree declares that the tree object and its numbering are exactly
	// as they were when D was last maintained (a back-edge insert or delete):
	// Update then skips the relabel pass and the LCA rebuild and only
	// absorbs the patch set.
	SameTree bool
}

// churnFallbackDen tunes Update's fallback: when the estimated incremental
// row work (moved degrees plus patch entries) exceeds (2m+n)/churnFallbackDen
// — a constant fraction of what a ground-up Rebuild touches — Update rebuilds
// instead, so the worst case never regresses past the paper's m-processor
// rebuild.
const churnFallbackDen = 2

// Update refreshes D to answer for graph g and tree t after one update whose
// graph delta was recorded through the Patch* methods. It absorbs the patch
// set into the base rows, repositions the entries naming moved vertices, and
// relabels the order keys from t's numbering, leaving D exactly as a fresh
// Build(g, t) would — with no accumulated patches — at a cost proportional
// to the moved set rather than to m. High-churn updates fall back to
// Rebuild. It reports whether the incremental path was taken.
//
// t may be the same object D currently points at, even renumbered in place
// (the ReuseTree maintainers): the previous labels live in D's own key
// array, not the tree.
func (d *D) Update(g graph.Adjacency, t *tree.Tree, delta UpdateDelta) bool {
	cost := 2 * len(d.deletedE)
	for _, row := range d.inserted {
		cost += len(row)
	}
	for _, w := range delta.Moved {
		cost += g.Degree(w) + 1
	}
	if cost > (2*g.NumEdges()+t.N())/churnFallbackDen {
		d.Rebuild(g, t, d.mach)
		return false
	}

	// Phase 1 — removals under the previous labels. Rows are still sorted by
	// the old keys, so each removal is one binary search; entries that were
	// never in the base rows (edges inserted this update) miss benignly.
	var scratch []int
	for _, w := range delta.Moved {
		if d.IsPatchVertex(w) || w >= len(d.key) || d.key[w] < 0 {
			continue // attached this update: not in any base row yet
		}
		scratch = g.Neighbors(w, scratch)
		for _, u := range scratch {
			d.removeEntry(u, w)
		}
	}
	for e := range d.deletedE {
		d.removeEntry(e.U, e.V)
		d.removeEntry(e.V, e.U)
	}

	// Phase 2 — relabel. Unmoved vertices keep their relative order, so
	// after the removals every row is sorted under the new labels too.
	d.T = t
	if !delta.SameTree {
		n := t.N()
		d.key = t.PostInto(d.key)
		if cap(d.nbr) >= n {
			grown := d.nbr[:n]
			for v := len(d.nbr); v < n; v++ {
				grown[v] = grown[v][:0]
			}
			d.nbr = grown
		} else {
			old := d.nbr
			d.nbr = make([][]int32, n)
			copy(d.nbr, old)
		}
		for v := range d.nbr {
			if d.key[v] < 0 && len(d.nbr[v]) > 0 {
				d.nbr[v] = d.nbr[v][:0] // v left the tree: retire its row
			}
		}
	}

	// Phase 3 — insertions under the new labels. Rows of vertices inserted
	// this update are built wholesale; then every patched-in edge and every
	// moved entry is placed by binary search (idempotent: an entry already
	// present is left alone, so the passes may overlap).
	for v := range d.patchVerts {
		scratch = g.Neighbors(v, scratch)
		row := d.nbr[v][:0]
		for _, w := range scratch {
			row = append(row, int32(w))
		}
		sort.Slice(row, func(i, j int) bool {
			return d.key[row[i]] < d.key[row[j]]
		})
		d.nbr[v] = row
	}
	for u, row := range d.inserted {
		for _, v := range row {
			d.insertEntry(u, v)
		}
	}
	for _, w := range delta.Moved {
		if w >= len(d.key) || d.key[w] < 0 {
			continue
		}
		scratch = g.Neighbors(w, scratch)
		for _, u := range scratch {
			d.insertEntry(u, w)
		}
	}

	clear(d.inserted)
	clear(d.deletedE)
	clear(d.patchVerts)
	d.numPatches = 0
	if !delta.SameTree {
		d.LCA.RebuildWith(t, d.mach)
	}
	if d.mach != nil {
		// Model cost of the incremental pass: the repositionings are
		// independent binary searches, one O(log n)-depth EREW step over
		// cost entries — the incremental analog of Rebuild's Theorem 8
		// charge, which this path replaces.
		lg := pram.Log2Ceil(t.Live() + 1)
		d.mach.Charge(lg, int64(cost)*lg)
	}
	d.lastMaint = MaintenanceIncremental
	d.incremental++
	return true
}

// removeEntry deletes w from u's neighbor row, located by binary search on
// w's current key. A miss (w never entered the row) is a no-op.
func (d *D) removeEntry(u, w int) {
	if u < 0 || u >= len(d.nbr) {
		return
	}
	row := d.nbr[u]
	i := lowerBound(row, d.key[w], d.key)
	if i < len(row) && int(row[i]) == w {
		copy(row[i:], row[i+1:])
		d.nbr[u] = row[:len(row)-1]
	}
}

// insertEntry places v into u's neighbor row at its key position. Already
// present entries are left alone, making insertion idempotent.
func (d *D) insertEntry(u, v int) {
	if u < 0 || u >= len(d.nbr) || d.key[v] < 0 || d.key[u] < 0 {
		return
	}
	row := d.nbr[u]
	i := lowerBound(row, d.key[v], d.key)
	if i < len(row) && int(row[i]) == v {
		return
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = int32(v)
	d.nbr[u] = row
}

// LastMaintenance reports which path serviced the most recent maintenance
// operation.
func (d *D) LastMaintenance() Maintenance { return d.lastMaint }

// MaintenanceCounts returns how many maintenance operations since Build took
// the incremental path and how many were ground-up rebuilds (direct Rebuild
// calls plus Update's churn fallbacks).
func (d *D) MaintenanceCounts() (incremental, rebuilds int64) {
	return d.incremental, d.rebuilds
}

// CheckSynced verifies that D is exactly the structure Build(g, t) would
// produce: order keys equal to t's post-order labels, every neighbor row
// equal to the vertex's adjacency sorted by key, retired rows empty, no
// accumulated patches, and the embedded LCA index on t. The incremental
// path's differential tests call it after every update; it is O(m + n).
func (d *D) CheckSynced(g graph.Adjacency, t *tree.Tree) error {
	if d.T != t {
		return fmt.Errorf("dstruct: D tree is not the maintained tree")
	}
	if d.LCA.Tree() != t {
		return fmt.Errorf("dstruct: embedded LCA index on a stale tree")
	}
	if d.numPatches != 0 || len(d.inserted) != 0 || len(d.deletedE) != 0 || len(d.patchVerts) != 0 {
		return fmt.Errorf("dstruct: unabsorbed patches (%d ops, %d inserted rows, %d deleted edges, %d patch vertices)",
			d.numPatches, len(d.inserted), len(d.deletedE), len(d.patchVerts))
	}
	if len(d.key) != t.N() || len(d.nbr) != t.N() {
		return fmt.Errorf("dstruct: key/nbr sized %d/%d, tree has %d slots", len(d.key), len(d.nbr), t.N())
	}
	for v := 0; v < t.N(); v++ {
		if d.key[v] != t.Post(v) {
			return fmt.Errorf("dstruct: key[%d] = %d, post = %d", v, d.key[v], t.Post(v))
		}
	}
	slots := g.NumVertexSlots()
	var want []int
	for v := range d.nbr {
		if v >= slots || !g.IsVertex(v) {
			if len(d.nbr[v]) != 0 {
				return fmt.Errorf("dstruct: non-vertex %d has %d row entries", v, len(d.nbr[v]))
			}
			continue
		}
		want = g.Neighbors(v, want)
		sort.Slice(want, func(i, j int) bool { return d.key[want[i]] < d.key[want[j]] })
		if len(want) != len(d.nbr[v]) {
			return fmt.Errorf("dstruct: row %d has %d entries, graph degree %d", v, len(d.nbr[v]), len(want))
		}
		for i, w := range want {
			if int(d.nbr[v][i]) != w {
				return fmt.Errorf("dstruct: row %d entry %d is %d, want %d", v, i, d.nbr[v][i], w)
			}
		}
	}
	return nil
}
