package dstruct

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
)

// TestPatchDeleteVertexRetiresState pins the patch-state leak fix: deleting
// a patch vertex must remove it from the patch-vertex set and drop its
// emptied inserted-edge rows, so a later insertion reusing the slot starts
// clean and the patch maps do not grow without bound.
func TestPatchDeleteVertexRetiresState(t *testing.T) {
	g := graph.Path(6)
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)
	base := d.SizeWords()

	v := g.NumVertexSlots() // simulate the slot an insertion would take
	d.PatchInsertVertex(v, []int{1, 3})
	if !d.IsPatchVertex(v) {
		t.Fatal("inserted vertex not a patch vertex")
	}
	d.PatchDeleteVertex(v, []int{1, 3})
	if d.IsPatchVertex(v) {
		t.Fatal("deleted vertex still reported as a patch vertex")
	}
	if len(d.inserted) != 0 {
		t.Fatalf("%d inserted rows linger after the symmetric insert+delete", len(d.inserted))
	}
	if len(d.patchVerts) != 0 {
		t.Fatalf("%d patch vertices linger", len(d.patchVerts))
	}
	if got := d.SizeWords(); got != base {
		t.Fatalf("SizeWords=%d after insert+delete, want the as-built %d", got, base)
	}
	// A fresh insertion reusing the slot starts from clean state.
	d.PatchInsertVertex(v, []int{0})
	if got := len(d.inserted[v]); got != 1 {
		t.Fatalf("reused slot has %d inserted entries, want 1", got)
	}
}

// TestPatchDeleteEdgeDropsEmptiedRow checks the same hygiene on the plain
// edge path: deleting a previously patched-in edge must not leave behind an
// empty inserted row (queries treat a non-empty inserted map as "patched").
func TestPatchDeleteEdgeDropsEmptiedRow(t *testing.T) {
	g := graph.Path(6)
	d := Build(g, baseline.StaticDFS(g), nil)
	d.PatchInsertEdge(0, 3)
	d.PatchDeleteEdge(0, 3)
	if len(d.inserted) != 0 {
		t.Fatalf("%d inserted rows linger after insert+delete of one edge", len(d.inserted))
	}
}

// TestResetPatchesReusesMaps pins the allocation fix: ResetPatches clears
// and reuses the three patch maps (as Rebuild does) instead of reallocating
// them per batch.
func TestResetPatchesReusesMaps(t *testing.T) {
	g := graph.Path(6)
	d := Build(g, baseline.StaticDFS(g), nil)
	d.PatchInsertEdge(0, 2)
	d.PatchDeleteEdge(1, 2)
	d.PatchInsertVertex(g.NumVertexSlots(), []int{4})
	ins, del, pv := d.inserted, d.deletedE, d.patchVerts
	d.ResetPatches()
	if d.NumPatches() != 0 || len(d.inserted) != 0 || len(d.deletedE) != 0 || len(d.patchVerts) != 0 {
		t.Fatal("ResetPatches left patch state behind")
	}
	// Same map headers: a new patch lands in the original references.
	d.PatchInsertEdge(0, 3)
	d.PatchDeleteEdge(3, 4)
	d.PatchInsertVertex(g.NumVertexSlots(), []int{5})
	if len(ins) == 0 || len(del) == 0 || len(pv) == 0 {
		t.Fatal("ResetPatches reallocated the patch maps instead of reusing them")
	}
}

// TestUpdateSameTreeAbsorbsPatches unit-tests Update's back-edge fast path:
// with the tree untouched, Update only folds the patch set into the base
// rows — and leaves D exactly as a fresh Build over the new graph would be.
func TestUpdateSameTreeAbsorbsPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.GnpConnected(40, 0.1, rng)
	tr := baseline.StaticDFS(g)
	d := Build(g, tr, nil)

	// A back-edge insert and a back-edge delete (tree-structure neutral for
	// D's purposes: Update trusts the caller's SameTree declaration).
	ins, ok := graph.RandomEdgeNotIn(g, rng)
	if !ok {
		t.Fatal("no insertable edge")
	}
	if err := g.InsertEdge(ins.U, ins.V); err != nil {
		t.Fatal(err)
	}
	d.PatchInsertEdge(ins.U, ins.V)
	del, ok := graph.RandomExistingEdge(g, rng)
	if !ok {
		t.Fatal("no deletable edge")
	}
	if err := g.DeleteEdge(del.U, del.V); err != nil {
		t.Fatal(err)
	}
	d.PatchDeleteEdge(del.U, del.V)

	if !d.Update(g, tr, UpdateDelta{SameTree: true}) {
		t.Fatal("two-patch update fell back to a rebuild")
	}
	if got := d.LastMaintenance(); got != MaintenanceIncremental {
		t.Fatalf("LastMaintenance = %v, want incremental", got)
	}
	if err := d.CheckSynced(g, tr); err != nil {
		t.Fatal(err)
	}
}
