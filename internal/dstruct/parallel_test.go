package dstruct

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/pram"
)

// Differential tests: the worker-pool execution of the EdgeToWalk family
// must return byte-identical Hits — including (ZPos, smallest-U) tie-breaks
// — to the serial path. Machines are built with an explicit worker count so
// the sharded code paths run even on single-core hosts, and `go test -race`
// checks the shard interleavings.

// buildPair returns two Ds over the same (g, t): one serial (nil machine)
// and one whose queries and build run on a forced 8-worker pool.
func buildPair(g *graph.Graph, rng *rand.Rand) (serial, parallel *D, _ *graph.Graph) {
	tr := baseline.StaticDFS(g)
	serial = Build(g, tr, nil)
	parallel = Build(g, tr, pram.NewMachineWithWorkers(g.NumVertices(), 8))
	return serial, parallel, g
}

// applyRandomPatches mutates g and records the same patches on every d.
func applyRandomPatches(g *graph.Graph, rng *rand.Rand, ds ...*D) {
	for k := 0; k < 6; k++ {
		switch rng.Intn(4) {
		case 0:
			if e, ok := graph.RandomEdgeNotIn(g, rng); ok {
				if g.InsertEdge(e.U, e.V) == nil {
					for _, d := range ds {
						d.PatchInsertEdge(e.U, e.V)
					}
				}
			}
		case 1:
			if e, ok := graph.RandomExistingEdge(g, rng); ok {
				if g.DeleteEdge(e.U, e.V) == nil {
					for _, d := range ds {
						d.PatchDeleteEdge(e.U, e.V)
					}
				}
			}
		case 2:
			deg := 1 + rng.Intn(4)
			var nbrs []int
			seen := map[int]bool{}
			for len(nbrs) < deg {
				w := rng.Intn(g.NumVertexSlots())
				if g.IsVertex(w) && !seen[w] {
					seen[w] = true
					nbrs = append(nbrs, w)
				}
			}
			if v, err := g.InsertVertex(nbrs); err == nil {
				for _, d := range ds {
					d.PatchInsertVertex(v, nbrs)
				}
			}
		case 3:
			v := rng.Intn(g.NumVertexSlots())
			if g.IsVertex(v) && g.NumVertices() > 3 {
				nbrs := g.SortedNeighbors(v)
				if g.DeleteVertex(v) == nil {
					for _, d := range ds {
						d.PatchDeleteVertex(v, nbrs)
					}
				}
			}
		}
	}
}

// bigSourceSet returns every live vertex off the walk — well above
// parallelSourceCutoff for the graph sizes used here, so the sharded path
// actually runs.
func bigSourceSet(g *graph.Graph, onWalk map[int]bool) []int {
	var sources []int
	for v := 0; v < g.NumVertexSlots(); v++ {
		if g.IsVertex(v) && !onWalk[v] {
			sources = append(sources, v)
		}
	}
	return sources
}

func TestParallelEdgeToWalkMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 12; trial++ {
		n := 900 + rng.Intn(600)
		g := graph.GnpConnected(n, 5.0/float64(n), rng)
		serial, parallel, _ := buildPair(g, rng)
		if trial%2 == 1 {
			applyRandomPatches(g, rng, serial, parallel)
		}
		for q := 0; q < 8; q++ {
			walk, onWalk := randomWalkInTree(g, rng)
			if len(walk) == 0 {
				continue
			}
			sources := bigSourceSet(g, onWalk)
			if len(sources) < parallelSourceCutoff {
				t.Fatalf("trial %d: %d sources does not exercise the parallel path", trial, len(sources))
			}
			for _, fromEnd := range []bool{true, false} {
				hs, oks := serial.EdgeToWalk(sources, walk, fromEnd, nil)
				hp, okp := parallel.EdgeToWalk(sources, walk, fromEnd, nil)
				if oks != okp || hs != hp {
					t.Fatalf("trial %d fromEnd=%v: serial %v/%v parallel %v/%v",
						trial, fromEnd, hs, oks, hp, okp)
				}
				if oks && !g.HasEdge(hs.U, hs.Z) {
					t.Fatalf("trial %d: hit %v is not an edge", trial, hs)
				}
			}
		}
	}
}

func TestParallelEdgeToWalkBySourceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 12; trial++ {
		n := 900 + rng.Intn(600)
		g := graph.GnpConnected(n, 5.0/float64(n), rng)
		serial, parallel, _ := buildPair(g, rng)
		if trial%2 == 1 {
			applyRandomPatches(g, rng, serial, parallel)
		}
		for q := 0; q < 8; q++ {
			walk, onWalk := randomWalkInTree(g, rng)
			if len(walk) == 0 {
				continue
			}
			sources := bigSourceSet(g, onWalk)
			// Shuffle so the "first source in order" pick is nontrivial.
			rng.Shuffle(len(sources), func(i, j int) {
				sources[i], sources[j] = sources[j], sources[i]
			})
			for _, fromEnd := range []bool{true, false} {
				hs, oks := serial.EdgeToWalkBySource(sources, walk, fromEnd, nil)
				hp, okp := parallel.EdgeToWalkBySource(sources, walk, fromEnd, nil)
				if oks != okp || hs != hp {
					t.Fatalf("trial %d fromEnd=%v: serial %v/%v parallel %v/%v",
						trial, fromEnd, hs, oks, hp, okp)
				}
			}
		}
	}
}

func TestEdgeToWalkBatchMatchesSequentialCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 10; trial++ {
		n := 600 + rng.Intn(400)
		g := graph.GnpConnected(n, 5.0/float64(n), rng)
		serial, parallel, _ := buildPair(g, rng)
		if trial%2 == 1 {
			applyRandomPatches(g, rng, serial, parallel)
		}
		var qs []WalkQuery
		for q := 0; q < 12; q++ {
			walk, onWalk := randomWalkInTree(g, rng)
			if len(walk) == 0 {
				continue
			}
			sources := bigSourceSet(g, onWalk)
			if q%3 == 0 {
				sources = sources[:rng.Intn(len(sources)+1)] // small and empty sets too
			}
			qs = append(qs, WalkQuery{
				Sources:  sources,
				Walk:     walk,
				FromEnd:  rng.Intn(2) == 0,
				BySource: q%4 == 3,
			})
		}
		got := parallel.EdgeToWalkBatch(qs, nil)
		if len(got) != len(qs) {
			t.Fatalf("trial %d: %d answers for %d queries", trial, len(got), len(qs))
		}
		for i, q := range qs {
			var want WalkAnswer
			if q.BySource {
				want.Hit, want.OK = serial.EdgeToWalkBySource(q.Sources, q.Walk, q.FromEnd, nil)
			} else {
				want.Hit, want.OK = serial.EdgeToWalk(q.Sources, q.Walk, q.FromEnd, nil)
			}
			if got[i] != want {
				t.Fatalf("trial %d query %d (bySource=%v): batch %v want %v",
					trial, i, q.BySource, got[i], want)
			}
		}
	}
}

func TestRebuildMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	mach := pram.NewMachineWithWorkers(4096, 8)
	d := &D{}
	for trial := 0; trial < 10; trial++ {
		n := 300 + rng.Intn(500)
		g := graph.GnpConnected(n, 4.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		if trial == 0 {
			d = Build(g, tr, mach)
		} else {
			// Dirty the structure with patches (their graph consistency is
			// irrelevant — Rebuild discards them), then rebuild in place
			// over a completely different graph, as installTree does per
			// update.
			d.PatchInsertEdge(0, 1)
			d.PatchInsertVertex(100000+trial, []int{0, 2})
			d.PatchDeleteEdge(1, 2)
			d.Rebuild(g, tr, mach)
		}
		if d.NumPatches() != 0 {
			t.Fatalf("trial %d: rebuild left %d patches", trial, d.NumPatches())
		}
		fresh := Build(g, tr, nil)
		for q := 0; q < 6; q++ {
			walk, onWalk := randomWalkInTree(g, rng)
			if len(walk) == 0 {
				continue
			}
			sources := bigSourceSet(g, onWalk)
			for _, fromEnd := range []bool{true, false} {
				hr, okr := d.EdgeToWalk(sources, walk, fromEnd, nil)
				hf, okf := fresh.EdgeToWalk(sources, walk, fromEnd, nil)
				if okr != okf || hr != hf {
					t.Fatalf("trial %d fromEnd=%v: rebuilt %v/%v fresh %v/%v",
						trial, fromEnd, hr, okr, hf, okf)
				}
			}
		}
	}
}
