package dstruct

// Query evaluation. A "walk" is the explicit vertex sequence of a path that
// was just attached to the partially built DFS tree T*: walk[0] is the
// attachment end (shallowest in T*), walk[len-1] the deepest. The paper's
// "lowest edge on the path" is the hit with maximum ZPos; "highest" is
// minimum ZPos.
//
// Internally the walk is split into maximal runs that are monotone
// ancestor-descendant paths of the *base* tree T (Section 5.2's reduction of
// queries on T*_i paths to queries on T paths). In fully dynamic mode the
// engine's walks are already T-paths, giving O(1) runs; in fault tolerant
// mode a walk decomposes into the O(log^{2(i-1)} n) fragments of Theorem 9.

// run is a maximal T-monotone fragment of a walk.
type run struct {
	lo, hi int  // walk index range [lo, hi]
	desc   bool // true if walk[lo] is the T-ancestor (walk descends in T)
	patch  bool // singleton run at a patch vertex (no base numbering)
}

// splitRuns decomposes walk into runs. Exported for tests via SplitRunCount.
func (d *D) splitRuns(walk []int) []run {
	var runs []run
	i := 0
	for i < len(walk) {
		if !d.hasBaseNumbering(walk[i]) {
			runs = append(runs, run{lo: i, hi: i, patch: true})
			i++
			continue
		}
		j := i
		var desc, have bool
		for j+1 < len(walk) && d.hasBaseNumbering(walk[j+1]) {
			a, b := walk[j], walk[j+1]
			var stepDesc bool
			switch {
			case d.T.Parent[b] == a:
				stepDesc = true
			case d.T.Parent[a] == b:
				stepDesc = false
			default:
				goto done
			}
			if have && stepDesc != desc {
				goto done
			}
			desc, have = stepDesc, true
			j++
		}
	done:
		runs = append(runs, run{lo: i, hi: j, desc: desc})
		i = j + 1
	}
	return runs
}

// SplitRunCount returns the number of base-tree fragments the walk
// decomposes into (the paper's fragment count; 1 in fully dynamic mode).
func (d *D) SplitRunCount(walk []int) int { return len(d.splitRuns(walk)) }

func (r run) top(walk []int) int {
	if r.desc {
		return walk[r.lo]
	}
	return walk[r.hi]
}

func (r run) bot(walk []int) int {
	if r.desc {
		return walk[r.hi]
	}
	return walk[r.lo]
}

// zPos maps a tree vertex z known to lie on the run back to its walk index.
func (d *D) zPos(r run, walk []int, z int) int {
	top := r.top(walk)
	depth := d.T.Level(z) - d.T.Level(top)
	if r.desc {
		return r.lo + depth
	}
	return r.hi - depth
}

// EdgeToWalk finds a graph edge from the source vertex set to the walk.
// If fromEnd, it returns the hit with maximum ZPos (the paper's lowest
// edge); otherwise minimum ZPos (highest edge). Sources must be disjoint
// from the walk. Ties between sources resolve to the smallest U.
func (d *D) EdgeToWalk(sources []int, walk []int, fromEnd bool) (Hit, bool) {
	if len(sources) == 0 || len(walk) == 0 {
		return Hit{}, false
	}
	runs := d.splitRuns(walk)
	d.Stats.WalkQueries++
	d.Stats.RunsSplit += int64(len(runs))
	var pos map[int]int // lazy walk-position index for patch-edge hits
	posOf := func(z int) (int, bool) {
		if pos == nil {
			pos = make(map[int]int, len(walk))
			for i, v := range walk {
				pos[v] = i
			}
		}
		p, ok := pos[z]
		return p, ok
	}
	best := Hit{ZPos: -1}
	have := false
	better := func(a, b Hit) bool { // does a beat b
		if a.ZPos != b.ZPos {
			if fromEnd {
				return a.ZPos > b.ZPos
			}
			return a.ZPos < b.ZPos
		}
		return a.U < b.U
	}
	for _, u := range sources {
		if h, ok := d.bestFromVertex(u, runs, walk, fromEnd, posOf); ok {
			if !have || better(h, best) {
				best, have = h, true
			}
		}
	}
	return best, have
}

// EdgeToWalkBySource returns, for each source in order, whether it has any
// edge to the walk, stopping at the first source that does (used by the
// heavy-subtree traversal's "deepest hang point" selection, where the pick
// is by source priority rather than walk position). The returned hit uses
// the source's best walk position under fromEnd.
func (d *D) EdgeToWalkBySource(sources []int, walk []int, fromEnd bool) (Hit, bool) {
	if len(walk) == 0 {
		return Hit{}, false
	}
	runs := d.splitRuns(walk)
	d.Stats.WalkQueries++
	d.Stats.RunsSplit += int64(len(runs))
	var pos map[int]int
	posOf := func(z int) (int, bool) {
		if pos == nil {
			pos = make(map[int]int, len(walk))
			for i, v := range walk {
				pos[v] = i
			}
		}
		p, ok := pos[z]
		return p, ok
	}
	for _, u := range sources {
		if h, ok := d.bestFromVertex(u, runs, walk, fromEnd, posOf); ok {
			return h, true
		}
	}
	return Hit{}, false
}

// HasEdgeToWalk reports whether any source has an edge to the walk.
func (d *D) HasEdgeToWalk(sources []int, walk []int) bool {
	_, ok := d.EdgeToWalk(sources, walk, true)
	return ok
}

// bestFromVertex finds u's best hit across all runs plus patch edges.
func (d *D) bestFromVertex(u int, runs []run, walk []int, fromEnd bool,
	posOf func(int) (int, bool)) (Hit, bool) {

	best := Hit{ZPos: -1}
	have := false
	take := func(h Hit) {
		if !have || (fromEnd && h.ZPos > best.ZPos) || (!fromEnd && h.ZPos < best.ZPos) {
			best, have = h, true
		}
	}
	if d.hasBaseNumbering(u) {
		for _, r := range runs {
			if r.patch {
				continue
			}
			if z, ok := d.searchRun(u, r, walk, fromEnd); ok {
				take(Hit{U: u, Z: z, ZPos: d.zPos(r, walk, z)})
			}
		}
	}
	// Patch edges from u (inserted after Build): position via the walk map.
	for _, z := range d.inserted[u] {
		d.Stats.PatchScans++
		if p, ok := posOf(z); ok {
			take(Hit{U: u, Z: z, ZPos: p})
		}
	}
	return best, have
}

// searchRun finds u's extremal base-graph neighbor on the run, preferring
// the walk-end side when fromEnd. Returns the neighbor z.
func (d *D) searchRun(u int, r run, walk []int, fromEnd bool) (int, bool) {
	t := d.T
	top, bot := r.top(walk), r.bot(walk)
	// wantTreeHigh: do we want the hit nearest the run's tree-top?
	// fromEnd means "nearest walk[hi]"; for a descending run walk[hi] is the
	// tree-bottom, for an ascending run it is the tree-top.
	wantTreeHigh := fromEnd != r.desc

	switch {
	case t.IsAncestor(top, u):
		// Case A: u below the run's top; its neighbors on the run are
		// exactly its ancestors with post in [post(l), post(top)],
		// l = LCA(u, bot).
		d.Stats.Searches++
		l := d.LCA.LCA(u, bot)
		return d.scanRange(u, t.Post(l), t.Post(top), wantTreeHigh, nil)
	case t.IsAncestor(u, top):
		// Case B (multi-update mode only): u is an ancestor of the whole
		// run; candidates are descendants with post in [post(bot),
		// post(top)], filtered to the run's chain.
		d.Stats.Searches++
		d.Stats.CaseB++
		onRun := func(z int) bool {
			return t.IsAncestor(top, z) && t.IsAncestor(z, bot)
		}
		return d.scanRange(u, t.Post(bot), t.Post(top), wantTreeHigh, onRun)
	default:
		// Incomparable: a base-graph edge would be a cross edge of T —
		// impossible.
		return 0, false
	}
}

// scanRange searches nbr[u] within post-order range [lopost, hipost].
// Entries nearer the tree-top have larger post, so wantTreeHigh scans from
// the high end. filter (may be nil) restricts to run membership; deleted
// edges are skipped.
func (d *D) scanRange(u, lopost, hipost int, wantTreeHigh bool, filter func(int) bool) (int, bool) {
	row := d.nbr[u]
	t := d.T
	lo := lowerBound(row, lopost, t.Post) // first index with post >= lopost
	hi := upperBound(row, hipost, t.Post) // first index with post > hipost
	if wantTreeHigh {
		for i := hi - 1; i >= lo; i-- {
			d.Stats.ScanSteps++
			z := int(row[i])
			if (filter == nil || filter(z)) && !d.edgeDeleted(u, z) {
				return z, true
			}
		}
	} else {
		for i := lo; i < hi; i++ {
			d.Stats.ScanSteps++
			z := int(row[i])
			if (filter == nil || filter(z)) && !d.edgeDeleted(u, z) {
				return z, true
			}
		}
	}
	return 0, false
}

func lowerBound(row []int32, post int, postOf func(int) int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if postOf(int(row[mid])) < post {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBound(row []int32, post int, postOf func(int) int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if postOf(int(row[mid])) <= post {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
