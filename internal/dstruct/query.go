package dstruct

// Query evaluation. A "walk" is the explicit vertex sequence of a path that
// was just attached to the partially built DFS tree T*: walk[0] is the
// attachment end (shallowest in T*), walk[len-1] the deepest. The paper's
// "lowest edge on the path" is the hit with maximum ZPos; "highest" is
// minimum ZPos.
//
// Internally the walk is split into maximal runs that are monotone
// ancestor-descendant paths of the *base* tree T (Section 5.2's reduction of
// queries on T*_i paths to queries on T paths). In fully dynamic mode the
// engine's walks are already T-paths, giving O(1) runs; in fault tolerant
// mode a walk decomposes into the O(log^{2(i-1)} n) fragments of Theorem 9.
//
// Execution vs accounting: a batch of independent queries is *charged* by
// the caller as one O(log n)-depth EREW step over k total sources (Theorems
// 6 and 8) — this file never touches the machine's counters. What the
// machine provides here is its worker pool: large source sets are sharded
// across workers (each shard keeping a private best Hit and private Stats),
// then reduced under the same order — (extremal ZPos, then smallest U) —
// the serial scan uses, so results are bit-identical to serial evaluation.

// parallelSourceCutoff is the source-set size below which a query is
// evaluated serially; under it the goroutine fan-out costs more than the
// per-source binary searches it parallelizes.
const parallelSourceCutoff = 256

// run is a maximal T-monotone fragment of a walk.
type run struct {
	lo, hi int  // walk index range [lo, hi]
	desc   bool // true if walk[lo] is the T-ancestor (walk descends in T)
	patch  bool // singleton run at a patch vertex (no base numbering)
}

// splitRuns decomposes walk into runs. Exported for tests via SplitRunCount.
func (d *D) splitRuns(walk []int) []run {
	var runs []run
	i := 0
	for i < len(walk) {
		if !d.hasBaseNumbering(walk[i]) {
			runs = append(runs, run{lo: i, hi: i, patch: true})
			i++
			continue
		}
		j := i
		var desc, have bool
		for j+1 < len(walk) && d.hasBaseNumbering(walk[j+1]) {
			a, b := walk[j], walk[j+1]
			var stepDesc bool
			switch {
			case d.T.Parent[b] == a:
				stepDesc = true
			case d.T.Parent[a] == b:
				stepDesc = false
			default:
				goto done
			}
			if have && stepDesc != desc {
				goto done
			}
			desc, have = stepDesc, true
			j++
		}
	done:
		runs = append(runs, run{lo: i, hi: j, desc: desc})
		i = j + 1
	}
	return runs
}

// SplitRunCount returns the number of base-tree fragments the walk
// decomposes into (the paper's fragment count; 1 in fully dynamic mode).
func (d *D) SplitRunCount(walk []int) int { return len(d.splitRuns(walk)) }

func (r run) top(walk []int) int {
	if r.desc {
		return walk[r.lo]
	}
	return walk[r.hi]
}

func (r run) bot(walk []int) int {
	if r.desc {
		return walk[r.hi]
	}
	return walk[r.lo]
}

// zPos maps a tree vertex z known to lie on the run back to its walk index.
func (d *D) zPos(r run, walk []int, z int) int {
	top := r.top(walk)
	depth := d.T.Level(z) - d.T.Level(top)
	if r.desc {
		return r.lo + depth
	}
	return r.hi - depth
}

// walkEval is the per-query preprocessed view of a walk: its base-tree run
// decomposition, plus — on the sharded paths — a walk-position index
// precomputed once up front. Shards share the index read-only (building it
// lazily inside workers would race) and its O(|walk|) cost amortizes over
// the large source set that triggered sharding. Serial scans leave pos nil
// and build a goroutine-local index lazily, only when a patch edge is
// actually encountered, so unpatched queries pay nothing.
type walkEval struct {
	runs []run
	pos  map[int]int // shared read-only index; nil on the serial paths
}

// prepWalk decomposes the walk and counts the query against st.
func (d *D) prepWalk(walk []int, st *Stats) walkEval {
	runs := d.splitRuns(walk)
	st.WalkQueries++
	st.RunsSplit += int64(len(runs))
	return walkEval{runs: runs}
}

// ensureSharedPos precomputes the walk-position index for a sharded
// evaluation. Only inserted-edge patches consume walk positions, so a D
// without them never builds the index.
func (d *D) ensureSharedPos(ev *walkEval, walk []int) {
	if ev.pos == nil && len(d.inserted) > 0 {
		ev.pos = make(map[int]int, len(walk))
		for i, v := range walk {
			ev.pos[v] = i
		}
	}
}

// posLookup resolves walk positions for patch-edge hits: through the
// precomputed shared index when present, else through a private map built
// on first use.
type posLookup struct {
	walk   []int
	shared map[int]int
	local  map[int]int
}

func (p *posLookup) of(z int) (int, bool) {
	m := p.shared
	if m == nil {
		if p.local == nil {
			p.local = make(map[int]int, len(p.walk))
			for i, v := range p.walk {
				p.local[v] = i
			}
		}
		m = p.local
	}
	i, ok := m[z]
	return i, ok
}

// parallelOver reports whether a scan over k sources should use the worker
// pool.
func (d *D) parallelOver(k int) bool {
	return d.mach != nil && d.mach.Workers() > 1 && k >= parallelSourceCutoff
}

// better reports whether hit a beats hit b under the documented order:
// extremal ZPos first (max when fromEnd, min otherwise), smallest U on ties.
func better(a, b Hit, fromEnd bool) bool {
	if a.ZPos != b.ZPos {
		if fromEnd {
			return a.ZPos > b.ZPos
		}
		return a.ZPos < b.ZPos
	}
	return a.U < b.U
}

// EdgeToWalk finds a graph edge from the source vertex set to the walk.
// If fromEnd, it returns the hit with maximum ZPos (the paper's lowest
// edge); otherwise minimum ZPos (highest edge). Sources must be disjoint
// from the walk. Ties between sources resolve to the smallest U.
//
// st receives the call's search-effort counters; nil discards them. D is
// never mutated, so concurrent calls with distinct accumulators are safe.
func (d *D) EdgeToWalk(sources []int, walk []int, fromEnd bool, st *Stats) (Hit, bool) {
	if len(sources) == 0 || len(walk) == 0 {
		return Hit{}, false
	}
	if st == nil {
		st = new(Stats)
	}
	ev := d.prepWalk(walk, st)
	return d.edgeToWalk(sources, walk, fromEnd, ev, st)
}

func (d *D) edgeToWalk(sources, walk []int, fromEnd bool, ev walkEval, st *Stats) (Hit, bool) {
	if !d.parallelOver(len(sources)) {
		return d.edgeToWalkSerial(sources, walk, fromEnd, ev, st)
	}
	// Shard the source set over the worker pool: each shard reduces to its
	// private best, then the shards are reduced under the same order. The
	// order is total on the reachable hits (a walk's vertices are distinct,
	// so ZPos determines Z), hence the result is independent of the split.
	type shardBest struct {
		h  Hit
		ok bool
	}
	d.ensureSharedPos(&ev, walk)
	w := d.mach.Workers()
	bests := make([]shardBest, w)
	stats := make([]Stats, w)
	d.mach.ExecSharded(len(sources), func(s, lo, hi int) {
		h, ok := d.edgeToWalkSerial(sources[lo:hi], walk, fromEnd, ev, &stats[s])
		bests[s] = shardBest{h: h, ok: ok}
	})
	best := Hit{ZPos: -1}
	have := false
	for _, b := range bests {
		if b.ok && (!have || better(b.h, best, fromEnd)) {
			best, have = b.h, true
		}
	}
	for i := range stats {
		st.Add(stats[i])
	}
	return best, have
}

// edgeToWalkSerial is the one-goroutine scan over sources; st receives the
// search-effort counters (a private shard accumulator under parallelism).
func (d *D) edgeToWalkSerial(sources, walk []int, fromEnd bool, ev walkEval, st *Stats) (Hit, bool) {
	pl := posLookup{walk: walk, shared: ev.pos}
	best := Hit{ZPos: -1}
	have := false
	for _, u := range sources {
		if h, ok := d.bestFromVertex(u, ev.runs, walk, fromEnd, &pl, st); ok {
			if !have || better(h, best, fromEnd) {
				best, have = h, true
			}
		}
	}
	return best, have
}

// EdgeToWalkBySource returns, for each source in order, whether it has any
// edge to the walk, stopping at the first source that does (used by the
// heavy-subtree traversal's "deepest hang point" selection, where the pick
// is by source priority rather than walk position). The returned hit uses
// the source's best walk position under fromEnd. st is the per-call Stats
// accumulator (nil discards).
func (d *D) EdgeToWalkBySource(sources []int, walk []int, fromEnd bool, st *Stats) (Hit, bool) {
	if len(walk) == 0 {
		return Hit{}, false
	}
	if st == nil {
		st = new(Stats)
	}
	ev := d.prepWalk(walk, st)
	return d.edgeToWalkBySource(sources, walk, fromEnd, ev, st)
}

func (d *D) edgeToWalkBySource(sources, walk []int, fromEnd bool, ev walkEval, st *Stats) (Hit, bool) {
	if !d.parallelOver(len(sources)) {
		return d.bySourceSerial(sources, walk, fromEnd, ev, st)
	}
	// Per shard: the first source (lowest index) with a hit; reduce to the
	// lowest-index shard with one. Identical to the serial early-exit scan —
	// every source is evaluated independently — except that later sources
	// are also examined, so Stats records more search effort.
	type shardFirst struct {
		h  Hit
		ok bool
	}
	d.ensureSharedPos(&ev, walk)
	w := d.mach.Workers()
	firsts := make([]shardFirst, w)
	stats := make([]Stats, w)
	d.mach.ExecSharded(len(sources), func(s, lo, hi int) {
		h, ok := d.bySourceSerial(sources[lo:hi], walk, fromEnd, ev, &stats[s])
		firsts[s] = shardFirst{h: h, ok: ok}
	})
	for i := range stats {
		st.Add(stats[i])
	}
	for _, f := range firsts {
		if f.ok {
			return f.h, true
		}
	}
	return Hit{}, false
}

// bySourceSerial is the one-goroutine first-hit scan in source order, the
// BySource counterpart of edgeToWalkSerial.
func (d *D) bySourceSerial(sources, walk []int, fromEnd bool, ev walkEval, st *Stats) (Hit, bool) {
	pl := posLookup{walk: walk, shared: ev.pos}
	for _, u := range sources {
		if h, ok := d.bestFromVertex(u, ev.runs, walk, fromEnd, &pl, st); ok {
			return h, true
		}
	}
	return Hit{}, false
}

// HasEdgeToWalk reports whether any source has an edge to the walk. st is
// the per-call Stats accumulator (nil discards).
func (d *D) HasEdgeToWalk(sources []int, walk []int, st *Stats) bool {
	_, ok := d.EdgeToWalk(sources, walk, true, st)
	return ok
}

// WalkQuery is one query of a batch: the paper's rounds issue many
// independent (source set, walk) queries at once (Theorems 6 and 8).
// BySource selects EdgeToWalkBySource semantics instead of EdgeToWalk.
type WalkQuery struct {
	Sources  []int
	Walk     []int
	FromEnd  bool
	BySource bool
}

// WalkAnswer is the result of one WalkQuery.
type WalkAnswer struct {
	Hit Hit
	OK  bool
}

// EdgeToWalkBatch answers a batch of independent queries, equivalent to
// issuing them one by one in order. Batches with at least as many queries
// as workers are distributed across the worker pool (each query evaluated
// serially within its worker); smaller batches — where sharding by query
// would leave workers idle — run query-by-query, each parallelizing over
// its own source set. Callers account the batch's model cost analytically
// (one O(log n)-depth step); this method charges nothing. st is the
// per-call Stats accumulator (nil discards).
func (d *D) EdgeToWalkBatch(qs []WalkQuery, st *Stats) []WalkAnswer {
	out := make([]WalkAnswer, len(qs))
	if len(qs) == 0 {
		return out
	}
	if st == nil {
		st = new(Stats)
	}
	if d.mach == nil || d.mach.Workers() == 1 || len(qs) < d.mach.Workers() {
		for i, q := range qs {
			if q.BySource {
				out[i].Hit, out[i].OK = d.EdgeToWalkBySource(q.Sources, q.Walk, q.FromEnd, st)
			} else {
				out[i].Hit, out[i].OK = d.EdgeToWalk(q.Sources, q.Walk, q.FromEnd, st)
			}
		}
		return out
	}
	w := d.mach.Workers()
	stats := make([]Stats, w)
	d.mach.ExecSharded(len(qs), func(s, lo, hi int) {
		sst := &stats[s]
		for i := lo; i < hi; i++ {
			q := qs[i]
			if len(q.Walk) == 0 {
				continue
			}
			if q.BySource {
				ev := d.prepWalk(q.Walk, sst)
				out[i].Hit, out[i].OK = d.bySourceSerial(q.Sources, q.Walk, q.FromEnd, ev, sst)
				continue
			}
			if len(q.Sources) == 0 {
				continue
			}
			ev := d.prepWalk(q.Walk, sst)
			out[i].Hit, out[i].OK = d.edgeToWalkSerial(q.Sources, q.Walk, q.FromEnd, ev, sst)
		}
	})
	for i := range stats {
		st.Add(stats[i])
	}
	return out
}

// bestFromVertex finds u's best hit across all runs plus patch edges.
func (d *D) bestFromVertex(u int, runs []run, walk []int, fromEnd bool, pl *posLookup, st *Stats) (Hit, bool) {
	best := Hit{ZPos: -1}
	have := false
	take := func(h Hit) {
		if !have || (fromEnd && h.ZPos > best.ZPos) || (!fromEnd && h.ZPos < best.ZPos) {
			best, have = h, true
		}
	}
	if d.hasBaseNumbering(u) {
		for _, r := range runs {
			if r.patch {
				continue
			}
			if z, ok := d.searchRun(u, r, walk, fromEnd, st); ok {
				take(Hit{U: u, Z: z, ZPos: d.zPos(r, walk, z)})
			}
		}
	}
	// Patch edges from u (inserted after Build): position via the walk index.
	for _, z := range d.inserted[u] {
		st.PatchScans++
		if p, ok := pl.of(z); ok {
			take(Hit{U: u, Z: z, ZPos: p})
		}
	}
	return best, have
}

// searchRun finds u's extremal base-graph neighbor on the run, preferring
// the walk-end side when fromEnd. Returns the neighbor z.
func (d *D) searchRun(u int, r run, walk []int, fromEnd bool, st *Stats) (int, bool) {
	t := d.T
	top, bot := r.top(walk), r.bot(walk)
	// wantTreeHigh: do we want the hit nearest the run's tree-top?
	// fromEnd means "nearest walk[hi]"; for a descending run walk[hi] is the
	// tree-bottom, for an ascending run it is the tree-top.
	wantTreeHigh := fromEnd != r.desc

	switch {
	case t.IsAncestor(top, u):
		// Case A: u below the run's top; its neighbors on the run are
		// exactly its ancestors with key in [key(l), key(top)],
		// l = LCA(u, bot).
		st.Searches++
		l := d.LCA.LCA(u, bot)
		return d.scanRange(u, d.key[l], d.key[top], wantTreeHigh, nil, st)
	case t.IsAncestor(u, top):
		// Case B (multi-update mode only): u is an ancestor of the whole
		// run; candidates are descendants with key in [key(bot),
		// key(top)], filtered to the run's chain.
		st.Searches++
		st.CaseB++
		onRun := func(z int) bool {
			return t.IsAncestor(top, z) && t.IsAncestor(z, bot)
		}
		return d.scanRange(u, d.key[bot], d.key[top], wantTreeHigh, onRun, st)
	default:
		// Incomparable: a base-graph edge would be a cross edge of T —
		// impossible.
		return 0, false
	}
}

// scanRange searches nbr[u] within order-key range [lokey, hikey].
// Entries nearer the tree-top have larger keys, so wantTreeHigh scans from
// the high end. filter (may be nil) restricts to run membership; deleted
// edges are skipped.
func (d *D) scanRange(u, lokey, hikey int, wantTreeHigh bool, filter func(int) bool, st *Stats) (int, bool) {
	row := d.nbr[u]
	lo := lowerBound(row, lokey, d.key) // first index with key >= lokey
	hi := upperBound(row, hikey, d.key) // first index with key > hikey
	if wantTreeHigh {
		for i := hi - 1; i >= lo; i-- {
			st.ScanSteps++
			z := int(row[i])
			if (filter == nil || filter(z)) && !d.edgeDeleted(u, z) {
				return z, true
			}
		}
	} else {
		for i := lo; i < hi; i++ {
			st.ScanSteps++
			z := int(row[i])
			if (filter == nil || filter(z)) && !d.edgeDeleted(u, z) {
				return z, true
			}
		}
	}
	return 0, false
}

func lowerBound(row []int32, k int, key []int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if key[row[mid]] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBound(row []int32, k int, key []int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if key[row[mid]] <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
