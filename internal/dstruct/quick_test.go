package dstruct

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/graph"
)

// Property (testing/quick): EdgeToWalk agrees with the brute-force scan for
// arbitrary seeds, both directions, with and without random patches.
func TestQuickEdgeToWalk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + int(uint(seed)%40)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		d := Build(g, tr, nil)
		// Optional patches (half the seeds).
		if seed%2 == 0 {
			for k := 0; k < 3; k++ {
				if e, ok := graph.RandomEdgeNotIn(g, rng); ok && k%2 == 0 {
					if g.InsertEdge(e.U, e.V) == nil {
						d.PatchInsertEdge(e.U, e.V)
					}
				} else if e, ok := graph.RandomExistingEdge(g, rng); ok {
					if g.DeleteEdge(e.U, e.V) == nil {
						d.PatchDeleteEdge(e.U, e.V)
					}
				}
			}
		}
		walk, onWalk := randomWalkInTree(g, rng)
		if len(walk) == 0 {
			return true
		}
		var sources []int
		for v := 0; v < g.NumVertexSlots(); v++ {
			if g.IsVertex(v) && !onWalk[v] && rng.Float64() < 0.6 {
				sources = append(sources, v)
			}
		}
		for _, fromEnd := range []bool{true, false} {
			got, gok := d.EdgeToWalk(sources, walk, fromEnd, nil)
			want, wok := naiveEdgeToWalk(g, sources, walk, fromEnd)
			if gok != wok {
				return false
			}
			if gok && (got.ZPos != want.ZPos || !g.HasEdge(got.U, got.Z)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: ResetPatches returns D to a state equivalent to freshly built.
func TestQuickResetPatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + int(uint(seed)%30)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		d := Build(g, tr, nil)
		fresh := Build(g, tr, nil)
		// Patch arbitrarily, then reset.
		if e, ok := graph.RandomEdgeNotIn(g, rng); ok {
			d.PatchInsertEdge(e.U, e.V)
		}
		if e, ok := graph.RandomExistingEdge(g, rng); ok {
			d.PatchDeleteEdge(e.U, e.V)
		}
		d.PatchInsertVertex(n+100, []int{0})
		d.ResetPatches()
		if d.NumPatches() != 0 {
			return false
		}
		// Same answers as fresh on random walk queries.
		walk, onWalk := randomWalkInTree(g, rng)
		if len(walk) == 0 {
			return true
		}
		var sources []int
		for v := 0; v < g.NumVertexSlots(); v++ {
			if !onWalk[v] {
				sources = append(sources, v)
			}
		}
		a, aok := d.EdgeToWalk(sources, walk, true, nil)
		b, bok := fresh.EdgeToWalk(sources, walk, true, nil)
		return aok == bok && a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
