package dstruct

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

// statsWorkload builds a D and a deterministic query list exercising both
// EdgeToWalk flavours over serial and sharded source sets.
func statsWorkload(t *testing.T, seed int64) (*D, *D, []WalkQuery) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 900 + rng.Intn(400)
	g := graph.GnpConnected(n, 5.0/float64(n), rng)
	serial, parallel, _ := buildPair(g, rng)
	applyRandomPatches(g, rng, serial, parallel)
	var qs []WalkQuery
	for q := 0; q < 16; q++ {
		walk, onWalk := randomWalkInTree(g, rng)
		if len(walk) == 0 {
			continue
		}
		sources := bigSourceSet(g, onWalk)
		if q%3 == 0 {
			sources = sources[:rng.Intn(len(sources)+1)]
		}
		qs = append(qs, WalkQuery{
			Sources:  sources,
			Walk:     walk,
			FromEnd:  rng.Intn(2) == 0,
			BySource: q%4 == 3,
		})
	}
	return serial, parallel, qs
}

func runQuery(d *D, q WalkQuery, st *Stats) {
	if q.BySource {
		d.EdgeToWalkBySource(q.Sources, q.Walk, q.FromEnd, st)
	} else {
		d.EdgeToWalk(q.Sources, q.Walk, q.FromEnd, st)
	}
}

// TestPerCallStatsSumToSharedTotals is the refactor's accounting check: the
// per-call accumulators, summed, must equal the totals a single shared
// accumulator records across the same query sequence — exactly what the old
// d.Stats field used to accumulate.
func TestPerCallStatsSumToSharedTotals(t *testing.T) {
	for _, seed := range []int64{211, 223} {
		serial, parallel, qs := statsWorkload(t, seed)
		var sharedSerial Stats
		for _, q := range qs {
			runQuery(serial, q, &sharedSerial)
		}
		for name, d := range map[string]*D{"serial": serial, "parallel": parallel} {
			var shared Stats
			for _, q := range qs {
				runQuery(d, q, &shared)
			}
			var summed Stats
			for _, q := range qs {
				var st Stats
				runQuery(d, q, &st)
				summed.Add(st)
			}
			if shared != summed {
				t.Fatalf("seed %d %s: shared accumulator %+v != summed per-call %+v",
					seed, name, shared, summed)
			}
			if shared.WalkQueries != int64(len(qs)) {
				t.Fatalf("seed %d %s: %d walk queries recorded for %d issued",
					seed, name, shared.WalkQueries, len(qs))
			}
			// A batch with at least as many queries as workers evaluates
			// each query serially within its worker, so its per-shard
			// accumulators must reduce to exactly the serial totals (the
			// parallel one-by-one path may record more BySource effort — it
			// cannot early-exit across source shards — which is why the
			// reference here is the serial D, not `shared`).
			var batched Stats
			d.EdgeToWalkBatch(qs, &batched)
			if batched != sharedSerial {
				t.Fatalf("seed %d %s: batch stats %+v != serial sequential %+v",
					seed, name, batched, sharedSerial)
			}
		}
	}
}

// TestConcurrentQueriesDistinctAccumulators runs many goroutines against
// one D (no patches in flight), each with a private Stats; with the query
// path read-only this must be race-free (checked under -race) and every
// accumulator must match the serial rerun of its own queries.
func TestConcurrentQueriesDistinctAccumulators(t *testing.T) {
	serial, parallel, qs := statsWorkload(t, 227)
	if len(qs) == 0 {
		t.Skip("empty workload")
	}
	for name, d := range map[string]*D{"serial": serial, "parallel": parallel} {
		const readers = 8
		got := make([]Stats, readers)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := r; i < len(qs); i += readers {
					runQuery(d, qs[i], &got[r])
				}
			}(r)
		}
		wg.Wait()
		want := make([]Stats, readers)
		for r := 0; r < readers; r++ {
			for i := r; i < len(qs); i += readers {
				runQuery(d, qs[i], &want[r])
			}
		}
		for r := range got {
			if got[r] != want[r] {
				t.Fatalf("%s reader %d: concurrent stats %+v != serial %+v", name, r, got[r], want[r])
			}
		}
	}
}
