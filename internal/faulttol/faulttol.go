// Package faulttol implements the paper's fault-tolerant DFS (Theorem 14):
// an undirected graph is preprocessed once into a structure of size O(m)
// — its DFS tree T₀ and the data structure D built on T₀ — after which a
// DFS tree of the graph under any batch of k updates can be computed
// without ever rebuilding D. The i-th update of a batch reroots subtrees of
// T*_{i-1}; every query path of T*_{i-1} decomposes into ancestor-descendant
// fragments of T₀ (Theorem 9), which is what makes the original D usable.
//
// Apply is read-only with respect to the preprocessed state: batches are
// independent, matching the fault-tolerant model where each failure set is
// hypothetical.
package faulttol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/reroot"
	"repro/internal/tree"
)

// FaultTolerant is the preprocessed structure.
type FaultTolerant struct {
	g0     *graph.Persistent // immutable; shared with every session zero-copy
	dd0    *core.DynamicDFS  // holds T0 and D; never mutated after preprocessing
	m      *pram.Machine
	maxUpd int
}

// Result reports the outcome of one batch.
type Result struct {
	Tree       *tree.Tree // DFS tree of the updated graph (pseudo-rooted)
	PseudoRoot int
	Graph      *graph.Persistent // the updated graph (immutable version)
	Stats      reroot.Stats      // aggregated over the batch
	// Fragments is the total number of base-tree fragments walk queries
	// decomposed into during the batch (the paper's O(log^{2(i-1)} n) per
	// query); FragQueries is the number of walk queries.
	Fragments   int64
	FragQueries int64
}

// Preprocess builds the structure. maxUpdates sizes the vertex-ID headroom
// for inserted vertices (the paper's k ≤ log n; pass 0 for a default of 64).
func Preprocess(g *graph.Graph, maxUpdates int) *FaultTolerant {
	if maxUpdates <= 0 {
		maxUpdates = 64
	}
	m := pram.NewMachine(2*g.NumEdges() + g.NumVertexSlots() + 1)
	dd := core.New(g, core.Options{RebuildD: false, Headroom: maxUpdates + 1, Machine: m})
	return &FaultTolerant{g0: dd.Graph(), dd0: dd, m: m, maxUpd: maxUpdates}
}

// SizeWords returns the preprocessed structure's size in words (the O(m)
// bound of Theorem 14: D plus the tree arrays).
func (ft *FaultTolerant) SizeWords() int64 {
	return ft.dd0.D().SizeWords() + int64(2*ft.dd0.Tree().N())
}

// Tree returns the preprocessed DFS tree T₀.
func (ft *FaultTolerant) Tree() *tree.Tree { return ft.dd0.Tree() }

// PseudoRoot returns the pseudo root ID.
func (ft *FaultTolerant) PseudoRoot() int { return ft.dd0.PseudoRoot() }

// Machine returns the accounting machine (shared across batches).
func (ft *FaultTolerant) Machine() *pram.Machine { return ft.m }

// Apply computes the DFS tree of the graph under the given update batch,
// using only the original D (patched, then reset). The preprocessed state
// is unchanged afterwards.
func (ft *FaultTolerant) Apply(updates []core.Update) (*Result, error) {
	if len(updates) > ft.maxUpd {
		return nil, fmt.Errorf("faulttol: batch of %d exceeds preprocessed maximum %d",
			len(updates), ft.maxUpd)
	}
	d := ft.dd0.D()
	defer d.ResetPatches()

	// The persistent graph makes the session start free: it shares g0
	// zero-copy and path-copies only what its updates touch, so a batch no
	// longer pays an O(n+m) clone before its first update.
	session := core.NewFromState(ft.g0, ft.dd0.Tree(), d, ft.dd0.PseudoRoot(), ft.m)
	res := &Result{PseudoRoot: ft.dd0.PseudoRoot()}
	for i, u := range updates {
		if _, err := session.Apply(u); err != nil {
			return nil, fmt.Errorf("faulttol: update %d (%v): %w", i, u.Kind, err)
		}
		res.Stats.Add(session.LastStats())
	}
	res.Tree = session.Tree()
	res.Graph = session.Graph()
	// The session threads per-call Stats accumulators through every D query
	// (D itself is never mutated by queries), so the batch's fragment counts
	// are simply its rolled-up totals — no before/after delta needed.
	qs := session.QueryStats()
	res.Fragments = qs.RunsSplit
	res.FragQueries = qs.WalkQueries
	return res, nil
}

// NewVertexIDs returns the vertex IDs a batch's InsertVertex updates will
// receive, in order, given the preprocessed graph (useful for composing
// batches that reference inserted vertices).
func (ft *FaultTolerant) NewVertexIDs(count int) []int {
	ids := make([]int, count)
	base := ft.g0.NumVertexSlots()
	for i := range ids {
		ids[i] = base + i
	}
	return ids
}
