package faulttol

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestSingleUpdateBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(32)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		ft := Preprocess(g, 8)
		// Every batch runs against the same preprocessed state.
		for b := 0; b < 5; b++ {
			var u core.Update
			if e, ok := graph.RandomEdgeNotIn(g, rng); ok && b%2 == 0 {
				u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
			} else if e, ok := graph.RandomExistingEdge(g, rng); ok {
				u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
			} else {
				continue
			}
			res, err := ft.Apply([]core.Update{u})
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, b, err)
			}
			if err := verify.DFSForest(res.Graph, res.Tree, res.PseudoRoot); err != nil {
				t.Fatalf("trial %d batch %d (%v): %v", trial, b, u.Kind, err)
			}
		}
	}
}

func TestMultiUpdateBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(30)
		g := graph.GnpConnected(n, 4.0/float64(n), rng)
		ft := Preprocess(g, 8)
		// Build a batch of up to 4 mixed updates; apply them to a scratch
		// graph in lockstep to produce feasible updates.
		scratch := g.Clone()
		var batch []core.Update
		for len(batch) < 4 {
			switch rng.Intn(4) {
			case 0:
				if e, ok := graph.RandomEdgeNotIn(scratch, rng); ok {
					if scratch.InsertEdge(e.U, e.V) == nil {
						batch = append(batch, core.Update{Kind: core.InsertEdge, U: e.U, V: e.V})
					}
				}
			case 1:
				if e, ok := graph.RandomExistingEdge(scratch, rng); ok {
					if scratch.DeleteEdge(e.U, e.V) == nil {
						batch = append(batch, core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V})
					}
				}
			case 2:
				var nbrs []int
				for v := 0; v < scratch.NumVertexSlots(); v++ {
					if scratch.IsVertex(v) && rng.Float64() < 0.1 {
						nbrs = append(nbrs, v)
					}
				}
				if _, err := scratch.InsertVertex(nbrs); err == nil {
					batch = append(batch, core.Update{Kind: core.InsertVertex, Neighbors: nbrs})
				}
			case 3:
				v := rng.Intn(n)
				if scratch.IsVertex(v) && scratch.NumVertices() > 4 {
					if scratch.DeleteVertex(v) == nil {
						batch = append(batch, core.Update{Kind: core.DeleteVertex, U: v})
					}
				}
			}
		}
		res, err := ft.Apply(batch)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.DFSForest(res.Graph, res.Tree, res.PseudoRoot); err != nil {
			t.Fatalf("trial %d: %v (batch %+v)", trial, err, batch)
		}
	}
}

func TestBatchesAreIndependent(t *testing.T) {
	// Applying a batch must not disturb the preprocessed state: the same
	// batch twice gives the same tree, and D's patches are reset.
	rng := rand.New(rand.NewSource(127))
	g := graph.GnpConnected(20, 0.2, rng)
	ft := Preprocess(g, 4)
	batch := []core.Update{
		{Kind: core.DeleteEdge, U: g.Edges()[0].U, V: g.Edges()[0].V},
		{Kind: core.InsertVertex, Neighbors: []int{1, 5}},
	}
	r1, err := ft.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got := ft.dd0.D().NumPatches(); got != 0 {
		t.Fatalf("patches leaked: %d", got)
	}
	r2, err := ft.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < r1.Tree.N(); v++ {
		if r1.Tree.Parent[v] != r2.Tree.Parent[v] {
			t.Fatalf("batch not deterministic at vertex %d", v)
		}
	}
}

func TestBatchSizeLimit(t *testing.T) {
	g := graph.Path(6)
	ft := Preprocess(g, 1)
	batch := []core.Update{
		{Kind: core.InsertEdge, U: 0, V: 2},
		{Kind: core.InsertEdge, U: 0, V: 3},
	}
	if _, err := ft.Apply(batch); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestFragmentsGrowWithBatchIndex(t *testing.T) {
	// Later updates in a batch run on trees that have drifted from T0, so
	// walk queries decompose into more fragments (Theorem 9's growth).
	rng := rand.New(rand.NewSource(131))
	g := graph.GnpConnected(128, 0.04, rng)
	ft := Preprocess(g, 8)
	var batch []core.Update
	scratch := g.Clone()
	for len(batch) < 6 {
		if e, ok := graph.RandomEdgeNotIn(scratch, rng); ok {
			if scratch.InsertEdge(e.U, e.V) == nil {
				batch = append(batch, core.Update{Kind: core.InsertEdge, U: e.U, V: e.V})
			}
		}
	}
	res, err := ft.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.FragQueries > 0 && res.Fragments < res.FragQueries {
		t.Fatalf("fragments %d < queries %d", res.Fragments, res.FragQueries)
	}
	if err := verify.DFSForest(res.Graph, res.Tree, res.PseudoRoot); err != nil {
		t.Fatal(err)
	}
}

func TestSizeWordsLinearInM(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	g := graph.GnpConnected(100, 0.1, rng)
	ft := Preprocess(g, 4)
	words := ft.SizeWords()
	m := int64(g.NumEdges())
	if words < 2*m || words > 2*m+8*int64(ft.Tree().N()) {
		t.Fatalf("SizeWords=%d not Θ(m) for m=%d", words, m)
	}
}
