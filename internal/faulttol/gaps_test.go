package faulttol

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestBatchWithVertexInsertThenReference(t *testing.T) {
	// A batch may insert a vertex and then run updates touching it: the new
	// vertex has no base-tree numbering, so later walks traverse patch
	// vertices (singleton fragments) and patch adjacency.
	g := graph.Cycle(12)
	ft := Preprocess(g, 6)
	newID := ft.NewVertexIDs(1)[0]
	batch := []core.Update{
		{Kind: core.InsertVertex, Neighbors: []int{0, 6}},
		{Kind: core.InsertEdge, U: newID, V: 3},
		{Kind: core.DeleteEdge, U: 0, V: 1},
		{Kind: core.DeleteEdge, U: newID, V: 6},
	}
	res, err := ft.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DFSForest(res.Graph, res.Tree, res.PseudoRoot); err != nil {
		t.Fatal(err)
	}
	if !res.Tree.Present(newID) {
		t.Fatal("inserted vertex missing from result tree")
	}
}

func TestBatchDeletesInsertedVertex(t *testing.T) {
	g := graph.Path(8)
	ft := Preprocess(g, 4)
	newID := ft.NewVertexIDs(1)[0]
	batch := []core.Update{
		{Kind: core.InsertVertex, Neighbors: []int{0, 4, 7}},
		{Kind: core.DeleteVertex, U: newID},
	}
	res, err := ft.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.DFSForest(res.Graph, res.Tree, res.PseudoRoot); err != nil {
		t.Fatal(err)
	}
	if res.Tree.Present(newID) {
		t.Fatal("deleted vertex still present")
	}
}

func TestHeadroomBoundEnforced(t *testing.T) {
	g := graph.Path(4)
	ft := Preprocess(g, 2)
	var batch []core.Update
	for i := 0; i < 3; i++ {
		batch = append(batch, core.Update{Kind: core.InsertVertex, Neighbors: []int{0}})
	}
	if _, err := ft.Apply(batch); err == nil {
		t.Fatal("batch exceeding preprocessed maximum accepted")
	}
}

func TestRepeatedHeavyBatches(t *testing.T) {
	// Many batches against one preprocessing; every one verified; the
	// structure's size must not creep (patch leak check).
	rng := rand.New(rand.NewSource(229))
	g := graph.GnpConnected(64, 0.08, rng)
	ft := Preprocess(g, 6)
	size0 := ft.SizeWords()
	for b := 0; b < 25; b++ {
		scratch := g.Clone()
		var batch []core.Update
		for len(batch) < 5 {
			if e, ok := graph.RandomExistingEdge(scratch, rng); ok {
				if scratch.DeleteEdge(e.U, e.V) == nil {
					batch = append(batch, core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V})
				}
			}
		}
		res, err := ft.Apply(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if err := verify.DFSForest(res.Graph, res.Tree, res.PseudoRoot); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if ft.SizeWords() != size0 {
		t.Fatalf("structure size crept from %d to %d words", size0, ft.SizeWords())
	}
}
