package graph

import (
	"math/rand"
)

// Gnp returns an Erdős–Rényi G(n,p) random graph drawn from rng.
// Sampling skips geometrically between edges, so the cost is O(n + m).
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	if p <= 0 || n < 2 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				mustInsert(g, u, v)
			}
		}
		return g
	}
	// Iterate potential edge index with geometric skips.
	u, v := 1, -1
	lq := logq(p)
	for u < n {
		skip := geometric(rng, lq)
		v += 1 + skip
		for v >= u && u < n {
			v -= u
			u++
		}
		if u < n {
			mustInsert(g, u, v)
		}
	}
	return g
}

func logq(p float64) float64 {
	// log(1-p); p in (0,1)
	return log1p(-p)
}

func log1p(x float64) float64 {
	// thin wrapper to keep math import localized
	return mathLog1p(x)
}

// GnpConnected returns a connected G(n,p)-like graph: a uniform random
// spanning tree is added first, then G(n,p) edges on top (duplicates
// skipped). Like Gnp, the overlay samples with geometric skips, so the cost
// is O(n + m) and the 10⁵-vertex benchmark instances are cheap to generate.
func GnpConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := RandomTree(n, rng)
	if p <= 0 || n < 2 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) {
					mustInsert(g, u, v)
				}
			}
		}
		return g
	}
	u, v := 1, -1
	lq := logq(p)
	for u < n {
		skip := geometric(rng, lq)
		v += 1 + skip
		for v >= u && u < n {
			v -= u
			u++
		}
		if u < n && !g.HasEdge(u, v) {
			mustInsert(g, u, v)
		}
	}
	return g
}

// RandomTree returns a uniformly random labeled tree on n vertices
// (random Prüfer-like attachment: vertex i attaches to a uniform j < i,
// which is not uniform over labeled trees but is the standard random
// recursive tree used for workload generation).
func RandomTree(n int, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		mustInsert(g, v, rng.Intn(v))
	}
	return g
}

// Path returns the path 0-1-2-...-n-1.
func Path(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		mustInsert(g, v-1, v)
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		mustInsert(g, n-1, 0)
	}
	return g
}

// Star returns a star with center 0 and n-1 leaves.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		mustInsert(g, 0, v)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustInsert(g, u, v)
		}
	}
	return g
}

// BinaryTree returns the complete binary tree on n vertices with root 0
// (children of i are 2i+1 and 2i+2).
func BinaryTree(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		mustInsert(g, v, (v-1)/2)
	}
	return g
}

// Broom returns the "broom" adversarial instance for rerooting: a path of
// length handle whose far end fans out into n-handle bristles, plus back
// edges from every bristle to vertex 0. Rerooting from a bristle forces long
// path structures. Requires n > handle >= 1.
func Broom(n, handle int) *Graph {
	g := New(n)
	for v := 1; v <= handle; v++ {
		mustInsert(g, v-1, v)
	}
	for v := handle + 1; v < n; v++ {
		mustInsert(g, handle, v)
		mustInsert(g, 0, v)
	}
	return g
}

// Grid returns the rows×cols grid graph; vertex (r,c) has ID r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustInsert(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustInsert(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// CycleOfCliques returns k cliques of size s arranged on a cycle, adjacent
// cliques joined by one edge. Diameter is Θ(k); useful for the distributed
// experiments that sweep diameter at fixed n.
func CycleOfCliques(k, s int) *Graph {
	g := New(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				mustInsert(g, base+i, base+j)
			}
		}
		nxt := ((c + 1) % k) * s
		if k > 1 && (c+1 < k || k > 2) {
			if !g.HasEdge(base, nxt) {
				mustInsert(g, base, nxt)
			}
		}
	}
	return g
}

// Caterpillar returns a spine path of length spine where spine vertex i has
// legs pendant leaves attached.
func Caterpillar(spine, legs int) *Graph {
	g := New(spine + spine*legs)
	for v := 1; v < spine; v++ {
		mustInsert(g, v-1, v)
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legs; l++ {
			mustInsert(g, s, next)
			next++
		}
	}
	return g
}

// RandomEdgeNotIn returns a uniformly random non-edge (u,v) between live
// vertices, or ok=false if the live part of the graph is complete.
func RandomEdgeNotIn(g Adjacency, rng *rand.Rand) (Edge, bool) {
	n := g.NumVertexSlots()
	live := make([]int, 0, g.NumVertices())
	for v := 0; v < n; v++ {
		if g.IsVertex(v) {
			live = append(live, v)
		}
	}
	k := len(live)
	maxE := k * (k - 1) / 2
	if g.NumEdges() >= maxE || k < 2 {
		return Edge{}, false
	}
	for {
		u := live[rng.Intn(k)]
		v := live[rng.Intn(k)]
		if u != v && !g.HasEdge(u, v) {
			return Edge{u, v}.Canon(), true
		}
	}
}

// RandomExistingEdge returns a uniformly random edge of g, or ok=false if
// the graph has no edges. O(m) per call; intended for test workloads.
func RandomExistingEdge(g Adjacency, rng *rand.Rand) (Edge, bool) {
	if g.NumEdges() == 0 {
		return Edge{}, false
	}
	es := g.Edges()
	return es[rng.Intn(len(es))], true
}

func mustInsert(g *Graph, u, v int) {
	if err := g.InsertEdge(u, v); err != nil {
		panic(err)
	}
}
