// Package graph provides the undirected dynamic graph substrate used by the
// dynamic-DFS algorithms. Two representations support the paper's extended
// update model (edge insert/delete, vertex insert with an arbitrary edge
// set, vertex delete):
//
//   - Graph, a mutable map-based adjacency for single-owner drivers and the
//     workload generators;
//   - Persistent, an immutable path-copying adjacency whose mutations return
//     a new version sharing all untouched rows with its predecessor, so a
//     version can be published to concurrent readers in O(1) and retained
//     forever (the serving layer's snapshot substrate).
//
// Both satisfy the read-only Adjacency interface consumed by verification,
// D construction, and the static baselines; CSR is the flat immutable
// snapshot layout the PRAM-style routines iterate over.
//
// Vertices are dense integers 0..n-1. A deleted vertex leaves a hole: its ID
// stays allocated but IsVertex reports false and it has no incident edges.
// This keeps vertex IDs stable across an online update sequence, which the
// DFS structures rely on.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two vertices.
type Edge struct {
	U, V int
}

// Canon returns the edge with endpoints ordered (min, max), the canonical
// form used for set membership.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int) int {
	if e.U == x {
		return e.V
	}
	return e.U
}

func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is a mutable simple undirected graph.
type Graph struct {
	adj     []map[int]struct{} // adj[v] = neighbor set; nil for deleted vertices
	alive   []bool
	m       int // number of edges
	nAlive  int // number of live vertices
	version uint64
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	g := &Graph{
		adj:    make([]map[int]struct{}, n),
		alive:  make([]bool, n),
		nAlive: n,
	}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
		g.alive[i] = true
	}
	return g
}

// FromEdges builds a graph on n vertices with the given edge set.
// Duplicate and self-loop edges are rejected.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.InsertEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// generators with known-valid input.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertexSlots returns the number of allocated vertex IDs (including holes
// left by deleted vertices).
func (g *Graph) NumVertexSlots() int { return len(g.adj) }

// NumVertices returns the number of live vertices.
func (g *Graph) NumVertices() int { return g.nAlive }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.m }

// Version increments on every successful mutation; snapshots record it so
// stale snapshots can be detected.
func (g *Graph) Version() uint64 { return g.version }

// IsVertex reports whether v is a live vertex.
func (g *Graph) IsVertex(v int) bool {
	return v >= 0 && v < len(g.adj) && g.alive[v]
}

// HasEdge reports whether edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if !g.IsVertex(u) || !g.IsVertex(v) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the degree of v, or 0 for a non-vertex.
func (g *Graph) Degree(v int) int {
	if !g.IsVertex(v) {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors appends the neighbors of v to buf and returns it, in unspecified
// order. It allocates only when buf lacks capacity.
func (g *Graph) Neighbors(v int, buf []int) []int {
	if !g.IsVertex(v) {
		return buf[:0]
	}
	buf = buf[:0]
	for w := range g.adj[v] {
		buf = append(buf, w)
	}
	return buf
}

// SortedNeighbors returns the neighbors of v in increasing vertex order.
func (g *Graph) SortedNeighbors(v int) []int {
	ns := g.Neighbors(v, nil)
	sort.Ints(ns)
	return ns
}

// InsertEdge adds edge (u,v).
func (g *Graph) InsertEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self loop (%d,%d)", u, v)
	}
	if !g.IsVertex(u) || !g.IsVertex(v) {
		return fmt.Errorf("graph: edge (%d,%d) touches non-vertex", u, v)
	}
	if _, ok := g.adj[u][v]; ok {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
	g.version++
	return nil
}

// DeleteEdge removes edge (u,v).
func (g *Graph) DeleteEdge(u, v int) error {
	if !g.HasEdge(u, v) {
		return fmt.Errorf("graph: no edge (%d,%d)", u, v)
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	g.version++
	return nil
}

// InsertVertex adds a new vertex connected to the given neighbors and returns
// its ID. Neighbors must be distinct live vertices.
func (g *Graph) InsertVertex(neighbors []int) (int, error) {
	v := len(g.adj)
	seen := make(map[int]struct{}, len(neighbors))
	for _, w := range neighbors {
		if !g.IsVertex(w) {
			return -1, fmt.Errorf("graph: new vertex neighbor %d is not a vertex", w)
		}
		if _, dup := seen[w]; dup {
			return -1, fmt.Errorf("graph: duplicate neighbor %d", w)
		}
		seen[w] = struct{}{}
	}
	g.adj = append(g.adj, make(map[int]struct{}, len(neighbors)))
	g.alive = append(g.alive, true)
	g.nAlive++
	for _, w := range neighbors {
		g.adj[v][w] = struct{}{}
		g.adj[w][v] = struct{}{}
		g.m++
	}
	g.version++
	return v, nil
}

// DeleteVertex removes v and all its incident edges. The ID becomes a hole.
func (g *Graph) DeleteVertex(v int) error {
	if !g.IsVertex(v) {
		return fmt.Errorf("graph: delete of non-vertex %d", v)
	}
	for w := range g.adj[v] {
		delete(g.adj[w], v)
		g.m--
	}
	g.adj[v] = nil
	g.alive[v] = false
	g.nAlive--
	g.version++
	return nil
}

// Edges returns all edges in canonical (min,max) order, sorted.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.adj {
		if !g.alive[u] {
			continue
		}
		for v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{u, v})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:     make([]map[int]struct{}, len(g.adj)),
		alive:   append([]bool(nil), g.alive...),
		m:       g.m,
		nAlive:  g.nAlive,
		version: g.version,
	}
	for v, nb := range g.adj {
		if nb == nil {
			continue
		}
		c.adj[v] = make(map[int]struct{}, len(nb))
		for w := range nb {
			c.adj[v][w] = struct{}{}
		}
	}
	return c
}

// CSR is an immutable compressed-sparse-row snapshot of a graph, the layout
// the PRAM-style routines iterate over. Holes (deleted vertices) have empty
// rows.
type CSR struct {
	Off     []int // len n+1
	Dst     []int // len 2m
	N       int   // vertex slots
	M       int   // edges
	Version uint64
}

// Snapshot builds a CSR copy of the current graph. Neighbor lists are sorted
// by vertex ID for determinism.
func (g *Graph) Snapshot() *CSR {
	n := len(g.adj)
	c := &CSR{
		Off:     make([]int, n+1),
		Dst:     make([]int, 0, 2*g.m),
		N:       n,
		M:       g.m,
		Version: g.version,
	}
	for v := 0; v < n; v++ {
		c.Off[v] = len(c.Dst)
		if g.alive[v] {
			c.Dst = append(c.Dst, g.SortedNeighbors(v)...)
		}
	}
	c.Off[n] = len(c.Dst)
	return c
}

// Row returns the neighbor slice of v in the snapshot.
func (c *CSR) Row(v int) []int { return c.Dst[c.Off[v]:c.Off[v+1]] }

// Degree returns the degree of v in the snapshot.
func (c *CSR) Degree(v int) int { return c.Off[v+1] - c.Off[v] }

// ConnectedComponents labels live vertices with component IDs (0-based,
// contiguous) and returns (labels, count). Dead vertices get label -1.
func (g *Graph) ConnectedComponents() ([]int, int) {
	n := len(g.adj)
	label := make([]int, n)
	for i := range label {
		label[i] = -1
	}
	next := 0
	stack := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if !g.alive[s] || label[s] >= 0 {
			continue
		}
		label[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for w := range g.adj[v] {
				if label[w] < 0 {
					label[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return label, next
}

// IsConnected reports whether all live vertices are in one component.
func (g *Graph) IsConnected() bool {
	if g.nAlive == 0 {
		return true
	}
	_, k := g.ConnectedComponents()
	return k == 1
}

// Diameter returns the diameter of the graph (max eccentricity over live
// vertices) computed by BFS from every vertex, or -1 if disconnected or
// empty. Intended for experiment setup on moderate sizes, not hot paths.
func (g *Graph) Diameter() int {
	if g.nAlive == 0 || !g.IsConnected() {
		return -1
	}
	n := len(g.adj)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	diam := 0
	for s := 0; s < n; s++ {
		if !g.alive[s] {
			continue
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for h := 0; h < len(queue); h++ {
			v := queue[h]
			for w := range g.adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > diam {
						diam = dist[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
	return diam
}
