package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertDeleteEdge(t *testing.T) {
	g := New(4)
	if err := g.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("edge (1,0) missing after insert (0,1)")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if err := g.InsertEdge(0, 1); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if err := g.InsertEdge(2, 2); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.DeleteEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.NumEdges() != 0 {
		t.Fatal("edge survives deletion")
	}
	if err := g.DeleteEdge(0, 1); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestVertexUpdates(t *testing.T) {
	g := Path(3)
	v, err := g.InsertVertex([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 || !g.HasEdge(3, 0) || !g.HasEdge(3, 2) {
		t.Fatalf("vertex insert wrong: id=%d", v)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d, want 4,4", g.NumVertices(), g.NumEdges())
	}
	if err := g.DeleteVertex(1); err != nil {
		t.Fatal(err)
	}
	if g.IsVertex(1) || g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("vertex 1 not fully deleted")
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("after delete: n=%d m=%d, want 3,2", g.NumVertices(), g.NumEdges())
	}
	if _, err := g.InsertVertex([]int{1}); err == nil {
		t.Fatal("neighbor may not be a deleted vertex")
	}
	if err := g.DeleteVertex(1); err == nil {
		t.Fatal("double vertex delete accepted")
	}
}

func TestSnapshotMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Gnp(50, 0.2, rng)
	s := g.Snapshot()
	if s.M != g.NumEdges() {
		t.Fatalf("snapshot m=%d, graph m=%d", s.M, g.NumEdges())
	}
	for v := 0; v < 50; v++ {
		row := s.Row(v)
		if len(row) != g.Degree(v) {
			t.Fatalf("v=%d: row len %d, degree %d", v, len(row), g.Degree(v))
		}
		for _, w := range row {
			if !g.HasEdge(v, w) {
				t.Fatalf("snapshot edge (%d,%d) not in graph", v, w)
			}
		}
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("v=%d: row not sorted", v)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	if err := c.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
		conn bool
	}{
		{"path", Path(10), 10, 9, true},
		{"cycle", Cycle(10), 10, 10, true},
		{"star", Star(10), 10, 9, true},
		{"complete", Complete(6), 6, 15, true},
		{"binarytree", BinaryTree(15), 15, 14, true},
		{"broom", Broom(10, 4), 10, 4 + 2*5, true},
		{"grid", Grid(4, 5), 20, 4*4 + 3*5, true},
		{"caterpillar", Caterpillar(5, 2), 15, 14, true},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.n {
			t.Errorf("%s: n=%d want %d", c.name, c.g.NumVertices(), c.n)
		}
		if c.g.NumEdges() != c.m {
			t.Errorf("%s: m=%d want %d", c.name, c.g.NumEdges(), c.m)
		}
		if c.g.IsConnected() != c.conn {
			t.Errorf("%s: connected=%v want %v", c.name, c.g.IsConnected(), c.conn)
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		g := RandomTree(n, rng)
		if g.NumEdges() != n-1 || !g.IsConnected() {
			t.Fatalf("RandomTree(%d): m=%d connected=%v", n, g.NumEdges(), g.IsConnected())
		}
	}
}

func TestGnpEdgeCountConcentration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, p := 200, 0.1
	total := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		total += Gnp(n, p, rng).NumEdges()
	}
	mean := float64(total) / trials
	want := p * float64(n*(n-1)/2)
	if mean < want*0.85 || mean > want*1.15 {
		t.Fatalf("Gnp mean edges %.1f, want ~%.1f", mean, want)
	}
}

func TestGnpExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := Gnp(10, 0, rng); g.NumEdges() != 0 {
		t.Fatal("p=0 produced edges")
	}
	if g := Gnp(10, 1, rng); g.NumEdges() != 45 {
		t.Fatalf("p=1 produced %d edges, want 45", g.NumEdges())
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	mustInsert(g, 0, 1)
	mustInsert(g, 2, 3)
	mustInsert(g, 3, 4)
	label, k := g.ConnectedComponents()
	if k != 3 {
		t.Fatalf("components=%d, want 3", k)
	}
	if label[0] != label[1] || label[2] != label[3] || label[3] != label[4] {
		t.Fatalf("bad labels %v", label)
	}
	if label[0] == label[2] || label[2] == label[5] {
		t.Fatalf("merged distinct components: %v", label)
	}
	if err := g.DeleteVertex(5); err != nil {
		t.Fatal(err)
	}
	if label, k = g.ConnectedComponents(); k != 2 || label[5] != -1 {
		t.Fatalf("after delete: k=%d label[5]=%d", k, label[5])
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(10).Diameter(); d != 9 {
		t.Fatalf("path diameter=%d want 9", d)
	}
	if d := Cycle(10).Diameter(); d != 5 {
		t.Fatalf("cycle diameter=%d want 5", d)
	}
	if d := Complete(5).Diameter(); d != 1 {
		t.Fatalf("K5 diameter=%d want 1", d)
	}
	g := New(4)
	mustInsert(g, 0, 1)
	if d := g.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter=%d want -1", d)
	}
}

func TestRandomEdgeHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Path(6)
	for i := 0; i < 50; i++ {
		e, ok := RandomEdgeNotIn(g, rng)
		if !ok {
			t.Fatal("no non-edge found in sparse graph")
		}
		if g.HasEdge(e.U, e.V) || e.U == e.V {
			t.Fatalf("RandomEdgeNotIn returned bad edge %v", e)
		}
		e2, ok := RandomExistingEdge(g, rng)
		if !ok || !g.HasEdge(e2.U, e2.V) {
			t.Fatalf("RandomExistingEdge returned %v ok=%v", e2, ok)
		}
	}
	if _, ok := RandomEdgeNotIn(Complete(4), rng); ok {
		t.Fatal("found non-edge in complete graph")
	}
}

func TestEdgeCanonOther(t *testing.T) {
	e := Edge{5, 2}
	if e.Canon() != (Edge{2, 5}) {
		t.Fatalf("Canon=%v", e.Canon())
	}
	if e.Other(5) != 2 || e.Other(2) != 5 {
		t.Fatal("Other broken")
	}
}

// Property: edges reported by Edges() round-trip through FromEdges.
func TestEdgesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Gnp(30, 0.15, rng)
		h := MustFromEdges(30, g.Edges())
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !h.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleOfCliques(t *testing.T) {
	g := CycleOfCliques(6, 4)
	if g.NumVertices() != 24 || !g.IsConnected() {
		t.Fatalf("n=%d connected=%v", g.NumVertices(), g.IsConnected())
	}
	d := g.Diameter()
	if d < 3 {
		t.Fatalf("cycle of 6 cliques should have diameter >= 3, got %d", d)
	}
}
