package graph

import (
	"math"
	"math/rand"
)

func mathLog1p(x float64) float64 { return math.Log1p(x) }

// geometric samples the number of failures before the first success of a
// Bernoulli(p) sequence, given lq = log(1-p). Used for G(n,p) edge skipping.
func geometric(rng *rand.Rand, lq float64) int {
	if lq >= 0 { // p <= 0: never succeeds; callers guard against this
		return math.MaxInt32
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return int(math.Floor(math.Log(u) / lq))
}
