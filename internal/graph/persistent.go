package graph

import (
	"fmt"
	"sort"
)

// Adjacency is the read-only view shared by the mutable Graph and the
// immutable Persistent graph. Everything that only inspects a graph —
// verification, D construction, static DFS baselines, workload pickers —
// accepts this interface so it can run against either representation.
type Adjacency interface {
	// NumVertexSlots returns the number of allocated vertex IDs (holes
	// included).
	NumVertexSlots() int
	// NumVertices returns the number of live vertices.
	NumVertices() int
	// NumEdges returns the number of edges.
	NumEdges() int
	// Version increments on every successful mutation (for Persistent, each
	// derived version carries its predecessor's count plus one).
	Version() uint64
	// IsVertex reports whether v is a live vertex.
	IsVertex(v int) bool
	// HasEdge reports whether edge (u,v) exists.
	HasEdge(u, v int) bool
	// Degree returns the degree of v, or 0 for a non-vertex.
	Degree(v int) int
	// Neighbors appends the neighbors of v to buf and returns it.
	Neighbors(v int, buf []int) []int
	// SortedNeighbors returns the neighbors of v in increasing ID order.
	SortedNeighbors(v int) []int
	// Edges returns all edges in canonical (min,max) order, sorted.
	Edges() []Edge
	// Snapshot builds an immutable CSR copy.
	Snapshot() *CSR
	// ConnectedComponents labels live vertices with component IDs.
	ConnectedComponents() ([]int, int)
	// IsConnected reports whether all live vertices share one component.
	IsConnected() bool
}

var (
	_ Adjacency = (*Graph)(nil)
	_ Adjacency = (*Persistent)(nil)
)

// pchunkShift sizes the copy-on-write granularity: 1<<pchunkShift vertex
// rows per chunk. A mutation copies the touched chunks (a few KB each) and
// the spine of chunk pointers (n/64 words); everything else is shared with
// the previous version.
const (
	pchunkShift = 6
	pchunkSize  = 1 << pchunkShift
	pchunkMask  = pchunkSize - 1
)

// pchunk is one fixed-width block of vertex rows. Chunks are immutable once
// published inside a Persistent and may be shared by any number of versions.
type pchunk struct {
	rows  [pchunkSize][]int32 // sorted neighbor lists (nil for dead/empty)
	alive uint64              // liveness bitmap, bit i = vertex (base+i)
}

// Persistent is an immutable simple undirected graph. Every mutating method
// leaves the receiver untouched and returns a new version that shares all
// untouched state with its predecessor: per-vertex neighbor rows are sorted
// int32 slices hanging off a chunked spine, and a mutation path-copies only
// the rows it rewrites, the chunks holding them, and the spine — O(Δ + n/64)
// words for an update touching Δ row entries, independent of m.
//
// Because versions are immutable, a *Persistent is safe for concurrent
// readers without synchronization and may be retained forever (the serving
// layer publishes one per snapshot; old versions keep verifying against
// their trees no matter how far the maintainer has moved on).
type Persistent struct {
	chunks  []*pchunk
	slots   int // allocated vertex IDs, including holes
	m       int
	nAlive  int
	version uint64
}

// NewPersistent returns an edgeless persistent graph with n live vertices.
func NewPersistent(n int) *Persistent {
	p := &Persistent{
		chunks: make([]*pchunk, (n+pchunkMask)>>pchunkShift),
		slots:  n,
		nAlive: n,
	}
	for i := range p.chunks {
		c := &pchunk{}
		lo := i << pchunkShift
		for b := 0; b < pchunkSize && lo+b < n; b++ {
			c.alive |= 1 << uint(b)
		}
		p.chunks[i] = c
	}
	return p
}

// PersistentOf builds a persistent version of any adjacency (typically the
// mutable Graph a caller constructed with the generators). The input is not
// retained.
func PersistentOf(g Adjacency) *Persistent {
	n := g.NumVertexSlots()
	p := &Persistent{
		chunks: make([]*pchunk, (n+pchunkMask)>>pchunkShift),
		slots:  n,
		m:      g.NumEdges(),
		nAlive: g.NumVertices(),
	}
	var buf []int
	for i := range p.chunks {
		c := &pchunk{}
		lo := i << pchunkShift
		for b := 0; b < pchunkSize && lo+b < n; b++ {
			v := lo + b
			if !g.IsVertex(v) {
				continue
			}
			c.alive |= 1 << uint(b)
			buf = g.Neighbors(v, buf)
			if len(buf) == 0 {
				continue
			}
			row := make([]int32, len(buf))
			for j, w := range buf {
				row[j] = int32(w)
			}
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
			c.rows[b] = row
		}
		p.chunks[i] = c
	}
	return p
}

// NumVertexSlots returns the number of allocated vertex IDs.
func (p *Persistent) NumVertexSlots() int { return p.slots }

// NumVertices returns the number of live vertices.
func (p *Persistent) NumVertices() int { return p.nAlive }

// NumEdges returns the number of edges.
func (p *Persistent) NumEdges() int { return p.m }

// Version counts the mutations this version descends from.
func (p *Persistent) Version() uint64 { return p.version }

// IsVertex reports whether v is a live vertex.
func (p *Persistent) IsVertex(v int) bool {
	return v >= 0 && v < p.slots &&
		p.chunks[v>>pchunkShift].alive&(1<<uint(v&pchunkMask)) != 0
}

func (p *Persistent) row(v int) []int32 {
	return p.chunks[v>>pchunkShift].rows[v&pchunkMask]
}

// HasEdge reports whether edge (u,v) exists.
func (p *Persistent) HasEdge(u, v int) bool {
	if !p.IsVertex(u) || !p.IsVertex(v) {
		return false
	}
	row := p.row(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// Degree returns the degree of v, or 0 for a non-vertex.
func (p *Persistent) Degree(v int) int {
	if !p.IsVertex(v) {
		return 0
	}
	return len(p.row(v))
}

// Neighbors appends the neighbors of v to buf and returns it, in increasing
// vertex order (the rows are stored sorted).
func (p *Persistent) Neighbors(v int, buf []int) []int {
	buf = buf[:0]
	if !p.IsVertex(v) {
		return buf
	}
	for _, w := range p.row(v) {
		buf = append(buf, int(w))
	}
	return buf
}

// SortedNeighbors returns the neighbors of v in increasing vertex order.
func (p *Persistent) SortedNeighbors(v int) []int {
	return p.Neighbors(v, nil)
}

// Edges returns all edges in canonical (min,max) order, sorted.
func (p *Persistent) Edges() []Edge {
	es := make([]Edge, 0, p.m)
	for u := 0; u < p.slots; u++ {
		if !p.IsVertex(u) {
			continue
		}
		for _, w := range p.row(u) {
			if int(w) > u {
				es = append(es, Edge{u, int(w)})
			}
		}
	}
	return es
}

// Snapshot builds a CSR copy; rows are already sorted, so this is a single
// linear pass.
func (p *Persistent) Snapshot() *CSR {
	c := &CSR{
		Off:     make([]int, p.slots+1),
		Dst:     make([]int, 0, 2*p.m),
		N:       p.slots,
		M:       p.m,
		Version: p.version,
	}
	for v := 0; v < p.slots; v++ {
		c.Off[v] = len(c.Dst)
		if p.IsVertex(v) {
			for _, w := range p.row(v) {
				c.Dst = append(c.Dst, int(w))
			}
		}
	}
	c.Off[p.slots] = len(c.Dst)
	return c
}

// ConnectedComponents labels live vertices with component IDs (0-based,
// contiguous) and returns (labels, count). Dead vertices get label -1.
func (p *Persistent) ConnectedComponents() ([]int, int) {
	label := make([]int, p.slots)
	for i := range label {
		label[i] = -1
	}
	next := 0
	stack := make([]int, 0, p.slots)
	for s := 0; s < p.slots; s++ {
		if !p.IsVertex(s) || label[s] >= 0 {
			continue
		}
		label[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w32 := range p.row(v) {
				if w := int(w32); label[w] < 0 {
					label[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return label, next
}

// IsConnected reports whether all live vertices are in one component.
func (p *Persistent) IsConnected() bool {
	if p.nAlive == 0 {
		return true
	}
	_, k := p.ConnectedComponents()
	return k == 1
}

// Mutable returns a fresh mutable Graph with the same vertices and edges
// (for drivers that keep a scratch mirror of a published snapshot).
func (p *Persistent) Mutable() *Graph {
	g := New(p.slots)
	for v := 0; v < p.slots; v++ {
		if !p.IsVertex(v) {
			g.adj[v] = nil
			g.alive[v] = false
			g.nAlive--
			continue
		}
		for _, w := range p.row(v) {
			g.adj[v][int(w)] = struct{}{}
		}
	}
	g.m = p.m
	g.version = p.version
	return g
}

// pmut accumulates one mutation: a shallow spine copy whose chunks are
// copied on first touch, so a multi-row update (vertex deletion) copies
// each affected chunk exactly once.
type pmut struct {
	np     *Persistent
	copied map[int]bool
}

func (p *Persistent) begin() *pmut {
	return &pmut{
		np: &Persistent{
			chunks:  append([]*pchunk(nil), p.chunks...),
			slots:   p.slots,
			m:       p.m,
			nAlive:  p.nAlive,
			version: p.version + 1,
		},
		copied: make(map[int]bool, 4),
	}
}

// chunk returns a privately owned copy of chunk ci, copying it from the
// shared predecessor on first touch (growing the spine for a new chunk).
func (mu *pmut) chunk(ci int) *pchunk {
	if ci == len(mu.np.chunks) {
		c := &pchunk{}
		mu.np.chunks = append(mu.np.chunks, c)
		mu.copied[ci] = true
		return c
	}
	if !mu.copied[ci] {
		c := *mu.np.chunks[ci]
		mu.np.chunks[ci] = &c
		mu.copied[ci] = true
	}
	return mu.np.chunks[ci]
}

// setRow installs a fresh row for v.
func (mu *pmut) setRow(v int, row []int32) {
	mu.chunk(v >> pchunkShift).rows[v&pchunkMask] = row
}

// rowInsert returns a copy of row with w inserted at its sorted position.
func rowInsert(row []int32, w int32) []int32 {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= w })
	nr := make([]int32, len(row)+1)
	copy(nr, row[:i])
	nr[i] = w
	copy(nr[i+1:], row[i:])
	return nr
}

// rowRemove returns a copy of row with w removed (w must be present).
func rowRemove(row []int32, w int32) []int32 {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= w })
	nr := make([]int32, len(row)-1)
	copy(nr, row[:i])
	copy(nr[i:], row[i+1:])
	return nr
}

// InsertEdge returns a new version with edge (u,v) added.
func (p *Persistent) InsertEdge(u, v int) (*Persistent, error) {
	if u == v {
		return nil, fmt.Errorf("graph: self loop (%d,%d)", u, v)
	}
	if !p.IsVertex(u) || !p.IsVertex(v) {
		return nil, fmt.Errorf("graph: edge (%d,%d) touches non-vertex", u, v)
	}
	if p.HasEdge(u, v) {
		return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	mu := p.begin()
	mu.setRow(u, rowInsert(p.row(u), int32(v)))
	mu.setRow(v, rowInsert(p.row(v), int32(u)))
	mu.np.m++
	return mu.np, nil
}

// DeleteEdge returns a new version with edge (u,v) removed.
func (p *Persistent) DeleteEdge(u, v int) (*Persistent, error) {
	if !p.HasEdge(u, v) {
		return nil, fmt.Errorf("graph: no edge (%d,%d)", u, v)
	}
	mu := p.begin()
	mu.setRow(u, rowRemove(p.row(u), int32(v)))
	mu.setRow(v, rowRemove(p.row(v), int32(u)))
	mu.np.m--
	return mu.np, nil
}

// InsertVertex returns a new version with a new vertex connected to the
// given neighbors, plus its ID. Neighbors must be distinct live vertices.
func (p *Persistent) InsertVertex(neighbors []int) (*Persistent, int, error) {
	seen := make(map[int]struct{}, len(neighbors))
	for _, w := range neighbors {
		if !p.IsVertex(w) {
			return nil, -1, fmt.Errorf("graph: new vertex neighbor %d is not a vertex", w)
		}
		if _, dup := seen[w]; dup {
			return nil, -1, fmt.Errorf("graph: duplicate neighbor %d", w)
		}
		seen[w] = struct{}{}
	}
	v := p.slots
	mu := p.begin()
	mu.np.slots++
	mu.np.nAlive++
	c := mu.chunk(v >> pchunkShift)
	c.alive |= 1 << uint(v&pchunkMask)
	if len(neighbors) > 0 {
		row := make([]int32, len(neighbors))
		for i, w := range neighbors {
			row[i] = int32(w)
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		c.rows[v&pchunkMask] = row
		for _, w := range neighbors {
			mu.setRow(w, rowInsert(p.row(w), int32(v)))
		}
		mu.np.m += len(neighbors)
	}
	return mu.np, v, nil
}

// DeleteVertex returns a new version with v and its incident edges removed.
// The ID becomes a hole.
func (p *Persistent) DeleteVertex(v int) (*Persistent, error) {
	if !p.IsVertex(v) {
		return nil, fmt.Errorf("graph: delete of non-vertex %d", v)
	}
	mu := p.begin()
	old := p.row(v)
	for _, w := range old {
		mu.setRow(int(w), rowRemove(p.row(int(w)), int32(v)))
	}
	mu.np.m -= len(old)
	c := mu.chunk(v >> pchunkShift)
	c.rows[v&pchunkMask] = nil
	c.alive &^= 1 << uint(v&pchunkMask)
	mu.np.nAlive--
	return mu.np, nil
}
