package graph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// applyRandomUpdate makes the same random update to the mutable mirror and
// the persistent graph, returning the new persistent version (or p itself
// when the picked update was a no-op for both).
func applyRandomUpdate(t *testing.T, p *Persistent, mirror *Graph, rng *rand.Rand) *Persistent {
	t.Helper()
	switch rng.Intn(4) {
	case 0:
		if e, ok := RandomEdgeNotIn(mirror, rng); ok {
			if err := mirror.InsertEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			np, err := p.InsertEdge(e.U, e.V)
			if err != nil {
				t.Fatalf("persistent InsertEdge%v: %v", e, err)
			}
			return np
		}
	case 1:
		if e, ok := RandomExistingEdge(mirror, rng); ok {
			if err := mirror.DeleteEdge(e.U, e.V); err != nil {
				t.Fatal(err)
			}
			np, err := p.DeleteEdge(e.U, e.V)
			if err != nil {
				t.Fatalf("persistent DeleteEdge%v: %v", e, err)
			}
			return np
		}
	case 2:
		var nbrs []int
		for v := 0; v < mirror.NumVertexSlots(); v++ {
			if mirror.IsVertex(v) && rng.Float64() < 0.2 {
				nbrs = append(nbrs, v)
			}
		}
		mv, err := mirror.InsertVertex(nbrs)
		if err != nil {
			t.Fatal(err)
		}
		np, pv, err := p.InsertVertex(nbrs)
		if err != nil {
			t.Fatalf("persistent InsertVertex(%v): %v", nbrs, err)
		}
		if pv != mv {
			t.Fatalf("InsertVertex ID: persistent %d, mutable %d", pv, mv)
		}
		return np
	case 3:
		if mirror.NumVertices() > 2 {
			v := rng.Intn(mirror.NumVertexSlots())
			if mirror.IsVertex(v) {
				if err := mirror.DeleteVertex(v); err != nil {
					t.Fatal(err)
				}
				np, err := p.DeleteVertex(v)
				if err != nil {
					t.Fatalf("persistent DeleteVertex(%d): %v", v, err)
				}
				return np
			}
		}
	}
	return p
}

// assertSame checks every read-API answer of p against the mutable mirror.
func assertSame(t *testing.T, p *Persistent, mirror *Graph, ctx string) {
	t.Helper()
	if p.NumVertexSlots() != mirror.NumVertexSlots() ||
		p.NumVertices() != mirror.NumVertices() ||
		p.NumEdges() != mirror.NumEdges() {
		t.Fatalf("%s: sizes: persistent (%d,%d,%d) vs mutable (%d,%d,%d)", ctx,
			p.NumVertexSlots(), p.NumVertices(), p.NumEdges(),
			mirror.NumVertexSlots(), mirror.NumVertices(), mirror.NumEdges())
	}
	for v := 0; v < mirror.NumVertexSlots(); v++ {
		if p.IsVertex(v) != mirror.IsVertex(v) {
			t.Fatalf("%s: IsVertex(%d): %v vs %v", ctx, v, p.IsVertex(v), mirror.IsVertex(v))
		}
		if p.Degree(v) != mirror.Degree(v) {
			t.Fatalf("%s: Degree(%d): %d vs %d", ctx, v, p.Degree(v), mirror.Degree(v))
		}
		if !reflect.DeepEqual(p.SortedNeighbors(v), mirror.SortedNeighbors(v)) {
			t.Fatalf("%s: SortedNeighbors(%d): %v vs %v", ctx, v,
				p.SortedNeighbors(v), mirror.SortedNeighbors(v))
		}
	}
	if !reflect.DeepEqual(p.Edges(), mirror.Edges()) {
		t.Fatalf("%s: edge sets differ", ctx)
	}
	pc, mc := p.Snapshot(), mirror.Snapshot()
	if !reflect.DeepEqual(pc.Off, mc.Off) || !reflect.DeepEqual(pc.Dst, mc.Dst) ||
		pc.N != mc.N || pc.M != mc.M {
		t.Fatalf("%s: CSR snapshots differ", ctx)
	}
	pl, pk := p.ConnectedComponents()
	ml, mk := mirror.ConnectedComponents()
	if pk != mk || !reflect.DeepEqual(pl, ml) {
		t.Fatalf("%s: components differ: %d vs %d", ctx, pk, mk)
	}
}

// TestPersistentMatchesMutable drives persistent and mutable graphs through
// identical random update sequences (all four kinds) and demands identical
// read-API answers, error behaviour included, after every step.
func TestPersistentMatchesMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(140) // spans the 64-vertex chunk boundary
		mirror := Gnp(n, 2.5/float64(n), rng)
		p := PersistentOf(mirror)
		assertSame(t, p, mirror, "initial")
		for step := 0; step < 40; step++ {
			p = applyRandomUpdate(t, p, mirror, rng)
			assertSame(t, p, mirror, "step")
		}
		// Error parity on a few rejected updates.
		if _, err := p.InsertEdge(0, 0); err == nil {
			t.Fatal("self loop accepted")
		}
		if _, err := p.DeleteEdge(-1, 3); err == nil {
			t.Fatal("bogus delete accepted")
		}
		if _, _, err := p.InsertVertex([]int{1, 1}); err == nil && mirror.IsVertex(1) {
			t.Fatal("duplicate neighbor accepted")
		}
		if _, err := p.DeleteVertex(p.NumVertexSlots() + 5); err == nil {
			t.Fatal("delete of non-vertex accepted")
		}
		// Mutable() round-trips the final state.
		assertSame(t, p, p.Mutable(), "mutable-roundtrip")
	}
}

// TestPersistentVersionRetention holds every produced version live across
// the whole update sequence and re-checks old versions against edge lists
// captured at their creation — path copying must never write into a
// published version. Run under -race, concurrent readers scan old versions
// while the writer goroutine keeps deriving new ones.
func TestPersistentVersionRetention(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	n := 96
	mirror := GnpConnected(n, 3.0/float64(n), rng)
	p := PersistentOf(mirror)

	type epoch struct {
		p     *Persistent
		edges []Edge
	}
	history := []epoch{{p, p.Edges()}}

	const steps = 300
	versions := make(chan *Persistent, steps)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rd := rand.New(rand.NewSource(int64(500 + r)))
			var held []*Persistent
			for v := range versions {
				held = append(held, v)
				// Re-read a random retained version while the writer mutates.
				old := held[rd.Intn(len(held))]
				deg := 0
				for u := 0; u < old.NumVertexSlots(); u++ {
					deg += old.Degree(u)
				}
				if deg != 2*old.NumEdges() {
					t.Errorf("reader %d: degree sum %d != 2m %d", r, deg, 2*old.NumEdges())
					return
				}
			}
		}(r)
	}
	for step := 0; step < steps; step++ {
		p = applyRandomUpdate(t, p, mirror, rng)
		history = append(history, epoch{p, p.Edges()})
		versions <- p
	}
	close(versions)
	wg.Wait()

	for i, ep := range history {
		if got := ep.p.Edges(); !reflect.DeepEqual(got, ep.edges) {
			t.Fatalf("version %d changed after later updates: %d edges now, %d at creation",
				i, len(got), len(ep.edges))
		}
	}
	assertSame(t, p, mirror, "final")
}
