// Package lca implements constant-time lowest-common-ancestor queries after
// near-linear preprocessing, standing in for the Schieber–Vishkin structure
// of Theorem 5/6 of the paper. The implementation is the classical reduction
// to range-minimum over the Euler tour with a sparse table: O(n log n)
// preprocessing, O(1) per query, trivially batched in parallel.
package lca

import (
	"fmt"
	"math/bits"

	"repro/internal/tree"
)

// Index answers LCA queries on a fixed tree.
type Index struct {
	t      *tree.Tree
	tour   []int
	first  []int
	depth  []int32 // depth of tour positions
	sparse [][]int32
}

// New preprocesses t for LCA queries.
func New(t *tree.Tree) *Index {
	tour, first := t.EulerTour()
	m := len(tour)
	ix := &Index{t: t, tour: tour, first: first}
	ix.depth = make([]int32, m)
	for i, v := range tour {
		ix.depth[i] = int32(t.Level(v))
	}
	levels := 1
	if m > 1 {
		levels = bits.Len(uint(m)) // floor(log2(m))+1
	}
	ix.sparse = make([][]int32, levels)
	row0 := make([]int32, m)
	for i := range row0 {
		row0[i] = int32(i)
	}
	ix.sparse[0] = row0
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		width := m - (1 << k) + 1
		if width <= 0 {
			ix.sparse = ix.sparse[:k]
			break
		}
		row := make([]int32, width)
		prev := ix.sparse[k-1]
		for i := 0; i < width; i++ {
			a, b := prev[i], prev[i+half]
			if ix.depth[a] <= ix.depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		ix.sparse[k] = row
	}
	return ix
}

// LCA returns the lowest common ancestor of u and v.
func (ix *Index) LCA(u, v int) int {
	fu, fv := ix.first[u], ix.first[v]
	if fu < 0 || fv < 0 {
		panic(fmt.Sprintf("lca: query on non-tree vertex (%d,%d)", u, v))
	}
	if fu > fv {
		fu, fv = fv, fu
	}
	k := bits.Len(uint(fv-fu+1)) - 1
	a := ix.sparse[k][fu]
	b := ix.sparse[k][fv-(1<<k)+1]
	if ix.depth[a] <= ix.depth[b] {
		return ix.tour[a]
	}
	return ix.tour[b]
}

// IsBackEdge reports whether graph edge (u,v) is a back edge w.r.t. the
// indexed tree: one endpoint is an ancestor of the other.
func (ix *Index) IsBackEdge(u, v int) bool {
	l := ix.LCA(u, v)
	return l == u || l == v
}

// OnPath reports whether x lies on the tree path between ancestor up and
// descendant down (up must be an ancestor of down).
func (ix *Index) OnPath(x, up, down int) bool {
	return ix.t.IsAncestor(up, x) && ix.t.IsAncestor(x, down)
}

// Batch answers k independent LCA queries; in the PRAM accounting this is a
// single O(log n)-depth EREW step (Theorem 6).
func (ix *Index) Batch(us, vs []int, out []int) []int {
	if len(us) != len(vs) {
		panic("lca: Batch length mismatch")
	}
	if cap(out) < len(us) {
		out = make([]int, len(us))
	}
	out = out[:len(us)]
	for i := range us {
		out[i] = ix.LCA(us[i], vs[i])
	}
	return out
}
