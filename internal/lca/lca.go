// Package lca implements constant-time lowest-common-ancestor queries after
// near-linear preprocessing, standing in for the Schieber–Vishkin structure
// of Theorem 5/6 of the paper. The implementation is the classical reduction
// to range-minimum over the Euler tour with a sparse table: O(n log n)
// preprocessing, O(1) per query, trivially batched in parallel.
//
// Preprocessing executes on the machine's worker pool when one is supplied
// (NewWith): the depth array and each sparse-table level are embarrassingly
// parallel. The pool affects wall-clock time only; the model cost of LCA
// preprocessing is charged analytically by the structures that embed an
// Index (Theorem 8's build step), never here.
package lca

import (
	"fmt"
	"math/bits"

	"repro/internal/pram"
	"repro/internal/tree"
)

// Index answers LCA queries on a fixed tree. Use New/NewWith, then Rebuild
// to re-point an existing Index at a new tree while reusing its buffers.
type Index struct {
	t      *tree.Tree
	mach   *pram.Machine // worker pool for Rebuild; nil = serial
	tour   []int
	first  []int
	depth  []int32 // depth of tour positions
	sparse [][]int32
}

// New preprocesses t for LCA queries, serially.
func New(t *tree.Tree) *Index { return NewWith(t, nil) }

// NewWith preprocesses t for LCA queries, running the table construction on
// mach's worker pool (nil mach = serial).
func NewWith(t *tree.Tree, mach *pram.Machine) *Index {
	ix := &Index{mach: mach}
	ix.Rebuild(t)
	return ix
}

// Tree returns the tree the index currently answers for — the t of the
// latest Rebuild. Owners that rebuild trees in place (ReuseTree maintainers)
// get the same pointer back across renumberings; consistency checks should
// therefore pair it with a freshness invariant of their own, the way
// dstruct.CheckSynced audits the index against D's order keys.
func (ix *Index) Tree() *tree.Tree { return ix.t }

// RebuildWith is Rebuild with a replacement worker pool, for owners whose
// machine changes across rebuilds (dstruct.D threads its build machine
// through so the embedded index never stays pinned to a retired pool).
func (ix *Index) RebuildWith(t *tree.Tree, mach *pram.Machine) {
	ix.mach = mach
	ix.Rebuild(t)
}

// Rebuild re-points the index at t, reusing the tour, depth, and
// sparse-table buffers from the previous build. The per-update hot path of
// the fully dynamic maintainer rebuilds an Index for every new DFS tree;
// reuse keeps that path allocation-light.
func (ix *Index) Rebuild(t *tree.Tree) {
	ix.t = t
	ix.tour, ix.first = t.EulerTourInto(ix.tour, ix.first)
	m := len(ix.tour)
	if cap(ix.depth) >= m {
		ix.depth = ix.depth[:m]
	} else {
		ix.depth = make([]int32, m)
	}
	ix.exec(m, func(i int) {
		ix.depth[i] = int32(t.Level(ix.tour[i]))
	})
	levels := 1
	if m > 1 {
		levels = bits.Len(uint(m)) // floor(log2(m))+1
	}
	if cap(ix.sparse) >= levels {
		ix.sparse = ix.sparse[:levels]
	} else {
		old := ix.sparse
		ix.sparse = make([][]int32, levels)
		copy(ix.sparse, old)
	}
	row0 := ix.row(0, m)
	ix.exec(m, func(i int) {
		row0[i] = int32(i)
	})
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		width := m - (1 << k) + 1
		if width <= 0 {
			ix.sparse = ix.sparse[:k]
			break
		}
		row := ix.row(k, width)
		prev := ix.sparse[k-1]
		// Level k depends only on level k-1: the levels run sequentially,
		// each level's entries fill in parallel.
		ix.exec(width, func(i int) {
			a, b := prev[i], prev[i+half]
			if ix.depth[a] <= ix.depth[b] {
				row[i] = a
			} else {
				row[i] = b
			}
		})
	}
}

// row returns sparse[k] resized to width, reusing its buffer when possible.
func (ix *Index) row(k, width int) []int32 {
	if cap(ix.sparse[k]) >= width {
		ix.sparse[k] = ix.sparse[k][:width]
	} else {
		ix.sparse[k] = make([]int32, width)
	}
	return ix.sparse[k]
}

// exec runs fn over [0,n) on the worker pool when available.
func (ix *Index) exec(n int, fn func(i int)) {
	if ix.mach != nil {
		ix.mach.Exec(n, fn)
		return
	}
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// LCA returns the lowest common ancestor of u and v.
func (ix *Index) LCA(u, v int) int {
	fu, fv := ix.first[u], ix.first[v]
	if fu < 0 || fv < 0 {
		panic(fmt.Sprintf("lca: query on non-tree vertex (%d,%d)", u, v))
	}
	if fu > fv {
		fu, fv = fv, fu
	}
	k := bits.Len(uint(fv-fu+1)) - 1
	a := ix.sparse[k][fu]
	b := ix.sparse[k][fv-(1<<k)+1]
	if ix.depth[a] <= ix.depth[b] {
		return ix.tour[a]
	}
	return ix.tour[b]
}

// IsBackEdge reports whether graph edge (u,v) is a back edge w.r.t. the
// indexed tree: one endpoint is an ancestor of the other.
func (ix *Index) IsBackEdge(u, v int) bool {
	l := ix.LCA(u, v)
	return l == u || l == v
}

// OnPath reports whether x lies on the tree path between ancestor up and
// descendant down (up must be an ancestor of down).
func (ix *Index) OnPath(x, up, down int) bool {
	return ix.t.IsAncestor(up, x) && ix.t.IsAncestor(x, down)
}

// Batch answers k independent LCA queries; in the PRAM accounting this is a
// single O(log n)-depth EREW step (Theorem 6).
func (ix *Index) Batch(us, vs []int, out []int) []int {
	if len(us) != len(vs) {
		panic("lca: Batch length mismatch")
	}
	if cap(out) < len(us) {
		out = make([]int, len(us))
	}
	out = out[:len(us)]
	for i := range us {
		out[i] = ix.LCA(us[i], vs[i])
	}
	return out
}
