package lca

import (
	"math/rand"
	"testing"

	"repro/internal/tree"
)

func randomTree(n int, rng *rand.Rand) *tree.Tree {
	parent := make([]int, n)
	parent[0] = tree.None
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return tree.MustBuild(0, parent, nil)
}

// naiveLCA walks parent pointers.
func naiveLCA(t *tree.Tree, u, v int) int {
	seen := map[int]bool{}
	for x := u; x != tree.None; x = t.Parent[x] {
		seen[x] = true
	}
	for x := v; ; x = t.Parent[x] {
		if seen[x] {
			return x
		}
	}
}

func TestLCAAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 10, 57, 200} {
		tr := randomTree(n, rng)
		ix := New(tr)
		for trial := 0; trial < 300; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := ix.LCA(u, v), naiveLCA(tr, u, v); got != want {
				t.Fatalf("n=%d LCA(%d,%d)=%d want %d", n, u, v, got, want)
			}
		}
	}
}

func TestLCAChain(t *testing.T) {
	parent := []int{tree.None, 0, 1, 2, 3}
	tr := tree.MustBuild(0, parent, nil)
	ix := New(tr)
	if ix.LCA(4, 2) != 2 {
		t.Fatalf("chain LCA(4,2)=%d", ix.LCA(4, 2))
	}
	if ix.LCA(0, 4) != 0 {
		t.Fatalf("chain LCA(0,4)=%d", ix.LCA(0, 4))
	}
	if ix.LCA(3, 3) != 3 {
		t.Fatalf("LCA(v,v)=%d", ix.LCA(3, 3))
	}
}

func TestIsBackEdgeAndOnPath(t *testing.T) {
	// Star: 0 center, leaves 1..4.
	parent := []int{tree.None, 0, 0, 0, 0}
	tr := tree.MustBuild(0, parent, nil)
	ix := New(tr)
	if !ix.IsBackEdge(0, 3) {
		t.Fatal("center-leaf should be back edge")
	}
	if ix.IsBackEdge(1, 2) {
		t.Fatal("leaf-leaf should be cross edge")
	}
	if !ix.OnPath(0, 0, 4) || !ix.OnPath(4, 0, 4) {
		t.Fatal("endpoints should be on path")
	}
	if ix.OnPath(1, 0, 4) {
		t.Fatal("sibling leaf is not on path(0,4)")
	}
}

func TestBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr := randomTree(64, rng)
	ix := New(tr)
	us := make([]int, 100)
	vs := make([]int, 100)
	for i := range us {
		us[i], vs[i] = rng.Intn(64), rng.Intn(64)
	}
	out := ix.Batch(us, vs, nil)
	for i := range out {
		if out[i] != ix.LCA(us[i], vs[i]) {
			t.Fatalf("batch[%d] mismatch", i)
		}
	}
}

func TestSingleVertexTree(t *testing.T) {
	tr := tree.MustBuild(0, []int{tree.None}, nil)
	ix := New(tr)
	if ix.LCA(0, 0) != 0 {
		t.Fatal("singleton LCA broken")
	}
}
