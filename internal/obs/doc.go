// Package obs is the serving stack's dependency-free observability core:
// lock-free latency histograms, per-update stage traces, a slowest-K trace
// ring, and a registry that lets independent subsystems (shards, the
// snapquery cache, pram machines) publish through one interface.
//
// The package imports only the standard library so every layer of the
// repository — including internal/core and internal/pram, which everything
// else depends on — can record into it without import cycles.
//
//   - Histogram is a log-bucketed (power-of-2) histogram of int64 samples
//     built from atomic counters: Record is a handful of uncontended atomic
//     adds (no locks, no allocation), cheap enough for the per-update hot
//     path. Snapshot returns an immutable, mergeable copy with
//     p50/p90/p99/max estimation.
//   - Trace is one update's stage breakdown as it flows through the serving
//     stack: mailbox wait → plan (graph mutation, D queries, LCA) →
//     reroot/engine → D maintenance (incremental Update vs rebuild) →
//     snapshot publish, plus outcome tags (incremental|rebuild|fallback,
//     SameTree, moved/removed set sizes, the PRAM depth/work charged). The
//     five stages are disjoint and sum to Total.
//   - SlowRing retains the slowest-K traces seen, with a lock-free
//     admission threshold so the common (fast-update) case never takes the
//     ring's mutex.
//   - Registry maps names to sampling functions; Snapshot evaluates them
//     all, and Handler serves the result as JSON. Source is the interface
//     subsystems implement to publish themselves under a prefix.
package obs
