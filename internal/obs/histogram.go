package obs

import (
	"encoding/json"
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets is the bucket count of a Histogram: bucket 0 holds samples
// ≤ 0, bucket i (1 ≤ i ≤ 64) holds samples v with 2^(i-1) ≤ v < 2^i.
const numBuckets = 65

// Histogram is a lock-free log-bucketed histogram of int64 samples
// (typically latencies in nanoseconds, but any non-negative magnitude —
// batch sizes, queue depths — works). The zero value is ready to use.
// Record never locks and never allocates; Snapshot is a consistent-enough
// copy for monitoring (it reads the counters without a barrier, so a
// snapshot taken concurrently with records may be mid-update by a few
// samples — each counter is itself atomic, so no torn values).
//
// A Histogram must not be copied after first use.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // 1..64
}

// Record adds one duration sample (in nanoseconds).
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one sample. The hot path is two uncontended atomic adds
// plus one load: the total count is derived from the bucket counts at
// snapshot time rather than maintained separately, and the max is only
// CASed when the sample actually exceeds it (rare for steady latencies).
func (h *Histogram) RecordValue(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Sum: h.sum.Load(),
		Max: h.max.Load(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is an immutable point-in-time copy of a Histogram. Snapshots
// merge (for cross-shard aggregation) and answer quantile estimates; they
// are plain values and may be copied freely.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	Buckets [numBuckets]uint64
}

// Merge folds o into s (counts and sums add, max takes the larger). Merging
// per-shard snapshots yields exactly the histogram a single shared
// Histogram would have recorded.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Delta returns the samples recorded between prev and s (two snapshots of
// the same histogram, prev older): counts and sums subtract bucket-wise.
// The window's true max is unrecoverable from cumulative state, so Max is
// carried over from s — quantile estimates clamp against the lifetime max,
// which can only round a window's estimate down, never up past reality.
// Snapshots taken concurrently with records may be ahead on some buckets
// and behind on others; any underflowing bucket clamps to 0.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Max: s.Max}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	for i := range s.Buckets {
		if c := s.Buckets[i]; c > prev.Buckets[i] {
			d.Buckets[i] = c - prev.Buckets[i]
			d.Count += d.Buckets[i]
		}
	}
	return d
}

// Mean returns the mean sample, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the rank-⌈q·count⌉ sample and interpolating linearly inside its
// [2^(i-1), 2^i) range; the estimate is clamped to the recorded Max (exact
// for q=1). Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if rank < cum+c {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			hi := lo << 1 // exclusive
			// Position of the rank within this bucket, in (0, 1].
			frac := float64(rank-cum+1) / float64(c)
			v := lo + int64(frac*float64(hi-lo))
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += c
	}
	return s.Max
}

// histJSON is the wire form of a snapshot: derived summary values rather
// than the raw bucket array (count/sum/max are exact; mean and the
// percentiles derived). Durations are nanoseconds.
type histJSON struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// MarshalJSON emits the summary form ({count, sum, mean, p50, p90, p99,
// max}); consumers wanting raw buckets use the struct fields directly.
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(histJSON{
		Count: s.Count,
		Sum:   s.Sum,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	})
}

// UnmarshalJSON accepts the summary form, restoring the exact fields
// (count, sum, max) and approximating the distribution by placing every
// sample in the bucket of the mean — enough for round-tripping summaries
// through JSON consumers that only re-read counts and percentile bounds.
func (s *HistSnapshot) UnmarshalJSON(b []byte) error {
	var j histJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = HistSnapshot{Count: j.Count, Sum: j.Sum, Max: j.Max}
	if j.Count > 0 {
		s.Buckets[bucketOf(int64(j.Mean))] = j.Count
	}
	return nil
}
