package obs

import (
	"encoding/json"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.RecordValue(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 || s.Max != 1000 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 5/1106/1000", s.Count, s.Sum, s.Max)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("q1 = %d, want exact max 1000", got)
	}
}

// TestHistogramQuantileBounds checks the estimation contract: each
// quantile estimate lands within the power-of-2 bucket of the true
// order statistic (and never exceeds the recorded max).
func TestHistogramQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]int64, 10_000)
	for i := range samples {
		samples[i] = int64(rng.ExpFloat64() * 50_000) // latency-shaped, ns scale
		h.RecordValue(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		truth := samples[int(q*float64(len(samples)))]
		est := s.Quantile(q)
		if est > s.Max {
			t.Fatalf("q%.3f estimate %d exceeds max %d", q, est, s.Max)
		}
		// Same bucket as the truth, or an adjacent one (interpolation can
		// cross a boundary when the rank sits at a bucket edge).
		bt, be := bucketOf(truth), bucketOf(est)
		if be < bt-1 || be > bt+1 {
			t.Fatalf("q%.3f estimate %d (bucket %d) far from true %d (bucket %d)", q, est, be, truth, bt)
		}
	}
}

func TestHistogramMergeEqualsSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var parts [4]Histogram
	var whole Histogram
	for i := 0; i < 50_000; i++ {
		v := int64(rng.Intn(1 << 20))
		parts[i%4].RecordValue(v)
		whole.RecordValue(v)
	}
	var merged HistSnapshot
	for i := range parts {
		merged.Merge(parts[i].Snapshot())
	}
	if want := whole.Snapshot(); merged != want {
		t.Fatalf("merged snapshot differs from single-histogram snapshot:\n%+v\nvs\n%+v", merged, want)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.RecordValue(int64(w*per + i))
				if i%1000 == 0 {
					_ = h.Snapshot() // concurrent sampling must be race-free
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if want := int64(workers*per - 1); s.Max != want {
		t.Fatalf("max = %d, want %d", s.Max, want)
	}
	var bucketSum uint64
	for _, c := range s.Buckets {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != s.Count || back.Sum != s.Sum || back.Max != s.Max {
		t.Fatalf("round trip lost exact fields: %+v vs %+v", back, s)
	}
	var decoded map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"count", "mean", "p50", "p90", "p99", "max"} {
		if _, ok := decoded[k]; !ok {
			t.Fatalf("JSON missing %q: %s", k, b)
		}
	}
}
