package obs

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// TenantMeter is one tenant graph's cumulative cost counters. The write
// path (the shard loop) is the single writer of the update-path fields;
// the index fields are bumped by reader goroutines when the snapshot
// analytics engine builds or patches an index for the graph. Every field
// is an atomic, so Metrics pollers sample a meter without any lock and
// without ever touching the update loop.
//
// All counters are monotonic and cumulative since the meter's creation
// (graph creation, or service open for a recovered graph) — rates are
// derived by samplers from counter deltas, never stored here.
type TenantMeter struct {
	Applied  atomic.Uint64 // updates applied
	Rejected atomic.Uint64 // updates the maintainer rejected

	// Cumulative wall-clock of the tenant's updates, split like the trace
	// stages: ApplyNanos is the whole maintainer apply time (plan + engine
	// + dmaint; rejected updates included — they did work), EngineNanos
	// and DMaintNanos its reroot-engine and D-maintenance components.
	ApplyNanos  atomic.Int64
	EngineNanos atomic.Int64
	DMaintNanos atomic.Int64

	WALBytes atomic.Uint64 // WAL frame bytes appended for this graph

	// Index work attributed by the snapshot analytics engine: fresh builds
	// vs delta patches of this graph's derived indexes, and their summed
	// wall-clock cost.
	IndexBuilds  atomic.Uint64
	IndexPatches atomic.Uint64
	IndexNanos   atomic.Int64
}

// RecordUpdate folds one update's measured cost into the meter. It must
// only be called from the graph's single writer (the shard loop): the
// update-path fields are load+store, not read-modify-write, precisely
// because single-writer counters don't need the lock-prefixed add — this
// runs on the apply hot path of every update.
func (m *TenantMeter) RecordUpdate(apply, engine, dmaint time.Duration, rejected bool) {
	if rejected {
		m.Rejected.Store(m.Rejected.Load() + 1)
	} else {
		m.Applied.Store(m.Applied.Load() + 1)
	}
	m.ApplyNanos.Store(m.ApplyNanos.Load() + int64(apply))
	m.EngineNanos.Store(m.EngineNanos.Load() + int64(engine))
	m.DMaintNanos.Store(m.DMaintNanos.Load() + int64(dmaint))
}

// RecordIndex folds one index derivation (a fresh build or a delta patch)
// into the meter. Safe to call from any goroutine.
func (m *TenantMeter) RecordIndex(patched bool, d time.Duration) {
	if patched {
		m.IndexPatches.Add(1)
	} else {
		m.IndexBuilds.Add(1)
	}
	m.IndexNanos.Add(int64(d))
}

// TenantCounters is a point-in-time sample of a TenantMeter.
type TenantCounters struct {
	Applied      uint64        `json:"applied"`
	Rejected     uint64        `json:"rejected"`
	ApplyTime    time.Duration `json:"apply_ns"`
	EngineTime   time.Duration `json:"engine_ns"`
	DMaintTime   time.Duration `json:"dmaint_ns"`
	WALBytes     uint64        `json:"wal_bytes"`
	IndexBuilds  uint64        `json:"index_builds"`
	IndexPatches uint64        `json:"index_patches"`
	IndexTime    time.Duration `json:"index_ns"`
}

// Snapshot samples every counter. Concurrent writers may land between two
// field loads; each field is itself consistent.
func (m *TenantMeter) Snapshot() TenantCounters {
	return TenantCounters{
		Applied:      m.Applied.Load(),
		Rejected:     m.Rejected.Load(),
		ApplyTime:    time.Duration(m.ApplyNanos.Load()),
		EngineTime:   time.Duration(m.EngineNanos.Load()),
		DMaintTime:   time.Duration(m.DMaintNanos.Load()),
		WALBytes:     m.WALBytes.Load(),
		IndexBuilds:  m.IndexBuilds.Load(),
		IndexPatches: m.IndexPatches.Load(),
		IndexTime:    time.Duration(m.IndexNanos.Load()),
	}
}

// SpaceSaving is the Space-Saving heavy-hitters sketch (Metwally, Agrawal,
// El Abbadi 2005) over weighted keys: it tracks at most its capacity of
// counters, and when a new key arrives at a full sketch it inherits (and
// overestimates by) the smallest tracked count. Any key whose true weight
// exceeds total/capacity is guaranteed to be tracked, so a per-shard
// sketch ranks the hottest tenants with bounded memory no matter how many
// graphs the shard has ever served.
//
// Observe and Remove must be called from one single writer (the shard
// loop — Remove rides it via the drop task); Snapshot and Len may race
// them from any goroutine. The split keeps the hot path hot: a tracked
// key's Observe is one lock-free map read plus an atomic add, while
// structural changes (insert, evict, remove) and Snapshot serialize on
// the mutex. Lock-free increments leave the min-heap stale, so the
// structural paths re-heapify first when counts moved underneath it
// (O(capacity), amortized across the evictions of a cold-key storm and
// free for a stable hot set).
type SpaceSaving struct {
	capacity int
	dirty    bool // heap order stale (counts grew lock-free); writer-owned

	mu      sync.Mutex
	entries map[string]*ssEntry
	min     ssHeap // min-heap over count: the replacement victim is the root
}

type ssEntry struct {
	key   string
	count atomic.Uint64 // estimated weight (overestimate)
	err   uint64        // maximum overestimation inherited at replacement
	pos   int           // heap index
}

// SpaceItem is one tracked key of a SpaceSaving snapshot. The true weight
// of Key is within [Count-Err, Count].
type SpaceItem struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
}

// NewSpaceSaving returns a sketch tracking up to capacity keys (minimum 1).
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity < 1 {
		capacity = 1
	}
	return &SpaceSaving{
		capacity: capacity,
		entries:  make(map[string]*ssEntry, capacity),
	}
}

// Observe adds weight to key's counter, evicting the minimum counter when
// the sketch is full and key is untracked. Tracked keys — the steady state
// of a hot tenant — take the lock-free path: no mutex, no heap fix, just
// an atomic add and a dirty mark for the next structural operation. Safe
// only because Observe/Remove share one writer goroutine: nothing mutates
// the map or the entries' keys concurrently with the unlocked read.
func (s *SpaceSaving) Observe(key string, weight uint64) {
	if weight == 0 {
		return
	}
	if e, ok := s.entries[key]; ok {
		e.count.Add(weight)
		s.dirty = true
		return
	}
	s.mu.Lock()
	if len(s.entries) < s.capacity {
		e := &ssEntry{key: key}
		e.count.Store(weight)
		s.entries[key] = e
		// A stale heap stays a stale heap: Push keeps every entry and its
		// pos consistent, and s.dirty still forces the Init before the
		// order is next relied on.
		heap.Push(&s.min, e)
		s.mu.Unlock()
		return
	}
	// Replace the minimum: the newcomer inherits its count as overestimate.
	s.reheap()
	e := s.min[0]
	delete(s.entries, e.key)
	e.err = e.count.Load()
	e.count.Add(weight)
	e.key = key
	s.entries[key] = e
	heap.Fix(&s.min, 0)
	s.mu.Unlock()
}

// reheap restores heap order after lock-free count growth. Caller holds
// the mutex (and is the writer, so no count moves during the Init).
func (s *SpaceSaving) reheap() {
	if s.dirty {
		heap.Init(&s.min)
		s.dirty = false
	}
}

// Remove forgets key (its graph was dropped), freeing the slot. Writer
// goroutine only, like Observe.
func (s *SpaceSaving) Remove(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.reheap()
		heap.Remove(&s.min, e.pos)
	}
	s.mu.Unlock()
}

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Snapshot returns every tracked key, largest estimated weight first.
func (s *SpaceSaving) Snapshot() []SpaceItem {
	s.mu.Lock()
	out := make([]SpaceItem, len(s.min))
	for i, e := range s.min {
		out[i] = SpaceItem{Key: e.key, Count: e.count.Load(), Err: e.err}
	}
	s.mu.Unlock()
	// Heap order is only a partial order; sort descending for consumers.
	sortSpaceItems(out)
	return out
}

func sortSpaceItems(items []SpaceItem) {
	// Insertion sort: snapshots are small (≤ capacity) and mostly sorted.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && less(items[j-1], items[j]); j-- {
			items[j-1], items[j] = items[j], items[j-1]
		}
	}
}

func less(a, b SpaceItem) bool {
	if a.Count != b.Count {
		return a.Count < b.Count
	}
	return a.Key > b.Key // stable, deterministic order among ties
}

type ssHeap []*ssEntry

func (h ssHeap) Len() int           { return len(h) }
func (h ssHeap) Less(i, j int) bool { return h[i].count.Load() < h[j].count.Load() }
func (h ssHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].pos = i; h[j].pos = j }
func (h *ssHeap) Push(x any)        { e := x.(*ssEntry); e.pos = len(*h); *h = append(*h, e) }
func (h *ssHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

var _ heap.Interface = (*ssHeap)(nil)
