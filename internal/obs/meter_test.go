package obs

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestSpaceSavingExact: below capacity the sketch is an exact weighted
// counter — every key tracked, zero error, descending order.
func TestSpaceSavingExact(t *testing.T) {
	s := NewSpaceSaving(8)
	weights := map[string]uint64{"a": 5, "b": 30, "c": 1, "d": 12}
	for k, w := range weights {
		for i := uint64(0); i < w; i++ {
			s.Observe(k, 1)
		}
	}
	items := s.Snapshot()
	if len(items) != len(weights) {
		t.Fatalf("tracked %d keys, want %d", len(items), len(weights))
	}
	want := []string{"b", "d", "a", "c"}
	for i, it := range items {
		if it.Key != want[i] {
			t.Fatalf("rank %d = %q, want %q (items %v)", i, it.Key, want[i], items)
		}
		if it.Count != weights[it.Key] || it.Err != 0 {
			t.Fatalf("%q: count %d err %d, want %d err 0", it.Key, it.Count, it.Err, weights[it.Key])
		}
	}
}

// TestSpaceSavingHeavyHitter: under heavy skew with far more keys than
// capacity, the heavy hitters survive at the top with bounded error.
func TestSpaceSavingHeavyHitter(t *testing.T) {
	const capacity = 16
	s := NewSpaceSaving(capacity)
	rng := rand.New(rand.NewSource(7))
	var total uint64
	// Two heavy keys inside a stream of 4000 distinct light keys.
	for i := 0; i < 40000; i++ {
		var key string
		var w uint64
		switch {
		case i%3 == 0:
			key, w = "hot-1", 100
		case i%7 == 0:
			key, w = "hot-2", 60
		default:
			key, w = fmt.Sprintf("cold-%d", rng.Intn(4000)), 1
		}
		s.Observe(key, w)
		total += w
	}
	items := s.Snapshot()
	if len(items) > capacity {
		t.Fatalf("tracked %d keys, capacity %d", len(items), capacity)
	}
	if items[0].Key != "hot-1" || items[1].Key != "hot-2" {
		t.Fatalf("top-2 = %q, %q, want hot-1, hot-2", items[0].Key, items[1].Key)
	}
	for _, it := range items {
		if it.Count < it.Err {
			t.Fatalf("%q: count %d < err %d", it.Key, it.Count, it.Err)
		}
		// Space-Saving guarantee: every counter's overestimation is at most
		// total/capacity.
		if it.Err > total/capacity {
			t.Fatalf("%q: err %d exceeds total/capacity = %d", it.Key, it.Err, total/capacity)
		}
	}
}

// TestSpaceSavingRemove frees a slot so the next new key enters exactly.
func TestSpaceSavingRemove(t *testing.T) {
	s := NewSpaceSaving(2)
	s.Observe("a", 10)
	s.Observe("b", 20)
	s.Remove("a")
	if s.Len() != 1 {
		t.Fatalf("len after remove = %d, want 1", s.Len())
	}
	s.Observe("c", 1)
	for _, it := range s.Snapshot() {
		if it.Key == "c" && it.Err != 0 {
			t.Fatalf("c entered a freed slot with err %d, want 0", it.Err)
		}
	}
	s.Remove("never-tracked") // must not panic
}

// TestSpaceSavingConcurrentSnapshot races the single writer (Observe and
// Remove, as on a shard loop) against concurrent Snapshot/Len readers
// (run under -race in CI).
func TestSpaceSavingConcurrentSnapshot(t *testing.T) {
	s := NewSpaceSaving(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				s.Observe(fmt.Sprintf("k%d", i%20), uint64(i%5+1))
				if i%1000 == 999 {
					s.Remove("k3")
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		items := s.Snapshot()
		for j := 1; j < len(items); j++ {
			if items[j-1].Count < items[j].Count {
				t.Fatalf("snapshot not descending at %d: %v", j, items)
			}
		}
		_ = s.Len()
	}
	close(stop)
	wg.Wait()
}

// TestTenantMeterSnapshot pins the record/snapshot arithmetic.
func TestTenantMeterSnapshot(t *testing.T) {
	var m TenantMeter
	m.RecordUpdate(100*time.Microsecond, 60*time.Microsecond, 20*time.Microsecond, false)
	m.RecordUpdate(50*time.Microsecond, 10*time.Microsecond, 5*time.Microsecond, true)
	m.RecordIndex(false, time.Millisecond)
	m.RecordIndex(true, 100*time.Microsecond)
	m.WALBytes.Add(64)
	c := m.Snapshot()
	if c.Applied != 1 || c.Rejected != 1 {
		t.Fatalf("applied %d rejected %d, want 1/1", c.Applied, c.Rejected)
	}
	if c.ApplyTime != 150*time.Microsecond || c.EngineTime != 70*time.Microsecond || c.DMaintTime != 25*time.Microsecond {
		t.Fatalf("times %v/%v/%v", c.ApplyTime, c.EngineTime, c.DMaintTime)
	}
	if c.IndexBuilds != 1 || c.IndexPatches != 1 || c.IndexTime != 1100*time.Microsecond {
		t.Fatalf("index %d/%d in %v", c.IndexBuilds, c.IndexPatches, c.IndexTime)
	}
	if c.WALBytes != 64 {
		t.Fatalf("wal bytes %d", c.WALBytes)
	}
}
