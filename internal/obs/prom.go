package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this package writes.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromLabel is one name="value" pair of a sample line.
type PromLabel struct {
	Name  string
	Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// v0.0.4 using only the standard library. It enforces the format's
// naming rules as it writes: every family name and label name is
// validated, a family may be declared only once, and samples may only be
// written for a declared family — violations are recorded as the first
// error (Err) and the offending output suppressed, so a bad metric name
// can never reach a scraper as unparseable text.
//
// Histograms are written natively: HistSnapshot's power-of-2 buckets map
// directly onto cumulative `le` buckets.
type PromWriter struct {
	w        io.Writer
	families map[string]string // name → type
	family   string            // family currently open for samples
	ftype    string
	err      error
}

// NewPromWriter returns a writer emitting to w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, families: make(map[string]string)}
}

// Err returns the first naming/IO error encountered, nil when the output
// so far is a valid exposition.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Family declares a metric family (typ is "counter", "gauge" or
// "histogram") and opens it for samples, writing its # HELP and # TYPE
// header lines. Counter family names must end in "_total" per convention;
// histogram families must not (the writer appends _bucket/_sum/_count).
func (p *PromWriter) Family(name, typ, help string) {
	if !ValidPromName(name) {
		p.fail(fmt.Errorf("obs: invalid prometheus metric name %q", name))
		return
	}
	if _, dup := p.families[name]; dup {
		p.fail(fmt.Errorf("obs: duplicate prometheus metric family %q", name))
		return
	}
	switch typ {
	case "counter", "gauge", "histogram":
	default:
		p.fail(fmt.Errorf("obs: metric family %q: unknown type %q", name, typ))
		return
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		p.fail(fmt.Errorf("obs: counter family %q must end in _total", name))
		return
	}
	if typ == "histogram" && strings.HasSuffix(name, "_total") {
		p.fail(fmt.Errorf("obs: histogram family %q must not end in _total", name))
		return
	}
	p.families[name] = typ
	p.family, p.ftype = name, typ
	if help != "" {
		fmt.Fprintf(p.w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// Value writes one sample line for the open counter or gauge family.
func (p *PromWriter) Value(v float64, labels ...PromLabel) {
	if p.family == "" || p.ftype == "histogram" {
		p.fail(fmt.Errorf("obs: Value outside an open counter/gauge family"))
		return
	}
	p.sample(p.family, labels, nil, v)
}

// Histogram writes the open histogram family's _bucket/_sum/_count series
// for one HistSnapshot. scale converts recorded sample units to exposition
// units (1e-9 for nanosecond samples exposed as seconds; 1 for unitless).
// Empty buckets are elided — cumulative counts keep the series exact — and
// the mandatory +Inf bucket always carries the total count.
func (p *PromWriter) Histogram(s HistSnapshot, scale float64, labels ...PromLabel) {
	if p.family == "" || p.ftype != "histogram" {
		p.fail(fmt.Errorf("obs: Histogram outside an open histogram family"))
		return
	}
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		// Bucket 0 holds samples ≤ 0; bucket i ≥ 1 holds [2^(i-1), 2^i),
		// so its inclusive upper bound for `le` purposes is 2^i.
		le := 0.0
		if i > 0 {
			le = math.Ldexp(1, i) * scale
		}
		p.sample(p.family+"_bucket", labels, &PromLabel{Name: "le", Value: promFloat(le)}, float64(cum))
	}
	p.sample(p.family+"_bucket", labels, &PromLabel{Name: "le", Value: "+Inf"}, float64(s.Count))
	p.sample(p.family+"_sum", labels, nil, float64(s.Sum)*scale)
	p.sample(p.family+"_count", labels, nil, float64(s.Count))
}

// sample writes one `name{labels} value` line. le, when non-nil, is
// appended after the caller's labels.
func (p *PromWriter) sample(name string, labels []PromLabel, le *PromLabel, v float64) {
	var sb strings.Builder
	sb.WriteString(name)
	nl := len(labels)
	if le != nil {
		nl++
	}
	if nl > 0 {
		sb.WriteByte('{')
		for i := 0; i <= len(labels); i++ {
			var l PromLabel
			if i < len(labels) {
				l = labels[i]
			} else if le != nil {
				l = *le
			} else {
				break
			}
			if !ValidPromLabelName(l.Name) {
				p.fail(fmt.Errorf("obs: metric %q: invalid label name %q", name, l.Name))
				return
			}
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(promFloat(v))
	sb.WriteByte('\n')
	if _, err := io.WriteString(p.w, sb.String()); err != nil {
		p.fail(err)
	}
}

// promFloat renders v the way Prometheus expects (shortest round-trip
// form; integral values without an exponent where possible).
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidPromName reports whether s is a valid Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidPromLabelName reports whether s is a valid label name:
// [a-zA-Z_][a-zA-Z0-9_]* and not double-underscore reserved.
func ValidPromLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the text format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
