package obs

import (
	"strings"
	"testing"
)

func TestValidPromName(t *testing.T) {
	for _, ok := range []string{"a", "dfs_updates_total", "A9_b:c", "_x"} {
		if !ValidPromName(ok) {
			t.Errorf("ValidPromName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "9x", "a-b", "a.b", "a b", "héllo"} {
		if ValidPromName(bad) {
			t.Errorf("ValidPromName(%q) = true", bad)
		}
	}
	for _, ok := range []string{"shard", "le", "_a", "a_9"} {
		if !ValidPromLabelName(ok) {
			t.Errorf("ValidPromLabelName(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "__reserved", "9a", "a-b", "a:b"} {
		if ValidPromLabelName(bad) {
			t.Errorf("ValidPromLabelName(%q) = true", bad)
		}
	}
}

func TestPromWriterScalars(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("dfs_updates_total", "counter", "updates applied")
	p.Value(42, PromLabel{"shard", "0"})
	p.Value(7, PromLabel{"shard", "1"})
	p.Family("dfs_queue_depth", "gauge", `depth "now"`)
	p.Value(3.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dfs_updates_total updates applied
# TYPE dfs_updates_total counter
dfs_updates_total{shard="0"} 42
dfs_updates_total{shard="1"} 7
# HELP dfs_queue_depth depth "now"
# TYPE dfs_queue_depth gauge
dfs_queue_depth 3.5
`
	if sb.String() != want {
		t.Fatalf("output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	var h Histogram
	h.RecordValue(1000) // bucket 10: [512,1024) → le 1024
	h.RecordValue(1000)
	h.RecordValue(1_000_000) // bucket 20 → le 1048576
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("dfs_apply_seconds", "histogram", "")
	p.Histogram(h.Snapshot(), 1e-9)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dfs_apply_seconds histogram
dfs_apply_seconds_bucket{le="1.024e-06"} 2
dfs_apply_seconds_bucket{le="0.001048576"} 3
dfs_apply_seconds_bucket{le="+Inf"} 3
dfs_apply_seconds_sum 0.001002
dfs_apply_seconds_count 3
`
	if sb.String() != want {
		t.Fatalf("output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestPromWriterRejectsBadMetrics(t *testing.T) {
	check := func(name string, f func(p *PromWriter)) {
		t.Helper()
		p := NewPromWriter(&strings.Builder{})
		f(p)
		if p.Err() == nil {
			t.Errorf("%s: no error", name)
		}
	}
	check("bad name", func(p *PromWriter) { p.Family("bad-name", "gauge", "") })
	check("dup family", func(p *PromWriter) {
		p.Family("x", "gauge", "")
		p.Family("x", "gauge", "")
	})
	check("counter without _total", func(p *PromWriter) { p.Family("x", "counter", "") })
	check("histogram with _total", func(p *PromWriter) { p.Family("x_total", "histogram", "") })
	check("unknown type", func(p *PromWriter) { p.Family("x", "summary", "") })
	check("value without family", func(p *PromWriter) { p.Value(1) })
	check("value into histogram", func(p *PromWriter) {
		p.Family("h", "histogram", "")
		p.Value(1)
	})
	check("hist into gauge", func(p *PromWriter) {
		p.Family("g", "gauge", "")
		p.Histogram(HistSnapshot{}, 1)
	})
	check("bad label", func(p *PromWriter) {
		p.Family("g", "gauge", "")
		p.Value(1, PromLabel{"bad-label", "v"})
	})
}

func TestPromLabelEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("g", "gauge", "")
	p.Value(1, PromLabel{"graph", "a\"b\\c\nd"})
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if want := `g{graph="a\"b\\c\nd"} 1` + "\n"; !strings.HasSuffix(sb.String(), want) {
		t.Fatalf("output %q lacks %q", sb.String(), want)
	}
}
