package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Var samples one published value. Implementations must be safe to call
// concurrently with the subsystem they observe (the convention everywhere
// in this repository: atomics or read locks, never the update loops'
// mutexes).
type Var func() any

// Source is implemented by subsystems that publish themselves into a
// Registry under a caller-chosen prefix (e.g. "shard3.pram."). It is how
// shards, the snapquery cache and pram machines all expose state through
// one interface.
type Source interface {
	ObsPublish(r *Registry, prefix string)
}

// Registry maps dotted names to sampling functions. Publication happens at
// setup time; Snapshot (and the HTTP handler) evaluate every Var at call
// time, so the registry itself holds no stale values.
type Registry struct {
	mu   sync.RWMutex
	vars map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]Var)}
}

// Publish registers v under name, replacing any previous registration.
func (r *Registry) Publish(name string, v Var) {
	r.mu.Lock()
	r.vars[name] = v
	r.mu.Unlock()
}

// Gauge registers an int64 sampling function.
func (r *Registry) Gauge(name string, f func() int64) {
	r.Publish(name, func() any { return f() })
}

// Snapshot evaluates every registered Var.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	vars := make(map[string]Var, len(r.vars))
	for name, v := range r.vars {
		vars[name] = v
	}
	r.mu.RUnlock()
	out := make(map[string]any, len(vars))
	for name, v := range vars {
		out[name] = v()
	}
	return out
}

// Handler serves the registry snapshot as JSON (keys sorted by
// encoding/json's map ordering).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
