package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

type fakeSource struct{ n atomic.Int64 }

func (f *fakeSource) ObsPublish(r *Registry, prefix string) {
	r.Gauge(prefix+"n", f.n.Load)
}

func TestRegistrySnapshotAndHandler(t *testing.T) {
	r := NewRegistry()
	var live atomic.Int64
	r.Gauge("live", live.Load)
	r.Publish("label", func() any { return "hello" })
	src := &fakeSource{}
	src.ObsPublish(r, "sub.")

	live.Store(7)
	src.n.Store(42)
	snap := r.Snapshot()
	if snap["live"] != int64(7) || snap["sub.n"] != int64(42) || snap["label"] != "hello" {
		t.Fatalf("snapshot = %v", snap)
	}

	// Vars sample at call time: a later snapshot sees the new value.
	live.Store(8)
	if r.Snapshot()["live"] != int64(8) {
		t.Fatal("registry served a stale value")
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler body not JSON: %v\n%s", err, rec.Body.String())
	}
	if decoded["live"] != float64(8) {
		t.Fatalf("handler served %v", decoded["live"])
	}
}
