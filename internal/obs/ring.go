package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultSlowRingSize is the slowest-K retention used when a SlowRing is
// created with a non-positive capacity.
const DefaultSlowRingSize = 8

// SlowRing retains the slowest K traces offered to it, for post-hoc
// inspection of tail latency ("why was that p99 update slow?"). Offer's
// fast path is one atomic load: once the ring is full, traces faster than
// the current slowest-K floor are dropped without taking the mutex, so a
// shard loop applying fast updates pays ~nothing.
type SlowRing struct {
	capacity int
	floor    atomic.Int64 // admission threshold: min Total once full

	mu     sync.Mutex
	traces []Trace
}

// NewSlowRing creates a ring retaining the slowest capacity traces
// (DefaultSlowRingSize when capacity <= 0).
func NewSlowRing(capacity int) *SlowRing {
	if capacity <= 0 {
		capacity = DefaultSlowRingSize
	}
	return &SlowRing{capacity: capacity, traces: make([]Trace, 0, capacity)}
}

// Capacity returns the ring's retention.
func (r *SlowRing) Capacity() int { return r.capacity }

// Offer submits t for retention; it is admitted iff the ring has room or t
// is slower than the current slowest-K floor. t is copied on admission, so
// the caller may reuse its Trace.
func (r *SlowRing) Offer(t *Trace) {
	if f := r.floor.Load(); f > 0 && int64(t.Total) <= f {
		return // full, and t is faster than everything retained
	}
	r.mu.Lock()
	if len(r.traces) < r.capacity {
		r.traces = append(r.traces, *t)
		if len(r.traces) == r.capacity {
			r.storeFloor()
		}
		r.mu.Unlock()
		return
	}
	// Replace the fastest retained trace, if t is slower.
	minI := 0
	for i := 1; i < len(r.traces); i++ {
		if r.traces[i].Total < r.traces[minI].Total {
			minI = i
		}
	}
	if t.Total > r.traces[minI].Total {
		r.traces[minI] = *t
		r.storeFloor()
	}
	r.mu.Unlock()
}

// storeFloor recomputes the admission threshold; callers hold r.mu.
func (r *SlowRing) storeFloor() {
	min := r.traces[0].Total
	for _, tr := range r.traces[1:] {
		if tr.Total < min {
			min = tr.Total
		}
	}
	r.floor.Store(int64(min))
}

// Snapshot returns the retained traces, slowest first.
func (r *SlowRing) Snapshot() []Trace {
	r.mu.Lock()
	out := append([]Trace(nil), r.traces...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
