package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewSlowRing(4)
	rng := rand.New(rand.NewSource(11))
	var all []time.Duration
	for i := 0; i < 1000; i++ {
		d := time.Duration(rng.Intn(1_000_000)) * time.Nanosecond
		all = append(all, d)
		r.Offer(&Trace{Seq: uint64(i), Total: d})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want 4", len(got))
	}
	// The retained set must be exactly the 4 slowest offers.
	want := append([]time.Duration(nil), all...)
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if want[j] > want[i] {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	for i, tr := range got {
		if tr.Total != want[i] {
			t.Fatalf("rank %d: retained %v, want %v", i, tr.Total, want[i])
		}
	}
	if got[0].Total < got[1].Total {
		t.Fatal("snapshot not sorted slowest-first")
	}
}

func TestSlowRingFastPathThreshold(t *testing.T) {
	r := NewSlowRing(2)
	r.Offer(&Trace{Total: 100})
	r.Offer(&Trace{Total: 200})
	if f := r.floor.Load(); f != 100 {
		t.Fatalf("floor = %d, want 100", f)
	}
	r.Offer(&Trace{Total: 50}) // below floor: dropped on the fast path
	r.Offer(&Trace{Total: 150})
	got := r.Snapshot()
	if got[0].Total != 200 || got[1].Total != 150 {
		t.Fatalf("retained %v/%v, want 200/150", got[0].Total, got[1].Total)
	}
	if f := r.floor.Load(); f != 150 {
		t.Fatalf("floor = %d, want 150", f)
	}
}

func TestSlowRingConcurrent(t *testing.T) {
	r := NewSlowRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Offer(&Trace{Total: time.Duration(w*5000 + i)})
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	// The slowest offer overall must have been retained.
	if got[0].Total != time.Duration(8*5000-1) {
		t.Fatalf("slowest retained = %v, want %v", got[0].Total, time.Duration(8*5000-1))
	}
}

func TestTraceStageSum(t *testing.T) {
	tr := Trace{Wait: 1, Plan: 2, Engine: 3, DMaint: 4, Publish: 5, Total: 15}
	if tr.StageSum() != 15 {
		t.Fatalf("stage sum %v, want 15", tr.StageSum())
	}
	spans := tr.Stages()
	if len(spans) != len(StageNames) {
		t.Fatalf("stages %d, want %d", len(spans), len(StageNames))
	}
	for i, sp := range spans {
		if sp.Stage != StageNames[i] {
			t.Fatalf("stage %d named %q, want %q", i, sp.Stage, StageNames[i])
		}
	}
}
