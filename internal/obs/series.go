package obs

import (
	"sync"
	"time"
)

// SeriesPoint is one sample of a SeriesRing: a timestamp plus one int64
// value per field, in the ring's field order.
type SeriesPoint struct {
	At     time.Time `json:"at"`
	Values []int64   `json:"v"`
}

// SeriesRing is a fixed-capacity ring buffer of multi-field time-series
// points: a background sampler Adds one point per interval and the ring
// retains the newest capacity of them, giving every scraper the same
// window-aligned history regardless of when (or how often) it polls. Adds
// reuse the evicted slot's value slice, so a steady-state sampler
// allocates nothing.
type SeriesRing struct {
	fields []string

	mu   sync.Mutex
	buf  []SeriesPoint
	next int // slot the next Add writes
	n    int // points currently held (≤ cap)
}

// NewSeriesRing returns a ring retaining the newest capacity points
// (minimum 2 — a single point supports no windowed derivation) of
// len(fields) values each.
func NewSeriesRing(fields []string, capacity int) *SeriesRing {
	if capacity < 2 {
		capacity = 2
	}
	return &SeriesRing{
		fields: append([]string(nil), fields...),
		buf:    make([]SeriesPoint, capacity),
	}
}

// Fields returns the ring's field names, in value order.
func (r *SeriesRing) Fields() []string { return r.fields }

// Capacity returns the maximum number of retained points.
func (r *SeriesRing) Capacity() int { return len(r.buf) }

// Add appends one point, evicting the oldest when full. len(values) must
// equal len(Fields()).
func (r *SeriesRing) Add(at time.Time, values ...int64) {
	if len(values) != len(r.fields) {
		panic("obs: SeriesRing.Add: value count does not match fields")
	}
	r.mu.Lock()
	p := &r.buf[r.next]
	p.At = at
	if cap(p.Values) < len(values) {
		p.Values = make([]int64, len(values))
	}
	p.Values = p.Values[:len(values)]
	copy(p.Values, values)
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of retained points.
func (r *SeriesRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot copies the retained points, oldest first.
func (r *SeriesRing) Snapshot() []SeriesPoint {
	r.mu.Lock()
	out := make([]SeriesPoint, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		p := r.buf[(start+i)%len(r.buf)]
		out = append(out, SeriesPoint{At: p.At, Values: append([]int64(nil), p.Values...)})
	}
	r.mu.Unlock()
	return out
}

// LastTwo returns the two newest points (prev, last) and how many of them
// exist (0, 1 or 2). With n==1 only last is valid. The returned value
// slices are copies.
func (r *SeriesRing) LastTwo() (prev, last SeriesPoint, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return prev, last, 0
	}
	li := r.next - 1
	if li < 0 {
		li += len(r.buf)
	}
	p := r.buf[li]
	last = SeriesPoint{At: p.At, Values: append([]int64(nil), p.Values...)}
	if r.n == 1 {
		return prev, last, 1
	}
	pi := li - 1
	if pi < 0 {
		pi += len(r.buf)
	}
	p = r.buf[pi]
	prev = SeriesPoint{At: p.At, Values: append([]int64(nil), p.Values...)}
	return prev, last, 2
}
