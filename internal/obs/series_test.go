package obs

import (
	"testing"
	"time"
)

// TestSeriesRingWrap pins ordering and eviction across wrap-around.
func TestSeriesRingWrap(t *testing.T) {
	r := NewSeriesRing([]string{"a", "b"}, 4)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		r.Add(t0.Add(time.Duration(i)*time.Second), int64(i), int64(i*10))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	pts := r.Snapshot()
	for i, p := range pts {
		want := int64(6 + i) // newest 4 of 0..9
		if p.Values[0] != want || p.Values[1] != want*10 {
			t.Fatalf("point %d = %v, want [%d %d]", i, p.Values, want, want*10)
		}
		if !p.At.Equal(t0.Add(time.Duration(want) * time.Second)) {
			t.Fatalf("point %d at %v", i, p.At)
		}
	}
	prev, last, n := r.LastTwo()
	if n != 2 || last.Values[0] != 9 || prev.Values[0] != 8 {
		t.Fatalf("LastTwo = %v, %v, %d", prev.Values, last.Values, n)
	}
}

// TestSeriesRingPartial covers the not-yet-full states LastTwo must report.
func TestSeriesRingPartial(t *testing.T) {
	r := NewSeriesRing([]string{"x"}, 8)
	if _, _, n := r.LastTwo(); n != 0 {
		t.Fatalf("empty ring LastTwo n = %d", n)
	}
	r.Add(time.Unix(1, 0), 7)
	if _, last, n := r.LastTwo(); n != 1 || last.Values[0] != 7 {
		t.Fatalf("one-point LastTwo = %v, %d", last.Values, n)
	}
	if got := len(r.Snapshot()); got != 1 {
		t.Fatalf("snapshot len %d", got)
	}
}

// TestSeriesRingSnapshotIsolation: mutating a snapshot must not reach the
// ring's backing storage (Add reuses slots).
func TestSeriesRingSnapshotIsolation(t *testing.T) {
	r := NewSeriesRing([]string{"x"}, 2)
	r.Add(time.Unix(1, 0), 1)
	snap := r.Snapshot()
	snap[0].Values[0] = 99
	if got := r.Snapshot()[0].Values[0]; got != 1 {
		t.Fatalf("ring value mutated through snapshot: %d", got)
	}
}

// TestHistSnapshotDelta pins the windowed subtraction used by the sampler.
func TestHistSnapshotDelta(t *testing.T) {
	var h Histogram
	h.RecordValue(100)
	h.RecordValue(2000)
	prev := h.Snapshot()
	h.RecordValue(2000)
	h.RecordValue(50000)
	cur := h.Snapshot()
	d := cur.Delta(prev)
	if d.Count != 2 {
		t.Fatalf("delta count %d, want 2", d.Count)
	}
	if d.Sum != 52000 {
		t.Fatalf("delta sum %d, want 52000", d.Sum)
	}
	if d.Buckets[bucketOf(2000)] != 1 || d.Buckets[bucketOf(50000)] != 1 {
		t.Fatalf("delta buckets wrong: %v", d.Buckets)
	}
	if d.Max != cur.Max {
		t.Fatalf("delta max %d, want lifetime max %d", d.Max, cur.Max)
	}
	// Identical snapshots: empty window.
	if e := cur.Delta(cur); e.Count != 0 || e.Sum != 0 {
		t.Fatalf("self-delta not empty: %+v", e)
	}
}
