package obs

import (
	"time"
)

// Trace is one update's journey through the serving stack, recorded by the
// shard loop (wait, plan remainder, publish, totals, tags from the machine)
// and the core maintainer (engine and D-maintenance spans, outcome tags).
// The five stage durations are disjoint and sum to Total:
//
//	Wait    — mailbox wait: submit → shard-loop receive
//	Plan    — maintainer apply time outside the two spans below: graph
//	          mutation, D patches, LCA and deepest-edge (D) queries
//	Engine  — reroot engine time: Reroot scheduling plus tree rebuild
//	DMaint  — D maintenance: incremental D.Update or ground-up rebuild
//	Publish — snapshot publication (delta composition + pointer install)
//
// A Trace is a plain value while being filled (the shard loop keeps it on
// the stack); the slow ring copies it on admission.
type Trace struct {
	Graph string    `json:"graph"`
	Shard int       `json:"shard"`
	Seq   uint64    `json:"seq"` // shard's applied-update ordinal
	Kind  string    `json:"kind"`
	Start time.Time `json:"start"`

	Total   time.Duration `json:"total"`
	Wait    time.Duration `json:"wait"`
	Plan    time.Duration `json:"plan"`
	Engine  time.Duration `json:"engine"`
	DMaint  time.Duration `json:"dmaint"`
	Publish time.Duration `json:"publish"`

	// Outcome tags the D-maintenance path the update took: "incremental"
	// (D.Update repositioned only moved entries), "fallback" (D.Update
	// declined — churn past the ratio threshold — and rebuilt), "rebuild"
	// (forced ground-up rebuild: FullRebuildD mode or error recovery),
	// "pinned" (fault-tolerant mode, D untouched), or "rejected" (the
	// maintainer returned an error).
	Outcome  string `json:"outcome"`
	SameTree bool   `json:"same_tree"`         // back-edge update: tree object unchanged
	Moved    int    `json:"moved"`             // vertices whose root path changed
	Removed  int    `json:"removed"`           // vertices deleted from the tree
	Batch    int    `json:"batch"`             // entries in the update's batch round (1 = plain Apply)
	Depth    int64  `json:"pram_depth"`        // PRAM model depth charged for this update
	Work     int64  `json:"pram_work"`         // PRAM model work charged for this update
	Err      string `json:"error,omitempty"`   // rejection error, when Outcome == "rejected"
	Version  uint64 `json:"version,omitempty"` // snapshot version published (0 when rejected)
}

// Span is one named stage of a trace.
type Span struct {
	Stage string        `json:"stage"`
	D     time.Duration `json:"d"`
}

// StageNames lists the trace stages in pipeline order.
var StageNames = [5]string{"wait", "plan", "engine", "dmaint", "publish"}

// Stages returns the stage breakdown in pipeline order.
func (t *Trace) Stages() []Span {
	return []Span{
		{"wait", t.Wait},
		{"plan", t.Plan},
		{"engine", t.Engine},
		{"dmaint", t.DMaint},
		{"publish", t.Publish},
	}
}

// StageSum returns the sum of the five stage durations (equal to Total up
// to the clock reads between stages).
func (t *Trace) StageSum() time.Duration {
	return t.Wait + t.Plan + t.Engine + t.DMaint + t.Publish
}
