// Package pram provides the EREW PRAM cost model the paper's theorems are
// stated in, realized as an accounting machine plus parallel primitives.
//
// Real shared-memory hosts are not PRAMs, so the package separates two
// concerns:
//
//   - Execution: primitives run with a bounded goroutine pool so wall-clock
//     benchmarks see genuine parallelism on large inputs.
//   - Accounting: every primitive analytically charges the model time
//     ("depth", parallel steps) and work (total operations) that the paper's
//     theorems charge for it on an EREW PRAM with the machine's processor
//     budget. Benchmarks report both, so the O(log³ n) shape of Theorem 1 is
//     observable independent of host constant factors.
//
// The split has two kinds of entry points:
//
//   - Charged primitives (ParFor, ParDo, Reduce, SortBy, ...) do both:
//     they execute on the worker pool and record the model cost of the
//     matching EREW primitive.
//   - Execution-only primitives (Exec, ExecSharded) run on the worker pool
//     but charge nothing. They exist for callers whose model cost is
//     accounted analytically elsewhere — e.g. one batch of independent
//     D-queries is charged as a single O(log n)-depth step at the call site
//     (Theorems 6 and 8), while its real execution fans the sources out over
//     the pool. Using a charged primitive there would double-count.
//
// Charging conventions (matching Section 5 of the paper):
//
//   - ParFor over n unit-work items: depth ⌈n/P⌉, work n.
//   - Reduce / min / max over n items: depth ⌈log₂ n⌉ (+⌈n/P⌉ when n > P), work n.
//   - PrefixSum: same as Reduce.
//   - Sort of n keys: depth ⌈log₂ n⌉, work n·⌈log₂ n⌉ (Cole's parallel merge
//     sort, Theorem 7; execution uses a conventional parallel merge sort,
//     which only affects constants, not the recorded model costs).
//   - A batch of k independent D-queries / LCA queries: depth ⌈log₂ n⌉,
//     work k·⌈log₂ n⌉ (Theorems 6 and 8).
package pram

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Machine is an EREW PRAM cost accountant with a processor budget. The zero
// value is not usable; use NewMachine.
type Machine struct {
	procs   atomic.Int64 // model processor budget (n or m in the theorems)
	workers int          // real goroutine parallelism (fixed at creation)

	depth atomic.Int64
	work  atomic.Int64
	steps atomic.Int64 // number of charged primitive invocations
}

// NewMachine returns a machine with the given model processor budget.
// procs <= 0 defaults to 1. The worker-pool width defaults to GOMAXPROCS.
func NewMachine(procs int) *Machine {
	return NewMachineWithWorkers(procs, runtime.GOMAXPROCS(0))
}

// NewMachineWithWorkers is NewMachine with an explicit worker-pool width,
// for differential tests and benchmarks that pin the execution parallelism
// independently of the host's core count. workers <= 0 defaults to 1.
func NewMachineWithWorkers(procs, workers int) *Machine {
	if procs <= 0 {
		procs = 1
	}
	if workers < 1 {
		workers = 1
	}
	m := &Machine{workers: workers}
	m.procs.Store(int64(procs))
	return m
}

// Procs returns the model processor budget.
func (m *Machine) Procs() int { return int(m.procs.Load()) }

// SetProcs changes the model processor budget (e.g. m processors for
// preprocessing, n for updates, per Theorem 1). It is safe to call while
// worker goroutines are charging against the machine: the budget is stored
// atomically, and primitives already in flight charge under whichever budget
// they observed.
func (m *Machine) SetProcs(p int) {
	if p <= 0 {
		p = 1
	}
	m.procs.Store(int64(p))
}

// Workers returns the machine's real goroutine parallelism (the worker-pool
// width used by the execution half of every primitive).
func (m *Machine) Workers() int { return m.workers }

// Depth returns the accumulated model parallel time.
func (m *Machine) Depth() int64 { return m.depth.Load() }

// Work returns the accumulated model work (total operations).
func (m *Machine) Work() int64 { return m.work.Load() }

// Steps returns the number of charged primitive invocations.
func (m *Machine) Steps() int64 { return m.steps.Load() }

// Reset zeroes the accumulated costs.
func (m *Machine) Reset() {
	m.depth.Store(0)
	m.work.Store(0)
	m.steps.Store(0)
}

// ObsPublish registers the machine's model-cost gauges (depth, work, steps,
// procs) and its fixed worker-pool width under prefix, implementing
// obs.Source: the serving layer publishes each shard's machine through the
// same registry as its latency histograms. Every gauge is an atomic load,
// so sampling never contends with charging.
func (m *Machine) ObsPublish(r *obs.Registry, prefix string) {
	r.Gauge(prefix+"depth", m.Depth)
	r.Gauge(prefix+"work", m.Work)
	r.Gauge(prefix+"steps", m.Steps)
	r.Gauge(prefix+"procs", m.procs.Load)
	workers := int64(m.workers)
	r.Gauge(prefix+"workers", func() int64 { return workers })
}

// Charge adds an explicit (depth, work) cost, for callers implementing their
// own primitives on top of the machine.
func (m *Machine) Charge(depth, work int64) {
	if depth > 0 {
		m.depth.Add(depth)
	}
	if work > 0 {
		m.work.Add(work)
	}
	m.steps.Add(1)
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1).
func Log2Ceil(n int) int64 {
	if n <= 1 {
		return 0
	}
	d := int64(0)
	for p := 1; p < n; p <<= 1 {
		d++
	}
	return d
}

func (m *Machine) parForDepth(n int) int64 {
	p := m.procs.Load()
	d := (int64(n) + p - 1) / p
	if d < 1 && n > 0 {
		d = 1
	}
	return d
}

// serialCutoff is the size below which primitives run serially; below this
// the goroutine fan-out costs more than it saves.
const serialCutoff = 2048

// ParFor runs fn(i) for i in [0,n) in parallel and charges ⌈n/P⌉ depth and
// n work. fn must be safe to call concurrently for distinct i and must not
// write locations shared between iterations (the EREW discipline).
func (m *Machine) ParFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	m.Charge(m.parForDepth(n), int64(n))
	if n < serialCutoff || m.workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + m.workers - 1) / m.workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParDo runs the given thunks in parallel and charges the depth of one
// round (the thunks account their own inner costs against the machine).
// Execution is bounded by the worker-pool width: at most Workers()
// goroutines run at once, pulling thunks from a shared queue, so large
// thunk lists do not oversubscribe the host.
func (m *Machine) ParDo(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	m.Charge(1, int64(len(fns)))
	if len(fns) == 1 || m.workers == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	w := m.workers
	if w > len(fns) {
		w = len(fns)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fns) {
					return
				}
				fns[i]()
			}
		}()
	}
	wg.Wait()
}

// ExecSharded partitions [0,n) into at most Workers() contiguous shards and
// runs fn(shard, lo, hi) concurrently, one goroutine per shard. It returns
// the number of shards used (shard indices are 0..shards-1, so callers can
// give each shard a private accumulator slot and reduce afterwards).
//
// ExecSharded is execution-only: it charges nothing against the machine.
// It is the execution half of operations whose model cost the caller
// accounts analytically — e.g. a batch of independent D-queries charged as
// one O(log n)-depth step (Theorems 6 and 8) — so the recorded depth/work
// stay exactly the paper's regardless of how the host runs the batch.
func (m *Machine) ExecSharded(n int, fn func(shard, lo, hi int)) int {
	if n <= 0 {
		return 0
	}
	w := m.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, 0, n)
		return 1
	}
	chunk := (n + w - 1) / w
	shards := (n + chunk - 1) / chunk
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	return shards
}

// Exec runs fn(i) for i in [0,n) on the worker pool without charging any
// model cost (see ExecSharded). fn must be safe to call concurrently for
// distinct i.
func (m *Machine) Exec(n int, fn func(i int)) {
	if n < serialCutoff || m.workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	m.ExecSharded(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
