package pram

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int64{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Log2Ceil(n); got != want {
			t.Errorf("Log2Ceil(%d)=%d want %d", n, got, want)
		}
	}
}

func TestParForCoversAllIndices(t *testing.T) {
	m := NewMachine(64)
	for _, n := range []int{0, 1, 100, 5000} {
		hits := make([]int32, n)
		m.ParFor(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestParForAccounting(t *testing.T) {
	m := NewMachine(10)
	m.ParFor(100, func(int) {})
	if m.Depth() != 10 {
		t.Fatalf("depth=%d want ceil(100/10)=10", m.Depth())
	}
	if m.Work() != 100 {
		t.Fatalf("work=%d want 100", m.Work())
	}
	m.Reset()
	if m.Depth() != 0 || m.Work() != 0 || m.Steps() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestReduce(t *testing.T) {
	m := NewMachine(8)
	for _, n := range []int{1, 7, 4096} {
		xs := make([]int, n)
		want := 0
		for i := range xs {
			xs[i] = i * 3
			want += i * 3
		}
		got := Reduce(m, xs, 0, func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("n=%d: sum=%d want %d", n, got, want)
		}
	}
	if Reduce(m, nil, -7, func(a, b int) int { return a + b }) != -7 {
		t.Fatal("empty Reduce should return zero value")
	}
}

func TestMinIndexBy(t *testing.T) {
	m := NewMachine(8)
	xs := []int{5, 2, 9, 2, 7}
	if i := MinIndexBy(m, xs, func(a, b int) bool { return a < b }); i != 1 {
		t.Fatalf("MinIndexBy=%d want 1 (lowest index tie-break)", i)
	}
	if i := MinIndexBy(m, nil, func(a, b int) bool { return a < b }); i != -1 {
		t.Fatalf("empty MinIndexBy=%d want -1", i)
	}
}

func TestPrefixSum(t *testing.T) {
	m := NewMachine(4)
	xs := []int{1, 2, 3, 4}
	if total := PrefixSum(m, xs); total != 10 {
		t.Fatalf("total=%d", total)
	}
	want := []int{1, 3, 6, 10}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("prefix[%d]=%d want %d", i, xs[i], want[i])
		}
	}
}

func TestSortBySmallAndLarge(t *testing.T) {
	m := NewMachine(16)
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 2, 100, 10000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		ref := append([]int(nil), xs...)
		sort.Ints(ref)
		SortInts(m, xs)
		for i := range xs {
			if xs[i] != ref[i] {
				t.Fatalf("n=%d: sorted[%d]=%d want %d", n, i, xs[i], ref[i])
			}
		}
	}
}

func TestSortByIsStable(t *testing.T) {
	type kv struct{ k, seq int }
	m := NewMachine(16)
	rng := rand.New(rand.NewSource(43))
	n := 8192 // above serialCutoff to exercise the parallel merge path
	xs := make([]kv, n)
	for i := range xs {
		xs[i] = kv{k: rng.Intn(50), seq: i}
	}
	SortBy(m, xs, func(a, b kv) bool { return a.k < b.k })
	for i := 1; i < n; i++ {
		if xs[i-1].k > xs[i].k {
			t.Fatal("not sorted")
		}
		if xs[i-1].k == xs[i].k && xs[i-1].seq > xs[i].seq {
			t.Fatal("not stable")
		}
	}
}

func TestSortProperty(t *testing.T) {
	m := NewMachine(8)
	f := func(xs []int16) bool {
		ys := make([]int, len(xs))
		for i, x := range xs {
			ys[i] = int(x)
		}
		SortInts(m, ys)
		return sort.IntsAreSorted(ys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFilter(t *testing.T) {
	m := NewMachine(8)
	xs := []int{1, 2, 3, 4, 5, 6}
	got := Filter(m, xs, func(x int) bool { return x%2 == 0 })
	if len(got) != 3 || got[0] != 2 || got[2] != 6 {
		t.Fatalf("Filter=%v", got)
	}
}

func TestParDo(t *testing.T) {
	m := NewMachine(4)
	var a, b atomic.Int32
	m.ParDo(func() { a.Store(1) }, func() { b.Store(2) })
	if a.Load() != 1 || b.Load() != 2 {
		t.Fatal("ParDo did not run all thunks")
	}
	m.ParDo() // no-op
}

func TestSortAccountingMatchesTheorem(t *testing.T) {
	// Theorem 7 (Cole): sorting n keys charges ceil(log2 n) depth.
	m := NewMachine(1 << 20)
	xs := make([]int, 1024)
	SortInts(m, xs)
	if m.Depth() != 10 {
		t.Fatalf("sort depth=%d want log2(1024)=10", m.Depth())
	}
	if m.Work() != 1024*10 {
		t.Fatalf("sort work=%d want n log n", m.Work())
	}
}

func TestParDoBoundedFanOut(t *testing.T) {
	m := NewMachine(4)
	// Many more thunks than workers: all must run exactly once, with at most
	// Workers() in flight at any moment.
	const n = 1000
	var inFlight, peak, ran atomic.Int32
	fns := make([]func(), n)
	for i := range fns {
		fns[i] = func() {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			ran.Add(1)
			inFlight.Add(-1)
		}
	}
	m.ParDo(fns...)
	if ran.Load() != n {
		t.Fatalf("ran %d of %d thunks", ran.Load(), n)
	}
	if int(peak.Load()) > m.Workers() {
		t.Fatalf("peak concurrency %d exceeds worker cap %d", peak.Load(), m.Workers())
	}
}

func TestExecShardedCoversAllIndices(t *testing.T) {
	m := NewMachine(8)
	for _, n := range []int{0, 1, 3, 100, 5000} {
		hits := make([]int32, n)
		shards := m.ExecSharded(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if n > 0 && (shards < 1 || shards > m.Workers()) {
			t.Fatalf("n=%d: %d shards with %d workers", n, shards, m.Workers())
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
		if m.Depth() != 0 || m.Work() != 0 || m.Steps() != 0 {
			t.Fatal("ExecSharded must not charge the machine")
		}
	}
}

func TestExecChargesNothing(t *testing.T) {
	m := NewMachine(8)
	hits := make([]int32, 4096)
	m.Exec(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	if m.Depth() != 0 || m.Work() != 0 || m.Steps() != 0 {
		t.Fatal("Exec must not charge the machine")
	}
}

func TestSetProcsConcurrentWithCharges(t *testing.T) {
	// SetProcs during in-flight ParFor/Charge must be race-free (run under
	// -race) and never produce a non-positive budget.
	m := NewMachine(3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := 1; p <= 100; p++ {
			m.SetProcs(p)
		}
	}()
	for i := 0; i < 50; i++ {
		m.ParFor(3000, func(int) {})
	}
	<-done
	if m.Procs() != 100 {
		t.Fatalf("procs=%d want 100", m.Procs())
	}
}

func TestSetProcs(t *testing.T) {
	m := NewMachine(0)
	if m.Procs() != 1 {
		t.Fatalf("default procs=%d", m.Procs())
	}
	m.SetProcs(5)
	m.ParFor(10, func(int) {})
	if m.Depth() != 2 {
		t.Fatalf("depth=%d want 2", m.Depth())
	}
}
