package pram

import (
	"sort"
	"sync"
)

// Reduce combines xs with the associative function combine, returning the
// zero value for empty input. Charges ⌈log₂ n⌉ + ⌈n/P⌉ depth and n work,
// the balanced-binary-tree EREW reduction cost.
func Reduce[T any](m *Machine, xs []T, zero T, combine func(a, b T) T) T {
	n := len(xs)
	if n == 0 {
		m.Charge(1, 1)
		return zero
	}
	m.Charge(Log2Ceil(n)+m.parForDepth(n), int64(n))
	if n < serialCutoff || m.workers == 1 {
		acc := xs[0]
		for _, x := range xs[1:] {
			acc = combine(acc, x)
		}
		return acc
	}
	chunk := (n + m.workers - 1) / m.workers
	partial := make([]T, 0, m.workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			acc := xs[lo]
			for _, x := range xs[lo+1 : hi] {
				acc = combine(acc, x)
			}
			mu.Lock()
			partial = append(partial, acc)
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	acc := partial[0]
	for _, x := range partial[1:] {
		acc = combine(acc, x)
	}
	return acc
}

// MinIndexBy returns the index of the minimum element of xs under less,
// or -1 for empty xs. Ties resolve to the lowest index so results are
// deterministic. Standard EREW reduction cost.
func MinIndexBy[T any](m *Machine, xs []T, less func(a, b T) bool) int {
	n := len(xs)
	if n == 0 {
		m.Charge(1, 1)
		return -1
	}
	idx := make([]int, n)
	for k := range idx {
		idx[k] = k
	}
	return Reduce(m, idx, -1, func(a, b int) int {
		switch {
		case a < 0:
			return b
		case b < 0:
			return a
		case less(xs[b], xs[a]):
			return b
		default:
			return a
		}
	})
}

// PrefixSum replaces xs with its inclusive prefix sums and returns the
// total. Charges the EREW scan cost: ⌈log₂ n⌉ + ⌈n/P⌉ depth, n work.
func PrefixSum(m *Machine, xs []int) int {
	n := len(xs)
	m.Charge(Log2Ceil(n)+m.parForDepth(n), int64(n))
	sum := 0
	for i := range xs {
		sum += xs[i]
		xs[i] = sum
	}
	return sum
}

// SortBy sorts xs by less. Model cost is Cole's parallel merge sort
// (Theorem 7): ⌈log₂ n⌉ depth, n·⌈log₂ n⌉ work. Execution is a parallel
// two-way merge sort on large inputs.
func SortBy[T any](m *Machine, xs []T, less func(a, b T) bool) {
	n := len(xs)
	m.Charge(Log2Ceil(n), int64(n)*max64(1, Log2Ceil(n)))
	if n < serialCutoff || m.workers == 1 {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	buf := make([]T, n)
	parMergeSort(xs, buf, less, m.workers)
}

func parMergeSort[T any](xs, buf []T, less func(a, b T) bool, workers int) {
	n := len(xs)
	if workers <= 1 || n < serialCutoff {
		sort.SliceStable(xs, func(i, j int) bool { return less(xs[i], xs[j]) })
		return
	}
	mid := n / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		parMergeSort(xs[:mid], buf[:mid], less, workers/2)
	}()
	parMergeSort(xs[mid:], buf[mid:], less, workers-workers/2)
	wg.Wait()
	// merge halves into buf, copy back (stable: left wins ties)
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if less(xs[j], xs[i]) {
			buf[k] = xs[j]
			j++
		} else {
			buf[k] = xs[i]
			i++
		}
		k++
	}
	copy(buf[k:], xs[i:mid])
	copy(buf[k+mid-i:], xs[j:])
	copy(xs, buf)
}

// SortInts sorts xs ascending with SortBy's cost model.
func SortInts(m *Machine, xs []int) {
	SortBy(m, xs, func(a, b int) bool { return a < b })
}

// Filter returns the elements of xs satisfying keep, preserving order.
// Charges a ParFor plus a PrefixSum (the standard EREW compaction).
func Filter[T any](m *Machine, xs []T, keep func(T) bool) []T {
	n := len(xs)
	m.Charge(Log2Ceil(n)+m.parForDepth(n), int64(n))
	out := make([]T, 0, n)
	for _, x := range xs {
		if keep(x) {
			out = append(out, x)
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
