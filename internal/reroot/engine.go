package reroot

import (
	"fmt"

	"repro/internal/dstruct"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/tree"
)

// Stats records the behaviour of one or more Reroot calls.
type Stats struct {
	Rounds         int // critical-path traversal rounds (max over chains)
	Batches        int // critical-path sequential query batches
	TotalTraversal int // total traversals executed
	Disintegrate   int
	PathHalve      int
	Disconnect     int
	HeavyL         int
	HeavyP         int
	HeavyR         int
	HeavySpecial   int // special-case traversals executed
	Fallbacks      int // l-shaped fallbacks from failed heavy scenarios
	GenericFall    int // generic fallbacks (multi-path components)
	Sequential     int // sequential-mode root walks (baseline engine)
	Violations     int // C1/C2 invariant violations detected and absorbed
	MaxPhase       int
	MaxStage       int
}

func (s *Stats) Add(o Stats) {
	if o.Rounds > s.Rounds {
		s.Rounds = o.Rounds
	}
	if o.Batches > s.Batches {
		s.Batches = o.Batches
	}
	s.TotalTraversal += o.TotalTraversal
	s.Disintegrate += o.Disintegrate
	s.PathHalve += o.PathHalve
	s.Disconnect += o.Disconnect
	s.HeavyL += o.HeavyL
	s.HeavyP += o.HeavyP
	s.HeavyR += o.HeavyR
	s.HeavySpecial += o.HeavySpecial
	s.Fallbacks += o.Fallbacks
	s.GenericFall += o.GenericFall
	s.Sequential += o.Sequential
	s.Violations += o.Violations
	if o.MaxPhase > s.MaxPhase {
		s.MaxPhase = o.MaxPhase
	}
	if o.MaxStage > s.MaxStage {
		s.MaxStage = o.MaxStage
	}
}

// Oracle answers the engine's edge queries (the role of the paper's data
// structure D). dstruct.D is the PRAM implementation; the semi-streaming
// and distributed simulators provide pass-counting and message-counting
// implementations of the same queries. Every method takes the caller's
// per-call Stats accumulator (nil discards): implementations must not keep
// internal mutable query counters, so a shared oracle stays safe for
// concurrent readers.
type Oracle interface {
	// EdgeToWalk returns a graph edge from the source set to the walk,
	// extremal by walk position (fromEnd = the paper's "lowest edge").
	EdgeToWalk(sources, walk []int, fromEnd bool, st *dstruct.Stats) (dstruct.Hit, bool)
	// EdgeToWalkBySource returns the first source in order with an edge to
	// the walk.
	EdgeToWalkBySource(sources, walk []int, fromEnd bool, st *dstruct.Stats) (dstruct.Hit, bool)
	// HasEdgeToWalk reports whether any source has an edge to the walk.
	HasEdgeToWalk(sources, walk []int, st *dstruct.Stats) bool
	// EdgeToWalkBatch answers a batch of independent queries, equivalent to
	// issuing them one by one in order. The paper's rounds are built from
	// such batches; implementations may execute the whole batch at once
	// (dstruct.D fans it out over the PRAM worker pool, the semi-streaming
	// oracle answers each query with its own pass).
	EdgeToWalkBatch(qs []dstruct.WalkQuery, st *dstruct.Stats) []dstruct.WalkAnswer
}

// Engine reroots subtrees of a fixed base tree T. One Engine serves one
// update: construct with New, call Reroot for each disjoint subtree the
// reduction algorithm produces, then Result.
type Engine struct {
	T *tree.Tree
	L *lca.Index
	D Oracle
	M *pram.Machine

	parent  []int
	visited []bool
	scratch *Scratch // owns the moved-vertex accumulator (reused by the maintainer)
	n0      int      // size of the subtree currently being rerooted

	// Sequential disables the phase/stage scheduler and consumes every
	// component with the plain walk-to-the-root traversal — the sequential
	// rerooting of Baswana et al. (SODA 2016) that the paper parallelizes.
	// Used as the Õ(n)-per-update baseline.
	Sequential bool

	// TrackMoved opts in to moved-vertex accumulation (Moved): every Reroot
	// and re-hanging SetParent then records the old-tree vertex set of the
	// subtree it relocates. Off by default — owners that never consume the
	// set (the streaming maintainer, fault-tolerant mode, the full-rebuild
	// baseline) must not pay its O(|subtree|) walks. Set it before the first
	// Reroot/SetParent call.
	TrackMoved bool

	Stats Stats

	// QStats accumulates the search effort of every oracle query this
	// engine issued (the per-call accumulator threaded through Oracle).
	QStats dstruct.Stats
}

// Scratch holds the per-update buffers of an engine so a maintainer can
// reuse them across updates instead of reallocating (parent copy + visited
// mask + moved/removed-vertex accumulators, the last per-update allocations
// after the D/LCA/tree reuse). A Scratch must not be shared by engines
// running concurrently.
type Scratch struct {
	parent  []int
	visited []bool
	moved   []int
	removed []int
}

// New creates an engine that writes rerooted parent assignments over a copy
// of t's parent array. d must answer queries for the current graph (base
// structure plus patches for the in-flight update).
func New(t *tree.Tree, l *lca.Index, d Oracle, m *pram.Machine) *Engine {
	return NewWithScratch(t, l, d, m, nil)
}

// NewWithScratch is New drawing the engine's per-update buffers from s
// (nil s allocates fresh buffers, equivalent to New).
func NewWithScratch(t *tree.Tree, l *lca.Index, d Oracle, m *pram.Machine, s *Scratch) *Engine {
	if m == nil {
		m = pram.NewMachine(t.Live())
	}
	if s == nil {
		s = &Scratch{}
	}
	n := t.N()
	s.parent = append(s.parent[:0], t.Parent...)
	s.moved = s.moved[:0]
	s.removed = s.removed[:0]
	if cap(s.visited) >= n {
		s.visited = s.visited[:n]
		clear(s.visited)
	} else {
		s.visited = make([]bool, n)
	}
	return &Engine{
		T:       t,
		L:       l,
		D:       d,
		M:       m,
		parent:  s.parent,
		visited: s.visited,
		scratch: s,
	}
}

// Parent exposes the in-progress parent assignment (the T* under
// construction). Callers may pre-assign entries for vertices outside the
// rerooted subtrees (the reduction algorithm's unchanged region).
func (e *Engine) Parent() []int { return e.parent }

// SetParent records an externally decided T* edge (used by the reduction
// algorithm for, e.g., the inserted vertex). A re-hung subtree (parent
// actually changing) joins the moved set, as does a vertex the base tree has
// never numbered; detaching a vertex (p == tree.None, the deleted vertex)
// joins the removed set instead — its D entries leave through the deletion
// patches, but downstream index maintenance still needs to know the vertex
// left the tree.
func (e *Engine) SetParent(v, p int) {
	e.parent[v] = p
	if !e.TrackMoved {
		return
	}
	if p == tree.None {
		if v < e.T.N() && e.T.Present(v) {
			e.scratch.removed = append(e.scratch.removed, v)
		}
		return
	}
	if v < e.T.N() && e.T.Present(v) {
		if e.T.Parent[v] != p {
			e.scratch.moved = e.T.SubtreeVertices(v, e.scratch.moved)
		}
	} else {
		e.scratch.moved = append(e.scratch.moved, v)
	}
}

// Moved returns the vertices whose root path this engine's reroots and
// reassignments changed — the old-tree vertex set of every rerooted or
// re-hung subtree plus newly attached vertices. Only these can change
// relative position in the new tree's post-order (children are ordered by ID
// on both sides), which is exactly what dstruct.D.Update needs to reposition
// entries incrementally. Empty unless TrackMoved was set. The slice is owned
// by the engine's Scratch; callers must consume it before the next update
// reuses the buffers.
func (e *Engine) Moved() []int { return e.scratch.moved }

// Removed returns the vertices this engine detached from the tree (SetParent
// to tree.None — the deleted vertex of a DeleteVertex update). Like Moved, it
// is empty unless TrackMoved was set and is owned by the engine's Scratch;
// callers must consume it before the next update reuses the buffers.
func (e *Engine) Removed() []int { return e.scratch.removed }

// Reroot rebuilds the subtree T(r0) as a DFS tree rooted at rstar, hanging
// rstar under attachParent in T*. attachParent may be tree.None when the
// rerooted subtree is the whole tree.
func (e *Engine) Reroot(r0, rstar, attachParent int) error {
	if !e.T.IsAncestor(r0, rstar) {
		return fmt.Errorf("reroot: new root %d not in T(%d)", rstar, r0)
	}
	// Everything in the rerooted subtree may change relative post-order.
	if e.TrackMoved {
		e.scratch.moved = e.T.SubtreeVertices(r0, e.scratch.moved)
	}
	e.n0 = e.T.Size(r0)
	root := &Comp{
		Pieces:       []Piece{SubtreePiece(r0)},
		RC:           rstar,
		AttachParent: attachParent,
	}
	queue := []*Comp{root}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		kids, err := e.step(c)
		if err != nil {
			return err
		}
		queue = append(queue, kids...)
	}
	return nil
}

// Result builds the final tree from the accumulated parent assignments.
// newRoot is the root of the updated DFS tree; present marks live vertices
// (nil = all of T's vertices). The engine's parent buffer is finalized in
// place (tree.Build copies it), so the engine is spent afterwards.
func (e *Engine) Result(newRoot int, present []bool) (*tree.Tree, error) {
	e.parent[newRoot] = tree.None
	return tree.Build(newRoot, e.parent, present)
}

// ResultInto is Result rebuilding prev in place (tree.Rebuild) instead of
// allocating a fresh tree. prev must not be retained by any reader — the
// maintainer opts in via core.Options.ReuseTree; the serving layer, which
// publishes trees in snapshots, must not use it. On error prev is left in
// an unspecified state.
func (e *Engine) ResultInto(prev *tree.Tree, newRoot int, present []bool) (*tree.Tree, error) {
	e.parent[newRoot] = tree.None
	if err := prev.Rebuild(newRoot, e.parent, present); err != nil {
		return nil, err
	}
	return prev, nil
}

// phaseOf derives the phase a component is processed in: the smallest i
// with largestSubtree > n0/2^i. Components with no subtree pieces are past
// all phases.
func (e *Engine) phaseOf(c *Comp) int {
	s := c.largestSubtree(e.T)
	if s == 0 {
		return int(pram.Log2Ceil(e.n0)) + 1
	}
	i := 1
	for e.n0>>uint(i) >= s { // while threshold >= s, subtree not yet heavy
		i++
	}
	return i
}

// threshold returns the heavy-subtree threshold for phase i.
func (e *Engine) threshold(i int) int { return e.n0 >> uint(i) }

// stageOf derives the stage: smallest j with pathLen > n0/2^j; components
// with no path piece sit at the final stage.
func (e *Engine) stageOf(c *Comp) int {
	l := c.pathLen(e.T)
	if l == 0 {
		return int(pram.Log2Ceil(e.n0)) + 1
	}
	j := 1
	for e.n0>>uint(j) >= l {
		j++
	}
	return j
}

// step processes one component with one traversal and returns its children.
func (e *Engine) step(c *Comp) ([]*Comp, error) {
	// Drop empty pieces defensively (traversals should not emit them).
	if len(c.Pieces) == 0 {
		return nil, nil
	}
	phase := e.phaseOf(c)
	stage := e.stageOf(c)
	if phase > e.Stats.MaxPhase {
		e.Stats.MaxPhase = phase
	}
	if stage > e.Stats.MaxStage {
		e.Stats.MaxStage = stage
	}
	e.Stats.TotalTraversal++

	rcPiece := c.pieceOf(e.T, c.RC)
	if rcPiece < 0 {
		return nil, fmt.Errorf("reroot: entry vertex %d not in component %v", c.RC, c.Pieces)
	}
	if e.Sequential {
		e.Stats.Sequential++
		return e.fallback(c, rcPiece)
	}
	if c.pathCount() > 1 {
		// Invariant already violated upstream; consume with the generic
		// fallback, which is valid for arbitrary piece sets.
		e.Stats.GenericFall++
		return e.fallback(c, rcPiece)
	}
	p := c.Pieces[rcPiece]
	switch {
	case p.IsPath:
		e.Stats.PathHalve++
		return e.pathHalve(c, rcPiece)
	case c.pathCount() == 0:
		// Type C1 (single subtree by invariant; extra subtree pieces
		// without a connecting path cannot occur for connected components,
		// but disintegrate handles only the rc piece and reattaches rest).
		e.Stats.Disintegrate++
		return e.disintegrate(c, rcPiece)
	default:
		thr := e.threshold(phase)
		heavy := e.T.Size(p.Root) > thr
		if !heavy {
			e.Stats.Disconnect++
			return e.disconnect(c, rcPiece)
		}
		if c.RC == p.Root {
			e.Stats.Disintegrate++
			return e.disintegrate(c, rcPiece)
		}
		vH := e.findVH(p.Root, thr)
		if e.T.IsAncestor(vH, c.RC) {
			e.Stats.Disconnect++
			return e.disconnect(c, rcPiece)
		}
		return e.heavy(c, rcPiece, vH)
	}
}

// findVH locates the smallest subtree of T(root) with size > thr: descend
// while a (necessarily unique) child exceeds the threshold.
func (e *Engine) findVH(root, thr int) int {
	v := root
	for {
		next := -1
		for _, ch := range e.T.Children(v) {
			if e.T.Size(ch) > thr {
				next = ch
				break
			}
		}
		if next < 0 {
			return v
		}
		v = next
	}
}

// chargeBatch accounts one batch of independent D/LCA queries over k total
// source vertices: O(log n) depth, O(k log n) work (Theorems 6, 8). In
// sequential mode the charge models Baswana et al.'s structure D₀ instead,
// which answers a component's O(1) queries in polylog time without
// enumerating sources (the price is a far more complex structure — the
// trade-off the paper's remark after Theorem 14 describes).
func (e *Engine) chargeBatch(c *Comp, k int) {
	lg := pram.Log2Ceil(e.T.Live())
	if lg == 0 {
		lg = 1
	}
	if e.Sequential {
		e.M.Charge(lg*lg*lg, lg*lg*lg)
	} else {
		e.M.Charge(0, int64(k)*lg)
	}
	c.Batches++
}
