package reroot

import (
	"fmt"

	"repro/internal/dstruct"
)

// heavy handles the hard case of Section 4.4: the entry vertex rc lies
// inside a heavy subtree τ, is not its root, and is outside T(v_H). The
// three scenarios (l, p, r traversals) are tried in order; each failed
// scenario supplies the back edge that powers the next. The paper's special
// case (Section "Special case of heavy subtree traversal") is reached when
// all three are inapplicable.
//
// Every scenario is guarded: if its planned walk is geometrically invalid
// (a degenerate configuration the paper's prose glosses over, e.g. a chosen
// back edge landing on an already-planned vertex), the engine abandons the
// scenario chain and uses the always-correct l-shaped fallback, counting it
// in Stats.Fallbacks.
//
// Scenario 2's inputs do not depend on scenario 1's answer, only on its
// walk — so its probes are issued speculatively: the chain-hanger
// eligibility round merges into scenario 1's eligibility round, and the
// (xd,yd) witness + pc-cap probes ride in scenario 1's own query batch.
// When scenario 1 succeeds the speculative answers are discarded (wasted
// work, same round count); when it fails, scenario 2 starts two rounds
// earlier. The charge accounting follows the physical batches one to one,
// so the streaming oracle's pass parity (LastPasses == ScheduledPasses on
// single-chain updates) is preserved.
func (e *Engine) heavy(c *Comp, rcPiece, vH int) ([]*Comp, error) {
	t := e.T
	p := c.Pieces[rcPiece]
	rc, rPrime := c.RC, p.Root

	pcIdx := -1
	for i, q := range c.Pieces {
		if q.IsPath {
			pcIdx = i
			break
		}
	}
	if pcIdx < 0 {
		return nil, fmt.Errorf("heavy: no path piece")
	}
	pc := c.Pieces[pcIdx]
	pcVerts := pc.vertices(t, nil)
	onPc := func(v int) bool { return pc.contains(t, v) }

	vl := e.L.LCA(rc, vH)
	vL := t.ChildToward(vl, vH)

	rest := func(exclude ...int) []Piece {
		var out []Piece
		for i, q := range c.Pieces {
			skip := false
			for _, x := range exclude {
				if i == x {
					skip = true
				}
			}
			if !skip {
				out = append(out, q)
			}
		}
		return out
	}

	// ---- Scenario 1: l traversal along p*_L = path(rc, r'). ----
	wl := e.newWalk()
	wl.ascend(rc, rPrime)
	if wl.err != nil {
		return nil, fmt.Errorf("heavy: l walk: %v", wl.err)
	}
	pLwalk := wl.verts
	ixL := e.indexWalk(pLwalk)
	hangersL := e.hangersOfWalk(pLwalk, ixL)

	// Scenario 2's geometry — the chain [vL..vH] and its hanging subtrees —
	// is pure tree work, computed up front so its eligibility round and its
	// probes can be coalesced with scenario 1's. Speculation is skipped when
	// vl == rPrime: there is no room above vl for the p/r legs, so a failed
	// scenario 1 goes straight to the fallback.
	speculate := vl != rPrime
	var chain, chainHangers []int
	var onChain map[int]bool
	if speculate {
		chain = t.PathUp(vH, vL) // vH .. vL (deep to shallow)
		onChain = make(map[int]bool, len(chain))
		for _, q := range chain {
			onChain[q] = true
		}
		for _, q := range chain {
			for _, ch := range t.Children(q) {
				if !onChain[ch] && !t.IsAncestor(ch, vH) {
					chainHangers = append(chainHangers, ch)
				}
			}
		}
	}
	var eligL, eligChain []int
	if speculate {
		groups := e.eligibleGroups(c, [][]int{hangersL, chainHangers}, pcVerts)
		eligL, eligChain = groups[0], groups[1]
	} else {
		eligL = e.eligible(c, hangersL, pcVerts)
	}

	// One batch round answers scenario 1's highest-edge query and — when
	// speculating — scenario 2's (xd,yd) witness and pc-cap probes. eligD:
	// the eligible hangers of p*_L except T(vL), plus those of the chain.
	src1 := append(e.subtreeVerts(eligL), pcVerts...)
	var hit1, hitD, hitPC dstruct.Hit
	var ok1, okD, okPC bool
	if speculate {
		var eligD []int
		for _, h := range eligL {
			if h != vL {
				eligD = append(eligD, h)
			}
		}
		eligD = append(eligD, eligChain...)
		srcD := e.subtreeVerts(eligD)
		e.chargeBatch(c, len(src1)+len(srcD)+len(pcVerts))
		ans := e.D.EdgeToWalkBatch([]dstruct.WalkQuery{
			{Sources: src1, Walk: pLwalk, FromEnd: true}, // lowest on p*_L = highest on path(rc,r')
			{Sources: srcD, Walk: pLwalk, FromEnd: true},
			{Sources: pcVerts, Walk: pLwalk, FromEnd: true},
		}, &e.QStats)
		hit1, ok1 = ans[0].Hit, ans[0].OK
		hitD, okD = ans[1].Hit, ans[1].OK
		hitPC, okPC = ans[2].Hit, ans[2].OK
	} else {
		e.chargeBatch(c, len(src1))
		hit1, ok1 = e.D.EdgeToWalk(src1, pLwalk, true, &e.QStats)
	}
	if !ok1 {
		return nil, fmt.Errorf("heavy: pc-component has no edge to path(rc,r')")
	}
	x1 := hit1.U
	if !t.IsAncestor(vL, x1) || t.IsAncestor(vH, x1) || x1 == vL || onPc(x1) {
		e.Stats.HeavyL++
		remaining := e.splitSubtree(rPrime, ixL, nil)
		remaining = append(remaining, rest(rcPiece)...)
		return e.processComp(c, pLwalk, remaining)
	}

	// ---- Scenario 2: p traversal. ----
	if !speculate {
		// vl == rPrime: the paper's scenarios assume a non-empty upper path.
		return e.heavyFallback(c, rcPiece)
	}
	ydEff := rc
	if okD {
		ydEff = hitD.Z
	}
	// Query segment S = [sStart..r'] for (xp,yp), restricted so that
	// (a) sStart is strictly above vl (the back-edge target may not land on
	//     the l-leg, or the walk self-intersects), and
	// (b) yp is at or above every pc→path(rc,r') edge — otherwise the
	//     untraversed p' = path(par(yp), r') stays connected to pc and the
	//     resulting component has two paths, violating A1. Lemma 3's proof
	//     covers the eligible subtrees (via yd) but pc's own edges need
	//     this explicit cap; (x1,y1) remains a valid candidate because y1
	//     is the maximum over pc and all eligibles.
	sStart := t.Parent[vl]
	if t.Level(ydEff) < t.Level(sStart) {
		sStart = ydEff
	}
	if okPC && t.Level(hitPC.Z) < t.Level(sStart) {
		sStart = hitPC.Z
	}
	segS := t.PathUp(sStart, rPrime)
	// Ordered sources by hang depth on the chain, deepest LCA(x',vH) first.
	var ordered []int
	ordered = t.SubtreeVertices(vH, ordered)
	for i := 1; i < len(chain); i++ { // chain[0] = vH already covered
		q := chain[i]
		ordered = append(ordered, q)
		for _, ch := range t.Children(q) {
			if !onChain[ch] && !t.IsAncestor(ch, vH) {
				ordered = t.SubtreeVertices(ch, ordered)
			}
		}
	}
	e.chargeBatch(c, len(ordered))
	hitP, okP := e.D.EdgeToWalkBySource(ordered, segS, true, &e.QStats)
	if !okP {
		return e.heavyFallback(c, rcPiece)
	}
	xp, yp := hitP.U, hitP.Z

	wp := e.newWalk()
	wp.ascend(rc, vl)
	wp.descend(vl, xp)
	wp.hop(yp)
	wp.descend(yp, t.Parent[vl])
	if wp.err != nil {
		return e.heavyFallback(c, rcPiece)
	}
	pPwalk := wp.verts
	ixP := e.indexWalk(pPwalk)
	splitP := e.splitSubtree(rPrime, ixP, nil)
	srcs2 := append(e.eligiblePieceVerts(c, splitP, pcVerts), pcVerts...)
	e.chargeBatch(c, len(srcs2))
	hit2, ok2 := e.D.EdgeToWalk(srcs2, pPwalk, true, &e.QStats)
	if !ok2 {
		return e.heavyFallback(c, rcPiece)
	}
	x2 := hit2.U
	qStar := e.L.LCA(xp, vH)
	vP := -1
	if qStar != vH && !ixP.onWalk(vH) {
		vP = t.ChildToward(qStar, vH)
	}
	if vP < 0 || !t.IsAncestor(vP, x2) || t.IsAncestor(vH, x2) || x2 == vP || onPc(x2) {
		e.Stats.HeavyP++
		remaining := append(splitP, rest(rcPiece)...)
		return e.processComp(c, pPwalk, remaining)
	}

	// ---- Scenario 3: r traversal. ----
	// τp: the chain hanger containing xp (if any).
	tauP := -1
	if qStar != vH && !t.IsAncestor(vH, xp) && xp != qStar && !onChain[xp] {
		if t.IsAncestor(vL, xp) {
			tauP = t.ChildToward(qStar, xp)
			if onChain[tauP] || t.IsAncestor(tauP, vH) {
				tauP = -1
			}
		}
	}
	xr, yr := x2, hit2.Z
	if tauP >= 0 {
		tv := t.SubtreeVertices(tauP, nil)
		e.chargeBatch(c, len(tv))
		// Lowest (deepest) edge from τp to path(rc,r').
		if hitT, okT := e.D.EdgeToWalk(tv, pLwalk, false, &e.QStats); okT {
			if t.Level(hitT.Z) > t.Level(yr) {
				xr, yr = hitT.U, hitT.Z
			}
		}
	}
	// Validity: yr must lie strictly above vl on path(rc,r') for the
	// closing leg [yr..r'] to be disjoint from the descent.
	if !t.IsAncestor(yr, vl) || yr == vl {
		return e.heavyFallback(c, rcPiece)
	}
	// A1 for the untraversed gap p1 = (vl..yr): neither pc nor the (xd,yd)
	// witness may have an edge landing inside it, else the pc-component
	// acquires a second path. The paper resolves the remaining τd=τp
	// geometry in its special case; any other connector sends us to the
	// fallback (counted, never observed on test workloads).
	if yr != t.Parent[vl] {
		gapTop := t.ChildToward(yr, vl)
		gap := t.PathUp(t.Parent[vl], gapTop)
		if okD && t.IsAncestor(gapTop, ydEff) && t.IsAncestor(ydEff, t.Parent[vl]) {
			return e.heavyFallback(c, rcPiece)
		}
		e.chargeBatch(c, len(pcVerts))
		if e.D.HasEdgeToWalk(pcVerts, gap, &e.QStats) {
			return e.heavyFallback(c, rcPiece)
		}
	}
	wr := e.newWalk()
	wr.ascend(rc, vl)
	wr.descend(vl, xr)
	wr.hop(yr)
	wr.ascend(yr, rPrime)
	if wr.err != nil {
		return e.heavyFallback(c, rcPiece)
	}
	pRwalk := wr.verts
	ixR := e.indexWalk(pRwalk)
	splitR := e.splitSubtree(rPrime, ixR, nil)
	srcs3 := append(e.eligiblePieceVerts(c, splitR, pcVerts), pcVerts...)
	e.chargeBatch(c, len(srcs3))
	hit3, ok3 := e.D.EdgeToWalk(srcs3, pRwalk, true, &e.QStats)
	if !ok3 {
		return e.heavyFallback(c, rcPiece)
	}
	x3 := hit3.U
	q3 := e.L.LCA(xr, vH)
	vR := -1
	if q3 != vH && !ixR.onWalk(vH) {
		vR = t.ChildToward(q3, vH)
	}
	if vR < 0 || !t.IsAncestor(vR, x3) || t.IsAncestor(vH, x3) || x3 == vR || onPc(x3) {
		e.Stats.HeavyR++
		remaining := append(splitR, rest(rcPiece)...)
		return e.processComp(c, pRwalk, remaining)
	}

	// ---- Special case (τd = τp geometry). ----
	return e.heavySpecial(c, rcPiece, heavyCtx{
		vH: vH, vl: vl, vL: vL, rPrime: rPrime,
		pcIdx: pcIdx, pcVerts: pcVerts,
		xp: xp, yp: yp, x2: x2, y2: hit2.Z, xr: xr, yr: yr,
		pLwalk: pLwalk,
	})
}

// heavyCtx carries the scenario state into the special case.
type heavyCtx struct {
	vH, vl, vL, rPrime int
	pcIdx              int
	pcVerts            []int
	xp, yp             int
	x2, y2             int
	xr, yr             int
	pLwalk             []int
}

// heavyFallback abandons the scenario chain for the always-valid l walk.
func (e *Engine) heavyFallback(c *Comp, rcPiece int) ([]*Comp, error) {
	e.Stats.Fallbacks++
	return e.fallback(c, rcPiece)
}

// hangersOfWalk returns the roots of subtrees hanging from a monotone
// ascending walk (children of walk vertices that are off the walk).
func (e *Engine) hangersOfWalk(walk []int, ix *walkIndex) []int {
	var out []int
	for _, v := range walk {
		for _, ch := range e.T.Children(v) {
			if !ix.onWalk(ch) {
				out = append(out, ch)
			}
		}
	}
	return out
}

// eligible filters subtree roots to those with at least one edge to the
// target vertex list (one batch of existence queries, executed together).
func (e *Engine) eligible(c *Comp, roots []int, target []int) []int {
	return e.eligibleGroups(c, [][]int{roots}, target)[0]
}

// eligibleGroups answers several independent eligibility families against
// one shared target in a single batch round — one physical pass for the
// streaming oracle, one worker-pool dispatch for D — returning the
// eligible roots of each group in input order.
func (e *Engine) eligibleGroups(c *Comp, groups [][]int, target []int) [][]int {
	total := 0
	var qs []dstruct.WalkQuery
	for _, roots := range groups {
		for _, r := range roots {
			sv := e.T.SubtreeVertices(r, nil)
			total += len(sv)
			qs = append(qs, dstruct.WalkQuery{Sources: sv, Walk: target, FromEnd: true})
		}
	}
	ans := e.D.EdgeToWalkBatch(qs, &e.QStats)
	out := make([][]int, len(groups))
	i := 0
	for gi, roots := range groups {
		for _, r := range roots {
			if ans[i].OK {
				out[gi] = append(out[gi], r)
			}
			i++
		}
	}
	if total > 0 {
		e.chargeBatch(c, total)
	}
	return out
}

// eligiblePieceVerts returns the vertices of the subtree pieces among
// pieces that have an edge to target.
func (e *Engine) eligiblePieceVerts(c *Comp, pieces []Piece, target []int) []int {
	var roots []int
	for _, p := range pieces {
		if !p.IsPath {
			roots = append(roots, p.Root)
		}
	}
	return e.subtreeVerts(e.eligible(c, roots, target))
}

// subtreeVerts flattens the vertex sets of the given subtree roots.
func (e *Engine) subtreeVerts(roots []int) []int {
	var out []int
	for _, r := range roots {
		out = e.T.SubtreeVertices(r, out)
	}
	return out
}
