package reroot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/tree"
	"repro/internal/verify"
)

// TestHeavyScenariosFire verifies the l/p scenarios actually execute on
// dense random workloads (not merely that the code compiles): components of
// type C2 entered inside a heavy subtree are the paper's hard case, and
// dense graphs produce them reliably.
func TestHeavyScenariosFire(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	var agg Stats
	for trial := 0; trial < 200; trial++ {
		n := 24 + rng.Intn(40)
		g := graph.GnpConnected(n, 0.25, rng)
		e := rerootAndVerify(t, g, 0, rng.Intn(n))
		agg.Add(e.Stats)
	}
	if agg.HeavyL == 0 {
		t.Fatalf("scenario l never fired across 200 dense reroots: %+v", agg)
	}
	if agg.HeavyL+agg.HeavyP+agg.HeavyR < 5 {
		t.Fatalf("heavy scenarios nearly never fire: %+v", agg)
	}
	if agg.Fallbacks > agg.TotalTraversal/20 {
		t.Fatalf("fallback rate too high: %+v", agg)
	}
}

// TestHeavyOnDeepSkew drives the case the heavy machinery exists for:
// entering a deep, heavy subtree from the middle while a long path piece
// remains — built from lollipop-like graphs.
func TestHeavyOnDeepSkew(t *testing.T) {
	for _, n := range []int{32, 64, 128} {
		// Lollipop: path of n/2 vertices into a clique of n/2, plus chords
		// from the clique back to the path's start.
		g := graph.Path(n)
		for u := n / 2; u < n; u++ {
			for v := u + 2; v < n; v++ {
				if !g.HasEdge(u, v) {
					if err := g.InsertEdge(u, v); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if err := g.InsertEdge(0, n-1); err != nil {
			t.Fatal(err)
		}
		for rstar := 0; rstar < n; rstar += 7 {
			e := rerootAndVerify(t, g, 0, rstar)
			if e.Stats.GenericFall > 0 || e.Stats.Violations > 0 {
				t.Fatalf("n=%d rstar=%d: %+v", n, rstar, e.Stats)
			}
		}
	}
}

// Property (testing/quick): every reroot of every random graph yields a
// valid DFS tree with clean stats.
func TestQuickRerootValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(uint(seed)%48)
		var g *graph.Graph
		switch seed % 4 {
		case 0:
			g = graph.GnpConnected(n, 3.0/float64(n), rng)
		case 1:
			g = graph.GnpConnected(n, 0.3, rng)
		case 2:
			g = graph.Broom(n+2, n/2+1)
		default:
			g = graph.Caterpillar(n/2+1, 2)
		}
		tr := baseline.StaticDFSFrom(g, 0)
		d := dstruct.Build(g, tr, nil)
		e := New(tr, lca.New(tr), d, pram.NewMachine(tr.Live()))
		rstar := int(uint(seed*31) % uint(g.NumVertexSlots()))
		if err := e.Reroot(0, rstar, tree.None); err != nil {
			return false
		}
		got, err := e.Result(rstar, presentOf(tr))
		if err != nil {
			return false
		}
		if err := verify.DFSTree(g, got, tree.None); err != nil {
			return false
		}
		return e.Stats.GenericFall == 0 && e.Stats.Violations == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRerootBroomRounds checks the adversarial broom stays within the round
// budget at larger sizes.
func TestRerootBroomRounds(t *testing.T) {
	for _, n := range []int{256, 1024} {
		g := graph.Broom(n, n/2)
		worst := 0
		for rstar := 1; rstar < n; rstar += n / 8 {
			e := rerootAndVerify(t, g, 0, rstar)
			if e.Stats.Rounds > worst {
				worst = e.Stats.Rounds
			}
		}
		lg := int(pram.Log2Ceil(n))
		if worst > 4*lg*lg {
			t.Fatalf("broom n=%d: %d rounds > %d", n, worst, 4*lg*lg)
		}
	}
}

// TestPieceHelpers covers the Piece geometry helpers directly.
func TestPieceHelpers(t *testing.T) {
	parent := []int{tree.None, 0, 1, 2, 1, 4}
	tr := tree.MustBuild(0, parent, nil)
	sub := SubtreePiece(1)
	if sub.size(tr) != 5 || !sub.contains(tr, 5) || sub.contains(tr, 0) {
		t.Fatalf("subtree piece geometry wrong")
	}
	p := PathPiece(1, 3) // 1-2-3 chain
	if p.size(tr) != 3 {
		t.Fatalf("path piece size %d", p.size(tr))
	}
	if !p.contains(tr, 2) || p.contains(tr, 4) {
		t.Fatal("path piece membership wrong")
	}
	vs := p.vertices(tr, nil)
	if len(vs) != 3 || vs[0] != 3 || vs[2] != 1 {
		t.Fatalf("path vertices %v", vs)
	}
	if got := p.String(); got != "path[1..3]" {
		t.Fatalf("String() = %q", got)
	}
	if got := sub.String(); got != "T(1)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestWalkBuilderGuards exercises the defensive walk construction.
func TestWalkBuilderGuards(t *testing.T) {
	g := graph.Path(6)
	tr := baseline.StaticDFSFrom(g, 0)
	d := dstruct.Build(g, tr, nil)
	e := New(tr, lca.New(tr), d, nil)

	w := e.newWalk()
	w.ascend(4, 1)
	if w.err != nil || len(w.verts) != 4 {
		t.Fatalf("ascend: %v %v", w.err, w.verts)
	}
	w.ascend(1, 0) // continues from current end without repeating 1
	if w.err != nil || len(w.verts) != 5 {
		t.Fatalf("continued ascend: %v %v", w.err, w.verts)
	}
	// Revisit must fail.
	w2 := e.newWalk()
	w2.ascend(3, 1)
	w2.descend(1, 3)
	if w2.err == nil {
		t.Fatal("revisit not detected")
	}
	// Non-ancestor pairs must fail.
	w3 := e.newWalk()
	w3.ascend(1, 4)
	if w3.err == nil {
		t.Fatal("ascend to non-ancestor accepted")
	}
	w4 := e.newWalk()
	w4.descend(4, 1)
	if w4.err == nil {
		t.Fatal("descend to non-descendant accepted")
	}
	// Visited vertices are rejected.
	e.visited[2] = true
	w5 := e.newWalk()
	w5.ascend(3, 1)
	if w5.err == nil {
		t.Fatal("walk through visited vertex accepted")
	}
}

// TestSplitSubtree checks the generic subtree splitter on hand geometries.
func TestSplitSubtree(t *testing.T) {
	//      0
	//      1
	//    2   3
	//   4 5  6
	parent := []int{tree.None, 0, 1, 1, 2, 2, 3}
	tr := tree.MustBuild(0, parent, nil)
	g := graph.Path(2) // engine needs a D; content irrelevant here
	d := dstruct.Build(g, baseline.StaticDFSFrom(g, 0), nil)
	_ = d
	e := &Engine{T: tr, visited: make([]bool, tr.N()), M: pram.NewMachine(1)}

	// Remove the path 1-2: remainder = T(4), T(5), T(3), path [0..0].
	ix := e.indexWalk([]int{1, 2})
	pieces := e.splitSubtree(0, ix, nil)
	var paths, subs int
	for _, p := range pieces {
		if p.IsPath {
			paths++
			if p.Top != 0 || p.Bot != 0 {
				t.Fatalf("upper path %v", p)
			}
		} else {
			subs++
		}
	}
	if paths != 1 || subs != 3 {
		t.Fatalf("split pieces %v", pieces)
	}
	// Removing the root only: children become subtrees, no path.
	ix2 := e.indexWalk([]int{0})
	pieces2 := e.splitSubtree(0, ix2, nil)
	if len(pieces2) != 1 || pieces2[0].IsPath || pieces2[0].Root != 1 {
		t.Fatalf("root-removal split %v", pieces2)
	}
}
