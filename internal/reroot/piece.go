// Package reroot implements the paper's parallel rerooting procedure
// (Section 4): given the DFS tree T of a graph, a subtree T(r0) and a new
// root r* inside it, it rebuilds T(r0) into a DFS tree rooted at r* of the
// subgraph induced by T(r0)'s vertices, in O(log² n) rounds of O(1) batches
// of independent queries on the data structure D.
//
// The engine maintains the paper's invariant: every connected component of
// the unvisited graph is of type C1 (a single subtree of T) or C2 (one
// ancestor-descendant path p_c plus subtrees having an edge to p_c). Each
// round applies one traversal — disintegrating, path halving, disconnecting,
// or a heavy-subtree scenario (l/p/r) — chosen by the dispatcher exactly as
// in Procedure Reroot-DFS of the paper.
//
// Correctness is independent of the traversal choice: any walk that starts
// at the component's entry vertex, moves along tree paths and real graph
// edges inside the component, and attaches every remaining component at its
// lowest edge on the walk, preserves the components property (Lemma 1).
// When a heavy-subtree scenario's preconditions fail to materialize (the
// paper's special case, or a degenerate geometry the paper does not spell
// out), the engine falls back to the always-valid l-shaped walk and counts
// it in Stats; the round bound is then checked empirically by the tests.
package reroot

import (
	"fmt"

	"repro/internal/tree"
)

// Piece is one constituent of an unvisited component: either a full subtree
// T(Root) of the base tree, or an ancestor-descendant path [Top..Bot]
// (Top the T-ancestor).
type Piece struct {
	IsPath   bool
	Root     int // subtree root if !IsPath
	Top, Bot int // path endpoints if IsPath
}

// SubtreePiece returns a subtree piece.
func SubtreePiece(root int) Piece { return Piece{Root: root} }

// PathPiece returns a path piece; top must be an ancestor of bot.
func PathPiece(top, bot int) Piece { return Piece{IsPath: true, Top: top, Bot: bot} }

func (p Piece) String() string {
	if p.IsPath {
		return fmt.Sprintf("path[%d..%d]", p.Top, p.Bot)
	}
	return fmt.Sprintf("T(%d)", p.Root)
}

// size returns the number of vertices of the piece under t.
func (p Piece) size(t *tree.Tree) int {
	if p.IsPath {
		return t.PathLen(p.Top, p.Bot)
	}
	return t.Size(p.Root)
}

// vertices appends the piece's vertices to buf. Subtree pieces enumerate in
// pre-order; path pieces from Bot up to Top.
func (p Piece) vertices(t *tree.Tree, buf []int) []int {
	if p.IsPath {
		for v := p.Bot; ; v = t.Parent[v] {
			buf = append(buf, v)
			if v == p.Top {
				return buf
			}
		}
	}
	return t.SubtreeVertices(p.Root, buf)
}

// contains reports whether v is a vertex of the piece.
func (p Piece) contains(t *tree.Tree, v int) bool {
	if p.IsPath {
		return t.IsAncestor(p.Top, v) && t.IsAncestor(v, p.Bot)
	}
	return t.IsAncestor(p.Root, v)
}

// Comp is a connected component of the unvisited graph, with the entry
// vertex RC from which its DFS will be rooted and the T*-vertex it attaches
// under.
type Comp struct {
	Pieces       []Piece
	RC           int
	AttachParent int
	// Depth is the number of traversal rounds on the chain that produced
	// this component (critical-path accounting).
	Depth int
	// Batches is the number of sequential query batches on the chain.
	Batches int
}

// pathCount returns the number of path pieces.
func (c *Comp) pathCount() int {
	k := 0
	for _, p := range c.Pieces {
		if p.IsPath {
			k++
		}
	}
	return k
}

// pieceOf returns the index of the piece containing v, or -1.
func (c *Comp) pieceOf(t *tree.Tree, v int) int {
	for i, p := range c.Pieces {
		if p.contains(t, v) {
			return i
		}
	}
	return -1
}

// totalSize returns the vertex count of the component.
func (c *Comp) totalSize(t *tree.Tree) int {
	n := 0
	for _, p := range c.Pieces {
		n += p.size(t)
	}
	return n
}

// largestSubtree returns the maximum subtree piece size (0 if none).
func (c *Comp) largestSubtree(t *tree.Tree) int {
	s := 0
	for _, p := range c.Pieces {
		if !p.IsPath {
			if sz := t.Size(p.Root); sz > s {
				s = sz
			}
		}
	}
	return s
}

// pathLen returns the length of the single path piece (0 if none).
func (c *Comp) pathLen(t *tree.Tree) int {
	for _, p := range c.Pieces {
		if p.IsPath {
			return p.size(t)
		}
	}
	return 0
}
