package reroot

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/tree"
	"repro/internal/verify"
)

// rerootAndVerify reroots T(sub) of g's DFS tree at rstar and checks the
// result is a DFS tree of g. Returns the engine for stats assertions.
func rerootAndVerify(t *testing.T, g *graph.Graph, sub, rstar int) *Engine {
	t.Helper()
	tr := baseline.StaticDFSFrom(g, findRoot(g))
	if !tr.Present(sub) || !tr.IsAncestor(sub, rstar) {
		t.Fatalf("bad test setup: sub=%d rstar=%d", sub, rstar)
	}
	d := dstruct.Build(g, tr, nil)
	e := New(tr, lca.New(tr), d, pram.NewMachine(tr.Live()))
	attach := tree.None
	if sub != tr.Root {
		attach = tr.Parent[sub]
	}
	if err := e.Reroot(sub, rstar, attach); err != nil {
		t.Fatalf("Reroot(%d,%d): %v", sub, rstar, err)
	}
	newRoot := tr.Root
	if sub == tr.Root {
		newRoot = rstar
	}
	got, err := e.Result(newRoot, presentOf(tr))
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if err := verify.DFSTree(g, got, tree.None); err != nil {
		t.Fatalf("invalid DFS tree after reroot(%d,%d): %v", sub, rstar, err)
	}
	return e
}

func presentOf(tr *tree.Tree) []bool {
	p := make([]bool, tr.N())
	for _, v := range tr.Vertices() {
		p[v] = true
	}
	return p
}

func findRoot(g *graph.Graph) int {
	for v := 0; v < g.NumVertexSlots(); v++ {
		if g.IsVertex(v) {
			return v
		}
	}
	return -1
}

func TestRerootPathGraph(t *testing.T) {
	// Rerooting a path at any vertex exercises path pieces heavily.
	g := graph.Path(16)
	for rstar := 0; rstar < 16; rstar++ {
		rerootAndVerify(t, g, 0, rstar)
	}
}

func TestRerootCycle(t *testing.T) {
	g := graph.Cycle(12)
	for rstar := 0; rstar < 12; rstar++ {
		rerootAndVerify(t, g, 0, rstar)
	}
}

func TestRerootCompleteGraph(t *testing.T) {
	g := graph.Complete(9)
	for rstar := 0; rstar < 9; rstar++ {
		rerootAndVerify(t, g, 0, rstar)
	}
}

func TestRerootStarAndBroom(t *testing.T) {
	for rstar := 0; rstar < 10; rstar++ {
		rerootAndVerify(t, graph.Star(10), 0, rstar)
	}
	g := graph.Broom(24, 8)
	for rstar := 0; rstar < 24; rstar++ {
		rerootAndVerify(t, g, 0, rstar)
	}
}

func TestRerootGrid(t *testing.T) {
	g := graph.Grid(5, 6)
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 20; i++ {
		rerootAndVerify(t, g, 0, rng.Intn(30))
	}
}

func TestRerootRandomWholeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		n := 4 + rng.Intn(60)
		g := graph.GnpConnected(n, 2.5/float64(n), rng)
		rstar := rng.Intn(n)
		rerootAndVerify(t, g, 0, rstar)
	}
}

func TestRerootRandomSubtree(t *testing.T) {
	// Rerooting a proper subtree is only meaningful with a valid attach
	// edge: the deepest edge leaving the subtree, exactly what the
	// reduction algorithm computes for an edge deletion. Mirror that here.
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 120; trial++ {
		n := 6 + rng.Intn(50)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		tr := baseline.StaticDFSFrom(g, 0)
		sub := rng.Intn(n)
		if sub == tr.Root {
			rerootAndVerify(t, g, sub, rng.Intn(n))
			continue
		}
		// Deepest external neighbor of T(sub) and an inside endpoint.
		rstar, attach := -1, -1
		for _, v := range tr.SubtreeVertices(sub, nil) {
			for _, nb := range g.SortedNeighbors(v) {
				if tr.IsAncestor(sub, nb) {
					continue
				}
				if attach < 0 || tr.Level(nb) > tr.Level(attach) {
					rstar, attach = v, nb
				}
			}
		}
		d := dstruct.Build(g, tr, nil)
		e := New(tr, lca.New(tr), d, nil)
		if err := e.Reroot(sub, rstar, attach); err != nil {
			t.Fatalf("Reroot(%d,%d): %v", sub, rstar, err)
		}
		// Detach the old tree edge and hang the block under attach.
		got, err := e.Result(tr.Root, presentOf(tr))
		if err != nil {
			t.Fatalf("Result: %v", err)
		}
		if err := verify.DFSTree(g, got, tree.None); err != nil {
			t.Fatalf("invalid DFS tree after subtree reroot(%d→%d under %d): %v",
				sub, rstar, attach, err)
		}
	}
}

func TestRerootDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(30)
		g := graph.GnpConnected(n, 0.4, rng)
		rerootAndVerify(t, g, 0, rng.Intn(n))
	}
}

func TestRerootNoFallbacksOnRandom(t *testing.T) {
	// On random workloads the paper's scenarios must suffice: no generic
	// fallbacks, no invariant violations, and the special case absent.
	rng := rand.New(rand.NewSource(83))
	var agg Stats
	for trial := 0; trial < 150; trial++ {
		n := 8 + rng.Intn(56)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		e := rerootAndVerify(t, g, 0, rng.Intn(n))
		agg.Add(e.Stats)
	}
	if agg.GenericFall > 0 || agg.Violations > 0 {
		t.Fatalf("invariant machinery broke on random inputs: %+v", agg)
	}
	if agg.HeavySpecial > 0 {
		t.Fatalf("special case unexpectedly triggered: %+v", agg)
	}
}

func TestRerootRoundBound(t *testing.T) {
	// Rounds on the critical path must stay within c·log²n.
	rng := rand.New(rand.NewSource(89))
	for _, n := range []int{64, 128, 256, 512} {
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		worst := 0
		for trial := 0; trial < 10; trial++ {
			e := rerootAndVerify(t, g, 0, rng.Intn(n))
			if e.Stats.Rounds > worst {
				worst = e.Stats.Rounds
			}
		}
		lg := int(pram.Log2Ceil(n))
		if worst > 4*lg*lg {
			t.Fatalf("n=%d: %d rounds > 4·log²n = %d", n, worst, 4*lg*lg)
		}
	}
}

func TestRerootDegenerate(t *testing.T) {
	// Single vertex.
	g := graph.New(1)
	rerootAndVerify(t, g, 0, 0)
	// Single edge.
	g2 := graph.Path(2)
	rerootAndVerify(t, g2, 0, 1)
	rerootAndVerify(t, g2, 0, 0)
	// Triangle.
	g3 := graph.Cycle(3)
	for r := 0; r < 3; r++ {
		rerootAndVerify(t, g3, 0, r)
	}
}

func TestRerootSameRoot(t *testing.T) {
	// Rerooting at the current root must reproduce a valid DFS tree.
	rng := rand.New(rand.NewSource(97))
	g := graph.GnpConnected(20, 0.2, rng)
	rerootAndVerify(t, g, 0, 0)
}

func TestRerootRejectsOutsideVertex(t *testing.T) {
	g := graph.Path(6)
	tr := baseline.StaticDFSFrom(g, 0)
	d := dstruct.Build(g, tr, nil)
	e := New(tr, lca.New(tr), d, nil)
	// vertex 1's subtree is 1..5; rerooting T(2) at 1 must fail.
	if err := e.Reroot(2, 1, tr.Parent[2]); err == nil {
		t.Fatal("rerooting at vertex outside subtree accepted")
	}
}

func TestRerootCaterpillar(t *testing.T) {
	g := graph.Caterpillar(8, 3)
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 15; i++ {
		rerootAndVerify(t, g, 0, rng.Intn(g.NumVertexSlots()))
	}
}

func TestStatsAggregation(t *testing.T) {
	var a, b Stats
	a.Rounds, a.Disintegrate = 3, 2
	b.Rounds, b.PathHalve, b.MaxPhase = 5, 1, 4
	a.Add(b)
	if a.Rounds != 5 || a.Disintegrate != 2 || a.PathHalve != 1 || a.MaxPhase != 4 {
		t.Fatalf("aggregated stats wrong: %+v", a)
	}
}
