package reroot

// heavySpecial handles the paper's "Special case of heavy subtree
// traversal": all three scenarios failed, which (by Lemma 6) pins the
// geometry to τd = τp with both the highest and lowest eligible back edges
// emerging from the same chain hanger.
//
// The paper resolves this with a modified r' traversal followed by a root /
// upward-cover / downward-cover traversal of τd — a two-arm exploration (the
// second arm re-enters at an interior vertex of the first). The present
// implementation resolves the component with the always-correct l-shaped
// fallback instead and counts the occurrence; the configuration requires a
// conjunction of three nested scenario failures and does not arise on any of
// the random or adversarial workloads in the test suite (asserted there).
// The effect of this substitution is only on the round bound for inputs that
// repeatedly regenerate the special case, never on correctness.
func (e *Engine) heavySpecial(c *Comp, rcPiece int, _ heavyCtx) ([]*Comp, error) {
	e.Stats.HeavySpecial++
	return e.fallback(c, rcPiece)
}
