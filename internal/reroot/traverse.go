package reroot

import (
	"fmt"

	"repro/internal/dstruct"
)

// disintegrate handles a component whose entry rc lies in a subtree piece τ
// that either forms the whole component (type C1) or is entered at its root
// (the Section 4.1 remark for type C2): walk from rc to v_H, after which
// every subtree of τ's remainder has size at most the phase threshold.
func (e *Engine) disintegrate(c *Comp, rcPiece int) ([]*Comp, error) {
	p := c.Pieces[rcPiece]
	thr := e.threshold(e.phaseOf(c))
	vH := e.findVH(p.Root, thr)
	vl := e.L.LCA(c.RC, vH)

	w := e.newWalk()
	w.ascend(c.RC, vl)
	w.descend(vl, vH)
	if w.err != nil {
		return nil, fmt.Errorf("disintegrate: %v", w.err)
	}
	ix := e.indexWalk(w.verts)
	remaining := e.splitSubtree(p.Root, ix, nil)
	for i, q := range c.Pieces {
		if i != rcPiece {
			remaining = append(remaining, q)
		}
	}
	return e.processComp(c, w.verts, remaining)
}

// pathHalve handles entry on the path piece p_c: walk from rc to the farther
// end; the residual path has at most half the length (Section 4.2).
func (e *Engine) pathHalve(c *Comp, rcPiece int) ([]*Comp, error) {
	p := c.Pieces[rcPiece]
	t := e.T
	dTop := t.Level(c.RC) - t.Level(p.Top)
	dBot := t.Level(p.Bot) - t.Level(c.RC)

	w := e.newWalk()
	var residual []Piece
	if dTop >= dBot {
		w.ascend(c.RC, p.Top)
		if dBot > 0 {
			residual = append(residual, PathPiece(t.ChildToward(c.RC, p.Bot), p.Bot))
		}
	} else {
		w.descend(c.RC, p.Bot)
		if dTop > 0 {
			residual = append(residual, PathPiece(p.Top, t.Parent[c.RC]))
		}
	}
	if w.err != nil {
		return nil, fmt.Errorf("pathHalve: %v", w.err)
	}
	for i, q := range c.Pieces {
		if i != rcPiece {
			residual = append(residual, q)
		}
	}
	return e.processComp(c, w.verts, residual)
}

// disconnect handles entry in a subtree τ that is not heavy (or whose entry
// lies inside T(v_H), the Section 4.3 remark): walk through τ into p_c at a
// vertex y chosen so that the subsequent path halving covers every τ→p_c
// edge, disconnecting τ's remainder from the residual path.
func (e *Engine) disconnect(c *Comp, rcPiece int) ([]*Comp, error) {
	p := c.Pieces[rcPiece]
	t := e.T
	pcIdx := -1
	for i, q := range c.Pieces {
		if q.IsPath {
			pcIdx = i
			break
		}
	}
	if pcIdx < 0 {
		return nil, fmt.Errorf("disconnect: no path piece in component")
	}
	pc := c.Pieces[pcIdx]
	pcVerts := pc.vertices(t, nil) // bot..top order
	// upperHalf: the ceil(len/2) vertices nearest Top.
	half := (len(pcVerts) + 1) / 2
	upper := pcVerts[len(pcVerts)-half:]
	tauVerts := t.SubtreeVertices(p.Root, nil)

	// The upper-half probe and the two directed full-path queries are
	// independent: issue all three as one batch (one round instead of two
	// sequential probes), then select by the probe's outcome.
	e.chargeBatch(c, 3*len(tauVerts))
	ans := e.D.EdgeToWalkBatch([]dstruct.WalkQuery{
		{Sources: tauVerts, Walk: upper, FromEnd: true},
		{Sources: tauVerts, Walk: pcVerts, FromEnd: true},
		{Sources: tauVerts, Walk: pcVerts, FromEnd: false},
	}, &e.QStats)
	var x, y int
	var coverDown bool // after entering pc at y, traverse toward Bot?
	if ans[0].OK {
		// τ reaches the upper half: enter at the highest τ→pc edge and
		// sweep down to Bot, covering every (deeper) τ→pc edge. pcVerts is
		// bot..top order, so "nearest top" is fromEnd.
		if !ans[1].OK {
			return nil, fmt.Errorf("disconnect: τ lost its edge to pc")
		}
		x, y, coverDown = ans[1].Hit.U, ans[1].Hit.Z, true
	} else {
		// All τ→pc edges in the lower half: enter at the lowest and sweep
		// up to Top.
		if !ans[2].OK {
			return nil, fmt.Errorf("disconnect: τ has no edge to pc")
		}
		x, y, coverDown = ans[2].Hit.U, ans[2].Hit.Z, false
	}

	// Walk: rc → x within τ, hop to y, then sweep pc on the side holding
	// all τ→pc edges (which is also the longer side, halving the residual).
	vl := e.L.LCA(c.RC, x)
	w := e.newWalk()
	w.ascend(c.RC, vl)
	w.descend(vl, x)
	w.hop(y)
	var residual []Piece
	if coverDown {
		w.descend(y, pc.Bot)
		if y != pc.Top {
			residual = append(residual, PathPiece(pc.Top, t.Parent[y]))
		}
	} else {
		w.ascend(y, pc.Top)
		if y != pc.Bot {
			residual = append(residual, PathPiece(t.ChildToward(y, pc.Bot), pc.Bot))
		}
	}
	if w.err != nil {
		return nil, fmt.Errorf("disconnect: %v", w.err)
	}
	ix := e.indexWalk(w.verts)
	remaining := e.splitSubtree(p.Root, ix, residual)
	for i, q := range c.Pieces {
		if i != rcPiece && i != pcIdx {
			remaining = append(remaining, q)
		}
	}
	return e.processComp(c, w.verts, remaining)
}

// fallback consumes the entry piece entirely with an always-valid walk:
// to the root of the entry subtree (l-shaped) or across the entry path.
// Used for components that have lost the C1/C2 invariant and for heavy
// scenarios whose preconditions failed; correctness is unconditional, only
// the round bound degrades.
func (e *Engine) fallback(c *Comp, rcPiece int) ([]*Comp, error) {
	p := c.Pieces[rcPiece]
	if p.IsPath {
		return e.pathHalve(c, rcPiece)
	}
	w := e.newWalk()
	w.ascend(c.RC, p.Root)
	if w.err != nil {
		return nil, fmt.Errorf("fallback: %v", w.err)
	}
	ix := e.indexWalk(w.verts)
	remaining := e.splitSubtree(p.Root, ix, nil)
	for i, q := range c.Pieces {
		if i != rcPiece {
			remaining = append(remaining, q)
		}
	}
	return e.processComp(c, w.verts, remaining)
}
