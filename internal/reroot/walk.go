package reroot

import (
	"fmt"
	"sort"

	"repro/internal/dstruct"
)

// walkBuilder assembles a traversal walk: an alternating sequence of tree
// paths of T and single back-edge hops, with every vertex distinct and
// unvisited. Builders fail softly (err set) so heavy-subtree scenarios can
// be abandoned for the fallback when a geometric precondition does not hold.
type walkBuilder struct {
	e     *Engine
	verts []int
	seen  map[int]bool
	err   error
}

func (e *Engine) newWalk() *walkBuilder {
	return &walkBuilder{e: e, seen: make(map[int]bool)}
}

func (w *walkBuilder) push(v int) {
	if w.err != nil {
		return
	}
	if w.seen[v] {
		w.err = fmt.Errorf("walk revisits %d", v)
		return
	}
	if w.e.visited[v] {
		w.err = fmt.Errorf("walk enters visited vertex %d", v)
		return
	}
	w.seen[v] = true
	w.verts = append(w.verts, v)
}

// ascend appends the tree path from descendant `from` up to ancestor `to`,
// both inclusive. If the walk already ends at `from`, it is not repeated.
func (w *walkBuilder) ascend(from, to int) {
	if w.err != nil {
		return
	}
	if !w.e.T.IsAncestor(to, from) {
		w.err = fmt.Errorf("ascend(%d,%d): not ancestor-descendant", from, to)
		return
	}
	v := from
	if len(w.verts) > 0 && w.verts[len(w.verts)-1] == from {
		if from == to {
			return
		}
		v = w.e.T.Parent[from]
	}
	for {
		w.push(v)
		if v == to || w.err != nil {
			return
		}
		v = w.e.T.Parent[v]
	}
}

// descend appends the tree path from ancestor `from` down to descendant
// `to`, both inclusive, skipping `from` if already at the walk's end.
func (w *walkBuilder) descend(from, to int) {
	if w.err != nil {
		return
	}
	if !w.e.T.IsAncestor(from, to) {
		w.err = fmt.Errorf("descend(%d,%d): not ancestor-descendant", from, to)
		return
	}
	path := w.e.T.PathUp(to, from) // to..from; reverse order
	start := len(path) - 1
	if len(w.verts) > 0 && w.verts[len(w.verts)-1] == from {
		start--
	}
	for i := start; i >= 0; i-- {
		w.push(path[i])
		if w.err != nil {
			return
		}
	}
}

// hop appends the far endpoint of a back edge (the edge itself was
// validated by the D query that produced it).
func (w *walkBuilder) hop(v int) { w.push(v) }

// walkIndex answers subtree/walk intersection queries for one finished walk.
type walkIndex struct {
	e    *Engine
	set  map[int]bool
	pres []int // sorted pre-order numbers of walk vertices
}

func (e *Engine) indexWalk(walk []int) *walkIndex {
	ix := &walkIndex{e: e, set: make(map[int]bool, len(walk))}
	for _, v := range walk {
		ix.set[v] = true
		ix.pres = append(ix.pres, e.T.Pre(v))
	}
	sort.Ints(ix.pres)
	return ix
}

func (ix *walkIndex) onWalk(v int) bool { return ix.set[v] }

// subtreeHasWalk reports whether T(v) contains any walk vertex, via binary
// search over the walk's pre-order numbers against T(v)'s pre interval.
func (ix *walkIndex) subtreeHasWalk(v int) bool {
	lo := ix.e.T.Pre(v)
	hi := lo + ix.e.T.Size(v) // == out(v)
	i := sort.SearchInts(ix.pres, lo)
	return i < len(ix.pres) && ix.pres[i] < hi
}

// splitSubtree decomposes T(root) minus the walk's vertices into pieces:
// intact hanging subtrees, and for every untouched chain leading down to a
// walk region, one path piece. Works for arbitrary walks; the paper's
// traversals always yield the expected path/subtree shapes, and a branching
// geometry (which the paper's invariants exclude) is absorbed as extra path
// pieces and counted as a violation.
func (e *Engine) splitSubtree(root int, ix *walkIndex, out []Piece) []Piece {
	work := []int{root}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		if !ix.subtreeHasWalk(v) {
			out = append(out, SubtreePiece(v))
			continue
		}
		if ix.onWalk(v) {
			work = append(work, e.T.Children(v)...)
			continue
		}
		// v untouched, walk strictly below: follow the chain while exactly
		// one child subtree contains walk vertices.
		top := v
		cur := v
		for {
			next := -1
			multi := false
			for _, ch := range e.T.Children(cur) {
				if ix.subtreeHasWalk(ch) {
					if next >= 0 {
						multi = true
					} else {
						next = ch
					}
				} else {
					out = append(out, SubtreePiece(ch))
				}
			}
			if multi {
				// Branching above two walk regions: not expressible as a
				// single path piece. Close the chain here and recurse into
				// the walk-bearing children independently.
				e.Stats.Violations++
				out = append(out, PathPiece(top, cur))
				for _, ch := range e.T.Children(cur) {
					if ix.subtreeHasWalk(ch) {
						work = append(work, ch)
					}
				}
				break
			}
			if ix.onWalk(next) {
				out = append(out, PathPiece(top, cur))
				work = append(work, next)
				break
			}
			cur = next
		}
	}
	return out
}

// execWalk commits a walk: marks its vertices visited and records T*
// parents (walk[0] hangs under the component's attach parent).
func (e *Engine) execWalk(c *Comp, walk []int) error {
	if len(walk) == 0 {
		return fmt.Errorf("reroot: empty walk")
	}
	if walk[0] != c.RC {
		return fmt.Errorf("reroot: walk starts at %d, not entry %d", walk[0], c.RC)
	}
	prev := c.AttachParent
	for _, v := range walk {
		if e.visited[v] {
			return fmt.Errorf("reroot: walk revisits %d", v)
		}
		e.visited[v] = true
		e.parent[v] = prev
		prev = v
	}
	return nil
}

// materialize returns the vertex lists of the given pieces, one flat slice.
func (e *Engine) materialize(pieces []Piece) []int {
	var out []int
	for _, p := range pieces {
		out = p.vertices(e.T, out)
	}
	return out
}

// processComp finishes a traversal: walk has been planned and validated,
// remaining holds the unvisited pieces of the component. It commits the
// walk, groups the remaining pieces into components (each path piece with
// the subtrees having an edge to it; lone subtrees alone), finds every new
// component's entry via its lowest edge on the walk, and returns the
// children with depth bookkeeping.
func (e *Engine) processComp(c *Comp, walk []int, remaining []Piece) ([]*Comp, error) {
	if err := e.execWalk(c, walk); err != nil {
		return nil, err
	}
	var paths, subs []Piece
	for _, p := range remaining {
		if p.size(e.T) <= 0 {
			continue
		}
		if p.IsPath {
			paths = append(paths, p)
		} else {
			subs = append(subs, p)
		}
	}
	// Union-find over pieces: path pieces first, then subtrees.
	all := append(append([]Piece(nil), paths...), subs...)
	parent := make([]int, len(all))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	pathVerts := make([][]int, len(paths))
	totalQueried := 0
	for i, p := range paths {
		pathVerts[i] = p.vertices(e.T, nil)
	}
	// Subtree→path and path→path connectivity: all pairs are independent
	// existence queries, issued as one batch (one coalesced round of the
	// model; one worker-pool dispatch of the execution).
	var connQs []dstruct.WalkQuery
	var connUnions [][2]int
	for si, s := range subs {
		sv := s.vertices(e.T, nil)
		for pi := range paths {
			totalQueried += len(sv)
			connQs = append(connQs, dstruct.WalkQuery{Sources: sv, Walk: pathVerts[pi], FromEnd: true})
			connUnions = append(connUnions, [2]int{len(paths) + si, pi})
		}
	}
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			totalQueried += len(pathVerts[i])
			connQs = append(connQs, dstruct.WalkQuery{Sources: pathVerts[i], Walk: pathVerts[j], FromEnd: true})
			connUnions = append(connUnions, [2]int{i, j})
		}
	}
	for k, ans := range e.D.EdgeToWalkBatch(connQs, &e.QStats) {
		if ans.OK {
			union(connUnions[k][0], connUnions[k][1])
		}
	}
	if totalQueried > 0 {
		e.chargeBatch(c, totalQueried)
	}

	groups := make(map[int][]Piece)
	var order []int
	for i, p := range all {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], p)
	}
	// Root queries: one batch over all groups.
	var kids []*Comp
	rootQueried := 0
	rootQs := make([]dstruct.WalkQuery, 0, len(order))
	for _, r := range order {
		g := groups[r]
		nPaths := 0
		for _, p := range g {
			if p.IsPath {
				nPaths++
			}
		}
		if nPaths > 1 {
			e.Stats.Violations++
		}
		src := e.materialize(g)
		rootQueried += len(src)
		rootQs = append(rootQs, dstruct.WalkQuery{Sources: src, Walk: walk, FromEnd: true})
	}
	rootAns := e.D.EdgeToWalkBatch(rootQs, &e.QStats)
	// Charge before the children inherit c.Batches: the root-location batch
	// gates every child's traversal, so it sits on each child's chain.
	if rootQueried > 0 {
		e.chargeBatch(c, rootQueried)
	}
	for gi, r := range order {
		g := groups[r]
		hit, ok := rootAns[gi].Hit, rootAns[gi].OK
		if !ok {
			return nil, fmt.Errorf("reroot: component %v has no edge to walk (len %d)", g, len(walk))
		}
		kids = append(kids, &Comp{
			Pieces:       g,
			RC:           hit.U,
			AttachParent: hit.Z,
			Depth:        c.Depth + 1,
			Batches:      c.Batches,
		})
	}
	for _, k := range kids {
		if k.Depth > e.Stats.Rounds {
			e.Stats.Rounds = k.Depth
		}
		if k.Batches > e.Stats.Batches {
			e.Stats.Batches = k.Batches
		}
	}
	if len(kids) == 0 {
		if c.Depth+1 > e.Stats.Rounds {
			e.Stats.Rounds = c.Depth + 1
		}
		if c.Batches > e.Stats.Batches {
			e.Stats.Batches = c.Batches
		}
	}
	return kids, nil
}
