package service

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pram"
)

// BenchmarkPublish isolates the snapshot-publication step of the shard
// update loop — the work between "the maintainer finished an update" and
// "readers can see it". With the persistent adjacency structure this is a
// pointer grab plus one small Snapshot struct, so ns/op and allocs/op must
// stay flat as n (and m) grow by two orders of magnitude; any per-edge or
// per-vertex work re-introduced into the publish path shows up here as
// linear growth. Run by the CI bench-smoke step with -benchtime=1x.
func BenchmarkPublish(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.GnpConnected(n, 4.0/float64(n), rng)
			sh := &shard{mach: pram.NewMachine(2*g.NumEdges() + g.NumVertexSlots() + 1)}
			gs := &graphState{dd: core.New(g, core.Options{
				RebuildD: true,
				Headroom: 64,
				Machine:  sh.mach,
			})}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.publish("bench", gs)
			}
		})
	}
}
