package service

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pram"
)

// BenchmarkPublish isolates the snapshot-publication step of the shard
// update loop — the work between "the maintainer finished an update" and
// "readers can see it". With the persistent adjacency structure this is a
// pointer grab plus one small Snapshot struct, so ns/op and allocs/op must
// stay flat as n (and m) grow by two orders of magnitude; any per-edge or
// per-vertex work re-introduced into the publish path shows up here as
// linear growth. Run by the CI bench-smoke step with -benchtime=1x.
func BenchmarkPublish(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.GnpConnected(n, 4.0/float64(n), rng)
			sh := &shard{mach: pram.NewMachine(2*g.NumEdges() + g.NumVertexSlots() + 1)}
			gs := &graphState{dd: core.New(g, core.Options{
				RebuildD: true,
				Headroom: 64,
				Machine:  sh.mach,
			})}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.publish("bench", gs)
			}
		})
	}
}

// BenchmarkRoutingLookup prices the routing-table read path (shardFor):
// every read and every submit resolves its shard through it, so it must
// stay allocation-free and flat whether the table is empty (pure FNV hash,
// the pre-refactor behavior), hit (the graph was migrated), or missed (the
// table is populated but this ID falls through to the hash default). Run by
// the CI bench-smoke step with -benchtime=1x.
func BenchmarkRoutingLookup(b *testing.B) {
	s := New(Config{Shards: 8})
	defer s.Close()
	routed := make([]GraphID, 64)
	for i := range routed {
		routed[i] = GraphID(fmt.Sprintf("routed-%d", i))
	}
	miss := GraphID("unrouted-tenant")
	b.Run("empty-table", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s.shardFor(routed[i%len(routed)]) == nil {
				b.Fatal("nil shard")
			}
		}
	})
	// Populate the table directly (routing entries only; no graphs needed).
	s.routeMu.Lock()
	for i, id := range routed {
		if sh := s.shards[(shardIndex(id, 8)+1+i%7)%8]; sh != s.defaultShard(id) {
			s.setRouteLocked(id, sh)
		}
	}
	s.routeMu.Unlock()
	b.Run("table-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s.shardFor(routed[i%len(routed)]) == nil {
				b.Fatal("nil shard")
			}
		}
	})
	b.Run("table-miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s.shardFor(miss) == nil {
				b.Fatal("nil shard")
			}
		}
	})
}

// BenchmarkMigration measures one live handoff end to end — freeze,
// install, route flip, retire — by ping-ponging one graph between two
// shards (no WAL, so the cost is the protocol itself, not checkpoint I/O).
// ns/op is the full coordinator round trip, an upper bound on the write
// pause a tenant sees per handoff. Run by the CI bench-smoke step with
// -benchtime=1x.
func BenchmarkMigration(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := New(Config{Shards: 2})
			defer s.Close()
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.GnpConnected(n, 4.0/float64(n), rng)
			id := GraphID("ping")
			if _, err := s.CreateGraph(id, g); err != nil {
				b.Fatal(err)
			}
			home := shardIndex(id, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.MigrateGraph(id, (home+1+i)%2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
