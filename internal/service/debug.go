package service

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/obs"
)

// debugPayload is the /debug/service document: one consistent sample of the
// full metrics tree plus the retained slowest traces, JSON-encoded.
type debugPayload struct {
	Now        time.Time   `json:"now"`
	Shards     int         `json:"shards"`
	Metrics    Metrics     `json:"metrics"`
	SlowTraces []obs.Trace `json:"slow_traces"`
}

// DebugHandler returns an http.Handler exposing the service's live
// internals:
//
//	/debug/service          full Metrics sample + slowest retained traces (JSON)
//	/debug/service/traces   just the slowest-trace ring, slowest first (JSON)
//	/debug/service/tenants  hottest graphs by cumulative apply cost with each
//	                        one's exact per-tenant counters (JSON; ?k=N caps
//	                        the ranking, default 32)
//	/debug/service/history  per-shard sampled time-series — update rate,
//	                        queue depth/high-water, windowed apply p99, WAL
//	                        bytes and sync p99 (JSON, oldest point first)
//	/debug/metrics          Prometheus text exposition (format v0.0.4)
//	/debug/obs              the obs.Registry (per-shard gauges, histograms,
//	                        PRAM accounting, snapquery cache), one key per line
//	/debug/vars             process-wide expvar (memstats, cmdline)
//	/debug/pprof/           CPU/heap/goroutine/block profiles
//
// Every endpoint samples atomics and read locks only — hitting it never
// blocks a shard's update loop. Mount it on any mux or serve it directly:
//
//	go http.ListenAndServe("localhost:6060", svc.DebugHandler())
//
// The pprof and expvar handlers are the package-level ones, so profiles
// cover the whole process, not just this Service.
func (s *Service) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/service", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, debugPayload{
			Now:        time.Now(),
			Shards:     len(s.shards),
			Metrics:    s.Metrics(),
			SlowTraces: s.SlowTraces(),
		})
	})
	mux.HandleFunc("/debug/service/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.SlowTraces())
	})
	mux.HandleFunc("/debug/service/tenants", func(w http.ResponseWriter, r *http.Request) {
		k := 32
		if v := r.URL.Query().Get("k"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				k = n
			}
		}
		writeJSON(w, struct {
			Now time.Time  `json:"now"`
			Hot []HotGraph `json:"hot"`
		}{time.Now(), s.HotGraphs(k)})
	})
	mux.HandleFunc("/debug/service/history", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.History())
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		writePromMetrics(w, s.Metrics())
	})
	mux.Handle("/debug/obs", s.reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("dfs service debug endpoints:\n" +
			"  /debug/service\n  /debug/service/traces\n  /debug/service/tenants\n" +
			"  /debug/service/history\n  /debug/metrics\n  /debug/obs\n" +
			"  /debug/vars\n  /debug/pprof/\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
