package service

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestSnapshotDeltaPlumbing verifies the published delta chain end-to-end:
// the first snapshot ships without one, each later snapshot names its
// parent version and tree, back-edge rounds are flagged SameTree, batch
// rounds compose several updates into one delta, and a rejected update
// poisons the round so the next snapshot falls back to a fresh chain.
func TestSnapshotDeltaPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GnpConnected(60, 0.08, rng)
	svc := New(Config{Shards: 1})
	defer svc.Close()

	snap0, err := svc.CreateGraph("g", g)
	if err != nil {
		t.Fatal(err)
	}
	if snap0.Delta != nil {
		t.Fatal("first snapshot carries a delta")
	}

	// A tree restructuring update must publish a delta naming its parent.
	tr := snap0.Tree
	var u, v int
	found := false
	for x := 0; x < g.NumVertexSlots() && !found; x++ {
		for y := x + 1; y < g.NumVertexSlots() && !found; y++ {
			if !g.HasEdge(x, y) && !tr.IsAncestor(x, y) && !tr.IsAncestor(y, x) {
				u, v, found = x, y, true
			}
		}
	}
	if !found {
		t.Fatal("no cross edge candidate")
	}
	fut, err := svc.Apply("g", core.Update{Kind: core.InsertEdge, U: u, V: v})
	if err != nil {
		t.Fatal(err)
	}
	_, snap1, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	d := snap1.Delta
	if d == nil {
		t.Fatal("restructuring update published no delta")
	}
	if d.Parent != snap0.Version || d.ParentTree != snap0.Tree {
		t.Fatalf("delta parent = (%d,%p), want (%d,%p)", d.Parent, d.ParentTree, snap0.Version, snap0.Tree)
	}
	if d.SameTree || len(d.Moved) == 0 {
		t.Fatalf("delta = %+v, want moved set from cross-edge insert", d)
	}

	// A back edge (ancestor-descendant pair) publishes a SameTree delta.
	tr = snap1.Tree
	found = false
	for x := 0; x < g.NumVertexSlots() && !found; x++ {
		for y := 0; y < g.NumVertexSlots() && !found; y++ {
			if x != y && x != snap1.PseudoRoot && tr.Present(x) && tr.Present(y) &&
				tr.IsAncestor(x, y) && !snap1.Graph.HasEdge(x, y) {
				u, v, found = x, y, true
			}
		}
	}
	if !found {
		t.Fatal("no back edge candidate")
	}
	fut, err = svc.Apply("g", core.Update{Kind: core.InsertEdge, U: u, V: v})
	if err != nil {
		t.Fatal(err)
	}
	_, snap2, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if d := snap2.Delta; d == nil || !d.SameTree || d.Parent != snap1.Version {
		t.Fatalf("back-edge delta = %+v, want SameTree with parent %d", d, snap1.Version)
	}
	if snap2.Tree != snap1.Tree {
		t.Fatal("back-edge update replaced the tree object")
	}

	// A batch round publishes once: its delta spans both updates.
	futs, err := svc.ApplyBatch([]BatchItem{
		{Graph: "g", Update: core.Update{Kind: core.InsertVertex, Neighbors: []int{1, 7}}},
		{Graph: "g", Update: core.Update{Kind: core.InsertVertex, Neighbors: []int{2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap3 *Snapshot
	for _, f := range futs {
		if _, s, err := f.Wait(); err != nil {
			t.Fatal(err)
		} else {
			snap3 = s
		}
	}
	if snap3.Version != snap2.Version+2 {
		t.Fatalf("batch snapshot version %d, want %d", snap3.Version, snap2.Version+2)
	}
	if d := snap3.Delta; d == nil || d.Parent != snap2.Version || d.SameTree || len(d.Moved) < 2 {
		t.Fatalf("batch delta = %+v, want composed moved set with parent %d", d, snap2.Version)
	}

	// A rejected update poisons the pending round: the next successful
	// publish must ship without a delta (the chain restarts fresh).
	fut, err = svc.Apply("g", core.Update{Kind: core.InsertEdge, U: u, V: v}) // duplicate edge
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fut.Wait(); err == nil {
		t.Fatal("duplicate edge insert was accepted")
	}
	fut, err = svc.Apply("g", core.Update{Kind: core.DeleteEdge, U: u, V: v})
	if err != nil {
		t.Fatal(err)
	}
	_, snap4, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if snap4.Delta != nil {
		t.Fatal("snapshot after a rejected update still carries a delta")
	}

	// And the chain resumes on the following clean update.
	fut, err = svc.Apply("g", core.Update{Kind: core.InsertEdge, U: u, V: v})
	if err != nil {
		t.Fatal(err)
	}
	_, snap5, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if d := snap5.Delta; d == nil || d.Parent != snap4.Version {
		t.Fatalf("chain did not resume: delta = %+v, want parent %d", d, snap4.Version)
	}
}

// TestQueryPatchesAcrossVersions drives the full read path: warming one
// version's handle then querying the next version must patch, not rebuild,
// and the patched answers must match naive recomputation.
func TestQueryPatchesAcrossVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.GnpConnected(200, 0.025, rng)
	svc := New(Config{Shards: 1})
	defer svc.Close()
	if _, err := svc.CreateGraph("g", g); err != nil {
		t.Fatal(err)
	}
	h, err := svc.Query("g")
	if err != nil {
		t.Fatal(err)
	}
	h.Warm()
	base := svc.Metrics()
	if base.IndexPatches != 0 {
		t.Fatalf("patches=%d before any derived version", base.IndexPatches)
	}

	for i := 0; i < 8; i++ {
		snap, err := svc.Snapshot("g")
		if err != nil {
			t.Fatal(err)
		}
		// Delete a leaf-ish tree edge: small moved set, patchable.
		tr := snap.Tree
		var leaf int
		for v := 0; v < g.NumVertexSlots(); v++ {
			if tr.Present(v) && v != snap.PseudoRoot && len(tr.Children(v)) == 0 {
				leaf = v
				break
			}
		}
		fut, err := svc.Apply("g", core.Update{Kind: core.DeleteVertex, U: leaf})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		nh, err := svc.Query("g")
		if err != nil {
			t.Fatal(err)
		}
		nh.Warm()
		if err := nh.CheckSynced(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		checkHandleAgainstPinned(t, nh, rng, "patched")
	}
	m := svc.Metrics()
	if m.IndexPatches == 0 {
		t.Fatal("consecutive version queries never patched")
	}
	if m.IndexPatchTime <= 0 {
		t.Fatal("patch time not accounted")
	}
}
