// Package service is the multi-tenant serving layer over the fully dynamic
// DFS maintainer: one Service owns many independent graph instances and
// serves concurrent read queries against them while updates stream in.
//
// # Shard routing
//
// A Service runs a fixed set of shards. Each shard owns one goroutine (the
// update loop), one pram.Machine (worker pool + merged PRAM accounting for
// everything that runs on the shard), and the maintainers of every graph
// assigned to it. A graph ID is hashed (FNV-1a) to pick its shard at
// creation, and at any moment exactly one shard owns the graph, so all
// updates for one graph are serialized through one mailbox — a buffered
// channel of tasks — without any per-graph locking. Ownership is not fixed
// for life, though: an explicit routing table can move a graph to any shard
// while it serves (see Routing and migration). Apply enqueues one update
// and returns a Future; ApplyBatch groups a cross-graph batch by shard and
// enqueues one task per shard, so a round of k updates costs each shard one
// mailbox receive instead of k.
//
// # Routing and migration
//
// Shard resolution is a two-level lookup: an explicit routing table — a
// copy-on-write map[GraphID]*shard behind an atomic pointer, holding only
// the exceptions — consulted first, the FNV-1a hash as the default for
// every ID not in it. The read path (every submit and every read resolves
// through shardFor) is one atomic load plus one map probe: lock-free and
// allocation-free, pinned by TestRoutingLookupNoAllocs and
// BenchmarkRoutingLookup. Writers copy the map under a mutex and publish
// the replacement with a single store.
//
// MigrateGraph moves a graph between shards live, in four steps, each a
// task on the owning shard's own loop:
//
//  1. Freeze (source loop): checkpoint the graph at its current sequence —
//     mandatory when a WAL is configured, because after the handoff the
//     source's log rotations stop re-checkpointing this graph — then mark
//     it migrating, so tasks arriving behind the freeze park in a deferred
//     queue instead of applying. The maintainer state (persistent graph,
//     tree, sequence, tenant meter) is packaged zero-copy.
//  2. Install (destination loop): rebuild the maintainer from the package
//     and publish its snapshot. The copy is invisible — routing still
//     points at the source, which keeps answering reads.
//  3. Commit: append a RouteRecord to the durable route log (routes.wal,
//     fsynced) and flip the routing table. The fsynced record is the
//     migration's commit point: recovery after a crash strictly before it
//     places the graph on the source (checkpoint + logged tail), strictly
//     after it on the destination (the logged route reroutes the global
//     recovery scan) — on exactly one shard either way, with no acked
//     update lost or doubled. TestCrashRecoveryKill9's second epoch kills
//     a service mid-migration-storm and proves exactly that.
//  4. Complete (source loop): retire the source copy and replay the parked
//     tasks to the destination in order; cached query indexes and the
//     tenant's attribution meter follow the graph.
//
// Writers observe a migration as latency, never as errors: a synchronous
// writer (one update in flight, awaiting each ack) sees its updates apply
// in submission order throughout, while a writer pipelining many futures
// may see tasks parked at the freeze complete after tasks it submitted to
// the destination post-flip — the same reordering any cross-shard batch
// already exhibits. Tasks that race a flip and land on a shard that no
// longer owns the graph re-resolve the routing table and forward
// themselves (bounded by a hop cap); reads that miss the same window chase
// the route the same way. The per-handoff write pause (freeze to flip) is
// recorded in Metrics.MigrationPauseHist, alongside Migrations,
// MigrationFailures, RoutedGraphs, and per-shard in/out counters — all of
// it also in the Prometheus exposition.
//
// Config.Rebalance runs the rebalancer on top: a background goroutine that
// samples per-shard busy time every Interval, and when one shard's stays
// above Threshold× the mean for Sustain consecutive ticks, migrates one
// hot — but not dominant — graph from it to the coldest shard, with a
// per-graph Cooldown. A tenant exceeding MaxShare of its shard's load is
// deliberately never the victim: its updates are serial on any shard, so
// moving it cannot reduce the imbalance, only thrash it around the
// cluster. The victim choice comes from the shard's Space-Saving sketch —
// exactly the HotGraphs signal described under Observability.
//
// # Snapshot isolation
//
// Readers never touch a maintainer. After every applied update (or once per
// graph per batch round) the shard loop publishes an immutable Snapshot —
// the current DFS tree, the current graph version, and the update's cost
// counters — through an atomic pointer. Tree, IsAncestor, Path, Verify and
// Snapshot load that pointer and work on the frozen pair, so reads never
// block the update loop, never observe a half-applied update, and remain
// valid indefinitely.
//
// Publication is O(1) regardless of graph size. Both published structures
// are persistent: the tree because the maintainer runs without the in-place
// tree.Rebuild mode, and the graph because the maintainer mutates a
// graph.Persistent — a path-copying adjacency whose every update produces a
// new version sharing all untouched neighbor rows with its predecessors.
// Freezing either is a pointer grab (core.DynamicDFS.Frozen); there is no
// per-vertex or per-edge clone on the write path, and a retained Snapshot
// keeps its exact edge set forever because later updates copy away from
// published rows instead of writing into them (BenchmarkPublish pins the
// flat cost; TestServiceSnapshotLongevity pins the sharing guarantee).
//
// # Read path: the snapshot analytics engine
//
// Beyond the raw snapshot reads (Tree, IsAncestor, Path, Verify), Query
// returns a version-pinned QueryHandle — the snapquery analytics engine —
// answering LCA, KthAncestor/AncestorAtDepth, SubtreeSize/SubtreeAgg,
// TreePath, and the biconnectivity family (IsArticulation, Bridges,
// BiconnectedComponentOf, SameBiconnectedComponent) from derived indexes
// built over the pinned snapshot.
//
// The read path is differential. Every published Snapshot carries a Delta —
// the parent version it was derived from, the parent's tree object (an
// identity check, not just a number), the composed moved/removed vertex
// sets of the updates in between, and the back-edge SameTree flag. The
// shard loop accumulates per-update deltas from the maintainer across batch
// rounds and composes them at publication; a rejected update, a vertex-slot
// renumbering, or an error-recovery rebuild poisons the pending round and
// the next snapshot ships without a delta (the chain restarts fresh). When
// a version is queried for the first time and its parent's handle is still
// in the per-shard LRU, the tree indexes are patched from — or, for pure
// detachments and back-edge rounds, shared with — the parent's immutable
// arrays instead of being rebuilt, making first-query-on-new-version cost
// proportional to the update's churn rather than the graph
// (BenchmarkSnapshotQuery pins the patched path at ≥50× over the cold
// build for low-churn updates, with allocations proportional to the moved
// set). Biconnectivity is outside the differential regime by design: low
// points depend on the global back-edge structure, so that index is always
// built fresh. The patch silently falls back to a fresh build when the
// delta is missing or churn-heavy, the parent handle was evicted first, or
// the parent's own tour is unspliceable; answers are identical either way,
// and snapquery's CheckSynced is the oracle that proves it.
//
// Index sharing and lifetime guarantees:
//
//   - One handle per version. Every reader resolving the same (graph,
//     version) through a shard gets the same *QueryHandle, so each derived
//     index is built at most once per version: the first readers to need an
//     index share a single build under a singleflight guard, and every
//     later query on it is a pure atomic pointer load — zero construction,
//     zero allocation (BenchmarkSnapshotQuery pins the warm path at ≤1
//     alloc and the cold/warm gap at ≥100×).
//   - A QueryHandle pins exactly one version. Later updates never change
//     its answers (the pinned graph and tree are persistent; updates
//     path-copy away from them), so a handle obtained before k further
//     updates still answers for its original version, consistent with the
//     Snapshot it came from.
//   - Version chains do not accumulate. A derived handle drops its parent
//     reference as soon as its three patchable indexes materialize, so at
//     most one extra generation is retained per handle still awaiting its
//     first query.
//   - Eviction never invalidates a held handle. The per-shard LRU
//     (Config.QueryCache versions) bounds how many versions keep indexes
//     resident; evicting a version only drops the cache's reference. A
//     reader still holding the handle keeps querying it; re-querying an
//     evicted version through QuerySnapshot simply rebuilds (a cache miss),
//     with answers identical to the evicted bundle's.
//   - DropGraph purges the dropped graph's cached versions; handles and
//     snapshots already handed out stay valid. A graph re-created under a
//     dropped ID cannot alias stale indexes — the cache detects the
//     incarnation change, drops the stale entry, and never links a derived
//     handle across incarnations.
//
// # Observability
//
// The serving stack instruments itself with the dependency-free primitives
// of internal/obs; everything below samples atomics and read locks only,
// so observing the service never blocks an update loop.
//
// Metrics returns one consistent sample of every shard: queue depth and
// capacity plus the sampler-window high-water mark (the deepest the
// mailbox has been in the current or last completed sampler window — a
// burst that arrived and drained between two polls is still visible),
// applied/rejected counts, the windowed update rate, snapshot staleness,
// and the shard machine's PRAM depth/work accounting. Metrics is a pure
// read: every rate derives from monotonic cumulative counters cut into
// windows by the background sampler (below), never from read-and-reset
// state, so any number of concurrent or interleaved pollers — humans with
// curl, a Prometheus scraper, the dfsload reporter — observe identical,
// non-interfering values (TestMetricsConcurrentPollers pins this under
// -race).
//
// The sampler is one goroutine per Service. Every Config.SampleInterval it
// cuts a window at a common instant across all shards: it snapshots each
// shard's cumulative counters into a fixed-size ring
// (Config.SampleWindows, default 256), computes the windowed apply and
// WAL-sync p99 by histogram subtraction, and rolls the queue high-water
// mark over. History returns the retained per-shard time-series — update
// and reject rates, queue depth and high-water, windowed p99s, WAL
// throughput, oldest point first — so a regression is visible in-process
// without any external scrape infrastructure. Close stops the sampler
// before the shards drain.
//
// Cost is attributed per tenant, not just per shard. Every graph carries
// an obs.TenantMeter — applied/rejected updates, apply/engine/dmaint
// wall-clock, WAL bytes appended, snapquery index builds/patches, all
// single-writer or reader-side atomics — sampled lock-free by
// TenantMetrics. Because "millions of graphs" rules out iterating meters
// to find the expensive ones, each shard also feeds a bounded Space-Saving
// sketch (obs.SpaceSaving) with every update's apply nanoseconds; HotGraphs
// merges the per-shard sketches into the k most expensive graphs, hottest
// first, each with its exact meter sample and the sketch's error bound.
// This ranking is exactly the signal the shard-rebalancing roadmap item
// consumes: it names the tenant that is 90% of a saturated shard's load.
//
// Latency ships as lock-free log-bucketed histograms (obs.Histogram):
// maintainer apply time, mailbox wait, snapshot publish, batch-round size
// on the write path; index build, index patch and handle resolution on the
// read path (from the shard's snapquery cache, alongside the cache
// counters — IndexCacheHits/Misses/Evictions/Dropped/Size and the
// build-vs-patch split, where patch fallbacks also count as builds since
// that is the work they did). Per-shard snapshots merge exactly, and the
// aggregate Metrics carries that merge plus a cumulative StageTimes
// breakdown of where the update loops' wall-clock went.
//
// Every applied update is traced stage by stage (obs.Trace: mailbox wait →
// plan → reroot engine → D maintenance → publish, with outcome tags, delta
// sizes and PRAM costs; the five stages are disjoint and sum to the
// trace's total). Each shard retains its Config.SlowTraces slowest updates
// in a lock-free-admission ring; SlowTraces returns the merged slowest-
// first view.
//
// DebugHandler serves all of it over HTTP — /debug/service (metrics +
// traces as JSON), /debug/service/tenants (the HotGraphs ranking),
// /debug/service/history (the sampler's time-series), /debug/metrics
// (Prometheus text exposition, format v0.0.4, written with the stdlib-only
// obs.PromWriter: shard gauges and counters labeled by shard, stage times,
// WAL counters, snapquery cache stats, and the obs histograms as native
// Prometheus histograms — the power-of-2 buckets map directly to le
// bounds; per-tenant data stays on the JSON endpoints because unbounded
// tenant IDs do not belong in label sets), /debug/obs (the obs.Registry
// every shard publishes its gauges, histograms, machine and index cache
// into; see Obs), /debug/vars (expvar) and /debug/pprof — so a running
// service (e.g. dfsload -debugaddr) can be inspected with curl alone.
// During WAL recovery, Metrics and /debug/service also report replay
// progress (graphs recovered / total, records replayed), so degraded-mode
// reads are diagnosable while the backlog drains.
//
// # Stats threading
//
// Snapshot isolation is only sound because D's query path is read-only:
// every EdgeToWalk-family call threads a caller-supplied per-call
// *dstruct.Stats accumulator through its shard/reduce internals instead of
// mutating shared state on D. The engine rolls its accumulator into the
// maintainer per update; the maintainer's running total is republished in
// each Snapshot. Concurrent readers of one published structure therefore
// need no synchronization at all.
//
// # Durability
//
// With Config.WAL set (use Open, not New, to surface recovery errors) each
// shard appends every accepted update to its own write-ahead log before the
// update is acknowledged or its snapshot published: a durably acked update
// is on disk, and a reader can never observe state that a crash could roll
// back. Records are length-prefixed, CRC32C-framed (internal/wal), so a
// torn tail — the expected shape of a kill -9 or power cut mid-append — is
// detected by framing alone and recovery keeps the clean prefix; a record
// too large for the frame bound is rejected before any byte is written
// (wal.ErrTooLarge), so an un-replayable record can never be acknowledged.
// Open also takes an exclusive lock on the directory (flock on wal.lock,
// wal.ErrLocked when held), so two services can never interleave appends
// into the same shard logs; the kernel drops the lock with the process, so
// a kill -9 never wedges the successor's recovery.
//
// Fsync cost is a policy, not a constant. SyncAlways pays one fsync per
// record (strongest, slowest); SyncBatch — the default — group-commits one
// fsync per mailbox round, so a k-update batch amortizes the disk barrier
// k ways while keeping the append-before-ack ordering (BenchmarkWALAppend
// pins the amortization); SyncInterval bounds the unsynced window by time
// for workloads that accept losing the last interval on power failure
// (kill -9 loses nothing under any policy: the page cache survives the
// process). A WAL I/O error fail-stops the shard's write path — updates
// are rejected with the sticky error, nothing further is acked — rather
// than risk acking updates that hit a sequence hole; reads keep serving
// the last published snapshots.
//
// Checkpoints bound both log growth and recovery time: every
// Config.WAL.CheckpointEvery applied updates the shard serializes each of
// its graphs' published persistent graph + tree (temp file, fsync, rename)
// and truncates its log; a graph's creation writes its version-0
// checkpoint before CreateGraph acknowledges, so a graph exists durably
// iff its checkpoint does. DropGraph deletes the checkpoints first and
// then rotates the log, so a same-ID re-creation can never replay records
// from a dead incarnation (a crash between the two steps leaves orphan
// records that recovery counts and skips).
//
// Recovery (Open with a non-empty WAL directory) is torn-tail tolerant
// and shard-count independent: the routing table is restored first from
// the route log (last record per graph wins, entries without a checkpoint
// fold away, the survivors are compacted back), then all update logs are
// scanned globally, records are rerouted to the current shard mapping —
// logged routes included — per-graph tails are ordered by sequence number, and anything at or below the checkpoint's sequence is
// skipped while a genuine gap fails loudly (ErrCorrupt) instead of
// silently diverging. In the spirit of the paper's fault-tolerant model
// (Theorem 14) — serve from the preprocessed structure while updates are
// reapplied — recovered graphs serve degraded reads immediately: their
// checkpoint snapshots are published before the shard loops start, reads
// and analytics queries answer from them while each shard replays its
// tail through the normal maintainer apply path, and the flip from
// degraded to live is one atomic snapshot publication per graph
// (Recovering / WaitRecovered expose the transition; a post-recovery
// checkpoint then re-truncates the logs so restart cost does not
// accumulate). When the shard count changed, an inherited log file can
// hold the only durable copy of tails for graphs rerouted to other shards:
// its truncation is deferred until every shard has recovered and
// re-checkpointed (the recovery barrier), so no crash window can roll a
// rerouted graph back behind its acknowledged tail — until then replay
// simply skips the checkpoint-covered prefix. Crash-injection hooks
// (wal.Injector: fail or shorten the
// Nth write, fail the Nth fsync) drive the fault-path tests, and the
// process-level harness (cmd/dfsload -wal -acklog, TestCrashRecoveryKill9
// and the CI crash-recovery job) kills a loaded service with SIGKILL and
// proves the replayed state matches the pre-crash durably-acked state by
// edge-set equality plus CheckSynced.
//
// # Lifecycle
//
// Close drains: new submissions are rejected, every task already in a
// mailbox is processed and its Future resolved, then the shard goroutines
// exit. Reads keep working after Close (snapshots are retained).
// CloseContext is the deadline-bounded variant: a wedged or backlogged
// shard past the deadline yields a *ShutdownError naming each undrained
// shard with its queue depth (and unwrapping to the context's error)
// instead of hanging; the shards keep draining in the background.
package service
