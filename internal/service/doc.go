// Package service is the multi-tenant serving layer over the fully dynamic
// DFS maintainer: one Service owns many independent graph instances and
// serves concurrent read queries against them while updates stream in.
//
// # Shard routing
//
// A Service runs a fixed set of shards. Each shard owns one goroutine (the
// update loop), one pram.Machine (worker pool + merged PRAM accounting for
// everything that runs on the shard), and the maintainers of every graph
// assigned to it. A graph ID is hashed (FNV-1a) to its shard at creation
// and never moves, so all updates for one graph are serialized through one
// mailbox — a buffered channel of tasks — without any per-graph locking.
// Apply enqueues one update and returns a Future; ApplyBatch groups a
// cross-graph batch by shard and enqueues one task per shard, so a round of
// k updates costs each shard one mailbox receive instead of k.
//
// # Snapshot isolation
//
// Readers never touch a maintainer. After every applied update (or once per
// graph per batch round) the shard loop publishes an immutable Snapshot —
// the current DFS tree, the current graph version, and the update's cost
// counters — through an atomic pointer. Tree, IsAncestor, Path, Verify and
// Snapshot load that pointer and work on the frozen pair, so reads never
// block the update loop, never observe a half-applied update, and remain
// valid indefinitely.
//
// Publication is O(1) regardless of graph size. Both published structures
// are persistent: the tree because the maintainer runs without the in-place
// tree.Rebuild mode, and the graph because the maintainer mutates a
// graph.Persistent — a path-copying adjacency whose every update produces a
// new version sharing all untouched neighbor rows with its predecessors.
// Freezing either is a pointer grab (core.DynamicDFS.Frozen); there is no
// per-vertex or per-edge clone on the write path, and a retained Snapshot
// keeps its exact edge set forever because later updates copy away from
// published rows instead of writing into them (BenchmarkPublish pins the
// flat cost; TestServiceSnapshotLongevity pins the sharing guarantee).
//
// # Stats threading
//
// Snapshot isolation is only sound because D's query path is read-only:
// every EdgeToWalk-family call threads a caller-supplied per-call
// *dstruct.Stats accumulator through its shard/reduce internals instead of
// mutating shared state on D. The engine rolls its accumulator into the
// maintainer per update; the maintainer's running total is republished in
// each Snapshot. Concurrent readers of one published structure therefore
// need no synchronization at all.
//
// # Lifecycle
//
// Close drains: new submissions are rejected, every task already in a
// mailbox is processed and its Future resolved, then the shard goroutines
// exit. Reads keep working after Close (snapshots are retained).
package service
