package service

import "time"

// ShardMetrics is one shard's operational counters, sampled at call time.
type ShardMetrics struct {
	Shard      int
	Graphs     int
	QueueDepth int // tasks waiting in the mailbox
	QueueCap   int
	Updates    uint64 // updates applied since start
	Rejected   uint64 // updates the maintainer rejected
	// UpdatesPerSec is the lifetime average rate of the shard's loop.
	UpdatesPerSec float64
	// OldestSnapshotAge is the age of the stalest published snapshot among
	// the shard's graphs (0 when the shard has none): how far behind the
	// slowest tenant's readers can be.
	OldestSnapshotAge time.Duration
	// PRAMDepth/PRAMWork are the machine's merged model costs across every
	// maintainer on the shard.
	PRAMDepth int64
	PRAMWork  int64
}

// Metrics aggregates the per-shard samples.
type Metrics struct {
	Shards        []ShardMetrics
	Graphs        int
	Updates       uint64
	Rejected      uint64
	UpdatesPerSec float64
}

// Metrics samples every shard. It takes only read locks and never touches
// the update loops.
func (s *Service) Metrics() Metrics {
	now := time.Now()
	out := Metrics{Shards: make([]ShardMetrics, len(s.shards))}
	for i, sh := range s.shards {
		var oldest time.Duration
		sh.mu.RLock()
		graphs := len(sh.graphs)
		for _, gs := range sh.graphs {
			if snap := gs.snap.Load(); snap != nil {
				if age := now.Sub(snap.PublishedAt); age > oldest {
					oldest = age
				}
			}
		}
		sh.mu.RUnlock()
		updates := sh.updates.Load()
		elapsed := now.Sub(sh.started).Seconds()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(updates) / elapsed
		}
		out.Shards[i] = ShardMetrics{
			Shard:             sh.idx,
			Graphs:            graphs,
			QueueDepth:        len(sh.mailbox),
			QueueCap:          cap(sh.mailbox),
			Updates:           updates,
			Rejected:          sh.rejected.Load(),
			UpdatesPerSec:     rate,
			OldestSnapshotAge: oldest,
			PRAMDepth:         sh.mach.Depth(),
			PRAMWork:          sh.mach.Work(),
		}
		out.Graphs += graphs
		out.Updates += updates
		out.Rejected += out.Shards[i].Rejected
		out.UpdatesPerSec += rate
	}
	return out
}
