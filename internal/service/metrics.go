package service

import "time"

// ShardMetrics is one shard's operational counters, sampled at call time.
type ShardMetrics struct {
	Shard      int
	Graphs     int
	QueueDepth int // tasks waiting in the mailbox
	QueueCap   int
	Updates    uint64 // updates applied since start
	Rejected   uint64 // updates the maintainer rejected
	// UpdatesPerSec is the shard loop's applied-update rate over the window
	// since the previous Metrics call (all callers share one window per
	// shard). The first sample has no previous call, so it reports the
	// lifetime average since shard start; subsequent samples are true
	// deltas, so a stalled shard decays to 0 on the next poll instead of
	// coasting on its lifetime average forever.
	UpdatesPerSec float64
	// OldestSnapshotAge is the age of the stalest published snapshot among
	// the shard's graphs (0 when the shard has none): how far behind the
	// slowest tenant's readers can be.
	OldestSnapshotAge time.Duration
	// PRAMDepth/PRAMWork are the machine's merged model costs across every
	// maintainer on the shard; PRAMProcs is the machine's current model
	// processor budget (the per-instance maximum over the shard's graphs,
	// recomputed when a tenant is dropped).
	PRAMDepth int64
	PRAMWork  int64
	PRAMProcs int
	// Index-cache counters of the shard's snapshot analytics engine:
	// IndexCacheHits/Misses count Query resolutions served from / added to
	// the per-shard LRU of derived-index bundles, IndexCacheEvictions the
	// versions aged out by capacity, IndexCacheDropped the versions removed
	// by a graph drop or a stale-incarnation collision, IndexCacheSize the
	// versions currently resident. IndexBuilds counts fresh index
	// constructions (≤ 4 per version: LCA, bicon, aggregates, lifting) and
	// IndexBuildTime their summed wall-clock cost; IndexPatches counts the
	// index derivations that instead patched the parent version's arrays
	// from the snapshot delta (IndexPatchTime their cost), and
	// IndexPatchFallbacks the builds that had a parent on hand but declined
	// the patch — churn past the ratio threshold or a renumbered vertex
	// space (fallbacks are also included in IndexBuilds).
	IndexCacheHits      uint64
	IndexCacheMisses    uint64
	IndexCacheEvictions uint64
	IndexCacheDropped   uint64
	IndexCacheSize      int
	IndexBuilds         uint64
	IndexBuildTime      time.Duration
	IndexPatches        uint64
	IndexPatchTime      time.Duration
	IndexPatchFallbacks uint64
}

// Metrics aggregates the per-shard samples.
type Metrics struct {
	Shards        []ShardMetrics
	Graphs        int
	Updates       uint64
	Rejected      uint64
	UpdatesPerSec float64
	// Aggregated index-cache counters across shards.
	IndexCacheHits      uint64
	IndexCacheMisses    uint64
	IndexCacheEvictions uint64
	IndexCacheDropped   uint64
	IndexBuilds         uint64
	IndexBuildTime      time.Duration
	IndexPatches        uint64
	IndexPatchTime      time.Duration
	IndexPatchFallbacks uint64
}

// Metrics samples every shard. It takes only read locks and never touches
// the update loops.
func (s *Service) Metrics() Metrics {
	now := time.Now()
	out := Metrics{Shards: make([]ShardMetrics, len(s.shards))}
	for i, sh := range s.shards {
		var oldest time.Duration
		sh.mu.RLock()
		graphs := len(sh.graphs)
		for _, gs := range sh.graphs {
			if snap := gs.snap.Load(); snap != nil {
				if age := now.Sub(snap.PublishedAt); age > oldest {
					oldest = age
				}
			}
		}
		sh.mu.RUnlock()
		// Load the counter inside the sample lock so concurrent Metrics
		// callers record monotone (time, count) pairs: a stale count stored
		// after a newer one would make the next delta underflow.
		sh.sampleMu.Lock()
		updates := sh.updates.Load()
		prevAt, prevCount := sh.sampledAt, sh.sampledCount
		sh.sampledAt, sh.sampledCount = now, updates
		sh.sampleMu.Unlock()
		if prevAt.IsZero() {
			// First sample: no previous call to delta against, so the window
			// is the shard's whole lifetime.
			prevAt, prevCount = sh.started, 0
		}
		rate := 0.0
		if elapsed := now.Sub(prevAt).Seconds(); elapsed > 0 {
			rate = float64(updates-prevCount) / elapsed
		}
		qs := sh.qcache.Stats()
		out.Shards[i] = ShardMetrics{
			Shard:               sh.idx,
			Graphs:              graphs,
			QueueDepth:          len(sh.mailbox),
			QueueCap:            cap(sh.mailbox),
			Updates:             updates,
			Rejected:            sh.rejected.Load(),
			UpdatesPerSec:       rate,
			OldestSnapshotAge:   oldest,
			PRAMDepth:           sh.mach.Depth(),
			PRAMWork:            sh.mach.Work(),
			PRAMProcs:           sh.mach.Procs(),
			IndexCacheHits:      qs.Hits,
			IndexCacheMisses:    qs.Misses,
			IndexCacheEvictions: qs.Evictions,
			IndexCacheDropped:   qs.Dropped,
			IndexCacheSize:      qs.Size,
			IndexBuilds:         qs.Builds,
			IndexBuildTime:      qs.BuildTime,
			IndexPatches:        qs.Patches,
			IndexPatchTime:      qs.PatchTime,
			IndexPatchFallbacks: qs.PatchFallbacks,
		}
		out.Graphs += graphs
		out.Updates += updates
		out.Rejected += out.Shards[i].Rejected
		out.UpdatesPerSec += rate
		out.IndexCacheHits += qs.Hits
		out.IndexCacheMisses += qs.Misses
		out.IndexCacheEvictions += qs.Evictions
		out.IndexCacheDropped += qs.Dropped
		out.IndexBuilds += qs.Builds
		out.IndexBuildTime += qs.BuildTime
		out.IndexPatches += qs.Patches
		out.IndexPatchTime += qs.PatchTime
		out.IndexPatchFallbacks += qs.PatchFallbacks
	}
	return out
}
