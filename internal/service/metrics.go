package service

import (
	"time"

	"repro/internal/obs"
)

// StageTimes is the cumulative wall-clock a shard's update loop spent in
// each trace stage across every applied update (see obs.Trace for the
// stage definitions). The five fields are disjoint, so their sum is the
// loop's total instrumented update time.
type StageTimes struct {
	Wait    time.Duration `json:"wait"`
	Plan    time.Duration `json:"plan"`
	Engine  time.Duration `json:"engine"`
	DMaint  time.Duration `json:"dmaint"`
	Publish time.Duration `json:"publish"`
}

// Add folds o into s.
func (s *StageTimes) Add(o StageTimes) {
	s.Wait += o.Wait
	s.Plan += o.Plan
	s.Engine += o.Engine
	s.DMaint += o.DMaint
	s.Publish += o.Publish
}

// Total returns the sum of the five stages.
func (s StageTimes) Total() time.Duration {
	return s.Wait + s.Plan + s.Engine + s.DMaint + s.Publish
}

// ShardMetrics is one shard's operational counters, sampled at call time.
type ShardMetrics struct {
	Shard      int
	Graphs     int
	QueueDepth int // tasks waiting in the mailbox at sample time
	QueueCap   int
	// QueueHighWater is the deepest the mailbox has been over the sampler's
	// last completed window plus the in-progress one (submitters raise the
	// mark on every send), so a burst that arrived and drained entirely
	// between two polls is still visible. The background sampler owns the
	// window reset; Metrics only reads, so concurrent pollers never consume
	// each other's windows.
	QueueHighWater int
	Updates        uint64 // updates applied since start
	Rejected       uint64 // updates the maintainer rejected
	// UpdatesPerSec is the shard loop's applied-update rate over the
	// background sampler's last completed window: the delta of the
	// cumulative update counter between the ring's two newest points.
	// Until two samples exist it reports the lifetime average since the
	// service-wide start instant. The rate is derived — Metrics mutates
	// nothing — so any number of concurrent pollers see the same value,
	// and because one ticker cuts every shard's window at the same
	// instant, the aggregate is a sum of rates over one common window. A
	// stalled shard decays to 0 once a windowed sample shows no progress.
	UpdatesPerSec float64
	// OldestSnapshotAge is the age of the stalest published snapshot among
	// the shard's graphs (0 when the shard has none): how far behind the
	// slowest tenant's readers can be.
	OldestSnapshotAge time.Duration
	// PRAMDepth/PRAMWork are the machine's merged model costs across every
	// maintainer on the shard; PRAMProcs is the machine's current model
	// processor budget (the per-instance maximum over the shard's graphs,
	// recomputed when a tenant is dropped).
	PRAMDepth int64
	PRAMWork  int64
	PRAMProcs int

	// Write-path latency distributions (log-bucketed histograms; nanosecond
	// samples unless noted): ApplyHist is the maintainer apply time per
	// update (rejected updates included — they did work), MailboxWaitHist
	// the submit→receive wait per task, PublishHist the snapshot
	// publication time per publication, and BatchSizeHist the entries per
	// coalesced batch round (unitless). Snapshots merge across shards; the
	// aggregate Metrics carries exactly that merge.
	ApplyHist       obs.HistSnapshot
	MailboxWaitHist obs.HistSnapshot
	PublishHist     obs.HistSnapshot
	BatchSizeHist   obs.HistSnapshot

	// Stages is the cumulative stage-time breakdown of every applied
	// update: where the shard's update wall-clock actually went (mailbox
	// wait vs planning queries vs rerooting vs D maintenance vs publish).
	Stages StageTimes

	// Index-cache counters of the shard's snapshot analytics engine:
	// IndexCacheHits/Misses count Query resolutions served from / added to
	// the per-shard LRU of derived-index bundles, IndexCacheEvictions the
	// versions aged out by capacity, IndexCacheDropped the versions removed
	// by a graph drop or a stale-incarnation collision, IndexCacheSize the
	// versions currently resident. IndexBuilds counts fresh index
	// constructions (≤ 4 per version: LCA, bicon, aggregates, lifting) and
	// IndexBuildTime their summed wall-clock cost; IndexPatches counts the
	// index derivations that instead patched the parent version's arrays
	// from the snapshot delta (IndexPatchTime their cost), and
	// IndexPatchFallbacks the builds that had a parent on hand but declined
	// the patch — churn past the ratio threshold or a renumbered vertex
	// space (fallbacks are also included in IndexBuilds). The three
	// histograms carry the corresponding read-path distributions: per-index
	// build and patch durations, and handle-resolution latency.
	IndexCacheHits      uint64
	IndexCacheMisses    uint64
	IndexCacheEvictions uint64
	IndexCacheDropped   uint64
	IndexCacheSize      int
	IndexBuilds         uint64
	IndexBuildTime      time.Duration
	IndexPatches        uint64
	IndexPatchTime      time.Duration
	IndexPatchFallbacks uint64
	IndexBuildHist      obs.HistSnapshot
	IndexPatchHist      obs.HistSnapshot
	QueryResolveHist    obs.HistSnapshot

	// Migration traffic: graphs this shard received from / handed to other
	// shards through completed live migrations.
	MigrationsIn  uint64
	MigrationsOut uint64

	// Durability counters; all zero when the service runs without a WAL.
	// WALRecovering is true while the shard still serves degraded checkpoint
	// snapshots; WALFailed carries the sticky write-path failure (the shard
	// is fail-stopped — serving reads, rejecting writes — when non-empty).
	WALEnabled     bool
	WALRecovering  bool
	WALFailed      string
	WALAppends     uint64 // records appended since open
	WALAppendBytes uint64
	WALSyncs       uint64 // fsyncs issued (appends / syncs = group-commit fan-in)
	WALReplayed    uint64 // records replayed by recovery
	WALSkipped     uint64 // recovery records already covered by a checkpoint
	WALCheckpoints uint64 // checkpoint files written
	WALAppendHist  obs.HistSnapshot
	WALSyncHist    obs.HistSnapshot
	WALReplayHist  obs.HistSnapshot
}

// Metrics aggregates the per-shard samples. Every histogram is the exact
// merge of the per-shard snapshots taken by the same call, and the
// aggregate UpdatesPerSec is the sum of per-shard rates over one common
// window (see ShardMetrics.UpdatesPerSec), so the aggregate is always
// internally consistent with the Shards slice it ships with.
type Metrics struct {
	Shards        []ShardMetrics
	Graphs        int
	Updates       uint64
	Rejected      uint64
	UpdatesPerSec float64

	// Merged write-path latency distributions and stage breakdown.
	ApplyHist       obs.HistSnapshot
	MailboxWaitHist obs.HistSnapshot
	PublishHist     obs.HistSnapshot
	BatchSizeHist   obs.HistSnapshot
	Stages          StageTimes

	// Aggregated index-cache counters across shards.
	IndexCacheHits      uint64
	IndexCacheMisses    uint64
	IndexCacheEvictions uint64
	IndexCacheDropped   uint64
	IndexBuilds         uint64
	IndexBuildTime      time.Duration
	IndexPatches        uint64
	IndexPatchTime      time.Duration
	IndexPatchFallbacks uint64
	IndexBuildHist      obs.HistSnapshot
	IndexPatchHist      obs.HistSnapshot
	QueryResolveHist    obs.HistSnapshot

	// Migration and routing state. Migrations counts completed live graph
	// handoffs, MigrationFailures the attempts that aborted (the graph
	// stayed where it was), RoutedGraphs the graphs currently routed away
	// from their hash shard (the routing table's size), and
	// MigrationPauseHist the distribution of each handoff's write pause —
	// freeze on the source to routing flip, the window during which the
	// graph's writes were deferred.
	Migrations         uint64
	MigrationFailures  uint64
	RoutedGraphs       int
	MigrationPauseHist obs.HistSnapshot

	// Aggregated durability counters (see ShardMetrics). WALRecovering is
	// true while any shard is degraded; WALTornTails and WALOrphanRecords
	// describe what the last recovery scan found (a torn final record per
	// crashed log is normal; orphans belong to dropped graphs).
	WALEnabled    bool
	WALRecovering bool
	// Recovery progress of the last Open: graphs the recovery scan routed
	// to shards and how many have flipped from degraded checkpoint
	// snapshots to live replayed state. Equal once recovery completes.
	WALRecoveryGraphsTotal int64
	WALRecoveryGraphsDone  int64
	WALAppends             uint64
	WALAppendBytes         uint64
	WALSyncs               uint64
	WALReplayed            uint64
	WALSkipped             uint64
	WALCheckpoints         uint64
	WALTornTails           int
	WALOrphanRecords       int
	WALAppendHist          obs.HistSnapshot
	WALSyncHist            obs.HistSnapshot
	WALReplayHist          obs.HistSnapshot
}

// Metrics samples every shard. It takes only read locks and never touches
// the update loops.
func (s *Service) Metrics() Metrics {
	now := time.Now()
	out := Metrics{Shards: make([]ShardMetrics, len(s.shards))}
	for i, sh := range s.shards {
		var oldest time.Duration
		sh.mu.RLock()
		graphs := len(sh.graphs)
		for _, gs := range sh.graphs {
			if snap := gs.snap.Load(); snap != nil {
				if age := now.Sub(snap.PublishedAt); age > oldest {
					oldest = age
				}
			}
		}
		sh.mu.RUnlock()
		updates := sh.updates.Load()
		prev, last, n := sh.series.LastTwo()
		rate := 0.0
		switch {
		case n >= 2:
			// The sampler's last completed window: cumulative counter delta
			// between the ring's two newest points.
			if elapsed := last.At.Sub(prev.At).Seconds(); elapsed > 0 {
				rate = float64(last.Values[sUpdates]-prev.Values[sUpdates]) / elapsed
			}
		case n == 1:
			if elapsed := last.At.Sub(sh.started).Seconds(); elapsed > 0 {
				rate = float64(last.Values[sUpdates]) / elapsed
			}
		default:
			// No sample yet (poll before the first tick): lifetime average
			// over the shared start instant, identical across shards.
			if elapsed := now.Sub(sh.started).Seconds(); elapsed > 0 {
				rate = float64(updates) / elapsed
			}
		}
		// Queue high water: the in-progress window (raised by submitters
		// since the last sampler tick) or the last completed one, whichever
		// is deeper — and never below the current depth.
		depth := len(sh.mailbox)
		hwm := int(sh.queueHWM.Load())
		if n >= 1 {
			if w := int(last.Values[sQueueHWM]); w > hwm {
				hwm = w
			}
		}
		if depth > hwm {
			hwm = depth
		}
		stages := StageTimes{
			Wait:    time.Duration(sh.stageNanos[0].Load()),
			Plan:    time.Duration(sh.stageNanos[1].Load()),
			Engine:  time.Duration(sh.stageNanos[2].Load()),
			DMaint:  time.Duration(sh.stageNanos[3].Load()),
			Publish: time.Duration(sh.stageNanos[4].Load()),
		}
		qs := sh.qcache.Stats()
		out.Shards[i] = ShardMetrics{
			Shard:               sh.idx,
			Graphs:              graphs,
			QueueDepth:          depth,
			QueueCap:            cap(sh.mailbox),
			QueueHighWater:      hwm,
			Updates:             updates,
			Rejected:            sh.rejected.Load(),
			UpdatesPerSec:       rate,
			OldestSnapshotAge:   oldest,
			PRAMDepth:           sh.mach.Depth(),
			PRAMWork:            sh.mach.Work(),
			PRAMProcs:           sh.mach.Procs(),
			ApplyHist:           sh.applyHist.Snapshot(),
			MailboxWaitHist:     sh.waitHist.Snapshot(),
			PublishHist:         sh.publishHist.Snapshot(),
			BatchSizeHist:       sh.batchHist.Snapshot(),
			Stages:              stages,
			IndexCacheHits:      qs.Hits,
			IndexCacheMisses:    qs.Misses,
			IndexCacheEvictions: qs.Evictions,
			IndexCacheDropped:   qs.Dropped,
			IndexCacheSize:      qs.Size,
			IndexBuilds:         qs.Builds,
			IndexBuildTime:      qs.BuildTime,
			IndexPatches:        qs.Patches,
			IndexPatchTime:      qs.PatchTime,
			IndexPatchFallbacks: qs.PatchFallbacks,
			IndexBuildHist:      qs.BuildHist,
			IndexPatchHist:      qs.PatchHist,
			QueryResolveHist:    qs.ResolveHist,
			MigrationsIn:        sh.migrationsIn.Load(),
			MigrationsOut:       sh.migrationsOut.Load(),
		}
		sm := &out.Shards[i]
		if w := sh.w; w != nil {
			ls := w.log.Stats()
			sm.WALEnabled = true
			sm.WALRecovering = w.recovering.Load()
			if err := w.err(); err != nil {
				sm.WALFailed = err.Error()
			}
			sm.WALAppends = ls.Appends
			sm.WALAppendBytes = ls.AppendBytes
			sm.WALSyncs = ls.Syncs
			sm.WALReplayed = w.replayed.Load()
			sm.WALSkipped = w.skipped.Load()
			sm.WALCheckpoints = w.checkpoints.Load()
			sm.WALAppendHist = w.appendHist.Snapshot()
			sm.WALSyncHist = w.syncHist.Snapshot()
			sm.WALReplayHist = w.replayHist.Snapshot()
			out.WALEnabled = true
			if sm.WALRecovering {
				out.WALRecovering = true
			}
			out.WALAppends += sm.WALAppends
			out.WALAppendBytes += sm.WALAppendBytes
			out.WALSyncs += sm.WALSyncs
			out.WALReplayed += sm.WALReplayed
			out.WALSkipped += sm.WALSkipped
			out.WALCheckpoints += sm.WALCheckpoints
			out.WALAppendHist.Merge(sm.WALAppendHist)
			out.WALSyncHist.Merge(sm.WALSyncHist)
			out.WALReplayHist.Merge(sm.WALReplayHist)
		}
		out.Graphs += graphs
		out.Updates += updates
		out.Rejected += sm.Rejected
		out.UpdatesPerSec += rate
		out.ApplyHist.Merge(sm.ApplyHist)
		out.MailboxWaitHist.Merge(sm.MailboxWaitHist)
		out.PublishHist.Merge(sm.PublishHist)
		out.BatchSizeHist.Merge(sm.BatchSizeHist)
		out.Stages.Add(sm.Stages)
		out.IndexCacheHits += qs.Hits
		out.IndexCacheMisses += qs.Misses
		out.IndexCacheEvictions += qs.Evictions
		out.IndexCacheDropped += qs.Dropped
		out.IndexBuilds += qs.Builds
		out.IndexBuildTime += qs.BuildTime
		out.IndexPatches += qs.Patches
		out.IndexPatchTime += qs.PatchTime
		out.IndexPatchFallbacks += qs.PatchFallbacks
		out.IndexBuildHist.Merge(sm.IndexBuildHist)
		out.IndexPatchHist.Merge(sm.IndexPatchHist)
		out.QueryResolveHist.Merge(sm.QueryResolveHist)
	}
	out.Migrations = s.migrations.Load()
	out.MigrationFailures = s.migFailures.Load()
	out.RoutedGraphs = s.RoutedGraphs()
	out.MigrationPauseHist = s.migPauseHist.Snapshot()
	out.WALTornTails = s.walTorn
	out.WALOrphanRecords = s.walOrphans
	out.WALRecoveryGraphsTotal = s.recGraphsTotal.Load()
	out.WALRecoveryGraphsDone = s.recGraphsDone.Load()
	return out
}
