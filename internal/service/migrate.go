package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tree"
	"repro/internal/wal"
)

// migPackage is one graph's frozen state in transit between shards. It is
// built from the maintainer (not the published snapshot: a rejected update's
// error recovery can renumber the tree without publishing, so the snapshot
// may lag the maintainer), and everything in it is immutable or handed over
// wholesale — the persistent graph and tree are shared zero-copy, the meter
// pointer moves so the tenant's cumulative attribution survives the hop.
type migPackage struct {
	g       *graph.Persistent
	t       *tree.Tree
	pseudo  int
	seq     uint64 // maintainer update count at freeze = handoff version
	meter   *obs.TenantMeter
	hotCost uint64 // source sketch's apply-cost estimate, seeds the destination's
	frozeAt time.Time
}

// MigrateGraph moves id's graph live from its current shard to shard dst,
// preserving exactness: no acknowledged update is lost or applied twice, and
// reads keep being served throughout (the source copy answers until the
// routing entry flips, the destination's installed copy after). The protocol:
//
//  1. Freeze on the source loop: checkpoint the graph at its current
//     sequence (mandatory — after the handoff the source's log rotation no
//     longer re-checkpoints this graph, so the checkpoint is what keeps its
//     logged tail coverable), mark it migrating so subsequent tasks park in
//     its deferred queue, and package the maintainer state.
//  2. Install on the destination loop: rebuild the maintainer from the
//     package and publish its snapshot. The copy stays invisible — routing
//     still points at the source.
//  3. Commit: append the RouteRecord to the durable route log (fsync) and
//     flip the copy-on-write routing table. This is the commit point; a
//     crash before it recovers the graph on the source, after it on the
//     destination, never both (recovery consults the logged route).
//  4. Complete on the source loop: retire the source copy and collect the
//     parked tasks, which are then replayed to the destination in order.
//     Cached query indexes follow the graph.
//
// Writers see the handoff as added latency, not errors: the write pause per
// migration (freeze to flip) is recorded in Metrics' MigrationPauseHist.
// Migrations are serialized — at most one graph is in transit at a time.
// Migrating to the shard the graph already lives on is a no-op.
func (s *Service) MigrateGraph(id GraphID, dst int) error {
	if dst < 0 || dst >= len(s.shards) {
		return fmt.Errorf("service: migrate %q: shard %d out of range [0,%d)", id, dst, len(s.shards))
	}
	if s.closed.Load() {
		return ErrClosed
	}
	s.migMu.Lock()
	defer s.migMu.Unlock()
	src := s.shardFor(id)
	dsh := s.shards[dst]
	if src == dsh {
		return nil
	}

	var pkg migPackage
	if err := s.runOn(src, func() error { return src.migFreeze(id, &pkg) }); err != nil {
		s.migFailures.Add(1)
		return fmt.Errorf("service: migrate %q: freeze: %w", id, err)
	}
	if err := s.runOn(dsh, func() error { return dsh.migInstall(id, &pkg) }); err != nil {
		s.abortMigration(src, id)
		s.migFailures.Add(1)
		return fmt.Errorf("service: migrate %q: install: %w", id, err)
	}
	if err := s.commitRoute(id, dsh, pkg.seq); err != nil {
		// The flip never became durable: tear the invisible destination copy
		// back down and resume serving from the source, exactly as if the
		// migration had not been attempted.
		s.runOn(dsh, func() error { dsh.migRemove(id); return nil })
		s.abortMigration(src, id)
		s.migFailures.Add(1)
		return fmt.Errorf("service: migrate %q: commit: %w", id, err)
	}
	pause := time.Since(pkg.frozeAt)

	var deferred []task
	if err := s.runOn(src, func() error { deferred = src.migComplete(id); return nil }); err != nil {
		// Source loop already gone (service closing). The route is flipped
		// and durable; any tasks the source parked resolve ErrClosed in its
		// run() cleanup.
		deferred = nil
	}
	for _, dt := range deferred {
		if err := dsh.submit(dt); err != nil {
			dt.fut.resolve(-1, nil, err)
		}
	}
	src.qcache.MoveGraph(string(id), dsh.qcache)

	s.migrations.Add(1)
	src.migrationsOut.Add(1)
	dsh.migrationsIn.Add(1)
	s.migPauseHist.Record(pause)
	return nil
}

// runOn runs fn on sh's update loop and waits for it. The returned error is
// fn's, or the submission failure when the shard is closed.
func (s *Service) runOn(sh *shard, fn func() error) error {
	var ferr error
	fut := newFuture()
	if err := sh.submit(task{kind: taskFunc, fn: func() { ferr = fn() }, fut: fut}); err != nil {
		return err
	}
	fut.Wait()
	return ferr
}

// abortMigration unfreezes id on src and replays its parked tasks locally,
// restoring the pre-migration world. Best-effort: if the shard is closing,
// run()'s cleanup resolves the parked futures instead.
func (s *Service) abortMigration(src *shard, id GraphID) {
	headroom := s.cfg.Headroom
	s.runOn(src, func() error { src.migAbort(id, headroom); return nil })
}

// migFreeze is migration step 1, on the source shard's loop: checkpoint the
// graph at its current sequence, freeze it (tasks park in deferred from here
// on), and package the maintainer state for the destination.
func (sh *shard) migFreeze(id GraphID, pkg *migPackage) error {
	pkg.frozeAt = time.Now()
	gs := sh.lookup(id)
	if gs == nil {
		return ErrUnknownGraph
	}
	if gs.migrating {
		return errors.New("already migrating")
	}
	if err := sh.walGate(); err != nil {
		return err
	}
	if w := sh.w; w != nil {
		// The checkpoint at the handoff sequence is what makes the transfer
		// durable: the source's future rotations re-checkpoint only its own
		// graphs before truncating its log, so without this checkpoint the
		// departed graph's only durable tail could be truncated away.
		c := &wal.Checkpoint{
			ID:     string(id),
			Seq:    uint64(gs.dd.Updates()),
			Pseudo: gs.dd.PseudoRoot(),
			Graph:  gs.dd.Frozen(),
			Tree:   gs.dd.Tree(),
		}
		if err := wal.WriteCheckpoint(w.cfg.Dir, c, w.cfg.Injector); err != nil {
			w.fail(err)
			return err
		}
		w.checkpoints.Add(1)
	}
	gs.migrating = true
	pkg.g = gs.dd.Frozen()
	pkg.t = gs.dd.Tree()
	pkg.pseudo = gs.dd.PseudoRoot()
	pkg.seq = uint64(gs.dd.Updates())
	pkg.meter = gs.meter
	for _, it := range sh.hot.Snapshot() {
		if it.Key == string(id) {
			pkg.hotCost = it.Count
			break
		}
	}
	return nil
}

// migInstall is migration step 2, on the destination shard's loop: rebuild
// the maintainer from the package, publish its snapshot, and register the
// graph. Invisible until the routing entry flips — normal submissions still
// route to the source.
func (sh *shard) migInstall(id GraphID, pkg *migPackage) error {
	if sh.lookup(id) != nil {
		return ErrGraphExists
	}
	if err := sh.walGate(); err != nil {
		return err
	}
	// Keep the shared machine's model processor budget at the per-instance
	// maximum across tenants, as taskCreate does.
	if p := 2*pkg.g.NumEdges() + pkg.g.NumVertexSlots() + 1; p > sh.mach.Procs() {
		sh.mach.SetProcs(p)
	}
	gs := &graphState{
		meter: pkg.meter,
		dd:    core.NewDynamicRestored(pkg.g, pkg.t, pkg.pseudo, int(pkg.seq), core.Options{Machine: sh.mach}),
	}
	sh.publish(id, gs)
	sh.mu.Lock()
	sh.graphs[id] = gs
	sh.mu.Unlock()
	if pkg.hotCost > 0 {
		// Seed the hottest-graphs sketch with the source's estimate so the
		// graph's heat survives the hop instead of restarting from zero.
		sh.hot.Observe(string(id), pkg.hotCost)
	}
	return nil
}

// migComplete is migration step 4, on the source shard's loop after the
// route flipped: retire the source copy and hand the parked tasks back to
// the coordinator for replay on the destination. Tasks still behind this one
// in the mailbox find no graph and forward themselves via the routing table.
func (sh *shard) migComplete(id GraphID) []task {
	sh.mu.Lock()
	gs := sh.graphs[id]
	delete(sh.graphs, id)
	sh.mu.Unlock()
	if gs == nil {
		return nil
	}
	sh.hot.Remove(string(id))
	sh.recomputeProcs()
	deferred := gs.deferred
	gs.deferred = nil
	gs.migrating = false
	return deferred
}

// migRemove tears down a copy installed by migInstall whose migration failed
// to commit; the source copy is still authoritative.
func (sh *shard) migRemove(id GraphID) {
	sh.mu.Lock()
	_, ok := sh.graphs[id]
	delete(sh.graphs, id)
	sh.mu.Unlock()
	if !ok {
		return
	}
	sh.hot.Remove(string(id))
	sh.qcache.DropGraph(string(id))
	sh.recomputeProcs()
}

// migAbort unfreezes id after a failed migration and replays its parked
// tasks locally, in order, through the normal handler.
func (sh *shard) migAbort(id GraphID, headroom int) {
	gs := sh.lookup(id)
	if gs == nil || !gs.migrating {
		return
	}
	gs.migrating = false
	deferred := gs.deferred
	gs.deferred = nil
	for _, dt := range deferred {
		sh.handle(dt, headroom)
	}
}

// recomputeProcs resets the machine's model processor budget to the
// per-instance maximum over the shard's remaining graphs, so model depth
// charges stop being divided by a departed tenant's m. The maintainers are
// only touched by the shard goroutine, so reading their graphs here (on that
// goroutine) is race-free.
func (sh *shard) recomputeProcs() {
	procs := 1
	sh.mu.RLock()
	for _, rest := range sh.graphs {
		g := rest.dd.Frozen()
		if p := 2*g.NumEdges() + g.NumVertexSlots() + 1; p > procs {
			procs = p
		}
	}
	sh.mu.RUnlock()
	sh.mach.SetProcs(procs)
}
