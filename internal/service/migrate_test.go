package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// idOnShard returns a fresh GraphID that hashes to shard want of shards.
func idOnShard(want, shards int, salt string) GraphID {
	for i := 0; ; i++ {
		id := GraphID(fmt.Sprintf("%s%d", salt, i))
		if shardIndex(id, shards) == want {
			return id
		}
	}
}

// ownerCount returns how many shards currently hold id's graphState — must
// be exactly 1 for any live graph, during and after migrations.
func ownerCount(s *Service, id GraphID) int {
	n := 0
	for _, sh := range s.shards {
		if sh.lookup(id) != nil {
			n++
		}
	}
	return n
}

func TestMigrateGraphBasic(t *testing.T) {
	s := New(Config{Shards: 3})
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	g := graph.GnpConnected(64, 4.0/64, rng)
	id := idOnShard(0, 3, "mig")
	mustCreate(t, s, id, g)
	drive(t, s, id, g, rng, 10)

	before, err := s.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateGraph(id, 2); err != nil {
		t.Fatalf("MigrateGraph: %v", err)
	}
	if got := ownerCount(s, id); got != 1 {
		t.Fatalf("graph on %d shards after migration, want 1", got)
	}
	if s.shardFor(id) != s.shards[2] {
		t.Fatal("routing table does not point at the destination")
	}
	if s.RoutedGraphs() != 1 {
		t.Fatalf("RoutedGraphs = %d, want 1", s.RoutedGraphs())
	}
	after, err := s.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != before.Version {
		t.Fatalf("migration changed the version: %d -> %d", before.Version, after.Version)
	}
	if err := after.Verify(); err != nil {
		t.Fatalf("post-flip snapshot: %v", err)
	}

	// The graph keeps taking writes and queries on its new shard.
	drive(t, s, id, after.Graph.Mutable(), rng, 10)
	if err := s.CheckSynced(id); err != nil {
		t.Fatalf("CheckSynced after migration: %v", err)
	}
	h, err := s.Query(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.LCA(0, 1); err != nil {
		t.Fatal(err)
	}
	tm, err := s.TenantMetrics(id)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Shard != 2 {
		t.Fatalf("tenant attributed to shard %d, want 2", tm.Shard)
	}
	if tm.Applied == 0 {
		t.Fatal("tenant meter did not survive the migration")
	}

	m := s.Metrics()
	if m.Migrations != 1 || m.Shards[0].MigrationsOut != 1 || m.Shards[2].MigrationsIn != 1 {
		t.Fatalf("migration counters: total=%d out0=%d in2=%d",
			m.Migrations, m.Shards[0].MigrationsOut, m.Shards[2].MigrationsIn)
	}
	if m.MigrationPauseHist.Count != 1 {
		t.Fatalf("pause histogram count = %d, want 1", m.MigrationPauseHist.Count)
	}

	// Migrating back to the hash shard normalizes the routing entry away.
	if err := s.MigrateGraph(id, 0); err != nil {
		t.Fatal(err)
	}
	if s.RoutedGraphs() != 0 {
		t.Fatalf("RoutedGraphs = %d after moving home, want 0", s.RoutedGraphs())
	}
	// No-op: already there.
	if err := s.MigrateGraph(id, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().Migrations; got != 2 {
		t.Fatalf("migrations = %d, want 2 (no-op must not count)", got)
	}
}

func TestMigrateGraphErrors(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	// An id on shard 0 so the move to 1 is not a same-shard no-op.
	ghost := idOnShard(0, 2, "ghost")
	if err := s.MigrateGraph(ghost, 1); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: %v", err)
	}
	if err := s.MigrateGraph("x", 5); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if got := s.Metrics().MigrationFailures; got != 1 {
		t.Fatalf("failures = %d, want 1 (range error is caller error, not an attempt)", got)
	}
}

// TestMigrateDurable proves the route record is durable: after a migration
// and a clean close, reopening the directory places the graph on the
// migrated-to shard (not its hash shard) with its full state.
func TestMigrateDurable(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	g := graph.GnpConnected(64, 4.0/64, rng)
	id := idOnShard(0, 3, "dur")
	cfg := Config{Shards: 3, WAL: &WALConfig{Dir: dir}}

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, id, g)
	drive(t, s, id, g, rng, 8)
	if err := s.MigrateGraph(id, 1); err != nil {
		t.Fatal(err)
	}
	want, err := s.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	// More writes after the flip land on the destination's log.
	drive(t, s, id, want.Graph.Mutable(), rng, 8)
	want, _ = s.Snapshot(id)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.WaitRecovered()
	if r.shardFor(id) != r.shards[1] {
		t.Fatal("recovered route does not point at the migrated-to shard")
	}
	if got := ownerCount(r, id); got != 1 {
		t.Fatalf("graph recovered on %d shards, want 1", got)
	}
	snap, err := r.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != want.Version {
		t.Fatalf("recovered version %d, want %d", snap.Version, want.Version)
	}
	if !sameEdges(edgeSet(snap.Graph), edgeSet(want.Graph)) {
		t.Fatal("recovered graph differs from pre-close state")
	}
	if err := r.CheckSynced(id); err != nil {
		t.Fatal(err)
	}
	// Dropping the graph retires its route durably.
	if err := r.DropGraph(id); err != nil {
		t.Fatal(err)
	}
	if r.RoutedGraphs() != 0 {
		t.Fatalf("RoutedGraphs = %d after drop, want 0", r.RoutedGraphs())
	}
}

// TestMigrationSoak is the -race soak: one synchronous writer per graph,
// reader goroutines holding query handles across flips, and a migrator
// forcing rotations of every graph between shards. Exactness: each writer
// counts its acknowledged updates, and since version = applied updates, the
// final snapshot version must equal that count exactly — an update lost in
// a handoff or replayed twice shows up as a version mismatch. Every
// post-flip snapshot is DFS-verified.
func TestMigrationSoak(t *testing.T) {
	const (
		shards  = 3
		nGraphs = 6
		perG    = 250
	)
	s := New(Config{Shards: shards})
	defer s.Close()

	ids := make([]GraphID, nGraphs)
	acked := make([]atomic.Uint64, nGraphs)
	for i := range ids {
		ids[i] = idOnShard(i%shards, shards, fmt.Sprintf("soak%d-", i))
		rng := rand.New(rand.NewSource(int64(100 + i)))
		mustCreate(t, s, ids[i], graph.GnpConnected(48, 4.0/48, rng))
	}

	var wg sync.WaitGroup
	writersDone := make(chan struct{})
	errc := make(chan error, nGraphs+2)

	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + i)))
			snap, _ := s.Snapshot(ids[i])
			g := snap.Graph.Mutable()
			for n := 0; n < perG; n++ {
				var u core.Update
				if e, ok := graph.RandomEdgeNotIn(g, rng); ok && n%2 == 0 {
					u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
				} else if e, ok := graph.RandomExistingEdge(g, rng); ok {
					u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
				} else {
					continue
				}
				fut, err := s.Apply(ids[i], u)
				if err != nil {
					errc <- fmt.Errorf("graph %d apply: %w", i, err)
					return
				}
				_, snap, err := fut.Wait()
				if err != nil {
					continue // rejected by the maintainer: not acked
				}
				acked[i].Add(1)
				g = snap.Graph.Mutable()
			}
		}(i)
	}
	go func() { wg.Wait(); close(writersDone) }()

	// Migrator: rotate every graph round-robin across shards, verifying each
	// post-flip snapshot. At least minRounds rounds run even if the writers
	// drain quickly, so flips always overlap the reader goroutines.
	const minRounds = 6
	migErr := make(chan error, 1)
	migN := 0
	go func() {
		defer func() { migErr <- nil }()
		for round := 1; ; round++ {
			if round > minRounds {
				select {
				case <-writersDone:
					return
				default:
				}
			}
			for i, id := range ids {
				if err := s.MigrateGraph(id, (i+round)%shards); err != nil {
					migErr <- fmt.Errorf("migrate %q: %w", id, err)
					return
				}
				migN++
				if err := s.Verify(id); err != nil {
					migErr <- fmt.Errorf("post-flip verify %q: %w", id, err)
					return
				}
				if n := ownerCount(s, id); n == 0 || n > 2 {
					// Transiently 2 while the source retires its copy; never
					// 0, never more.
					migErr <- fmt.Errorf("graph %q on %d shards", id, n)
					return
				}
			}
		}
	}()

	// Readers: hold handles across flips and keep querying them.
	readStop := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func(seed int64) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(seed))
			var held []*QueryHandle
			for {
				select {
				case <-readStop:
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				h, err := s.Query(id)
				if err != nil {
					errc <- fmt.Errorf("query %q: %w", id, err)
					return
				}
				held = append(held, h)
				if len(held) > 8 {
					held = held[1:]
				}
				for _, hh := range held {
					if _, err := hh.LCA(0, 1); err != nil {
						errc <- fmt.Errorf("held handle LCA: %w", err)
						return
					}
				}
			}
		}(int64(300 + r))
	}

	<-writersDone
	if err := <-migErr; err != nil {
		t.Fatal(err)
	}
	close(readStop)
	readWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if migN == 0 {
		t.Fatal("soak exercised no migrations")
	}

	// Exactness: version == acked updates, maintainer state internally
	// consistent on whichever shard each graph ended up on.
	for i, id := range ids {
		snap, err := s.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Version != acked[i].Load() {
			t.Fatalf("graph %q: version %d, acked %d — lost or duplicated updates",
				id, snap.Version, acked[i].Load())
		}
		if err := s.Verify(id); err != nil {
			t.Fatalf("final verify %q: %v", id, err)
		}
		if err := s.CheckSynced(id); err != nil {
			t.Fatalf("final CheckSynced %q: %v", id, err)
		}
		if got := ownerCount(s, id); got != 1 {
			t.Fatalf("graph %q on %d shards at rest, want 1", id, got)
		}
	}
	if got := s.Metrics().Migrations; got != uint64(migN) {
		t.Fatalf("migrations counter %d, want %d", got, migN)
	}
}

// TestRebalancerMovesHotGraph drives load onto one shard and ticks the
// rebalancer by hand: after Sustain hot windows it must migrate a graph off
// the hot shard — and with the whale above MaxShare, the sibling, not the
// whale itself.
func TestRebalancerMovesHotGraph(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	whale := idOnShard(0, 2, "whale")
	sib := idOnShard(0, 2, "sib")
	if whale == sib {
		t.Fatal("bad test ids")
	}
	mustCreate(t, s, whale, graph.GnpConnected(96, 4.0/96, rng))
	mustCreate(t, s, sib, graph.GnpConnected(48, 4.0/48, rng))

	cfg := RebalanceConfig{Threshold: 1.2, Sustain: 2, Cooldown: time.Minute, MaxShare: 0.5}.withDefaults()
	st := newRebalState(2)
	s.rebalanceOnce(cfg, st, time.Now()) // prime the baseline

	for tick := 0; tick < 2; tick++ {
		drive(t, s, whale, s.mustSnap(t, whale).Graph.Mutable(), rng, 30)
		drive(t, s, sib, s.mustSnap(t, sib).Graph.Mutable(), rng, 10)
		s.rebalanceOnce(cfg, st, time.Now())
	}
	m := s.Metrics()
	if m.Migrations != 1 {
		t.Fatalf("migrations after sustained load = %d, want 1", m.Migrations)
	}
	// The whale dominates shard 0's cost (> MaxShare), so the sibling moved.
	tm, err := s.TenantMetrics(sib)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Shard != 1 {
		t.Fatalf("sibling on shard %d, want 1 (whale isolation)", tm.Shard)
	}
	if wm, _ := s.TenantMetrics(whale); wm.Shard != 0 {
		t.Fatalf("whale moved to shard %d; should stay pinned", wm.Shard)
	}
	// Cooldown: further hot ticks must not ping-pong the sibling back.
	for tick := 0; tick < 3; tick++ {
		drive(t, s, whale, s.mustSnap(t, whale).Graph.Mutable(), rng, 20)
		s.rebalanceOnce(cfg, st, time.Now())
	}
	if got := s.Metrics().Migrations; got != 1 {
		t.Fatalf("cooldown violated: %d migrations", got)
	}
}

// mustSnap is a tiny helper for tests above.
func (s *Service) mustSnap(t *testing.T, id GraphID) *Snapshot {
	t.Helper()
	snap, err := s.Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestRoutingLookupNoAllocs pins the routing read path at zero allocations
// per lookup — with the table empty (pure hash) and populated (table hit
// and default fallthrough) — since shardFor sits on every read and submit.
func TestRoutingLookupNoAllocs(t *testing.T) {
	s := New(Config{Shards: 4})
	defer s.Close()
	rng := rand.New(rand.NewSource(3))
	id := idOnShard(0, 4, "alloc")
	mustCreate(t, s, id, graph.GnpConnected(16, 4.0/16, rng))

	var sink *shard
	if n := testing.AllocsPerRun(1000, func() { sink = s.shardFor(id) }); n != 0 {
		t.Fatalf("shardFor allocates %v/op with empty table", n)
	}
	if err := s.MigrateGraph(id, 3); err != nil {
		t.Fatal(err)
	}
	other := GraphID("unrouted-tenant")
	if n := testing.AllocsPerRun(1000, func() { sink = s.shardFor(id) }); n != 0 {
		t.Fatalf("shardFor allocates %v/op on a table hit", n)
	}
	if n := testing.AllocsPerRun(1000, func() { sink = s.shardFor(other) }); n != 0 {
		t.Fatalf("shardFor allocates %v/op on default fallthrough", n)
	}
	_ = sink
}
