package service

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// drive applies n random edge toggles to id, waiting for each.
func drive(t *testing.T, s *Service, id GraphID, g *graph.Graph, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var u core.Update
		if e, ok := graph.RandomEdgeNotIn(g, rng); ok && i%2 == 0 {
			u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
		} else {
			e, ok := graph.RandomExistingEdge(g, rng)
			if !ok {
				continue
			}
			u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
		}
		fut, err := s.Apply(id, u)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if _, snap, err := fut.Wait(); err != nil {
			t.Fatalf("update %d: %v", i, err)
		} else {
			g = snap.Graph.Mutable()
		}
	}
}

// TestQueueHighWaterMark pins the submit-side bookkeeping: the high-water
// mark records the deepest the mailbox has been within a sample window even
// when the queue is empty again by the time anyone looks, the background
// sampler (not Metrics) owns the window reset, and Metrics is a pure read —
// polling it never consumes the window.
func TestQueueHighWaterMark(t *testing.T) {
	// Mechanism first, on a bare shard with no consumer: fully deterministic.
	sh := &shard{mailbox: make(chan task, 8)}
	for i := 0; i < 5; i++ {
		if err := sh.submit(task{kind: taskKind(-1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sh.queueHWM.Load(); got != 5 {
		t.Fatalf("high-water after 5 undrained submits = %d, want 5", got)
	}
	// Drain two, submit one: the mark must hold the old peak, not the
	// current depth.
	<-sh.mailbox
	<-sh.mailbox
	if err := sh.submit(task{kind: taskKind(-1)}); err != nil {
		t.Fatal(err)
	}
	if got := sh.queueHWM.Load(); got != 5 {
		t.Fatalf("high-water after partial drain = %d, want 5 (peak retained)", got)
	}
	// The sampler's reset protocol: swap in the current depth and never
	// report below it.
	depth := len(sh.mailbox)
	if hwm := int(sh.queueHWM.Swap(int64(depth))); hwm != 5 {
		t.Fatalf("window read = %d, want 5", hwm)
	}
	if got := sh.queueHWM.Load(); got != int64(depth) {
		t.Fatalf("window reset to %d, want current depth %d", got, depth)
	}

	// End to end, with the ticker parked so the test cuts windows itself:
	// burst a live service and check the mark survives the drain, stays
	// visible across repeated polls and one window cut, then collapses only
	// after a full quiet window.
	s := New(Config{Shards: 1, SampleInterval: time.Hour})
	defer s.Close()
	rng := rand.New(rand.NewSource(11))
	g := graph.GnpConnected(128, 4.0/128, rng)
	mustCreate(t, s, "hwm", g)
	var futs []*Future
	for i := 0; i < 200; i++ {
		e, ok := graph.RandomExistingEdge(g, rng)
		if !ok {
			break
		}
		kind := core.DeleteEdge
		if i%2 == 1 {
			kind = core.InsertEdge
		}
		fut, err := s.Apply("hwm", core.Update{Kind: kind, U: e.U, V: e.V})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		fut.Wait() // rejections (re-insert races) are fine; drain fully
	}
	m := s.Metrics().Shards[0]
	if m.QueueDepth != 0 {
		t.Fatalf("queue not drained: depth %d", m.QueueDepth)
	}
	// The producer enqueues channel sends while the consumer runs full DFS
	// maintenance per task, so the queue must have been observed non-empty
	// at some submission.
	if m.QueueHighWater <= 0 {
		t.Fatalf("high-water mark %d after a 200-update burst, want > 0", m.QueueHighWater)
	}
	// A second poll sees the same window — Metrics must not consume it.
	if m2 := s.Metrics().Shards[0]; m2.QueueHighWater != m.QueueHighWater {
		t.Fatalf("second poll saw high-water %d, first saw %d (poll consumed the window)",
			m2.QueueHighWater, m.QueueHighWater)
	}
	// One window cut: the peak moves into the last completed window and
	// stays reported.
	s.sampleOnce(time.Now())
	if m3 := s.Metrics().Shards[0]; m3.QueueHighWater != m.QueueHighWater {
		t.Fatalf("high-water %d after one window cut, want %d (last completed window)",
			m3.QueueHighWater, m.QueueHighWater)
	}
	// A second, quiet window: nothing submitted since the cut, so the mark
	// finally collapses to the drained depth.
	s.sampleOnce(time.Now())
	if m4 := s.Metrics().Shards[0]; m4.QueueHighWater != 0 {
		t.Fatalf("high-water mark %d after a quiet window, want 0", m4.QueueHighWater)
	}
}

// TestMetricsConcurrentRace hammers Metrics from several goroutines while
// updates flow (run under -race in CI): rates must never go negative and
// every returned sample must be internally consistent — the aggregate
// histograms equal to the merge of the per-shard snapshots they shipped
// with, the aggregate counters equal to the per-shard sums.
func TestMetricsConcurrentRace(t *testing.T) {
	s := New(Config{Shards: 4})
	defer s.Close()
	rng := rand.New(rand.NewSource(12))
	graphs := make(map[GraphID]*graph.Graph)
	for _, id := range []GraphID{"a", "b", "c"} {
		g := graph.GnpConnected(96, 4.0/96, rand.New(rand.NewSource(int64(len(graphs)))))
		mustCreate(t, s, id, g)
		graphs[id] = g
	}
	_ = rng

	done := make(chan struct{})
	var writers sync.WaitGroup
	for id, g := range graphs {
		writers.Add(1)
		go func(id GraphID, g *graph.Graph) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(int64(id[0])))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				e, ok := graph.RandomExistingEdge(g, wrng)
				if !ok {
					return
				}
				kind := core.DeleteEdge
				if i%2 == 1 {
					kind = core.InsertEdge
				}
				fut, err := s.Apply(id, core.Update{Kind: kind, U: e.U, V: e.V})
				if err != nil {
					return
				}
				fut.Wait()
			}
		}(id, g)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				m := s.Metrics()
				var sumRate float64
				var sumUpdates uint64
				var merged obs.HistSnapshot
				var stages StageTimes
				for _, sm := range m.Shards {
					if sm.UpdatesPerSec < 0 {
						t.Errorf("shard %d: negative rate %f", sm.Shard, sm.UpdatesPerSec)
					}
					if sm.QueueHighWater < sm.QueueDepth {
						t.Errorf("shard %d: high-water %d below depth %d", sm.Shard, sm.QueueHighWater, sm.QueueDepth)
					}
					sumRate += sm.UpdatesPerSec
					sumUpdates += sm.Updates
					merged.Merge(sm.ApplyHist)
					stages.Add(sm.Stages)
				}
				if m.UpdatesPerSec < 0 {
					t.Errorf("negative aggregate rate %f", m.UpdatesPerSec)
				}
				if math.Abs(m.UpdatesPerSec-sumRate) > 1e-6*(1+sumRate) {
					t.Errorf("aggregate rate %f != shard sum %f", m.UpdatesPerSec, sumRate)
				}
				if m.Updates != sumUpdates {
					t.Errorf("aggregate updates %d != shard sum %d", m.Updates, sumUpdates)
				}
				if m.ApplyHist != merged {
					t.Errorf("aggregate apply histogram is not the merge of its shard snapshots")
				}
				if m.Stages != stages {
					t.Errorf("aggregate stage times %+v != shard sum %+v", m.Stages, stages)
				}
			}
		}()
	}
	readers.Wait()
	close(done)
	writers.Wait()
}

// debugDoc mirrors the /debug/service JSON shape for the fields the test
// asserts on (histograms decode through the summary wire form).
type debugDoc struct {
	Now     time.Time `json:"now"`
	Shards  int       `json:"shards"`
	Metrics struct {
		Shards []struct {
			Shard     int             `json:"Shard"`
			Updates   uint64          `json:"Updates"`
			ApplyHist json.RawMessage `json:"ApplyHist"`
		} `json:"Shards"`
		Updates uint64 `json:"Updates"`
	} `json:"metrics"`
	SlowTraces []obs.Trace `json:"slow_traces"`
}

// TestDebugHandler drives a service and hits its debug endpoint like an
// operator would, asserting the ISSUE acceptance shape: JSON with per-shard
// histogram percentiles and at least one slow trace whose stage timings sum
// to within 10% of its recorded total.
func TestDebugHandler(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	rng := rand.New(rand.NewSource(13))
	g := graph.GnpConnected(192, 4.0/192, rng)
	mustCreate(t, s, "dbg", g)
	drive(t, s, "dbg", g, rng, 40)
	// Exercise the read path too, so the snapquery histograms have samples.
	if h, err := s.Query("dbg"); err != nil {
		t.Fatal(err)
	} else if _, err := h.LCA(0, 1); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/debug/service")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/debug/service: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/service: content type %q", ct)
	}
	var doc debugDoc
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/service: decode: %v", err)
	}
	if doc.Shards != 2 || len(doc.Metrics.Shards) != 2 {
		t.Fatalf("expected 2 shards in payload, got %d/%d", doc.Shards, len(doc.Metrics.Shards))
	}
	if doc.Metrics.Updates == 0 {
		t.Fatal("no updates in the metrics payload")
	}
	// Per-shard histogram percentiles: every shard that applied updates must
	// expose a parsed p50/p99 > 0 in its apply histogram.
	sawHist := false
	for _, sm := range doc.Metrics.Shards {
		if sm.Updates == 0 {
			continue
		}
		var h struct {
			Count uint64 `json:"count"`
			P50   int64  `json:"p50"`
			P99   int64  `json:"p99"`
			Max   int64  `json:"max"`
		}
		if err := json.Unmarshal(sm.ApplyHist, &h); err != nil {
			t.Fatalf("shard %d: apply histogram: %v", sm.Shard, err)
		}
		if h.Count == 0 || h.P50 <= 0 || h.P99 < h.P50 || h.Max < h.P99 {
			t.Fatalf("shard %d: implausible percentiles %+v", sm.Shard, h)
		}
		sawHist = true
	}
	if !sawHist {
		t.Fatal("no shard exposed apply-histogram percentiles")
	}
	// Slow traces: at least one, and every one's stages account for its
	// total within 10%.
	if len(doc.SlowTraces) == 0 {
		t.Fatal("no slow traces in the payload")
	}
	for i, tr := range doc.SlowTraces {
		if tr.Total <= 0 {
			t.Fatalf("trace %d: non-positive total %v", i, tr.Total)
		}
		sum := tr.StageSum()
		if diff := math.Abs(float64(sum - tr.Total)); diff > 0.1*float64(tr.Total) {
			t.Fatalf("trace %d: stage sum %v vs total %v (off by %v)", i, sum, tr.Total, time.Duration(diff))
		}
		if i > 0 && tr.Total > doc.SlowTraces[i-1].Total {
			t.Fatalf("traces not sorted slowest-first at %d", i)
		}
	}

	// The sibling endpoints respond.
	for _, path := range []string{"/debug/service/traces", "/debug/obs", "/debug/vars", "/debug/pprof/", "/"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, res.StatusCode)
		}
	}

	// The registry carries the per-shard trees (gauges + histograms +
	// machine + snapquery) for both shards.
	snap := s.Obs().Snapshot()
	for _, key := range []string{
		"shard0.updates", "shard1.updates",
		"shard0.latency.apply", "shard0.queue.highwater",
		"shard0.pram.depth", "shard0.snapquery.resolve_latency",
	} {
		if _, ok := snap[key]; !ok {
			t.Fatalf("registry missing %q", key)
		}
	}
}
