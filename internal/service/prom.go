package service

import (
	"io"
	"strconv"

	"repro/internal/obs"
)

// writePromMetrics renders m in the Prometheus text exposition format
// (v0.0.4), as served at /debug/metrics. It is pure over its input so the
// golden test pins the exact output of a synthetic Metrics.
//
// Cardinality policy: scalars that differ per shard carry a shard label;
// latency distributions are exported as the cross-shard merge (per-shard
// native histograms would multiply the series count by the shard count);
// per-tenant counters stay on /debug/service/tenants — tenant IDs are
// unbounded and do not belong in label values.
func writePromMetrics(w io.Writer, m Metrics) error {
	p := obs.NewPromWriter(w)
	perShard := func(name, typ, help string, v func(sm *ShardMetrics) float64) {
		p.Family(name, typ, help)
		for i := range m.Shards {
			sm := &m.Shards[i]
			p.Value(v(sm), obs.PromLabel{Name: "shard", Value: strconv.Itoa(sm.Shard)})
		}
	}
	hist := func(name, help string, s obs.HistSnapshot, scale float64) {
		p.Family(name, "histogram", help)
		p.Histogram(s, scale)
	}

	p.Family("dfs_shards", "gauge", "configured shard count")
	p.Value(float64(len(m.Shards)))
	p.Family("dfs_graphs", "gauge", "graphs currently registered")
	p.Value(float64(m.Graphs))

	perShard("dfs_updates_total", "counter", "updates applied since start",
		func(sm *ShardMetrics) float64 { return float64(sm.Updates) })
	perShard("dfs_rejected_total", "counter", "updates rejected by the maintainer",
		func(sm *ShardMetrics) float64 { return float64(sm.Rejected) })
	perShard("dfs_updates_per_sec", "gauge", "applied-update rate over the sampler's last window",
		func(sm *ShardMetrics) float64 { return sm.UpdatesPerSec })
	perShard("dfs_queue_depth", "gauge", "tasks waiting in the shard mailbox",
		func(sm *ShardMetrics) float64 { return float64(sm.QueueDepth) })
	perShard("dfs_queue_cap", "gauge", "shard mailbox capacity",
		func(sm *ShardMetrics) float64 { return float64(sm.QueueCap) })
	perShard("dfs_queue_highwater", "gauge", "deepest mailbox over the current sample windows",
		func(sm *ShardMetrics) float64 { return float64(sm.QueueHighWater) })
	perShard("dfs_graphs_per_shard", "gauge", "graphs registered on the shard",
		func(sm *ShardMetrics) float64 { return float64(sm.Graphs) })
	perShard("dfs_oldest_snapshot_age_seconds", "gauge", "age of the stalest published snapshot",
		func(sm *ShardMetrics) float64 { return sm.OldestSnapshotAge.Seconds() })
	perShard("dfs_pram_depth", "gauge", "merged PRAM model depth of the shard machine",
		func(sm *ShardMetrics) float64 { return float64(sm.PRAMDepth) })
	perShard("dfs_pram_work", "gauge", "merged PRAM model work of the shard machine",
		func(sm *ShardMetrics) float64 { return float64(sm.PRAMWork) })
	perShard("dfs_pram_procs", "gauge", "PRAM model processor budget of the shard machine",
		func(sm *ShardMetrics) float64 { return float64(sm.PRAMProcs) })

	p.Family("dfs_stage_seconds_total", "counter", "cumulative update wall-clock by trace stage")
	for _, st := range []struct {
		name string
		v    float64
	}{
		{"wait", m.Stages.Wait.Seconds()},
		{"plan", m.Stages.Plan.Seconds()},
		{"engine", m.Stages.Engine.Seconds()},
		{"dmaint", m.Stages.DMaint.Seconds()},
		{"publish", m.Stages.Publish.Seconds()},
	} {
		p.Value(st.v, obs.PromLabel{Name: "stage", Value: st.name})
	}

	hist("dfs_apply_seconds", "maintainer apply time per update", m.ApplyHist, 1e-9)
	hist("dfs_mailbox_wait_seconds", "submit-to-receive wait per task", m.MailboxWaitHist, 1e-9)
	hist("dfs_publish_seconds", "snapshot publication time", m.PublishHist, 1e-9)
	hist("dfs_batch_size", "entries per coalesced batch round", m.BatchSizeHist, 1)

	p.Family("dfs_index_cache_hits_total", "counter", "query resolutions served from the index LRU")
	p.Value(float64(m.IndexCacheHits))
	p.Family("dfs_index_cache_misses_total", "counter", "query resolutions that created a handle")
	p.Value(float64(m.IndexCacheMisses))
	p.Family("dfs_index_cache_evictions_total", "counter", "index versions aged out by capacity")
	p.Value(float64(m.IndexCacheEvictions))
	p.Family("dfs_index_cache_dropped_total", "counter", "index versions removed by graph drop or stale incarnation")
	p.Value(float64(m.IndexCacheDropped))
	perShard("dfs_index_cache_size", "gauge", "index versions currently resident",
		func(sm *ShardMetrics) float64 { return float64(sm.IndexCacheSize) })
	p.Family("dfs_index_builds_total", "counter", "fresh index constructions")
	p.Value(float64(m.IndexBuilds))
	p.Family("dfs_index_patches_total", "counter", "index derivations patched from a parent version")
	p.Value(float64(m.IndexPatches))
	p.Family("dfs_index_patch_fallbacks_total", "counter", "patches declined after inspecting the delta")
	p.Value(float64(m.IndexPatchFallbacks))
	hist("dfs_index_build_seconds", "per-index fresh build time", m.IndexBuildHist, 1e-9)
	hist("dfs_index_patch_seconds", "per-index patch derivation time", m.IndexPatchHist, 1e-9)
	hist("dfs_query_resolve_seconds", "handle resolution latency", m.QueryResolveHist, 1e-9)

	p.Family("dfs_migrations_total", "counter", "completed live graph migrations")
	p.Value(float64(m.Migrations))
	p.Family("dfs_migration_failures_total", "counter", "migration attempts that aborted")
	p.Value(float64(m.MigrationFailures))
	p.Family("dfs_routed_graphs", "gauge", "graphs routed away from their hash shard")
	p.Value(float64(m.RoutedGraphs))
	perShard("dfs_migrations_in_total", "counter", "graphs received through completed migrations",
		func(sm *ShardMetrics) float64 { return float64(sm.MigrationsIn) })
	perShard("dfs_migrations_out_total", "counter", "graphs handed off through completed migrations",
		func(sm *ShardMetrics) float64 { return float64(sm.MigrationsOut) })
	hist("dfs_migration_pause_seconds", "write pause per migration handoff (freeze to flip)", m.MigrationPauseHist, 1e-9)

	if m.WALEnabled {
		p.Family("dfs_wal_recovering", "gauge", "1 while any shard serves degraded checkpoint snapshots")
		p.Value(b2f(m.WALRecovering))
		p.Family("dfs_wal_recovery_graphs", "gauge", "graphs routed by the last recovery scan")
		p.Value(float64(m.WALRecoveryGraphsTotal))
		p.Family("dfs_wal_recovery_graphs_done", "gauge", "recovered graphs flipped to live replayed state")
		p.Value(float64(m.WALRecoveryGraphsDone))
		p.Family("dfs_wal_appends_total", "counter", "WAL records appended since open")
		p.Value(float64(m.WALAppends))
		p.Family("dfs_wal_append_bytes_total", "counter", "WAL bytes appended since open")
		p.Value(float64(m.WALAppendBytes))
		p.Family("dfs_wal_syncs_total", "counter", "WAL fsyncs issued")
		p.Value(float64(m.WALSyncs))
		p.Family("dfs_wal_replayed_total", "counter", "records replayed by recovery")
		p.Value(float64(m.WALReplayed))
		p.Family("dfs_wal_skipped_total", "counter", "recovery records already covered by a checkpoint")
		p.Value(float64(m.WALSkipped))
		p.Family("dfs_wal_checkpoints_total", "counter", "checkpoint files written")
		p.Value(float64(m.WALCheckpoints))
		p.Family("dfs_wal_torn_tails", "gauge", "torn log tails found by the last recovery scan")
		p.Value(float64(m.WALTornTails))
		p.Family("dfs_wal_orphan_records", "gauge", "orphan records found by the last recovery scan")
		p.Value(float64(m.WALOrphanRecords))
		hist("dfs_wal_append_seconds", "per-record append latency", m.WALAppendHist, 1e-9)
		hist("dfs_wal_sync_seconds", "per-fsync latency", m.WALSyncHist, 1e-9)
		hist("dfs_wal_replay_seconds", "per-record replay latency", m.WALReplayHist, 1e-9)
	}
	return p.Err()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
