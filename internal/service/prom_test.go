package service

import (
	"bytes"
	"flag"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenMetrics builds a fully-populated synthetic Metrics so the golden
// exposition covers every family writePromMetrics can emit, including the
// WAL block, with deterministic values.
func goldenMetrics() Metrics {
	histOf := func(vals ...int64) obs.HistSnapshot {
		var h obs.Histogram
		for _, v := range vals {
			h.RecordValue(v)
		}
		return h.Snapshot()
	}
	m := Metrics{
		Shards: []ShardMetrics{
			{
				Shard: 0, Graphs: 2, QueueDepth: 1, QueueCap: 256, QueueHighWater: 7,
				Updates: 120, Rejected: 3, UpdatesPerSec: 12.5,
				OldestSnapshotAge: 250 * time.Millisecond,
				PRAMDepth:         900, PRAMWork: 40000, PRAMProcs: 512,
				IndexCacheSize: 4,
				MigrationsIn:   1, MigrationsOut: 2,
			},
			{
				Shard: 1, Graphs: 1, QueueDepth: 0, QueueCap: 256, QueueHighWater: 2,
				Updates: 30, Rejected: 0, UpdatesPerSec: 2,
				PRAMDepth: 100, PRAMWork: 2000, PRAMProcs: 64,
				IndexCacheSize: 1,
			},
		},
		Graphs: 3, Updates: 150, Rejected: 3, UpdatesPerSec: 14.5,
		ApplyHist:       histOf(120_000, 250_000, 4_000_000),
		MailboxWaitHist: histOf(800, 1500),
		PublishHist:     histOf(2_000, 3_000),
		BatchSizeHist:   histOf(1, 4, 16),
		Stages: StageTimes{
			Wait: 2 * time.Millisecond, Plan: time.Millisecond,
			Engine: 3 * time.Millisecond, DMaint: 4 * time.Millisecond,
			Publish: 500 * time.Microsecond,
		},
		IndexCacheHits: 40, IndexCacheMisses: 9, IndexCacheEvictions: 2, IndexCacheDropped: 1,
		IndexBuilds: 12, IndexBuildTime: 6 * time.Millisecond,
		IndexPatches: 5, IndexPatchTime: time.Millisecond, IndexPatchFallbacks: 1,
		IndexBuildHist:   histOf(400_000, 600_000),
		IndexPatchHist:   histOf(90_000),
		QueryResolveHist: histOf(700, 900, 1_200),

		Migrations: 3, MigrationFailures: 1, RoutedGraphs: 2,
		MigrationPauseHist: histOf(2_500_000, 4_000_000),

		WALEnabled: true, WALRecovering: false,
		WALRecoveryGraphsTotal: 3, WALRecoveryGraphsDone: 3,
		WALAppends: 150, WALAppendBytes: 61_440, WALSyncs: 20,
		WALReplayed: 17, WALSkipped: 4, WALCheckpoints: 6,
		WALTornTails: 1, WALOrphanRecords: 2,
		WALAppendHist: histOf(5_000, 9_000),
		WALSyncHist:   histOf(1_200_000),
		WALReplayHist: histOf(150_000, 180_000),
	}
	return m
}

// TestPromExpositionGolden pins the exact Prometheus text exposition of a
// synthetic Metrics. Regenerate with: go test ./internal/service -run
// PromExpositionGolden -update
func TestPromExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writePromMetrics(&buf, goldenMetrics()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s (run with -update after intentional changes)\ngot:\n%s", golden, buf.String())
	}
	lintProm(t, buf.String())
}

// lintProm validates prometheus text-format invariants over an exposition:
// valid metric identifiers, one # TYPE per family, every sample line
// belonging to a declared family (histogram suffixes included), counters
// ending in _total, and parseable sample lines.
func lintProm(t *testing.T, text string) {
	t.Helper()
	families := map[string]string{} // name -> type
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if !obs.ValidPromName(name) {
				t.Fatalf("line %d: invalid family name %q", ln+1, name)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate family %q", ln+1, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter %q does not end in _total", ln+1, name)
			}
			families[name] = typ
			continue
		}
		// Sample line: name{labels} value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !obs.ValidPromName(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && families[b] == "histogram" {
				base = b
				break
			}
		}
		typ, ok := families[base]
		if !ok {
			t.Fatalf("line %d: sample %q has no preceding family", ln+1, name)
		}
		if typ == "histogram" && base == name {
			t.Fatalf("line %d: bare sample %q for a histogram family", ln+1, name)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("line %d: no value: %q", ln+1, line)
		}
	}
	if len(families) == 0 {
		t.Fatal("no families in exposition")
	}
}

// TestPromEndpointLive scrapes /debug/metrics on a live service like a
// Prometheus server would, checking the content type, that the exposition
// lints clean, and that the load actually driven shows up in the counters.
func TestPromEndpointLive(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	rng := rand.New(rand.NewSource(21))
	g := graph.GnpConnected(128, 4.0/128, rng)
	mustCreate(t, s, "prom", g)
	drive(t, s, "prom", g, rng, 20)
	if h, err := s.Query("prom"); err != nil {
		t.Fatal(err)
	} else if _, err := h.LCA(0, 1); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type %q, want %q", ct, obs.PromContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	lintProm(t, text)
	for _, want := range []string{
		"# TYPE dfs_updates_total counter",
		`dfs_updates_total{shard="0"}`,
		"# TYPE dfs_apply_seconds histogram",
		"dfs_apply_seconds_bucket{le=\"+Inf\"}",
		"dfs_apply_seconds_count",
		"# TYPE dfs_stage_seconds_total counter",
		`dfs_stage_seconds_total{stage="engine"}`,
		"# TYPE dfs_index_cache_hits_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q\n%s", want, text)
		}
	}
	// 20 updates were applied: the counters must reflect them.
	if !strings.Contains(text, "dfs_graphs 1\n") {
		t.Fatal("dfs_graphs != 1")
	}
}
