package service

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bicon"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tree"
)

func queryNaiveLCA(t *tree.Tree, u, v, pseudo int) int {
	for t.Level(u) > t.Level(v) {
		u = t.Parent[u]
	}
	for t.Level(v) > t.Level(u) {
		v = t.Parent[v]
	}
	for u != v {
		u, v = t.Parent[u], t.Parent[v]
	}
	if u == pseudo {
		return -1
	}
	return u
}

// checkHandleAgainstPinned proves a handle's answers equal naive
// recomputation on the snapshot it pins — regardless of how many updates
// have been applied since the handle was obtained.
func checkHandleAgainstPinned(t *testing.T, h *QueryHandle, rng *rand.Rand, ctx string) {
	t.Helper()
	tr, pseudo := h.Tree(), h.PseudoRoot()
	an := bicon.Analyze(h.Graph(), tr, pseudo, nil)
	var live []int
	for _, v := range tr.Vertices() {
		if v != pseudo {
			live = append(live, v)
		}
	}
	for i := 0; i < 12; i++ {
		u, v := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
		got, err := h.LCA(u, v)
		if err != nil {
			t.Fatalf("%s: LCA(%d,%d): %v", ctx, u, v, err)
		}
		if want := queryNaiveLCA(tr, u, v, pseudo); got != want {
			t.Fatalf("%s: LCA(%d,%d) = %d, naive %d", ctx, u, v, got, want)
		}
		agg, err := h.SubtreeAgg(u)
		if err != nil {
			t.Fatalf("%s: SubtreeAgg(%d): %v", ctx, u, err)
		}
		vs := tr.SubtreeVertices(u, nil)
		if agg.Size != len(vs) {
			t.Fatalf("%s: SubtreeAgg(%d).Size = %d, subtree scan %d", ctx, u, agg.Size, len(vs))
		}
		art, err := h.IsArticulation(u)
		if err != nil {
			t.Fatalf("%s: IsArticulation(%d): %v", ctx, u, err)
		}
		if art != an.IsArticulation(u) {
			t.Fatalf("%s: IsArticulation(%d) = %v, fresh %v", ctx, u, art, an.IsArticulation(u))
		}
	}
}

// TestServiceQueryBasic: Query returns a handle pinned to the latest
// version, shared across readers of that version, correct against naive
// recomputation, and Metrics reports the cache traffic.
func TestServiceQueryBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(Config{Shards: 2})
	defer s.Close()
	g := graph.GnpConnected(80, 0.08, rng)
	if _, err := s.CreateGraph("q", g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("missing"); err == nil {
		t.Fatal("Query on unknown graph succeeded")
	}
	h1, err := s.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Query("q")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("two queries of one version got distinct handles")
	}
	snap, _ := s.Snapshot("q")
	if h1.Version() != snap.Version {
		t.Fatalf("handle version %d, snapshot %d", h1.Version(), snap.Version)
	}
	if s.QuerySnapshot(snap) != h1 {
		t.Fatal("QuerySnapshot(latest) should share the cached handle")
	}
	checkHandleAgainstPinned(t, h1, rng, "initial")

	m := s.Metrics()
	if m.IndexCacheMisses != 1 || m.IndexCacheHits != 2 {
		t.Fatalf("cache hits=%d misses=%d, want 2/1", m.IndexCacheHits, m.IndexCacheMisses)
	}
	if m.IndexBuilds == 0 || m.IndexBuildTime <= 0 {
		t.Fatalf("builds=%d buildTime=%v, want >0", m.IndexBuilds, m.IndexBuildTime)
	}
}

// TestServiceQueryEvictThenRequery: with a tiny index cache, old versions
// age out under version churn; held handles keep answering for their
// pinned version, and re-querying an evicted retained snapshot rebuilds
// with identical answers.
func TestServiceQueryEvictThenRequery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(Config{Shards: 1, QueryCache: 2})
	defer s.Close()
	g := graph.GnpConnected(60, 0.1, rng)
	mirror := g.Clone()
	if _, err := s.CreateGraph("e", g); err != nil {
		t.Fatal(err)
	}

	type pinned struct {
		snap *Snapshot
		h    *QueryHandle
	}
	var pins []pinned
	for i := 0; i < 8; i++ {
		var u core.Update
		if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok && i%2 == 0 {
			mirror.InsertEdge(e.U, e.V)
			u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
		} else if e, ok := graph.RandomExistingEdge(mirror, rng); ok {
			mirror.DeleteEdge(e.U, e.V)
			u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
		} else {
			t.Fatal("no update possible")
		}
		fut, err := s.Apply("e", u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		snap, err := s.Snapshot("e")
		if err != nil {
			t.Fatal(err)
		}
		h, err := s.Query("e")
		if err != nil {
			t.Fatal(err)
		}
		h.Warm()
		pins = append(pins, pinned{snap, h})
	}
	m := s.Metrics()
	if m.IndexCacheEvictions == 0 {
		t.Fatalf("no evictions with cache=2 over 8 versions")
	}
	// Every held handle — including long-evicted ones — still answers for
	// its pinned version.
	for i, p := range pins {
		if p.h.Version() != p.snap.Version {
			t.Fatalf("pin %d: handle@%d vs snapshot@%d", i, p.h.Version(), p.snap.Version)
		}
		checkHandleAgainstPinned(t, p.h, rng, fmt.Sprintf("pin %d", i))
	}
	// Re-querying the oldest retained snapshot is a rebuild (miss), with
	// answers identical to the evicted handle's.
	missesBefore := s.Metrics().IndexCacheMisses
	h0 := s.QuerySnapshot(pins[0].snap)
	if h0 == pins[0].h {
		t.Fatal("evicted version served the old handle (expected rebuild)")
	}
	if s.Metrics().IndexCacheMisses != missesBefore+1 {
		t.Fatal("requery of evicted version was not a miss")
	}
	if h0.Tree() != pins[0].h.Tree() {
		t.Fatal("rebuilt handle pins a different snapshot")
	}
	checkHandleAgainstPinned(t, h0, rng, "requeried pin 0")

	// DropGraph purges the cache; held handles survive.
	fut := newFuture()
	if err := s.shardFor("e").submit(task{kind: taskDrop, id: "e", fut: fut}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if size := s.Metrics().Shards[0].IndexCacheSize; size != 0 {
		t.Fatalf("index cache size %d after DropGraph, want 0", size)
	}
	checkHandleAgainstPinned(t, h0, rng, "after drop")
}

// TestServiceQueryConcurrent is the -race hammer: writers churn versions
// through ApplyBatch while query goroutines resolve handles (current and
// retained old versions) and differentially verify every answer against
// naive recomputation on the handle's own pinned snapshot.
func TestServiceQueryConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const (
		graphs  = 4
		n       = 48
		updates = 60
		readers = 6
	)
	s := New(Config{Shards: 2, QueryCache: 3})
	defer s.Close()
	ids := make([]GraphID, graphs)
	mirrors := make([]*graph.Graph, graphs)
	for i := range ids {
		ids[i] = GraphID(fmt.Sprintf("g%d", i))
		g := graph.GnpConnected(n, 0.1, rng)
		mirrors[i] = g.Clone()
		if _, err := s.CreateGraph(ids[i], g); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		wrng := rand.New(rand.NewSource(99))
		for step := 0; step < updates; step++ {
			var items []BatchItem
			for i, mirror := range mirrors {
				var u core.Update
				if e, ok := graph.RandomEdgeNotIn(mirror, wrng); ok && step%2 == 0 {
					mirror.InsertEdge(e.U, e.V)
					u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
				} else if e, ok := graph.RandomExistingEdge(mirror, wrng); ok {
					mirror.DeleteEdge(e.U, e.V)
					u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
				} else {
					continue
				}
				items = append(items, BatchItem{Graph: ids[i], Update: u})
			}
			futs, err := s.ApplyBatch(items)
			if err != nil {
				errs <- err
				return
			}
			for _, f := range futs {
				if _, _, err := f.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			var retained []*QueryHandle
			for !stop.Load() {
				id := ids[rrng.Intn(len(ids))]
				h, err := s.Query(id)
				if err != nil {
					errs <- err
					return
				}
				if rrng.Intn(4) == 0 && len(retained) < 8 {
					retained = append(retained, h)
				}
				if err := verifyHandleQuietly(h, rrng); err != nil {
					errs <- err
					return
				}
				// Old pinned versions must answer for their own snapshot,
				// not the current one.
				if len(retained) > 0 {
					old := retained[rrng.Intn(len(retained))]
					if err := verifyHandleQuietly(old, rrng); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// verifyHandleQuietly is the goroutine-safe differential check (returns an
// error instead of calling testing.T from a non-test goroutine).
func verifyHandleQuietly(h *QueryHandle, rng *rand.Rand) error {
	tr, pseudo := h.Tree(), h.PseudoRoot()
	var live []int
	for _, v := range tr.Vertices() {
		if v != pseudo {
			live = append(live, v)
		}
	}
	u, v := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
	got, err := h.LCA(u, v)
	if err != nil {
		return err
	}
	if want := queryNaiveLCA(tr, u, v, pseudo); got != want {
		return fmt.Errorf("handle @%d: LCA(%d,%d) = %d, naive %d", h.Version(), u, v, got, want)
	}
	agg, err := h.SubtreeAgg(u)
	if err != nil {
		return err
	}
	if want := len(tr.SubtreeVertices(u, nil)); agg.Size != want {
		return fmt.Errorf("handle @%d: SubtreeAgg(%d).Size = %d, scan %d", h.Version(), u, agg.Size, want)
	}
	if k := rng.Intn(6); true {
		gotK, err := h.KthAncestor(u, k)
		if err != nil {
			return err
		}
		wantK := u
		for i := 0; i < k && wantK >= 0; i++ {
			wantK = tr.Parent[wantK]
			if wantK == pseudo || wantK == tree.None {
				wantK = -1
			}
		}
		if gotK != wantK {
			return fmt.Errorf("handle @%d: KthAncestor(%d,%d) = %d, naive %d", h.Version(), u, k, gotK, wantK)
		}
	}
	if _, err := h.SameBiconnectedComponent(u, v); err != nil {
		return err
	}
	return nil
}
