package service

import (
	"time"
)

// RebalanceConfig tunes the background rebalancer (Config.Rebalance). The
// zero value of each field selects its documented default.
type RebalanceConfig struct {
	// Interval is the tick period: every tick the rebalancer samples each
	// shard's busy-time delta (apply + publish stage nanoseconds; mailbox
	// wait excluded) over the window just ended. Default 5s.
	Interval time.Duration
	// Threshold is the hysteresis trigger: a shard is "hot" on a tick when
	// its busy delta exceeds Threshold times the mean across shards.
	// Default 1.5.
	Threshold float64
	// Sustain is how many consecutive hot ticks a shard must accumulate
	// before a migration is attempted — a burst shorter than
	// Sustain×Interval never moves anything. Default 3.
	Sustain int
	// Cooldown is the per-graph re-migration moratorium: a graph the
	// rebalancer just moved is not moved again until it elapses, so two hot
	// shards cannot ping-pong a tenant. Default 30s.
	Cooldown time.Duration
	// MaxShare bounds whale-chasing: when the hot shard's top graph holds
	// more than MaxShare of the shard's sketched apply cost, moving it would
	// only relocate the hot spot, so the rebalancer moves the next-hottest
	// graph off the shard instead — isolating the whale. Default 0.5.
	MaxShare float64
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Threshold <= 0 {
		c.Threshold = 1.5
	}
	if c.Sustain <= 0 {
		c.Sustain = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.MaxShare <= 0 {
		c.MaxShare = 0.5
	}
	return c
}

// rebalState is the rebalancer's memory between ticks.
type rebalState struct {
	prevBusy []int64 // previous cumulative busy nanos per shard
	primed   bool    // prevBusy holds a real sample (first tick only observes)
	streak   []int   // consecutive hot ticks per shard
	moved    map[GraphID]time.Time
}

func newRebalState(shards int) *rebalState {
	return &rebalState{
		prevBusy: make([]int64, shards),
		streak:   make([]int, shards),
		moved:    map[GraphID]time.Time{},
	}
}

// runRebalancer is the background rebalancing goroutine: it waits out
// recovery (degraded shards are busy replaying, not hot), then ticks until
// CloseContext stops it.
func (s *Service) runRebalancer(cfg RebalanceConfig) {
	defer close(s.rebalDone)
	cfg = cfg.withDefaults()
	select {
	case <-s.recovered:
	case <-s.rebalStop:
		return
	}
	st := newRebalState(len(s.shards))
	tick := time.NewTicker(cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.rebalStop:
			return
		case <-tick.C:
			s.rebalanceOnce(cfg, st, time.Now())
		}
	}
}

// busyNanos is sh's cumulative on-loop work: every stage except mailbox
// wait. Wait is excluded deliberately — a backed-up shard's tasks wait long,
// but wait time is queueing, not capacity spent, and counting it would make
// an already-hot shard look hotter the longer its queue gets.
func busyNanos(sh *shard) int64 {
	var n int64
	for i := 1; i < len(sh.stageNanos); i++ {
		n += sh.stageNanos[i].Load()
	}
	return n
}

// rebalanceOnce is one rebalancer tick, separated from the goroutine for
// tests: sample busy deltas, update hysteresis streaks, and when one shard
// has stayed above Threshold×mean for Sustain ticks, migrate a hot graph
// from it to the coldest shard. At most one migration per tick.
func (s *Service) rebalanceOnce(cfg RebalanceConfig, st *rebalState, now time.Time) {
	n := len(s.shards)
	delta := make([]int64, n)
	var sum int64
	for i, sh := range s.shards {
		busy := busyNanos(sh)
		delta[i] = busy - st.prevBusy[i]
		st.prevBusy[i] = busy
		sum += delta[i]
	}
	if !st.primed {
		// First tick: the "delta" was cumulative-since-start, not a window.
		st.primed = true
		return
	}
	if n < 2 || sum <= 0 {
		for i := range st.streak {
			st.streak[i] = 0
		}
		return
	}
	mean := float64(sum) / float64(n)
	hot, hotDelta := -1, int64(-1)
	for i := range delta {
		if float64(delta[i]) > cfg.Threshold*mean {
			st.streak[i]++
			if delta[i] > hotDelta {
				hot, hotDelta = i, delta[i]
			}
		} else {
			st.streak[i] = 0
		}
	}
	if hot < 0 || st.streak[hot] < cfg.Sustain {
		return
	}
	id, ok := s.pickVictim(s.shards[hot], cfg, st, now)
	if !ok {
		return
	}
	cold := 0
	for i := 1; i < n; i++ {
		if delta[i] < delta[cold] {
			cold = i
		}
	}
	if cold == hot {
		return
	}
	if err := s.MigrateGraph(id, cold); err != nil {
		return
	}
	st.moved[id] = now
	st.streak[hot] = 0
}

// pickVictim chooses which graph to migrate off the hot shard, from its
// hottest-graphs sketch (descending apply cost): normally the hottest graph,
// but when that graph alone exceeds MaxShare of the shard's sketched cost,
// moving it would just relocate the hot spot, so the whale stays pinned and
// the next-hottest neighbor moves instead. Graphs inside their Cooldown or
// no longer on the shard are skipped.
func (s *Service) pickVictim(hotShard *shard, cfg RebalanceConfig, st *rebalState, now time.Time) (GraphID, bool) {
	items := hotShard.hot.Snapshot() // sorted hottest first
	if len(items) == 0 {
		return "", false
	}
	var total uint64
	for _, it := range items {
		total += it.Count
	}
	start := 0
	if total > 0 && float64(items[0].Count) > cfg.MaxShare*float64(total) {
		// Even when the whale is the only graph left: its updates are serial
		// on any shard, so migrating it cannot reduce the imbalance — the
		// loop below then finds no victim and the shard stays as it is.
		start = 1
	}
	for i := start; i < len(items); i++ {
		id := GraphID(items[i].Key)
		if t, ok := st.moved[id]; ok && now.Sub(t) < cfg.Cooldown {
			continue
		}
		// The sketch can lag: confirm the graph still lives here.
		if s.shardFor(id) != hotShard || hotShard.lookup(id) == nil {
			continue
		}
		return id, true
	}
	return "", false
}
