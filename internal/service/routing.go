package service

import (
	"sort"

	"repro/internal/wal"
)

// routeMap is the explicit graph-to-shard routing table. It holds only the
// exceptions — graphs migrated away from their hash shard; every other ID
// falls through to routeHash. The map behind the atomic pointer is
// immutable: writers copy-on-write a replacement under routeMu and publish
// it with one store, so the read path is a lock-free, allocation-free map
// lookup (TestRoutingLookupNoAllocs pins that).
type routeMap = map[GraphID]*shard

// routeHash is the FNV-1a hash assigning unrouted GraphIDs to shards — the
// single definition shared by the serving path and the tests' shard
// planning, so the two can never drift. Inline rather than hash.Hash32:
// the interface route would heap-allocate on every lock-free read.
func routeHash(id GraphID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

// defaultShard is id's hash-assigned shard: where it lives unless an
// explicit route says otherwise. Reduce in uint32 space: converting the
// hash to int first would overflow to a negative index on 32-bit platforms
// whenever the high bit is set.
func (s *Service) defaultShard(id GraphID) *shard {
	return s.shards[int(routeHash(id)%uint32(len(s.shards)))]
}

// shardFor resolves id's owning shard: the routing table's entry when one
// exists, the hash default otherwise. Lock-free and allocation-free — this
// is on every read and submit path.
func (s *Service) shardFor(id GraphID) *shard {
	if sh, ok := (*s.routes.Load())[id]; ok {
		return sh
	}
	return s.defaultShard(id)
}

// RoutedGraphs returns the number of graphs currently routed away from
// their hash shard (the routing table's size).
func (s *Service) RoutedGraphs() int { return len(*s.routes.Load()) }

// lookupState resolves id to its owning shard and graphState, chasing the
// routing table across migration windows: a reader that resolved the source
// shard just before a flip can find the graph already retired there, so a
// miss re-resolves the route and retries on the new owner. The loop is
// bounded — each extra iteration requires another whole migration of the
// same graph to land inside this call. (sh, nil) means the graph does not
// exist. Lock-free throughout.
func (s *Service) lookupState(id GraphID) (*shard, *graphState) {
	sh := s.shardFor(id)
	if gs := sh.lookup(id); gs != nil {
		return sh, gs
	}
	for i := 0; i < maxForwardHops; i++ {
		nsh := s.shardFor(id)
		if nsh == sh {
			// The route did not move: the graph is genuinely absent.
			return sh, nil
		}
		sh = nsh
		if gs := sh.lookup(id); gs != nil {
			return sh, gs
		}
	}
	return sh, nil
}

// setRouteLocked publishes a new routing table with id mapped to sh (or
// removed when sh is nil or the hash default — entries equal to the default
// are normalized away so the table holds only true exceptions). Caller
// holds routeMu.
func (s *Service) setRouteLocked(id GraphID, sh *shard) {
	old := *s.routes.Load()
	m := make(routeMap, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	if sh == nil || sh == s.defaultShard(id) {
		delete(m, id)
	} else {
		m[id] = sh
	}
	s.routes.Store(&m)
}

// dropRoute removes id's routing entry after the graph was dropped, with a
// best-effort durable removal record. An append failure is tolerated: a
// stale route entry for a graph with no checkpoint is ignored by recovery
// (the graph does not exist durably) and compacted away at the next Open,
// so correctness never depends on the delete record landing.
func (s *Service) dropRoute(id GraphID) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if _, ok := (*s.routes.Load())[id]; !ok {
		return
	}
	if s.routeLog != nil {
		s.routeLog.Append(wal.RouteRecord{Graph: string(id), Shard: -1})
	}
	s.setRouteLocked(id, nil)
}

// commitRoute durably records and publishes id's new shard — the commit
// point of a migration. Everything before it (freeze, checkpoint, install)
// is reconstructible or discardable; once the route record is fsynced,
// recovery after any crash places id on dst.
func (s *Service) commitRoute(id GraphID, dst *shard, seq uint64) error {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if s.routeLog != nil {
		rec := wal.RouteRecord{Graph: string(id), Shard: dst.idx, Seq: seq}
		if dst == s.defaultShard(id) {
			// Migrating back to the hash shard: a removal record keeps the
			// log and table normalized to true exceptions only.
			rec.Shard = -1
		}
		if err := s.routeLog.Append(rec); err != nil {
			return err
		}
	}
	s.setRouteLocked(id, dst)
	return nil
}

// loadRoutes resolves the route log's records into the initial routing
// table at recovery: last record per graph wins (file order is commit
// order), removals and entries for graphs that do not exist durably (no
// checkpoint — dropped, or created but never route-flipped) fold away, and
// a shard index from a run with more shards wraps into the current range.
// The surviving set is compacted back so the log never grows without
// bound. Called by openWAL before the recovery scan routes any graph, so
// the scan's shardFor calls already consult the logged routes.
func (s *Service) loadRoutes(recs []wal.RouteRecord, ckpts map[string]*wal.Checkpoint) error {
	routed := map[string]int{}
	for _, r := range recs {
		if r.Shard < 0 {
			delete(routed, r.Graph)
			continue
		}
		routed[r.Graph] = r.Shard
	}
	m := make(routeMap, len(routed))
	var live []wal.RouteRecord
	for id, idx := range routed {
		if ckpts[id] == nil {
			continue
		}
		sh := s.shards[idx%len(s.shards)]
		if sh == s.defaultShard(GraphID(id)) {
			continue
		}
		m[GraphID(id)] = sh
		live = append(live, wal.RouteRecord{Graph: id, Shard: sh.idx})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Graph < live[j].Graph })
	if err := s.routeLog.Compact(live); err != nil {
		return err
	}
	s.routes.Store(&m)
	return nil
}
