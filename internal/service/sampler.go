package service

import (
	"time"
)

// Per-shard series-ring fields, in ring order. Cumulative counters
// (updates, rejected, wal_bytes) are stored raw — consumers derive rates
// from consecutive points; queue_depth is the instantaneous depth at the
// tick, queue_hwm the deepest the mailbox got inside the window ending at
// the tick, and the _p99_ns fields are windowed percentiles over the
// samples recorded inside that window.
const (
	sUpdates = iota
	sRejected
	sQueueDepth
	sQueueHWM
	sApplyP99
	sWALBytes
	sWALSyncP99
)

var seriesFields = []string{
	"updates", "rejected", "queue_depth", "queue_hwm",
	"apply_p99_ns", "wal_bytes", "wal_sync_p99_ns",
}

// runSampler is the background sampler goroutine: one ticker for the whole
// service, so every shard's window of a given tick is cut at the same
// instant and cross-shard rates always span a common interval.
func (s *Service) runSampler() {
	defer close(s.samplerDone)
	t := time.NewTicker(s.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.samplerStop:
			return
		case now := <-t.C:
			s.sampleOnce(now)
		}
	}
}

// sampleOnce cuts one sample window on every shard. Exported to tests via
// the service's sample lock so a test driving windows deterministically
// (huge SampleInterval, manual timestamps) serializes with the ticker.
func (s *Service) sampleOnce(now time.Time) {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	for _, sh := range s.shards {
		sh.sample(now)
	}
}

// sample appends one point to the shard's series ring and resets the
// shard's window state (queue high-water, previous histogram snapshots).
// Only the sampler calls this, under the service's sample lock.
func (sh *shard) sample(now time.Time) {
	applySnap := sh.applyHist.Snapshot()
	applyP99 := applySnap.Delta(sh.prevApply).Quantile(0.99)
	sh.prevApply = applySnap

	var walBytes int64
	var walSyncP99 int64
	if w := sh.w; w != nil {
		walBytes = int64(w.log.Stats().AppendBytes)
		syncSnap := w.syncHist.Snapshot()
		walSyncP99 = syncSnap.Delta(sh.prevWALSync).Quantile(0.99)
		sh.prevWALSync = syncSnap
	}

	// Reset the queue high-water window to the current depth, never below
	// it: the tasks queued right now have already been that deep.
	depth := len(sh.mailbox)
	hwm := sh.queueHWM.Swap(int64(depth))
	if int64(depth) > hwm {
		hwm = int64(depth)
	}

	sh.series.Add(now,
		int64(sh.updates.Load()),
		int64(sh.rejected.Load()),
		int64(depth),
		hwm,
		applyP99,
		walBytes,
		walSyncP99,
	)
}

// HistoryPoint is one sampler window of one shard: instantaneous and
// windowed values at At, with the rate fields derived from the cumulative
// counter deltas against the preceding point (the service start for the
// oldest retained point). Durations are nanoseconds on the wire.
type HistoryPoint struct {
	At             time.Time     `json:"at"`
	UpdatesPerSec  float64       `json:"updates_per_sec"`
	RejectedPerSec float64       `json:"rejected_per_sec"`
	QueueDepth     int64         `json:"queue_depth"`
	QueueHighWater int64         `json:"queue_hwm"`
	ApplyP99       time.Duration `json:"apply_p99_ns"`
	WALBytesPerSec float64       `json:"wal_bytes_per_sec"`
	WALSyncP99     time.Duration `json:"wal_sync_p99_ns"`
}

// ShardHistory is one shard's retained sampler windows, oldest first.
type ShardHistory struct {
	Shard  int            `json:"shard"`
	Points []HistoryPoint `json:"points"`
}

// History is the /debug/service/history document: every shard's sampled
// time-series over the retention window (Windows × Interval deep).
type History struct {
	Interval time.Duration  `json:"interval_ns"`
	Windows  int            `json:"windows"`
	Shards   []ShardHistory `json:"shards"`
}

// History returns every shard's sampled counter history. Reads the rings
// only — it never blocks the sampler beyond a ring copy, and never touches
// the update loops.
func (s *Service) History() History {
	out := History{
		Interval: s.cfg.SampleInterval,
		Windows:  s.cfg.SampleWindows,
		Shards:   make([]ShardHistory, len(s.shards)),
	}
	for i, sh := range s.shards {
		pts := sh.series.Snapshot()
		hp := make([]HistoryPoint, len(pts))
		prevAt := sh.started
		var prevUpdates, prevRejected, prevWALBytes int64
		for j, pt := range pts {
			p := HistoryPoint{
				At:             pt.At,
				QueueDepth:     pt.Values[sQueueDepth],
				QueueHighWater: pt.Values[sQueueHWM],
				ApplyP99:       time.Duration(pt.Values[sApplyP99]),
				WALSyncP99:     time.Duration(pt.Values[sWALSyncP99]),
			}
			if elapsed := pt.At.Sub(prevAt).Seconds(); elapsed > 0 {
				p.UpdatesPerSec = float64(pt.Values[sUpdates]-prevUpdates) / elapsed
				p.RejectedPerSec = float64(pt.Values[sRejected]-prevRejected) / elapsed
				p.WALBytesPerSec = float64(pt.Values[sWALBytes]-prevWALBytes) / elapsed
			}
			prevAt = pt.At
			prevUpdates, prevRejected, prevWALBytes = pt.Values[sUpdates], pt.Values[sRejected], pt.Values[sWALBytes]
			hp[j] = p
		}
		out.Shards[i] = ShardHistory{Shard: sh.idx, Points: hp}
	}
	return out
}
