package service

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// fnv32 mirrors shardFor's inline hash.
func fnv32(id GraphID) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return h
}

// TestShardForHighBitHash pins the shard-routing fix: reducing the FNV-1a
// hash modulo the shard count must happen in uint32 space. IDs whose hash
// has the high bit set would previously index with int(h) % shards, which is
// negative on 32-bit platforms; the test routes a set of such IDs and checks
// every one lands on the shard the uint32 reduction picks.
func TestShardForHighBitHash(t *testing.T) {
	svc := New(Config{Shards: 3})
	defer svc.Close()
	found := 0
	for i := 0; i < 1000 && found < 25; i++ {
		id := GraphID(fmt.Sprintf("tenant-%d", i))
		h := fnv32(id)
		if int32(h) >= 0 {
			continue // high bit clear: the old arithmetic was fine for these
		}
		found++
		want := svc.shards[h%uint32(len(svc.shards))]
		if got := svc.shardFor(id); got != want {
			t.Fatalf("shardFor(%q) (hash %#x) routed to shard %d, want %d", id, h, got.idx, want.idx)
		}
		// And the full write/read path works for such an ID.
		if _, err := svc.CreateGraph(id, graph.Path(4)); err != nil {
			t.Fatalf("CreateGraph(%q): %v", id, err)
		}
		fut, err := svc.Apply(id, core.Update{Kind: core.InsertEdge, U: 0, V: 3})
		if err != nil {
			t.Fatalf("Apply(%q): %v", id, err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatalf("apply wait (%q): %v", id, err)
		}
		if err := svc.Verify(id); err != nil {
			t.Fatalf("Verify(%q): %v", id, err)
		}
	}
	if found == 0 {
		t.Fatal("no test ID hashed with the high bit set")
	}
}

// instanceProcs is the paper's per-instance processor budget the shard loop
// grants a graph: m processors (2m adjacency words) plus the slot range.
func instanceProcs(n *Snapshot) int {
	return 2*n.Graph.NumEdges() + n.Graph.NumVertexSlots() + 1
}

// TestDropRecomputesProcs pins the PRAM-budget accounting fix: dropping the
// largest tenant must shrink the shard machine's model processor budget back
// to the maximum over the survivors (visible through ServiceMetrics), not
// leave it inflated at the departed tenant's m forever.
func TestDropRecomputesProcs(t *testing.T) {
	svc := New(Config{Shards: 1})
	defer svc.Close()
	rng := rand.New(rand.NewSource(71))
	bigSnap, err := svc.CreateGraph("big", graph.GnpConnected(256, 0.05, rng))
	if err != nil {
		t.Fatal(err)
	}
	smallSnap, err := svc.CreateGraph("small", graph.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	big, small := instanceProcs(bigSnap), instanceProcs(smallSnap)
	if big <= small {
		t.Fatalf("test graphs not ordered: big=%d small=%d", big, small)
	}
	if got := svc.Metrics().Shards[0].PRAMProcs; got != big {
		t.Fatalf("procs with both tenants = %d, want the big tenant's %d", got, big)
	}
	if err := svc.DropGraph("big"); err != nil {
		t.Fatal(err)
	}
	if got := svc.Metrics().Shards[0].PRAMProcs; got != small {
		t.Fatalf("procs after dropping big tenant = %d, want surviving max %d", got, small)
	}
	if err := svc.DropGraph("small"); err != nil {
		t.Fatal(err)
	}
	if got := svc.Metrics().Shards[0].PRAMProcs; got != 1 {
		t.Fatalf("procs on an empty shard = %d, want 1", got)
	}
}

// TestMetricsWindowedRate pins the UpdatesPerSec semantics: the rate is
// derived from the background sampler's ring (the ticker is parked at an
// hour here; the test cuts windows itself), so a shard that stops applying
// updates reports 0 once a windowed sample shows no progress, instead of
// coasting on its lifetime average — and polling Metrics never advances
// the window.
func TestMetricsWindowedRate(t *testing.T) {
	svc := New(Config{Shards: 1, SampleInterval: time.Hour})
	defer svc.Close()
	if _, err := svc.CreateGraph("g", graph.Path(8)); err != nil {
		t.Fatal(err)
	}
	apply := func(u core.Update) {
		t.Helper()
		fut, err := svc.Apply("g", u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	apply(core.Update{Kind: core.InsertEdge, U: 0, V: 7})
	apply(core.Update{Kind: core.DeleteEdge, U: 0, V: 7})
	// No sample yet: lifetime average since start.
	if got := svc.Metrics().Shards[0].UpdatesPerSec; got <= 0 {
		t.Fatalf("pre-sample poll (lifetime average) = %v, want > 0", got)
	}
	// One sample: still the lifetime average, now frozen at the cut — and
	// repeated polls must agree exactly (a pure read).
	svc.sampleOnce(time.Now())
	first := svc.Metrics().Shards[0].UpdatesPerSec
	if first <= 0 {
		t.Fatalf("one-sample rate = %v, want > 0", first)
	}
	if again := svc.Metrics().Shards[0].UpdatesPerSec; again != first {
		t.Fatalf("re-poll changed the rate: %v then %v", first, again)
	}
	// Stalled window: no updates between two cuts.
	svc.sampleOnce(time.Now())
	if got := svc.Metrics().Shards[0].UpdatesPerSec; got != 0 {
		t.Fatalf("stalled-window sample = %v, want 0", got)
	}
	// Rate recovers once updates flow through a window again.
	apply(core.Update{Kind: core.InsertEdge, U: 0, V: 7})
	svc.sampleOnce(time.Now())
	if got := svc.Metrics().Shards[0].UpdatesPerSec; got <= 0 {
		t.Fatalf("active-window sample = %v, want > 0", got)
	}
}

// TestMetricsConcurrentPollers pins the multi-poller fix: two goroutines
// polling Metrics concurrently over a fixed sampler window must observe
// exactly the same rate and queue high-water on every poll — under the old
// read-once windows, each poll consumed the window and concurrent pollers
// clobbered each other's baselines.
func TestMetricsConcurrentPollers(t *testing.T) {
	svc := New(Config{Shards: 1, SampleInterval: time.Hour})
	defer svc.Close()
	if _, err := svc.CreateGraph("g", graph.Path(8)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		kind := core.InsertEdge
		if i%2 == 1 {
			kind = core.DeleteEdge
		}
		fut, err := svc.Apply("g", core.Update{Kind: kind, U: 0, V: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Fix the window: two cuts one second apart (manual timestamps make the
	// expected rate exact — 6 updates in the first window, 0 since).
	t0 := time.Now()
	svc.sampleOnce(t0)
	svc.sampleOnce(t0.Add(time.Second))

	const pollers, polls = 2, 50
	rates := make([][]float64, pollers)
	hwms := make([][]int, pollers)
	var wg sync.WaitGroup
	for p := 0; p < pollers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < polls; i++ {
				m := svc.Metrics().Shards[0]
				rates[p] = append(rates[p], m.UpdatesPerSec)
				hwms[p] = append(hwms[p], m.QueueHighWater)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < pollers; p++ {
		for i := 0; i < polls; i++ {
			if rates[p][i] != rates[0][0] {
				t.Fatalf("poller %d poll %d saw rate %v, poller 0 saw %v", p, i, rates[p][i], rates[0][0])
			}
			if hwms[p][i] != hwms[0][0] {
				t.Fatalf("poller %d poll %d saw high-water %d, poller 0 saw %d", p, i, hwms[p][i], hwms[0][0])
			}
		}
	}
	if rates[0][0] != 0 {
		t.Fatalf("rate over the quiet second window = %v, want 0", rates[0][0])
	}
}

// TestServiceIncrementalQuerySoak is the serving-layer soak of the
// incremental D path: reader goroutines issue snapquery lookups (and verify
// retained snapshots) against rotating versions while the shard loop
// maintains D incrementally underneath them. Run with -race (CI does), this
// pins that incremental maintenance mutates nothing a published snapshot or
// index reads.
func TestServiceIncrementalQuerySoak(t *testing.T) {
	svc := New(Config{Shards: 2})
	defer svc.Close()
	ids := []GraphID{"soak-0", "soak-1"}
	const n = 48
	for i, id := range ids {
		rng := rand.New(rand.NewSource(int64(300 + i)))
		if _, err := svc.CreateGraph(id, graph.GnpConnected(n, 3.0/n, rng)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[rng.Intn(len(ids))]
				h, err := svc.Query(id)
				if err != nil {
					t.Error(err)
					return
				}
				tr, pseudo := h.Tree(), h.PseudoRoot()
				var live []int
				for _, v := range tr.Vertices() {
					if v != pseudo {
						live = append(live, v)
					}
				}
				if len(live) < 2 {
					continue
				}
				u, v := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
				if _, err := h.LCA(u, v); err != nil {
					t.Errorf("LCA(%d,%d): %v", u, v, err)
					return
				}
				if _, err := h.SubtreeAgg(u); err != nil {
					t.Errorf("SubtreeAgg(%d): %v", u, err)
					return
				}
				if rng.Intn(16) == 0 {
					snap, err := svc.Snapshot(id)
					if err != nil {
						t.Error(err)
						return
					}
					if err := snap.Verify(); err != nil {
						t.Errorf("snapshot verify: %v", err)
						return
					}
				}
			}
		}(int64(400 + r))
	}
	// Writer: a random mixed stream against both graphs, on the caller's
	// goroutine so the soak has a bounded update count.
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 300; i++ {
		id := ids[rng.Intn(len(ids))]
		snap, err := svc.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		var u core.Update
		switch rng.Intn(4) {
		case 0:
			e, ok := graph.RandomEdgeNotIn(snap.Graph, rng)
			if !ok {
				continue
			}
			u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
		case 1:
			e, ok := graph.RandomExistingEdge(snap.Graph, rng)
			if !ok {
				continue
			}
			u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
		case 2:
			var nbrs []int
			for v := 0; v < snap.Graph.NumVertexSlots(); v++ {
				if snap.Graph.IsVertex(v) && rng.Float64() < 0.1 {
					nbrs = append(nbrs, v)
				}
			}
			u = core.Update{Kind: core.InsertVertex, Neighbors: nbrs}
		default:
			v := rng.Intn(snap.Graph.NumVertexSlots())
			if !snap.Graph.IsVertex(v) || snap.Graph.NumVertices() < 8 {
				continue
			}
			u = core.Update{Kind: core.DeleteVertex, U: v}
		}
		fut, err := svc.Apply(id, u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatalf("update %d (%v) rejected: %v", i, u.Kind, err)
		}
	}
	close(stop)
	wg.Wait()
	// The maintainer really was on the incremental path (in-package peek).
	for _, id := range ids {
		gs := svc.shardFor(id).lookup(id)
		if gs == nil {
			t.Fatalf("graph %q disappeared", id)
		}
		if inc, _ := gs.dd.D().MaintenanceCounts(); inc == 0 {
			t.Fatalf("graph %q never took the incremental maintenance path", id)
		}
		if err := gs.dd.D().CheckSynced(gs.dd.Graph(), gs.dd.Tree()); err != nil {
			t.Fatalf("graph %q: %v", id, err)
		}
	}
}
