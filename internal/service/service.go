package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pram"
	"repro/internal/snapquery"
	"repro/internal/tree"
	"repro/internal/wal"
)

// GraphID names one tenant graph. IDs hash to shards with FNV-1a.
type GraphID string

// Sentinel errors. Shard-loop errors wrap these with the graph ID, so
// callers classify failures with errors.Is.
var (
	ErrClosed       = errors.New("service closed")
	ErrUnknownGraph = errors.New("no such graph")
	ErrGraphExists  = errors.New("graph already exists")
)

// Config sizes a Service. The zero value selects the documented defaults.
type Config struct {
	// Shards is the number of update loops (each one goroutine plus one
	// pram.Machine). Default: GOMAXPROCS.
	Shards int
	// MailboxDepth is the per-shard buffered-channel depth; submissions
	// block (backpressure) when a mailbox is full. Default 256.
	MailboxDepth int
	// Workers is the worker-pool width of each shard's machine — the
	// intra-query execution parallelism. With many shards on one host the
	// shard loops themselves are the parallelism, so the default is 1.
	Workers int
	// Headroom is the vertex-ID headroom reserved per graph for vertex
	// insertions. Default 64.
	Headroom int
	// QueryCache is the number of snapshot versions per shard whose derived
	// query indexes (LCA, biconnectivity, subtree aggregates, level
	// ancestors) stay resident in the shard's LRU. Default
	// snapquery.DefaultCapacity.
	QueryCache int
	// SlowTraces is the number of slowest update traces retained per shard
	// for inspection through SlowTraces() and the debug endpoint. Default
	// obs.DefaultSlowRingSize.
	SlowTraces int
	// SampleInterval is the background sampler's tick period: every tick it
	// snapshots each shard's cumulative counters into that shard's
	// time-series ring (served at /debug/service/history) and cuts the rate
	// and queue high-water windows that Metrics reports. Default 1s.
	SampleInterval time.Duration
	// SampleWindows is the number of sampler points retained per shard
	// (ring capacity): history depth = SampleWindows × SampleInterval.
	// Default 256.
	SampleWindows int
	// HotTenants is the capacity of each shard's Space-Saving hottest-graphs
	// sketch — the maximum tenants tracked per shard, independent of how
	// many graphs the shard has ever served. Any graph whose share of the
	// shard's cumulative apply cost exceeds 1/HotTenants is guaranteed to be
	// tracked. Default 128.
	HotTenants int
	// WAL enables durability: every applied update is appended to its
	// shard's write-ahead log (and fsynced per the configured policy) before
	// its Future resolves, checkpoints bound replay work, and Open recovers
	// the directory's state after a crash. nil disables durability; use
	// Open (not New) when set, so recovery failures surface as errors.
	WAL *WALConfig
	// Rebalance enables the background rebalancer: a goroutine that watches
	// the shards' busy-time deltas and, when one shard's load stays above
	// the configured multiple of the mean for the configured number of
	// ticks, migrates a hot graph off it with MigrateGraph. nil disables
	// automatic rebalancing; MigrateGraph remains available either way.
	Rebalance *RebalanceConfig
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.MailboxDepth <= 0 {
		c.MailboxDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Headroom <= 0 {
		c.Headroom = 64
	}
	if c.QueryCache <= 0 {
		c.QueryCache = snapquery.DefaultCapacity
	}
	if c.SlowTraces <= 0 {
		c.SlowTraces = obs.DefaultSlowRingSize
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = time.Second
	}
	if c.SampleWindows <= 0 {
		c.SampleWindows = 256
	}
	if c.HotTenants <= 0 {
		c.HotTenants = 128
	}
	return c
}

// Service is a sharded, snapshot-isolated serving layer over many dynamic
// DFS maintainers. See the package documentation for the model.
type Service struct {
	cfg    Config
	shards []*shard
	reg    *obs.Registry
	closed atomic.Bool
	wg     sync.WaitGroup

	// Routing state: routes is the atomic copy-on-write graph-to-shard
	// table (see routing.go) — readers load it lock-free, writers replace
	// it under routeMu, which also serializes appends to the durable route
	// log. migMu serializes whole migrations (at most one graph moves at a
	// time); migrations/migFailures/migPauseHist are the service-level
	// migration counters and the write-pause distribution per handoff.
	routes       atomic.Pointer[routeMap]
	routeMu      sync.Mutex
	routeLog     *wal.RouteLog
	migMu        sync.Mutex
	migrations   atomic.Uint64
	migFailures  atomic.Uint64
	migPauseHist obs.Histogram

	// Rebalancer lifecycle (nil channels when Config.Rebalance is unset).
	rebalStop chan struct{}
	rebalDone chan struct{}

	// Sampler state: the background goroutine ticks every SampleInterval,
	// cutting each shard's rate/high-water window and appending one point
	// per shard to its series ring. sampleMu serializes ticks (the ticker
	// goroutine and tests driving sampleOnce directly); samplerStop ends
	// the goroutine, samplerDone confirms its exit.
	sampleMu    sync.Mutex
	samplerStop chan struct{}
	samplerDone chan struct{}

	// Recovery progress, readable while shards replay: graphs routed by the
	// last recovery scan and how many have flipped from degraded checkpoint
	// snapshots to live replayed state.
	recGraphsTotal atomic.Int64
	recGraphsDone  atomic.Int64

	// Durability state (see wal.go; only meaningful when cfg.WAL is set).
	// recovered closes once every shard has left degraded-reads mode;
	// walLock is the directory's exclusive single-owner lock, held from
	// Open until every shard goroutine has exited; walStale are old-epoch
	// log files removed after a clean recovery; walTorn/walOrphans describe
	// what the recovery scan found.
	recovered  chan struct{}
	walPending atomic.Int32
	walOK      atomic.Bool
	walLock    *wal.DirLock
	walStale   []string
	walTorn    int
	walOrphans int
}

// New starts a Service with cfg's shard count and mailbox depth. It panics
// if cfg.WAL is set and recovery fails; durable services should use Open.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a Service, recovering durable state from cfg.WAL.Dir when
// durability is enabled: the newest valid checkpoint of every graph is
// published immediately (reads work — degraded — before Open returns), and
// each shard replays its log tail before processing new writes. Open fails
// only on unrecoverable durability problems: an unreadable directory, a
// graph whose checkpoints are all corrupt, or an unopenable log.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:         cfg,
		shards:      make([]*shard, cfg.Shards),
		reg:         obs.NewRegistry(),
		recovered:   make(chan struct{}),
		samplerStop: make(chan struct{}),
		samplerDone: make(chan struct{}),
	}
	// Empty routing table: every graph starts on its hash shard. openWAL
	// replaces it with the durable routes before routing any recovery.
	empty := make(routeMap)
	s.routes.Store(&empty)
	// All shards share one start instant so every first-sample rate window
	// in Metrics spans the same interval (see Metrics).
	started := time.Now()
	for i := range s.shards {
		sh := &shard{
			svc:     s,
			idx:     i,
			mach:    pram.NewMachineWithWorkers(1, cfg.Workers),
			mailbox: make(chan task, cfg.MailboxDepth),
			graphs:  make(map[GraphID]*graphState),
			qcache:  snapquery.NewCache(cfg.QueryCache),
			slow:    obs.NewSlowRing(cfg.SlowTraces),
			hot:     obs.NewSpaceSaving(cfg.HotTenants),
			series:  obs.NewSeriesRing(seriesFields, cfg.SampleWindows),
			started: started,
		}
		// Charge index builds/patches performed by reader goroutines back to
		// the graph that owns the index. A dropped graph's in-flight build
		// simply finds no state and goes unattributed.
		sh.qcache.SetAttribution(func(graphName string, patched bool, d time.Duration) {
			if gs := sh.lookup(GraphID(graphName)); gs != nil {
				gs.meter.RecordIndex(patched, d)
			}
		})
		s.shards[i] = sh
	}
	if cfg.WAL != nil {
		if err := s.openWAL(); err != nil {
			for _, sh := range s.shards {
				if sh.w != nil && sh.w.log != nil {
					sh.w.log.Close()
				}
			}
			if s.routeLog != nil {
				s.routeLog.Close()
			}
			s.walLock.Release()
			return nil, err
		}
	} else {
		close(s.recovered)
	}
	for _, sh := range s.shards {
		s.publishShard(sh)
		s.wg.Add(1)
		go sh.run(&s.wg, cfg.Headroom)
	}
	if cfg.WAL != nil {
		s.reg.Gauge("wal.recovery.graphs_total", s.recGraphsTotal.Load)
		s.reg.Gauge("wal.recovery.graphs_done", s.recGraphsDone.Load)
		s.reg.Gauge("wal.recovery.replayed", func() int64 {
			var n int64
			for _, sh := range s.shards {
				n += int64(sh.w.replayed.Load())
			}
			return n
		})
	}
	s.reg.Gauge("routes.size", func() int64 { return int64(s.RoutedGraphs()) })
	s.reg.Gauge("migrations", func() int64 { return int64(s.migrations.Load()) })
	s.reg.Gauge("migration_failures", func() int64 { return int64(s.migFailures.Load()) })
	go s.runSampler()
	if cfg.Rebalance != nil {
		s.rebalStop = make(chan struct{})
		s.rebalDone = make(chan struct{})
		go s.runRebalancer(*cfg.Rebalance)
	}
	return s, nil
}

// publishShard registers one shard's gauges, latency histograms, machine
// and index cache in the service registry (served by DebugHandler at
// /debug/obs). Every Var samples atomics or channel lengths only.
func (s *Service) publishShard(sh *shard) {
	prefix := fmt.Sprintf("shard%d.", sh.idx)
	s.reg.Gauge(prefix+"queue.depth", func() int64 { return int64(len(sh.mailbox)) })
	s.reg.Gauge(prefix+"queue.cap", func() int64 { return int64(cap(sh.mailbox)) })
	s.reg.Gauge(prefix+"queue.highwater", sh.queueHWM.Load)
	s.reg.Gauge(prefix+"updates", func() int64 { return int64(sh.updates.Load()) })
	s.reg.Gauge(prefix+"rejected", func() int64 { return int64(sh.rejected.Load()) })
	s.reg.Publish(prefix+"latency.apply", func() any { return sh.applyHist.Snapshot() })
	s.reg.Publish(prefix+"latency.wait", func() any { return sh.waitHist.Snapshot() })
	s.reg.Publish(prefix+"latency.publish", func() any { return sh.publishHist.Snapshot() })
	s.reg.Publish(prefix+"batch.size", func() any { return sh.batchHist.Snapshot() })
	sh.mach.ObsPublish(s.reg, prefix+"pram.")
	sh.qcache.ObsPublish(s.reg, prefix+"snapquery.")
	if w := sh.w; w != nil {
		s.reg.Gauge(prefix+"wal.appends", func() int64 { return int64(w.log.Stats().Appends) })
		s.reg.Gauge(prefix+"wal.syncs", func() int64 { return int64(w.log.Stats().Syncs) })
		s.reg.Gauge(prefix+"wal.replayed", func() int64 { return int64(w.replayed.Load()) })
		s.reg.Gauge(prefix+"wal.checkpoints", func() int64 { return int64(w.checkpoints.Load()) })
		s.reg.Gauge(prefix+"wal.recovering", func() int64 {
			if w.recovering.Load() {
				return 1
			}
			return 0
		})
		s.reg.Publish(prefix+"wal.latency.append", func() any { return w.appendHist.Snapshot() })
		s.reg.Publish(prefix+"wal.latency.sync", func() any { return w.syncHist.Snapshot() })
		s.reg.Publish(prefix+"wal.latency.replay", func() any { return w.replayHist.Snapshot() })
	}
}

// Obs returns the service's observability registry: every shard's gauges
// and latency histograms, each shard machine's PRAM accounting, and each
// shard's snapquery cache, published under "shard<i>." prefixes. Callers
// may publish additional sources into it before serving DebugHandler.
func (s *Service) Obs() *obs.Registry { return s.reg }

// SlowTraces returns the slowest retained update traces across all shards,
// slowest first. Each shard retains its Config.SlowTraces slowest updates
// (by total latency: mailbox wait + apply + publish) since start.
func (s *Service) SlowTraces() []obs.Trace {
	var out []obs.Trace
	for _, sh := range s.shards {
		out = append(out, sh.slow.Snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// NumShards returns the configured shard count.
func (s *Service) NumShards() int { return len(s.shards) }

// CreateGraph registers g under id on its shard and waits for the initial
// snapshot (static DFS preprocessing runs on the shard loop). g is cloned;
// the caller keeps ownership of its copy.
func (s *Service) CreateGraph(id GraphID, g *graph.Graph) (*Snapshot, error) {
	fut := newFuture()
	if err := s.shardFor(id).submit(task{kind: taskCreate, id: id, g: g, fut: fut}); err != nil {
		return nil, err
	}
	_, snap, err := fut.Wait()
	return snap, err
}

// DropGraph removes id, waiting until the shard loop has retired it.
// Snapshots already handed out stay valid.
func (s *Service) DropGraph(id GraphID) error {
	fut := newFuture()
	if err := s.shardFor(id).submit(task{kind: taskDrop, id: id, fut: fut}); err != nil {
		return err
	}
	_, _, err := fut.Wait()
	return err
}

// Apply submits one update for id and returns a Future resolved by the
// owning shard once the update (and its snapshot publication) completes.
// Apply blocks only when the shard's mailbox is full.
func (s *Service) Apply(id GraphID, u core.Update) (*Future, error) {
	fut := newFuture()
	if err := s.shardFor(id).submit(task{kind: taskApply, id: id, upd: u, fut: fut}); err != nil {
		return nil, err
	}
	return fut, nil
}

// BatchItem is one update of a cross-graph batch.
type BatchItem struct {
	Graph  GraphID
	Update core.Update
}

// ApplyBatch submits a batch of updates, coalescing them into one mailbox
// round per shard: every shard receives a single task holding its items in
// submission order, applies them back to back, and publishes each touched
// graph's snapshot once at the end of the round. The returned futures are
// in items order and are always resolved, even when ApplyBatch also
// returns an error: if a shard rejects its sub-batch (service closing),
// that shard's futures resolve with the error while other shards' items —
// possibly already submitted — proceed normally, so a caller racing Close
// can still observe exactly which items were applied.
func (s *Service) ApplyBatch(items []BatchItem) ([]*Future, error) {
	futs := make([]*Future, len(items))
	perShard := make(map[*shard][]batchEntry, len(s.shards))
	for i, it := range items {
		futs[i] = newFuture()
		sh := s.shardFor(it.Graph)
		perShard[sh] = append(perShard[sh], batchEntry{id: it.Graph, upd: it.Update, fut: futs[i]})
	}
	var firstErr error
	for sh, entries := range perShard {
		if err := sh.submit(task{kind: taskBatch, entries: entries}); err != nil {
			for _, en := range entries {
				en.fut.resolve(-1, nil, err)
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return futs, firstErr
}

// Snapshot returns id's latest published snapshot. It never blocks on the
// shard's update loop, and it follows the routing table across live
// migrations — a reader never observes the handoff.
func (s *Service) Snapshot(id GraphID) (*Snapshot, error) {
	_, gs := s.lookupState(id)
	if gs == nil {
		return nil, fmt.Errorf("service: graph %q: %w", id, ErrUnknownGraph)
	}
	return gs.snap.Load(), nil
}

// Tree returns id's current DFS tree and pseudo root (snapshot read).
func (s *Service) Tree(id GraphID) (*tree.Tree, int, error) {
	snap, err := s.Snapshot(id)
	if err != nil {
		return nil, 0, err
	}
	return snap.Tree, snap.PseudoRoot, nil
}

// IsAncestor answers an ancestry query against id's latest snapshot.
func (s *Service) IsAncestor(id GraphID, a, v int) (bool, error) {
	snap, err := s.Snapshot(id)
	if err != nil {
		return false, err
	}
	return snap.IsAncestor(a, v)
}

// Path returns the tree path from down up to ancestor up in id's latest
// snapshot.
func (s *Service) Path(id GraphID, down, up int) ([]int, error) {
	snap, err := s.Snapshot(id)
	if err != nil {
		return nil, err
	}
	return snap.Path(down, up)
}

// QueryHandle is a version-pinned analytics handle over one published
// snapshot: LCA, KthAncestor, subtree aggregates, tree paths and the full
// biconnectivity family (articulation points, bridges, component IDs),
// each index built at most once per version and shared by every reader of
// that version. A handle pins exactly one version: it keeps answering
// consistently after any number of later updates, and after the shard's
// index cache evicts the version.
type QueryHandle = snapquery.Handle

// Query returns the analytics handle for id's latest published snapshot.
// The hot path (version already cached on the shard) is lock-free reads
// plus one LRU bump — no allocation and no index construction.
func (s *Service) Query(id GraphID) (*QueryHandle, error) {
	sh, gs := s.lookupState(id)
	if gs == nil {
		return nil, fmt.Errorf("service: graph %q: %w", id, ErrUnknownGraph)
	}
	return sh.queryHandle(gs.snap.Load()), nil
}

// QuerySnapshot returns the analytics handle for a specific retained
// snapshot — pinned old versions stay queryable (and cacheable) even while
// newer versions are being published and served.
func (s *Service) QuerySnapshot(snap *Snapshot) *QueryHandle {
	return s.shardFor(snap.ID).queryHandle(snap)
}

// Verify checks id's latest snapshot (tree is a DFS tree of the graph).
func (s *Service) Verify(id GraphID) error {
	snap, err := s.Snapshot(id)
	if err != nil {
		return err
	}
	return snap.Verify()
}

// Verify checks id's latest snapshot; CheckSynced goes further and runs the
// maintainer-side oracle on the shard loop itself: it validates that the
// graph's query structure D is exactly the structure a fresh build over the
// current graph and tree would produce (the recovery acceptance check —
// replayed state must be indistinguishable from never having crashed). It
// queues behind pending updates like any write.
func (s *Service) CheckSynced(id GraphID) error {
	fut := newFuture()
	if err := s.shardFor(id).submit(task{kind: taskCheck, id: id, fut: fut}); err != nil {
		return err
	}
	_, _, err := fut.Wait()
	return err
}

// ShutdownShard describes one shard that failed to drain before a
// CloseContext deadline.
type ShutdownShard struct {
	Shard      int
	QueueDepth int // tasks still waiting in the mailbox
}

// ShutdownError reports a shutdown deadline expiring with shards still
// running: which shards had not exited and how deep their queues were. The
// shards keep draining in the background; their goroutines exit once the
// backlog (and any wedged task) completes.
type ShutdownError struct {
	Undrained []ShutdownShard
	Cause     error // the context's error
}

func (e *ShutdownError) Error() string {
	depth := 0
	for _, u := range e.Undrained {
		depth += u.QueueDepth
	}
	return fmt.Sprintf("service: shutdown deadline: %d shards undrained (%d tasks queued): %v",
		len(e.Undrained), depth, e.Cause)
}

// Unwrap exposes the context error for errors.Is(err, context.Deadline...).
func (e *ShutdownError) Unwrap() error { return e.Cause }

// Close drains and stops the service: new submissions fail with ErrClosed,
// every already-enqueued task is processed and its Future resolved, and the
// shard goroutines exit before Close returns. Reads remain available.
func (s *Service) Close() error { return s.CloseContext(context.Background()) }

// CloseContext is Close with a deadline: if ctx expires before every shard
// drains, it returns a *ShutdownError naming the undrained shards and their
// queue depths instead of hanging on a wedged update. Shutdown itself is
// not cancelled — submissions already fail and the shards keep draining in
// the background; enqueued Futures still resolve eventually.
func (s *Service) CloseContext(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	// Stop the rebalancer first — it submits migration tasks and must not
	// race the mailbox close — then the sampler: neither goroutine may
	// outlive the service.
	if s.rebalStop != nil {
		close(s.rebalStop)
		<-s.rebalDone
	}
	close(s.samplerStop)
	<-s.samplerDone
	for _, sh := range s.shards {
		sh.submitMu.Lock()
		sh.closed = true
		close(sh.mailbox)
		sh.submitMu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Every shard goroutine has exited (logs closed), so the directory
		// can change owners — also on the deadline path, where this runs
		// once the background drain completes. The route log closes under
		// routeMu so it can never race a migration's commit append.
		if s.routeLog != nil {
			s.routeMu.Lock()
			s.routeLog.Close()
			s.routeMu.Unlock()
		}
		s.walLock.Release()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e := &ShutdownError{Cause: ctx.Err()}
		for _, sh := range s.shards {
			if !sh.stopped.Load() {
				e.Undrained = append(e.Undrained, ShutdownShard{Shard: sh.idx, QueueDepth: len(sh.mailbox)})
			}
		}
		return e
	}
}
