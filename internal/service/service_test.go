package service

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func mustCreate(t *testing.T, s *Service, id GraphID, g *graph.Graph) *Snapshot {
	t.Helper()
	snap, err := s.CreateGraph(id, g)
	if err != nil {
		t.Fatalf("CreateGraph(%q): %v", id, err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("initial snapshot of %q invalid: %v", id, err)
	}
	return snap
}

func TestServiceBasic(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	g := graph.GnpConnected(64, 4.0/64, rng)
	mustCreate(t, s, "g1", g)

	if _, err := s.CreateGraph("g1", g); !errors.Is(err, ErrGraphExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := s.Snapshot("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("missing graph: %v", err)
	}

	// One of each update kind, each future's snapshot verified.
	e, ok := graph.RandomEdgeNotIn(g, rng)
	if !ok {
		t.Fatal("no absent edge")
	}
	steps := []core.Update{
		{Kind: core.InsertEdge, U: e.U, V: e.V},
		{Kind: core.DeleteEdge, U: e.U, V: e.V},
		{Kind: core.InsertVertex, Neighbors: []int{0, 1}},
	}
	var version uint64
	for i, u := range steps {
		fut, err := s.Apply("g1", u)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		v, snap, err := fut.Wait()
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if u.Kind == core.InsertVertex && v < 0 {
			t.Fatalf("InsertVertex returned id %d", v)
		}
		if snap.Version <= version {
			t.Fatalf("update %d: version %d did not advance past %d", i, snap.Version, version)
		}
		version = snap.Version
		if err := snap.Verify(); err != nil {
			t.Fatalf("update %d: snapshot invalid: %v", i, err)
		}
	}

	// Read API against the latest snapshot.
	tr, pseudo, err := s.Tree("g1")
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := s.IsAncestor("g1", pseudo, 0); err != nil || !ok {
		t.Fatalf("pseudo root must be everyone's ancestor: %v %v", ok, err)
	}
	if _, err := s.IsAncestor("g1", tr.N()+7, 0); err == nil {
		t.Fatal("IsAncestor on a non-vertex must error")
	}
	path, err := s.Path("g1", 0, pseudo)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || path[0] != 0 || path[len(path)-1] != pseudo {
		t.Fatalf("bad path %v", path)
	}
	if err := s.Verify("g1"); err != nil {
		t.Fatal(err)
	}

	// A rejected update reports the maintainer error and leaves state valid.
	fut, err := s.Apply("g1", core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fut.Wait(); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := s.Verify("g1"); err != nil {
		t.Fatal(err)
	}

	if err := s.DropGraph("g1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot("g1"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("dropped graph still resolves: %v", err)
	}
}

// TestServiceSnapshotIsolation pins a snapshot, applies updates, and checks
// the old snapshot is untouched while new snapshots advance.
func TestServiceSnapshotIsolation(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	g := graph.GnpConnected(96, 4.0/96, rng)
	old := mustCreate(t, s, "iso", g)
	oldEdges := old.Graph.NumEdges()

	for i := 0; i < 10; i++ {
		if e, ok := graph.RandomEdgeNotIn(old.Graph, rng); ok {
			fut, err := s.Apply("iso", core.Update{Kind: core.InsertEdge, U: e.U, V: e.V})
			if err != nil {
				t.Fatal(err)
			}
			fut.Wait() // conflicts tolerated; old.Graph is a stale view
		}
	}
	if old.Version != 0 || old.Graph.NumEdges() != oldEdges {
		t.Fatalf("pinned snapshot mutated: version %d edges %d (want 0, %d)",
			old.Version, old.Graph.NumEdges(), oldEdges)
	}
	if err := old.Verify(); err != nil {
		t.Fatalf("pinned snapshot no longer verifies: %v", err)
	}
	cur, err := s.Snapshot("iso")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version == 0 {
		t.Fatal("current snapshot did not advance")
	}
	if err := cur.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceSnapshotLongevity retains a version-k snapshot across 1000
// later updates: it must still verify against its own tree, and its edge
// set must be byte-identical to the clone captured at publication time —
// the copy-on-write graph may share rows with later versions but must never
// let a later update show through a retained version.
func TestServiceSnapshotLongevity(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	rng := rand.New(rand.NewSource(9))
	const n, pinAfter, updates = 64, 7, 1000
	g := graph.GnpConnected(n, 4.0/float64(n), rng)
	snap := mustCreate(t, s, "long", g)
	mirror := snap.Graph.Mutable()

	apply := func(k int) {
		for applied := 0; applied < k; {
			var u core.Update
			if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok && rng.Intn(2) == 0 {
				mirror.InsertEdge(e.U, e.V)
				u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
			} else if e, ok := graph.RandomExistingEdge(mirror, rng); ok {
				mirror.DeleteEdge(e.U, e.V)
				u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
			} else {
				continue
			}
			fut, err := s.Apply("long", u)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
			applied++
		}
	}

	apply(pinAfter)
	pinned, err := s.Snapshot("long")
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Version != pinAfter {
		t.Fatalf("pinned snapshot at version %d, want %d", pinned.Version, pinAfter)
	}
	// The clone-based ground truth: Edges() materializes an independent
	// copy of the mirror's edge set at pin time.
	cloneEdges := mirror.Edges()
	pinnedTree := pinned.Tree

	apply(updates)

	cur, err := s.Snapshot("long")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != pinAfter+updates {
		t.Fatalf("current snapshot at version %d, want %d", cur.Version, pinAfter+updates)
	}
	if pinned.Tree != pinnedTree || pinned.Version != pinAfter {
		t.Fatal("pinned snapshot fields mutated")
	}
	if err := pinned.Verify(); err != nil {
		t.Fatalf("pinned snapshot no longer verifies after %d updates: %v", updates, err)
	}
	got := pinned.Graph.Edges()
	if len(got) != len(cloneEdges) {
		t.Fatalf("pinned edge count %d, clone-based %d", len(got), len(cloneEdges))
	}
	for i := range got {
		if got[i] != cloneEdges[i] {
			t.Fatalf("edge %d: pinned %v, clone-based %v", i, got[i], cloneEdges[i])
		}
	}
	if err := cur.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConcurrentReadersWriters is the -race hammer: one Service,
// four shards, eight graphs, dedicated writers submitting mixed updates
// (singles and coalesced batches) while readers continuously serve
// ancestry/path queries and cross-check snapshots with the DFS verifier.
func TestServiceConcurrentReadersWriters(t *testing.T) {
	const (
		shards  = 4
		graphs  = 8
		updates = 60
		readers = 4
		n       = 48
	)
	s := New(Config{Shards: shards, MailboxDepth: 32})
	defer s.Close()

	ids := make([]GraphID, graphs)
	for i := range ids {
		ids[i] = GraphID(fmt.Sprintf("tenant-%d", i))
		rng := rand.New(rand.NewSource(int64(100 + i)))
		mustCreate(t, s, ids[i], graph.GnpConnected(n, 4.0/float64(n), rng))
	}

	var stop atomic.Bool
	var wgWriters, wgReaders sync.WaitGroup
	errc := make(chan error, graphs+readers)

	// Writers: one per graph (so each writer's mirror stays exact), issuing
	// singles and occasional coalesced batches, verifying every future's
	// snapshot.
	for i, id := range ids {
		wgWriters.Add(1)
		go func(i int, id GraphID) {
			defer wgWriters.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			snap, err := s.Snapshot(id)
			if err != nil {
				errc <- err
				return
			}
			mirror := snap.Graph.Mutable()
			nextUpdate := func() (core.Update, bool) {
				if rng.Intn(2) == 0 {
					if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
						mirror.InsertEdge(e.U, e.V)
						return core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}, true
					}
				}
				if e, ok := graph.RandomExistingEdge(mirror, rng); ok {
					mirror.DeleteEdge(e.U, e.V)
					return core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}, true
				}
				return core.Update{}, false
			}
			for k := 0; k < updates; k++ {
				var futs []*Future
				if k%8 == 0 {
					// Coalesced round of 3 updates on this graph.
					var items []BatchItem
					for j := 0; j < 3; j++ {
						if u, ok := nextUpdate(); ok {
							items = append(items, BatchItem{Graph: id, Update: u})
						}
					}
					fs, err := s.ApplyBatch(items)
					if err != nil {
						errc <- err
						return
					}
					futs = fs
				} else {
					u, ok := nextUpdate()
					if !ok {
						continue
					}
					fut, err := s.Apply(id, u)
					if err != nil {
						errc <- err
						return
					}
					futs = []*Future{fut}
				}
				for _, fut := range futs {
					if _, snap, err := fut.Wait(); err != nil {
						errc <- fmt.Errorf("%s update %d: %w", id, k, err)
						return
					} else if err := snap.Verify(); err != nil {
						errc <- fmt.Errorf("%s update %d: snapshot invalid: %w", id, k, err)
						return
					}
				}
			}
		}(i, id)
	}

	// Readers: random snapshot reads across all graphs; every snapshot read
	// is verified against its own frozen graph, and ancestry answers are
	// cross-checked against that snapshot's tree.
	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func(r int) {
			defer wgReaders.Done()
			rng := rand.New(rand.NewSource(int64(2000 + r)))
			for !stop.Load() {
				id := ids[rng.Intn(len(ids))]
				snap, err := s.Snapshot(id)
				if err != nil {
					errc <- err
					return
				}
				if err := snap.Verify(); err != nil {
					errc <- fmt.Errorf("reader %d: %s@%d: %w", r, id, snap.Version, err)
					return
				}
				u, v := rng.Intn(n), rng.Intn(n)
				if snap.Tree.Present(u) && snap.Tree.Present(v) {
					got, err := snap.IsAncestor(u, v)
					if err != nil {
						errc <- err
						return
					}
					if got != snap.Tree.IsAncestor(u, v) {
						errc <- fmt.Errorf("reader %d: inconsistent ancestry", r)
						return
					}
				}
				if _, _, err := s.Tree(id); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}

	// Wait for the writers (collecting any error as it happens), then stop
	// the readers and drain any error they raised.
	writersDone := make(chan struct{})
	go func() {
		wgWriters.Wait()
		close(writersDone)
	}()
	var firstErr error
	for done := false; !done; {
		select {
		case err := <-errc:
			if firstErr == nil {
				firstErr = err
			}
			stop.Store(true)
		case <-writersDone:
			done = true
		}
	}
	stop.Store(true)
	wgReaders.Wait()
	select {
	case err := <-errc:
		if firstErr == nil {
			firstErr = err
		}
	default:
	}
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	m := s.Metrics()
	if m.Updates == 0 {
		t.Fatal("no updates recorded")
	}
	busy := 0
	for _, sm := range m.Shards {
		if sm.Updates > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("expected load on several shards, got %d busy of %d", busy, len(m.Shards))
	}
	if m.Graphs != graphs {
		t.Fatalf("metrics report %d graphs, want %d", m.Graphs, graphs)
	}
}

// TestServiceCloseDrains checks that Close processes every enqueued task,
// resolves its future, rejects later submissions, and keeps reads working.
func TestServiceCloseDrains(t *testing.T) {
	s := New(Config{Shards: 2, MailboxDepth: 64})
	rng := rand.New(rand.NewSource(5))
	g := graph.GnpConnected(48, 4.0/48, rng)
	snap := mustCreate(t, s, "drain", g)

	mirror := snap.Graph.Mutable()
	var futs []*Future
	for i := 0; i < 20; i++ {
		e, ok := graph.RandomEdgeNotIn(mirror, rng)
		if !ok {
			break
		}
		mirror.InsertEdge(e.U, e.V)
		fut, err := s.Apply("drain", core.Update{Kind: core.InsertEdge, U: e.U, V: e.V})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, fut := range futs {
		if _, _, err := fut.Wait(); err != nil {
			t.Fatalf("drained update %d failed: %v", i, err)
		}
	}
	if _, err := s.Apply("drain", core.Update{Kind: core.InsertVertex}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close apply: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	// Reads still served from the last snapshot.
	cur, err := s.Snapshot("drain")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != uint64(len(futs)) {
		t.Fatalf("drained %d updates, snapshot at version %d", len(futs), cur.Version)
	}
	if err := cur.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceApplyBatchCrossGraph coalesces a batch spanning graphs on
// different shards and checks per-item resolution and one publication per
// graph per round.
func TestServiceApplyBatchCrossGraph(t *testing.T) {
	s := New(Config{Shards: 4})
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	var items []BatchItem
	for i := 0; i < 6; i++ {
		id := GraphID(fmt.Sprintf("bg-%d", i))
		g := graph.GnpConnected(32, 4.0/32, rng)
		snap := mustCreate(t, s, id, g)
		e, ok := graph.RandomEdgeNotIn(snap.Graph, rng)
		if !ok {
			t.Fatal("no absent edge")
		}
		items = append(items,
			BatchItem{Graph: id, Update: core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}},
			BatchItem{Graph: id, Update: core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}})
	}
	items = append(items, BatchItem{Graph: "missing", Update: core.Update{Kind: core.InsertVertex}})
	futs, err := s.ApplyBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	for i, fut := range futs {
		_, snap, err := fut.Wait()
		if items[i].Graph == "missing" {
			if !errors.Is(err, ErrUnknownGraph) {
				t.Fatalf("missing-graph item: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		// Both updates of a graph share the round-final snapshot.
		if snap.Version != 2 {
			t.Fatalf("item %d: round-final snapshot at version %d, want 2", i, snap.Version)
		}
		if err := snap.Verify(); err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
}
