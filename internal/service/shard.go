package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pram"
	"repro/internal/snapquery"
	"repro/internal/wal"
)

type taskKind int

const (
	taskCreate taskKind = iota
	taskDrop
	taskApply
	taskBatch
	taskCheck // run the D/graph/tree sync oracle on the shard loop
	taskFunc  // run an arbitrary closure on the shard loop (migration steps, tests)
)

// maxForwardHops caps how many times a task can be rerouted after racing
// migration flips before it fails instead of bouncing forever.
const maxForwardHops = 16

// task is one mailbox message. Exactly one of the payload fields is set,
// per kind; fut is always non-nil for create/drop/apply, and batch entries
// carry their own futures.
type task struct {
	kind     taskKind
	id       GraphID
	g        *graph.Graph // create: initial graph (cloned by the maintainer)
	upd      core.Update  // apply
	entries  []batchEntry // batch
	fn       func()       // func (migration protocol steps; tests: wedge or probe the loop)
	fut      *Future
	hops     int       // times forwarded across shards after a migration flip
	enqueued time.Time // stamped by submit; mailbox wait = receive - enqueued
}

type batchEntry struct {
	id  GraphID
	upd core.Update
	fut *Future
}

// graphState is one tenant graph on a shard: the maintainer (touched only
// by the shard goroutine) and the atomically published snapshot (read by
// everyone).
type graphState struct {
	dd   *core.DynamicDFS
	snap atomic.Pointer[Snapshot]

	// meter is the graph's cumulative cost attribution (updates, stage
	// nanos, WAL bytes, index work). Created with the graphState and never
	// nil; the shard loop writes the update-path fields, reader goroutines
	// the index fields, and Metrics/TenantMetrics sample it lock-free.
	meter *obs.TenantMeter

	// Pending tree delta accumulated since the last publish (shard loop
	// only). A batch round applies several updates before publishing once,
	// so the per-update core deltas are unioned here; any update without a
	// usable delta (relocation, error recovery) poisons the round and the
	// next snapshot ships without one.
	pendMoved   []int
	pendRemoved []int
	pendSame    bool
	pendInvalid bool
	pendCount   int

	// Migration freeze state (shard loop only). While migrating is set the
	// graph's tasks are parked in deferred instead of being applied — the
	// maintainer must not advance past the checkpoint the migration pinned.
	// The coordinator replays deferred on the destination after the route
	// flips (or back here on abort), preserving submission order.
	migrating bool
	deferred  []task
}

// absorb folds one applied update's delta into the pending set.
func (gs *graphState) absorb(d *core.Delta) {
	if gs.pendCount == 0 {
		gs.pendSame = true
	}
	gs.pendCount++
	if d == nil {
		gs.pendInvalid = true
		return
	}
	if !d.SameTree {
		gs.pendSame = false
	}
	gs.pendMoved = append(gs.pendMoved, d.Moved...)
	gs.pendRemoved = append(gs.pendRemoved, d.Removed...)
}

// invalidatePending poisons the pending delta: called when an update was
// rejected, because some rejection paths mutate state the delta cannot
// account for (e.g. the in-place error recovery renumbers the whole tree).
func (gs *graphState) invalidatePending() {
	gs.pendCount++
	gs.pendInvalid = true
}

// shard owns a set of graphs, the goroutine that applies their updates, and
// the pram.Machine whose worker pool and merged depth/work accounting all
// of them share.
type shard struct {
	// svc points back to the owning Service for routing decisions (straggler
	// forwarding after a migration flip, durable route removal on drop). nil
	// in tests that construct bare shards.
	svc     *Service
	idx     int
	mach    *pram.Machine
	mailbox chan task

	// submitMu serializes submissions against Close: senders hold the read
	// lock, Close flips closed and closes the mailbox under the write lock,
	// so no send can race the close.
	submitMu sync.RWMutex
	closed   bool

	// mu guards the graphs map structure (the shard loop writes on
	// create/drop; readers resolve IDs under the read lock).
	mu     sync.RWMutex
	graphs map[GraphID]*graphState

	// qcache retains the derived query indexes (snapquery bundles) of the
	// shard's recently queried snapshot versions. Read-side only: the
	// update loop never touches it except to purge dropped graphs.
	qcache *snapquery.Cache

	updates  atomic.Uint64 // successfully applied updates
	rejected atomic.Uint64 // updates rejected by the maintainer
	started  time.Time

	// queueHWM is the deepest the mailbox has been since the last sampler
	// tick (submitters CAS it up after every send), so queue spikes between
	// ticks are visible; only the sampler reads and resets it, per window,
	// so Metrics callers never consume each other's windows.
	queueHWM atomic.Int64

	// hot ranks the shard's graphs by cumulative apply cost (nanoseconds)
	// with bounded memory; the shard loop is the only Observe caller.
	hot *obs.SpaceSaving

	// series is the shard's sampled counter history (see seriesFields): the
	// background sampler appends one point per tick, Metrics and the
	// history endpoint read it. prevApply/prevWALSync are the sampler's
	// previous cumulative histogram snapshots for windowed percentiles,
	// touched only under the service's sample lock.
	series      *obs.SeriesRing
	prevApply   obs.HistSnapshot
	prevWALSync obs.HistSnapshot

	// Latency distributions of the shard's write path (lock-free; recorded
	// by the shard loop, sampled by Metrics and the debug endpoint):
	// maintainer apply time per update, snapshot publish time per
	// publication, mailbox wait per task, and entries per batch round.
	applyHist   obs.Histogram
	waitHist    obs.Histogram
	publishHist obs.Histogram
	batchHist   obs.Histogram

	// stageNanos accumulates per-stage wall-clock across every applied
	// update, indexed like obs.StageNames; slow retains the slowest-K
	// update traces for inspection.
	stageNanos [5]atomic.Int64
	slow       *obs.SlowRing

	// migrationsIn/Out count graphs this shard received from / handed to
	// another shard through completed migrations.
	migrationsIn  atomic.Uint64
	migrationsOut atomic.Uint64

	// w is the shard's durability state; nil when the service runs without
	// a write-ahead log. stopped flips when the goroutine exits, so a
	// deadline-bounded shutdown can report which shards are still running.
	w       *shardWAL
	stopped atomic.Bool
}

// submit enqueues t unless the shard is closed. It blocks while the mailbox
// is full (backpressure toward the producer).
func (sh *shard) submit(t task) error {
	sh.submitMu.RLock()
	defer sh.submitMu.RUnlock()
	if sh.closed {
		return ErrClosed
	}
	t.enqueued = time.Now()
	sh.mailbox <- t
	// Raise the sample window's queue high-water mark: a burst that drains
	// before the next sampler tick still leaves its footprint here.
	if d := int64(len(sh.mailbox)); d > sh.queueHWM.Load() {
		for {
			cur := sh.queueHWM.Load()
			if d <= cur || sh.queueHWM.CompareAndSwap(cur, d) {
				break
			}
		}
	}
	return nil
}

// run is the shard's update loop: it drains the mailbox until Close closes
// it, applying every task in submission order. Under WAL the loop is
// bracketed by the recovery prologue (replay the log tail while reads serve
// the checkpoint snapshots) and a closing sync of the log.
func (sh *shard) run(wg *sync.WaitGroup, headroom int) {
	defer wg.Done()
	defer sh.stopped.Store(true)
	if sh.w != nil {
		sh.recoverReplay()
	}
	for t := range sh.mailbox {
		sh.handle(t, headroom)
	}
	// A migration frozen when the service closed leaves parked tasks whose
	// futures nobody will replay: resolve them so their writers never hang.
	sh.mu.RLock()
	for _, gs := range sh.graphs {
		for _, dt := range gs.deferred {
			dt.fut.resolve(-1, nil, ErrClosed)
		}
		gs.deferred = nil
	}
	sh.mu.RUnlock()
	if sh.w != nil {
		sh.w.log.Close()
	}
}

func (sh *shard) lookup(id GraphID) *graphState {
	sh.mu.RLock()
	gs := sh.graphs[id]
	sh.mu.RUnlock()
	return gs
}

// forwardTask reroutes a task that landed here for a graph this shard does
// not hold, when the routing table says another shard owns it — the task
// was submitted against a route that a migration flipped before the
// mailbox drained to it. The forward runs on its own goroutine because a
// shard loop must never block on another shard's (possibly full) mailbox;
// hops caps pathological bouncing under back-to-back migrations. Returns
// false when the task is genuinely for an unknown graph (this shard is the
// routed owner) and the caller should reject it.
func (sh *shard) forwardTask(t task) bool {
	if sh.svc == nil || t.hops >= maxForwardHops {
		return false
	}
	target := sh.svc.shardFor(t.id)
	if target == sh {
		return false
	}
	t.hops++
	go func(t task) {
		if err := target.submit(t); err != nil {
			t.fut.resolve(-1, nil, err)
		}
	}(t)
	return true
}

// deferTask parks a task for a frozen (mid-migration) graph; the
// coordinator replays the parked tasks in order once the handoff resolves.
func (gs *graphState) deferTask(t task) {
	gs.deferred = append(gs.deferred, t)
}

func (sh *shard) handle(t task, headroom int) {
	switch t.kind {
	case taskCreate:
		if sh.lookup(t.id) != nil {
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrGraphExists))
			return
		}
		if sh.forwardTask(t) {
			return
		}
		if err := sh.walGate(); err != nil {
			t.fut.resolve(-1, nil, err)
			return
		}
		// Keep the shared machine's model processor budget at the paper's
		// per-instance maximum (m processors) across tenants.
		if p := 2*t.g.NumEdges() + t.g.NumVertexSlots() + 1; p > sh.mach.Procs() {
			sh.mach.SetProcs(p)
		}
		gs := &graphState{meter: &obs.TenantMeter{}, dd: core.New(t.g, core.Options{
			RebuildD: true,
			Headroom: headroom,
			Machine:  sh.mach,
		})}
		if w := sh.w; w != nil {
			// A graph exists durably iff its checkpoint does: write the v0
			// checkpoint before acknowledging, so a crash can never have
			// acknowledged a graph that recovery would not restore.
			c := &wal.Checkpoint{
				ID:     string(t.id),
				Seq:    uint64(gs.dd.Updates()),
				Pseudo: gs.dd.PseudoRoot(),
				Graph:  gs.dd.Frozen(),
				Tree:   gs.dd.Tree(),
			}
			if err := wal.WriteCheckpoint(w.cfg.Dir, c, w.cfg.Injector); err != nil {
				w.fail(err)
				t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, err))
				return
			}
			w.checkpoints.Add(1)
		}
		snap := sh.publish(t.id, gs)
		sh.mu.Lock()
		sh.graphs[t.id] = gs
		sh.mu.Unlock()
		t.fut.resolve(-1, snap, nil)

	case taskDrop:
		gs := sh.lookup(t.id)
		if gs == nil {
			if sh.forwardTask(t) {
				return
			}
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrUnknownGraph))
			return
		}
		if gs.migrating {
			gs.deferTask(t)
			return
		}
		if err := sh.walGate(); err != nil {
			t.fut.resolve(-1, gs.snap.Load(), err)
			return
		}
		sh.mu.Lock()
		delete(sh.graphs, t.id)
		sh.mu.Unlock()
		if sh.svc != nil {
			sh.svc.dropRoute(t.id)
		}
		sh.qcache.DropGraph(string(t.id))
		sh.hot.Remove(string(t.id))
		// taskCreate grew the machine's model processor budget to the
		// per-instance maximum; recompute it over the survivors so model
		// depth charges stop being divided by a departed tenant's m.
		sh.recomputeProcs()
		if w := sh.w; w != nil {
			// Remove the graph durably: delete its checkpoints first, then
			// rotate (re-checkpoint survivors + truncate the log) so its
			// records vanish. A crash between the two steps leaves orphan
			// records that recovery counts and skips; the reverse order
			// could resurrect a dropped graph from checkpoint alone.
			wal.DeleteCheckpoints(w.cfg.Dir, string(t.id))
			if err := sh.checkpointShard(); err != nil {
				w.fail(err)
				t.fut.resolve(-1, gs.snap.Load(), fmt.Errorf("service: graph %q: %w", t.id, err))
				return
			}
		}
		t.fut.resolve(-1, gs.snap.Load(), nil)

	case taskApply:
		gs := sh.lookup(t.id)
		if gs == nil {
			if sh.forwardTask(t) {
				return
			}
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrUnknownGraph))
			return
		}
		if gs.migrating {
			gs.deferTask(t)
			return
		}
		if err := sh.walGate(); err != nil {
			t.fut.resolve(-1, gs.snap.Load(), err)
			return
		}
		var tr obs.Trace
		v, err := sh.applyTraced(&tr, t.id, gs, t.upd, t.enqueued, 1)
		if err != nil {
			sh.rejected.Add(1)
			gs.invalidatePending()
			sh.sealTrace(&tr, 0, 0)
			t.fut.resolve(-1, gs.snap.Load(), err)
			return
		}
		tr.Seq = sh.updates.Add(1)
		gs.absorb(gs.dd.LastDelta())
		if sh.w != nil {
			// Append + commit before publishing: readers must never see an
			// update the log has not made durable. On failure the shard
			// fail-stops without publishing — the in-memory maintainer has
			// advanced, but no acknowledgment or snapshot exposes it.
			werr := sh.walAppend(t.id, gs, t.upd)
			if werr == nil {
				if werr = sh.w.log.Commit(); werr != nil {
					sh.w.fail(werr)
				}
			}
			if werr != nil {
				sh.sealTrace(&tr, 0, 0)
				t.fut.resolve(-1, gs.snap.Load(), fmt.Errorf("service: graph %q: %w", t.id, werr))
				return
			}
		}
		p0 := time.Now()
		snap := sh.publish(t.id, gs)
		pd := time.Since(p0)
		sh.publishHist.Record(pd)
		sh.sealTrace(&tr, pd, snap.Version)
		t.fut.resolve(v, snap, nil)
		if sh.w != nil {
			sh.walRoundEnd(1)
		}

	case taskBatch:
		// One coalesced round: apply every entry in order, but publish each
		// touched graph's snapshot once, at the end of the round. Futures
		// resolve against that round-final snapshot (which includes their
		// update — later entries of the same round may be included too).
		type resolution struct {
			fut    *Future
			vertex int
			gs     *graphState
			err    error
			tr     obs.Trace
		}
		sh.batchHist.RecordValue(int64(len(t.entries)))
		resolutions := make([]resolution, 0, len(t.entries))
		touched := make(map[GraphID]*graphState)
		applied := 0
		for _, en := range t.entries {
			// Re-check the gate per entry: a WAL failure mid-round must stop
			// applying before the maintainer diverges further from the log.
			if err := sh.walGate(); err != nil {
				en.fut.resolve(-1, nil, err)
				continue
			}
			gs := sh.lookup(en.id)
			if gs == nil {
				// Unwrap the entry into a standalone apply so it can chase the
				// graph's new shard alone; the rest of the round is unaffected.
				et := task{kind: taskApply, id: en.id, upd: en.upd, fut: en.fut, hops: t.hops, enqueued: t.enqueued}
				if sh.forwardTask(et) {
					continue
				}
				en.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", en.id, ErrUnknownGraph))
				continue
			}
			if gs.migrating {
				gs.deferTask(task{kind: taskApply, id: en.id, upd: en.upd, fut: en.fut, enqueued: t.enqueued})
				continue
			}
			r := resolution{fut: en.fut, gs: gs}
			r.vertex, r.err = sh.applyTraced(&r.tr, en.id, gs, en.upd, t.enqueued, len(t.entries))
			if r.err != nil {
				sh.rejected.Add(1)
				gs.invalidatePending()
			} else {
				r.tr.Seq = sh.updates.Add(1)
				gs.absorb(gs.dd.LastDelta())
				if sh.w != nil {
					if werr := sh.walAppend(en.id, gs, en.upd); werr != nil {
						r.err = fmt.Errorf("service: graph %q: %w", en.id, werr)
					}
				}
				if r.err == nil {
					touched[en.id] = gs
					applied++
				}
			}
			resolutions = append(resolutions, r)
		}
		if sh.w != nil && applied > 0 {
			// Group commit: one round barrier covers every appended record
			// before any future resolves. On failure nothing publishes —
			// acknowledged-but-unlogged updates must never become visible —
			// and every otherwise-successful entry resolves with the error.
			if werr := sh.w.log.Commit(); werr != nil {
				sh.w.fail(werr)
				werr = fmt.Errorf("service: batch round: %w", werr)
				for i := range resolutions {
					if resolutions[i].err == nil {
						resolutions[i].err = werr
					}
				}
				touched = nil
				applied = 0
			}
		}
		for id, gs := range touched {
			p0 := time.Now()
			sh.publish(id, gs)
			sh.publishHist.Record(time.Since(p0))
		}
		for i := range resolutions {
			r := &resolutions[i]
			// Batch traces carry no publish span: the round's one publish
			// per graph is recorded in the publish histogram instead of
			// being attributed to an arbitrary entry.
			snap := r.gs.snap.Load()
			version := uint64(0)
			if r.err == nil && snap != nil {
				version = snap.Version
			}
			sh.sealTrace(&r.tr, 0, version)
			r.fut.resolve(r.vertex, snap, r.err)
		}
		if sh.w != nil {
			sh.walRoundEnd(applied)
		}

	case taskCheck:
		gs := sh.lookup(t.id)
		if gs == nil {
			if sh.forwardTask(t) {
				return
			}
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrUnknownGraph))
			return
		}
		if gs.migrating {
			gs.deferTask(t)
			return
		}
		err := gs.dd.D().CheckSynced(gs.dd.Frozen(), gs.dd.Tree())
		t.fut.resolve(-1, gs.snap.Load(), err)

	case taskFunc:
		t.fn()
		t.fut.resolve(-1, nil, nil)
	}
}

// applyTraced runs one update on gs's maintainer with stage
// instrumentation: it stamps tr with the mailbox wait, threads tr through
// the maintainer (which fills the engine/D-maintenance spans and the
// outcome tags), computes the plan span as the apply remainder, charges the
// update's PRAM depth/work delta, and records the wait/apply histograms.
func (sh *shard) applyTraced(tr *obs.Trace, id GraphID, gs *graphState, u core.Update, enqueued time.Time, batch int) (int, error) {
	recv := time.Now()
	*tr = obs.Trace{
		Graph: string(id),
		Shard: sh.idx,
		Kind:  u.Kind.String(),
		Start: recv,
		Wait:  recv.Sub(enqueued),
		Batch: batch,
	}
	d0, w0 := sh.mach.Depth(), sh.mach.Work()
	gs.dd.SetTrace(tr)
	v, err := gs.dd.Apply(u)
	gs.dd.SetTrace(nil)
	apply := time.Since(recv)
	tr.Depth, tr.Work = sh.mach.Depth()-d0, sh.mach.Work()-w0
	if plan := apply - tr.Engine - tr.DMaint; plan > 0 {
		tr.Plan = plan
	}
	if err != nil {
		tr.Outcome = "rejected"
		tr.Err = err.Error()
	}
	sh.waitHist.Record(tr.Wait)
	sh.applyHist.Record(apply)
	// Charge the update to its tenant (rejected updates included — they did
	// work) and to the shard's hottest-graphs sketch, weighted by apply cost
	// so "hot" means expensive, not merely chatty.
	gs.meter.RecordUpdate(apply, tr.Engine, tr.DMaint, err != nil)
	if apply > 0 {
		sh.hot.Observe(string(id), uint64(apply))
	}
	return v, err
}

// sealTrace finalizes tr (publish span, published version, total), folds
// its stages into the shard's cumulative stage-time breakdown, and offers
// it to the slowest-K ring. Total is defined as the stage sum, so a
// retained trace's stages always account for its whole recorded latency.
func (sh *shard) sealTrace(tr *obs.Trace, publish time.Duration, version uint64) {
	tr.Publish = publish
	tr.Version = version
	tr.Total = tr.StageSum()
	sh.stageNanos[0].Add(int64(tr.Wait))
	sh.stageNanos[1].Add(int64(tr.Plan))
	sh.stageNanos[2].Add(int64(tr.Engine))
	sh.stageNanos[3].Add(int64(tr.DMaint))
	sh.stageNanos[4].Add(int64(tr.Publish))
	sh.slow.Offer(tr)
}

// publish freezes gs's current state into a new immutable snapshot and
// installs it. Both the graph (a persistent copy-on-write version) and the
// tree (persistent; ReuseTree off) are shared zero-copy, so publication is
// O(1) plus O(Δ) for stamping the pending tree delta: a pointer grab per
// structure, one small Snapshot allocation, and a sort of the moved set —
// no per-vertex or per-edge work regardless of graph size.
func (sh *shard) publish(id GraphID, gs *graphState) *Snapshot {
	dd := gs.dd
	prev := gs.snap.Load()
	var delta *Delta
	if prev != nil && gs.pendCount > 0 && !gs.pendInvalid {
		delta = &Delta{
			Parent:     prev.Version,
			ParentTree: prev.Tree,
			Moved:      dedupSorted(gs.pendMoved),
			Removed:    dedupSorted(gs.pendRemoved),
			SameTree:   gs.pendSame,
		}
	}
	gs.pendMoved = gs.pendMoved[:0]
	gs.pendRemoved = gs.pendRemoved[:0]
	gs.pendSame, gs.pendInvalid, gs.pendCount = false, false, 0
	snap := &Snapshot{
		ID:          id,
		Version:     uint64(dd.Updates()),
		Graph:       dd.Frozen(),
		Tree:        dd.Tree(),
		PseudoRoot:  dd.PseudoRoot(),
		Delta:       delta,
		LastStats:   dd.LastStats(),
		QueryStats:  dd.QueryStats(),
		PublishedAt: time.Now(),
	}
	gs.snap.Store(snap)
	return snap
}

// dedupSorted returns a fresh ascending, duplicate-free copy of s (nil when
// empty), so published deltas never alias the reusable pending buffers.
func dedupSorted(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	out := append([]int(nil), s...)
	sort.Ints(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

// queryHandle resolves snap's version-pinned analytics handle through the
// shard's index cache (shared by all readers of that version), forwarding
// the snapshot's parent delta so a first query on a new version patches the
// parent's indexes when that version is still cached.
func (sh *shard) queryHandle(snap *Snapshot) *snapquery.Handle {
	key := snapquery.Key{Graph: string(snap.ID), Version: snap.Version}
	if d := snap.Delta; d != nil {
		return sh.qcache.HandleDerived(key, snap.Graph, snap.Tree, snap.PseudoRoot,
			snapquery.Key{Graph: string(snap.ID), Version: d.Parent}, d.ParentTree,
			snapquery.Delta{Moved: d.Moved, Removed: d.Removed, SameTree: d.SameTree})
	}
	return sh.qcache.Handle(key, snap.Graph, snap.Tree, snap.PseudoRoot)
}
