package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/snapquery"
)

type taskKind int

const (
	taskCreate taskKind = iota
	taskDrop
	taskApply
	taskBatch
)

// task is one mailbox message. Exactly one of the payload fields is set,
// per kind; fut is always non-nil for create/drop/apply, and batch entries
// carry their own futures.
type task struct {
	kind    taskKind
	id      GraphID
	g       *graph.Graph // create: initial graph (cloned by the maintainer)
	upd     core.Update  // apply
	entries []batchEntry // batch
	fut     *Future
}

type batchEntry struct {
	id  GraphID
	upd core.Update
	fut *Future
}

// graphState is one tenant graph on a shard: the maintainer (touched only
// by the shard goroutine) and the atomically published snapshot (read by
// everyone).
type graphState struct {
	dd   *core.DynamicDFS
	snap atomic.Pointer[Snapshot]
}

// shard owns a set of graphs, the goroutine that applies their updates, and
// the pram.Machine whose worker pool and merged depth/work accounting all
// of them share.
type shard struct {
	idx     int
	mach    *pram.Machine
	mailbox chan task

	// submitMu serializes submissions against Close: senders hold the read
	// lock, Close flips closed and closes the mailbox under the write lock,
	// so no send can race the close.
	submitMu sync.RWMutex
	closed   bool

	// mu guards the graphs map structure (the shard loop writes on
	// create/drop; readers resolve IDs under the read lock).
	mu     sync.RWMutex
	graphs map[GraphID]*graphState

	// qcache retains the derived query indexes (snapquery bundles) of the
	// shard's recently queried snapshot versions. Read-side only: the
	// update loop never touches it except to purge dropped graphs.
	qcache *snapquery.Cache

	updates  atomic.Uint64 // successfully applied updates
	rejected atomic.Uint64 // updates rejected by the maintainer
	started  time.Time

	// sampleMu guards the previous Metrics() sample that the windowed
	// UpdatesPerSec rate is computed against. All Metrics callers share one
	// window per shard.
	sampleMu     sync.Mutex
	sampledAt    time.Time // zero until the first Metrics() call
	sampledCount uint64
}

// submit enqueues t unless the shard is closed. It blocks while the mailbox
// is full (backpressure toward the producer).
func (sh *shard) submit(t task) error {
	sh.submitMu.RLock()
	defer sh.submitMu.RUnlock()
	if sh.closed {
		return ErrClosed
	}
	sh.mailbox <- t
	return nil
}

// run is the shard's update loop: it drains the mailbox until Close closes
// it, applying every task in submission order.
func (sh *shard) run(wg *sync.WaitGroup, headroom int) {
	defer wg.Done()
	for t := range sh.mailbox {
		sh.handle(t, headroom)
	}
}

func (sh *shard) lookup(id GraphID) *graphState {
	sh.mu.RLock()
	gs := sh.graphs[id]
	sh.mu.RUnlock()
	return gs
}

func (sh *shard) handle(t task, headroom int) {
	switch t.kind {
	case taskCreate:
		if sh.lookup(t.id) != nil {
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrGraphExists))
			return
		}
		// Keep the shared machine's model processor budget at the paper's
		// per-instance maximum (m processors) across tenants.
		if p := 2*t.g.NumEdges() + t.g.NumVertexSlots() + 1; p > sh.mach.Procs() {
			sh.mach.SetProcs(p)
		}
		gs := &graphState{dd: core.New(t.g, core.Options{
			RebuildD: true,
			Headroom: headroom,
			Machine:  sh.mach,
		})}
		snap := sh.publish(t.id, gs)
		sh.mu.Lock()
		sh.graphs[t.id] = gs
		sh.mu.Unlock()
		t.fut.resolve(-1, snap, nil)

	case taskDrop:
		gs := sh.lookup(t.id)
		if gs == nil {
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrNoGraph))
			return
		}
		sh.mu.Lock()
		delete(sh.graphs, t.id)
		sh.mu.Unlock()
		sh.qcache.DropGraph(string(t.id))
		// taskCreate grew the machine's model processor budget to the
		// per-instance maximum; recompute it over the survivors so model
		// depth charges stop being divided by a departed tenant's m. The
		// maintainers are only touched by this goroutine, so reading their
		// current graphs here is race-free.
		procs := 1
		sh.mu.RLock()
		for _, rest := range sh.graphs {
			g := rest.dd.Frozen()
			if p := 2*g.NumEdges() + g.NumVertexSlots() + 1; p > procs {
				procs = p
			}
		}
		sh.mu.RUnlock()
		sh.mach.SetProcs(procs)
		t.fut.resolve(-1, gs.snap.Load(), nil)

	case taskApply:
		gs := sh.lookup(t.id)
		if gs == nil {
			t.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", t.id, ErrNoGraph))
			return
		}
		v, err := gs.dd.Apply(t.upd)
		if err != nil {
			sh.rejected.Add(1)
			t.fut.resolve(-1, gs.snap.Load(), err)
			return
		}
		sh.updates.Add(1)
		t.fut.resolve(v, sh.publish(t.id, gs), nil)

	case taskBatch:
		// One coalesced round: apply every entry in order, but publish each
		// touched graph's snapshot once, at the end of the round. Futures
		// resolve against that round-final snapshot (which includes their
		// update — later entries of the same round may be included too).
		type resolution struct {
			fut    *Future
			vertex int
			gs     *graphState
			err    error
		}
		resolutions := make([]resolution, 0, len(t.entries))
		touched := make(map[GraphID]*graphState)
		for _, en := range t.entries {
			gs := sh.lookup(en.id)
			if gs == nil {
				en.fut.resolve(-1, nil, fmt.Errorf("service: graph %q: %w", en.id, ErrNoGraph))
				continue
			}
			v, err := gs.dd.Apply(en.upd)
			if err != nil {
				sh.rejected.Add(1)
			} else {
				sh.updates.Add(1)
				touched[en.id] = gs
			}
			resolutions = append(resolutions, resolution{fut: en.fut, vertex: v, gs: gs, err: err})
		}
		for id, gs := range touched {
			sh.publish(id, gs)
		}
		for _, r := range resolutions {
			r.fut.resolve(r.vertex, r.gs.snap.Load(), r.err)
		}
	}
}

// publish freezes gs's current state into a new immutable snapshot and
// installs it. Both the graph (a persistent copy-on-write version) and the
// tree (persistent; ReuseTree off) are shared zero-copy, so publication is
// O(1): a pointer grab per structure plus one small Snapshot allocation,
// with no per-vertex or per-edge work regardless of graph size.
func (sh *shard) publish(id GraphID, gs *graphState) *Snapshot {
	dd := gs.dd
	snap := &Snapshot{
		ID:          id,
		Version:     uint64(dd.Updates()),
		Graph:       dd.Frozen(),
		Tree:        dd.Tree(),
		PseudoRoot:  dd.PseudoRoot(),
		LastStats:   dd.LastStats(),
		QueryStats:  dd.QueryStats(),
		PublishedAt: time.Now(),
	}
	gs.snap.Store(snap)
	return snap
}

// queryHandle resolves snap's version-pinned analytics handle through the
// shard's index cache (shared by all readers of that version).
func (sh *shard) queryHandle(snap *Snapshot) *snapquery.Handle {
	return sh.qcache.Handle(
		snapquery.Key{Graph: string(snap.ID), Version: snap.Version},
		snap.Graph, snap.Tree, snap.PseudoRoot)
}
