package service

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestSentinelErrors(t *testing.T) {
	s := New(Config{Shards: 2})
	g := graph.GnpConnected(10, 0.3, rand.New(rand.NewSource(1)))
	mustCreate(t, s, "g", g)

	if _, err := s.CreateGraph("g", g); !errors.Is(err, ErrGraphExists) {
		t.Fatalf("duplicate create = %v, want ErrGraphExists", err)
	}
	if _, err := s.Snapshot("missing"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("Snapshot(missing) = %v, want ErrUnknownGraph", err)
	}
	if err := s.DropGraph("missing"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("DropGraph(missing) = %v, want ErrUnknownGraph", err)
	}
	if _, err := s.Query("missing"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("Query(missing) = %v, want ErrUnknownGraph", err)
	}
	if err := s.CheckSynced("missing"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("CheckSynced(missing) = %v, want ErrUnknownGraph", err)
	}
	if fut, err := s.Apply("missing", core.Update{Kind: core.InsertEdge, U: 0, V: 1}); err == nil {
		if _, _, err := fut.Wait(); !errors.Is(err, ErrUnknownGraph) {
			t.Fatalf("Apply(missing) resolved %v, want ErrUnknownGraph", err)
		}
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := s.Apply("g", core.Update{Kind: core.InsertEdge, U: 0, V: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
	if _, err := s.CreateGraph("g2", g); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateGraph after Close = %v, want ErrClosed", err)
	}
	futs, err := s.ApplyBatch([]BatchItem{{Graph: "g", Update: core.Update{Kind: core.InsertEdge, U: 0, V: 1}}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ApplyBatch after Close = %v, want ErrClosed", err)
	}
	for _, f := range futs {
		if _, _, err := f.Wait(); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close batch future = %v, want ErrClosed", err)
		}
	}
	// Reads survive shutdown.
	if _, err := s.Snapshot("g"); err != nil {
		t.Fatalf("read after Close failed: %v", err)
	}
}

// TestCloseContextDeadline wedges a shard loop behind a stuck update and
// checks that a deadline-bounded shutdown reports the undrained shard with
// its queue depth instead of hanging.
func TestCloseContextDeadline(t *testing.T) {
	s := New(Config{Shards: 2, MailboxDepth: 16})
	g := graph.GnpConnected(10, 0.3, rand.New(rand.NewSource(2)))
	mustCreate(t, s, "g", g)
	sh := s.shardFor("g")

	// Wedge the shard: a task that blocks until released, then queue real
	// updates behind it.
	release := make(chan struct{})
	wedged := newFuture()
	if err := sh.submit(task{kind: taskFunc, fn: func() { <-release }, fut: wedged}); err != nil {
		t.Fatal(err)
	}
	var queued []*Future
	for i := 0; i < 3; i++ {
		fut, err := s.Apply("g", core.Update{Kind: core.InsertVertex, Neighbors: []int{0}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, fut)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.CloseContext(ctx)
	var se *ShutdownError
	if !errors.As(err, &se) {
		t.Fatalf("CloseContext = %v, want *ShutdownError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ShutdownError does not unwrap the deadline: %v", err)
	}
	found := false
	for _, u := range se.Undrained {
		if u.Shard == sh.idx {
			found = true
			if u.QueueDepth < 3 {
				t.Fatalf("wedged shard reports depth %d, want >= 3", u.QueueDepth)
			}
		}
	}
	if !found {
		t.Fatalf("wedged shard %d missing from %+v", sh.idx, se.Undrained)
	}

	// Shutdown kept its promise: the backlog still drains once unwedged,
	// and every queued future resolves.
	close(release)
	if _, _, err := wedged.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, f := range queued {
		if _, _, err := f.Wait(); err != nil {
			t.Fatalf("queued update lost by bounded shutdown: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !sh.stopped.Load() {
		if time.Now().After(deadline) {
			t.Fatal("shard goroutine never exited after unwedging")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseContextClean(t *testing.T) {
	s := New(Config{Shards: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.CloseContext(ctx); err != nil {
		t.Fatalf("clean CloseContext = %v", err)
	}
	if err := s.CloseContext(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("second CloseContext = %v, want ErrClosed", err)
	}
}
