package service

import (
	"fmt"
	"time"

	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/reroot"
	"repro/internal/tree"
	"repro/internal/verify"
)

// Snapshot is one graph's state frozen at an update boundary. All fields
// are immutable: the Tree is the maintainer's persistent per-update tree,
// the Graph the maintainer's persistent adjacency version — both shared
// with the maintainer zero-copy, so publication costs O(1) rather than a
// deep clone. A Snapshot stays valid forever — readers may retain it across
// any number of later updates (they will simply be reading an old version;
// later updates path-copy away from it without ever writing into it).
//
// Graph exposes the read API of graph.Adjacency (IsVertex, HasEdge, Degree,
// Neighbors, Edges, Snapshot() CSR, ...); drivers that want a private
// mutable mirror call Graph.Mutable().
type Snapshot struct {
	ID         GraphID
	Version    uint64 // updates applied to the graph when published
	Graph      *graph.Persistent
	Tree       *tree.Tree
	PseudoRoot int

	// Delta describes how this version's tree differs from the previously
	// published version's, when the maintainer could bound it: the analytics
	// engine uses it to patch the parent version's derived indexes instead
	// of rebuilding them. Nil on a graph's first snapshot and whenever the
	// chain broke — a rejected update in between (whose partial effects are
	// untracked), a pseudo-root relocation, or any other full renumbering.
	Delta *Delta

	// LastStats is the rerooting behaviour of the update that produced this
	// snapshot; QueryStats the D-query search effort accumulated over the
	// graph's whole lifetime (per-call accumulators rolled up per update).
	LastStats  reroot.Stats
	QueryStats dstruct.Stats

	PublishedAt time.Time
}

// Delta is the tree difference between a snapshot and its parent (the
// previously published version of the same graph), composed from the core
// maintainer's per-update deltas — a batch round publishes once, so one
// snapshot delta may span several updates. All fields are immutable.
type Delta struct {
	// Parent is the parent snapshot's version number and ParentTree its tree
	// object: consumers must verify tree identity before patching, so a
	// version-number collision across graph incarnations can never alias.
	Parent     uint64
	ParentTree *tree.Tree
	// Moved lists the vertices whose root path changed between the two
	// trees, Removed the vertices deleted; both sorted ascending, deduped.
	Moved   []int
	Removed []int
	// SameTree reports that the two snapshots share the identical tree
	// object (only back edges changed).
	SameTree bool
}

// IsAncestor reports whether a is an ancestor of v (not necessarily proper)
// in the snapshot's DFS tree.
func (s *Snapshot) IsAncestor(a, v int) (bool, error) {
	if !s.Tree.Present(a) || !s.Tree.Present(v) {
		return false, fmt.Errorf("service: IsAncestor(%d,%d): not vertices of %q@%d", a, v, s.ID, s.Version)
	}
	return s.Tree.IsAncestor(a, v), nil
}

// Path returns the tree path from down up to ancestor up, inclusive.
func (s *Snapshot) Path(down, up int) ([]int, error) {
	if !s.Tree.Present(down) || !s.Tree.Present(up) {
		return nil, fmt.Errorf("service: Path(%d,%d): not vertices of %q@%d", down, up, s.ID, s.Version)
	}
	if !s.Tree.IsAncestor(up, down) {
		return nil, fmt.Errorf("service: Path(%d,%d): %d is not an ancestor of %d", down, up, up, down)
	}
	return s.Tree.PathUp(down, up), nil
}

// Verify checks that the snapshot's tree is a DFS tree of its graph.
func (s *Snapshot) Verify() error {
	return verify.DFSForest(s.Graph, s.Tree, s.PseudoRoot)
}

// Future is the pending result of an asynchronous update submission. It is
// resolved exactly once by the owning shard's update loop.
type Future struct {
	done   chan struct{}
	vertex int
	snap   *Snapshot
	err    error
}

func newFuture() *Future {
	return &Future{done: make(chan struct{}), vertex: -1}
}

func (f *Future) resolve(vertex int, snap *Snapshot, err error) {
	f.vertex, f.snap, f.err = vertex, snap, err
	close(f.done)
}

// Done is closed when the update has been applied (or rejected).
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until resolution and returns the inserted vertex ID (-1 for
// non-InsertVertex updates), the first published snapshot that includes the
// update, and the update's error. On error the snapshot is the graph's
// state as of the rejection (nil if the graph does not exist).
func (f *Future) Wait() (int, *Snapshot, error) {
	<-f.done
	return f.vertex, f.snap, f.err
}
