package service

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// TenantMetrics is one graph's cumulative cost attribution: everything the
// service has spent on the tenant since its meter was created (graph
// creation, or service open for a recovered graph). Replayed records are
// not metered — the counters describe traffic served, not history redone.
type TenantMetrics struct {
	Graph   string `json:"graph"`
	Shard   int    `json:"shard"`
	Version uint64 `json:"version"` // latest published snapshot version
	obs.TenantCounters
}

// TenantMetrics samples id's cost counters. Lock-free reads only: it never
// touches the shard's update loop.
func (s *Service) TenantMetrics(id GraphID) (TenantMetrics, error) {
	sh, gs := s.lookupState(id)
	if gs == nil {
		return TenantMetrics{}, fmt.Errorf("service: graph %q: %w", id, ErrUnknownGraph)
	}
	return tenantMetrics(string(id), sh, gs), nil
}

func tenantMetrics(id string, sh *shard, gs *graphState) TenantMetrics {
	tm := TenantMetrics{Graph: id, Shard: sh.idx, TenantCounters: gs.meter.Snapshot()}
	if snap := gs.snap.Load(); snap != nil {
		tm.Version = snap.Version
	}
	return tm
}

// HotGraph is one entry of the hottest-graphs ranking: the sketch's
// estimated cumulative apply cost (the ranking signal, with its bounded
// overestimation) plus the graph's exact meter sample.
type HotGraph struct {
	TenantMetrics
	// EstCost is the Space-Saving estimate of the graph's cumulative apply
	// nanoseconds; the true value lies within [EstCost-EstErr, EstCost].
	// Exact per-tenant counters are in the embedded TenantMetrics — the
	// estimate exists because the sketch also ranks graphs whose meters
	// this ranking never had to touch.
	EstCost uint64 `json:"est_cost_ns"`
	EstErr  uint64 `json:"est_err_ns"`
}

// HotGraphs returns the service's k most expensive graphs by cumulative
// apply cost, hottest first, by merging each shard's Space-Saving sketch.
// A migrated graph can appear in two shards' sketches — the destination is
// seeded with the source's estimate before the source entry is removed, and
// cost accrued before an old migration stays in the source's sketch until it
// ages out — so duplicates keep the largest estimate rather than summing,
// which would double-count the seed. Each entry carries the graph's exact
// meter sample, read from its current owning shard (the routing table, not
// the sketch's shard); entries whose graph was dropped after the sketch
// snapshot are omitted. This is the rebalancer's signal: a shard whose hot
// set is dominated by one tenant is a candidate for moving its cold tenants
// elsewhere.
func (s *Service) HotGraphs(k int) []HotGraph {
	if k <= 0 {
		return nil
	}
	best := map[string]obs.SpaceItem{}
	for _, sh := range s.shards {
		for _, it := range sh.hot.Snapshot() {
			if cur, ok := best[it.Key]; !ok || it.Count > cur.Count {
				best[it.Key] = it
			}
		}
	}
	items := make([]obs.SpaceItem, 0, len(best))
	for _, it := range best {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Count != items[j].Count {
			return items[i].Count > items[j].Count
		}
		return items[i].Key < items[j].Key
	})
	out := make([]HotGraph, 0, min(k, len(items)))
	for _, it := range items {
		if len(out) == k {
			break
		}
		sh, gs := s.lookupState(GraphID(it.Key))
		if gs == nil {
			continue // dropped since the sketch snapshot
		}
		out = append(out, HotGraph{
			TenantMetrics: tenantMetrics(it.Key, sh, gs),
			EstCost:       it.Count,
			EstErr:        it.Err,
		})
	}
	return out
}
