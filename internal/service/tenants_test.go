package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestTenantMetricsAttribution pins per-graph cost attribution end to end:
// update counts (applied and rejected) land on the right tenant, apply time
// accumulates, index builds performed by reader goroutines are charged to
// the graph that owns the index, and an unknown graph errors.
func TestTenantMetricsAttribution(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	mustCreate(t, s, "a", graph.Path(16))
	mustCreate(t, s, "b", graph.Path(16))

	apply := func(id GraphID, u core.Update) error {
		fut, err := s.Apply(id, u)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = fut.Wait()
		return err
	}
	for i := 0; i < 5; i++ {
		kind := core.InsertEdge
		if i%2 == 1 {
			kind = core.DeleteEdge
		}
		if err := apply("a", core.Update{Kind: kind, U: 0, V: 15}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		kind := core.InsertEdge
		if i%2 == 1 {
			kind = core.DeleteEdge
		}
		if err := apply("b", core.Update{Kind: kind, U: 2, V: 9}); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate insert is rejected by the maintainer — it must count
	// against "a" as rejected work, not applied.
	if err := apply("a", core.Update{Kind: core.InsertEdge, U: 0, V: 1}); err == nil {
		t.Fatal("duplicate edge insert was not rejected")
	}

	// Index work from the read path is charged to "a" only.
	h, err := s.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.LCA(0, 5); err != nil {
		t.Fatal(err)
	}

	ta, err := s.TenantMetrics("a")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.TenantMetrics("b")
	if err != nil {
		t.Fatal(err)
	}
	if ta.Applied != 5 || ta.Rejected != 1 {
		t.Fatalf("a: applied %d rejected %d, want 5/1", ta.Applied, ta.Rejected)
	}
	if tb.Applied != 3 || tb.Rejected != 0 {
		t.Fatalf("b: applied %d rejected %d, want 3/0", tb.Applied, tb.Rejected)
	}
	if ta.ApplyTime <= 0 {
		t.Fatalf("a: no apply time attributed: %v", ta.ApplyTime)
	}
	if ta.ApplyTime < ta.EngineTime || ta.ApplyTime < ta.DMaintTime {
		t.Fatalf("a: stage components exceed apply time: %+v", ta.TenantCounters)
	}
	if ta.IndexBuilds == 0 || ta.IndexTime <= 0 {
		t.Fatalf("a: index work not attributed: builds %d time %v", ta.IndexBuilds, ta.IndexTime)
	}
	if tb.IndexBuilds != 0 {
		t.Fatalf("b: charged %d index builds it never caused", tb.IndexBuilds)
	}
	if ta.Version == 0 {
		t.Fatal("a: version not reported")
	}
	if _, err := s.TenantMetrics("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph error = %v", err)
	}
}

// TestTenantWALByteAttribution: under durability, every tenant's WALBytes
// counts its own appended record frames, and the per-tenant bytes sum to
// the shard logs' total appended bytes exactly (the shard loop is the only
// appender, so the attribution deltas partition the total).
func TestTenantWALByteAttribution(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.WaitRecovered()
	ids := []GraphID{"wa", "wb", "wc"}
	for _, id := range ids {
		mustCreate(t, s, id, graph.Path(12))
	}
	for i, id := range ids {
		for j := 0; j <= i; j++ {
			kind := core.InsertEdge
			if j%2 == 1 {
				kind = core.DeleteEdge
			}
			fut, err := s.Apply(id, core.Update{Kind: kind, U: 0, V: 11})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := fut.Wait(); err != nil {
				t.Fatal(err)
			}
		}
	}
	var sum uint64
	for _, id := range ids {
		tm, err := s.TenantMetrics(id)
		if err != nil {
			t.Fatal(err)
		}
		if tm.WALBytes == 0 {
			t.Fatalf("%s: no WAL bytes attributed", id)
		}
		sum += tm.WALBytes
	}
	if total := s.Metrics().WALAppendBytes; sum != total {
		t.Fatalf("per-tenant WAL bytes sum %d != log total %d", sum, total)
	}
}

// TestWALRecoveryProgress pins the recovery gauges: a reopened directory
// reports the routed graph count, and done == total once recovery finishes.
func TestWALRecoveryProgress(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id := GraphID(fmt.Sprintf("rec%d", i))
		mustCreate(t, s, id, graph.Path(8))
		fut, err := s.Apply(id, core.Update{Kind: core.InsertEdge, U: 0, V: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.WaitRecovered()
	m := s2.Metrics()
	if m.WALRecoveryGraphsTotal != 3 {
		t.Fatalf("recovery graphs total = %d, want 3", m.WALRecoveryGraphsTotal)
	}
	if m.WALRecoveryGraphsDone != m.WALRecoveryGraphsTotal {
		t.Fatalf("recovery done %d != total %d after WaitRecovered",
			m.WALRecoveryGraphsDone, m.WALRecoveryGraphsTotal)
	}
	reg := s2.Obs().Snapshot()
	for _, key := range []string{"wal.recovery.graphs_total", "wal.recovery.graphs_done", "wal.recovery.replayed"} {
		if _, ok := reg[key]; !ok {
			t.Fatalf("registry missing %q", key)
		}
	}
}

// TestHotGraphsSkewedLoad drives a deliberately skewed multi-tenant load
// and checks the cost ranking: the tenant that received most of the work
// must top HotGraphs and the /debug/service/tenants endpoint, with its
// exact meter attached.
func TestHotGraphsSkewedLoad(t *testing.T) {
	s := New(Config{Shards: 2, HotTenants: 8})
	defer s.Close()
	rng := rand.New(rand.NewSource(31))
	hotG := graph.GnpConnected(256, 4.0/256, rng)
	mustCreate(t, s, "hot", hotG)
	for i := 0; i < 10; i++ {
		mustCreate(t, s, GraphID(fmt.Sprintf("cold%d", i)), graph.Path(6))
	}
	drive(t, s, "hot", hotG, rng, 60)
	for i := 0; i < 10; i++ {
		id := GraphID(fmt.Sprintf("cold%d", i))
		fut, err := s.Apply(id, core.Update{Kind: core.InsertEdge, U: 0, V: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	hg := s.HotGraphs(3)
	if len(hg) != 3 {
		t.Fatalf("HotGraphs(3) returned %d entries", len(hg))
	}
	if hg[0].Graph != "hot" {
		t.Fatalf("hottest graph = %q, want \"hot\" (ranking %+v)", hg[0].Graph, hg)
	}
	if hg[0].EstCost < hg[1].EstCost {
		t.Fatal("ranking not descending by estimated cost")
	}
	if hg[0].Applied != 60 {
		t.Fatalf("hot tenant's exact meter reports %d applied, want 60", hg[0].Applied)
	}
	// The sketch estimate brackets the exact meter: ApplyTime within
	// [EstCost-EstErr, EstCost].
	exact := uint64(hg[0].ApplyTime)
	if exact > hg[0].EstCost || exact < hg[0].EstCost-hg[0].EstErr {
		t.Fatalf("exact apply %d outside sketch bracket [%d, %d]",
			exact, hg[0].EstCost-hg[0].EstErr, hg[0].EstCost)
	}

	// The endpoint serves the same ranking.
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/service/tenants?k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Now time.Time `json:"now"`
		Hot []struct {
			Graph   string `json:"graph"`
			Applied uint64 `json:"applied"`
			EstCost uint64 `json:"est_cost_ns"`
		} `json:"hot"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Hot) != 3 || doc.Hot[0].Graph != "hot" || doc.Hot[0].Applied != 60 {
		t.Fatalf("/debug/service/tenants payload wrong: %+v", doc.Hot)
	}

	// Dropping the hot tenant frees its sketch slot and removes it from the
	// ranking.
	if err := s.DropGraph("hot"); err != nil {
		t.Fatal(err)
	}
	for _, h := range s.HotGraphs(16) {
		if h.Graph == "hot" {
			t.Fatal("dropped graph still ranked")
		}
	}
}

// TestSamplerLifecycle pins the sampler goroutine's lifecycle: it ticks
// while the service runs (points appear in the ring) and Close stops it —
// the done channel closes and the ring freezes.
func TestSamplerLifecycle(t *testing.T) {
	s := New(Config{Shards: 1, SampleInterval: time.Millisecond})
	if _, err := s.CreateGraph("g", graph.Path(4)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.shards[0].series.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no points in 2s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.samplerDone:
	default:
		t.Fatal("sampler goroutine still running after Close")
	}
	n := s.shards[0].series.Len()
	time.Sleep(5 * time.Millisecond)
	if got := s.shards[0].series.Len(); got != n {
		t.Fatalf("ring grew from %d to %d after Close", n, got)
	}
}

// TestHistoryEndpoint drives updates across two manually-cut windows and
// checks /debug/service/history: per-shard series, oldest-first points,
// and a positive update rate in the window that saw traffic.
func TestHistoryEndpoint(t *testing.T) {
	s := New(Config{Shards: 1, SampleInterval: time.Hour, SampleWindows: 16})
	defer s.Close()
	if _, err := s.CreateGraph("g", graph.Path(8)); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < 4; i++ {
		kind := core.InsertEdge
		if i%2 == 1 {
			kind = core.DeleteEdge
		}
		fut, err := s.Apply("g", core.Update{Kind: kind, U: 0, V: 7})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	s.sampleOnce(t0.Add(time.Second))
	s.sampleOnce(t0.Add(2 * time.Second))

	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/service/history")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var h History
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Windows != 16 || len(h.Shards) != 1 {
		t.Fatalf("history shape: windows %d shards %d", h.Windows, len(h.Shards))
	}
	pts := h.Shards[0].Points
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if !pts[0].At.Before(pts[1].At) {
		t.Fatal("points not oldest-first")
	}
	if pts[0].UpdatesPerSec <= 0 {
		t.Fatalf("first window rate = %v, want > 0 (4 updates landed in it)", pts[0].UpdatesPerSec)
	}
	if pts[1].UpdatesPerSec != 0 {
		t.Fatalf("quiet window rate = %v, want 0", pts[1].UpdatesPerSec)
	}
	if pts[0].ApplyP99 <= 0 {
		t.Fatalf("first window apply p99 = %v, want > 0", pts[0].ApplyP99)
	}
}

// TestObservabilityRaceSoak races every observability consumer at once
// (run under -race in CI): writers applying updates, the real sampler on a
// tight tick, two Metrics pollers, a Prometheus scraper, and tenants and
// history pollers. Pins that the pure-read surfaces never race the write
// path or each other.
func TestObservabilityRaceSoak(t *testing.T) {
	s := New(Config{Shards: 2, SampleInterval: time.Millisecond})
	defer s.Close()
	ids := []GraphID{"ra", "rb", "rc"}
	for i, id := range ids {
		rng := rand.New(rand.NewSource(int64(500 + i)))
		mustCreate(t, s, id, graph.GnpConnected(64, 3.0/64, rng))
	}
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	reader := func(f func()) {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		reader(func() {
			m := s.Metrics()
			for _, sm := range m.Shards {
				if sm.UpdatesPerSec < 0 {
					t.Errorf("negative rate %v", sm.UpdatesPerSec)
				}
			}
		})
	}
	scrape := func(path string) func() {
		return func() {
			res, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			res.Body.Close()
			if res.StatusCode != 200 {
				t.Errorf("%s: status %d", path, res.StatusCode)
			}
		}
	}
	reader(scrape("/debug/metrics"))
	reader(scrape("/debug/service/tenants"))
	reader(scrape("/debug/service/history"))
	reader(func() { s.HotGraphs(4) })

	var writers sync.WaitGroup
	for i, id := range ids {
		writers.Add(1)
		go func(id GraphID, seed int64) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(seed))
			for n := 0; n < 150; n++ {
				snap, err := s.Snapshot(id)
				if err != nil {
					t.Error(err)
					return
				}
				var u core.Update
				if e, ok := graph.RandomEdgeNotIn(snap.Graph, wrng); ok && n%2 == 0 {
					u = core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
				} else if e, ok := graph.RandomExistingEdge(snap.Graph, wrng); ok {
					u = core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
				} else {
					continue
				}
				fut, err := s.Apply(id, u)
				if err != nil {
					t.Error(err)
					return
				}
				fut.Wait() // rejections fine
			}
		}(id, int64(600+i))
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	// Attribution really happened under the soak.
	var applied uint64
	for _, id := range ids {
		tm, err := s.TenantMetrics(id)
		if err != nil {
			t.Fatal(err)
		}
		applied += tm.Applied + tm.Rejected
	}
	m := s.Metrics()
	if applied != m.Updates+m.Rejected {
		t.Fatalf("tenant update sum %d != service total %d", applied, m.Updates+m.Rejected)
	}
}
