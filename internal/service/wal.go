package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wal"
)

// errWALDir rejects a WALConfig without a directory.
var errWALDir = errors.New("service: WALConfig.Dir is required")

// WALConfig enables durability: every applied update is appended to its
// shard's write-ahead log and fsynced per Policy before the update's Future
// resolves, periodic checkpoints bound replay work, and Open recovers the
// directory's state after a crash. See the package documentation's
// Durability section for the full semantics.
type WALConfig struct {
	// Dir is the durability directory: per-shard logs (shard-NNNN.wal) and
	// per-graph checkpoints (ck-<hexid>-<seq>.ckpt). Required.
	Dir string
	// Policy selects when acknowledged updates are fsynced. The default,
	// wal.SyncBatch, issues one fsync per mailbox round (group commit).
	Policy wal.SyncPolicy
	// SyncInterval is the wal.SyncInterval period. Default 100ms.
	SyncInterval time.Duration
	// CheckpointEvery is the number of logged updates a shard accumulates
	// before it checkpoints its graphs and truncates its log. Default 4096.
	CheckpointEvery int
	// Injector, when non-nil, routes all WAL and checkpoint I/O through a
	// crash-injection hook (testing only).
	Injector *wal.Injector

	// holdRecovery, when non-nil, blocks every shard's recovery prologue
	// until the channel is closed — a test hook that holds the service in
	// degraded-reads mode deterministically.
	holdRecovery <-chan struct{}
}

func (c WALConfig) withDefaults() WALConfig {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 100 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 4096
	}
	return c
}

// shardWAL is one shard's durability state. The plain fields are touched
// only by Open (before the shard goroutine starts) and the shard goroutine;
// the atomics are sampled by Metrics and the read path.
type shardWAL struct {
	cfg      WALConfig
	log      *wal.Log
	since    int  // updates logged since the last checkpoint rotation
	hadInput bool // the directory held state for this shard at Open

	// holdReset defers log truncation: the inherited log file holds records
	// for graphs rerouted to other shards (the shard count changed), whose
	// checkpoints this shard does not write. Truncating before every shard
	// has re-checkpointed would lose those tails in a crash, so Reset waits
	// for the recovery barrier; barrier reports it passed cleanly.
	holdReset bool
	barrier   func() bool

	// Recovery backlog, prepared by Open and consumed by the shard
	// goroutine's prologue: per-graph Seq-sorted log records past each
	// graph's checkpoint, and the graph order to replay them in.
	backlog   map[GraphID][]wal.Record
	order     []GraphID
	done      func(ok bool) // recovery-completion callback into the Service
	graphDone func()        // per-graph recovery-progress callback (may be nil in tests)

	// recovering is true from Open until the prologue flips the shard from
	// degraded checkpoint snapshots to live replayed state.
	recovering atomic.Bool
	// broken holds the sticky write-path failure (error). Once set the
	// shard is fail-stopped: reads keep serving, every write is rejected,
	// so the log never acquires a hole after its first failure.
	broken      atomic.Value
	replayed    atomic.Uint64 // records replayed by recovery
	skipped     atomic.Uint64 // records already covered by a checkpoint
	checkpoints atomic.Uint64 // checkpoint files written

	appendHist obs.Histogram // per-record append latency
	syncHist   obs.Histogram // per-fsync latency
	replayHist obs.Histogram // per-record replay latency
}

func (w *shardWAL) err() error {
	if e, _ := w.broken.Load().(error); e != nil {
		return e
	}
	return nil
}

// fail records the first write-path error (later ones keep the original).
func (w *shardWAL) fail(err error) error {
	if w.err() == nil {
		w.broken.Store(err)
	}
	return err
}

// openWAL prepares recovery for every shard: load the newest valid
// checkpoint per graph, scan every log file in the directory (tolerating a
// torn final record), route each graph's surviving records to its current
// shard — the shard count may differ from the crashed run's — and publish
// each graph's checkpoint snapshot so reads are served (degraded) before
// the shard goroutines even start. Called by Open before the goroutines
// spawn, so no locking is needed.
func (s *Service) openWAL() error {
	wc := s.cfg.WAL.withDefaults()
	if wc.Dir == "" {
		return errWALDir
	}
	if err := os.MkdirAll(wc.Dir, 0o755); err != nil {
		return fmt.Errorf("service: wal dir: %w", err)
	}
	// One owner per directory: a second service appending to the same shard
	// logs would interleave sequences and truncate this one's records at
	// rotation. flock dies with the process, so kill -9 cannot wedge us.
	lock, err := wal.LockDir(wc.Dir)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	s.walLock = lock
	ckpts, err := wal.LoadCheckpoints(wc.Dir)
	if err != nil {
		return fmt.Errorf("service: recovery: %w", err)
	}
	// Install the durable routing table before the scan below routes any
	// graph: a migration that committed (route record fsynced) before the
	// crash must place its graph on the destination shard, and one that did
	// not must fall back to the previous route or the hash default.
	rlog, routeRecs, err := wal.OpenRoutes(wc.Dir)
	if err != nil {
		return fmt.Errorf("service: recovery: %w", err)
	}
	s.routeLog = rlog
	if err := s.loadRoutes(routeRecs, ckpts); err != nil {
		return fmt.Errorf("service: recovery: %w", err)
	}
	for _, sh := range s.shards {
		sh.w = &shardWAL{
			cfg:       wc,
			backlog:   map[GraphID][]wal.Record{},
			done:      s.recoveryDone,
			graphDone: func() { s.recGraphsDone.Add(1) },
			barrier:   s.recoveredClean,
		}
		sh.w.recovering.Store(true)
	}

	// Scan every log file present — including files left by a run with a
	// different shard count — and group the records per graph, remembering
	// per file which graphs it held and where a torn tail began.
	entries, err := os.ReadDir(wc.Dir)
	if err != nil {
		return fmt.Errorf("service: recovery: %w", err)
	}
	type logScan struct {
		graphs map[string]bool
		torn   bool
		tornAt int
	}
	perGraph := map[string][]wal.Record{}
	scans := map[string]*logScan{}
	var logFiles []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		if e.Name() == wal.RoutesFile {
			// The route log is not an update log: it has its own framing and
			// its own lifecycle (loadRoutes compacted it above). Without this
			// skip it would be read as a shard log and — owned by no shard —
			// deleted as stale after recovery.
			continue
		}
		path := filepath.Join(wc.Dir, e.Name())
		res, err := wal.ReadLogFile(path)
		if err != nil {
			return fmt.Errorf("service: recovery: %w", err)
		}
		sc := &logScan{graphs: map[string]bool{}}
		if !res.Clean {
			// A torn tail is the expected shape of a crash mid-append; the
			// CRC-checked prefix before it is intact and replayable. Only
			// unacknowledged updates can live past the tear.
			sc.torn, sc.tornAt = true, res.Torn
			s.walTorn++
		}
		for _, r := range res.Records {
			perGraph[r.Graph] = append(perGraph[r.Graph], r)
			sc.graphs[r.Graph] = true
		}
		scans[path] = sc
		logFiles = append(logFiles, path)
	}

	// A graph exists iff its checkpoint does (creation writes one before
	// acknowledging). Route each checkpointed graph to its current shard
	// with its Seq-sorted record backlog and publish its degraded snapshot.
	ids := make([]string, 0, len(ckpts))
	for id := range ckpts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	now := time.Now()
	for _, id := range ids {
		c := ckpts[id]
		gid := GraphID(id)
		sh := s.shardFor(gid)
		recs := perGraph[id]
		delete(perGraph, id)
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
		gs := &graphState{meter: &obs.TenantMeter{}}
		gs.snap.Store(&Snapshot{
			ID:          gid,
			Version:     c.Seq,
			Graph:       c.Graph,
			Tree:        c.Tree,
			PseudoRoot:  c.Pseudo,
			PublishedAt: now,
		})
		sh.graphs[gid] = gs
		sh.w.backlog[gid] = recs
		sh.w.order = append(sh.w.order, gid)
	}
	s.recGraphsTotal.Store(int64(len(ids)))
	// Records without a checkpoint belong to dropped graphs (a crash can
	// land between checkpoint deletion and log rotation): count and skip.
	for _, recs := range perGraph {
		s.walOrphans += len(recs)
	}

	// Open each shard's own log, appending to the previous run's file when
	// the shard count is unchanged; files owned by no current shard are
	// deleted once every shard has recovered and re-checkpointed.
	own := map[string]bool{}
	for i, sh := range s.shards {
		path := filepath.Join(wc.Dir, fmt.Sprintf("shard-%04d.wal", i))
		own[path] = true
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			sh.w.hadInput = true
		}
		if len(sh.w.order) > 0 {
			sh.w.hadInput = true
		}
		if sc := scans[path]; sc != nil {
			if sc.torn {
				// Drop the torn bytes before reopening for append: O_APPEND
				// would otherwise write acknowledged records after an
				// undecodable frame, hiding them from the next recovery's
				// prefix scan. The dropped bytes were never acknowledged.
				if err := os.Truncate(path, int64(sc.tornAt)); err != nil {
					return fmt.Errorf("service: recovery: %w", err)
				}
			}
			// An inherited file can hold the log tail of live graphs now
			// routed to other shards; this shard's own re-checkpoint does
			// not cover them, so its log must survive until the barrier.
			for gid := range sc.graphs {
				if ckpts[gid] != nil && s.shardFor(GraphID(gid)) != sh {
					sh.w.holdReset = true
					break
				}
			}
		}
		lg, err := wal.OpenLog(path, wal.Options{
			Policy:     wc.Policy,
			Interval:   wc.SyncInterval,
			Injector:   wc.Injector,
			AppendHist: &sh.w.appendHist,
			SyncHist:   &sh.w.syncHist,
		})
		if err != nil {
			return err
		}
		sh.w.log = lg
	}
	for _, p := range logFiles {
		if !own[p] {
			s.walStale = append(s.walStale, p)
		}
	}
	s.walOK.Store(true)
	s.walPending.Store(int32(len(s.shards)))
	return nil
}

// recoveryDone is each shard's recovery-completion callback. The last
// shard deletes the stale old-epoch log files — only when every shard
// recovered and re-checkpointed cleanly — and unblocks WaitRecovered.
func (s *Service) recoveryDone(ok bool) {
	if !ok {
		s.walOK.Store(false)
	}
	if s.walPending.Add(-1) == 0 {
		if s.walOK.Load() {
			// Best-effort: a crash here leaves files whose records the next
			// recovery re-reads and skips (all covered by checkpoints).
			for _, p := range s.walStale {
				os.Remove(p)
			}
		}
		close(s.recovered)
	}
}

// recoveredClean reports that the recovery barrier has passed cleanly:
// every shard finished its prologue and re-checkpointed. Only after this
// point does an inherited log file hold no unique state, making it safe to
// truncate at the owning shard's next rotation.
func (s *Service) recoveredClean() bool {
	select {
	case <-s.recovered:
		return s.walOK.Load()
	default:
		return false
	}
}

// Recovering reports whether any shard is still in degraded-reads mode:
// serving its graphs' checkpoint snapshots while the log tail replays.
// Queued writes are applied after the flip, in submission order.
func (s *Service) Recovering() bool {
	for _, sh := range s.shards {
		if sh.w != nil && sh.w.recovering.Load() {
			return true
		}
	}
	return false
}

// WaitRecovered blocks until every shard has left degraded-reads mode (it
// returns immediately when durability is disabled). A shard whose recovery
// failed still counts as done: it serves its checkpointed prefix and
// rejects writes with the recovery error.
func (s *Service) WaitRecovered() { <-s.recovered }

// walGate returns the shard's sticky WAL failure wrapped for callers, or
// nil when writes may proceed.
func (sh *shard) walGate() error {
	if sh.w == nil {
		return nil
	}
	if err := sh.w.err(); err != nil {
		return fmt.Errorf("service: shard %d fail-stopped: %w", sh.idx, err)
	}
	return nil
}

// walAppend logs one just-applied update. Seq is the maintainer's update
// count after applying it, making each graph's sequence contiguous from 1.
func (sh *shard) walAppend(id GraphID, gs *graphState, u core.Update) error {
	rec := wal.Record{Graph: string(id), Seq: uint64(gs.dd.Updates()), Update: u}
	// The shard loop is the log's only appender, so the Stats delta around
	// this append is exactly this record's framed size — attribute it.
	before := sh.w.log.Stats().AppendBytes
	if err := sh.w.log.Append(&rec); err != nil {
		return sh.w.fail(err)
	}
	gs.meter.WALBytes.Add(sh.w.log.Stats().AppendBytes - before)
	return nil
}

// walRoundEnd accounts a committed round's updates toward the checkpoint
// cadence and rotates (checkpoint every graph + truncate the log) when due.
// Called after the round's futures resolve: a checkpoint failure
// fail-stops the shard but cannot retract already-durable acknowledgments.
func (sh *shard) walRoundEnd(applied int) {
	w := sh.w
	w.since += applied
	if w.since >= w.cfg.CheckpointEvery && w.err() == nil {
		if err := sh.checkpointShard(); err != nil {
			w.fail(err)
		}
	}
}

// checkpointShard durably checkpoints every graph on the shard, then
// truncates the log — every record is now covered by a checkpoint. Runs on
// the shard goroutine at a publish boundary, so each maintainer's state is
// exactly its published snapshot.
func (sh *shard) checkpointShard() error {
	w := sh.w
	sh.mu.RLock()
	ids := make([]GraphID, 0, len(sh.graphs))
	for id := range sh.graphs {
		ids = append(ids, id)
	}
	sh.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		gs := sh.lookup(id)
		c := &wal.Checkpoint{
			ID:     string(id),
			Seq:    uint64(gs.dd.Updates()),
			Pseudo: gs.dd.PseudoRoot(),
			Graph:  gs.dd.Frozen(),
			Tree:   gs.dd.Tree(),
		}
		if err := wal.WriteCheckpoint(w.cfg.Dir, c, w.cfg.Injector); err != nil {
			return err
		}
		w.checkpoints.Add(1)
	}
	if w.holdReset {
		if !w.barrier() {
			// The inherited log still holds the only durable copy of some
			// rerouted graphs' tails, and their new owners may not have
			// re-checkpointed yet: keep the file. Replay skips records the
			// checkpoints above cover, so deferring costs only log bytes.
			w.since = 0
			return nil
		}
		w.holdReset = false
	}
	if err := w.log.Reset(); err != nil {
		return err
	}
	w.since = 0
	return nil
}

// recoverReplay is the shard goroutine's prologue under WAL: for each
// recovered graph it rebuilds the maintainer from the already-published
// checkpoint snapshot (the query structure D is reconstructed fresh; the
// tree and graph are restored verbatim), replays the graph's log tail
// through the normal apply path, and atomically flips the published
// snapshot from the degraded checkpoint to the live replayed state. Reads
// are served throughout; writes queue in the mailbox until the prologue
// returns.
func (sh *shard) recoverReplay() {
	w := sh.w
	if w.cfg.holdRecovery != nil {
		<-w.cfg.holdRecovery
	}
	ok := true
	for _, id := range w.order {
		gs := sh.lookup(id)
		snap := gs.snap.Load()
		// Keep the shared machine's model processor budget at the paper's
		// per-instance maximum, as taskCreate does.
		if p := 2*snap.Graph.NumEdges() + snap.Graph.NumVertexSlots() + 1; p > sh.mach.Procs() {
			sh.mach.SetProcs(p)
		}
		gs.dd = core.NewDynamicRestored(snap.Graph, snap.Tree, snap.PseudoRoot, int(snap.Version), core.Options{Machine: sh.mach})
		for _, rec := range w.backlog[id] {
			have := uint64(gs.dd.Updates())
			if rec.Seq <= have {
				// Covered by the checkpoint (or duplicated across a
				// rotation crash): already part of the restored state.
				w.skipped.Add(1)
				continue
			}
			if rec.Seq != have+1 {
				w.fail(fmt.Errorf("service: graph %q: replay gap after seq %d (next record %d): %w", id, have, rec.Seq, wal.ErrCorrupt))
				ok = false
				break
			}
			t0 := time.Now()
			if _, err := gs.dd.Apply(rec.Update); err != nil {
				// Every logged update was accepted before the crash, so a
				// rejection on replay means divergence: fail loudly and
				// keep serving the intact prefix read-only.
				w.fail(fmt.Errorf("service: graph %q: replay of seq %d diverged: %v", id, rec.Seq, err))
				ok = false
				break
			}
			w.replayHist.Record(time.Since(t0))
			w.replayed.Add(1)
			gs.absorb(gs.dd.LastDelta())
		}
		if gs.pendCount > 0 {
			sh.publish(id, gs)
		}
		if !ok {
			break
		}
		if w.graphDone != nil {
			w.graphDone()
		}
	}
	if ok && w.hadInput {
		// Fold the replayed tail into fresh checkpoints and truncate the
		// log so the next restart replays nothing.
		if err := sh.checkpointShard(); err != nil {
			w.fail(err)
			ok = false
		}
	}
	w.backlog, w.order = nil, nil
	w.recovering.Store(false)
	w.done(ok)
}
