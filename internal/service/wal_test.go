package service

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wal"
)

// edgeSet flattens a snapshot's graph into a canonical (u<v) edge set.
func edgeSet(g *graph.Persistent) map[[2]int]bool {
	out := map[[2]int]bool{}
	csr := g.Snapshot()
	for v := 0; v < g.NumVertexSlots(); v++ {
		for _, w := range csr.Dst[csr.Off[v]:csr.Off[v+1]] {
			if v < w {
				out[[2]int{v, w}] = true
			}
		}
	}
	return out
}

func sameEdges(a, b map[[2]int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for e := range a {
		if !b[e] {
			return false
		}
	}
	return true
}

// randUpdate proposes one update against the mirror maintainer's current
// graph; the same proposal is applied to both the service and the mirror.
func randUpdate(mir *core.DynamicDFS, rng *rand.Rand) core.Update {
	g := mir.Frozen()
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		if e, ok := graph.RandomEdgeNotIn(g, rng); ok {
			return core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}
		}
	case 4, 5, 6:
		if e, ok := graph.RandomExistingEdge(g, rng); ok {
			return core.Update{Kind: core.DeleteEdge, U: e.U, V: e.V}
		}
	case 7:
		var alive []int
		for v := 0; v < g.NumVertexSlots(); v++ {
			if g.IsVertex(v) {
				alive = append(alive, v)
			}
		}
		if len(alive) > 4 {
			return core.Update{Kind: core.DeleteVertex, U: alive[rng.Intn(len(alive))]}
		}
	default:
		var nbrs []int
		for v := 0; v < g.NumVertexSlots() && len(nbrs) < 3; v++ {
			if g.IsVertex(v) && rng.Intn(2) == 0 {
				nbrs = append(nbrs, v)
			}
		}
		if len(nbrs) > 0 {
			return core.Update{Kind: core.InsertVertex, Neighbors: nbrs}
		}
	}
	return core.Update{Kind: core.InsertEdge, U: 0, V: 1 + rng.Intn(3)}
}

// verifyRecovered cross-checks one recovered graph against its mirror:
// version, edge set, DFS validity, and the maintainer-side sync oracle.
func verifyRecovered(t *testing.T, s *Service, id GraphID, mir *core.DynamicDFS, acked uint64) {
	t.Helper()
	snap, err := s.Snapshot(id)
	if err != nil {
		t.Fatalf("graph %q not recovered: %v", id, err)
	}
	if snap.Version != acked {
		t.Fatalf("graph %q recovered at version %d, want %d", id, snap.Version, acked)
	}
	if !sameEdges(edgeSet(snap.Graph), edgeSet(mir.Frozen())) {
		t.Fatalf("graph %q edge set diverged from durably-acked state", id)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("graph %q recovered tree invalid: %v", id, err)
	}
	if err := s.CheckSynced(id); err != nil {
		t.Fatalf("graph %q recovered D out of sync: %v", id, err)
	}
}

func TestWALDurableRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Shards: 3, WAL: &WALConfig{Dir: dir}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const graphs = 5
	mirrors := map[GraphID]*core.DynamicDFS{}
	acked := map[GraphID]uint64{}
	for i := 0; i < graphs; i++ {
		id := GraphID(fmt.Sprintf("g%d", i))
		g := graph.GnpConnected(40+i*7, 3.5/40, rng)
		mustCreate(t, s, id, g)
		mirrors[id] = core.New(g, core.Options{RebuildD: true, Headroom: 64})
	}
	for step := 0; step < 200; step++ {
		id := GraphID(fmt.Sprintf("g%d", rng.Intn(graphs)))
		mir := mirrors[id]
		u := randUpdate(mir, rng)
		fut, err := s.Apply(id, u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			continue // rejected: not logged, not mirrored
		}
		if _, err := mir.Apply(u); err != nil {
			t.Fatalf("mirror rejected an update the service accepted: %v", err)
		}
		acked[id]++
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer r.Close()
	r.WaitRecovered()
	if r.Recovering() {
		t.Fatal("still recovering after WaitRecovered")
	}
	for id, mir := range mirrors {
		verifyRecovered(t, r, id, mir, acked[id])
	}
	m := r.Metrics()
	if !m.WALEnabled || m.WALReplayed+m.WALSkipped == 0 {
		t.Fatalf("recovery metrics look dead: %+v", m.WALReplayed)
	}
	// The recovered service keeps accepting updates.
	id := GraphID("g0")
	u := randUpdate(mirrors[id], rng)
	fut, err := r.Apply(id, u)
	if err != nil {
		t.Fatal(err)
	}
	if _, snap, err := fut.Wait(); err == nil && snap.Version != acked[id]+1 {
		t.Fatalf("post-recovery version %d, want %d", snap.Version, acked[id]+1)
	}
}

func TestWALCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	cfg := Config{Shards: 1, WAL: &WALConfig{Dir: dir, CheckpointEvery: 8}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(30, 4.0/30, rng)
	mustCreate(t, s, "g", g)
	mir := core.New(g, core.Options{RebuildD: true, Headroom: 64})
	var acked uint64
	for step := 0; step < 60; step++ {
		u := randUpdate(mir, rng)
		fut, err := s.Apply("g", u)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fut.Wait(); err != nil {
			continue
		}
		mir.Apply(u)
		acked++
	}
	m := s.Metrics()
	if m.WALCheckpoints < 3 {
		t.Fatalf("only %d checkpoints after 60 updates at CheckpointEvery=8", m.WALCheckpoints)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Rotation bounds the replay tail to under one checkpoint interval.
	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.WaitRecovered()
	if got := r.Metrics().WALReplayed; got >= 8 {
		t.Fatalf("replayed %d records, rotation should bound it below 8", got)
	}
	verifyRecovered(t, r, "g", mir, acked)
}

func TestWALDegradedReads(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	cfg := Config{Shards: 1, WAL: &WALConfig{Dir: dir, CheckpointEvery: 1 << 20}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(30, 4.0/30, rng)
	mustCreate(t, s, "g", g)
	mir := core.New(g, core.Options{RebuildD: true, Headroom: 64})
	var acked uint64
	for step := 0; step < 30; step++ {
		u := randUpdate(mir, rng)
		fut, _ := s.Apply("g", u)
		if _, _, err := fut.Wait(); err != nil {
			continue
		}
		mir.Apply(u)
		acked++
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with recovery held: the service must serve the checkpointed
	// snapshot (version 0 — only the create wrote a checkpoint) while the
	// log tail waits to replay, and queue writes behind the prologue.
	hold := make(chan struct{})
	cfg2 := cfg
	cfg2.WAL = &WALConfig{Dir: dir, holdRecovery: hold}
	r, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Recovering() {
		t.Fatal("not in degraded mode while recovery is held")
	}
	snap, err := r.Snapshot("g")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if snap.Version != 0 {
		t.Fatalf("degraded snapshot at version %d, want checkpointed 0", snap.Version)
	}
	if err := snap.Verify(); err != nil {
		t.Fatalf("degraded snapshot invalid: %v", err)
	}
	u := randUpdate(mir, rng)
	fut, err := r.Apply("g", u)
	if err != nil {
		t.Fatalf("write submission during recovery: %v", err)
	}
	select {
	case <-fut.Done():
		t.Fatal("write resolved while recovery was held")
	case <-time.After(30 * time.Millisecond):
	}
	close(hold)
	r.WaitRecovered()
	if r.Recovering() {
		t.Fatal("recovering after flip")
	}
	if _, _, err := fut.Wait(); err == nil {
		mir.Apply(u)
		acked++
	}
	verifyRecovered(t, r, "g", mir, acked)
	if got := r.Metrics().WALReplayed; got == 0 {
		t.Fatal("no records replayed despite unrotated log tail")
	}
}

// TestWALCrashInjection is the crash matrix: fail the Nth WAL/checkpoint
// I/O in each mode, then recover from the surviving directory and require
// the recovered state to be exactly the durably-acknowledged prefix.
func TestWALCrashInjection(t *testing.T) {
	modes := []struct {
		name string
		mode wal.InjectMode
	}{
		{"failwrite", wal.InjectFailWrite},
		{"shortwrite", wal.InjectShortWrite},
		{"failsync", wal.InjectFailSync},
	}
	for _, mc := range modes {
		for _, failAt := range []int{1, 2, 3, 5, 9, 17, 33} {
			t.Run(fmt.Sprintf("%s/op%d", mc.name, failAt), func(t *testing.T) {
				dir := t.TempDir()
				rng := rand.New(rand.NewSource(int64(failAt)))
				inj := &wal.Injector{FailAt: failAt, Mode: mc.mode}
				s, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir, CheckpointEvery: 16, Injector: inj}})
				if err != nil {
					t.Fatal(err)
				}
				g := graph.GnpConnected(24, 4.0/24, rng)
				created := false
				if _, err := s.CreateGraph("g", g); err == nil {
					created = true
				}
				mir := core.New(g, core.Options{RebuildD: true, Headroom: 64})
				var acked uint64
				var inFlight *core.Update // the update whose ack the failure ate
				if created {
					for step := 0; step < 80; step++ {
						u := randUpdate(mir, rng)
						fut, err := s.Apply("g", u)
						if err != nil {
							break
						}
						_, _, err = fut.Wait()
						if err != nil {
							if errors.Is(err, wal.ErrInjected) || errors.Is(err, wal.ErrLogFailed) {
								// Fail-stopped: nothing later can be acked. The
								// failing update itself may or may not have
								// reached the file (a failed fsync loses only
								// the durability confirmation, not the bytes).
								inFlight = &u
								break
							}
							continue // ordinary rejection: not logged
						}
						mir.Apply(u)
						acked++
					}
					// Reads survive the failure; writes stay rejected.
					if inj.Tripped() {
						if _, err := s.Snapshot("g"); err != nil {
							t.Fatalf("reads died after fail-stop: %v", err)
						}
						if fut, err := s.Apply("g", core.Update{Kind: core.InsertEdge, U: 0, V: 1}); err == nil {
							if _, _, err := fut.Wait(); err == nil {
								t.Fatal("write accepted after fail-stop")
							}
						}
					}
				}
				s.Close()

				// Recover on pristine media.
				r, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir}})
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				defer r.Close()
				r.WaitRecovered()
				if !created {
					if _, err := r.Snapshot("g"); !errors.Is(err, ErrUnknownGraph) {
						t.Fatalf("unacknowledged graph resurrected: %v", err)
					}
					return
				}
				// Every acked update must survive; the one in-flight update
				// may additionally survive if its bytes reached the file
				// before the injected failure (fsync failures lose the
				// confirmation, not the write). Anything else is corruption.
				snap, err := r.Snapshot("g")
				if err != nil {
					t.Fatal(err)
				}
				want := acked
				if snap.Version == acked+1 && inFlight != nil {
					if _, err := mir.Apply(*inFlight); err != nil {
						t.Fatalf("mirror rejected the in-flight update: %v", err)
					}
					want = acked + 1
				}
				verifyRecovered(t, r, "g", mir, want)
				// And the recovered service is writable again.
				fut, err := r.Apply("g", randUpdate(mir, rng))
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := fut.Wait(); err != nil && !errors.Is(err, nil) {
					// rejection is fine; a WAL error is not
					if errors.Is(err, wal.ErrLogFailed) {
						t.Fatalf("recovered service still fail-stopped: %v", err)
					}
				}
			})
		}
	}
}

func TestWALDropCreateIncarnation(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(17))
	cfg := Config{Shards: 2, WAL: &WALConfig{Dir: dir}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1 := graph.GnpConnected(20, 4.0/20, rng)
	mustCreate(t, s, "g", g1)
	for i := 0; i < 10; i++ {
		if e, ok := graph.RandomEdgeNotIn(g1, rng); ok {
			fut, _ := s.Apply("g", core.Update{Kind: core.InsertEdge, U: e.U, V: e.V})
			fut.Wait()
		}
	}
	if err := s.DropGraph("g"); err != nil {
		t.Fatal(err)
	}
	// Second incarnation under the same ID, different shape.
	g2 := graph.GnpConnected(33, 3.0/33, rng)
	mustCreate(t, s, "g", g2)
	mir := core.New(g2, core.Options{RebuildD: true, Headroom: 64})
	var acked uint64
	for i := 0; i < 7; i++ {
		u := randUpdate(mir, rng)
		fut, _ := s.Apply("g", u)
		if _, _, err := fut.Wait(); err == nil {
			mir.Apply(u)
			acked++
		}
	}
	s.Close()

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.WaitRecovered()
	verifyRecovered(t, r, "g", mir, acked)
	if got := r.Metrics().WALOrphanRecords; got != 0 {
		t.Fatalf("%d orphan records; drop rotation should have removed them", got)
	}
}

func TestWALShardCountChange(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(19))
	s, err := Open(Config{Shards: 4, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	const graphs = 6
	mirrors := map[GraphID]*core.DynamicDFS{}
	acked := map[GraphID]uint64{}
	for i := 0; i < graphs; i++ {
		id := GraphID(fmt.Sprintf("sc%d", i))
		g := graph.GnpConnected(20, 4.0/20, rng)
		mustCreate(t, s, id, g)
		mirrors[id] = core.New(g, core.Options{RebuildD: true, Headroom: 64})
	}
	for step := 0; step < 120; step++ {
		id := GraphID(fmt.Sprintf("sc%d", rng.Intn(graphs)))
		u := randUpdate(mirrors[id], rng)
		fut, _ := s.Apply(id, u)
		if _, _, err := fut.Wait(); err == nil {
			mirrors[id].Apply(u)
			acked[id]++
		}
	}
	s.Close()

	// Halve the shard count: records from shard-0002/0003 must be routed
	// to the new owners, and the stale log files removed after recovery.
	r, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.WaitRecovered()
	for id, mir := range mirrors {
		verifyRecovered(t, r, id, mir, acked[id])
	}
	for _, stale := range []string{"shard-0002.wal", "shard-0003.wal"} {
		if _, err := os.Stat(filepath.Join(dir, stale)); !os.IsNotExist(err) {
			t.Fatalf("stale log %s not cleaned after recovery", stale)
		}
	}
}

func TestWALTornTailAndOrphans(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	cfg := Config{Shards: 1, WAL: &WALConfig{Dir: dir, CheckpointEvery: 1 << 20}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(20, 4.0/20, rng)
	mustCreate(t, s, "g", g)
	mir := core.New(g, core.Options{RebuildD: true, Headroom: 64})
	var acked uint64
	for i := 0; i < 12; i++ {
		u := randUpdate(mir, rng)
		fut, _ := s.Apply("g", u)
		if _, _, err := fut.Wait(); err == nil {
			mir.Apply(u)
			acked++
		}
	}
	s.Close()

	// Tear the log tail (simulate a crash mid-append) and drop in a bogus
	// old-epoch log holding records for a graph with no checkpoint.
	logPath := filepath.Join(dir, "shard-0000.wal")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := wal.AppendEncode(nil, &wal.Record{Graph: "dropped", Seq: 1,
		Update: core.Update{Kind: core.InsertEdge, U: 0, V: 1}})
	if err := os.WriteFile(filepath.Join(dir, "shard-0099.wal"), orphan, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.WaitRecovered()
	m := r.Metrics()
	if m.WALTornTails != 1 {
		t.Fatalf("WALTornTails = %d, want 1", m.WALTornTails)
	}
	if m.WALOrphanRecords != 1 {
		t.Fatalf("WALOrphanRecords = %d, want 1", m.WALOrphanRecords)
	}
	// The torn record was the last acked one's tail? No: tearing 3 bytes
	// clips exactly the final record, which was acked. The service must
	// recover the longest intact prefix — acked-1 — and stay consistent.
	snap, err := r.Snapshot("g")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != acked-1 {
		t.Fatalf("recovered version %d from torn log, want %d", snap.Version, acked-1)
	}
	if err := r.CheckSynced("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot("dropped"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("orphan records resurrected a graph: %v", err)
	}
}

// shardIndex is Service.defaultShard's hash routing for test planning —
// the same routeHash the serving path uses, so the two can never drift.
func shardIndex(id GraphID, shards int) int {
	return int(routeHash(id) % uint32(shards))
}

// reshardIDs returns two graph IDs that land on shard 0 and shard 1 under
// a 2-shard mapping (so that under 1 shard both log to shard-0000.wal and
// a reopen at 2 shards reroutes exactly one of them).
func reshardIDs() (keep, moved GraphID) {
	for i := 0; keep == "" || moved == ""; i++ {
		id := GraphID(fmt.Sprintf("rs%d", i))
		if shardIndex(id, 2) == 0 {
			if keep == "" {
				keep = id
			}
		} else if moved == "" {
			moved = id
		}
	}
	return keep, moved
}

// copyWALDir snapshots a WAL directory's files — the entire durable state —
// into dst, simulating the disk image a crash at this instant would leave.
func copyWALDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// replayMirror rebuilds the expected maintainer state: g with updates
// applied in order.
func replayMirror(t *testing.T, g *graph.Graph, updates []core.Update) *core.DynamicDFS {
	t.Helper()
	mir := core.New(g, core.Options{RebuildD: true, Headroom: 64})
	for i, u := range updates {
		if _, err := mir.Apply(u); err != nil {
			t.Fatalf("mirror replay of update %d: %v", i, err)
		}
	}
	return mir
}

// TestWALReshardKeepsInheritedTail: when the shard count changes, a
// shard's inherited log file can hold the only durable copy of records for
// graphs rerouted to other shards. Recovery must not truncate it until
// every shard has re-checkpointed (the barrier) — a crash in between would
// otherwise roll the rerouted graphs back behind their acked tails.
func TestWALReshardKeepsInheritedTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(31))
	keep, moved := reshardIDs()
	gK := graph.GnpConnected(24, 4.0/24, rng)
	gM := graph.GnpConnected(26, 4.0/26, rng)
	mirrors := map[GraphID]*core.DynamicDFS{
		keep:  core.New(gK, core.Options{RebuildD: true, Headroom: 64}),
		moved: core.New(gM, core.Options{RebuildD: true, Headroom: 64}),
	}
	acked := map[GraphID]uint64{}
	s, err := Open(Config{Shards: 1, WAL: &WALConfig{Dir: dir, CheckpointEvery: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, keep, gK)
	mustCreate(t, s, moved, gM)
	for _, id := range []GraphID{keep, moved} {
		for i := 0; i < 8; i++ {
			u := randUpdate(mirrors[id], rng)
			fut, _ := s.Apply(id, u)
			if _, _, err := fut.Wait(); err == nil {
				mirrors[id].Apply(u)
				acked[id]++
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with two shards: shard 0 inherits shard-0000.wal, which holds
	// moved's unrotated tail even though moved now lives on shard 1. The
	// inherited file must survive the whole recovery untruncated.
	r, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir, CheckpointEvery: 8}})
	if err != nil {
		t.Fatal(err)
	}
	r.WaitRecovered()
	res, err := wal.ReadLogFile(filepath.Join(dir, "shard-0000.wal"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range res.Records {
		if rec.Graph == string(moved) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("inherited log truncated during recovery while it held a rerouted graph's tail")
	}
	for id, mir := range mirrors {
		verifyRecovered(t, r, id, mir, acked[id])
	}

	// A crash at any point of that recovery must keep every acked update:
	// recover a copy of the directory's current disk image and cross-check.
	crash := t.TempDir()
	copyWALDir(t, dir, crash)
	c, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: crash}})
	if err != nil {
		t.Fatal(err)
	}
	c.WaitRecovered()
	for id, mir := range mirrors {
		verifyRecovered(t, c, id, mir, acked[id])
	}
	c.Close()

	// After the barrier the hold is released: the next checkpoint rotation
	// truncates the inherited file, so old-epoch records don't accumulate.
	for i := 0; i < 16; i++ {
		u := randUpdate(mirrors[keep], rng)
		fut, _ := r.Apply(keep, u)
		if _, _, err := fut.Wait(); err == nil {
			mirrors[keep].Apply(u)
			acked[keep]++
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = wal.ReadLogFile(filepath.Join(dir, "shard-0000.wal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if rec.Graph == string(moved) {
			t.Fatal("old-epoch rerouted records survived a post-barrier rotation")
		}
	}
}

// TestWALReshardTornTailAppend: an inherited log kept past recovery (see
// above) is also appended to. If its torn tail were not dropped first,
// O_APPEND would place the new acked records behind an undecodable frame
// and the next recovery's prefix scan would silently lose them.
func TestWALReshardTornTailAppend(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(37))
	keep, moved := reshardIDs()
	gK := graph.GnpConnected(24, 4.0/24, rng)
	gM := graph.GnpConnected(26, 4.0/26, rng)
	mirrors := map[GraphID]*core.DynamicDFS{
		keep:  core.New(gK, core.Options{RebuildD: true, Headroom: 64}),
		moved: core.New(gM, core.Options{RebuildD: true, Headroom: 64}),
	}
	applied := map[GraphID][]core.Update{}
	s, err := Open(Config{Shards: 1, WAL: &WALConfig{Dir: dir, CheckpointEvery: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, keep, gK)
	mustCreate(t, s, moved, gM)
	// keep first, moved last: the log's final record belongs to moved.
	for _, id := range []GraphID{keep, moved} {
		for i := 0; i < 6; i++ {
			u := randUpdate(mirrors[id], rng)
			fut, _ := s.Apply(id, u)
			if _, _, err := fut.Wait(); err == nil {
				mirrors[id].Apply(u)
				applied[id] = append(applied[id], u)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record (crash mid-append): moved's last update rolls
	// back to the intact prefix, like TestWALTornTailAndOrphans.
	logPath := filepath.Join(dir, "shard-0000.wal")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	applied[moved] = applied[moved][:len(applied[moved])-1]

	r, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: dir, CheckpointEvery: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.WaitRecovered()
	// Shard 0 keeps the inherited file (it holds moved's tail) and appends
	// keep's new records to it.
	for i := 0; i < 5; i++ {
		u := randUpdate(mirrors[keep], rng)
		fut, _ := r.Apply(keep, u)
		if _, _, err := fut.Wait(); err == nil {
			mirrors[keep].Apply(u)
			applied[keep] = append(applied[keep], u)
		}
	}

	// Crash now and recover the disk image: the pre-tear records, the torn
	// rollback, and the post-recovery appends must all be visible.
	crash := t.TempDir()
	copyWALDir(t, dir, crash)
	c, err := Open(Config{Shards: 2, WAL: &WALConfig{Dir: crash}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.WaitRecovered()
	verifyRecovered(t, c, keep, replayMirror(t, gK, applied[keep]), uint64(len(applied[keep])))
	verifyRecovered(t, c, moved, replayMirror(t, gM, applied[moved]), uint64(len(applied[moved])))
}

// TestWALDirSingleOwner: a WAL directory admits one live service at a time;
// the lock is released by Close so a successor can take over.
func TestWALDirSingleOwner(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Shards: 1, WAL: &WALConfig{Dir: dir}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("second Open on a held WAL dir = %v, want wal.ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	r.WaitRecovered()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenWALErrors(t *testing.T) {
	if _, err := Open(Config{Shards: 1, WAL: &WALConfig{}}); err == nil {
		t.Fatal("Open accepted a WALConfig without Dir")
	}
	// A graph whose only checkpoint is corrupt must fail Open loudly.
	dir := t.TempDir()
	cfg := Config{Shards: 1, WAL: &WALConfig{Dir: dir}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, "g", graph.GnpConnected(10, 0.3, rand.New(rand.NewSource(1))))
	s.Close()
	names, _ := os.ReadDir(dir)
	for _, e := range names {
		if filepath.Ext(e.Name()) == ".ckpt" {
			p := filepath.Join(dir, e.Name())
			data, _ := os.ReadFile(p)
			data[len(data)-1] ^= 0xff
			os.WriteFile(p, data, 0o644)
		}
	}
	if _, err := Open(cfg); err == nil || !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open on corrupt checkpoint = %v, want ErrCorrupt", err)
	}
}

func TestWALGroupCommitBatch(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(29))
	s, err := Open(Config{Shards: 1, WAL: &WALConfig{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := graph.GnpConnected(40, 3.0/40, rng)
	mustCreate(t, s, "g", g)
	before := s.Metrics()

	var items []BatchItem
	seen := map[[2]int]bool{}
	for len(items) < 16 {
		e, ok := graph.RandomEdgeNotIn(g, rng)
		if !ok || seen[[2]int{e.U, e.V}] || seen[[2]int{e.V, e.U}] {
			continue
		}
		seen[[2]int{e.U, e.V}] = true
		items = append(items, BatchItem{Graph: "g", Update: core.Update{Kind: core.InsertEdge, U: e.U, V: e.V}})
	}
	futs, err := s.ApplyBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for _, f := range futs {
		if _, _, err := f.Wait(); err == nil {
			okCount++
		}
	}
	after := s.Metrics()
	appends := after.WALAppends - before.WALAppends
	syncs := after.WALSyncs - before.WALSyncs
	if appends != uint64(okCount) {
		t.Fatalf("%d appends for %d applied entries", appends, okCount)
	}
	// Group commit: the whole round rides one fsync.
	if syncs != 1 {
		t.Fatalf("batch round issued %d fsyncs, want 1", syncs)
	}
}
