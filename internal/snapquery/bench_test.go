package snapquery

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/graph"
)

// BenchmarkSnapshotQuery pins the acceptance contract of the analytics
// engine: the cold path (first reader of a version builds all four
// indexes) is near-linear work, while the warm path (version cached) does
// zero index construction — a cache lookup plus O(1)/O(log n) reads — and
// must stay allocation-free (≤1 alloc) and ≥100× faster than the cold
// build at n=1e5. Run by the CI bench-smoke step with -benchtime=1x.
func BenchmarkSnapshotQuery(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.GnpConnected(n, 4.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		pseudo := g.NumVertexSlots()

		b.Run(fmt.Sprintf("cold/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := New(g, tr, pseudo)
				h.Warm()
			}
		})

		b.Run(fmt.Sprintf("warm/n=%d", n), func(b *testing.B) {
			c := NewCache(4)
			key := Key{Graph: "bench", Version: 1}
			c.Handle(key, g, tr, pseudo).Warm()
			us := make([]int, 256)
			vs := make([]int, 256)
			for i := range us {
				us[i], vs[i] = rng.Intn(n), rng.Intn(n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := c.Handle(key, g, tr, pseudo)
				u, v := us[i%256], vs[i%256]
				if _, err := h.LCA(u, v); err != nil {
					b.Fatal(err)
				}
				if _, err := h.SubtreeAgg(u); err != nil {
					b.Fatal(err)
				}
				if _, err := h.KthAncestor(v, 3); err != nil {
					b.Fatal(err)
				}
				if _, err := h.SameBiconnectedComponent(u, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotQueryColdPerIndex isolates each index's build cost.
func BenchmarkSnapshotQueryColdPerIndex(b *testing.B) {
	const n = 10000
	rng := rand.New(rand.NewSource(n))
	g := graph.GnpConnected(n, 4.0/float64(n), rng)
	tr := baseline.StaticDFS(g)
	pseudo := g.NumVertexSlots()
	for _, bench := range []struct {
		name  string
		touch func(h *Handle)
	}{
		{"lca", func(h *Handle) { h.LCA(0, n/2) }},
		{"lift", func(h *Handle) { h.KthAncestor(n/2, 3) }},
		{"agg", func(h *Handle) { h.SubtreeAgg(n / 2) }},
		{"bicon", func(h *Handle) { h.IsArticulation(n / 2) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.touch(New(g, tr, pseudo))
			}
		})
	}
}
