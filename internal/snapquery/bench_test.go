package snapquery

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

// BenchmarkSnapshotQuery pins the acceptance contract of the analytics
// engine: the cold path (first reader of a version builds all four
// indexes) is near-linear work; the patched path (first reader of a NEW
// version whose parent is cached, under a low-churn update) derives the
// three tree indexes from the parent's arrays and must be ≥50× faster
// than the cold build at n=1e5 with an allocation count proportional to
// the moved set, not n; and the warm path (version cached) does zero
// index construction — a cache lookup plus O(1)/O(log n) reads — and
// must stay allocation-free (≤1 alloc) and ≥100× faster than the cold
// build at n=1e5. Run by the CI bench-smoke step with -benchtime=1x.
func BenchmarkSnapshotQuery(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.GnpConnected(n, 4.0/float64(n), rng)
		tr := baseline.StaticDFS(g)
		pseudo := g.NumVertexSlots()

		b.Run(fmt.Sprintf("cold/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := New(g, tr, pseudo)
				h.Warm()
			}
		})

		// First query on a freshly published version with the parent
		// version's handle warm in cache: each iteration re-derives the
		// three patchable indexes (LCA splice, lifting row fix-up,
		// aggregate re-fold) from one low-churn update. Biconnectivity is
		// outside the patch regime by design (global back-edge dependence)
		// and excluded here.
		b.Run(fmt.Sprintf("patched/n=%d", n), func(b *testing.B) {
			dd := core.New(g, core.Options{RebuildD: true})
			parent := New(dd.Frozen(), dd.Tree(), dd.PseudoRoot())
			parent.Warm()
			leaf := -1
			for v := 0; v < n; v++ {
				if dd.Tree().Present(v) && len(dd.Tree().Children(v)) == 0 {
					leaf = v
					break
				}
			}
			if err := dd.DeleteVertex(leaf); err != nil {
				b.Fatal(err)
			}
			d := dd.LastDelta()
			if d == nil {
				b.Fatal("leaf delete yielded no delta")
			}
			delta := Delta{Moved: d.Moved, Removed: d.Removed, SameTree: d.SameTree}
			g2, t2, ps := dd.Frozen(), dd.Tree(), dd.PseudoRoot()
			us := make([]int, 256)
			vs := make([]int, 256)
			for i := range us {
				for {
					if u := rng.Intn(n); t2.Present(u) {
						us[i] = u
						break
					}
				}
				for {
					if v := rng.Intn(n); t2.Present(v) {
						vs[i] = v
						break
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := NewDerived(parent, g2, t2, ps, delta)
				u, v := us[i%256], vs[i%256]
				if _, err := h.LCA(u, v); err != nil {
					b.Fatal(err)
				}
				if _, err := h.KthAncestor(v, 3); err != nil {
					b.Fatal(err)
				}
				if _, err := h.SubtreeAgg(u); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("warm/n=%d", n), func(b *testing.B) {
			c := NewCache(4)
			key := Key{Graph: "bench", Version: 1}
			c.Handle(key, g, tr, pseudo).Warm()
			us := make([]int, 256)
			vs := make([]int, 256)
			for i := range us {
				us[i], vs[i] = rng.Intn(n), rng.Intn(n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := c.Handle(key, g, tr, pseudo)
				u, v := us[i%256], vs[i%256]
				if _, err := h.LCA(u, v); err != nil {
					b.Fatal(err)
				}
				if _, err := h.SubtreeAgg(u); err != nil {
					b.Fatal(err)
				}
				if _, err := h.KthAncestor(v, 3); err != nil {
					b.Fatal(err)
				}
				if _, err := h.SameBiconnectedComponent(u, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotQueryColdPerIndex isolates each index's build cost.
func BenchmarkSnapshotQueryColdPerIndex(b *testing.B) {
	const n = 10000
	rng := rand.New(rand.NewSource(n))
	g := graph.GnpConnected(n, 4.0/float64(n), rng)
	tr := baseline.StaticDFS(g)
	pseudo := g.NumVertexSlots()
	for _, bench := range []struct {
		name  string
		touch func(h *Handle)
	}{
		{"lca", func(h *Handle) { h.LCA(0, n/2) }},
		{"lift", func(h *Handle) { h.KthAncestor(n/2, 3) }},
		{"agg", func(h *Handle) { h.SubtreeAgg(n / 2) }},
		{"bicon", func(h *Handle) { h.IsArticulation(n / 2) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.touch(New(g, tr, pseudo))
			}
		})
	}
}
