package snapquery

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tree"
)

// DefaultCapacity is the per-cache handle retention used when a Cache is
// created with a non-positive capacity.
const DefaultCapacity = 16

// Cache retains query handles in an LRU keyed by (graph, version). One
// handle per version is ever created: concurrent readers of the same
// version share it (and therefore share each index's single build). The
// cache bounds how many versions keep their indexes resident; evicting a
// version only drops the cache's reference — handles already handed out
// stay fully usable.
//
// The mutex guards only the map/list structure; index construction happens
// outside it, under the handle's own per-index singleflight, so a slow
// build never blocks hits on other versions.
type Cache struct {
	capacity int

	mu    sync.Mutex
	lru   *list.List // of *Handle; front = most recently used
	byKey map[Key]*list.Element

	hits           atomic.Uint64
	misses         atomic.Uint64
	evictions      atomic.Uint64
	dropped        atomic.Uint64
	builds         atomic.Uint64
	buildNanos     atomic.Int64
	patches        atomic.Uint64
	patchNanos     atomic.Int64
	patchFallbacks atomic.Uint64
	size           atomic.Int64 // mirrors lru.Len() so Stats never takes mu

	// Latency distributions of the read path: per-index fresh builds,
	// per-index patch derivations (what observe's sums above total), and
	// handle resolution (Handle/HandleDerived — the lock window plus, on a
	// miss, handle construction; index work happens later, at first query,
	// and lands in the build/patch histograms).
	buildHist   obs.Histogram
	patchHist   obs.Histogram
	resolveHist obs.Histogram

	// attribute, when set, receives each index derivation tagged with its
	// graph so the owner can charge the work to a tenant (patched reports
	// whether a delta patch succeeded; fallbacks count as builds). Set
	// before the cache sees traffic; called from reader goroutines.
	attribute func(graphName string, patched bool, d time.Duration)
}

// NewCache creates a cache retaining up to capacity versions
// (DefaultCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[Key]*list.Element, capacity),
	}
}

// Capacity returns the maximum number of retained versions.
func (c *Cache) Capacity() int { return c.capacity }

// SetAttribution installs a per-graph cost callback invoked for every index
// build or patch the cache's handles perform. Must be set before the cache
// sees traffic (handles capture c.observe at creation, and the field is
// read without a lock).
func (c *Cache) SetAttribution(fn func(graphName string, patched bool, d time.Duration)) {
	c.attribute = fn
}

func (c *Cache) observe(graphName string, outcome buildOutcome, d time.Duration) {
	switch outcome {
	case outcomePatch:
		c.patches.Add(1)
		c.patchNanos.Add(int64(d))
		c.patchHist.Record(d)
	case outcomeFallback:
		c.patchFallbacks.Add(1)
		c.builds.Add(1)
		c.buildNanos.Add(int64(d))
		c.buildHist.Record(d)
	default:
		c.builds.Add(1)
		c.buildNanos.Add(int64(d))
		c.buildHist.Record(d)
	}
	if c.attribute != nil {
		c.attribute(graphName, outcome == outcomePatch, d)
	}
}

// Handle returns the cached handle for key, creating (and caching) it from
// the supplied frozen snapshot parts on first use. The hit path is a map
// lookup plus an LRU bump — no allocation, no index work.
func (c *Cache) Handle(key Key, g graph.Adjacency, t *tree.Tree, pseudo int) *Handle {
	return c.HandleDerived(key, g, t, pseudo, Key{}, nil, Delta{})
}

// HandleDerived is Handle for a version carrying its parent delta: when the
// handle must be created and the parent version's handle is still cached
// over the expected tree (parentTree is the incarnation check — a
// dropped-and-recreated graph colliding on both versions cannot slip a
// foreign tree in), the new handle is linked to it so its indexes patch
// rather than rebuild. A missing or stale parent entry silently degrades to
// the fresh-build path. parentTree nil means no delta is available.
func (c *Cache) HandleDerived(key Key, g graph.Adjacency, t *tree.Tree, pseudo int, parentKey Key, parentTree *tree.Tree, delta Delta) *Handle {
	start := time.Now()
	defer func() { c.resolveHist.Record(time.Since(start)) }()
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		h := el.Value.(*Handle)
		if h.t == t {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return h
		}
		// Same key over a different snapshot: a dropped-and-recreated graph
		// whose version counter collided. Evict the stale incarnation.
		c.lru.Remove(el)
		delete(c.byKey, key)
		c.dropped.Add(1)
		c.size.Add(-1)
	}
	h := &Handle{key: key, g: g, t: t, pseudo: pseudo, observe: c.observe}
	if parentTree != nil {
		if pel, ok := c.byKey[parentKey]; ok {
			if ph := pel.Value.(*Handle); ph.t == parentTree {
				h.delta = delta
				h.parent.Store(ph)
			}
		}
	}
	c.byKey[key] = c.lru.PushFront(h)
	c.size.Add(1)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*Handle).key)
		c.evictions.Add(1)
		c.size.Add(-1)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return h
}

// DropGraph evicts every cached version of the named graph (the graph was
// dropped; its retained snapshots — and any held handles — stay valid).
func (c *Cache) DropGraph(graphName string) {
	c.mu.Lock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		h := el.Value.(*Handle)
		if h.key.Graph == graphName {
			c.lru.Remove(el)
			delete(c.byKey, h.key)
			c.dropped.Add(1)
			c.size.Add(-1)
		}
	}
	c.mu.Unlock()
}

// MoveGraph transfers every cached version of the named graph into dst (the
// graph migrated to another shard), preserving relative recency: entries are
// extracted here most-recent-first and pushed onto dst's front in reverse,
// so they arrive in the same order at dst's most-recent end. A version dst
// already caches keeps dst's copy (it is bumped instead), and dst's capacity
// is enforced afterwards. Moved handles keep observing the source cache's
// counters — a handle captures its observe callback at creation — so index
// work started before the move is attributed where it began; the skew lasts
// only until those versions age out. Locks are taken one cache at a time
// (source, then destination), never nested.
func (c *Cache) MoveGraph(graphName string, dst *Cache) {
	if c == dst {
		return
	}
	c.mu.Lock()
	var moved []*Handle // most recently used first
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		h := el.Value.(*Handle)
		if h.key.Graph == graphName {
			c.lru.Remove(el)
			delete(c.byKey, h.key)
			c.size.Add(-1)
			moved = append(moved, h)
		}
	}
	c.mu.Unlock()
	if len(moved) == 0 {
		return
	}
	dst.mu.Lock()
	for i := len(moved) - 1; i >= 0; i-- {
		h := moved[i]
		if el, ok := dst.byKey[h.key]; ok {
			dst.lru.MoveToFront(el)
			continue
		}
		dst.byKey[h.key] = dst.lru.PushFront(h)
		dst.size.Add(1)
	}
	for dst.lru.Len() > dst.capacity {
		back := dst.lru.Back()
		dst.lru.Remove(back)
		delete(dst.byKey, back.Value.(*Handle).key)
		dst.evictions.Add(1)
		dst.size.Add(-1)
	}
	dst.mu.Unlock()
}

// Stats is a point-in-time sample of the cache's counters. Evictions counts
// only capacity aging (the LRU is full and the oldest version falls off);
// versions removed because their graph was dropped or because a
// dropped-and-recreated graph collided on the same (graph, version) key —
// a stale incarnation — count under Dropped instead. Builds counts fresh
// index constructions (≤ 4 per version), Patches the index derivations
// that reused a parent version's arrays, and PatchFallbacks the builds
// that had a parent on hand but declined the patch (high churn or a
// vertex-slot renumbering); fallbacks are also included in Builds.
type Stats struct {
	Hits           uint64 // Handle calls answered from the LRU
	Misses         uint64 // Handle calls that created a new handle
	Evictions      uint64 // versions aged out by capacity
	Dropped        uint64 // versions removed by DropGraph or stale incarnation
	Builds         uint64 // fresh index constructions (≤ 4 per version)
	BuildTime      time.Duration
	Patches        uint64 // index derivations patched from a parent version
	PatchTime      time.Duration
	PatchFallbacks uint64 // patches declined after inspecting the delta
	Size           int    // versions currently retained

	// Latency distributions behind the sums above: per-index build and
	// patch durations, and handle-resolution latency (the read-path entry
	// point). Merge per-shard snapshots for service-wide percentiles.
	BuildHist   obs.HistSnapshot
	PatchHist   obs.HistSnapshot
	ResolveHist obs.HistSnapshot
}

// Stats samples the counters. It is lock-free (atomics only), so metrics
// polling never contends with the Handle hot path.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Dropped:        c.dropped.Load(),
		Builds:         c.builds.Load(),
		BuildTime:      time.Duration(c.buildNanos.Load()),
		Patches:        c.patches.Load(),
		PatchTime:      time.Duration(c.patchNanos.Load()),
		PatchFallbacks: c.patchFallbacks.Load(),
		Size:           int(c.size.Load()),
		BuildHist:      c.buildHist.Snapshot(),
		PatchHist:      c.patchHist.Snapshot(),
		ResolveHist:    c.resolveHist.Snapshot(),
	}
}

// ObsPublish registers the cache's counters and latency histograms under
// prefix, implementing obs.Source. Every published Var samples atomics
// only, so polling never contends with the Handle hot path.
func (c *Cache) ObsPublish(r *obs.Registry, prefix string) {
	gauge := func(name string, u *atomic.Uint64) {
		r.Gauge(prefix+name, func() int64 { return int64(u.Load()) })
	}
	gauge("hits", &c.hits)
	gauge("misses", &c.misses)
	gauge("evictions", &c.evictions)
	gauge("dropped", &c.dropped)
	gauge("builds", &c.builds)
	gauge("patches", &c.patches)
	gauge("patch_fallbacks", &c.patchFallbacks)
	r.Gauge(prefix+"size", c.size.Load)
	r.Gauge(prefix+"build_ns", c.buildNanos.Load)
	r.Gauge(prefix+"patch_ns", c.patchNanos.Load)
	r.Publish(prefix+"build_latency", func() any { return c.buildHist.Snapshot() })
	r.Publish(prefix+"patch_latency", func() any { return c.patchHist.Snapshot() })
	r.Publish(prefix+"resolve_latency", func() any { return c.resolveHist.Snapshot() })
}
