package snapquery

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/tree"
)

// DefaultCapacity is the per-cache handle retention used when a Cache is
// created with a non-positive capacity.
const DefaultCapacity = 16

// Cache retains query handles in an LRU keyed by (graph, version). One
// handle per version is ever created: concurrent readers of the same
// version share it (and therefore share each index's single build). The
// cache bounds how many versions keep their indexes resident; evicting a
// version only drops the cache's reference — handles already handed out
// stay fully usable.
//
// The mutex guards only the map/list structure; index construction happens
// outside it, under the handle's own per-index singleflight, so a slow
// build never blocks hits on other versions.
type Cache struct {
	capacity int

	mu    sync.Mutex
	lru   *list.List // of *Handle; front = most recently used
	byKey map[Key]*list.Element

	hits       atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	builds     atomic.Uint64
	buildNanos atomic.Int64
	size       atomic.Int64 // mirrors lru.Len() so Stats never takes mu
}

// NewCache creates a cache retaining up to capacity versions
// (DefaultCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[Key]*list.Element, capacity),
	}
}

// Capacity returns the maximum number of retained versions.
func (c *Cache) Capacity() int { return c.capacity }

func (c *Cache) observe(d time.Duration) {
	c.builds.Add(1)
	c.buildNanos.Add(int64(d))
}

// Handle returns the cached handle for key, creating (and caching) it from
// the supplied frozen snapshot parts on first use. The hit path is a map
// lookup plus an LRU bump — no allocation, no index work.
func (c *Cache) Handle(key Key, g graph.Adjacency, t *tree.Tree, pseudo int) *Handle {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		h := el.Value.(*Handle)
		if h.t == t {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return h
		}
		// Same key over a different snapshot: a dropped-and-recreated graph
		// whose version counter collided. Evict the stale incarnation.
		c.lru.Remove(el)
		delete(c.byKey, key)
		c.evictions.Add(1)
		c.size.Add(-1)
	}
	h := &Handle{key: key, g: g, t: t, pseudo: pseudo, onBuild: c.observe}
	c.byKey[key] = c.lru.PushFront(h)
	c.size.Add(1)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*Handle).key)
		c.evictions.Add(1)
		c.size.Add(-1)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return h
}

// DropGraph evicts every cached version of the named graph (the graph was
// dropped; its retained snapshots — and any held handles — stay valid).
func (c *Cache) DropGraph(graphName string) {
	c.mu.Lock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		h := el.Value.(*Handle)
		if h.key.Graph == graphName {
			c.lru.Remove(el)
			delete(c.byKey, h.key)
			c.evictions.Add(1)
			c.size.Add(-1)
		}
	}
	c.mu.Unlock()
}

// Stats is a point-in-time sample of the cache's counters.
type Stats struct {
	Hits      uint64 // Handle calls answered from the LRU
	Misses    uint64 // Handle calls that created a new handle
	Evictions uint64 // versions dropped (capacity or DropGraph)
	Builds    uint64 // individual index constructions (≤ 4 per version)
	BuildTime time.Duration
	Size      int // versions currently retained
}

// Stats samples the counters. It is lock-free (atomics only), so metrics
// polling never contends with the Handle hot path.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Builds:    c.builds.Load(),
		BuildTime: time.Duration(c.buildNanos.Load()),
		Size:      int(c.size.Load()),
	}
}
