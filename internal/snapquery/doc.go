// Package snapquery is the snapshot analytics engine: a read-only query
// layer over one frozen (graph, DFS tree) pair — the state the serving
// layer publishes after every update — that memoizes the derived indexes
// classical DFS applications need instead of rebuilding them per query.
//
// A Handle pins exactly one snapshot version and lazily constructs a bundle
// of indexes over it:
//
//   - Euler-tour/block-RMQ LCA (the paper's Theorem 5/6 Schieber–Vishkin
//     stand-in) for LCA, SameComponent and TreePath;
//   - binary-lifting ancestor tables for KthAncestor / AncestorAtLevel in
//     O(log n) instead of the tree's O(depth) parent walk;
//   - bottom-up subtree aggregates (height, min/max vertex label; size and
//     depth come free from the tree numbering) for SubtreeAgg;
//   - full biconnectivity analysis (internal/bicon: articulation points,
//     bridges, biconnected-component IDs of tree edges).
//
// Each index is built exactly once per handle under a singleflight guard:
// concurrent first readers share one build (one builds, the rest block on
// it), and every later reader takes a pure atomic pointer load. Because the
// underlying snapshot structures are persistent (updates path-copy away
// from them), index construction needs no synchronization with writers.
//
// # Differential builds
//
// Since one graph update reroots only a bounded set of subtrees (the
// paper's reduction), consecutive versions share almost all derived state:
// every vertex outside the update's moved set keeps its parent, its level,
// and its relative Euler order. Handles created with NewDerived or
// Cache.HandleDerived carry that moved-vertex Delta plus a reference to the
// parent version's handle, and each tree index *patches* the parent's
// immutable arrays instead of rebuilding:
//
//   - LCA: the new Euler tour is spliced — maximal clean subtrees are
//     memcpy'd straight out of the parent's tour/depth arrays, only the
//     dirty closure is walked — and the small block-level sparse table is
//     re-spanned;
//   - binary lifting: rows are copied and only the moved vertices' entries
//     recomputed level-by-level (an unmoved vertex's ancestor chain is
//     identical in both trees);
//   - subtree aggregates: three memcpys plus a bottom-up re-fold of the
//     affected ancestor closure.
//
// A pure detachment — the moved set empty, only removals, e.g. a leaf or
// subtree delete — is the degenerate and fastest case: no surviving
// vertex's root path changed, so the parent's tour and lifting table answer
// every live query verbatim and are shared outright (the detached vertices'
// leftover tour occurrences can never be a live range minimum, and are
// rejected as query arguments before lookup). Only the aggregates are
// patched, by climbing the detach anchor's root path until the fold
// stabilizes. That keeps the low-churn patch cost at O(changed aggregates)
// plus three memcpys even for the path-like, Θ(n)-deep DFS trees of sparse
// graphs, where any ancestor-closure walk would be Θ(n) pointer chasing. A
// tour shared this way is marked stale and declines to serve as the base of
// a later splice (its segment offsets include the phantom entries); the
// grandchild falls back to a fresh build instead.
//
// The patch falls back to a fresh build — counted separately in the cache's
// stats — when the delta is missing or churn-heavy (the same ratio fallback
// dstruct.D uses), when the vertex-ID space was renumbered, or when the
// parent handle is gone (evicted before this version's first query, or
// already released). Biconnectivity is the deliberate exception: low-points
// depend on the global back-edge structure, so a single inserted back edge
// can flip bridges arbitrarily far from the moved set — there is no
// locality to exploit, and the bicon index is always built fresh.
//
// Patched and fresh indexes are structurally identical, not merely
// equivalent — CheckSynced is the differential oracle that verifies it
// (for a shared stale tour, identical after dropping the phantom
// occurrences removal leaves behind).
// The parent reference is dropped as soon as the three patchable indexes
// are materialized (or the handle's cache entry ages out), so version
// chains do not accumulate: at most one extra tree is retained per handle
// still awaiting its first query.
//
// Cache retains handles in an LRU keyed by (graph, version) so a bounded
// number of hot versions keep their indexes alive while old versions age
// out. Eviction never invalidates a held Handle — it only drops the cache's
// reference; readers still holding the handle keep querying it, exactly
// like a retained Snapshot.
package snapquery
