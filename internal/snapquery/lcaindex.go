package snapquery

import (
	"math/bits"

	"repro/internal/tree"
)

// lcaBlock is the Euler-tour block width of the handle-local LCA index.
// Range minima inside a block are found by a linear scan (≤ lcaBlock int32
// compares, one cache line apiece); only the per-block minima carry a sparse
// table, shrinking it by a factor of lcaBlock² versus a table over the full
// tour. That makes both the fresh build and — the point of this layout — the
// version-to-version patch cheap: a patch memcpys parent tour segments and
// re-spans only the tiny block-level table.
const lcaBlock = 32

// lcaIndex answers LCA queries over one frozen tree via Euler tour + block
// RMQ. All arrays are immutable after build/patch; handles of different
// versions never share them (unlike SameTree versions, which share the whole
// index).
type lcaIndex struct {
	tour     []int32   // Euler walk, 2·live-1 vertices when exact (see stale)
	depth    []int32   // depth[i] = level of tour[i]
	first    []int32   // first occurrence of v in tour; -1 for holes
	blockMin []int32   // tour position of the min-depth entry of each block
	sparse   [][]int32 // sparse[k][b]: min position over blocks [b, b+2^k)

	// stale marks a tour shared across one or more pure detachments (moved
	// set empty): it is the exact tour of an ancestor version and still
	// answers every live query — removed vertices' leftover occurrences lie
	// strictly below any live range minimum and are rejected as arguments
	// before lookup — but its segment offsets no longer match the current
	// tree, so it cannot serve as the base of a later splice.
	stale bool
}

// buildLCAIndex constructs the index from scratch: one Euler walk plus the
// block-minima span pass.
func buildLCAIndex(t *tree.Tree) *lcaIndex {
	n := t.N()
	ix := &lcaIndex{first: make([]int32, n)}
	for v := range ix.first {
		ix.first[v] = -1
	}
	m := 2*t.Live() - 1
	ix.tour = make([]int32, 0, m)
	ix.depth = make([]int32, 0, m)
	type frame struct{ v, ci int }
	stack := []frame{{t.Root, 0}}
	ix.first[t.Root] = 0
	ix.tour = append(ix.tour, int32(t.Root))
	ix.depth = append(ix.depth, int32(t.Level(t.Root)))
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci < len(t.Children(f.v)) {
			c := t.Children(f.v)[f.ci]
			f.ci++
			if ix.first[c] < 0 {
				ix.first[c] = int32(len(ix.tour))
			}
			ix.tour = append(ix.tour, int32(c))
			ix.depth = append(ix.depth, int32(t.Level(c)))
			stack = append(stack, frame{c, 0})
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			p := stack[len(stack)-1].v
			ix.tour = append(ix.tour, int32(p))
			ix.depth = append(ix.depth, int32(t.Level(p)))
		}
	}
	ix.span()
	return ix
}

// span (re)computes blockMin and the sparse table from tour/depth.
func (ix *lcaIndex) span() {
	m := len(ix.tour)
	nb := (m + lcaBlock - 1) / lcaBlock
	ix.blockMin = make([]int32, nb)
	for b := 0; b < nb; b++ {
		lo := b * lcaBlock
		hi := lo + lcaBlock - 1
		if hi >= m {
			hi = m - 1
		}
		ix.blockMin[b] = ix.scanMin(int32(lo), int32(hi))
	}
	levels := bits.Len(uint(nb))
	ix.sparse = make([][]int32, levels)
	ix.sparse[0] = ix.blockMin
	for k := 1; k < levels; k++ {
		prev := ix.sparse[k-1]
		w := 1 << (k - 1)
		row := make([]int32, nb-2*w+1)
		for b := range row {
			l, r := prev[b], prev[b+w]
			if ix.depth[r] < ix.depth[l] {
				l = r
			}
			row[b] = l
		}
		ix.sparse[k] = row
	}
}

// scanMin returns the tour position of the minimum depth on [lo, hi].
func (ix *lcaIndex) scanMin(lo, hi int32) int32 {
	best := lo
	for i := lo + 1; i <= hi; i++ {
		if ix.depth[i] < ix.depth[best] {
			best = i
		}
	}
	return best
}

// blockRange returns the min position over whole blocks [bl, br] (inclusive,
// bl <= br) via the sparse table.
func (ix *lcaIndex) blockRange(bl, br int) int32 {
	k := bits.Len(uint(br-bl+1)) - 1
	l, r := ix.sparse[k][bl], ix.sparse[k][br-(1<<k)+1]
	if ix.depth[r] < ix.depth[l] {
		l = r
	}
	return l
}

// lca returns the LCA of present vertices u and v.
func (ix *lcaIndex) lca(u, v int) int {
	i, j := ix.first[u], ix.first[v]
	if i > j {
		i, j = j, i
	}
	bi, bj := int(i)/lcaBlock, int(j)/lcaBlock
	if bi == bj {
		return int(ix.tour[ix.scanMin(i, j)])
	}
	best := ix.scanMin(i, int32((bi+1)*lcaBlock-1))
	if p := ix.scanMin(int32(bj*lcaBlock), j); ix.depth[p] < ix.depth[best] {
		best = p
	}
	if bi+1 <= bj-1 {
		if p := ix.blockRange(bi+1, bj-1); ix.depth[p] < ix.depth[best] {
			best = p
		}
	}
	return int(ix.tour[best])
}

// patchLCAIndex derives the new version's index from the parent version's by
// splicing the Euler tour: one walk over the new tree that memcpys the
// parent's tour+depth segment for every maximal clean subtree (no vertex
// moved, removed, or re-aggregated inside it — such a subtree has identical
// vertex sets, child order, and levels in both trees, so its Euler segment
// is byte-identical) and emits only the dirty spine vertex-by-vertex. The
// first-occurrence array and the block spans are then refilled in one O(m)
// int32 pass each; the per-vertex work is bounded by the dirty closure, the
// rest is sequential memcpy/scan an order of magnitude faster than the
// pointer-chasing fresh walk.
func patchLCAIndex(par *lcaIndex, t2 *tree.Tree, plan *patchPlan) *lcaIndex {
	n := t2.N()
	ix := &lcaIndex{first: make([]int32, n)}
	m := 2*t2.Live() - 1
	ix.tour = make([]int32, 0, m)
	ix.depth = make([]int32, 0, m)
	clean := func(v int) bool {
		return !plan.dirty1[v] && !plan.dirty2[v] && par.first[v] >= 0
	}
	type frame struct{ v, ci int }
	stack := []frame{{t2.Root, 0}}
	ix.tour = append(ix.tour, int32(t2.Root))
	ix.depth = append(ix.depth, int32(t2.Level(t2.Root)))
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci < len(t2.Children(f.v)) {
			c := t2.Children(f.v)[f.ci]
			f.ci++
			if clean(c) {
				// Splice T(c)'s whole segment from the parent tour, then
				// re-emit f.v — the step the walk would take when popping c.
				lo := par.first[c]
				hi := lo + int32(2*t2.Size(c)-1)
				ix.tour = append(ix.tour, par.tour[lo:hi]...)
				ix.depth = append(ix.depth, par.depth[lo:hi]...)
				ix.tour = append(ix.tour, int32(f.v))
				ix.depth = append(ix.depth, int32(t2.Level(f.v)))
				continue
			}
			ix.tour = append(ix.tour, int32(c))
			ix.depth = append(ix.depth, int32(t2.Level(c)))
			stack = append(stack, frame{c, 0})
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			p := stack[len(stack)-1].v
			ix.tour = append(ix.tour, int32(p))
			ix.depth = append(ix.depth, int32(t2.Level(p)))
		}
	}
	for v := range ix.first {
		ix.first[v] = -1
	}
	for i, v := range ix.tour {
		if ix.first[v] < 0 {
			ix.first[v] = int32(i)
		}
	}
	ix.span()
	return ix
}
