package snapquery

import (
	"math/bits"

	"repro/internal/tree"
)

// Delta names how a snapshot version differs from its parent version: the
// core maintainer's moved-vertex set (vertices whose root path changed),
// the vertices the update removed, and the back-edge SameTree flag. It is
// the currency of the differential build path — a handle created with
// NewDerived or Cache.HandleDerived patches the parent handle's immutable
// index arrays instead of rebuilding them, as long as the delta is small
// enough (see patchPlan) and the parent is still on hand.
type Delta struct {
	Moved    []int
	Removed  []int
	SameTree bool
}

// patchChurnFactor is the churn-ratio fallback threshold, the same shape as
// dstruct.D's: decline the patch when the delta closure would plausibly
// touch a constant fraction of the tree, because beyond that the splice
// degenerates into a fresh walk with extra bookkeeping.
const patchChurnFactor = 4

// patchPlan is the delta closure shared by every patchable index of one
// handle, computed once under its own singleflight slot:
//
//   - shareClean: the moved set is empty (a pure detachment, e.g. a leaf or
//     subtree delete) — no surviving vertex's root path changed, so the
//     parent's LCA tour and lifting table answer every live query verbatim
//     and are shared outright instead of spliced (dirty1 is not computed);
//   - dirty1[v]: T(v) in the PARENT tree contains a moved or removed vertex
//     (T1-ancestor closure of moved ∪ removed) — the subtree's old Euler
//     segment is not reusable;
//   - dirty2[v]: T(v) in the NEW tree contains a moved vertex, or lost one
//     (T2-ancestor closure of moved plus of the detach anchors, the old
//     parents of moved/removed vertices) — the subtree's aggregate may have
//     changed;
//   - affected: exactly the dirty2 vertices, in a children-before-parents
//     fold order, so the bottom-up re-fold finalizes children first;
//   - climbOnly/climb: the single-anchor pure-detachment shortcut — the
//     changed aggregates lie on one root path, so the re-fold climbs it from
//     the anchor and stops as soon as the fold stabilizes (an unchanged
//     vertex cannot change its parent's fold), skipping the marking passes
//     entirely. This is O(aggregates that actually changed), where every
//     marking-based path is Θ(tree depth) — which for the path-like DFS
//     trees of sparse graphs approaches Θ(n).
//
// A vertex clean on both sides roots a subtree with identical vertex set,
// child order, and levels in both trees (unmoved vertices keep parent,
// level, and relative order — the paper's reduction argument), which is
// what lets patchLCAIndex splice and patchAggIndex copy.
//
// The plan never sorts: affected is the concatenation of the mark2 walk's
// path segments in reverse creation order. Within a segment the walk runs
// child→ancestor, and a later segment never contains an ancestor of an
// earlier segment's vertex (the dirty set is ancestor-closed at all times,
// so the full ancestor chain of every marked vertex is marked in the same
// or an earlier segment) — reversing the segments therefore puts every
// dirty child before its dirty parent.
type patchPlan struct {
	sameTree   bool
	shareClean bool
	climbOnly  bool
	climb      int // sole detach anchor; tree.None when nothing survives it
	dirty1     []bool
	dirty2     []bool
	affected   []int32
}

// buildPatchPlan computes the plan, or nil when the patch must be declined:
// no parent delta, a vertex-slot renumbering (relocated pseudo root changes
// N and voids the delta upstream anyway), or churn past the fallback
// threshold.
func buildPatchPlan(t1, t2 *tree.Tree, d Delta) *patchPlan {
	if d.SameTree {
		return &patchPlan{sameTree: true}
	}
	if t1.N() != t2.N() {
		return nil
	}
	if patchChurnFactor*(len(d.Moved)+len(d.Removed)) > t2.Live() {
		return nil
	}
	n := t2.N()
	p := &patchPlan{shareClean: len(d.Moved) == 0}
	present1 := func(v int) bool { return v < t1.N() && t1.Present(v) }
	if p.shareClean {
		// All detachments hanging off one surviving anchor: take the climb
		// shortcut, no marking needed.
		p.climb = tree.None
		single := true
		for _, w := range d.Removed {
			if !present1(w) {
				continue
			}
			pw := t1.Parent[w]
			if pw == tree.None || !t2.Present(pw) {
				continue
			}
			if p.climb == tree.None {
				p.climb = pw
			} else if p.climb != pw {
				single = false
				break
			}
		}
		if single {
			p.climbOnly = true
			return p
		}
		p.climb = tree.None
	} else {
		// dirty1 only steers the Euler-tour splice; a shareClean handle
		// shares the parent tour outright and never splices.
		p.dirty1 = make([]bool, n)
		mark1 := func(v int) {
			for v != tree.None && !p.dirty1[v] {
				p.dirty1[v] = true
				v = t1.Parent[v]
			}
		}
		for _, w := range d.Moved {
			if present1(w) {
				mark1(w)
			}
		}
		for _, w := range d.Removed {
			mark1(w)
		}
	}
	p.dirty2 = make([]bool, n)
	var segs []int32 // start offset of each mark2 path segment in affected
	mark2 := func(v int) {
		start := len(p.affected)
		for v != tree.None && !p.dirty2[v] {
			p.dirty2[v] = true
			p.affected = append(p.affected, int32(v))
			v = t2.Parent[v]
		}
		if len(p.affected) > start {
			segs = append(segs, int32(start))
		}
	}
	for _, w := range d.Moved {
		mark2(w)
	}
	// Detach anchors: the old parent of every moved/removed vertex lost part
	// of its subtree; its new-tree ancestor chain re-aggregates even though
	// nothing moved inside its new subtree.
	anchor := func(w int) {
		if !present1(w) {
			return
		}
		if pw := t1.Parent[w]; pw != tree.None && t2.Present(pw) {
			mark2(pw)
		}
	}
	for _, w := range d.Moved {
		anchor(w)
	}
	for _, w := range d.Removed {
		anchor(w)
	}
	// Fold order: reverse the segment blocks (see the type comment for why
	// that puts every dirty child before its dirty parent).
	if len(segs) > 1 {
		out := make([]int32, 0, len(p.affected))
		for i := len(segs) - 1; i >= 0; i-- {
			hi := len(p.affected)
			if i+1 < len(segs) {
				hi = int(segs[i+1])
			}
			out = append(out, p.affected[segs[i]:hi]...)
		}
		p.affected = out
	}
	return p
}

// patchLiftIndex derives the binary-lifting table from the parent version's:
// shared rows are memcpys, and only the moved vertices' entries are
// recomputed level-by-level — an unmoved vertex has the identical ancestor
// chain in both trees, so every one of its table entries carries over.
// Entries of removed vertices keep stale (but in-bounds) values; the query
// layer rejects non-present vertices before ever reading them, and no live
// vertex's ancestor chain passes through a removed vertex.
func patchLiftIndex(par *liftIndex, t2 *tree.Tree, plan *patchPlan, moved []int) *liftIndex {
	n := t2.N()
	maxLvl := 0
	for v := 0; v < n; v++ {
		if t2.Present(v) && t2.Level(v) > maxLvl {
			maxLvl = t2.Level(v)
		}
	}
	levels := bits.Len(uint(maxLvl))
	if levels == 0 {
		levels = 1
	}
	up := make([][]int32, levels)
	shared := levels
	if len(par.up) < shared {
		shared = len(par.up)
	}
	for k := 0; k < shared; k++ {
		row := make([]int32, n)
		copy(row, par.up[k])
		up[k] = row
	}
	for _, w := range moved {
		if p := t2.Parent[w]; p != tree.None {
			up[0][w] = int32(p)
		} else {
			up[0][w] = -1
		}
	}
	for k := 1; k < shared; k++ {
		prev := up[k-1]
		row := up[k]
		for _, w := range moved {
			if p := prev[w]; p >= 0 {
				row[w] = prev[p]
			} else {
				row[w] = -1
			}
		}
	}
	// The tree got deeper than the parent's table: the extra top rows have
	// no counterpart to copy, compute them in full.
	for k := shared; k < levels; k++ {
		prev := up[k-1]
		row := make([]int32, n)
		for v := 0; v < n; v++ {
			if p := prev[v]; p >= 0 {
				row[v] = prev[p]
			} else {
				row[v] = -1
			}
		}
		up[k] = row
	}
	return &liftIndex{up: up}
}

// patchAggIndex derives the subtree aggregates from the parent version's:
// three memcpys plus a bottom-up re-fold — of the affected closure in fold
// order, or, on the single-anchor climb shortcut, of the anchor's root path
// with an early exit once the fold stabilizes (a vertex whose aggregate did
// not change cannot change its parent's). An unaffected vertex's subtree is
// unchanged, so its copied aggregate — and its contribution to an affected
// parent's fold — is already correct.
func patchAggIndex(par *aggIndex, t2 *tree.Tree, plan *patchPlan) *aggIndex {
	n := t2.N()
	ix := &aggIndex{
		height: make([]int32, n),
		min:    make([]int32, n),
		max:    make([]int32, n),
	}
	copy(ix.height, par.height)
	copy(ix.min, par.min)
	copy(ix.max, par.max)
	refold := func(v int) (changed bool) {
		var hh int32
		mn, mx := int32(v), int32(v)
		for _, c := range t2.Children(v) {
			if ix.height[c]+1 > hh {
				hh = ix.height[c] + 1
			}
			if ix.min[c] < mn {
				mn = ix.min[c]
			}
			if ix.max[c] > mx {
				mx = ix.max[c]
			}
		}
		if hh == ix.height[v] && mn == ix.min[v] && mx == ix.max[v] {
			return false
		}
		ix.height[v], ix.min[v], ix.max[v] = hh, mn, mx
		return true
	}
	if plan.climbOnly {
		for v := plan.climb; v != tree.None && refold(v); v = t2.Parent[v] {
		}
		return ix
	}
	for _, v32 := range plan.affected {
		refold(int(v32))
	}
	return ix
}
