package snapquery

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tree"
)

// coreDelta converts the maintainer's update delta into the snapquery form.
func coreDelta(d *core.Delta) Delta {
	return Delta{Moved: d.Moved, Removed: d.Removed, SameTree: d.SameTree}
}

// applyRandomUpdate applies one random valid update to dd, returning false
// when the drawn update was a no-op (e.g. no edge left to delete).
func applyRandomUpdate(t *testing.T, dd *core.DynamicDFS, rng *rand.Rand) bool {
	t.Helper()
	g := dd.Frozen()
	slots := g.NumVertexSlots()
	pick := func() int {
		for {
			if v := rng.Intn(slots); g.IsVertex(v) {
				return v
			}
		}
	}
	switch rng.Intn(10) {
	case 0, 1, 2: // insert edge
		for try := 0; try < 20; try++ {
			u, v := pick(), pick()
			if u != v && !g.HasEdge(u, v) {
				if err := dd.InsertEdge(u, v); err != nil {
					t.Fatalf("InsertEdge(%d,%d): %v", u, v, err)
				}
				return true
			}
		}
		return false
	case 3, 4, 5: // delete edge
		edges := g.Edges()
		if len(edges) == 0 {
			return false
		}
		e := edges[rng.Intn(len(edges))]
		if err := dd.DeleteEdge(e.U, e.V); err != nil {
			t.Fatalf("DeleteEdge(%d,%d): %v", e.U, e.V, err)
		}
		return true
	case 6, 7, 8: // insert vertex (with a few random neighbors)
		var nbrs []int
		for i := rng.Intn(3); i > 0; i-- {
			nbrs = append(nbrs, pick())
		}
		if _, err := dd.InsertVertex(nbrs); err != nil {
			t.Fatalf("InsertVertex(%v): %v", nbrs, err)
		}
		return true
	default: // delete vertex
		if g.NumVertices() <= 3 {
			return false
		}
		v := pick()
		if err := dd.DeleteVertex(v); err != nil {
			t.Fatalf("DeleteVertex(%d): %v", v, err)
		}
		return true
	}
}

// TestDifferentialOracleRandomMixed is the patch path's differential
// oracle: a random mixed update sequence (small headroom, so pseudo-root
// relocations break the chain mid-run) with every version's handle derived
// from its predecessor. Every patched index must be structurally identical
// to a fresh build (CheckSynced) and answer identically to naive
// recomputation (checkHandle).
func TestDifferentialOracleRandomMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.GnpConnected(120, 0.05, rng)
	dd := core.New(g, core.Options{RebuildD: true, Headroom: 4})
	h := New(dd.Frozen(), dd.Tree(), dd.PseudoRoot())
	h.Warm()
	var patched, fallbacks, broken int
	for i := 0; i < 150; i++ {
		if !applyRandomUpdate(t, dd, rng) {
			continue
		}
		var nh *Handle
		if d := dd.LastDelta(); d != nil {
			nh = NewDerived(h, dd.Frozen(), dd.Tree(), dd.PseudoRoot(), coreDelta(d))
		} else {
			broken++
			nh = New(dd.Frozen(), dd.Tree(), dd.PseudoRoot())
		}
		nh.observe = func(_ string, o buildOutcome, _ time.Duration) {
			switch o {
			case outcomePatch:
				patched++
			case outcomeFallback:
				fallbacks++
			}
		}
		nh.Warm()
		if err := nh.CheckSynced(); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		checkHandle(t, nh, rng)
		h = nh
	}
	if patched == 0 {
		t.Error("random sequence never exercised the patch path")
	}
	if broken == 0 {
		t.Error("random sequence never broke the chain (expected pseudo-root relocations with Headroom=4)")
	}
	t.Logf("patched=%d fallbacks=%d chain-breaks=%d", patched, fallbacks, broken)
}

// TestDifferentialChurnFallback forces a high-churn update — deleting the
// chain's first tree edge reroots nearly the whole tree — and verifies the
// patch is declined (churn-ratio fallback) yet the fresh build stays
// correct.
func TestDifferentialChurnFallback(t *testing.T) {
	const n = 40
	g := graph.New(n)
	for v := 1; v < n; v++ {
		if err := g.InsertEdge(v-1, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.InsertEdge(0, n-1); err != nil {
		t.Fatal(err)
	}
	dd := core.NewFullyDynamic(g)
	h := New(dd.Frozen(), dd.Tree(), dd.PseudoRoot())
	h.Warm()
	if err := dd.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d := dd.LastDelta()
	if d == nil {
		t.Fatal("expected a delta from the tree-edge delete")
	}
	if 4*(len(d.Moved)+len(d.Removed)) <= dd.Tree().Live() {
		t.Fatalf("expected churn-heavy delta, got %d moved of %d live", len(d.Moved), dd.Tree().Live())
	}
	nh := NewDerived(h, dd.Frozen(), dd.Tree(), dd.PseudoRoot(), coreDelta(d))
	var fallbacks int
	nh.observe = func(_ string, o buildOutcome, _ time.Duration) {
		if o == outcomeFallback {
			fallbacks++
		}
		if o == outcomePatch {
			t.Error("churn-heavy delta was patched, want fallback")
		}
	}
	nh.Warm()
	if fallbacks != 3 {
		t.Fatalf("fallbacks=%d, want 3 (lca, lift, agg)", fallbacks)
	}
	if err := nh.CheckSynced(); err != nil {
		t.Fatal(err)
	}
	checkHandle(t, nh, rand.New(rand.NewSource(7)))
}

// TestSameTreeSharesIndexes: a back-edge update leaves the tree object
// untouched, so the derived handle shares the parent's tree indexes
// outright — same pointers, zero rebuild — while biconnectivity (which
// depends on the changed edge set) is rebuilt fresh.
func TestSameTreeSharesIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GnpConnected(80, 0.06, rng)
	dd := core.NewFullyDynamic(g)
	h := New(dd.Frozen(), dd.Tree(), dd.PseudoRoot())
	h.Warm()
	// Find a back-edge insert: any non-adjacent ancestor-descendant pair.
	tr := dd.Tree()
	var u, v int
	found := false
	for x := 0; x < g.NumVertexSlots() && !found; x++ {
		for y := 0; y < g.NumVertexSlots() && !found; y++ {
			if x != y && tr.Present(x) && tr.Present(y) && tr.IsAncestor(x, y) &&
				x != dd.PseudoRoot() && !dd.Frozen().HasEdge(x, y) {
				u, v = x, y
				found = true
			}
		}
	}
	if !found {
		t.Skip("no back-edge candidate in generated graph")
	}
	if err := dd.InsertEdge(u, v); err != nil {
		t.Fatal(err)
	}
	d := dd.LastDelta()
	if d == nil || !d.SameTree {
		t.Fatalf("delta = %+v, want SameTree", d)
	}
	if dd.Tree() != tr {
		t.Fatal("back-edge update replaced the tree object")
	}
	nh := NewDerived(h, dd.Frozen(), dd.Tree(), dd.PseudoRoot(), coreDelta(d))
	nh.Warm()
	if nh.lcaIdx.p.Load() != h.lcaIdx.p.Load() {
		t.Error("SameTree handle did not share the LCA index")
	}
	if nh.liftIx.p.Load() != h.liftIx.p.Load() {
		t.Error("SameTree handle did not share the lift index")
	}
	if nh.aggIx.p.Load() != h.aggIx.p.Load() {
		t.Error("SameTree handle did not share the agg index")
	}
	if nh.biconIx.p.Load() == h.biconIx.p.Load() {
		t.Error("SameTree handle shared the bicon index despite a changed edge set")
	}
	if err := nh.CheckSynced(); err != nil {
		t.Fatal(err)
	}
	checkHandle(t, nh, rng)
}

// TestCacheEvictionMidChain: when the parent version ages out of the LRU
// before the child's first query, the child silently falls back to a fresh
// build — no panic, no patch — and a stale incarnation occupying the parent
// key after a graph drop/recreate collision is never patched against.
func TestCacheEvictionMidChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.GnpConnected(60, 0.08, rng)
	dd := core.NewFullyDynamic(g)
	c := NewCache(2)
	key := func(v uint64) Key { return Key{Graph: "g", Version: v} }

	parentTree := dd.Tree()
	c.Handle(key(0), dd.Frozen(), dd.Tree(), dd.PseudoRoot()).Warm()
	if dd.Frozen().HasEdge(0, 1) {
		if err := dd.DeleteEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	} else if err := dd.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d := dd.LastDelta()
	if d == nil {
		t.Fatal("expected delta")
	}

	// Age version 0 out of the capacity-2 LRU before the child arrives.
	other := graph.GnpConnected(10, 0.3, rng)
	odd := core.NewFullyDynamic(other)
	c.Handle(Key{Graph: "o", Version: 0}, odd.Frozen(), odd.Tree(), odd.PseudoRoot())
	c.Handle(Key{Graph: "o", Version: 1}, odd.Frozen(), odd.Tree(), odd.PseudoRoot())
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}

	child := c.HandleDerived(key(1), dd.Frozen(), dd.Tree(), dd.PseudoRoot(),
		key(0), parentTree, coreDelta(d))
	if child.parent.Load() != nil {
		t.Fatal("child linked to an evicted parent")
	}
	child.Warm()
	if st := c.Stats(); st.Patches != 0 {
		t.Fatalf("patches=%d after parent eviction, want 0", st.Patches)
	}
	if err := child.CheckSynced(); err != nil {
		t.Fatal(err)
	}
	checkHandle(t, child, rng)

	// Drop/recreate collision: a different incarnation now owns the parent
	// key. The identity check must refuse to link, let alone patch.
	c.DropGraph("g")
	g2 := graph.GnpConnected(60, 0.08, rng)
	dd2 := core.NewFullyDynamic(g2)
	c.Handle(key(0), dd2.Frozen(), dd2.Tree(), dd2.PseudoRoot()) // stale-looking incarnation under key 0
	child2 := c.HandleDerived(key(1), dd.Frozen(), dd.Tree(), dd.PseudoRoot(),
		key(0), parentTree, coreDelta(d))
	if child2.parent.Load() != nil {
		t.Fatal("child linked across incarnations")
	}
	child2.Warm()
	if st := c.Stats(); st.Patches != 0 {
		t.Fatalf("patches=%d across incarnations, want 0", st.Patches)
	}
	checkHandle(t, child2, rng)
}

// TestConcurrentChainPatching is the -race soak: one writer rotates
// versions through a shared cache while readers chain patched handles
// across retained versions. The singleflight contract is asserted by
// accounting: every version's four index slots must be patched-or-built
// exactly once, so patches+builds == 4 × created handles.
func TestConcurrentChainPatching(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.GnpConnected(200, 0.03, rng)
	dd := core.New(g, core.Options{RebuildD: true, Headroom: 16})
	c := NewCache(32)

	type published struct {
		version    uint64
		g          graph.Adjacency
		t          *tree.Tree
		pseudo     int
		parent     uint64
		parentTree *tree.Tree
		delta      Delta
		hasDelta   bool
	}
	var latest atomic.Pointer[published]
	resolve := func(p *published) *Handle {
		key := Key{Graph: "g", Version: p.version}
		if p.hasDelta {
			return c.HandleDerived(key, p.g, p.t, p.pseudo,
				Key{Graph: "g", Version: p.parent}, p.parentTree, p.delta)
		}
		return c.Handle(key, p.g, p.t, p.pseudo)
	}
	first := &published{version: 0, g: dd.Frozen(), t: dd.Tree(), pseudo: dd.PseudoRoot()}
	latest.Store(first)
	resolve(first).Warm()

	const updates = 120
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := latest.Load()
				h := resolve(p)
				h.Warm()
				live := liveVertices(h.Tree(), h.PseudoRoot())
				u := live[rr.Intn(len(live))]
				v := live[rr.Intn(len(live))]
				if _, err := h.LCA(u, v); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.SubtreeAgg(u); err != nil {
					t.Error(err)
					return
				}
				if _, err := h.KthAncestor(v, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r))
	}

	wrng := rand.New(rand.NewSource(7))
	prev := first
	for i := 0; i < updates; i++ {
		if !applyRandomUpdate(t, dd, wrng) {
			continue
		}
		p := &published{
			version: uint64(dd.Updates()),
			g:       dd.Frozen(), t: dd.Tree(), pseudo: dd.PseudoRoot(),
		}
		if d := dd.LastDelta(); d != nil {
			p.parent, p.parentTree, p.delta, p.hasDelta = prev.version, prev.t, coreDelta(d), true
		}
		latest.Store(p)
		prev = p
		// The writer doubles as a querier of its own publication, so every
		// version enters the cache (giving the next one a parent to patch)
		// and every created handle is warmed by its creator.
		resolve(p).Warm()
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	st := c.Stats()
	// Warm() fills four slots per handle, each exactly once across all
	// concurrent warmers (the singleflight contract), and every handle
	// instance ever created — misses counts exactly those — was warmed by
	// its creator. Any double build or double patch breaks the equality.
	want := 4 * st.Misses
	if got := st.Patches + st.Builds; got != want {
		t.Fatalf("patches(%d)+builds(%d) = %d, want %d (4 × %d created handles)",
			st.Patches, st.Builds, got, want, st.Misses)
	}
	if st.Patches == 0 {
		t.Error("soak never exercised the patch path")
	}
	// The survivors must be coherent.
	h := resolve(latest.Load())
	h.Warm()
	if err := h.CheckSynced(); err != nil {
		t.Fatal(err)
	}
	checkHandle(t, h, rng)
}
