package snapquery

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bicon"
	"repro/internal/graph"
	"repro/internal/tree"
)

// Key identifies one snapshot version of one graph.
type Key struct {
	Graph   string
	Version uint64
}

// buildOutcome classifies how one index slot got its value, for the cache's
// patch-vs-build accounting.
type buildOutcome int

const (
	outcomeBuild    buildOutcome = iota // fresh build, no parent on hand
	outcomePatch                        // derived from the parent version's index
	outcomeFallback                     // parent on hand but patch declined (churn/renumber)
)

// lazy is a build-once slot: a nil-until-built atomic pointer guarded by a
// mutex that serializes the single build (the singleflight). The fast path
// is one atomic load.
type lazy[T any] struct {
	p  atomic.Pointer[T]
	mu sync.Mutex
}

// Handle answers derived queries against exactly one pinned snapshot
// version. It is immutable from the caller's perspective and safe for
// unbounded concurrent use; all mutation is the internal build-once filling
// of index slots. A Handle obtained from a Cache (or dfs.Service.Query)
// remains valid after the cache evicts it and after any number of later
// graph updates.
type Handle struct {
	key     Key
	g       graph.Adjacency
	t       *tree.Tree
	pseudo  int
	observe func(string, buildOutcome, time.Duration) // cache metrics observer (graph, outcome, cost); nil standalone

	// Differential-build state: while parent is set, each tree index first
	// tries to patch the parent handle's arrays using delta (see patch.go).
	// The reference is dropped once all three patchable slots are filled so
	// handle chains never retain more than one generation.
	parent atomic.Pointer[Handle]
	delta  Delta
	built  atomic.Int32 // patchable slots filled; parent released at 3

	planMu   sync.Mutex
	planDone bool
	plan     *patchPlan

	lcaIdx  lazy[lcaIndex]
	biconIx lazy[biconIndex]
	aggIx   lazy[aggIndex]
	liftIx  lazy[liftIndex]
}

// New builds an uncached handle over a frozen (graph, tree, pseudo root)
// triple, e.g. a retained service Snapshot or a paused maintainer. pseudo
// is the artificial forest root (tree.None when the root is a real vertex).
func New(g graph.Adjacency, t *tree.Tree, pseudo int) *Handle {
	return &Handle{key: Key{}, g: g, t: t, pseudo: pseudo}
}

// NewDerived is New for a version whose parent handle and update delta are
// on hand: the tree indexes will patch parent's arrays instead of building
// from scratch whenever the delta permits (falling back silently when it
// does not). parent must pin the version delta was measured against.
func NewDerived(parent *Handle, g graph.Adjacency, t *tree.Tree, pseudo int, delta Delta) *Handle {
	h := New(g, t, pseudo)
	if parent != nil {
		h.delta = delta
		h.parent.Store(parent)
	}
	return h
}

// Key returns the (graph, version) pair the handle is pinned to (zero for
// standalone handles).
func (h *Handle) Key() Key { return h.key }

// Version returns the pinned snapshot version.
func (h *Handle) Version() uint64 { return h.key.Version }

// Tree returns the pinned DFS tree (read-only).
func (h *Handle) Tree() *tree.Tree { return h.t }

// Graph returns the pinned graph version (read-only).
func (h *Handle) Graph() graph.Adjacency { return h.g }

// PseudoRoot returns the artificial forest root (tree.None if absent).
func (h *Handle) PseudoRoot() int { return h.pseudo }

// Warm eagerly builds every index of the bundle (the cold-path cost later
// queries would otherwise pay lazily). Concurrent-safe like every query.
func (h *Handle) Warm() {
	h.lca()
	h.bicon()
	h.agg()
	h.lift()
}

// patchPlan returns the handle's delta closure (nil = patch declined),
// computing it on first use; the three patchable slots share one plan.
func (h *Handle) patchPlan(par *Handle) *patchPlan {
	h.planMu.Lock()
	defer h.planMu.Unlock()
	if !h.planDone {
		h.plan = buildPatchPlan(par.t, h.t, h.delta)
		h.planDone = true
	}
	return h.plan
}

// slotBuilt records one patchable slot filled; after the third the parent
// reference and the plan are released so the version chain can be collected.
func (h *Handle) slotBuilt() {
	if h.built.Add(1) != 3 {
		return
	}
	h.parent.Store(nil)
	h.planMu.Lock()
	h.plan = nil
	h.planMu.Unlock()
}

// derive fills one patchable index slot under its singleflight: patch from
// the parent version when one is held and the plan allows it, else build
// fresh. Chains recurse naturally — patch typically starts by demanding the
// parent's own slot, which may itself patch from the grandparent; the lock
// order is strictly child→parent, so chained first queries cannot deadlock.
func derive[T any](h *Handle, slot *lazy[T], fresh func() *T, patch func(par *Handle, plan *patchPlan) *T) *T {
	if v := slot.p.Load(); v != nil {
		return v
	}
	slot.mu.Lock()
	defer slot.mu.Unlock()
	if v := slot.p.Load(); v != nil {
		return v
	}
	start := time.Now()
	var v *T
	outcome := outcomeBuild
	if par := h.parent.Load(); par != nil {
		if plan := h.patchPlan(par); plan != nil {
			// A patch func may still decline (nil) after inspecting the
			// parent's index — e.g. a splice over a stale shared tour.
			if v = patch(par, plan); v != nil {
				outcome = outcomePatch
			} else {
				outcome = outcomeFallback
			}
		} else {
			outcome = outcomeFallback
		}
	}
	if v == nil {
		v = fresh()
	}
	if h.observe != nil {
		h.observe(h.key.Graph, outcome, time.Since(start))
	}
	slot.p.Store(v)
	h.slotBuilt()
	return v
}

// live reports whether v is a queryable vertex: present and not the
// artificial pseudo root.
func (h *Handle) live(v int) bool { return h.t.Present(v) && v != h.pseudo }

func (h *Handle) check(op string, vs ...int) error {
	for _, v := range vs {
		if !h.live(v) {
			return fmt.Errorf("snapquery: %s: %d is not a vertex of %q@%d",
				op, v, h.key.Graph, h.key.Version)
		}
	}
	return nil
}

// ---- LCA family ----

func (h *Handle) lca() *lcaIndex {
	return derive(h, &h.lcaIdx,
		func() *lcaIndex { return buildLCAIndex(h.t) },
		func(par *Handle, plan *patchPlan) *lcaIndex {
			pix := par.lca()
			if plan.sameTree {
				return pix // identical tree object: share the index outright
			}
			if plan.shareClean {
				// Pure detachment: no live root path changed, so the parent
				// tour's range minima still land on the right LCAs for every
				// live pair. Share the arrays and only flag the staleness
				// (the tour keeps the detached vertices' occurrences).
				return &lcaIndex{tour: pix.tour, depth: pix.depth, first: pix.first,
					blockMin: pix.blockMin, sparse: pix.sparse,
					stale: pix.stale || len(h.delta.Removed) > 0}
			}
			if pix.stale {
				// Splicing needs exact segment offsets; a stale shared tour
				// has phantom entries inside them. Decline and build fresh.
				return nil
			}
			return patchLCAIndex(pix, h.t, plan)
		})
}

// LCA returns the lowest common ancestor of u and v in the snapshot's DFS
// forest, or -1 when u and v lie in different connected components (their
// only common ancestor is the artificial pseudo root).
func (h *Handle) LCA(u, v int) (int, error) {
	if err := h.check("LCA", u, v); err != nil {
		return -1, err
	}
	l := h.lca().lca(u, v)
	if l == h.pseudo {
		return -1, nil
	}
	return l, nil
}

// SameComponent reports whether u and v are connected in the snapshot.
func (h *Handle) SameComponent(u, v int) (bool, error) {
	l, err := h.LCA(u, v)
	return l >= 0, err
}

// IsAncestor reports whether a is an ancestor of v (not necessarily
// proper) in the snapshot's DFS tree.
func (h *Handle) IsAncestor(a, v int) (bool, error) {
	if err := h.check("IsAncestor", a, v); err != nil {
		return false, err
	}
	return h.t.IsAncestor(a, v), nil
}

// Depth returns v's level in the pseudo-rooted forest: component roots are
// at depth 1 (the pseudo root holds depth 0).
func (h *Handle) Depth(v int) (int, error) {
	if err := h.check("Depth", v); err != nil {
		return 0, err
	}
	return h.t.Level(v), nil
}

// TreePath returns the vertices of the unique tree path from u to v
// (inclusive), or an error when they lie in different components.
func (h *Handle) TreePath(u, v int) ([]int, error) {
	l, err := h.LCA(u, v)
	if err != nil {
		return nil, err
	}
	if l < 0 {
		return nil, fmt.Errorf("snapquery: TreePath(%d,%d): different components", u, v)
	}
	t := h.t
	path := make([]int, 0, t.Level(u)+t.Level(v)-2*t.Level(l)+1)
	for x := u; x != l; x = t.Parent[x] {
		path = append(path, x)
	}
	path = append(path, l)
	down := len(path)
	for x := v; x != l; x = t.Parent[x] {
		path = append(path, x)
	}
	// The v-side climbed bottom-up; flip it so the path reads u..l..v.
	for i, j := down, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// ---- Level ancestors ----

// liftIndex is the binary-lifting table: up[k][v] is v's 2^k-th ancestor,
// -1 above the forest (the pseudo root lifts to -1 like a real root).
type liftIndex struct {
	up [][]int32
}

func (h *Handle) lift() *liftIndex {
	return derive(h, &h.liftIx,
		func() *liftIndex { return buildLiftIndex(h.t) },
		func(par *Handle, plan *patchPlan) *liftIndex {
			pix := par.lift()
			if plan.sameTree || plan.shareClean {
				// shareClean: an unmoved vertex keeps its whole ancestor
				// chain, so every row is entry-for-entry reusable at live
				// slots; extra top rows of a now-too-tall table read -1 for
				// any live vertex, which KthAncestor already treats as
				// above-the-root. Unlike the tour, a shared table is still a
				// valid base for later row-copy patches.
				return pix
			}
			return patchLiftIndex(pix, h.t, plan, h.delta.Moved)
		})
}

func buildLiftIndex(t *tree.Tree) *liftIndex {
	n := t.N()
	maxLvl := 0
	for v := 0; v < n; v++ {
		if t.Present(v) && t.Level(v) > maxLvl {
			maxLvl = t.Level(v)
		}
	}
	levels := bits.Len(uint(maxLvl))
	if levels == 0 {
		levels = 1
	}
	up := make([][]int32, levels)
	row0 := make([]int32, n)
	for v := 0; v < n; v++ {
		if t.Present(v) && t.Parent[v] != tree.None {
			row0[v] = int32(t.Parent[v])
		} else {
			row0[v] = -1
		}
	}
	up[0] = row0
	for k := 1; k < levels; k++ {
		prev := up[k-1]
		row := make([]int32, n)
		for v := 0; v < n; v++ {
			if p := prev[v]; p >= 0 {
				row[v] = prev[p]
			} else {
				row[v] = -1
			}
		}
		up[k] = row
	}
	return &liftIndex{up: up}
}

// KthAncestor returns v's k-th ancestor within its component (k=0 is v
// itself), or -1 when the walk leaves the component (reaches the pseudo
// root or climbs past a real root). O(log n) via binary lifting.
func (h *Handle) KthAncestor(v, k int) (int, error) {
	if err := h.check("KthAncestor", v); err != nil {
		return -1, err
	}
	if k < 0 {
		return -1, fmt.Errorf("snapquery: KthAncestor(%d,%d): negative k", v, k)
	}
	ix := h.lift()
	x := int32(v)
	for b := 0; k != 0 && x >= 0; b, k = b+1, k>>1 {
		if k&1 == 0 {
			continue
		}
		if b >= len(ix.up) {
			x = -1
			break
		}
		x = ix.up[b][x]
	}
	if x < 0 || int(x) == h.pseudo {
		return -1, nil
	}
	return int(x), nil
}

// AncestorAtDepth returns the ancestor of v at the given depth (Depth
// semantics: component roots at 1), or -1 when depth is above v's
// component root or below v's own depth.
func (h *Handle) AncestorAtDepth(v, depth int) (int, error) {
	if err := h.check("AncestorAtDepth", v); err != nil {
		return -1, err
	}
	if depth < 1 || depth > h.t.Level(v) {
		return -1, nil
	}
	return h.KthAncestor(v, h.t.Level(v)-depth)
}

// ---- Subtree aggregates ----

// Agg is the aggregate over one subtree T(v).
type Agg struct {
	Size      int // number of vertices in T(v)
	Height    int // longest downward path from v (leaf = 0)
	MinVertex int // smallest vertex label in T(v)
	MaxVertex int // largest vertex label in T(v)
}

// aggIndex holds the bottom-up aggregates missing from the tree numbering
// (size and level are already maintained by tree.Build).
type aggIndex struct {
	height []int32
	min    []int32
	max    []int32
}

func (h *Handle) agg() *aggIndex {
	return derive(h, &h.aggIx,
		func() *aggIndex { return buildAggIndex(h.t) },
		func(par *Handle, plan *patchPlan) *aggIndex {
			if plan.sameTree {
				return par.agg()
			}
			return patchAggIndex(par.agg(), h.t, plan)
		})
}

func buildAggIndex(t *tree.Tree) *aggIndex {
	n := t.N()
	ix := &aggIndex{
		height: make([]int32, n),
		min:    make([]int32, n),
		max:    make([]int32, n),
	}
	// Post-order ascending: every child is finalized before its parent.
	order := make([]int32, t.Live())
	for v := 0; v < n; v++ {
		if t.Present(v) {
			order[t.Post(v)] = int32(v)
		}
	}
	for _, v32 := range order {
		v := int(v32)
		var hh int32
		mn, mx := v32, v32
		for _, c := range t.Children(v) {
			if ix.height[c]+1 > hh {
				hh = ix.height[c] + 1
			}
			if ix.min[c] < mn {
				mn = ix.min[c]
			}
			if ix.max[c] > mx {
				mx = ix.max[c]
			}
		}
		ix.height[v], ix.min[v], ix.max[v] = hh, mn, mx
	}
	return ix
}

// SubtreeSize returns |T(v)|.
func (h *Handle) SubtreeSize(v int) (int, error) {
	if err := h.check("SubtreeSize", v); err != nil {
		return 0, err
	}
	return h.t.Size(v), nil
}

// SubtreeAgg returns the aggregate of T(v): size, height, min and max
// vertex label.
func (h *Handle) SubtreeAgg(v int) (Agg, error) {
	if err := h.check("SubtreeAgg", v); err != nil {
		return Agg{}, err
	}
	ix := h.agg()
	return Agg{
		Size:      h.t.Size(v),
		Height:    int(ix.height[v]),
		MinVertex: int(ix.min[v]),
		MaxVertex: int(ix.max[v]),
	}, nil
}

// ---- Biconnectivity ----

// biconIndex caches the analysis plus the sorted result slices so repeated
// Bridges/ArticulationPoints calls are pointer loads, not re-sorts.
type biconIndex struct {
	an      *bicon.Analysis
	bridges []graph.Edge
	artic   []int
}

// bicon is deliberately outside the differential path: low-points depend on
// the global back-edge structure, so a single inserted back edge can flip
// bridges and articulation points arbitrarily far from the moved set —
// there is no subtree locality to patch along. Always a fresh build.
func (h *Handle) bicon() *biconIndex {
	if v := h.biconIx.p.Load(); v != nil {
		return v
	}
	h.biconIx.mu.Lock()
	defer h.biconIx.mu.Unlock()
	if v := h.biconIx.p.Load(); v != nil {
		return v
	}
	start := time.Now()
	an := bicon.Analyze(h.g, h.t, h.pseudo, nil)
	v := &biconIndex{an: an, bridges: an.Bridges(), artic: an.ArticulationPoints()}
	if h.observe != nil {
		h.observe(h.key.Graph, outcomeBuild, time.Since(start))
	}
	h.biconIx.p.Store(v)
	return v
}

// IsArticulation reports whether deleting v would disconnect its component.
func (h *Handle) IsArticulation(v int) (bool, error) {
	if err := h.check("IsArticulation", v); err != nil {
		return false, err
	}
	return h.bicon().an.IsArticulation(v), nil
}

// ArticulationPoints returns all articulation points in ascending order.
// Callers must not mutate the returned slice (it is shared by the handle).
func (h *Handle) ArticulationPoints() []int { return h.bicon().artic }

// Bridges returns all bridge edges in canonical ascending order. Callers
// must not mutate the returned slice (it is shared by the handle).
func (h *Handle) Bridges() []graph.Edge { return h.bicon().bridges }

// IsBridge reports whether (u,v) is a bridge of the snapshot. O(log n)
// via binary search over the canonical-sorted bridge list.
func (h *Handle) IsBridge(u, v int) (bool, error) {
	if err := h.check("IsBridge", u, v); err != nil {
		return false, err
	}
	if !h.g.HasEdge(u, v) {
		return false, fmt.Errorf("snapquery: IsBridge(%d,%d): not an edge of %q@%d",
			u, v, h.key.Graph, h.key.Version)
	}
	e := graph.Edge{U: u, V: v}.Canon()
	bridges := h.bicon().bridges
	i := sort.Search(len(bridges), func(i int) bool {
		b := bridges[i]
		return b.U > e.U || (b.U == e.U && b.V >= e.V)
	})
	return i < len(bridges) && bridges[i] == e, nil
}

// BiconnectedComponentOf returns the biconnected component ID of the tree
// edge (parent(v), v), or -1 when v is a component root (its parent edge
// does not exist).
func (h *Handle) BiconnectedComponentOf(v int) (int, error) {
	if err := h.check("BiconnectedComponentOf", v); err != nil {
		return -1, err
	}
	return h.bicon().an.ComponentOf(v), nil
}

// NumBiconnectedComponents returns the number of biconnected components.
func (h *Handle) NumBiconnectedComponents() int { return h.bicon().an.NumComponents() }

// SameBiconnectedComponent reports whether the parent tree edges of u and v
// carry the same biconnected component ID (false when either is a component
// root). This is the tree-edge labelling of the underlying analysis: two
// vertices compare equal exactly when their edges into the tree belong to
// one biconnected component.
func (h *Handle) SameBiconnectedComponent(u, v int) (bool, error) {
	if err := h.check("SameBiconnectedComponent", u, v); err != nil {
		return false, err
	}
	an := h.bicon().an
	cu, cv := an.ComponentOf(u), an.ComponentOf(v)
	return cu >= 0 && cu == cv, nil
}

// ---- Differential oracle ----

// CheckSynced verifies the handle's materialized tree indexes against fresh
// ground-up builds over the same tree — the differential oracle of the
// patch path, mirroring dstruct.D's CheckSynced. A patched index must be
// structurally identical to the fresh build on every entry a query can
// reach: the full Euler tour (splice order equals walk order), every live
// vertex's first occurrence and lifting rows, every live vertex's
// aggregates. Entries at removed-vertex slots are intentionally stale in
// patched arrays and are excluded. Slots not yet built are skipped, so the
// oracle never triggers builds itself; nil means every built index is in
// sync.
func (h *Handle) CheckSynced() error {
	t := h.t
	if got := h.lcaIdx.p.Load(); got != nil {
		want := buildLCAIndex(t)
		if got.stale {
			// A tour shared across pure detachments is the exact tour of an
			// ancestor version: dropping the occurrences of now-absent
			// vertices and collapsing the adjacent duplicates each excision
			// leaves behind must reproduce the fresh walk entry for entry,
			// and every live vertex's first[] must point at one of its own
			// occurrences (any occurrence is a valid RMQ endpoint).
			j := 0
			prev := int32(-1)
			for i := range got.tour {
				v := got.tour[i]
				if !t.Present(int(v)) || (j > 0 && v == prev) {
					continue
				}
				if j >= len(want.tour) || v != want.tour[j] || got.depth[i] != want.depth[j] {
					return fmt.Errorf("snapquery: CheckSynced: stale tour normalizes to (%d,%d) at %d, want (%d,%d)",
						v, got.depth[i], j, want.tour[min(j, len(want.tour)-1)], want.depth[min(j, len(want.tour)-1)])
				}
				prev = v
				j++
			}
			if j != len(want.tour) {
				return fmt.Errorf("snapquery: CheckSynced: stale tour normalizes to %d entries, want %d", j, len(want.tour))
			}
			for v := 0; v < t.N(); v++ {
				if t.Present(v) && (got.first[v] < 0 || int(got.first[v]) >= len(got.tour) || got.tour[got.first[v]] != int32(v)) {
					return fmt.Errorf("snapquery: CheckSynced: stale first[%d] = %d does not index an occurrence of %d", v, got.first[v], v)
				}
			}
		} else {
			if len(got.tour) != len(want.tour) {
				return fmt.Errorf("snapquery: CheckSynced: tour length %d, want %d", len(got.tour), len(want.tour))
			}
			for i := range want.tour {
				if got.tour[i] != want.tour[i] || got.depth[i] != want.depth[i] {
					return fmt.Errorf("snapquery: CheckSynced: tour[%d] = (%d,%d), want (%d,%d)",
						i, got.tour[i], got.depth[i], want.tour[i], want.depth[i])
				}
			}
			for v := 0; v < t.N(); v++ {
				if t.Present(v) && got.first[v] != want.first[v] {
					return fmt.Errorf("snapquery: CheckSynced: first[%d] = %d, want %d", v, got.first[v], want.first[v])
				}
			}
		}
	}
	if got := h.liftIx.p.Load(); got != nil {
		want := buildLiftIndex(t)
		// A table shared across pure detachments may keep rows the (now
		// shallower) tree no longer needs; those must read -1 — above the
		// forest — at every live slot.
		if len(got.up) < len(want.up) {
			return fmt.Errorf("snapquery: CheckSynced: lift has %d rows, want at least %d", len(got.up), len(want.up))
		}
		for k := range got.up {
			for v := 0; v < t.N(); v++ {
				if !t.Present(v) {
					continue
				}
				w := int32(-1)
				if k < len(want.up) {
					w = want.up[k][v]
				}
				if got.up[k][v] != w {
					return fmt.Errorf("snapquery: CheckSynced: up[%d][%d] = %d, want %d",
						k, v, got.up[k][v], w)
				}
			}
		}
	}
	if got := h.aggIx.p.Load(); got != nil {
		want := buildAggIndex(t)
		for v := 0; v < t.N(); v++ {
			if !t.Present(v) {
				continue
			}
			if got.height[v] != want.height[v] || got.min[v] != want.min[v] || got.max[v] != want.max[v] {
				return fmt.Errorf("snapquery: CheckSynced: agg[%d] = (%d,%d,%d), want (%d,%d,%d)",
					v, got.height[v], got.min[v], got.max[v], want.height[v], want.min[v], want.max[v])
			}
		}
	}
	return nil
}
