// Package snapquery is the snapshot analytics engine: a read-only query
// layer over one frozen (graph, DFS tree) pair — the state the serving
// layer publishes after every update — that memoizes the derived indexes
// classical DFS applications need instead of rebuilding them per query.
//
// A Handle pins exactly one snapshot version and lazily constructs a bundle
// of indexes over it:
//
//   - Euler-tour/sparse-table LCA (internal/lca, the paper's Theorem 5/6
//     Schieber–Vishkin stand-in) for LCA, SameComponent and TreePath;
//   - binary-lifting ancestor tables for KthAncestor / AncestorAtLevel in
//     O(log n) instead of the tree's O(depth) parent walk;
//   - bottom-up subtree aggregates (height, min/max vertex label; size and
//     depth come free from the tree numbering) for SubtreeAgg;
//   - full biconnectivity analysis (internal/bicon: articulation points,
//     bridges, biconnected-component IDs of tree edges).
//
// Each index is built exactly once per handle under a singleflight guard:
// concurrent first readers share one build (one builds, the rest block on
// it), and every later reader takes a pure atomic pointer load. Because the
// underlying snapshot structures are persistent (updates path-copy away
// from them), index construction needs no synchronization with writers.
//
// Cache retains handles in an LRU keyed by (graph, version) so a bounded
// number of hot versions keep their indexes alive while old versions age
// out. Eviction never invalidates a held Handle — it only drops the cache's
// reference; readers still holding the handle keep querying it, exactly
// like a retained Snapshot.
package snapquery

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bicon"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/tree"
)

// Key identifies one snapshot version of one graph.
type Key struct {
	Graph   string
	Version uint64
}

// lazy is a build-once slot: a nil-until-built atomic pointer guarded by a
// mutex that serializes the single build (the singleflight). The fast path
// is one atomic load.
type lazy[T any] struct {
	p  atomic.Pointer[T]
	mu sync.Mutex
}

func (l *lazy[T]) get(h *Handle, build func() *T) *T {
	if v := l.p.Load(); v != nil {
		return v
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if v := l.p.Load(); v != nil {
		return v
	}
	start := time.Now()
	v := build()
	if h.onBuild != nil {
		h.onBuild(time.Since(start))
	}
	l.p.Store(v)
	return v
}

// Handle answers derived queries against exactly one pinned snapshot
// version. It is immutable from the caller's perspective and safe for
// unbounded concurrent use; all mutation is the internal build-once filling
// of index slots. A Handle obtained from a Cache (or dfs.Service.Query)
// remains valid after the cache evicts it and after any number of later
// graph updates.
type Handle struct {
	key     Key
	g       graph.Adjacency
	t       *tree.Tree
	pseudo  int
	onBuild func(time.Duration) // cache metrics observer; nil standalone

	lcaIdx  lazy[lca.Index]
	biconIx lazy[biconIndex]
	aggIx   lazy[aggIndex]
	liftIx  lazy[liftIndex]
}

// New builds an uncached handle over a frozen (graph, tree, pseudo root)
// triple, e.g. a retained service Snapshot or a paused maintainer. pseudo
// is the artificial forest root (tree.None when the root is a real vertex).
func New(g graph.Adjacency, t *tree.Tree, pseudo int) *Handle {
	return &Handle{key: Key{}, g: g, t: t, pseudo: pseudo}
}

// Key returns the (graph, version) pair the handle is pinned to (zero for
// standalone handles).
func (h *Handle) Key() Key { return h.key }

// Version returns the pinned snapshot version.
func (h *Handle) Version() uint64 { return h.key.Version }

// Tree returns the pinned DFS tree (read-only).
func (h *Handle) Tree() *tree.Tree { return h.t }

// Graph returns the pinned graph version (read-only).
func (h *Handle) Graph() graph.Adjacency { return h.g }

// PseudoRoot returns the artificial forest root (tree.None if absent).
func (h *Handle) PseudoRoot() int { return h.pseudo }

// Warm eagerly builds every index of the bundle (the cold-path cost later
// queries would otherwise pay lazily). Concurrent-safe like every query.
func (h *Handle) Warm() {
	h.lca()
	h.bicon()
	h.agg()
	h.lift()
}

// live reports whether v is a queryable vertex: present and not the
// artificial pseudo root.
func (h *Handle) live(v int) bool { return h.t.Present(v) && v != h.pseudo }

func (h *Handle) check(op string, vs ...int) error {
	for _, v := range vs {
		if !h.live(v) {
			return fmt.Errorf("snapquery: %s: %d is not a vertex of %q@%d",
				op, v, h.key.Graph, h.key.Version)
		}
	}
	return nil
}

// ---- LCA family ----

func (h *Handle) lca() *lca.Index {
	return h.lcaIdx.get(h, func() *lca.Index { return lca.New(h.t) })
}

// LCA returns the lowest common ancestor of u and v in the snapshot's DFS
// forest, or -1 when u and v lie in different connected components (their
// only common ancestor is the artificial pseudo root).
func (h *Handle) LCA(u, v int) (int, error) {
	if err := h.check("LCA", u, v); err != nil {
		return -1, err
	}
	l := h.lca().LCA(u, v)
	if l == h.pseudo {
		return -1, nil
	}
	return l, nil
}

// SameComponent reports whether u and v are connected in the snapshot.
func (h *Handle) SameComponent(u, v int) (bool, error) {
	l, err := h.LCA(u, v)
	return l >= 0, err
}

// IsAncestor reports whether a is an ancestor of v (not necessarily
// proper) in the snapshot's DFS tree.
func (h *Handle) IsAncestor(a, v int) (bool, error) {
	if err := h.check("IsAncestor", a, v); err != nil {
		return false, err
	}
	return h.t.IsAncestor(a, v), nil
}

// Depth returns v's level in the pseudo-rooted forest: component roots are
// at depth 1 (the pseudo root holds depth 0).
func (h *Handle) Depth(v int) (int, error) {
	if err := h.check("Depth", v); err != nil {
		return 0, err
	}
	return h.t.Level(v), nil
}

// TreePath returns the vertices of the unique tree path from u to v
// (inclusive), or an error when they lie in different components.
func (h *Handle) TreePath(u, v int) ([]int, error) {
	l, err := h.LCA(u, v)
	if err != nil {
		return nil, err
	}
	if l < 0 {
		return nil, fmt.Errorf("snapquery: TreePath(%d,%d): different components", u, v)
	}
	t := h.t
	path := make([]int, 0, t.Level(u)+t.Level(v)-2*t.Level(l)+1)
	for x := u; x != l; x = t.Parent[x] {
		path = append(path, x)
	}
	path = append(path, l)
	down := len(path)
	for x := v; x != l; x = t.Parent[x] {
		path = append(path, x)
	}
	// The v-side climbed bottom-up; flip it so the path reads u..l..v.
	for i, j := down, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// ---- Level ancestors ----

// liftIndex is the binary-lifting table: up[k][v] is v's 2^k-th ancestor,
// -1 above the forest (the pseudo root lifts to -1 like a real root).
type liftIndex struct {
	up [][]int32
}

func (h *Handle) lift() *liftIndex {
	return h.liftIx.get(h, func() *liftIndex {
		t := h.t
		n := t.N()
		maxLvl := 0
		for v := 0; v < n; v++ {
			if t.Present(v) && t.Level(v) > maxLvl {
				maxLvl = t.Level(v)
			}
		}
		levels := bits.Len(uint(maxLvl))
		if levels == 0 {
			levels = 1
		}
		up := make([][]int32, levels)
		row0 := make([]int32, n)
		for v := 0; v < n; v++ {
			if t.Present(v) && t.Parent[v] != tree.None {
				row0[v] = int32(t.Parent[v])
			} else {
				row0[v] = -1
			}
		}
		up[0] = row0
		for k := 1; k < levels; k++ {
			prev := up[k-1]
			row := make([]int32, n)
			for v := 0; v < n; v++ {
				if p := prev[v]; p >= 0 {
					row[v] = prev[p]
				} else {
					row[v] = -1
				}
			}
			up[k] = row
		}
		return &liftIndex{up: up}
	})
}

// KthAncestor returns v's k-th ancestor within its component (k=0 is v
// itself), or -1 when the walk leaves the component (reaches the pseudo
// root or climbs past a real root). O(log n) via binary lifting.
func (h *Handle) KthAncestor(v, k int) (int, error) {
	if err := h.check("KthAncestor", v); err != nil {
		return -1, err
	}
	if k < 0 {
		return -1, fmt.Errorf("snapquery: KthAncestor(%d,%d): negative k", v, k)
	}
	ix := h.lift()
	x := int32(v)
	for b := 0; k != 0 && x >= 0; b, k = b+1, k>>1 {
		if k&1 == 0 {
			continue
		}
		if b >= len(ix.up) {
			x = -1
			break
		}
		x = ix.up[b][x]
	}
	if x < 0 || int(x) == h.pseudo {
		return -1, nil
	}
	return int(x), nil
}

// AncestorAtDepth returns the ancestor of v at the given depth (Depth
// semantics: component roots at 1), or -1 when depth is above v's
// component root or below v's own depth.
func (h *Handle) AncestorAtDepth(v, depth int) (int, error) {
	if err := h.check("AncestorAtDepth", v); err != nil {
		return -1, err
	}
	if depth < 1 || depth > h.t.Level(v) {
		return -1, nil
	}
	return h.KthAncestor(v, h.t.Level(v)-depth)
}

// ---- Subtree aggregates ----

// Agg is the aggregate over one subtree T(v).
type Agg struct {
	Size      int // number of vertices in T(v)
	Height    int // longest downward path from v (leaf = 0)
	MinVertex int // smallest vertex label in T(v)
	MaxVertex int // largest vertex label in T(v)
}

// aggIndex holds the bottom-up aggregates missing from the tree numbering
// (size and level are already maintained by tree.Build).
type aggIndex struct {
	height []int32
	min    []int32
	max    []int32
}

func (h *Handle) agg() *aggIndex {
	return h.aggIx.get(h, func() *aggIndex {
		t := h.t
		n := t.N()
		ix := &aggIndex{
			height: make([]int32, n),
			min:    make([]int32, n),
			max:    make([]int32, n),
		}
		// Post-order ascending: every child is finalized before its parent.
		order := make([]int32, t.Live())
		for v := 0; v < n; v++ {
			if t.Present(v) {
				order[t.Post(v)] = int32(v)
			}
		}
		for _, v32 := range order {
			v := int(v32)
			var hh int32
			mn, mx := v32, v32
			for _, c := range t.Children(v) {
				if ix.height[c]+1 > hh {
					hh = ix.height[c] + 1
				}
				if ix.min[c] < mn {
					mn = ix.min[c]
				}
				if ix.max[c] > mx {
					mx = ix.max[c]
				}
			}
			ix.height[v], ix.min[v], ix.max[v] = hh, mn, mx
		}
		return ix
	})
}

// SubtreeSize returns |T(v)|.
func (h *Handle) SubtreeSize(v int) (int, error) {
	if err := h.check("SubtreeSize", v); err != nil {
		return 0, err
	}
	return h.t.Size(v), nil
}

// SubtreeAgg returns the aggregate of T(v): size, height, min and max
// vertex label.
func (h *Handle) SubtreeAgg(v int) (Agg, error) {
	if err := h.check("SubtreeAgg", v); err != nil {
		return Agg{}, err
	}
	ix := h.agg()
	return Agg{
		Size:      h.t.Size(v),
		Height:    int(ix.height[v]),
		MinVertex: int(ix.min[v]),
		MaxVertex: int(ix.max[v]),
	}, nil
}

// ---- Biconnectivity ----

// biconIndex caches the analysis plus the sorted result slices so repeated
// Bridges/ArticulationPoints calls are pointer loads, not re-sorts.
type biconIndex struct {
	an      *bicon.Analysis
	bridges []graph.Edge
	artic   []int
}

func (h *Handle) bicon() *biconIndex {
	return h.biconIx.get(h, func() *biconIndex {
		an := bicon.Analyze(h.g, h.t, h.pseudo, nil)
		return &biconIndex{an: an, bridges: an.Bridges(), artic: an.ArticulationPoints()}
	})
}

// IsArticulation reports whether deleting v would disconnect its component.
func (h *Handle) IsArticulation(v int) (bool, error) {
	if err := h.check("IsArticulation", v); err != nil {
		return false, err
	}
	return h.bicon().an.IsArticulation(v), nil
}

// ArticulationPoints returns all articulation points in ascending order.
// Callers must not mutate the returned slice (it is shared by the handle).
func (h *Handle) ArticulationPoints() []int { return h.bicon().artic }

// Bridges returns all bridge edges in canonical ascending order. Callers
// must not mutate the returned slice (it is shared by the handle).
func (h *Handle) Bridges() []graph.Edge { return h.bicon().bridges }

// IsBridge reports whether (u,v) is a bridge of the snapshot. O(log n)
// via binary search over the canonical-sorted bridge list.
func (h *Handle) IsBridge(u, v int) (bool, error) {
	if err := h.check("IsBridge", u, v); err != nil {
		return false, err
	}
	if !h.g.HasEdge(u, v) {
		return false, fmt.Errorf("snapquery: IsBridge(%d,%d): not an edge of %q@%d",
			u, v, h.key.Graph, h.key.Version)
	}
	e := graph.Edge{U: u, V: v}.Canon()
	bridges := h.bicon().bridges
	i := sort.Search(len(bridges), func(i int) bool {
		b := bridges[i]
		return b.U > e.U || (b.U == e.U && b.V >= e.V)
	})
	return i < len(bridges) && bridges[i] == e, nil
}

// BiconnectedComponentOf returns the biconnected component ID of the tree
// edge (parent(v), v), or -1 when v is a component root (its parent edge
// does not exist).
func (h *Handle) BiconnectedComponentOf(v int) (int, error) {
	if err := h.check("BiconnectedComponentOf", v); err != nil {
		return -1, err
	}
	return h.bicon().an.ComponentOf(v), nil
}

// NumBiconnectedComponents returns the number of biconnected components.
func (h *Handle) NumBiconnectedComponents() int { return h.bicon().an.NumComponents() }

// SameBiconnectedComponent reports whether the parent tree edges of u and v
// carry the same biconnected component ID (false when either is a component
// root). This is the tree-edge labelling of the underlying analysis: two
// vertices compare equal exactly when their edges into the tree belong to
// one biconnected component.
func (h *Handle) SameBiconnectedComponent(u, v int) (bool, error) {
	if err := h.check("SameBiconnectedComponent", u, v); err != nil {
		return false, err
	}
	an := h.bicon().an
	cu, cv := an.ComponentOf(u), an.ComponentOf(v)
	return cu >= 0 && cu == cv, nil
}
