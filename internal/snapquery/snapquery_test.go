package snapquery

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bicon"
	"repro/internal/graph"
	"repro/internal/tree"
)

// ---- Naive reference implementations (the ground truth every handle
// answer is compared against). ----

func naiveLCA(t *tree.Tree, u, v, pseudo int) int {
	for t.Level(u) > t.Level(v) {
		u = t.Parent[u]
	}
	for t.Level(v) > t.Level(u) {
		v = t.Parent[v]
	}
	for u != v {
		u, v = t.Parent[u], t.Parent[v]
	}
	if u == pseudo {
		return -1
	}
	return u
}

func naiveKth(t *tree.Tree, v, k, pseudo int) int {
	for ; k > 0; k-- {
		v = t.Parent[v]
		if v == tree.None || v == pseudo {
			return -1
		}
	}
	return v
}

func naiveAgg(t *tree.Tree, v int) Agg {
	vs := t.SubtreeVertices(v, nil)
	a := Agg{Size: len(vs), MinVertex: v, MaxVertex: v}
	for _, w := range vs {
		if w < a.MinVertex {
			a.MinVertex = w
		}
		if w > a.MaxVertex {
			a.MaxVertex = w
		}
		if d := t.Level(w) - t.Level(v); d > a.Height {
			a.Height = d
		}
	}
	return a
}

func naivePath(t *tree.Tree, u, v, pseudo int) []int {
	l := naiveLCA(t, u, v, pseudo)
	if l < 0 {
		return nil
	}
	var up []int
	for x := u; x != l; x = t.Parent[x] {
		up = append(up, x)
	}
	up = append(up, l)
	var down []int
	for x := v; x != l; x = t.Parent[x] {
		down = append(down, x)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

func liveVertices(t *tree.Tree, pseudo int) []int {
	var out []int
	for _, v := range t.Vertices() {
		if v != pseudo {
			out = append(out, v)
		}
	}
	return out
}

// checkHandle compares every handle answer against naive recomputation on
// the pinned snapshot.
func checkHandle(t *testing.T, h *Handle, rng *rand.Rand) {
	t.Helper()
	tr, g, pseudo := h.Tree(), h.Graph(), h.PseudoRoot()
	live := liveVertices(tr, pseudo)
	if len(live) == 0 {
		return
	}
	an := bicon.Analyze(g, tr, pseudo, nil)
	for trial := 0; trial < 40; trial++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]

		got, err := h.LCA(u, v)
		if err != nil {
			t.Fatalf("LCA(%d,%d): %v", u, v, err)
		}
		if want := naiveLCA(tr, u, v, pseudo); got != want {
			t.Fatalf("LCA(%d,%d) = %d, naive %d", u, v, got, want)
		}

		k := rng.Intn(8)
		gotK, err := h.KthAncestor(u, k)
		if err != nil {
			t.Fatalf("KthAncestor(%d,%d): %v", u, k, err)
		}
		if want := naiveKth(tr, u, k, pseudo); gotK != want {
			t.Fatalf("KthAncestor(%d,%d) = %d, naive %d", u, k, gotK, want)
		}

		d := 1 + rng.Intn(tr.Level(u)+1)
		gotA, err := h.AncestorAtDepth(u, d)
		if err != nil {
			t.Fatalf("AncestorAtDepth(%d,%d): %v", u, d, err)
		}
		wantA := -1
		if d >= 1 && d <= tr.Level(u) {
			wantA = naiveKth(tr, u, tr.Level(u)-d, pseudo)
		}
		if gotA != wantA {
			t.Fatalf("AncestorAtDepth(%d,%d) = %d, naive %d", u, d, gotA, wantA)
		}

		gotAgg, err := h.SubtreeAgg(u)
		if err != nil {
			t.Fatalf("SubtreeAgg(%d): %v", u, err)
		}
		if want := naiveAgg(tr, u); gotAgg != want {
			t.Fatalf("SubtreeAgg(%d) = %+v, naive %+v", u, gotAgg, want)
		}
		if sz, _ := h.SubtreeSize(u); sz != gotAgg.Size {
			t.Fatalf("SubtreeSize(%d) = %d, agg size %d", u, sz, gotAgg.Size)
		}

		gotPath, err := h.TreePath(u, v)
		wantPath := naivePath(tr, u, v, pseudo)
		if wantPath == nil {
			if err == nil {
				t.Fatalf("TreePath(%d,%d) succeeded across components", u, v)
			}
		} else {
			if err != nil {
				t.Fatalf("TreePath(%d,%d): %v", u, v, err)
			}
			if len(gotPath) != len(wantPath) {
				t.Fatalf("TreePath(%d,%d) = %v, naive %v", u, v, gotPath, wantPath)
			}
			for i := range gotPath {
				if gotPath[i] != wantPath[i] {
					t.Fatalf("TreePath(%d,%d) = %v, naive %v", u, v, gotPath, wantPath)
				}
			}
		}

		gotArt, err := h.IsArticulation(u)
		if err != nil {
			t.Fatalf("IsArticulation(%d): %v", u, err)
		}
		if gotArt != an.IsArticulation(u) {
			t.Fatalf("IsArticulation(%d) = %v, fresh analysis %v", u, gotArt, an.IsArticulation(u))
		}

		gotC, err := h.BiconnectedComponentOf(u)
		if err != nil {
			t.Fatalf("BiconnectedComponentOf(%d): %v", u, err)
		}
		if gotC != an.ComponentOf(u) {
			t.Fatalf("BiconnectedComponentOf(%d) = %d, fresh %d", u, gotC, an.ComponentOf(u))
		}

		gotSame, err := h.SameBiconnectedComponent(u, v)
		if err != nil {
			t.Fatalf("SameBiconnectedComponent(%d,%d): %v", u, v, err)
		}
		wantSame := an.ComponentOf(u) >= 0 && an.ComponentOf(u) == an.ComponentOf(v)
		if gotSame != wantSame {
			t.Fatalf("SameBiconnectedComponent(%d,%d) = %v, fresh %v", u, v, gotSame, wantSame)
		}
	}

	// Whole-structure comparisons.
	wantBridges := an.Bridges()
	gotBridges := h.Bridges()
	if len(gotBridges) != len(wantBridges) {
		t.Fatalf("Bridges() = %v, fresh %v", gotBridges, wantBridges)
	}
	for i := range gotBridges {
		if gotBridges[i] != wantBridges[i] {
			t.Fatalf("Bridges() = %v, fresh %v", gotBridges, wantBridges)
		}
	}
	for _, e := range gotBridges {
		if br, err := h.IsBridge(e.U, e.V); err != nil || !br {
			t.Fatalf("IsBridge(%v) = %v, %v", e, br, err)
		}
	}
	wantArt := an.ArticulationPoints()
	gotArt := h.ArticulationPoints()
	if len(gotArt) != len(wantArt) {
		t.Fatalf("ArticulationPoints() = %v, fresh %v", gotArt, wantArt)
	}
	if h.NumBiconnectedComponents() != an.NumComponents() {
		t.Fatalf("NumBiconnectedComponents() = %d, fresh %d",
			h.NumBiconnectedComponents(), an.NumComponents())
	}
}

// TestDifferentialRandomGraphs: every handle answer equals naive
// recomputation across random graph shapes (connected, sparse with several
// components, path-heavy).
func TestDifferentialRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 12 + rng.Intn(60)
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.GnpConnected(n, 0.15, rng)
		case 1:
			g = graph.Gnp(n, 1.5/float64(n), rng) // usually disconnected
		default:
			g = graph.Broom(n, n/2)
		}
		tr := baseline.StaticDFS(g)
		h := New(g, tr, g.NumVertexSlots())
		checkHandle(t, h, rng)
	}
}

// TestSingleflightBuildsOnce: a cached handle hammered by concurrent first
// readers builds each of its four indexes exactly once.
func TestSingleflightBuildsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.GnpConnected(300, 0.05, rng)
	tr := baseline.StaticDFS(g)
	c := NewCache(4)
	h := c.Handle(Key{Graph: "g", Version: 1}, g, tr, g.NumVertexSlots())

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				u, v := r.Intn(300), r.Intn(300)
				if _, err := h.LCA(u, v); err != nil {
					panic(err)
				}
				if _, err := h.KthAncestor(u, r.Intn(5)); err != nil {
					panic(err)
				}
				if _, err := h.SubtreeAgg(v); err != nil {
					panic(err)
				}
				if _, err := h.IsArticulation(u); err != nil {
					panic(err)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Builds != 4 {
		t.Fatalf("index builds = %d, want exactly 4 (LCA, lift, agg, bicon)", st.Builds)
	}
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 0/1", st.Hits, st.Misses)
	}
}

// TestCacheLRUAndEvictionSafety: the LRU bounds resident versions, evicts
// in recency order, and eviction never invalidates a held handle.
func TestCacheLRUAndEvictionSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCache(2)
	type ver struct {
		g  *graph.Graph
		tr *tree.Tree
		h  *Handle
	}
	var vers []ver
	for i := 0; i < 4; i++ {
		g := graph.GnpConnected(40, 0.12, rng)
		tr := baseline.StaticDFS(g)
		h := c.Handle(Key{Graph: "g", Version: uint64(i)}, g, tr, g.NumVertexSlots())
		h.Warm()
		vers = append(vers, ver{g, tr, h})
	}
	st := c.Stats()
	if st.Evictions != 2 || st.Size != 2 {
		t.Fatalf("evictions=%d size=%d, want 2/2", st.Evictions, st.Size)
	}
	// The evicted handles (versions 0 and 1) still answer, identically to a
	// fresh recomputation on their pinned snapshots.
	for _, v := range vers[:2] {
		checkHandle(t, v.h, rng)
	}
	// Re-querying an evicted version is a miss that rebuilds — and evicts
	// the now-oldest resident version.
	h0b := c.Handle(Key{Graph: "g", Version: 0}, vers[0].g, vers[0].tr, vers[0].g.NumVertexSlots())
	if h0b == vers[0].h {
		t.Fatal("evicted handle returned on re-query (should be a fresh build)")
	}
	checkHandle(t, h0b, rng)
	st = c.Stats()
	if st.Misses != 5 || st.Evictions != 3 {
		t.Fatalf("misses=%d evictions=%d after requery, want 5/3", st.Misses, st.Evictions)
	}
	// A hit bumps recency: touch version 0, insert version 4, version 3
	// (not 0) should be evicted.
	c.Handle(Key{Graph: "g", Version: 0}, vers[0].g, vers[0].tr, vers[0].g.NumVertexSlots())
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("hits=%d, want 1", st.Hits)
	}
	g4 := graph.GnpConnected(40, 0.12, rng)
	c.Handle(Key{Graph: "g", Version: 4}, g4, baseline.StaticDFS(g4), g4.NumVertexSlots())
	if got := c.Handle(Key{Graph: "g", Version: 0}, vers[0].g, vers[0].tr, vers[0].g.NumVertexSlots()); got != h0b {
		t.Fatal("recently-used version 0 was evicted instead of version 3")
	}
}

// TestCacheDropGraphAndIncarnations: DropGraph purges all of a graph's
// versions, and a (graph, version) collision across incarnations is
// detected via snapshot identity instead of serving stale indexes.
func TestCacheDropGraphAndIncarnations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := NewCache(8)
	gA := graph.GnpConnected(30, 0.15, rng)
	trA := baseline.StaticDFS(gA)
	hA := c.Handle(Key{Graph: "a", Version: 1}, gA, trA, gA.NumVertexSlots())
	gB := graph.GnpConnected(30, 0.15, rng)
	trB := baseline.StaticDFS(gB)
	c.Handle(Key{Graph: "b", Version: 1}, gB, trB, gB.NumVertexSlots())

	c.DropGraph("a")
	st := c.Stats()
	if st.Size != 1 || st.Dropped != 1 || st.Evictions != 0 {
		t.Fatalf("size=%d dropped=%d evictions=%d after DropGraph, want 1/1/0", st.Size, st.Dropped, st.Evictions)
	}
	if _, err := hA.LCA(0, 1); err != nil {
		t.Fatalf("held handle broken by DropGraph: %v", err)
	}

	// Same key, different snapshot (re-created incarnation): must not alias.
	gA2 := graph.GnpConnected(30, 0.15, rng)
	trA2 := baseline.StaticDFS(gA2)
	hA2 := c.Handle(Key{Graph: "a", Version: 1}, gA2, trA2, gA2.NumVertexSlots())
	if hA2.Tree() != trA2 {
		t.Fatal("stale incarnation served from cache")
	}
	hA3 := c.Handle(Key{Graph: "a", Version: 1}, gA2, trA2, gA2.NumVertexSlots())
	if hA3 != hA2 {
		t.Fatal("same incarnation not shared")
	}
	// The re-created incarnation evicted its stale predecessor in place:
	// counted under Dropped, not capacity Evictions.
	gA3 := graph.GnpConnected(30, 0.15, rng)
	trA3 := baseline.StaticDFS(gA3)
	if h := c.Handle(Key{Graph: "a", Version: 1}, gA3, trA3, gA3.NumVertexSlots()); h == hA2 {
		t.Fatal("colliding incarnation aliased")
	}
	st = c.Stats()
	if st.Dropped != 2 || st.Evictions != 0 {
		t.Fatalf("dropped=%d evictions=%d after incarnation collision, want 2/0", st.Dropped, st.Evictions)
	}
}
