// Package stream implements the paper's semi-streaming fully dynamic DFS
// (Theorem 15): the graph's edges live in an external stream; the maintainer
// keeps only O(n) words resident (the DFS tree and per-update scratch) and
// answers every batch of independent D-queries with a single pass over the
// stream.
//
// The simulator enforces the model structurally: the edge set is reachable
// only through Stream.Pass, which counts invocations. Two pass counters are
// reported per update:
//
//   - Passes: the number of Pass invocations the simulator actually made.
//     A batch of independent queries is answered with one shared pass
//     (per-query source and walk-position maps, per-query best-hit folds),
//     so an update whose oracle traffic is all batches makes exactly one
//     physical pass per sequential batch;
//   - ScheduledPasses: the passes a synchronous-schedule execution needs —
//     the maintainer-level query rounds plus the critical-path count of the
//     engine's sequential query batches, each answerable by one shared pass
//     (Section 6.1: "the parallel queries on D made by our algorithm can be
//     answered simultaneously using a single pass").
//
// Theorem 15's O(log² n) bound is about ScheduledPasses; both are measured,
// and on single-chain updates they coincide (Passes can exceed
// ScheduledPasses only when the engine processes several independent
// component chains, whose batches the synchronous schedule overlaps).
package stream

import (
	"fmt"

	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/reroot"
	"repro/internal/tree"
)

// Stream is the external edge storage. Only Pass reads it. Alongside the
// edge slice it keeps an edge→index map so the dynamic input's own
// insert/remove mutations are O(1) instead of an O(m) scan (the map belongs
// to the input simulation, not to the maintainer's O(n) resident state).
type Stream struct {
	edges  []graph.Edge
	index  map[graph.Edge]int // canonical edge -> position in edges
	passes int64
}

// NewStream copies the edge list into external storage.
func NewStream(edges []graph.Edge) *Stream {
	s := &Stream{
		edges: make([]graph.Edge, 0, len(edges)),
		index: make(map[graph.Edge]int, len(edges)),
	}
	for _, e := range edges {
		s.insert(e)
	}
	return s
}

// Pass performs one sequential pass over the stream.
func (s *Stream) Pass(fn func(e graph.Edge)) {
	s.passes++
	for _, e := range s.edges {
		fn(e)
	}
}

// Passes returns the total number of passes made so far.
func (s *Stream) Passes() int64 { return s.passes }

// Len returns the number of edges currently in the stream.
func (s *Stream) Len() int { return len(s.edges) }

// insert and remove mutate the stream (the dynamic input itself changing;
// not counted as passes). Both are O(1): remove swap-deletes through the
// index map instead of scanning the slice.
func (s *Stream) insert(e graph.Edge) {
	c := e.Canon()
	s.index[c] = len(s.edges)
	s.edges = append(s.edges, c)
}

func (s *Stream) remove(e graph.Edge) bool {
	c := e.Canon()
	i, ok := s.index[c]
	if !ok {
		return false
	}
	last := len(s.edges) - 1
	moved := s.edges[last]
	s.edges[i] = moved
	s.index[moved] = i
	s.edges = s.edges[:last]
	delete(s.index, c)
	return true
}

// oracle answers engine queries with one pass each, using O(n) scratch.
type oracle struct {
	s *Stream
	// scratchPeak tracks the largest per-query resident scratch in words,
	// for the O(n) memory audit.
	scratchPeak int
}

func (o *oracle) note(words int) {
	if words > o.scratchPeak {
		o.scratchPeak = words
	}
}

// The single-query entry points are one-element batches, so the fold and
// tie-break rules live only in the batch executor.

func (o *oracle) EdgeToWalk(sources, walk []int, fromEnd bool, st *dstruct.Stats) (dstruct.Hit, bool) {
	ans := o.EdgeToWalkBatch([]dstruct.WalkQuery{
		{Sources: sources, Walk: walk, FromEnd: fromEnd},
	}, st)
	return ans[0].Hit, ans[0].OK
}

func (o *oracle) EdgeToWalkBySource(sources, walk []int, fromEnd bool, st *dstruct.Stats) (dstruct.Hit, bool) {
	ans := o.EdgeToWalkBatch([]dstruct.WalkQuery{
		{Sources: sources, Walk: walk, FromEnd: fromEnd, BySource: true},
	}, st)
	return ans[0].Hit, ans[0].OK
}

func (o *oracle) HasEdgeToWalk(sources, walk []int, st *dstruct.Stats) bool {
	_, ok := o.EdgeToWalk(sources, walk, true, st)
	return ok
}

// batchState is one active query's state during a coalesced batch pass:
// its source lookup (membership for EdgeToWalk, submission order for
// BySource), its walk-position index, and its running best hit. The lookup
// maps are shared across queries that pass the same underlying slice —
// the engine's batches reuse source and walk slices heavily (disjoint
// subtree sets against one shared walk), which is what keeps the resident
// scratch of a whole batch O(n) rather than O(batch·n).
type batchState struct {
	src       map[int]bool // EdgeToWalk: source membership
	order     map[int]int  // BySource: source -> first submission index
	pos       map[int]int  // walk vertex -> walk index
	fromEnd   bool
	bySource  bool
	nSources  int
	best      dstruct.Hit
	bestOrder int
	found     bool
}

// sliceKey identifies a []int by its backing storage, so lookup maps built
// from the same slice are shared within one batch.
type sliceKey struct {
	ptr *int
	n   int
}

func keyOf(s []int) sliceKey { return sliceKey{&s[0], len(s)} }

func (b *batchState) consider(u, z int) {
	p, on := b.pos[z]
	if !on {
		return
	}
	h := dstruct.Hit{U: u, Z: z, ZPos: p}
	if b.bySource {
		ord, isSrc := b.order[u]
		if !isSrc || ord > b.bestOrder {
			return
		}
		if ord < b.bestOrder {
			b.bestOrder, b.best, b.found = ord, h, true
			return
		}
		if (b.fromEnd && h.ZPos > b.best.ZPos) || (!b.fromEnd && h.ZPos < b.best.ZPos) {
			b.best = h
		}
		return
	}
	if !b.src[u] {
		return
	}
	switch {
	case !b.found:
		b.best, b.found = h, true
	case h.ZPos != b.best.ZPos:
		if (b.fromEnd && h.ZPos > b.best.ZPos) || (!b.fromEnd && h.ZPos < b.best.ZPos) {
			b.best = h
		}
	case h.U < b.best.U:
		b.best = h
	}
}

// EdgeToWalkBatch answers the whole batch with one shared pass over the
// stream — the Section 6.1 simultaneity the ScheduledPasses measure models,
// executed for real: every active query keeps its own source/walk-position
// maps and folds its own best hit per edge, with exactly the tie-break
// rules of the single-query paths, so physical Passes advance by one per
// batch instead of one per query. Trivial queries (empty sources or walk)
// are answered false without touching the stream; a batch with no active
// query costs zero passes.
func (o *oracle) EdgeToWalkBatch(qs []dstruct.WalkQuery, st *dstruct.Stats) []dstruct.WalkAnswer {
	out := make([]dstruct.WalkAnswer, len(qs))
	states := make([]*batchState, 0, len(qs))
	srcMaps := make(map[sliceKey]map[int]bool)
	orderMaps := make(map[sliceKey]map[int]int)
	posMaps := make(map[sliceKey]map[int]int)
	resident := 0
	for _, q := range qs {
		if len(q.Sources) == 0 || len(q.Walk) == 0 {
			continue
		}
		if st != nil {
			st.WalkQueries++
		}
		b := &batchState{
			fromEnd:   q.FromEnd,
			bySource:  q.BySource,
			nSources:  len(q.Sources),
			best:      dstruct.Hit{ZPos: -1},
			bestOrder: len(q.Sources),
		}
		if q.BySource {
			k := keyOf(q.Sources)
			if m, ok := orderMaps[k]; ok {
				b.order = m
			} else {
				b.order = make(map[int]int, len(q.Sources))
				for i, v := range q.Sources {
					if _, dup := b.order[v]; !dup {
						b.order[v] = i
					}
				}
				orderMaps[k] = b.order
				resident += len(q.Sources)
			}
		} else {
			k := keyOf(q.Sources)
			if m, ok := srcMaps[k]; ok {
				b.src = m
			} else {
				b.src = make(map[int]bool, len(q.Sources))
				for _, v := range q.Sources {
					b.src[v] = true
				}
				srcMaps[k] = b.src
				resident += len(q.Sources)
			}
		}
		wk := keyOf(q.Walk)
		if m, ok := posMaps[wk]; ok {
			b.pos = m
		} else {
			b.pos = make(map[int]int, len(q.Walk))
			for i, v := range q.Walk {
				b.pos[v] = i
			}
			posMaps[wk] = b.pos
			resident += len(q.Walk)
		}
		states = append(states, b)
	}
	if len(states) == 0 {
		return out
	}
	o.note(resident)
	o.s.Pass(func(e graph.Edge) {
		for _, b := range states {
			b.consider(e.U, e.V)
			b.consider(e.V, e.U)
		}
	})
	k := 0
	for i, q := range qs {
		if len(q.Sources) == 0 || len(q.Walk) == 0 {
			continue
		}
		b := states[k]
		k++
		if b.bySource {
			out[i] = dstruct.WalkAnswer{Hit: b.best, OK: b.bestOrder < b.nSources}
		} else {
			out[i] = dstruct.WalkAnswer{Hit: b.best, OK: b.found}
		}
	}
	return out
}

// Maintainer is the semi-streaming fully dynamic DFS algorithm.
type Maintainer struct {
	s      *Stream
	o      *oracle
	t      *tree.Tree
	l      *lca.Index
	pseudo int
	slots  int // graph vertex-ID slots
	alive  []bool

	lastPasses    int64
	lastScheduled int
	lastStats     reroot.Stats
	scratch       reroot.Scratch
}

// New builds the maintainer: the preprocessing DFS tree is computed from
// the initial stream (preprocessing is outside the per-update pass budget,
// as in the paper where the initial tree is given).
func New(g *graph.Graph) *Maintainer {
	m := &Maintainer{
		s:     NewStream(g.Edges()),
		slots: g.NumVertexSlots(),
	}
	m.o = &oracle{s: m.s}
	m.pseudo = m.slots + 64
	m.alive = make([]bool, m.slots)
	for v := 0; v < m.slots; v++ {
		m.alive[v] = g.IsVertex(v)
	}
	m.rebuildFromScratch(g)
	return m
}

func (m *Maintainer) rebuildFromScratch(g *graph.Graph) {
	parent := make([]int, m.pseudo+1)
	for i := range parent {
		parent[i] = tree.None
	}
	full := baselineDFS(g, m.pseudo)
	copy(parent, full)
	m.t = tree.MustBuild(m.pseudo, parent, m.present())
	m.l = lca.New(m.t)
}

// baselineDFS computes parents of a DFS forest hung under pseudo.
func baselineDFS(g *graph.Graph, pseudo int) []int {
	n := g.NumVertexSlots()
	parent := make([]int, pseudo+1)
	for i := range parent {
		parent[i] = tree.None
	}
	visited := make([]bool, n)
	snap := g.Snapshot()
	cursor := make([]int, n)
	var stack []int
	for s := 0; s < n; s++ {
		if !g.IsVertex(s) || visited[s] {
			continue
		}
		visited[s] = true
		parent[s] = pseudo
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			row := snap.Row(v)
			adv := false
			for cursor[v] < len(row) {
				w := row[cursor[v]]
				cursor[v]++
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					stack = append(stack, w)
					adv = true
					break
				}
			}
			if !adv {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return parent
}

func (m *Maintainer) present() []bool {
	p := make([]bool, m.pseudo+1)
	copy(p, m.alive)
	p[m.pseudo] = true
	return p
}

// Tree returns the current DFS tree (pseudo-rooted).
func (m *Maintainer) Tree() *tree.Tree { return m.t }

// PseudoRoot returns the pseudo root ID.
func (m *Maintainer) PseudoRoot() int { return m.pseudo }

// Stream exposes the external storage (for pass-count assertions).
func (m *Maintainer) Stream() *Stream { return m.s }

// LastPasses returns the physical passes of the most recent update.
func (m *Maintainer) LastPasses() int64 { return m.lastPasses }

// LastScheduledPasses returns the synchronous-schedule pass count of the
// most recent update (the Theorem 15 measure): the maintainer-level query
// rounds — incident-edge discovery, the pre-reroot deepest-edge batch —
// plus the engine's critical-path batch count. With the coalesced batch
// executor every one of those rounds is one physical pass, so LastPasses
// equals this whenever the engine's components form a single chain.
func (m *Maintainer) LastScheduledPasses() int { return m.lastScheduled }

// LastStats returns the rerooting statistics of the most recent update.
func (m *Maintainer) LastStats() reroot.Stats { return m.lastStats }

// ResidentWords audits the maintainer's resident memory in words: the tree
// arrays (parent, level, size, post, pre, out ≈ 6 per slot) plus the peak
// per-query scratch. All are O(n).
func (m *Maintainer) ResidentWords() int {
	return 6*m.t.N() + len(m.alive) + m.o.scratchPeak
}

func (m *Maintainer) engine() *reroot.Engine {
	return reroot.NewWithScratch(m.t, m.l, m.o, pram.NewMachine(m.t.Live()), &m.scratch)
}

// finish installs the engine's result; preBatches is the number of
// maintainer-level query rounds this update issued before (or outside) the
// engine, each of them one pass of the synchronous schedule.
func (m *Maintainer) finish(e *reroot.Engine, passesBefore int64, preBatches int) error {
	nt, err := e.Result(m.pseudo, m.present())
	if err != nil {
		return fmt.Errorf("stream: rebuilding tree: %w", err)
	}
	m.t = nt
	m.l = lca.New(nt)
	m.lastStats = e.Stats
	m.lastPasses = m.s.passes - passesBefore
	m.lastScheduled = preBatches + e.Stats.Batches
	return nil
}

func (m *Maintainer) compRoot(v int) int { return m.t.AncestorAtLevel(v, 1) }

// Snapshot reconstructs the current graph from the stream with one pass.
// It is a workload/test helper and not part of the maintainer's O(n)
// resident state (the pass is counted like any other).
func (m *Maintainer) Snapshot() *graph.Graph {
	g := graph.New(m.slots)
	for v := 0; v < m.slots; v++ {
		if !m.alive[v] {
			if err := g.DeleteVertex(v); err != nil {
				panic(err)
			}
		}
	}
	m.s.Pass(func(e graph.Edge) {
		if err := g.InsertEdge(e.U, e.V); err != nil {
			panic(err)
		}
	})
	return g
}

// lowestEdgeToPath finds the deepest edge from T(sub) to path [low..high]
// via one pass.
func (m *Maintainer) lowestEdgeToPath(sub, low, high int) (int, int, bool) {
	walk := m.t.PathUp(low, high)
	src := m.t.SubtreeVertices(sub, nil)
	hit, ok := m.o.EdgeToWalk(src, walk, false, nil)
	if !ok {
		return 0, 0, false
	}
	return hit.U, hit.Z, true
}

// lowestEdgesToPath answers lowestEdgeToPath for several disjoint subtrees
// against one shared path as a single coalesced batch — one physical pass
// for the whole family, the streaming counterpart of the core maintainer's
// batched DeleteVertex round.
func (m *Maintainer) lowestEdgesToPath(subs []int, low, high int) []dstruct.WalkAnswer {
	walk := m.t.PathUp(low, high)
	qs := make([]dstruct.WalkQuery, len(subs))
	for i, sub := range subs {
		qs[i] = dstruct.WalkQuery{
			Sources: m.t.SubtreeVertices(sub, nil),
			Walk:    walk,
			FromEnd: false,
		}
	}
	return m.o.EdgeToWalkBatch(qs, nil)
}
