// Package stream implements the paper's semi-streaming fully dynamic DFS
// (Theorem 15): the graph's edges live in an external stream; the maintainer
// keeps only O(n) words resident (the DFS tree and per-update scratch) and
// answers every batch of independent D-queries with a single pass over the
// stream.
//
// The simulator enforces the model structurally: the edge set is reachable
// only through Stream.Pass, which counts invocations. Two pass counters are
// reported per update:
//
//   - Passes: the number of Pass invocations the simulator actually made
//     (it answers each query eagerly, so concurrent queries of one batch
//     are not physically coalesced);
//   - ScheduledPasses: the passes a synchronous-schedule execution needs —
//     the critical-path count of sequential query batches, each answerable
//     by one shared pass (Section 6.1: "the parallel queries on D made by
//     our algorithm can be answered simultaneously using a single pass").
//
// Theorem 15's O(log² n) bound is about ScheduledPasses; both are measured.
package stream

import (
	"fmt"

	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/lca"
	"repro/internal/pram"
	"repro/internal/reroot"
	"repro/internal/tree"
)

// Stream is the external edge storage. Only Pass reads it.
type Stream struct {
	edges  []graph.Edge
	passes int64
}

// NewStream copies the edge list into external storage.
func NewStream(edges []graph.Edge) *Stream {
	return &Stream{edges: append([]graph.Edge(nil), edges...)}
}

// Pass performs one sequential pass over the stream.
func (s *Stream) Pass(fn func(e graph.Edge)) {
	s.passes++
	for _, e := range s.edges {
		fn(e)
	}
}

// Passes returns the total number of passes made so far.
func (s *Stream) Passes() int64 { return s.passes }

// Len returns the number of edges currently in the stream.
func (s *Stream) Len() int { return len(s.edges) }

// insert and remove mutate the stream (the dynamic input itself changing;
// not counted as passes).
func (s *Stream) insert(e graph.Edge) { s.edges = append(s.edges, e.Canon()) }

func (s *Stream) remove(e graph.Edge) bool {
	c := e.Canon()
	for i, x := range s.edges {
		if x == c {
			s.edges[i] = s.edges[len(s.edges)-1]
			s.edges = s.edges[:len(s.edges)-1]
			return true
		}
	}
	return false
}

// oracle answers engine queries with one pass each, using O(n) scratch.
type oracle struct {
	s *Stream
	// scratchPeak tracks the largest per-query resident scratch in words,
	// for the O(n) memory audit.
	scratchPeak int
}

func (o *oracle) note(words int) {
	if words > o.scratchPeak {
		o.scratchPeak = words
	}
}

func (o *oracle) EdgeToWalk(sources, walk []int, fromEnd bool, st *dstruct.Stats) (dstruct.Hit, bool) {
	if len(sources) == 0 || len(walk) == 0 {
		return dstruct.Hit{}, false
	}
	if st != nil {
		st.WalkQueries++
	}
	src := make(map[int]bool, len(sources))
	for _, v := range sources {
		src[v] = true
	}
	pos := make(map[int]int, len(walk))
	for i, v := range walk {
		pos[v] = i
	}
	o.note(len(sources) + len(walk))
	best := dstruct.Hit{ZPos: -1}
	found := false
	consider := func(u, z int) {
		p, on := pos[z]
		if !on || !src[u] {
			return
		}
		h := dstruct.Hit{U: u, Z: z, ZPos: p}
		switch {
		case !found:
			best, found = h, true
		case h.ZPos != best.ZPos:
			if (fromEnd && h.ZPos > best.ZPos) || (!fromEnd && h.ZPos < best.ZPos) {
				best = h
			}
		case h.U < best.U:
			best = h
		}
	}
	o.s.Pass(func(e graph.Edge) {
		consider(e.U, e.V)
		consider(e.V, e.U)
	})
	return best, found
}

func (o *oracle) EdgeToWalkBySource(sources, walk []int, fromEnd bool, st *dstruct.Stats) (dstruct.Hit, bool) {
	if len(sources) == 0 || len(walk) == 0 {
		return dstruct.Hit{}, false
	}
	if st != nil {
		st.WalkQueries++
	}
	order := make(map[int]int, len(sources))
	for i, v := range sources {
		if _, dup := order[v]; !dup {
			order[v] = i
		}
	}
	pos := make(map[int]int, len(walk))
	for i, v := range walk {
		pos[v] = i
	}
	o.note(len(sources) + len(walk))
	bestOrder := len(sources)
	best := dstruct.Hit{ZPos: -1}
	consider := func(u, z int) {
		p, on := pos[z]
		if !on {
			return
		}
		ord, isSrc := order[u]
		if !isSrc || ord > bestOrder {
			return
		}
		h := dstruct.Hit{U: u, Z: z, ZPos: p}
		if ord < bestOrder {
			bestOrder, best = ord, h
			return
		}
		if (fromEnd && h.ZPos > best.ZPos) || (!fromEnd && h.ZPos < best.ZPos) {
			best = h
		}
	}
	o.s.Pass(func(e graph.Edge) {
		consider(e.U, e.V)
		consider(e.V, e.U)
	})
	return best, bestOrder < len(sources)
}

func (o *oracle) HasEdgeToWalk(sources, walk []int, st *dstruct.Stats) bool {
	_, ok := o.EdgeToWalk(sources, walk, true, st)
	return ok
}

// EdgeToWalkBatch answers the batch one query at a time. The simulator is
// eager — each query costs one physical pass — while the synchronous
// schedule would answer the whole batch with a single shared pass; that
// coalesced count is what Stats.Batches / ScheduledPasses report.
func (o *oracle) EdgeToWalkBatch(qs []dstruct.WalkQuery, st *dstruct.Stats) []dstruct.WalkAnswer {
	out := make([]dstruct.WalkAnswer, len(qs))
	for i, q := range qs {
		if q.BySource {
			out[i].Hit, out[i].OK = o.EdgeToWalkBySource(q.Sources, q.Walk, q.FromEnd, st)
		} else {
			out[i].Hit, out[i].OK = o.EdgeToWalk(q.Sources, q.Walk, q.FromEnd, st)
		}
	}
	return out
}

// Maintainer is the semi-streaming fully dynamic DFS algorithm.
type Maintainer struct {
	s      *Stream
	o      *oracle
	t      *tree.Tree
	l      *lca.Index
	pseudo int
	slots  int // graph vertex-ID slots
	alive  []bool

	lastPasses    int64
	lastScheduled int
	lastStats     reroot.Stats
	scratch       reroot.Scratch
}

// New builds the maintainer: the preprocessing DFS tree is computed from
// the initial stream (preprocessing is outside the per-update pass budget,
// as in the paper where the initial tree is given).
func New(g *graph.Graph) *Maintainer {
	m := &Maintainer{
		s:     NewStream(g.Edges()),
		slots: g.NumVertexSlots(),
	}
	m.o = &oracle{s: m.s}
	m.pseudo = m.slots + 64
	m.alive = make([]bool, m.slots)
	for v := 0; v < m.slots; v++ {
		m.alive[v] = g.IsVertex(v)
	}
	m.rebuildFromScratch(g)
	return m
}

func (m *Maintainer) rebuildFromScratch(g *graph.Graph) {
	parent := make([]int, m.pseudo+1)
	for i := range parent {
		parent[i] = tree.None
	}
	full := baselineDFS(g, m.pseudo)
	copy(parent, full)
	m.t = tree.MustBuild(m.pseudo, parent, m.present())
	m.l = lca.New(m.t)
}

// baselineDFS computes parents of a DFS forest hung under pseudo.
func baselineDFS(g *graph.Graph, pseudo int) []int {
	n := g.NumVertexSlots()
	parent := make([]int, pseudo+1)
	for i := range parent {
		parent[i] = tree.None
	}
	visited := make([]bool, n)
	snap := g.Snapshot()
	cursor := make([]int, n)
	var stack []int
	for s := 0; s < n; s++ {
		if !g.IsVertex(s) || visited[s] {
			continue
		}
		visited[s] = true
		parent[s] = pseudo
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			row := snap.Row(v)
			adv := false
			for cursor[v] < len(row) {
				w := row[cursor[v]]
				cursor[v]++
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					stack = append(stack, w)
					adv = true
					break
				}
			}
			if !adv {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return parent
}

func (m *Maintainer) present() []bool {
	p := make([]bool, m.pseudo+1)
	copy(p, m.alive)
	p[m.pseudo] = true
	return p
}

// Tree returns the current DFS tree (pseudo-rooted).
func (m *Maintainer) Tree() *tree.Tree { return m.t }

// PseudoRoot returns the pseudo root ID.
func (m *Maintainer) PseudoRoot() int { return m.pseudo }

// Stream exposes the external storage (for pass-count assertions).
func (m *Maintainer) Stream() *Stream { return m.s }

// LastPasses returns the physical passes of the most recent update.
func (m *Maintainer) LastPasses() int64 { return m.lastPasses }

// LastScheduledPasses returns the synchronous-schedule pass count of the
// most recent update (the Theorem 15 measure).
func (m *Maintainer) LastScheduledPasses() int { return m.lastScheduled }

// LastStats returns the rerooting statistics of the most recent update.
func (m *Maintainer) LastStats() reroot.Stats { return m.lastStats }

// ResidentWords audits the maintainer's resident memory in words: the tree
// arrays (parent, level, size, post, pre, out ≈ 6 per slot) plus the peak
// per-query scratch. All are O(n).
func (m *Maintainer) ResidentWords() int {
	return 6*m.t.N() + len(m.alive) + m.o.scratchPeak
}

func (m *Maintainer) engine() *reroot.Engine {
	return reroot.NewWithScratch(m.t, m.l, m.o, pram.NewMachine(m.t.Live()), &m.scratch)
}

func (m *Maintainer) finish(e *reroot.Engine, passesBefore int64) error {
	nt, err := e.Result(m.pseudo, m.present())
	if err != nil {
		return fmt.Errorf("stream: rebuilding tree: %w", err)
	}
	m.t = nt
	m.l = lca.New(nt)
	m.lastStats = e.Stats
	m.lastPasses = m.s.passes - passesBefore
	m.lastScheduled = e.Stats.Batches
	return nil
}

func (m *Maintainer) compRoot(v int) int { return m.t.AncestorAtLevel(v, 1) }

// Snapshot reconstructs the current graph from the stream with one pass.
// It is a workload/test helper and not part of the maintainer's O(n)
// resident state (the pass is counted like any other).
func (m *Maintainer) Snapshot() *graph.Graph {
	g := graph.New(m.slots)
	for v := 0; v < m.slots; v++ {
		if !m.alive[v] {
			if err := g.DeleteVertex(v); err != nil {
				panic(err)
			}
		}
	}
	m.s.Pass(func(e graph.Edge) {
		if err := g.InsertEdge(e.U, e.V); err != nil {
			panic(err)
		}
	})
	return g
}

// lowestEdgeToPath finds the deepest edge from T(sub) to path [low..high]
// via one pass.
func (m *Maintainer) lowestEdgeToPath(sub, low, high int) (int, int, bool) {
	walk := m.t.PathUp(low, high)
	src := m.t.SubtreeVertices(sub, nil)
	hit, ok := m.o.EdgeToWalk(src, walk, false, nil)
	if !ok {
		return 0, 0, false
	}
	return hit.U, hit.Z, true
}
