package stream

import (
	"math/rand"
	"testing"

	"repro/internal/dstruct"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/tree"
	"repro/internal/verify"
)

// mirror applies the same updates to a plain graph so the streaming tree
// can be verified against ground truth.
func verifyAgainst(t *testing.T, m *Maintainer, g *graph.Graph, ctx string) {
	t.Helper()
	if err := verify.DFSForest(g, m.Tree(), m.PseudoRoot()); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

func TestStreamingRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(24)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		m := New(g)
		mirror := g.Clone()
		verifyAgainst(t, m, mirror, "initial")
		for step := 0; step < 25; step++ {
			switch rng.Intn(4) {
			case 0:
				if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
					if mirror.InsertEdge(e.U, e.V) == nil {
						if err := m.InsertEdge(e.U, e.V); err != nil {
							t.Fatal(err)
						}
						verifyAgainst(t, m, mirror, "ins-edge")
					}
				}
			case 1:
				if e, ok := graph.RandomExistingEdge(mirror, rng); ok {
					if mirror.DeleteEdge(e.U, e.V) == nil {
						if err := m.DeleteEdge(e.U, e.V); err != nil {
							t.Fatal(err)
						}
						verifyAgainst(t, m, mirror, "del-edge")
					}
				}
			case 2:
				var nbrs []int
				for v := 0; v < mirror.NumVertexSlots(); v++ {
					if mirror.IsVertex(v) && rng.Float64() < 0.15 {
						nbrs = append(nbrs, v)
					}
				}
				if _, err := mirror.InsertVertex(nbrs); err == nil {
					if _, err := m.InsertVertex(nbrs); err != nil {
						t.Fatal(err)
					}
					verifyAgainst(t, m, mirror, "ins-vertex")
				}
			case 3:
				if mirror.NumVertices() > 4 {
					v := rng.Intn(mirror.NumVertexSlots())
					if mirror.IsVertex(v) && mirror.DeleteVertex(v) == nil {
						if err := m.DeleteVertex(v); err != nil {
							t.Fatal(err)
						}
						verifyAgainst(t, m, mirror, "del-vertex")
					}
				}
			}
		}
	}
}

func TestScheduledPassesPolylog(t *testing.T) {
	// ScheduledPasses per update must stay within c·log²n (Theorem 15).
	rng := rand.New(rand.NewSource(149))
	for _, n := range []int{64, 256} {
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		m := New(g)
		mirror := g.Clone()
		worst := 0
		for step := 0; step < 30; step++ {
			if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
				if mirror.InsertEdge(e.U, e.V) == nil {
					if err := m.InsertEdge(e.U, e.V); err != nil {
						t.Fatal(err)
					}
					if m.LastScheduledPasses() > worst {
						worst = m.LastScheduledPasses()
					}
				}
			}
		}
		lg := int(pram.Log2Ceil(n))
		if worst > 6*lg*lg {
			t.Fatalf("n=%d: %d scheduled passes > 6·log²n=%d", n, worst, 6*lg*lg)
		}
	}
}

func TestPassCounting(t *testing.T) {
	g := graph.Cycle(16)
	m := New(g)
	before := m.Stream().Passes()
	// Back edge insert: no queries, no passes.
	if err := m.InsertEdge(0, 8); err != nil {
		t.Fatal(err)
	}
	if m.LastPasses() != 0 {
		t.Fatalf("back edge insert used %d passes", m.LastPasses())
	}
	// Tree edge delete: must use at least one pass.
	if err := m.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if m.LastPasses() == 0 {
		t.Fatal("tree edge delete used no passes")
	}
	if m.Stream().Passes() == before {
		t.Fatal("stream pass counter did not advance")
	}
}

// TestBatchPassCoalescing checks the coalesced executor directly: a batch
// of mixed queries (EdgeToWalk and BySource, both directions) costs exactly
// one physical pass and returns bit-identical answers to issuing the same
// queries one at a time.
func TestBatchPassCoalescing(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	g := graph.GnpConnected(48, 4.0/48, rng)
	m := New(g)
	tr := m.Tree()

	deep := tr.Root
	for v := 0; v < g.NumVertexSlots(); v++ {
		if tr.Present(v) && tr.Level(v) > tr.Level(deep) {
			deep = v
		}
	}
	walk := tr.PathUp(deep, tr.AncestorAtLevel(deep, 1))
	onWalk := make(map[int]bool, len(walk))
	for _, v := range walk {
		onWalk[v] = true
	}
	var sources []int
	for v := 0; v < g.NumVertexSlots(); v++ {
		if g.IsVertex(v) && !onWalk[v] {
			sources = append(sources, v)
		}
	}
	qs := []dstruct.WalkQuery{
		{Sources: sources, Walk: walk, FromEnd: true},
		{Sources: sources, Walk: walk, FromEnd: false},
		{Sources: sources, Walk: walk, FromEnd: true, BySource: true},
		{Sources: nil, Walk: walk, FromEnd: true},     // trivial: no stream touch
		{Sources: sources, Walk: nil, FromEnd: false}, // trivial: no stream touch
	}

	p0 := m.Stream().Passes()
	got := m.o.EdgeToWalkBatch(qs, nil)
	if used := m.Stream().Passes() - p0; used != 1 {
		t.Fatalf("batch of %d queries used %d passes, want 1", len(qs), used)
	}

	p1 := m.Stream().Passes()
	want := make([]dstruct.WalkAnswer, len(qs))
	for i, q := range qs {
		if q.BySource {
			want[i].Hit, want[i].OK = m.o.EdgeToWalkBySource(q.Sources, q.Walk, q.FromEnd, nil)
		} else {
			want[i].Hit, want[i].OK = m.o.EdgeToWalk(q.Sources, q.Walk, q.FromEnd, nil)
		}
	}
	if used := m.Stream().Passes() - p1; used != 3 {
		t.Fatalf("singles used %d passes, want 3 (two trivial)", used)
	}
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("query %d: batch %+v vs single %+v", i, got[i], want[i])
		}
	}

	// An all-trivial batch must not touch the stream at all.
	p2 := m.Stream().Passes()
	m.o.EdgeToWalkBatch([]dstruct.WalkQuery{{Sources: nil, Walk: walk}, {Walk: nil}}, nil)
	if m.Stream().Passes() != p2 {
		t.Fatal("trivial batch consumed a pass")
	}
}

// TestBatchedUpdatePassParity asserts LastPasses == LastScheduledPasses on
// batched updates: with the single-pass batch executor, every scheduled
// round of a single-chain update is exactly one physical pass.
func TestBatchedUpdatePassParity(t *testing.T) {
	// Hub deletion: three arm subtrees query one shared path in a single
	// coalesced batch. Physical cost is the incident-edge discovery pass
	// plus that one batch pass (the eager executor used to pay one pass per
	// arm).
	g := graph.MustFromEdges(8, []graph.Edge{
		{U: 0, V: 1},
		{U: 1, V: 2}, {U: 2, V: 3},
		{U: 1, V: 4}, {U: 4, V: 5},
		{U: 1, V: 6}, {U: 6, V: 7},
	})
	m := New(g)
	mirror := g.Clone()
	if err := m.DeleteVertex(1); err != nil {
		t.Fatal(err)
	}
	if err := mirror.DeleteVertex(1); err != nil {
		t.Fatal(err)
	}
	verifyAgainst(t, m, mirror, "hub delete")
	if m.LastPasses() != 2 {
		t.Fatalf("hub delete used %d passes, want 2 (discovery + one child batch)", m.LastPasses())
	}
	if int(m.LastPasses()) != m.LastScheduledPasses() {
		t.Fatalf("hub delete: passes %d != scheduled %d", m.LastPasses(), m.LastScheduledPasses())
	}

	// Single-chain reroots: tree-edge deletes (and the reinserts undoing
	// them) on a cycle keep the engine's component tree a chain, so the
	// physical pass count must equal the synchronous schedule exactly.
	cg := graph.Cycle(64)
	cm := New(cg)
	cmirror := cg.Clone()
	for _, e := range [][2]int{{5, 6}, {20, 21}, {40, 41}, {62, 63}} {
		for _, op := range []string{"del", "ins"} {
			var err error
			if op == "del" {
				err = cm.DeleteEdge(e[0], e[1])
				cmirror.DeleteEdge(e[0], e[1])
			} else {
				err = cm.InsertEdge(e[0], e[1])
				cmirror.InsertEdge(e[0], e[1])
			}
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainst(t, cm, cmirror, op)
			if op == "del" && cm.LastPasses() == 0 {
				t.Fatalf("%s %v: tree-edge delete used no passes", op, e)
			}
			if int(cm.LastPasses()) != cm.LastScheduledPasses() {
				t.Fatalf("%s %v: passes %d != scheduled %d",
					op, e, cm.LastPasses(), cm.LastScheduledPasses())
			}
		}
	}
}

// TestHeavyScenarioPassAccounting drives dense graphs whose deletions
// enter heavy subtrees — the workload where scenario 2's probes now ride
// speculatively in scenario 1's batch — and asserts the pass accounting
// survives the coalescing: the tree stays a valid DFS tree, physical
// passes never drop below the synchronous schedule (the charge accounting
// follows the merged batches one to one), and the scheduled count stays
// within the Theorem 15 polylog bound.
func TestHeavyScenarioPassAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	var heavyFired int
	for trial := 0; trial < 6; trial++ {
		n := 24 + rng.Intn(40)
		g := graph.GnpConnected(n, 0.25, rng)
		m := New(g)
		mirror := g.Clone()
		lg := 1
		for p := 1; p < n; p <<= 1 {
			lg++
		}
		for step := 0; step < 30; step++ {
			var err error
			if e, ok := graph.RandomExistingEdge(mirror, rng); ok && step%3 != 0 {
				if mirror.DeleteEdge(e.U, e.V) != nil {
					continue
				}
				err = m.DeleteEdge(e.U, e.V)
			} else if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
				if mirror.InsertEdge(e.U, e.V) != nil {
					continue
				}
				err = m.InsertEdge(e.U, e.V)
			} else {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			verifyAgainst(t, m, mirror, "heavy accounting")
			st := m.LastStats()
			heavyFired += st.HeavyL + st.HeavyP + st.HeavyR + st.HeavySpecial
			if int(m.LastPasses()) < m.LastScheduledPasses() {
				t.Fatalf("physical passes %d below schedule %d after merged heavy probes",
					m.LastPasses(), m.LastScheduledPasses())
			}
			if m.LastScheduledPasses() > 6*lg*lg {
				t.Fatalf("scheduled passes %d exceed polylog bound %d", m.LastScheduledPasses(), 6*lg*lg)
			}
		}
	}
	if heavyFired == 0 {
		t.Fatal("heavy scenarios never fired; workload does not cover the speculative batch")
	}
}

// TestPassesNeverBelowScheduled: the physical executor is sequential, so on
// any update it can only meet the synchronous schedule (single chain) or
// exceed it (independent chains it must serialize) — never beat it.
func TestPassesNeverBelowScheduled(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	for trial := 0; trial < 8; trial++ {
		n := 16 + rng.Intn(48)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		m := New(g)
		mirror := g.Clone()
		for step := 0; step < 25; step++ {
			if e, ok := graph.RandomExistingEdge(mirror, rng); ok && step%2 == 0 {
				if mirror.DeleteEdge(e.U, e.V) == nil {
					if err := m.DeleteEdge(e.U, e.V); err != nil {
						t.Fatal(err)
					}
				}
			} else if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
				if mirror.InsertEdge(e.U, e.V) == nil {
					if err := m.InsertEdge(e.U, e.V); err != nil {
						t.Fatal(err)
					}
				}
			} else {
				continue
			}
			if int(m.LastPasses()) < m.LastScheduledPasses() {
				t.Fatalf("physical passes %d below schedule %d",
					m.LastPasses(), m.LastScheduledPasses())
			}
		}
	}
}

func TestResidentMemoryLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	n := 256
	g := graph.GnpConnected(n, 8.0/float64(n), rng) // m ≈ 4n
	m := New(g)
	mirror := g.Clone()
	for step := 0; step < 20; step++ {
		if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
			if mirror.InsertEdge(e.U, e.V) == nil {
				if err := m.InsertEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	words := m.ResidentWords()
	if words > 16*(n+64+1) {
		t.Fatalf("resident memory %d words exceeds O(n) budget for n=%d", words, n)
	}
}

func TestStreamMutation(t *testing.T) {
	s := NewStream([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if s.Len() != 2 {
		t.Fatal("bad initial length")
	}
	s.insert(graph.Edge{U: 2, V: 0})
	if !s.remove(graph.Edge{U: 1, V: 0}) {
		t.Fatal("canonical removal failed")
	}
	if s.remove(graph.Edge{U: 5, V: 6}) {
		t.Fatal("removed nonexistent edge")
	}
	count := 0
	s.Pass(func(e graph.Edge) { count++ })
	if count != 2 || s.Passes() != 1 {
		t.Fatalf("count=%d passes=%d", count, s.Passes())
	}
}

func TestStreamErrorPaths(t *testing.T) {
	m := New(graph.Path(4))
	if err := m.InsertEdge(0, 0); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := m.DeleteEdge(0, 3); err == nil {
		t.Fatal("missing edge deletion accepted")
	}
	if err := m.DeleteVertex(77); err == nil {
		t.Fatal("missing vertex deletion accepted")
	}
	if _, err := m.InsertVertex([]int{99}); err == nil {
		t.Fatal("bad neighbor accepted")
	}
	// State must remain valid after the rejected updates.
	if err := verify.DFSForest(graph.Path(4), m.Tree(), m.PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	_ = tree.None
}
