package stream

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/tree"
	"repro/internal/verify"
)

// mirror applies the same updates to a plain graph so the streaming tree
// can be verified against ground truth.
func verifyAgainst(t *testing.T, m *Maintainer, g *graph.Graph, ctx string) {
	t.Helper()
	if err := verify.DFSForest(g, m.Tree(), m.PseudoRoot()); err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
}

func TestStreamingRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(24)
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		m := New(g)
		mirror := g.Clone()
		verifyAgainst(t, m, mirror, "initial")
		for step := 0; step < 25; step++ {
			switch rng.Intn(4) {
			case 0:
				if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
					if mirror.InsertEdge(e.U, e.V) == nil {
						if err := m.InsertEdge(e.U, e.V); err != nil {
							t.Fatal(err)
						}
						verifyAgainst(t, m, mirror, "ins-edge")
					}
				}
			case 1:
				if e, ok := graph.RandomExistingEdge(mirror, rng); ok {
					if mirror.DeleteEdge(e.U, e.V) == nil {
						if err := m.DeleteEdge(e.U, e.V); err != nil {
							t.Fatal(err)
						}
						verifyAgainst(t, m, mirror, "del-edge")
					}
				}
			case 2:
				var nbrs []int
				for v := 0; v < mirror.NumVertexSlots(); v++ {
					if mirror.IsVertex(v) && rng.Float64() < 0.15 {
						nbrs = append(nbrs, v)
					}
				}
				if _, err := mirror.InsertVertex(nbrs); err == nil {
					if _, err := m.InsertVertex(nbrs); err != nil {
						t.Fatal(err)
					}
					verifyAgainst(t, m, mirror, "ins-vertex")
				}
			case 3:
				if mirror.NumVertices() > 4 {
					v := rng.Intn(mirror.NumVertexSlots())
					if mirror.IsVertex(v) && mirror.DeleteVertex(v) == nil {
						if err := m.DeleteVertex(v); err != nil {
							t.Fatal(err)
						}
						verifyAgainst(t, m, mirror, "del-vertex")
					}
				}
			}
		}
	}
}

func TestScheduledPassesPolylog(t *testing.T) {
	// ScheduledPasses per update must stay within c·log²n (Theorem 15).
	rng := rand.New(rand.NewSource(149))
	for _, n := range []int{64, 256} {
		g := graph.GnpConnected(n, 3.0/float64(n), rng)
		m := New(g)
		mirror := g.Clone()
		worst := 0
		for step := 0; step < 30; step++ {
			if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
				if mirror.InsertEdge(e.U, e.V) == nil {
					if err := m.InsertEdge(e.U, e.V); err != nil {
						t.Fatal(err)
					}
					if m.LastScheduledPasses() > worst {
						worst = m.LastScheduledPasses()
					}
				}
			}
		}
		lg := int(pram.Log2Ceil(n))
		if worst > 6*lg*lg {
			t.Fatalf("n=%d: %d scheduled passes > 6·log²n=%d", n, worst, 6*lg*lg)
		}
	}
}

func TestPassCounting(t *testing.T) {
	g := graph.Cycle(16)
	m := New(g)
	before := m.Stream().Passes()
	// Back edge insert: no queries, no passes.
	if err := m.InsertEdge(0, 8); err != nil {
		t.Fatal(err)
	}
	if m.LastPasses() != 0 {
		t.Fatalf("back edge insert used %d passes", m.LastPasses())
	}
	// Tree edge delete: must use at least one pass.
	if err := m.DeleteEdge(3, 4); err != nil {
		t.Fatal(err)
	}
	if m.LastPasses() == 0 {
		t.Fatal("tree edge delete used no passes")
	}
	if m.Stream().Passes() == before {
		t.Fatal("stream pass counter did not advance")
	}
}

func TestResidentMemoryLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	n := 256
	g := graph.GnpConnected(n, 8.0/float64(n), rng) // m ≈ 4n
	m := New(g)
	mirror := g.Clone()
	for step := 0; step < 20; step++ {
		if e, ok := graph.RandomEdgeNotIn(mirror, rng); ok {
			if mirror.InsertEdge(e.U, e.V) == nil {
				if err := m.InsertEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	words := m.ResidentWords()
	if words > 16*(n+64+1) {
		t.Fatalf("resident memory %d words exceeds O(n) budget for n=%d", words, n)
	}
}

func TestStreamMutation(t *testing.T) {
	s := NewStream([]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if s.Len() != 2 {
		t.Fatal("bad initial length")
	}
	s.insert(graph.Edge{U: 2, V: 0})
	if !s.remove(graph.Edge{U: 1, V: 0}) {
		t.Fatal("canonical removal failed")
	}
	if s.remove(graph.Edge{U: 5, V: 6}) {
		t.Fatal("removed nonexistent edge")
	}
	count := 0
	s.Pass(func(e graph.Edge) { count++ })
	if count != 2 || s.Passes() != 1 {
		t.Fatalf("count=%d passes=%d", count, s.Passes())
	}
}

func TestStreamErrorPaths(t *testing.T) {
	m := New(graph.Path(4))
	if err := m.InsertEdge(0, 0); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := m.DeleteEdge(0, 3); err == nil {
		t.Fatal("missing edge deletion accepted")
	}
	if err := m.DeleteVertex(77); err == nil {
		t.Fatal("missing vertex deletion accepted")
	}
	if _, err := m.InsertVertex([]int{99}); err == nil {
		t.Fatal("bad neighbor accepted")
	}
	// State must remain valid after the rejected updates.
	if err := verify.DFSForest(graph.Path(4), m.Tree(), m.PseudoRoot()); err != nil {
		t.Fatal(err)
	}
	_ = tree.None
}
