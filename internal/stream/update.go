package stream

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/reroot"
	"repro/internal/tree"
)

// InsertEdge processes an edge insertion (reduction case ii).
func (m *Maintainer) InsertEdge(u, v int) error {
	if !m.isVertex(u) || !m.isVertex(v) || u == v {
		return fmt.Errorf("stream: bad edge (%d,%d)", u, v)
	}
	p0 := m.s.passes
	m.s.insert(graph.Edge{U: u, V: v})
	w := m.l.LCA(u, v)
	if w == u || w == v {
		return m.noop(p0)
	}
	vPrime := m.t.ChildToward(w, v)
	e := m.engine()
	if err := e.Reroot(vPrime, v, u); err != nil {
		return fmt.Errorf("stream: insert edge (%d,%d): %w", u, v, err)
	}
	return m.finish(e, p0, 0)
}

// DeleteEdge processes an edge deletion (reduction case i).
func (m *Maintainer) DeleteEdge(u, v int) error {
	p0 := m.s.passes
	if !m.s.remove(graph.Edge{U: u, V: v}) {
		return fmt.Errorf("stream: no edge (%d,%d)", u, v)
	}
	if m.t.Parent[v] != u && m.t.Parent[u] != v {
		return m.noop(p0)
	}
	if m.t.Parent[u] == v {
		u, v = v, u
	}
	e := m.engine()
	// One maintainer-level query round (one pass) locates the deepest edge
	// from T(v) to the path above before the engine runs.
	if inside, on, ok := m.lowestEdgeToPath(v, u, m.compRoot(u)); ok {
		if err := e.Reroot(v, inside, on); err != nil {
			return fmt.Errorf("stream: delete edge (%d,%d): %w", u, v, err)
		}
	} else {
		e.SetParent(v, m.pseudo)
	}
	return m.finish(e, p0, 1)
}

// DeleteVertex processes a vertex deletion (reduction case iii). Its
// incident edges are discovered with one pass.
func (m *Maintainer) DeleteVertex(u int) error {
	if !m.isVertex(u) {
		return fmt.Errorf("stream: no vertex %d", u)
	}
	p0 := m.s.passes
	var incident []graph.Edge
	m.s.Pass(func(e graph.Edge) {
		if e.U == u || e.V == u {
			incident = append(incident, e)
		}
	})
	for _, e := range incident {
		m.s.remove(e)
	}
	m.alive[u] = false
	pu := m.t.Parent[u]
	children := m.t.Children(u)
	e := m.engine()
	e.SetParent(u, tree.None)
	pre := 1 // the incident-edge discovery pass above
	if pu == m.pseudo {
		// u was a component root: no path above to reattach through.
		for _, vi := range children {
			e.SetParent(vi, m.pseudo)
		}
		return m.finish(e, p0, pre)
	}
	// The per-child deepest-edge queries share one path and are independent
	// of each other: one coalesced batch, one pass, mirroring the core
	// maintainer's DeleteVertex round.
	if len(children) > 0 {
		answers := m.lowestEdgesToPath(children, pu, m.compRoot(pu))
		pre++
		for i, vi := range children {
			if answers[i].OK {
				if err := e.Reroot(vi, answers[i].Hit.U, answers[i].Hit.Z); err != nil {
					return fmt.Errorf("stream: delete vertex %d: %w", u, err)
				}
			} else {
				e.SetParent(vi, m.pseudo)
			}
		}
	}
	return m.finish(e, p0, pre)
}

// InsertVertex processes a vertex insertion (reduction case iv) and returns
// the new vertex ID.
func (m *Maintainer) InsertVertex(neighbors []int) (int, error) {
	for _, w := range neighbors {
		if !m.isVertex(w) {
			return -1, fmt.Errorf("stream: neighbor %d not a vertex", w)
		}
	}
	u := m.slots
	m.slots++
	if u >= m.pseudo {
		return -1, fmt.Errorf("stream: vertex headroom exhausted")
	}
	m.alive = append(m.alive, true)
	p0 := m.s.passes
	for _, w := range neighbors {
		m.s.insert(graph.Edge{U: u, V: w})
	}
	e := m.engine()
	if len(neighbors) == 0 {
		e.SetParent(u, m.pseudo)
		return u, m.finish(e, p0, 0)
	}
	vj := neighbors[0]
	for _, v := range neighbors[1:] {
		if m.t.Level(v) < m.t.Level(vj) {
			vj = v
		}
	}
	e.SetParent(u, vj)
	seen := make(map[int]bool)
	for _, vi := range neighbors {
		if vi == vj {
			continue
		}
		a := m.l.LCA(vi, vj)
		if a == vi {
			continue
		}
		vPrime := m.t.ChildToward(a, vi)
		if seen[vPrime] {
			continue
		}
		seen[vPrime] = true
		if err := e.Reroot(vPrime, vi, u); err != nil {
			return -1, fmt.Errorf("stream: insert vertex: %w", err)
		}
	}
	return u, m.finish(e, p0, 0)
}

func (m *Maintainer) isVertex(v int) bool {
	return v >= 0 && v < m.slots && m.alive[v]
}

// noop finalizes an update that left the tree unchanged.
func (m *Maintainer) noop(p0 int64) error {
	m.lastPasses = m.s.passes - p0
	m.lastScheduled = 0
	m.lastStats = reroot.Stats{}
	return nil
}
