package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: for any random recursive tree, the DFS-numbering invariants the
// rest of the repository depends on all hold simultaneously.
func TestQuickNumberingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(uint(seed)%96)
		parent := make([]int, n)
		parent[0] = None
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr, err := Build(0, parent, nil)
		if err != nil {
			return false
		}
		// 1. post is a permutation of 0..n-1.
		seen := make([]bool, n)
		for v := 0; v < n; v++ {
			p := tr.Post(v)
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		for v := 1; v < n; v++ {
			// 2. parent's post exceeds child's.
			if tr.Post(parent[v]) <= tr.Post(v) {
				return false
			}
			// 3. levels increase by one along tree edges.
			if tr.Level(v) != tr.Level(parent[v])+1 {
				return false
			}
			// 4. sizes telescope.
			if tr.Size(parent[v]) <= tr.Size(v) {
				return false
			}
		}
		// 5. subtree post-order interval is contiguous:
		//    [post(v)-size(v)+1, post(v)].
		for v := 0; v < n; v++ {
			lo := tr.Post(v) - tr.Size(v) + 1
			for _, u := range tr.SubtreeVertices(v, nil) {
				if tr.Post(u) < lo || tr.Post(u) > tr.Post(v) {
					return false
				}
			}
		}
		// 6. root size is n.
		return tr.Size(0) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: IsAncestor agrees with the parent-walk definition for all pairs
// of a random tree.
func TestQuickAncestorComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(uint(seed)%40)
		parent := make([]int, n)
		parent[0] = None
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		tr := MustBuild(0, parent, nil)
		for a := 0; a < n; a++ {
			for v := 0; v < n; v++ {
				want := false
				for x := v; x != None; x = parent[x] {
					if x == a {
						want = true
						break
					}
				}
				if tr.IsAncestor(a, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
