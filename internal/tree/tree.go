// Package tree provides the rooted-tree toolkit the dynamic-DFS algorithms
// run on: parent/children arrays, Euler tour, post-order numbering, levels
// and subtree sizes (the functionality of Tarjan–Vishkin, Theorem 4 of the
// paper), plus path and ancestry helpers.
//
// A Tree is immutable after Build as far as readers are concerned; the
// dynamic algorithms either build a fresh Tree for each updated DFS tree
// (the paper's T*_i) or, when the owner knows no reader retains the old
// tree, renumber one in place with Rebuild to keep the per-update hot path
// allocation-free.
package tree

import "fmt"

// None marks the absence of a vertex (e.g. the root's parent).
const None = -1

// Tree is a rooted forest over vertex IDs 0..n-1. Vertices with Parent ==
// None and Present == false are holes (deleted vertices); the root has
// Parent == None and Present == true.
type Tree struct {
	Root     int
	Parent   []int
	present  []bool
	children [][]int

	// Numbering computed at Build time:
	post  []int // post-order index (0..live-1); -1 for holes
	pre   []int // pre-order (entry) index; -1 for holes
	out   []int // exit counter for ancestor tests (pre/out interval nesting)
	level []int // depth from root (root = 0)
	size  []int // subtree sizes

	live int
}

// Build constructs a Tree from a parent array. parent[root] must be None.
// present[v]==false marks holes; present may be nil meaning all present.
func Build(root int, parent []int, present []bool) (*Tree, error) {
	t := &Tree{}
	if err := t.Rebuild(root, parent, present); err != nil {
		return nil, err
	}
	return t, nil
}

// Rebuild reconstructs t in place from a parent array, reusing every buffer
// (parent, presence, children rows, and the pre/post/out/level/size
// numbering arrays) that still has capacity. The fully dynamic maintainer
// rebuilds its tree after every update; Rebuild keeps that hot path
// allocation-light, mirroring the in-place rebuilds of D and the LCA index.
//
// Rebuild must only be used when the owner knows no reader retains the old
// tree (the serving layer publishes persistent per-update trees instead).
// On error the tree is left in an unspecified state and must not be queried.
func (t *Tree) Rebuild(root int, parent []int, present []bool) error {
	n := len(parent)
	t.Root = root
	t.Parent = append(t.Parent[:0], parent...)
	t.present = resizeBools(t.present, n)
	t.post = resizeInts(t.post, n)
	t.pre = resizeInts(t.pre, n)
	t.out = resizeInts(t.out, n)
	t.level = resizeInts(t.level, n)
	t.size = resizeInts(t.size, n)
	if cap(t.children) >= n {
		t.children = t.children[:n]
	} else {
		old := t.children
		t.children = make([][]int, n)
		copy(t.children, old)
	}
	for v := 0; v < n; v++ {
		t.children[v] = t.children[v][:0]
		t.present[v] = present == nil || present[v]
		t.post[v], t.pre[v], t.out[v], t.level[v] = -1, -1, -1, -1
		t.size[v] = 0 // Build-equivalent: holes report Size 0, not a stale value
	}
	t.live = 0
	if root < 0 || root >= n || !t.present[root] {
		return fmt.Errorf("tree: invalid root %d", root)
	}
	if parent[root] != None {
		return fmt.Errorf("tree: root %d has parent %d", root, parent[root])
	}
	for v := 0; v < n; v++ {
		if !t.present[v] {
			if parent[v] != None {
				return fmt.Errorf("tree: hole %d has parent", v)
			}
			continue
		}
		t.live++
		p := parent[v]
		if v == root {
			continue
		}
		if p < 0 || p >= n || !t.present[p] {
			return fmt.Errorf("tree: vertex %d has invalid parent %d", v, p)
		}
		t.children[p] = append(t.children[p], v)
	}
	return t.number()
}

func resizeInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// MustBuild is Build that panics on error.
func MustBuild(root int, parent []int, present []bool) *Tree {
	t, err := Build(root, parent, present)
	if err != nil {
		panic(err)
	}
	return t
}

// MustRebuild is Rebuild that panics on error.
func (t *Tree) MustRebuild(root int, parent []int, present []bool) {
	if err := t.Rebuild(root, parent, present); err != nil {
		panic(err)
	}
}

// number runs one iterative DFS from the root assigning pre/post/out/level/
// size. It also validates that the parent array is acyclic and spans all
// present vertices.
func (t *Tree) number() error {
	type frame struct {
		v, ci int
	}
	stack := make([]frame, 0, t.live)
	stack = append(stack, frame{t.Root, 0})
	t.level[t.Root] = 0
	preC, postC := 0, 0
	t.pre[t.Root] = preC
	preC++
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci < len(t.children[f.v]) {
			c := t.children[f.v][f.ci]
			f.ci++
			if t.pre[c] >= 0 {
				return fmt.Errorf("tree: cycle through %d", c)
			}
			t.level[c] = t.level[f.v] + 1
			t.pre[c] = preC
			preC++
			visited++
			stack = append(stack, frame{c, 0})
			continue
		}
		v := f.v
		stack = stack[:len(stack)-1]
		t.post[v] = postC
		postC++
		t.out[v] = preC
		sz := 1
		for _, c := range t.children[v] {
			sz += t.size[c]
		}
		t.size[v] = sz
	}
	if visited != t.live {
		return fmt.Errorf("tree: %d of %d present vertices reachable from root", visited, t.live)
	}
	return nil
}

// N returns the number of vertex slots.
func (t *Tree) N() int { return len(t.Parent) }

// Live returns the number of present vertices.
func (t *Tree) Live() int { return t.live }

// Present reports whether v is a live vertex of the tree.
func (t *Tree) Present(v int) bool { return v >= 0 && v < len(t.present) && t.present[v] }

// Children returns the children of v in build order. Callers must not mutate.
func (t *Tree) Children(v int) []int { return t.children[v] }

// Post returns the post-order index of v (unique in 0..Live-1).
func (t *Tree) Post(v int) int { return t.post[v] }

// PostInto copies the post-order numbering into dst, reallocating only when
// dst lacks capacity: dst[v] = Post(v), -1 for holes. The incremental D
// maintenance path uses it to refresh its relocatable order keys in one bulk
// pass after a reroot has renumbered the tree.
func (t *Tree) PostInto(dst []int) []int {
	dst = resizeInts(dst, len(t.post))
	copy(dst, t.post)
	return dst
}

// Pre returns the pre-order (DFS entry) index of v.
func (t *Tree) Pre(v int) int { return t.pre[v] }

// Level returns the depth of v (root has level 0).
func (t *Tree) Level(v int) int { return t.level[v] }

// Size returns |T(v)|, the number of vertices in the subtree rooted at v.
func (t *Tree) Size(v int) int { return t.size[v] }

// IsAncestor reports whether a is an ancestor of v (not necessarily proper):
// pre[a] <= pre[v] < out[a].
func (t *Tree) IsAncestor(a, v int) bool {
	return t.pre[a] <= t.pre[v] && t.pre[v] < t.out[a]
}

// InSubtree reports whether v lies in T(w). Identical to IsAncestor(w, v);
// provided for readability at call sites phrased in subtree terms.
func (t *Tree) InSubtree(v, w int) bool { return t.IsAncestor(w, v) }

// PathLen returns the number of vertices on the tree path between
// ancestor-descendant pair (a "down" below or equal to "up"), i.e.
// level(down)-level(up)+1. It panics if up is not an ancestor of down.
func (t *Tree) PathLen(up, down int) int {
	if !t.IsAncestor(up, down) {
		panic(fmt.Sprintf("tree: PathLen(%d,%d): not ancestor-descendant", up, down))
	}
	return t.level[down] - t.level[up] + 1
}

// PathUp returns the vertices of path(down, up) listed from down to up,
// where up must be an ancestor of down.
func (t *Tree) PathUp(down, up int) []int {
	if !t.IsAncestor(up, down) {
		panic(fmt.Sprintf("tree: PathUp(%d,%d): not ancestor-descendant", down, up))
	}
	out := make([]int, 0, t.level[down]-t.level[up]+1)
	for v := down; ; v = t.Parent[v] {
		out = append(out, v)
		if v == up {
			return out
		}
	}
}

// AncestorAtLevel returns the ancestor of v at the given level (walking
// parent pointers; O(level(v)-lvl)).
func (t *Tree) AncestorAtLevel(v, lvl int) int {
	if lvl > t.level[v] || lvl < 0 {
		panic(fmt.Sprintf("tree: AncestorAtLevel(%d,%d): level out of range", v, lvl))
	}
	for t.level[v] > lvl {
		v = t.Parent[v]
	}
	return v
}

// ChildToward returns the child c of a such that descendant d ∈ T(c).
// a must be a proper ancestor of d. O(level difference) via parent walk.
func (t *Tree) ChildToward(a, d int) int {
	if a == d || !t.IsAncestor(a, d) {
		panic(fmt.Sprintf("tree: ChildToward(%d,%d): not proper ancestor", a, d))
	}
	return t.AncestorAtLevel(d, t.level[a]+1)
}

// SubtreeVertices appends the vertices of T(v) to buf in pre-order.
func (t *Tree) SubtreeVertices(v int, buf []int) []int {
	buf = append(buf, v)
	for _, c := range t.children[v] {
		buf = t.SubtreeVertices(c, buf)
	}
	return buf
}

// Vertices returns all present vertices in increasing ID order.
func (t *Tree) Vertices() []int {
	out := make([]int, 0, t.live)
	for v := range t.present {
		if t.present[v] {
			out = append(out, v)
		}
	}
	return out
}

// EulerTour returns the Euler tour of the tree as (tour, first) where tour
// lists vertices of the 2·live-1 step walk and first[v] is the index of v's
// first occurrence. Holes have first == -1. This is the input to the sparse
// table LCA structure.
func (t *Tree) EulerTour() (tour []int, first []int) {
	return t.EulerTourInto(nil, nil)
}

// EulerTourInto is EulerTour reusing the capacity of the supplied slices,
// for callers that recompute the tour once per update.
func (t *Tree) EulerTourInto(tour []int, first []int) ([]int, []int) {
	n := len(t.present)
	if cap(first) >= n {
		first = first[:n]
	} else {
		first = make([]int, n)
	}
	for i := range first {
		first[i] = -1
	}
	if cap(tour) >= 2*t.live-1 {
		tour = tour[:0]
	} else {
		tour = make([]int, 0, 2*t.live-1)
	}
	type frame struct{ v, ci int }
	stack := []frame{{t.Root, 0}}
	first[t.Root] = 0
	tour = append(tour, t.Root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci < len(t.children[f.v]) {
			c := t.children[f.v][f.ci]
			f.ci++
			if first[c] < 0 {
				first[c] = len(tour)
			}
			tour = append(tour, c)
			stack = append(stack, frame{c, 0})
			continue
		}
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			tour = append(tour, stack[len(stack)-1].v)
		}
	}
	return tour, first
}
