package tree

import (
	"math/rand"
	"testing"
)

// chain builds the path tree 0->1->...->n-1 rooted at 0.
func chain(n int) *Tree {
	parent := make([]int, n)
	parent[0] = None
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return MustBuild(0, parent, nil)
}

// randomTree builds a random recursive tree on n vertices rooted at 0.
func randomTree(n int, rng *rand.Rand) *Tree {
	parent := make([]int, n)
	parent[0] = None
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return MustBuild(0, parent, nil)
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(0, []int{1, 0}, nil); err == nil {
		t.Fatal("root with parent accepted")
	}
	if _, err := Build(0, []int{None, 2, 1}, nil); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := Build(0, []int{None, None}, nil); err == nil {
		t.Fatal("second root (unreachable vertex) accepted")
	}
	if _, err := Build(0, []int{None, 5}, nil); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
	if _, err := Build(1, []int{None, None}, []bool{false, true}); err != nil {
		t.Fatalf("hole with None parent rejected: %v", err)
	}
	if _, err := Build(0, []int{None, 0}, []bool{true, false}); err == nil {
		t.Fatal("hole with parent accepted")
	}
}

func TestChainNumbering(t *testing.T) {
	tr := chain(5)
	for v := 0; v < 5; v++ {
		if tr.Level(v) != v {
			t.Fatalf("Level(%d)=%d want %d", v, tr.Level(v), v)
		}
		if tr.Size(v) != 5-v {
			t.Fatalf("Size(%d)=%d want %d", v, tr.Size(v), 5-v)
		}
		if tr.Post(v) != 4-v {
			t.Fatalf("Post(%d)=%d want %d", v, tr.Post(v), 4-v)
		}
		if tr.Pre(v) != v {
			t.Fatalf("Pre(%d)=%d want %d", v, tr.Pre(v), v)
		}
	}
}

func TestAncestorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTree(80, rng)
	// Reference ancestor check by walking parents.
	isAnc := func(a, v int) bool {
		for ; v != None; v = tr.Parent[v] {
			if v == a {
				return true
			}
		}
		return false
	}
	for trial := 0; trial < 500; trial++ {
		a, v := rng.Intn(80), rng.Intn(80)
		if got, want := tr.IsAncestor(a, v), isAnc(a, v); got != want {
			t.Fatalf("IsAncestor(%d,%d)=%v want %v", a, v, got, want)
		}
	}
}

func TestPostOrderContiguousSubtrees(t *testing.T) {
	// Post-order of T(v) must be the contiguous interval
	// [Post(v)-Size(v)+1, Post(v)] — the property D's binary search uses.
	rng := rand.New(rand.NewSource(13))
	tr := randomTree(120, rng)
	for v := 0; v < 120; v++ {
		lo, hi := tr.Post(v)-tr.Size(v)+1, tr.Post(v)
		for _, u := range tr.SubtreeVertices(v, nil) {
			if tr.Post(u) < lo || tr.Post(u) > hi {
				t.Fatalf("Post(%d)=%d outside [%d,%d] of subtree %d", u, tr.Post(u), lo, hi, v)
			}
		}
	}
}

func TestParentPostGreater(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := randomTree(100, rng)
	for v := 1; v < 100; v++ {
		if tr.Post(tr.Parent[v]) <= tr.Post(v) {
			t.Fatalf("post(parent(%d)) <= post(%d)", v, v)
		}
	}
}

func TestPathHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr := randomTree(60, rng)
	for trial := 0; trial < 200; trial++ {
		v := rng.Intn(60)
		lvl := rng.Intn(tr.Level(v) + 1)
		a := tr.AncestorAtLevel(v, lvl)
		if tr.Level(a) != lvl || !tr.IsAncestor(a, v) {
			t.Fatalf("AncestorAtLevel(%d,%d)=%d bad", v, lvl, a)
		}
		p := tr.PathUp(v, a)
		if len(p) != tr.PathLen(a, v) {
			t.Fatalf("PathUp len %d != PathLen %d", len(p), tr.PathLen(a, v))
		}
		if p[0] != v || p[len(p)-1] != a {
			t.Fatalf("PathUp endpoints %v", p)
		}
		for i := 1; i < len(p); i++ {
			if tr.Parent[p[i-1]] != p[i] {
				t.Fatalf("PathUp not a parent chain at %d", i)
			}
		}
		if a != v {
			c := tr.ChildToward(a, v)
			if tr.Parent[c] != a || !tr.IsAncestor(c, v) {
				t.Fatalf("ChildToward(%d,%d)=%d bad", a, v, c)
			}
		}
	}
}

func TestSubtreeVerticesAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := randomTree(70, rng)
	for v := 0; v < 70; v++ {
		vs := tr.SubtreeVertices(v, nil)
		if len(vs) != tr.Size(v) {
			t.Fatalf("SubtreeVertices(%d) len %d != Size %d", v, len(vs), tr.Size(v))
		}
		for _, u := range vs {
			if !tr.IsAncestor(v, u) {
				t.Fatalf("%d in SubtreeVertices(%d) but not descendant", u, v)
			}
		}
	}
}

func TestEulerTour(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := randomTree(40, rng)
	tour, first := tr.EulerTour()
	if len(tour) != 2*40-1 {
		t.Fatalf("tour length %d, want %d", len(tour), 2*40-1)
	}
	for v := 0; v < 40; v++ {
		if first[v] < 0 || tour[first[v]] != v {
			t.Fatalf("first[%d]=%d invalid", v, first[v])
		}
	}
	for i := 1; i < len(tour); i++ {
		a, b := tour[i-1], tour[i]
		if tr.Parent[a] != b && tr.Parent[b] != a {
			t.Fatalf("tour step %d: %d-%d not a tree edge", i, a, b)
		}
	}
}

func TestHoles(t *testing.T) {
	parent := []int{None, 0, None, 1}
	present := []bool{true, true, false, true}
	tr := MustBuild(0, parent, present)
	if tr.Live() != 3 || tr.Present(2) {
		t.Fatalf("Live=%d Present(2)=%v", tr.Live(), tr.Present(2))
	}
	if tr.Post(2) != -1 {
		t.Fatalf("hole has post %d", tr.Post(2))
	}
	vs := tr.Vertices()
	if len(vs) != 3 {
		t.Fatalf("Vertices()=%v", vs)
	}
}
