// Package verify checks that a rooted spanning tree is a valid DFS tree of a
// graph. Every algorithm in this repository is accepted only if its output
// passes IsDFSTree: the tree must span the graph (per connected component,
// under the paper's pseudo-root convention) and every non-tree edge must be a
// back edge — the classical necessary-and-sufficient condition.
package verify

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tree"
)

// DFSTree validates t against g and returns nil if t is a DFS tree of g.
//
// Requirements checked:
//  1. t's present vertices are exactly g's live vertices.
//  2. Every tree edge (v, parent(v)) is an edge of g, except edges incident
//     to pseudoRoot (pass pseudoRoot = tree.None when there is none).
//  3. Every edge of g is a back edge w.r.t. t (one endpoint ancestor of the
//     other) — tree edges satisfy this trivially.
func DFSTree(g graph.Adjacency, t *tree.Tree, pseudoRoot int) error {
	n := g.NumVertexSlots()
	if pseudoRoot == tree.None {
		if t.N() != n {
			return fmt.Errorf("verify: tree has %d slots, graph %d", t.N(), n)
		}
	} else if t.N() != n && t.N() != n+1 {
		return fmt.Errorf("verify: tree has %d slots, graph %d (+pseudo-root)", t.N(), n)
	}
	for v := 0; v < n; v++ {
		if g.IsVertex(v) != t.Present(v) {
			return fmt.Errorf("verify: vertex %d present in graph=%v, tree=%v",
				v, g.IsVertex(v), t.Present(v))
		}
	}
	if pseudoRoot != tree.None && t.Root != pseudoRoot {
		return fmt.Errorf("verify: root is %d, want pseudo-root %d", t.Root, pseudoRoot)
	}
	// Tree edges must be graph edges.
	for v := 0; v < n; v++ {
		if !t.Present(v) || v == t.Root {
			continue
		}
		p := t.Parent[v]
		if p == pseudoRoot {
			continue
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("verify: tree edge (%d,%d) not in graph", v, p)
		}
	}
	// Graph edges must be back edges.
	for _, e := range g.Edges() {
		if !t.IsAncestor(e.U, e.V) && !t.IsAncestor(e.V, e.U) {
			return fmt.Errorf("verify: cross edge %v (lca split)", e)
		}
	}
	return nil
}

// DFSForest validates a DFS tree under the pseudo-root convention with ID
// headroom: t may have more slots than g (reserved IDs are holes), its root
// must be pseudoRoot, every live graph vertex must be present, every tree
// edge not incident to the pseudo root must be a graph edge, and every graph
// edge must be a back edge. Each child subtree of the pseudo root must be a
// single connected component of g.
func DFSForest(g graph.Adjacency, t *tree.Tree, pseudoRoot int) error {
	n := g.NumVertexSlots()
	if t.Root != pseudoRoot {
		return fmt.Errorf("verify: root is %d, want pseudo-root %d", t.Root, pseudoRoot)
	}
	for v := 0; v < t.N(); v++ {
		inG := v < n && g.IsVertex(v)
		if v == pseudoRoot {
			continue
		}
		if inG != t.Present(v) {
			return fmt.Errorf("verify: vertex %d: graph=%v tree=%v", v, inG, t.Present(v))
		}
	}
	for v := 0; v < n; v++ {
		if !t.Present(v) {
			continue
		}
		p := t.Parent[v]
		if p == pseudoRoot {
			continue
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("verify: tree edge (%d,%d) not in graph", v, p)
		}
	}
	for _, e := range g.Edges() {
		if !t.IsAncestor(e.U, e.V) && !t.IsAncestor(e.V, e.U) {
			return fmt.Errorf("verify: cross edge %v", e)
		}
	}
	// Component structure: vertices in the same component must share the
	// same child subtree of the pseudo root, and vice versa.
	label, _ := g.ConnectedComponents()
	compOf := map[int]int{} // pseudo-root child -> component label
	for v := 0; v < n; v++ {
		if !t.Present(v) {
			continue
		}
		top := t.AncestorAtLevel(v, 1)
		if want, ok := compOf[top]; ok {
			if want != label[v] {
				return fmt.Errorf("verify: tree of root-child %d mixes components", top)
			}
		} else {
			compOf[top] = label[v]
		}
	}
	seen := map[int]bool{}
	for _, c := range compOf {
		if seen[c] {
			return fmt.Errorf("verify: component %d split across root children", c)
		}
		seen[c] = true
	}
	return nil
}

// SubtreeDFS validates that sub is a DFS tree of the subgraph of g induced
// by the vertex set of sub (used to check rerooted subtrees in isolation):
// tree edges are graph edges, and no graph edge internal to the vertex set
// is a cross edge.
func SubtreeDFS(g graph.Adjacency, sub *tree.Tree) error {
	inSet := make(map[int]bool, sub.Live())
	for _, v := range sub.Vertices() {
		inSet[v] = true
	}
	for _, v := range sub.Vertices() {
		if v == sub.Root {
			continue
		}
		if !g.HasEdge(v, sub.Parent[v]) {
			return fmt.Errorf("verify: tree edge (%d,%d) not in graph", v, sub.Parent[v])
		}
	}
	for _, e := range g.Edges() {
		if !inSet[e.U] || !inSet[e.V] {
			continue
		}
		if !sub.IsAncestor(e.U, e.V) && !sub.IsAncestor(e.V, e.U) {
			return fmt.Errorf("verify: cross edge %v within subtree", e)
		}
	}
	return nil
}
