package verify

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
)

func pathTree(n int) *tree.Tree {
	parent := make([]int, n)
	parent[0] = tree.None
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return tree.MustBuild(0, parent, nil)
}

func TestDFSTreeAccepts(t *testing.T) {
	g := graph.Path(5)
	if err := DFSTree(g, pathTree(5), tree.None); err != nil {
		t.Fatal(err)
	}
	// Back edge is fine.
	if err := g.InsertEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := DFSTree(g, pathTree(5), tree.None); err != nil {
		t.Fatal(err)
	}
}

func TestDFSTreeRejectsCrossEdge(t *testing.T) {
	// Star graph with a path tree: edge (0,2) becomes a cross edge if the
	// tree is 0-1, 1-2 ... build: tree parent = star from 0 is fine; use a
	// graph with edge between two siblings.
	g := graph.Star(4)
	if err := g.InsertEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	parent := []int{tree.None, 0, 0, 0}
	tr := tree.MustBuild(0, parent, nil)
	if err := DFSTree(g, tr, tree.None); err == nil {
		t.Fatal("cross edge (1,2) not rejected")
	}
}

func TestDFSTreeRejectsFakeTreeEdge(t *testing.T) {
	g := graph.Path(4) // edges (0,1)(1,2)(2,3)
	parent := []int{tree.None, 0, 0, 2}
	tr := tree.MustBuild(0, parent, nil)
	if err := DFSTree(g, tr, tree.None); err == nil {
		t.Fatal("tree edge (2,0) not in graph, not rejected")
	}
}

func TestDFSTreeRejectsPresenceMismatch(t *testing.T) {
	g := graph.Path(4)
	if err := g.DeleteVertex(3); err != nil {
		t.Fatal(err)
	}
	if err := DFSTree(g, pathTree(4), tree.None); err == nil {
		t.Fatal("deleted vertex present in tree, not rejected")
	}
}

func TestDFSForestPseudoRoot(t *testing.T) {
	// Two components hung under pseudo root 6 (slots 0..3 + headroom).
	g := graph.New(4)
	if err := g.InsertEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	parent := []int{6, 0, 6, 2, tree.None, tree.None, tree.None}
	present := []bool{true, true, true, true, false, false, true}
	tr := tree.MustBuild(6, parent, present)
	if err := DFSForest(g, tr, 6); err != nil {
		t.Fatal(err)
	}
	// Mixing components in one root child must be rejected.
	bad := []int{6, 0, 1, 2, tree.None, tree.None, tree.None}
	trBad := tree.MustBuild(6, bad, present)
	if err := DFSForest(g, trBad, 6); err == nil {
		t.Fatal("tree edge (2,1) absent from graph, not rejected")
	}
}

func TestDFSForestSplitComponent(t *testing.T) {
	// One connected component spread over two root children is invalid.
	g := graph.Path(2)
	parent := []int{3, 3, tree.None, tree.None}
	present := []bool{true, true, false, true}
	tr := tree.MustBuild(3, parent, present)
	if err := DFSForest(g, tr, 3); err == nil {
		t.Fatal("split component not rejected")
	}
}

func TestSubtreeDFS(t *testing.T) {
	g := graph.Cycle(5)
	parent := []int{tree.None, 0, 1, 2, 3}
	tr := tree.MustBuild(0, parent, nil)
	if err := SubtreeDFS(g, tr); err != nil {
		t.Fatal(err)
	}
	// A chord (1,3) makes the same tree invalid... it is a back edge
	// actually (1 ancestor of 3) — still fine.
	if err := g.InsertEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := SubtreeDFS(g, tr); err != nil {
		t.Fatal(err)
	}
	// But a star-shaped tree on the cycle has cross edges.
	starParent := []int{tree.None, 0, 0, 0, 0}
	star := tree.MustBuild(0, starParent, nil)
	if err := SubtreeDFS(graph.Cycle(5), star); err == nil {
		t.Fatal("star tree over cycle not rejected")
	}
}
