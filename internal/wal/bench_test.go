package wal

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func benchRecord(i int) Record {
	return Record{
		Graph: "tenant-0007",
		Seq:   uint64(i + 1),
		Update: core.Update{
			Kind: core.InsertEdge,
			U:    i % 512,
			V:    (i*7 + 1) % 512,
		},
	}
}

// BenchmarkWALAppend measures the durable append path per fsync policy:
// SyncBatch amortizes one fsync over the whole round (the serving layer's
// group commit), SyncAlways pays one per record.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []SyncPolicy{SyncBatch, SyncAlways} {
		for _, round := range []int{1, 16} {
			if pol == SyncAlways && round != 1 {
				continue
			}
			b.Run(fmt.Sprintf("policy=%v/round=%d", pol, round), func(b *testing.B) {
				l, err := OpenLog(filepath.Join(b.TempDir(), "bench.wal"), Options{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				b.ReportAllocs()
				for i := 0; i < b.N; i += round {
					for j := 0; j < round && i+j < b.N; j++ {
						r := benchRecord(i + j)
						if err := l.Append(&r); err != nil {
							b.Fatal(err)
						}
					}
					if err := l.Commit(); err != nil {
						b.Fatal(err)
					}
				}
				st := l.Stats()
				b.ReportMetric(float64(st.AppendBytes)/float64(st.Appends), "bytes/record")
			})
		}
	}
}

// BenchmarkWALReplay measures the recovery-time scan: decode a full log
// into records (CRC check included).
func BenchmarkWALReplay(b *testing.B) {
	var buf []byte
	const records = 4096
	for i := 0; i < records; i++ {
		r := benchRecord(i)
		buf = AppendEncode(buf, &r)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := DecodeAll(buf)
		if !res.Clean || len(res.Records) != records {
			b.Fatalf("scan: clean=%v n=%d", res.Clean, len(res.Records))
		}
	}
}

// BenchmarkCheckpointEncode / Decode measure snapshot serialization, the
// cost paid every WALConfig.CheckpointEvery updates per shard.
func BenchmarkCheckpointEncode(b *testing.B) {
	c := buildCheckpoint(b)
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = c.Encode()
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkCheckpointDecode(b *testing.B) {
	c := buildCheckpoint(b)
	buf := c.Encode()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCheckpoint(buf); err != nil {
			b.Fatal(err)
		}
	}
}
