package wal

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/tree"
)

// ckptMagic opens every checkpoint file (format version 1).
var ckptMagic = [8]byte{'D', 'F', 'S', 'W', 'C', 'K', 'P', '1'}

// Checkpoint is one graph's full serializable state at an update boundary.
// Capturing one from a published snapshot is a pointer grab — the graph
// version and tree are immutable — so only Encode pays O(n+m).
type Checkpoint struct {
	ID     string
	Seq    uint64 // update count at capture; log records with Seq <= this are covered
	Pseudo int    // pseudo-root vertex ID (tree root)
	Graph  *graph.Persistent
	Tree   *tree.Tree
}

// Encode serializes c into a single CRC-framed blob.
func (c *Checkpoint) Encode() []byte {
	csr := c.Graph.Snapshot()
	slots := c.Graph.NumVertexSlots()
	out := make([]byte, 0, 64+len(c.ID)+slots/4+len(csr.Dst)*2+(c.Pseudo+1)*2)
	out = append(out, ckptMagic[:]...)
	out = append(out, 0, 0, 0, 0, 0, 0, 0, 0) // len+crc placeholder
	out = binary.AppendUvarint(out, uint64(len(c.ID)))
	out = append(out, c.ID...)
	out = binary.AppendUvarint(out, c.Seq)
	out = binary.AppendUvarint(out, uint64(slots))
	out = binary.AppendUvarint(out, uint64(c.Pseudo))
	// Liveness bitmap over the vertex slots.
	bitmap := make([]byte, (slots+7)/8)
	for v := 0; v < slots; v++ {
		if c.Graph.IsVertex(v) {
			bitmap[v>>3] |= 1 << uint(v&7)
		}
	}
	out = append(out, bitmap...)
	// Adjacency: per-slot degree, then the concatenated sorted rows.
	out = binary.AppendUvarint(out, uint64(csr.M))
	for v := 0; v < slots; v++ {
		out = binary.AppendUvarint(out, uint64(csr.Off[v+1]-csr.Off[v]))
	}
	for _, w := range csr.Dst {
		out = binary.AppendUvarint(out, uint64(w))
	}
	// DFS tree: parent per slot 0..Pseudo (zigzag; tree.None encodes -1).
	for v := 0; v <= c.Pseudo; v++ {
		out = binary.AppendVarint(out, int64(c.Tree.Parent[v]))
	}
	payload := out[16:]
	binary.LittleEndian.PutUint32(out[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[12:], crc32.Checksum(payload, castagnoli))
	return out
}

// DecodeCheckpoint parses and validates a checkpoint blob, reconstructing
// the persistent graph and DFS tree. Any structural problem — bad magic,
// CRC mismatch, inconsistent adjacency, an invalid tree — fails loudly
// with an error wrapping ErrCorrupt.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 16 || [8]byte(data[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data[8:])
	if n == 0 || int(n) != len(data)-16 {
		return nil, fmt.Errorf("%w: checkpoint length %d does not match file", ErrCorrupt, n)
	}
	payload := data[16:]
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(data[12:]) {
		return nil, fmt.Errorf("%w: checkpoint CRC mismatch", ErrCorrupt)
	}
	p := payload
	next := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated checkpoint varint", ErrCorrupt)
		}
		p = p[n:]
		return v, nil
	}
	idLen, err := next()
	if err != nil || idLen > uint64(len(p)) {
		return nil, fmt.Errorf("%w: bad checkpoint ID", ErrCorrupt)
	}
	c := &Checkpoint{ID: string(p[:idLen])}
	p = p[idLen:]
	if c.Seq, err = next(); err != nil {
		return nil, err
	}
	slots64, err := next()
	if err != nil || slots64 > 1<<30 {
		return nil, fmt.Errorf("%w: bad slot count", ErrCorrupt)
	}
	slots := int(slots64)
	pseudo64, err := next()
	if err != nil || pseudo64 < slots64 || pseudo64 > 1<<31 {
		return nil, fmt.Errorf("%w: bad pseudo root", ErrCorrupt)
	}
	c.Pseudo = int(pseudo64)
	if len(p) < (slots+7)/8 {
		return nil, fmt.Errorf("%w: truncated liveness bitmap", ErrCorrupt)
	}
	bitmap := p[:(slots+7)/8]
	p = p[(slots+7)/8:]
	alive := func(v int) bool { return bitmap[v>>3]&(1<<uint(v&7)) != 0 }

	m64, err := next()
	if err != nil || m64 > 1<<40 {
		return nil, fmt.Errorf("%w: bad edge count", ErrCorrupt)
	}
	deg := make([]int, slots)
	total := 0
	for v := range deg {
		d, err := next()
		if err != nil {
			return nil, err
		}
		deg[v] = int(d)
		total += int(d)
	}
	if total != 2*int(m64) {
		return nil, fmt.Errorf("%w: degree sum %d != 2m=%d", ErrCorrupt, total, 2*m64)
	}
	// Rebuild a mutable graph, then freeze it persistent.
	g := graph.New(slots)
	for v := 0; v < slots; v++ {
		if !alive(v) {
			if deg[v] != 0 {
				return nil, fmt.Errorf("%w: hole %d has degree %d", ErrCorrupt, v, deg[v])
			}
			if err := g.DeleteVertex(v); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	for v := 0; v < slots; v++ {
		for i := 0; i < deg[v]; i++ {
			w64, err := next()
			if err != nil {
				return nil, err
			}
			w := int(w64)
			if w >= slots || !alive(w) {
				return nil, fmt.Errorf("%w: edge (%d,%d) leaves the vertex set", ErrCorrupt, v, w)
			}
			if v < w { // each edge appears in both rows; insert once
				if err := g.InsertEdge(v, w); err != nil {
					return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
				}
			} else if !g.HasEdge(w, v) {
				return nil, fmt.Errorf("%w: asymmetric row entry (%d,%d)", ErrCorrupt, v, w)
			}
		}
	}
	if g.NumEdges() != int(m64) {
		return nil, fmt.Errorf("%w: reconstructed %d edges, header says %d", ErrCorrupt, g.NumEdges(), m64)
	}
	// DFS tree parents (slots..Pseudo-1 are headroom holes; Pseudo roots).
	parent := make([]int, c.Pseudo+1)
	present := make([]bool, c.Pseudo+1)
	for v := 0; v <= c.Pseudo; v++ {
		pv, n := binary.Varint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated parent array", ErrCorrupt)
		}
		p = p[n:]
		if pv < tree.None || pv > int64(c.Pseudo) {
			return nil, fmt.Errorf("%w: parent %d out of range", ErrCorrupt, pv)
		}
		parent[v] = int(pv)
		present[v] = (v < slots && alive(v)) || v == c.Pseudo
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrCorrupt, len(p))
	}
	t, err := tree.Build(c.Pseudo, parent, present)
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint tree: %v", ErrCorrupt, err)
	}
	c.Graph = graph.PersistentOf(g)
	c.Tree = t
	return c, nil
}

// ckptName returns the filename for id's checkpoint at seq. The ID is
// hex-encoded so arbitrary GraphIDs stay filename-safe and unambiguous.
func ckptName(id string, seq uint64) string {
	return fmt.Sprintf("ck-%s-%016x.ckpt", hex.EncodeToString([]byte(id)), seq)
}

// parseCkptName inverts ckptName.
func parseCkptName(name string) (id string, seq uint64, ok bool) {
	if !strings.HasPrefix(name, "ck-") || !strings.HasSuffix(name, ".ckpt") {
		return "", 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "ck-"), ".ckpt")
	i := strings.LastIndexByte(body, '-')
	if i < 0 {
		return "", 0, false
	}
	raw, err := hex.DecodeString(body[:i])
	if err != nil {
		return "", 0, false
	}
	seq, err = strconv.ParseUint(body[i+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return string(raw), seq, true
}

// WriteCheckpoint durably writes c into dir (temp file, fsync, rename,
// directory fsync) and then removes any older checkpoint files for the
// same graph. Write I/O routes through inj.
func WriteCheckpoint(dir string, c *Checkpoint, inj *Injector) error {
	data := c.Encode()
	name := ckptName(c.ID, c.Seq)
	tmp := filepath.Join(dir, "."+name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint %q: %w", c.ID, err)
	}
	allow, injected := inj.beforeWrite(len(data))
	var n int
	if allow > 0 {
		n, err = f.Write(data[:allow])
	}
	if injected != nil && err == nil {
		err = injected
	}
	if err == nil && n < len(data) {
		err = fmt.Errorf("short checkpoint write (%d of %d bytes)", n, len(data))
	}
	if err == nil {
		if err = inj.beforeSync(); err == nil {
			err = f.Sync()
		}
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint %q: %w", c.ID, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: checkpoint %q: %w", c.ID, err)
	}
	syncDir(dir)
	// The new checkpoint supersedes every older one for this graph.
	for _, e := range readDirNames(dir) {
		if eid, seq, ok := parseCkptName(e); ok && eid == c.ID && seq != c.Seq {
			os.Remove(filepath.Join(dir, e))
		}
	}
	return nil
}

// DeleteCheckpoints removes every checkpoint file for id.
func DeleteCheckpoints(dir, id string) {
	for _, e := range readDirNames(dir) {
		if eid, _, ok := parseCkptName(e); ok && eid == id {
			os.Remove(filepath.Join(dir, e))
		}
	}
	syncDir(dir)
}

// LoadCheckpoints reads the newest valid checkpoint of every graph in dir.
// A graph whose newest checkpoint is corrupt falls back to the next newest
// (possible only if the newer write was torn before cleanup); a graph with
// checkpoint files but no valid one fails loudly.
func LoadCheckpoints(dir string) (map[string]*Checkpoint, error) {
	bySeq := map[string][]uint64{}
	for _, e := range readDirNames(dir) {
		if id, seq, ok := parseCkptName(e); ok {
			bySeq[id] = append(bySeq[id], seq)
		}
	}
	out := make(map[string]*Checkpoint, len(bySeq))
	for id, seqs := range bySeq {
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
		var lastErr error
		for _, seq := range seqs {
			data, err := os.ReadFile(filepath.Join(dir, ckptName(id, seq)))
			if err != nil {
				lastErr = err
				continue
			}
			c, err := DecodeCheckpoint(data)
			if err != nil || c.ID != id {
				if err == nil {
					err = fmt.Errorf("%w: checkpoint file/ID mismatch", ErrCorrupt)
				}
				lastErr = err
				continue
			}
			out[id] = c
			break
		}
		if out[id] == nil {
			return nil, fmt.Errorf("wal: graph %q: no valid checkpoint: %w", id, lastErr)
		}
	}
	return out, nil
}

func readDirNames(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// syncDir best-effort fsyncs a directory (rename/unlink durability).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
