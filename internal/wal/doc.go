// Package wal is the durability layer under the serving stack: an
// append-only, CRC32C-framed, length-prefixed write-ahead log of graph
// updates plus snapshot checkpoints, giving dfs.Service crash recovery
// with a bounded replay tail.
//
// # Log format
//
// A log file is a sequence of frames:
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// Each payload encodes one Record — the graph ID, the update's per-graph
// sequence number (the graph's update count after applying it), and the
// core.Update itself — with varint fields. The shard loop appends a record
// for every successfully applied update before publishing its snapshot, so
// a record's presence on disk is a prerequisite for the update being
// acknowledged to the submitter (under the SyncAlways and SyncBatch
// policies; SyncInterval trades the tail for latency).
//
// Decoding tolerates a torn final record: DecodeAll consumes frames until
// the first one whose length overruns the buffer or whose CRC mismatches,
// and reports how much of the buffer was clean. A corrupted frame anywhere
// therefore yields a strict prefix of the appended records — never a
// record that was not appended, and never a reordering (the property test
// in corrupt_test.go flips every byte to prove it). Semantic gaps that a
// prefix cannot produce (a missing middle record for one graph) are caught
// at replay time by the per-graph sequence numbers and fail recovery
// loudly.
//
// # Checkpoints
//
// A Checkpoint serializes one graph's full state at an update boundary:
// the persistent adjacency as a CSR, the DFS tree's parent array, the
// pseudo root and the update count. Because published versions are
// immutable, capturing one is a pointer grab; serialization cost is O(n+m)
// but happens off the per-update path (every Options.CheckpointEvery
// records, at graph creation, and at drops). After a shard checkpoints
// every graph it owns, the log prefix those checkpoints cover is dead and
// the log is truncated; recovery loads the newest valid checkpoint per
// graph and replays only the log tail, skipping records at or below each
// checkpoint's sequence number.
//
// Checkpoint files are written to a temp name, fsynced, then renamed, so a
// crash mid-checkpoint leaves the previous checkpoint intact.
//
// # Crash injection
//
// Injector simulates media failures for tests: it fails, short-writes, or
// returns fsync errors at the Nth I/O operation, and once triggered every
// later operation fails too (a fail-stop disk). Log and checkpoint writes
// both route through it, so a test can kill the write path at every
// reachable I/O point and assert that recovery restores exactly the
// durably acknowledged prefix.
package wal
