package wal

import (
	"reflect"
	"testing"
)

// FuzzRecordDecode drives arbitrary bytes through the frame decoder. The
// invariants: never panic, never allocate per a hostile length prefix, and
// every record that does decode must re-encode to a frame that decodes to
// the same record (no lossy acceptance).
func FuzzRecordDecode(f *testing.F) {
	var seed []byte
	recs := testRecords()
	for i := range recs {
		seed = AppendEncode(nil, &recs[i])
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		res := DecodeAll(data)
		if res.Clean && res.Err != nil {
			t.Fatal("clean scan carries an error")
		}
		if !res.Clean && (res.Torn < 0 || res.Torn > len(data)) {
			t.Fatalf("torn offset %d outside buffer", res.Torn)
		}
		for i := range res.Records {
			reenc := AppendEncode(nil, &res.Records[i])
			back := DecodeAll(reenc)
			if !back.Clean || len(back.Records) != 1 || !reflect.DeepEqual(back.Records[0], res.Records[i]) {
				t.Fatalf("decoded record %d does not survive re-encode: %+v", i, res.Records[i])
			}
		}
	})
}
