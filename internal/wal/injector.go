package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the failure every triggered Injector operation returns
// (possibly after a short write). Tests distinguish simulated media faults
// from real ones with errors.Is.
var ErrInjected = errors.New("wal: injected I/O failure")

// InjectMode selects how the Nth I/O operation fails.
type InjectMode int

const (
	// InjectFailWrite fails the Nth operation outright: if it is a write,
	// nothing reaches the file.
	InjectFailWrite InjectMode = iota
	// InjectShortWrite performs the Nth write only partially (half the
	// buffer) before failing — the torn-record case.
	InjectShortWrite
	// InjectFailSync lets writes through but fails the first sync at or
	// after the Nth operation — data reaches the OS but durability is never
	// confirmed.
	InjectFailSync
)

// Injector simulates a fail-stop disk: I/O operations (writes and syncs,
// across the log and checkpoint files sharing it) are counted, the Nth one
// fails per Mode, and every operation after the trigger fails too. The
// zero value never fires. An Injector may be shared by concurrent shards;
// the counter is global across them, which is exactly what "kill the
// process at its Nth I/O" means.
type Injector struct {
	FailAt int // 1-based operation index to trigger at; 0 = never
	Mode   InjectMode

	mu      sync.Mutex
	ops     int
	tripped bool
}

// Ops returns the number of I/O operations observed so far.
func (in *Injector) Ops() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Tripped reports whether the injector has fired.
func (in *Injector) Tripped() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tripped
}

// beforeWrite accounts one write of n bytes. It returns how many bytes the
// caller may actually write and the error to return afterwards (nil to
// proceed normally).
func (in *Injector) beforeWrite(n int) (int, error) {
	if in == nil {
		return n, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tripped {
		return 0, ErrInjected
	}
	in.ops++
	if in.FailAt > 0 && in.ops >= in.FailAt && in.Mode != InjectFailSync {
		in.tripped = true
		if in.Mode == InjectShortWrite {
			return n / 2, ErrInjected
		}
		return 0, ErrInjected
	}
	return n, nil
}

// beforeSync accounts one fsync and returns the error it should fail with.
func (in *Injector) beforeSync() error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tripped {
		return ErrInjected
	}
	in.ops++
	if in.FailAt > 0 && in.ops >= in.FailAt {
		in.tripped = true
		return ErrInjected
	}
	return nil
}
