package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrLocked reports that a live process already holds a WAL directory's
// exclusive lock.
var ErrLocked = errors.New("wal: directory locked by another process")

// DirLock is an exclusive advisory lock on a WAL directory. Two services
// appending to the same shard logs would interleave independent per-graph
// sequences and truncate each other's records at checkpoint rotation, so a
// directory admits exactly one owner at a time. The lock is held on a
// dedicated wal.lock file via flock, which the kernel releases when the
// owning process dies — a kill -9 never wedges the restart's recovery.
type DirLock struct {
	f *os.File
}

// LockDir takes dir's exclusive lock, failing fast with ErrLocked when a
// live process (or another handle in this one) already holds it.
func LockDir(dir string) (*DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "wal.lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		if errors.Is(err, errWouldBlock) {
			return nil, fmt.Errorf("wal: %s: %w", dir, ErrLocked)
		}
		return nil, fmt.Errorf("wal: lock %s: %w", dir, err)
	}
	return &DirLock{f: f}, nil
}

// Release drops the lock. The wal.lock file itself is kept: unlinking it
// would race a concurrent LockDir into locking the orphaned inode.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	funlock(f)
	return f.Close()
}
