//go:build !unix

package wal

import (
	"errors"
	"os"
)

// errWouldBlock is never produced by the fallback implementation.
var errWouldBlock = errors.New("wal: lock would block")

// flockExclusive is a no-op where flock is unavailable: single-owner
// exclusion is not enforced on such platforms.
func flockExclusive(*os.File) error { return nil }

func funlock(*os.File) {}
