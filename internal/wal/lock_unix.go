//go:build unix

package wal

import (
	"errors"
	"os"
	"syscall"
)

var errWouldBlock error = syscall.EWOULDBLOCK

func flockExclusive(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if !errors.Is(err, syscall.EINTR) {
			return err
		}
	}
}

func funlock(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
