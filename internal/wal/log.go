package wal

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrLogFailed is the sticky failure state of a Log whose write path
// errored: once an append or sync fails, the log refuses all further
// appends (fail-stop), because a hole in the record sequence would make
// the tail unreplayable.
var ErrLogFailed = errors.New("wal: log failed; shard write path is fail-stopped")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncBatch fsyncs once per commit round (group commit): every update
	// of a mailbox round is appended, then one fsync covers them all before
	// any of their futures resolve. The default.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every record. Strongest guarantee, one fsync
	// per update.
	SyncAlways
	// SyncInterval fsyncs at most once per Options.Interval; commits
	// between syncs are acknowledged unsynced. Survives process crashes
	// (the OS holds the pages) but an OS/power crash can lose the last
	// interval's acknowledged updates.
	SyncInterval
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Options configure a Log.
type Options struct {
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval period; default 100ms
	Injector *Injector     // optional crash injection

	// AppendHist and SyncHist, when non-nil, receive per-append and
	// per-fsync latencies.
	AppendHist *obs.Histogram
	SyncHist   *obs.Histogram
}

// LogStats are a Log's cumulative counters, safe to sample concurrently
// with the owner's appends.
type LogStats struct {
	Appends     uint64 // records appended
	AppendBytes uint64 // bytes appended (frames)
	Syncs       uint64 // fsyncs issued
}

// Log is one shard's append-only record log. All mutating methods must be
// called from the owning shard's goroutine; Stats may be sampled from
// anywhere.
type Log struct {
	f        *os.File
	path     string
	opts     Options
	buf      []byte // encode scratch
	dirty    bool   // bytes written since the last successful sync
	lastSync time.Time
	failed   error // sticky first write-path error

	appends     atomic.Uint64
	appendBytes atomic.Uint64
	syncs       atomic.Uint64
}

// OpenLog opens (creating if absent) the append-only log at path.
func OpenLog(path string, opts Options) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &Log{f: f, path: path, opts: opts, lastSync: time.Now()}, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Stats samples the log's cumulative counters.
func (l *Log) Stats() LogStats {
	return LogStats{
		Appends:     l.appends.Load(),
		AppendBytes: l.appendBytes.Load(),
		Syncs:       l.syncs.Load(),
	}
}

// Err returns the log's sticky failure, if any.
func (l *Log) Err() error { return l.failed }

func (l *Log) fail(err error) error {
	if l.failed == nil {
		l.failed = err
	}
	return err
}

// Append encodes and writes one record. Under SyncAlways it also fsyncs
// before returning; under the other policies durability is deferred to
// Commit. After any error the log is failed and further appends are
// rejected with ErrLogFailed.
func (l *Log) Append(r *Record) error {
	if l.failed != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrLogFailed, l.failed)
	}
	l.buf = AppendEncode(l.buf[:0], r)
	if len(l.buf)-8 > maxFrame {
		// Fail-stop before any byte reaches the file: recovery would reject
		// the frame's length prefix as corruption, discarding this record
		// and the whole tail after it, so acknowledging it would violate
		// acked <= recovered.
		return l.fail(fmt.Errorf("wal: append: frame payload %d bytes: %w", len(l.buf)-8, ErrTooLarge))
	}
	t0 := time.Now()
	allow, injected := l.opts.Injector.beforeWrite(len(l.buf))
	var n int
	var err error
	if allow > 0 {
		n, err = l.f.Write(l.buf[:allow])
	}
	if n > 0 {
		l.dirty = true
		l.appendBytes.Add(uint64(n))
	}
	if injected != nil && err == nil {
		err = injected
	}
	if err != nil || n < len(l.buf) {
		if err == nil {
			err = fmt.Errorf("wal: short append (%d of %d bytes)", n, len(l.buf))
		}
		return l.fail(fmt.Errorf("wal: append: %w", err))
	}
	l.appends.Add(1)
	if h := l.opts.AppendHist; h != nil {
		h.Record(time.Since(t0))
	}
	if l.opts.Policy == SyncAlways {
		return l.Sync()
	}
	return nil
}

// Commit is the round barrier: called once per mailbox round after its
// appends, it applies the sync policy (SyncBatch syncs now; SyncInterval
// syncs when the interval elapsed; SyncAlways already synced per record).
func (l *Log) Commit() error {
	if l.failed != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrLogFailed, l.failed)
	}
	switch l.opts.Policy {
	case SyncBatch:
		return l.Sync()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			return l.Sync()
		}
	}
	return nil
}

// Sync fsyncs the log if any bytes were appended since the last sync.
func (l *Log) Sync() error {
	if l.failed != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrLogFailed, l.failed)
	}
	if !l.dirty {
		l.lastSync = time.Now()
		return nil
	}
	t0 := time.Now()
	if err := l.opts.Injector.beforeSync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: fsync: %w", err))
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.syncs.Add(1)
	if h := l.opts.SyncHist; h != nil {
		h.Record(time.Since(t0))
	}
	return nil
}

// Reset truncates the log to empty after a checkpoint covered its whole
// contents. The truncation is fsynced so a crash cannot resurrect the
// covered prefix next to the fresh checkpoints.
func (l *Log) Reset() error {
	if l.failed != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrLogFailed, l.failed)
	}
	if err := l.f.Truncate(0); err != nil {
		return l.fail(fmt.Errorf("wal: truncate: %w", err))
	}
	// O_APPEND writes always go to the (now zero) end of file, so no seek
	// is needed; sync the metadata change.
	if err := l.opts.Injector.beforeSync(); err != nil {
		return l.fail(fmt.Errorf("wal: truncate fsync: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("wal: truncate fsync: %w", err))
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

// Close syncs outstanding appends and closes the file. A failed log closes
// without syncing.
func (l *Log) Close() error {
	var err error
	if l.failed == nil {
		err = l.Sync()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// ReadLogFile scans one log file, tolerating a torn tail.
func ReadLogFile(path string) (ScanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ScanResult{}, fmt.Errorf("wal: read log: %w", err)
	}
	return DecodeAll(data), nil
}
