package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
)

// castagnoli is the CRC32C table shared by log frames and checkpoints.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a frame or checkpoint that failed structural
// validation (bad CRC, impossible length, malformed varints). Recovery
// wraps it in every loud-failure path so callers can errors.Is against it.
var ErrCorrupt = errors.New("wal: corrupt data")

// ErrTooLarge reports a record whose encoded frame payload exceeds
// maxFrame. Log.Append rejects such records before any byte reaches the
// file: the decoder treats an oversized length prefix as corruption, so an
// appended-and-acknowledged oversized record would be discarded at
// recovery — along with every record after it — as a torn tail.
var ErrTooLarge = errors.New("wal: record exceeds maximum frame size")

// maxFrame bounds a single frame's payload, enforced symmetrically: Append
// refuses to write a larger frame, and a length prefix beyond it on decode
// is treated as corruption rather than an allocation request.
const maxFrame = 1 << 26

// Record is one logged update: the graph it applies to, the graph's update
// count after applying it (1-based, contiguous per graph), and the update.
type Record struct {
	Graph  string
	Seq    uint64
	Update core.Update
}

const recUpdate = 1 // payload type tag

// AppendEncode appends r's frame (header + payload) to dst and returns it.
func AppendEncode(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	dst = append(dst, recUpdate)
	dst = binary.AppendUvarint(dst, uint64(len(r.Graph)))
	dst = append(dst, r.Graph...)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = append(dst, byte(r.Update.Kind))
	dst = binary.AppendVarint(dst, int64(r.Update.U))
	dst = binary.AppendVarint(dst, int64(r.Update.V))
	dst = binary.AppendUvarint(dst, uint64(len(r.Update.Neighbors)))
	for _, w := range r.Update.Neighbors {
		dst = binary.AppendVarint(dst, int64(w))
	}
	payload := dst[start+8:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeFrame parses one frame at the head of data. It returns the decoded
// record and the number of bytes consumed, or an error when the head of
// data is not a whole, checksummed, well-formed frame.
func decodeFrame(data []byte) (Record, int, error) {
	if len(data) < 8 {
		return Record{}, 0, fmt.Errorf("%w: short frame header (%d bytes)", ErrCorrupt, len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n == 0 || n > maxFrame || int(n) > len(data)-8 {
		return Record{}, 0, fmt.Errorf("%w: frame length %d overruns buffer", ErrCorrupt, n)
	}
	payload := data[8 : 8+int(n)]
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(data[4:]) {
		return Record{}, 0, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	r, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return r, 8 + int(n), nil
}

func decodePayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 || p[0] != recUpdate {
		return r, fmt.Errorf("%w: unknown record type", ErrCorrupt)
	}
	p = p[1:]
	idLen, n := binary.Uvarint(p)
	if n <= 0 || idLen > uint64(len(p)-n) {
		return r, fmt.Errorf("%w: bad graph ID length", ErrCorrupt)
	}
	p = p[n:]
	r.Graph = string(p[:idLen])
	p = p[idLen:]
	if r.Seq, n = binary.Uvarint(p); n <= 0 {
		return r, fmt.Errorf("%w: bad sequence number", ErrCorrupt)
	}
	p = p[n:]
	if len(p) < 1 {
		return r, fmt.Errorf("%w: missing update kind", ErrCorrupt)
	}
	kind := core.UpdateKind(p[0])
	if kind < core.InsertEdge || kind > core.DeleteVertex {
		return r, fmt.Errorf("%w: unknown update kind %d", ErrCorrupt, p[0])
	}
	r.Update.Kind = kind
	p = p[1:]
	u, n := binary.Varint(p)
	if n <= 0 {
		return r, fmt.Errorf("%w: bad update endpoint", ErrCorrupt)
	}
	p = p[n:]
	v, n := binary.Varint(p)
	if n <= 0 {
		return r, fmt.Errorf("%w: bad update endpoint", ErrCorrupt)
	}
	p = p[n:]
	r.Update.U, r.Update.V = int(u), int(v)
	nn, n := binary.Uvarint(p)
	if n <= 0 || nn > uint64(len(p)-n) { // each neighbor is ≥ 1 byte
		return r, fmt.Errorf("%w: bad neighbor count", ErrCorrupt)
	}
	p = p[n:]
	if nn > 0 {
		r.Update.Neighbors = make([]int, nn)
		for i := range r.Update.Neighbors {
			w, n := binary.Varint(p)
			if n <= 0 {
				return r, fmt.Errorf("%w: bad neighbor", ErrCorrupt)
			}
			r.Update.Neighbors[i] = int(w)
			p = p[n:]
		}
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return r, nil
}

// ScanResult reports how a log buffer decoded.
type ScanResult struct {
	Records []Record
	// Clean reports that the whole buffer decoded; when false, Torn is the
	// byte offset of the first frame that failed (everything before it
	// decoded cleanly) and Err describes the failure. A torn tail is the
	// expected shape after a crash mid-append; Records is always a strict
	// prefix of what was appended, in append order.
	Clean bool
	Torn  int
	Err   error
}

// DecodeAll decodes every whole valid frame from the head of data,
// stopping at the first frame that fails validation. It never returns an
// error: a bad frame ends the scan, and the outcome is described by the
// ScanResult so callers can decide whether a dirty tail is tolerable.
func DecodeAll(data []byte) ScanResult {
	res := ScanResult{Clean: true}
	off := 0
	for off < len(data) {
		r, n, err := decodeFrame(data[off:])
		if err != nil {
			res.Clean, res.Torn, res.Err = false, off, err
			return res
		}
		res.Records = append(res.Records, r)
		off += n
	}
	return res
}
