package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// RoutesFile is the route log's file name inside a WAL directory.
const RoutesFile = "routes.wal"

// RouteRecord pins one graph's shard assignment. Records are appended to a
// single dedicated log (RoutesFile) whose total order is file position, so
// the last record for a graph wins — no cross-file sequence comparison is
// ever needed, unlike the per-shard update logs. Shard < 0 records a route
// removal (the graph was dropped while routed away from its hash shard).
// Seq is the graph's update sequence at the instant the route was written;
// it is diagnostic only — replacement is by file order, not by Seq.
type RouteRecord struct {
	Graph string
	Shard int
	Seq   uint64
}

const recRoute = 1 // payload type tag (route-log namespace)

// appendRouteFrame appends r's CRC32C frame (same 8-byte header layout as
// the update logs: LE payload length + Castagnoli CRC) to dst.
func appendRouteFrame(dst []byte, r *RouteRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = append(dst, recRoute)
	dst = binary.AppendUvarint(dst, uint64(len(r.Graph)))
	dst = append(dst, r.Graph...)
	dst = binary.AppendVarint(dst, int64(r.Shard))
	dst = binary.AppendUvarint(dst, r.Seq)
	payload := dst[start+8:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeRouteFrame parses one frame at the head of data, returning the
// record and bytes consumed, or an error when the head is not a whole,
// checksummed, well-formed route frame.
func decodeRouteFrame(data []byte) (RouteRecord, int, error) {
	var r RouteRecord
	if len(data) < 8 {
		return r, 0, fmt.Errorf("%w: short route frame header (%d bytes)", ErrCorrupt, len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n == 0 || n > maxFrame || int(n) > len(data)-8 {
		return r, 0, fmt.Errorf("%w: route frame length %d overruns buffer", ErrCorrupt, n)
	}
	p := data[8 : 8+int(n)]
	if crc := crc32.Checksum(p, castagnoli); crc != binary.LittleEndian.Uint32(data[4:]) {
		return r, 0, fmt.Errorf("%w: route frame CRC mismatch", ErrCorrupt)
	}
	consumed := 8 + int(n)
	if len(p) < 1 || p[0] != recRoute {
		return r, 0, fmt.Errorf("%w: unknown route record type", ErrCorrupt)
	}
	p = p[1:]
	idLen, k := binary.Uvarint(p)
	if k <= 0 || idLen > uint64(len(p)-k) {
		return r, 0, fmt.Errorf("%w: bad route graph ID length", ErrCorrupt)
	}
	p = p[k:]
	r.Graph = string(p[:idLen])
	p = p[idLen:]
	sh, k := binary.Varint(p)
	if k <= 0 {
		return r, 0, fmt.Errorf("%w: bad route shard index", ErrCorrupt)
	}
	p = p[k:]
	r.Shard = int(sh)
	if r.Seq, k = binary.Uvarint(p); k <= 0 {
		return r, 0, fmt.Errorf("%w: bad route sequence", ErrCorrupt)
	}
	p = p[k:]
	if len(p) != 0 {
		return r, 0, fmt.Errorf("%w: %d trailing route payload bytes", ErrCorrupt, len(p))
	}
	return r, consumed, nil
}

// RouteLog is the durable graph-to-shard routing journal of one WAL
// directory: a single append-only file whose Append is the commit point of
// a migration. All methods must be called from one goroutine at a time
// (the service serializes them under its route mutex).
type RouteLog struct {
	f    *os.File
	path string
}

// OpenRoutes opens dir's route log, returning the decoded records in file
// (= commit) order. A torn tail — a crash mid-append — is truncated away:
// the bytes past the last whole frame were never acknowledged as a route
// flip, so the migration they belonged to never happened durably. A missing
// file is an empty log.
func OpenRoutes(dir string) (*RouteLog, []RouteRecord, error) {
	path := filepath.Join(dir, RoutesFile)
	var recs []RouteRecord
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("wal: read routes: %w", err)
	}
	off := 0
	for off < len(data) {
		r, n, derr := decodeRouteFrame(data[off:])
		if derr != nil {
			break
		}
		recs = append(recs, r)
		off += n
	}
	if off < len(data) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate torn route tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open routes: %w", err)
	}
	return &RouteLog{f: f, path: path}, recs, nil
}

// Append appends and fsyncs one route record. The fsync is what makes a
// migration's flip durable, so Append returning nil means recovery after
// any crash will place the graph by this record.
func (l *RouteLog) Append(r RouteRecord) error {
	buf := appendRouteFrame(nil, &r)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append route: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync route: %w", err)
	}
	return nil
}

// Compact atomically rewrites the log to exactly the live records (temp
// file, fsync, rename, directory sync) and reopens it for append. Called at
// recovery, after dead entries — dropped graphs, superseded flips, removals
// — have been folded out, so the file never grows without bound.
func (l *RouteLog) Compact(live []RouteRecord) error {
	var buf []byte
	for i := range live {
		buf = appendRouteFrame(buf, &live[i])
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, RoutesFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: compact routes: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: compact routes: %w", err)
	}
	if err := os.Rename(tmpName, l.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: compact routes: %w", err)
	}
	syncDir(dir)
	old := l.f
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen routes: %w", err)
	}
	l.f = f
	old.Close()
	return nil
}

// Close closes the route log file.
func (l *RouteLog) Close() error { return l.f.Close() }
