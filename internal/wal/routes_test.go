package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func reopenRoutes(t *testing.T, dir string) (*RouteLog, []RouteRecord) {
	t.Helper()
	l, recs, err := OpenRoutes(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestRouteLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := reopenRoutes(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	for _, r := range []RouteRecord{
		{Graph: "a", Shard: 2, Seq: 10},
		{Graph: "b", Shard: 0, Seq: 3},
		{Graph: "a", Shard: 1, Seq: 12}, // supersedes the first
		{Graph: "c", Shard: -1},         // removal
	} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, recs = reopenRoutes(t, dir)
	defer l.Close()
	if len(recs) != 4 {
		t.Fatalf("reopened %d records, want 4", len(recs))
	}
	if recs[2].Graph != "a" || recs[2].Shard != 1 || recs[2].Seq != 12 {
		t.Fatalf("record order not preserved: %+v", recs[2])
	}
	if recs[3].Shard != -1 {
		t.Fatalf("removal record lost: %+v", recs[3])
	}
}

func TestRouteLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopenRoutes(t, dir)
	if err := l.Append(RouteRecord{Graph: "keep", Shard: 1, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(RouteRecord{Graph: "torn", Shard: 2, Seq: 9}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Clip into the middle of the second frame: a crash mid-append.
	path := filepath.Join(dir, RoutesFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := appendRouteFrame(nil, &RouteRecord{Graph: "keep", Shard: 1, Seq: 5})
	if err := os.Truncate(path, int64(len(first)+3)); err != nil {
		t.Fatal(err)
	}
	_ = data

	l, recs := reopenRoutes(t, dir)
	if len(recs) != 1 || recs[0].Graph != "keep" {
		t.Fatalf("torn log decoded %+v, want just the intact prefix", recs)
	}
	// The torn bytes were truncated away, so appending stays decodable.
	if err := l.Append(RouteRecord{Graph: "after", Shard: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, recs = reopenRoutes(t, dir)
	defer l.Close()
	if len(recs) != 2 || recs[1].Graph != "after" {
		t.Fatalf("post-truncation append lost: %+v", recs)
	}
}

func TestRouteLogCompact(t *testing.T) {
	dir := t.TempDir()
	l, _ := reopenRoutes(t, dir)
	for i := 0; i < 10; i++ {
		if err := l.Append(RouteRecord{Graph: "g", Shard: i % 3, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	live := []RouteRecord{{Graph: "g", Shard: 2, Seq: 9}}
	if err := l.Compact(live); err != nil {
		t.Fatal(err)
	}
	// The compacted file is immediately appendable.
	if err := l.Append(RouteRecord{Graph: "h", Shard: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, recs := reopenRoutes(t, dir)
	defer l.Close()
	if len(recs) != 2 {
		t.Fatalf("compacted log holds %d records, want 2", len(recs))
	}
	if recs[0] != live[0] || recs[1].Graph != "h" {
		t.Fatalf("compaction mangled records: %+v", recs)
	}
}
