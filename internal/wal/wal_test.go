package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func testRecords() []Record {
	return []Record{
		{Graph: "g1", Seq: 1, Update: core.Update{Kind: core.InsertEdge, U: 0, V: 1}},
		{Graph: "g1", Seq: 2, Update: core.Update{Kind: core.DeleteEdge, U: 1, V: 0}},
		{Graph: "", Seq: 3, Update: core.Update{Kind: core.DeleteVertex, U: 7}},
		{Graph: "other/graph\x00!", Seq: 1 << 40, Update: core.Update{
			Kind: core.InsertVertex, U: -1, V: -1, Neighbors: []int{3, 1, 4, 1, 5},
		}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	want := testRecords()
	for i := range want {
		buf = AppendEncode(buf, &want[i])
	}
	res := DecodeAll(buf)
	if !res.Clean || res.Err != nil {
		t.Fatalf("DecodeAll not clean: %+v", res)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", res.Records, want)
	}
}

// TestDecodeAllTruncation checks the prefix guarantee under truncation:
// cutting the buffer at every possible byte position yields a clean decode
// of some prefix of the original records, never a different record.
func TestDecodeAllTruncation(t *testing.T) {
	want := testRecords()
	var buf []byte
	for i := range want {
		buf = AppendEncode(buf, &want[i])
	}
	for cut := 0; cut < len(buf); cut++ {
		res := DecodeAll(buf[:cut])
		if cut > 0 && res.Clean && len(res.Records) == len(want) {
			t.Fatalf("cut=%d: full decode of truncated buffer", cut)
		}
		for i, r := range res.Records {
			if !reflect.DeepEqual(r, want[i]) {
				t.Fatalf("cut=%d: record %d diverged: %+v != %+v", cut, i, r, want[i])
			}
		}
	}
}

// TestDecodeAllBitFlips is the corruption property test: flipping any
// single bit of the log yields either the original records (the flip
// landed past the decoded prefix — impossible here since every byte is
// load-bearing... except it can land in a record that still CRC-fails) or
// a strict prefix of them. Decoding must never produce a record sequence
// that is not a prefix of the original, and never panic.
func TestDecodeAllBitFlips(t *testing.T) {
	want := testRecords()
	var buf []byte
	for i := range want {
		buf = AppendEncode(buf, &want[i])
	}
	for pos := 0; pos < len(buf); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[pos] ^= 1 << bit
			res := DecodeAll(mut)
			for i, r := range res.Records {
				if i >= len(want) || !reflect.DeepEqual(r, want[i]) {
					t.Fatalf("flip %d.%d: record %d is not the original prefix: %+v", pos, bit, i, r)
				}
			}
			if len(res.Records) < len(want) && res.Clean {
				// The flip erased a tail record without being reported:
				// possible only by shrinking a length prefix so the buffer
				// still parses cleanly. The CRC of the shortened frame must
				// then mismatch, so a clean short decode is a bug.
				t.Fatalf("flip %d.%d: silently dropped records (%d < %d)", pos, bit, len(res.Records), len(want))
			}
		}
	}
}

func TestLogAppendScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	lg, err := OpenLog(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for i := range want {
		if err := lg.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Commit(); err != nil {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.Appends != uint64(len(want)) || st.Syncs != 1 {
		t.Fatalf("stats = %+v, want %d appends / 1 sync", st, len(want))
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || !reflect.DeepEqual(res.Records, want) {
		t.Fatalf("scan mismatch: %+v", res)
	}
}

func TestLogSyncAlways(t *testing.T) {
	lg, err := OpenLog(filepath.Join(t.TempDir(), "x.wal"), Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	recs := testRecords()
	for i := range recs {
		if err := lg.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := lg.Stats().Syncs; got != uint64(len(recs)) {
		t.Fatalf("SyncAlways issued %d syncs, want %d", got, len(recs))
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	lg, err := OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	r := testRecords()[0]
	if err := lg.Append(&r); err != nil {
		t.Fatal(err)
	}
	if err := lg.Reset(); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Fatalf("log not truncated: %d bytes", st.Size())
	}
	// Appends after a reset land at the new start of file.
	if err := lg.Append(&r); err != nil {
		t.Fatal(err)
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || len(res.Records) != 1 {
		t.Fatalf("post-reset scan: %+v", res)
	}
}

// TestAppendRejectsOversizedFrame: a frame the decoder would reject as
// corrupt must never be appended (and thus never acknowledged) — the log
// fail-stops before any byte reaches the file.
func TestAppendRejectsOversizedFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	lg, err := OpenLog(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	ok := testRecords()[0]
	if err := lg.Append(&ok); err != nil {
		t.Fatal(err)
	}
	big := Record{Graph: strings.Repeat("g", maxFrame), Seq: 2,
		Update: core.Update{Kind: core.InsertEdge, U: 0, V: 1}}
	if err := lg.Append(&big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append = %v, want ErrTooLarge", err)
	}
	// Sticky fail-stop: the write path is dead, like any other append error.
	if err := lg.Append(&ok); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after oversized reject = %v, want ErrLogFailed", err)
	}
	// Nothing of the oversized frame reached the file: the log is clean and
	// holds exactly the pre-failure prefix.
	if err := lg.Sync(); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("sync after fail-stop = %v, want ErrLogFailed", err)
	}
	res, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || len(res.Records) != 1 || !reflect.DeepEqual(res.Records[0], ok) {
		t.Fatalf("oversized frame leaked into the file: %+v", res)
	}
}

func TestLockDirExclusive(t *testing.T) {
	dir := t.TempDir()
	l1, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockDir(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second LockDir = %v, want ErrLocked", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("relock after release: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
	// Release is idempotent and nil-safe.
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}
	if err := (*DirLock)(nil).Release(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorFailWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	inj := &Injector{FailAt: 3, Mode: InjectFailWrite}
	lg, err := OpenLog(path, Options{Policy: SyncAlways, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	recs := testRecords()
	var failed error
	n := 0
	for i := range recs {
		if failed = lg.Append(&recs[i]); failed != nil {
			break
		}
		n++
	}
	if failed == nil || !errors.Is(failed, ErrInjected) {
		t.Fatalf("expected injected failure, got %v after %d appends", failed, n)
	}
	if !inj.Tripped() {
		t.Fatal("injector did not trip")
	}
	// Sticky fail-stop: later appends fail with ErrLogFailed.
	if err := lg.Append(&recs[0]); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after failure = %v, want ErrLogFailed", err)
	}
	// The on-disk prefix is exactly the n records appended before failure.
	res, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != n || !reflect.DeepEqual(res.Records, recs[:n]) {
		t.Fatalf("disk has %d records, want the %d-record prefix", len(res.Records), n)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	inj := &Injector{FailAt: 2, Mode: InjectShortWrite}
	lg, err := OpenLog(path, Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	recs := testRecords()
	if err := lg.Append(&recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(&recs[1]); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write returned %v", err)
	}
	// The scan tolerates the torn record and still yields the clean prefix.
	res, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("scan of torn log reported clean")
	}
	if len(res.Records) != 1 || !reflect.DeepEqual(res.Records[0], recs[0]) {
		t.Fatalf("torn scan prefix = %+v", res.Records)
	}
}

func TestInjectorFailSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	inj := &Injector{FailAt: 1, Mode: InjectFailSync}
	lg, err := OpenLog(path, Options{Policy: SyncBatch, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	r := testRecords()[0]
	// Writes pass (FailSync never trips on writes)...
	if err := lg.Append(&r); err != nil {
		t.Fatal(err)
	}
	// ...but the commit's fsync fails.
	if err := lg.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("commit = %v, want injected sync failure", err)
	}
	if err := lg.Append(&r); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after sync failure = %v, want ErrLogFailed", err)
	}
}

func buildCheckpoint(t testing.TB) *Checkpoint {
	t.Helper()
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}} {
		if err := g.InsertEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.DeleteVertex(5); err != nil { // a hole in the slot space
		t.Fatal(err)
	}
	dd := core.New(g, core.Options{})
	return &Checkpoint{
		ID:     "ckpt/test",
		Seq:    42,
		Pseudo: dd.PseudoRoot(),
		Graph:  dd.Frozen(),
		Tree:   dd.Tree(),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := buildCheckpoint(t)
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != c.ID || got.Seq != c.Seq || got.Pseudo != c.Pseudo {
		t.Fatalf("header mismatch: %+v vs %+v", got, c)
	}
	if !reflect.DeepEqual(got.Tree.Parent, c.Tree.Parent) || got.Tree.Root != c.Tree.Root {
		t.Fatal("tree mismatch after round trip")
	}
	if got.Graph.NumEdges() != c.Graph.NumEdges() || got.Graph.NumVertexSlots() != c.Graph.NumVertexSlots() {
		t.Fatal("graph shape mismatch after round trip")
	}
	for v := 0; v < c.Graph.NumVertexSlots(); v++ {
		if got.Graph.IsVertex(v) != c.Graph.IsVertex(v) {
			t.Fatalf("liveness mismatch at %d", v)
		}
		if !reflect.DeepEqual(got.Graph.Neighbors(v, nil), c.Graph.Neighbors(v, nil)) {
			t.Fatalf("row %d mismatch", v)
		}
	}
}

// TestCheckpointCorruption flips each byte of an encoded checkpoint and
// requires a loud decode failure or a byte-identical re-encode — a corrupt
// checkpoint must never silently decode to different state.
func TestCheckpointCorruption(t *testing.T) {
	c := buildCheckpoint(t)
	data := c.Encode()
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x55
		got, err := DecodeCheckpoint(mut)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("pos %d: error does not wrap ErrCorrupt: %v", pos, err)
			}
			continue
		}
		if !bytes.Equal(got.Encode(), data) {
			t.Fatalf("pos %d: corrupt checkpoint decoded to different state", pos)
		}
	}
}

func TestWriteLoadCheckpoints(t *testing.T) {
	dir := t.TempDir()
	c := buildCheckpoint(t)
	if err := WriteCheckpoint(dir, c, nil); err != nil {
		t.Fatal(err)
	}
	// A newer checkpoint supersedes (and deletes) the older file.
	c2 := *c
	c2.Seq = 43
	if err := WriteCheckpoint(dir, &c2, nil); err != nil {
		t.Fatal(err)
	}
	names := readDirNames(dir)
	if len(names) != 1 || names[0] != ckptName(c.ID, 43) {
		t.Fatalf("dir = %v, want only seq-43 checkpoint", names)
	}
	got, err := LoadCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[c.ID] == nil || got[c.ID].Seq != 43 {
		t.Fatalf("LoadCheckpoints = %v", got)
	}
	// A graph whose only checkpoint is corrupt fails loudly.
	path := filepath.Join(dir, ckptName(c.ID, 43))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := LoadCheckpoints(dir); err == nil {
		t.Fatal("LoadCheckpoints accepted a corrupt-only graph")
	}
	// With an older valid checkpoint present, recovery falls back to it.
	if err := WriteCheckpoint(dir, c, nil); err != nil { // writes seq 42, deletes 43
		t.Fatal(err)
	}
	got, err = LoadCheckpoints(dir)
	if err != nil || got[c.ID].Seq != 42 {
		t.Fatalf("fallback load = %v, %v", got, err)
	}
	DeleteCheckpoints(dir, c.ID)
	if got, _ := LoadCheckpoints(dir); len(got) != 0 {
		t.Fatalf("checkpoints survive deletion: %v", got)
	}
}

func TestCheckpointNameRoundTrip(t *testing.T) {
	for _, id := range []string{"", "g", "weird/≠\x00name", "ck--.ckpt"} {
		name := ckptName(id, 7)
		gid, seq, ok := parseCkptName(name)
		if !ok || gid != id || seq != 7 {
			t.Fatalf("name round trip failed for %q: %q -> %q %d %v", id, name, gid, seq, ok)
		}
	}
	if _, _, ok := parseCkptName("shard-0000.wal"); ok {
		t.Fatal("parsed a log file as a checkpoint")
	}
}
