package dfs

import (
	"math/rand"

	"repro/internal/graph"
)

// Workload generators re-exported for examples and experiments. All are
// deterministic given the rng.

// Gnp returns an Erdős–Rényi G(n,p) random graph.
func Gnp(n int, p float64, rng *rand.Rand) *Graph { return graph.Gnp(n, p, rng) }

// GnpConnected returns a connected random graph: a random spanning tree
// plus G(n,p) edges.
func GnpConnected(n int, p float64, rng *rand.Rand) *Graph {
	return graph.GnpConnected(n, p, rng)
}

// PathGraph returns the path 0-1-…-(n-1).
func PathGraph(n int) *Graph { return graph.Path(n) }

// CycleGraph returns the n-cycle.
func CycleGraph(n int) *Graph { return graph.Cycle(n) }

// StarGraph returns a star with center 0.
func StarGraph(n int) *Graph { return graph.Star(n) }

// CompleteGraph returns K_n.
func CompleteGraph(n int) *Graph { return graph.Complete(n) }

// BroomGraph returns the adversarial broom instance (long handle, heavy
// fan, back edges to the handle's origin).
func BroomGraph(n, handle int) *Graph { return graph.Broom(n, handle) }

// GridGraph returns the rows×cols grid.
func GridGraph(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// CycleOfCliques returns k s-cliques on a ring — fixed n with diameter
// Θ(k), the distributed experiments' knob.
func CycleOfCliques(k, s int) *Graph { return graph.CycleOfCliques(k, s) }

// RandomNonEdge returns a uniformly random absent edge, if one exists.
func RandomNonEdge(g Adjacency, rng *rand.Rand) (Edge, bool) {
	return graph.RandomEdgeNotIn(g, rng)
}

// RandomEdge returns a uniformly random present edge, if one exists.
func RandomEdge(g Adjacency, rng *rand.Rand) (Edge, bool) {
	return graph.RandomExistingEdge(g, rng)
}
